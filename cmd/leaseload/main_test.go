package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestJSONReport runs a small verified load and checks the machine-
// readable report is complete and self-consistent.
func TestJSONReport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-tenants", "10", "-events", "60", "-shards", "4",
		"-producers", "3", "-chunk", "7", "-verify", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Tool != "leaseload" {
		t.Errorf("tool = %q", rep.Tool)
	}
	if rep.Tenants != 10 {
		t.Errorf("tenants = %d, want 10", rep.Tenants)
	}
	if rep.TotalEvents <= 0 || rep.EventsPerSec <= 0 {
		t.Errorf("events = %d, rate = %v, want > 0", rep.TotalEvents, rep.EventsPerSec)
	}
	if rep.Engine.Events != rep.TotalEvents {
		t.Errorf("engine processed %d of %d events", rep.Engine.Events, rep.TotalEvents)
	}
	if rep.Engine.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", rep.Engine.Dropped)
	}
	if len(rep.Engine.Shards) != 4 {
		t.Errorf("shard samples = %d, want 4", len(rep.Engine.Shards))
	}
	if rep.Verified == nil || !*rep.Verified {
		t.Error("run was not verified against Replay")
	}
	var n int
	for _, c := range rep.Domains {
		n += c
	}
	if n != rep.Tenants {
		t.Errorf("domain counts sum to %d, want %d", n, rep.Tenants)
	}
}

// TestTextReport checks the human-readable output carries the headline
// numbers.
func TestTextReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tenants", "5", "-events", "40", "-shards", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tenants: 5", "events/s", "submit latency", "shards:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestDeterministicWorkload asserts the synthesized traffic is a pure
// function of the seed: two runs report identical totals and costs.
func TestDeterministicWorkload(t *testing.T) {
	report := func() jsonReport {
		var buf bytes.Buffer
		if err := run([]string{"-tenants", "8", "-events", "50", "-json"}, &buf); err != nil {
			t.Fatal(err)
		}
		var rep jsonReport
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := report(), report()
	if a.TotalEvents != b.TotalEvents {
		t.Errorf("event totals differ: %d vs %d", a.TotalEvents, b.TotalEvents)
	}
	if a.Engine.Cost != b.Engine.Cost {
		t.Errorf("costs differ: %v vs %v", a.Engine.Cost, b.Engine.Cost)
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tenants", "0"}, &buf); err == nil {
		t.Error("tenants=0 accepted")
	}
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1"}, &buf); err == nil {
		t.Error("-addr without -remote accepted")
	}
	if err := run([]string{"-crash"}, &buf); err == nil {
		t.Error("-crash without -leased accepted")
	}
	if err := run([]string{"-leased", "/tmp/leased"}, &buf); err == nil {
		t.Error("-leased without -crash accepted")
	}
	if err := run([]string{"-data-dir", "/tmp/x"}, &buf); err == nil {
		t.Error("-data-dir without -crash accepted")
	}
	if err := run([]string{"-crash", "-leased", "/tmp/leased", "-remote"}, &buf); err == nil {
		t.Error("-crash combined with -remote accepted")
	}
	if err := run([]string{"-durable-bench", "-remote"}, &buf); err == nil {
		t.Error("-durable-bench combined with -remote accepted")
	}
}

// TestDurableBenchReport runs the fsync on/off pair on a small workload
// and checks the combined report: both halves complete, process every
// event, and are verified against Replay.
func TestDurableBenchReport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-durable-bench", "-tenants", "8", "-events", "50",
		"-shards", "4", "-producers", "2", "-verify",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep durableReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Mode != "durable-bench" {
		t.Errorf("mode = %q", rep.Mode)
	}
	for name, half := range map[string]jsonReport{"fsync_off": rep.FsyncOff, "fsync_on": rep.FsyncOn} {
		if half.Engine.Events != rep.TotalEvents {
			t.Errorf("%s: processed %d of %d events", name, half.Engine.Events, rep.TotalEvents)
		}
		if half.Verified == nil || !*half.Verified {
			t.Errorf("%s: not verified against Replay", name)
		}
	}
	if rep.FsyncOff.Engine.Cost != rep.FsyncOn.Engine.Cost {
		t.Errorf("fsync changed the workload outcome: %v vs %v",
			rep.FsyncOff.Engine.Cost, rep.FsyncOn.Engine.Cost)
	}
}

// TestCrashRecovery runs the real kill-and-recover drill: build the
// daemon, SIGKILL it mid-load, restart it on the same data dir, resume
// every tenant from its recovered count, and verify byte-identity with
// Replay of each tenant's full logged history.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash drill builds and spawns the daemon")
	}
	if runtime.GOOS == "windows" {
		t.Skip("drill relies on SIGKILL/SIGTERM")
	}
	bin := filepath.Join(t.TempDir(), "leased")
	if out, err := exec.Command("go", "build", "-o", bin, "../leased").CombinedOutput(); err != nil {
		t.Fatalf("build leased: %v\n%s", err, out)
	}
	var buf bytes.Buffer
	err := run([]string{
		"-crash", "-leased", bin, "-tenants", "8", "-events", "60",
		"-shards", "4", "-producers", "2", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Mode != "crash" {
		t.Errorf("mode = %q", rep.Mode)
	}
	if rep.Verified == nil || !*rep.Verified {
		t.Error("kill-and-recover run was not verified against Replay")
	}
	if rep.Engine.Events != rep.TotalEvents {
		t.Errorf("recovered daemon processed %d of %d events", rep.Engine.Events, rep.TotalEvents)
	}
}

// TestRemoteVerified drives the whole remote path end to end: an
// in-process loopback daemon, sessions opened from wire specs, events
// submitted over HTTP, and every tenant's result verified byte-identical
// against a single-threaded Replay of a spec-built leaser.
func TestRemoteVerified(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-remote", "-tenants", "10", "-events", "60", "-shards", "4",
		"-producers", "3", "-chunk", "9", "-verify", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Mode != "remote" {
		t.Errorf("mode = %q, want remote", rep.Mode)
	}
	if rep.Verified == nil || !*rep.Verified {
		t.Error("remote run was not verified against Replay")
	}
	if rep.Engine.Events != rep.TotalEvents {
		t.Errorf("daemon processed %d of %d events", rep.Engine.Events, rep.TotalEvents)
	}
	if rep.Engine.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", rep.Engine.Dropped)
	}
}

// TestRemoteMatchesEngineMode asserts the HTTP boundary changes nothing
// about the workload's outcome: a remote run and an in-process run of
// the same seed report identical event totals and identical engine-side
// cumulative cost.
func TestRemoteMatchesEngineMode(t *testing.T) {
	report := func(remote bool) jsonReport {
		args := []string{"-tenants", "8", "-events", "50", "-json"}
		if remote {
			args = append(args, "-remote")
		}
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		var rep jsonReport
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	local, remote := report(false), report(true)
	if local.TotalEvents != remote.TotalEvents {
		t.Errorf("event totals differ: engine %d vs remote %d", local.TotalEvents, remote.TotalEvents)
	}
	if local.Engine.Cost != remote.Engine.Cost {
		t.Errorf("costs differ: engine %v vs remote %v", local.Engine.Cost, remote.Engine.Cost)
	}
}
