package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestJSONReport runs a small verified load and checks the machine-
// readable report is complete and self-consistent.
func TestJSONReport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-tenants", "10", "-events", "60", "-shards", "4",
		"-producers", "3", "-chunk", "7", "-verify", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Tool != "leaseload" {
		t.Errorf("tool = %q", rep.Tool)
	}
	if rep.Tenants != 10 {
		t.Errorf("tenants = %d, want 10", rep.Tenants)
	}
	if rep.TotalEvents <= 0 || rep.EventsPerSec <= 0 {
		t.Errorf("events = %d, rate = %v, want > 0", rep.TotalEvents, rep.EventsPerSec)
	}
	if rep.Engine.Events != rep.TotalEvents {
		t.Errorf("engine processed %d of %d events", rep.Engine.Events, rep.TotalEvents)
	}
	if rep.Engine.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", rep.Engine.Dropped)
	}
	if len(rep.Engine.Shards) != 4 {
		t.Errorf("shard samples = %d, want 4", len(rep.Engine.Shards))
	}
	if rep.Verified == nil || !*rep.Verified {
		t.Error("run was not verified against Replay")
	}
	var n int
	for _, c := range rep.Domains {
		n += c
	}
	if n != rep.Tenants {
		t.Errorf("domain counts sum to %d, want %d", n, rep.Tenants)
	}
}

// TestTextReport checks the human-readable output carries the headline
// numbers.
func TestTextReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tenants", "5", "-events", "40", "-shards", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tenants: 5", "events/s", "submit latency", "shards:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestDeterministicWorkload asserts the synthesized traffic is a pure
// function of the seed: two runs report identical totals and costs.
func TestDeterministicWorkload(t *testing.T) {
	report := func() jsonReport {
		var buf bytes.Buffer
		if err := run([]string{"-tenants", "8", "-events", "50", "-json"}, &buf); err != nil {
			t.Fatal(err)
		}
		var rep jsonReport
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := report(), report()
	if a.TotalEvents != b.TotalEvents {
		t.Errorf("event totals differ: %d vs %d", a.TotalEvents, b.TotalEvents)
	}
	if a.Engine.Cost != b.Engine.Cost {
		t.Errorf("costs differ: %v vs %v", a.Engine.Cost, b.Engine.Cost)
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tenants", "0"}, &buf); err == nil {
		t.Error("tenants=0 accepted")
	}
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1"}, &buf); err == nil {
		t.Error("-addr without -remote accepted")
	}
	if err := run([]string{"-crash"}, &buf); err == nil {
		t.Error("-crash without -leased accepted")
	}
	if err := run([]string{"-leased", "/tmp/leased"}, &buf); err == nil {
		t.Error("-leased without -crash accepted")
	}
	if err := run([]string{"-data-dir", "/tmp/x"}, &buf); err == nil {
		t.Error("-data-dir without -crash accepted")
	}
	if err := run([]string{"-crash", "-leased", "/tmp/leased", "-remote"}, &buf); err == nil {
		t.Error("-crash combined with -remote accepted")
	}
	if err := run([]string{"-durable-bench", "-remote"}, &buf); err == nil {
		t.Error("-durable-bench combined with -remote accepted")
	}
}

// TestDurableBenchReport runs the fsync on/off pair on a small workload
// and checks the combined report: both halves complete, process every
// event, and are verified against Replay.
func TestDurableBenchReport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-durable-bench", "-tenants", "8", "-events", "50",
		"-shards", "4", "-producers", "2", "-verify",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep durableReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Mode != "durable-bench" {
		t.Errorf("mode = %q", rep.Mode)
	}
	for name, half := range map[string]jsonReport{"fsync_off": rep.FsyncOff, "fsync_on": rep.FsyncOn} {
		if half.Engine.Events != rep.TotalEvents {
			t.Errorf("%s: processed %d of %d events", name, half.Engine.Events, rep.TotalEvents)
		}
		if half.Verified == nil || !*half.Verified {
			t.Errorf("%s: not verified against Replay", name)
		}
	}
	// Per-tenant results are byte-identical (both halves verified against
	// Replay above), but the engine-wide cost counter accumulates in
	// batch-processing order, so concurrent producers can reorder the
	// float additions by an ulp between the two runs.
	off, on := rep.FsyncOff.Engine.Cost, rep.FsyncOn.Engine.Cost
	if math.Abs(off-on) > 1e-9*math.Max(1, math.Abs(off)) {
		t.Errorf("fsync changed the workload outcome: %v vs %v", off, on)
	}
}

// TestCrashRecovery runs the real kill-and-recover drill: build the
// daemon, SIGKILL it mid-load, restart it on the same data dir, resume
// every tenant from its recovered count, and verify byte-identity with
// Replay of each tenant's full logged history.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash drill builds and spawns the daemon")
	}
	if runtime.GOOS == "windows" {
		t.Skip("drill relies on SIGKILL/SIGTERM")
	}
	bin := filepath.Join(t.TempDir(), "leased")
	if out, err := exec.Command("go", "build", "-o", bin, "../leased").CombinedOutput(); err != nil {
		t.Fatalf("build leased: %v\n%s", err, out)
	}
	var buf bytes.Buffer
	err := run([]string{
		"-crash", "-leased", bin, "-tenants", "8", "-events", "60",
		"-shards", "4", "-producers", "2", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Mode != "crash" {
		t.Errorf("mode = %q", rep.Mode)
	}
	if rep.Verified == nil || !*rep.Verified {
		t.Error("kill-and-recover run was not verified against Replay")
	}
	if rep.Engine.Events != rep.TotalEvents {
		t.Errorf("recovered daemon processed %d of %d events", rep.Engine.Events, rep.TotalEvents)
	}
}

// TestRemoteVerified drives the whole remote path end to end: an
// in-process loopback daemon, sessions opened from wire specs, events
// submitted over HTTP, and every tenant's result verified byte-identical
// against a single-threaded Replay of a spec-built leaser.
func TestRemoteVerified(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-remote", "-tenants", "10", "-events", "60", "-shards", "4",
		"-producers", "3", "-chunk", "9", "-verify", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Mode != "remote" {
		t.Errorf("mode = %q, want remote", rep.Mode)
	}
	if rep.Verified == nil || !*rep.Verified {
		t.Error("remote run was not verified against Replay")
	}
	if rep.Engine.Events != rep.TotalEvents {
		t.Errorf("daemon processed %d of %d events", rep.Engine.Events, rep.TotalEvents)
	}
	if rep.Engine.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", rep.Engine.Dropped)
	}
}

// TestRemoteMatchesEngineMode asserts the HTTP boundary changes nothing
// about the workload's outcome: a remote run and an in-process run of
// the same seed report identical event totals and identical engine-side
// cumulative cost.
func TestRemoteMatchesEngineMode(t *testing.T) {
	report := func(remote bool) jsonReport {
		args := []string{"-tenants", "8", "-events", "50", "-json"}
		if remote {
			args = append(args, "-remote")
		}
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		var rep jsonReport
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	local, remote := report(false), report(true)
	if local.TotalEvents != remote.TotalEvents {
		t.Errorf("event totals differ: engine %d vs remote %d", local.TotalEvents, remote.TotalEvents)
	}
	if local.Engine.Cost != remote.Engine.Cost {
		t.Errorf("costs differ: engine %v vs remote %v", local.Engine.Cost, remote.Engine.Cost)
	}
}

// TestRampReport runs a small stepped ramp with a generous SLA so every
// step passes, and checks the ramp section is complete and the knee is
// mirrored into the report's top-level throughput figure.
func TestRampReport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-ramp", "-tenants", "12", "-events", "40", "-step-tenants", "4",
		"-step-duration", "10s", "-sla-p99", "10000", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Mode != "ramp" {
		t.Errorf("mode = %q, want ramp", rep.Mode)
	}
	if rep.Ramp == nil {
		t.Fatal("report has no ramp section")
	}
	if got := len(rep.Ramp.Steps); got != 3 {
		t.Errorf("steps = %d, want 3 (12 tenants in steps of 4)", got)
	}
	for i, s := range rep.Ramp.Steps {
		if want := 4 * (i + 1); s.Tenants != want {
			t.Errorf("step %d tenants = %d, want %d", i, s.Tenants, want)
		}
		if !s.SLAMet || !s.Completed {
			t.Errorf("step %d broke a 10s SLA: %+v", i, s)
		}
		if s.SubmittedEvents <= 0 || s.EventsPerSec <= 0 {
			t.Errorf("step %d has no throughput: %+v", i, s)
		}
	}
	if rep.Ramp.MaxTenantsUnderSLA != 12 {
		t.Errorf("knee = %d tenants, want 12", rep.Ramp.MaxTenantsUnderSLA)
	}
	last := rep.Ramp.Steps[len(rep.Ramp.Steps)-1]
	if rep.Ramp.MaxEventsPerSecUnderSLA != last.EventsPerSec {
		t.Errorf("knee throughput %v != last step %v", rep.Ramp.MaxEventsPerSecUnderSLA, last.EventsPerSec)
	}
	if rep.EventsPerSec != rep.Ramp.MaxEventsPerSecUnderSLA {
		t.Errorf("top-level events_per_sec %v does not mirror the knee %v",
			rep.EventsPerSec, rep.Ramp.MaxEventsPerSecUnderSLA)
	}
}

// TestRampFirstStepBreaks: an impossible SLA means no sustainable step,
// and the text report says so instead of inventing a knee.
func TestRampFirstStepBreaks(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-ramp", "-tenants", "4", "-events", "30", "-step-tenants", "4",
		"-sla-p99", "0.0001",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "none — the first step already broke the SLA") {
		t.Errorf("output missing the no-knee verdict:\n%s", out)
	}
}

// TestArrivalDeterminism: the shaped arrival processes are pure
// functions of the seed, and unknown names are rejected up front.
func TestArrivalDeterminism(t *testing.T) {
	for _, name := range []string{"diurnal", "bursty"} {
		report := func() jsonReport {
			var buf bytes.Buffer
			args := []string{"-tenants", "8", "-events", "50", "-arrival", name, "-json"}
			if err := run(args, &buf); err != nil {
				t.Fatal(err)
			}
			var rep jsonReport
			if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
				t.Fatal(err)
			}
			return rep
		}
		a, b := report(), report()
		if a.TotalEvents <= 0 {
			t.Errorf("%s: no events submitted", name)
		}
		// Engine-wide cost is compared with an ulp-scale tolerance: the
		// counter accumulates in batch-processing order, which concurrent
		// producers reorder between runs (per-tenant costs are exact).
		if a.TotalEvents != b.TotalEvents ||
			math.Abs(a.Engine.Cost-b.Engine.Cost) > 1e-9*math.Max(1, math.Abs(a.Engine.Cost)) {
			t.Errorf("%s: runs differ: %d/%v vs %d/%v",
				name, a.TotalEvents, a.Engine.Cost, b.TotalEvents, b.Engine.Cost)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-arrival", "lumpy"}, &buf); err == nil {
		t.Error("unknown arrival process accepted")
	}
}

// TestZipfSizesFlag: skewed per-tenant volumes stay deterministic and
// reshape the load without dropping it.
func TestZipfSizesFlag(t *testing.T) {
	report := func() jsonReport {
		var buf bytes.Buffer
		if err := run([]string{"-tenants", "8", "-events", "50", "-zipf-sizes", "1.2", "-json", "-verify"}, &buf); err != nil {
			t.Fatal(err)
		}
		var rep jsonReport
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := report(), report()
	if a.TotalEvents <= 0 || a.TotalEvents != b.TotalEvents {
		t.Errorf("zipf runs not deterministic: %d vs %d", a.TotalEvents, b.TotalEvents)
	}
	if a.Verified == nil || !*a.Verified {
		t.Error("zipf-skewed run was not verified against Replay")
	}
}

// TestGateFlag: a run gated against its own snapshot passes, and a
// doctored reference with an inflated baseline fails the gate.
func TestGateFlag(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.json")
	args := []string{"-tenants", "8", "-events", "50", "-json"}
	var buf bytes.Buffer
	if err := run(append(args, "-out", ref), &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	// Generous tolerance: the two runs measure real wall-clock, so allow
	// wide scheduling noise — the pass/fail mechanics are what's tested.
	if err := run(append(args, "-gate", ref, "-gate-tolerance", "0.9"), &buf); err != nil {
		t.Fatalf("gate against own snapshot failed: %v", err)
	}
	if !strings.Contains(buf.String(), "gate:") {
		t.Errorf("output missing the gate verdict:\n%s", buf.String())
	}

	raw, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	snap["events_per_sec"] = 1e12 // no machine sustains this baseline
	doctored, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err = run(append(args, "-gate", bad, "-gate-tolerance", "0.15"), &buf)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("gate against inflated baseline: err = %v, want regression", err)
	}
}

// TestRampBadFlags: the ramp and gate flags reject inconsistent
// combinations up front.
func TestRampBadFlags(t *testing.T) {
	var buf bytes.Buffer
	for name, args := range map[string][]string{
		"-ramp with -remote":            {"-ramp", "-remote"},
		"-ramp with -durable-bench":     {"-ramp", "-durable-bench"},
		"-ramp with -verify":            {"-ramp", "-verify"},
		"-sla-p99 without -ramp":        {"-sla-p99", "3"},
		"-step-tenants without -ramp":   {"-step-tenants", "4"},
		"-gate-tolerance without -gate": {"-gate-tolerance", "0.2"},
		"zero sla":                      {"-ramp", "-sla-p99", "0"},
		"bad percentile":                {"-ramp", "-sla-percentile", "1.5"},
		"zero step":                     {"-ramp", "-step-tenants", "0"},
		"negative zipf":                 {"-zipf-sizes", "-1"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
