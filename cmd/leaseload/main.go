// Command leaseload is the load generator for the sharded multi-tenant
// engine: it synthesizes mixed-domain tenant traffic (parking days,
// deadlines, set-cover elements, facility batches, Steiner connects —
// one domain per tenant, streams drawn from internal/workload), pumps it
// through the engine from concurrent producers, and reports sustained
// throughput plus submit-latency percentiles. With -verify every
// tenant's engine output is additionally checked byte-identical against
// a single-threaded Replay. Like leasebench, -json emits a
// machine-readable report (committed snapshots are named BENCH_*.json).
//
// Usage:
//
//	leaseload -tenants 64 -events 256 -shards 8 -batch 64 -queue 256 -producers 4
//	leaseload -verify                        # parity-check tenants vs Replay
//	leaseload -json [-out BENCH_PR3.json]    # machine-readable report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"leasing"
	"leasing/internal/sim"
	"leasing/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leaseload:", err)
		os.Exit(1)
	}
}

// tenant is one synthetic session: a name, its fixed event stream, and a
// factory building a fresh deterministic leaser (called once to serve in
// the engine and, under -verify, once more for the reference Replay).
type tenant struct {
	name   string
	domain string
	events []leasing.Event
	fresh  func() (leasing.Leaser, error)
}

type latencyStats struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// jsonReport is the machine-readable format, the leaseload counterpart
// of leasebench's report: configuration, throughput, latency, and the
// engine's own per-shard counters.
type jsonReport struct {
	Tool            string                `json:"tool"`
	GoVersion       string                `json:"go_version"`
	Seed            int64                 `json:"seed"`
	Tenants         int                   `json:"tenants"`
	Domains         map[string]int        `json:"domains"`
	TotalEvents     int64                 `json:"total_events"`
	Shards          int                   `json:"shards"`
	Batch           int                   `json:"batch"`
	Queue           int                   `json:"queue"`
	Producers       int                   `json:"producers"`
	Chunk           int                   `json:"chunk"`
	ElapsedMS       float64               `json:"elapsed_ms"`
	EventsPerSec    float64               `json:"events_per_sec"`
	SubmitLatencyUS latencyStats          `json:"submit_latency_us"`
	Engine          leasing.EngineMetrics `json:"engine"`
	Verified        *bool                 `json:"verified,omitempty"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("leaseload", flag.ContinueOnError)
	var (
		tenants   = fs.Int("tenants", 64, "number of concurrent tenant sessions (domains cycle per tenant)")
		events    = fs.Int("events", 256, "target events per tenant (streams are stochastic, so counts vary around this)")
		shards    = fs.Int("shards", 8, "engine shards")
		batch     = fs.Int("batch", 64, "engine batch size (events drained per shard wake)")
		queue     = fs.Int("queue", 256, "engine per-shard queue depth (backpressure)")
		producers = fs.Int("producers", 4, "concurrent producer goroutines (tenants are partitioned across them)")
		chunk     = fs.Int("chunk", 32, "events per SubmitBatch call")
		seed      = fs.Int64("seed", 2015, "base random seed for workload synthesis")
		verify    = fs.Bool("verify", false, "after the run, check every tenant byte-identical to a single-threaded Replay")
		jsonOut   = fs.Bool("json", false, "emit a machine-readable JSON report")
		outPath   = fs.String("out", "", "with -json: write the report to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenants < 1 || *events < 1 || *producers < 1 || *chunk < 1 {
		return fmt.Errorf("-tenants, -events, -producers and -chunk must be >= 1")
	}
	// The engine would silently substitute defaults for these; reject
	// them instead so the report never misstates the measured config.
	if *shards < 1 || *batch < 1 || *queue < 1 {
		return fmt.Errorf("-shards, -batch and -queue must be >= 1")
	}

	cfg := leasing.PowerLeaseConfig(3, 4, 0.55)
	ts := make([]*tenant, *tenants)
	domains := map[string]int{}
	var total int64
	for i := range ts {
		t, err := buildTenant(i, cfg, sim.TrialSeed(*seed, i), *events)
		if err != nil {
			return fmt.Errorf("tenant %d: %w", i, err)
		}
		ts[i] = t
		domains[t.domain]++
		total += int64(len(t.events))
	}

	eng := leasing.NewEngine(leasing.EngineConfig{
		Shards:     *shards,
		QueueDepth: *queue,
		BatchSize:  *batch,
		RecordRuns: *verify,
	})
	defer eng.Close()
	for _, t := range ts {
		lsr, err := t.fresh()
		if err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
		if err := eng.Open(t.name, lsr); err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
	}

	// Partition tenants across producers; each producer round-robins its
	// tenants in chunks so shard queues see interleaved multi-tenant
	// traffic, and records the latency of every SubmitBatch (which
	// includes any backpressure stall).
	lats := make([][]float64, *producers)
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < *producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var mine []*tenant
			for i := p; i < len(ts); i += *producers {
				mine = append(mine, ts[i])
			}
			remaining := make([][]leasing.Event, len(mine))
			for i, t := range mine {
				remaining[i] = t.events
			}
			for live := len(mine); live > 0; {
				live = 0
				for i, t := range mine {
					evs := remaining[i]
					if len(evs) == 0 {
						continue
					}
					n := *chunk
					if n > len(evs) {
						n = len(evs)
					}
					t0 := time.Now()
					if err := eng.SubmitBatch(t.name, evs[:n]); err != nil {
						return // closed mid-run; the flush below will report
					}
					lats[p] = append(lats[p], float64(time.Since(t0).Nanoseconds())/1e3)
					remaining[i] = evs[n:]
					if len(remaining[i]) > 0 {
						live++
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if err := eng.Flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)

	report := jsonReport{
		Tool:         "leaseload",
		GoVersion:    runtime.Version(),
		Seed:         *seed,
		Tenants:      *tenants,
		Domains:      domains,
		TotalEvents:  total,
		Shards:       *shards,
		Batch:        *batch,
		Queue:        *queue,
		Producers:    *producers,
		Chunk:        *chunk,
		ElapsedMS:    float64(elapsed.Microseconds()) / 1000,
		EventsPerSec: float64(total) / elapsed.Seconds(),
		Engine:       eng.Metrics(),
	}
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	report.SubmitLatencyUS = latencyStats{
		P50: quantileSorted(all, 0.50),
		P90: quantileSorted(all, 0.90),
		P99: quantileSorted(all, 0.99),
	}
	if len(all) > 0 {
		report.SubmitLatencyUS.Max = all[len(all)-1]
	}

	if *verify {
		ok := true
		for _, t := range ts {
			if err := verifyTenant(eng, t); err != nil {
				ok = false
				fmt.Fprintf(os.Stderr, "leaseload: verify %s: %v\n", t.name, err)
			}
		}
		report.Verified = &ok
		if !ok {
			return fmt.Errorf("engine output diverged from Replay")
		}
	}

	if *jsonOut {
		return writeJSON(report, *outPath, w)
	}
	printText(w, report)
	return nil
}

// buildTenant synthesizes one tenant's instance, event stream and leaser
// factory; the domain cycles with the tenant index. All randomness flows
// from tseed, so a tenant is reproducible independent of the others.
func buildTenant(i int, cfg *leasing.LeaseConfig, tseed int64, events int) (*tenant, error) {
	rng := rand.New(rand.NewSource(tseed))
	horizon := int64(2 * events)
	switch i % 5 {
	case 0:
		days := workload.DemandDays(rng, horizon, 0.5)
		return &tenant{
			name:   fmt.Sprintf("t%04d-days", i),
			domain: "days",
			events: leasing.DayEvents(days),
			fresh: func() (leasing.Leaser, error) {
				alg, err := leasing.NewDeterministicParkingPermit(cfg)
				if err != nil {
					return nil, err
				}
				return leasing.NewParkingStream(alg), nil
			},
		}, nil

	case 1:
		clients := workload.DeadlineStream(rng, horizon, 0.5, 12)
		return &tenant{
			name:   fmt.Sprintf("t%04d-deadline", i),
			domain: "deadline",
			events: leasing.WindowEvents(clients),
			fresh: func() (leasing.Leaser, error) {
				return leasing.NewDeadlineStream(cfg)
			},
		}, nil

	case 2:
		const n, m, delta = 32, 20, 3
		zipf, err := workload.NewZipf(rng, n, 1.5)
		if err != nil {
			return nil, err
		}
		arrivals := workload.ElementStream(rng, horizon, 0.5,
			zipf.Draw, func() int { return 1 + rng.Intn(2) })
		fam, err := leasing.RandomSetFamily(rng, n, m, delta)
		if err != nil {
			return nil, err
		}
		costs := leasing.RandomSetCosts(rng, m, cfg, 0.5)
		inst, err := leasing.NewSetCoverInstance(fam, cfg, costs, arrivals, leasing.PerArrival)
		if err != nil {
			return nil, err
		}
		return &tenant{
			name:   fmt.Sprintf("t%04d-elements", i),
			domain: "elements",
			events: leasing.ElementEvents(arrivals),
			fresh: func() (leasing.Leaser, error) {
				return leasing.NewSetCoverStream(inst, rand.New(rand.NewSource(tseed+1)))
			},
		}, nil

	case 3:
		// Client batches clustered around a handful of sites; one Batch
		// event per step (empty steps included, as in stream.Batches).
		const sitesN = 6
		sites := make([]leasing.Point, sitesN)
		for s := range sites {
			sites[s] = leasing.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		}
		facCosts := make([][]float64, sitesN)
		for s := range facCosts {
			row := make([]float64, cfg.K())
			f := 1 + rng.Float64()*0.5
			for k := range row {
				row[k] = cfg.Cost(k) * f
			}
			facCosts[s] = row
		}
		// Steps are halved so a facility tenant lands near the same event
		// count as the others while still exercising multi-client steps.
		batches := make([][]leasing.Point, events/2+1)
		for t := range batches {
			for c := rng.Intn(3); c > 0; c-- {
				s := sites[rng.Intn(sitesN)]
				batches[t] = append(batches[t], leasing.Point{
					X: s.X + rng.Float64()*4, Y: s.Y + rng.Float64()*4})
			}
		}
		inst, err := leasing.NewFacilityInstance(cfg, sites, facCosts, batches)
		if err != nil {
			return nil, err
		}
		return &tenant{
			name:   fmt.Sprintf("t%04d-facility", i),
			domain: "facility",
			events: leasing.BatchEvents(batches),
			fresh: func() (leasing.Leaser, error) {
				return leasing.NewFacilityStream(inst)
			},
		}, nil

	default:
		const terminals = 16
		g, err := leasing.RandomConnectedGraph(rng, terminals, 3*terminals, 1, 10)
		if err != nil {
			return nil, err
		}
		connects, err := workload.ConnectStream(rng, horizon, 0.5, terminals)
		if err != nil {
			return nil, err
		}
		reqs := make([]leasing.SteinerRequest, len(connects))
		for j, c := range connects {
			reqs[j] = leasing.SteinerRequest{Time: c.T, S: c.S, T: c.U}
		}
		inst, err := leasing.NewSteinerInstance(g, cfg, reqs)
		if err != nil {
			return nil, err
		}
		return &tenant{
			name:   fmt.Sprintf("t%04d-steiner", i),
			domain: "steiner",
			events: leasing.ConnectEvents(reqs),
			fresh: func() (leasing.Leaser, error) {
				return leasing.NewSteinerStream(inst)
			},
		}, nil
	}
}

// verifyTenant holds the engine to its determinism anchor: the recorded
// run, cached cost and snapshot must equal a fresh single-threaded
// Replay of the tenant's events.
func verifyTenant(eng *leasing.Engine, t *tenant) error {
	got, err := eng.Result(t.name)
	if err != nil {
		return err
	}
	ref, err := t.fresh()
	if err != nil {
		return err
	}
	want, err := leasing.Replay(ref, t.events)
	if err != nil {
		return err
	}
	if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", want) {
		return fmt.Errorf("recorded run differs from Replay")
	}
	cost, err := eng.Cost(t.name)
	if err != nil {
		return err
	}
	if cost != want.Final {
		return fmt.Errorf("cached cost %+v != replay final %+v", cost, want.Final)
	}
	sol, err := eng.Snapshot(t.name)
	if err != nil {
		return err
	}
	if fmt.Sprintf("%#v", sol) != fmt.Sprintf("%#v", ref.Snapshot()) {
		return fmt.Errorf("cached snapshot differs from replay snapshot")
	}
	return nil
}

func writeJSON(report jsonReport, outPath string, w io.Writer) error {
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if outPath != "" {
		fmt.Printf("leaseload: wrote %s (%d tenants, %d events)\n", outPath, report.Tenants, report.TotalEvents)
	}
	return nil
}

func printText(w io.Writer, r jsonReport) {
	fmt.Fprintf(w, "tenants: %d (", r.Tenants)
	first := true
	for _, d := range []string{"days", "deadline", "elements", "facility", "steiner"} {
		if n, ok := r.Domains[d]; ok {
			if !first {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s %d", d, n)
			first = false
		}
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "engine:  shards=%d batch=%d queue=%d producers=%d chunk=%d\n",
		r.Shards, r.Batch, r.Queue, r.Producers, r.Chunk)
	fmt.Fprintf(w, "events:  %d in %.1fms  (%.0f events/s)\n",
		r.TotalEvents, r.ElapsedMS, r.EventsPerSec)
	fmt.Fprintf(w, "submit latency µs: p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
		r.SubmitLatencyUS.P50, r.SubmitLatencyUS.P90, r.SubmitLatencyUS.P99, r.SubmitLatencyUS.Max)
	fmt.Fprintf(w, "shards:  %d batches (%.1f events/batch avg), dropped %d, total cost %.2f\n",
		r.Engine.Batches, float64(r.Engine.Events)/float64(max(r.Engine.Batches, 1)), r.Engine.Dropped, r.Engine.Cost)
	if r.Verified != nil {
		fmt.Fprintf(w, "verified: every tenant byte-identical to single-threaded Replay: %v\n", *r.Verified)
	}
}

// quantileSorted is stats.Quantile's linear interpolation over an
// already-sorted sample, so the latency set is sorted once instead of
// per percentile. Returns 0 for an empty sample.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
