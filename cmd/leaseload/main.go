// Command leaseload is the load generator for the multi-tenant lease
// serving stack: it synthesizes mixed-domain tenant traffic (parking
// days, deadlines, set-cover elements, facility batches, Steiner
// connects — one domain per tenant, streams drawn from
// internal/workload), pumps it through the engine from concurrent
// producers, and reports sustained throughput plus submit-latency
// percentiles. By default it drives the in-process engine; with -remote
// it drives the HTTP lease service instead — against a running
// cmd/leased daemon (-addr), or against an in-process loopback daemon
// it starts itself (no -addr) — measuring end-to-end HTTP submit
// latency. In remote mode -binary switches submits and results to the
// compact application/x-lease-binary framing the daemon negotiates per
// request (JSON stays the default), and -cpuprofile writes a pprof CPU
// profile of the whole run for before/after comparisons between the
// two encodings. With -verify every tenant's output is additionally checked
// byte-identical against a single-threaded Replay (in remote mode the
// daemon must run with -record). Like leasebench, -json emits a
// machine-readable report (committed snapshots are named BENCH_*.json;
// see the README's trajectory convention).
//
// Two durability modes exercise the write-ahead log end to end. With
// -durable-bench the in-process workload runs twice through a
// WAL-backed engine — fsync off, then fsync on — and the combined
// report (committed as BENCH_PR5.json) quantifies the durability
// throughput trade-off. With -crash the tool runs the full
// kill-and-recover drill against a real daemon: it spawns the -leased
// binary with a WAL data dir, SIGKILLs it once half the load is
// acknowledged, restarts it, resumes every tenant after the daemon's
// recovered processed-event count, and verifies every tenant's result
// byte-identical to a single-threaded Replay of its full logged
// history. With -crash -cluster the drill goes multi-node: -nodes
// peered daemons share a placement ring and ship WAL records to each
// tenant's replica, the busiest node is SIGKILLed mid-load, its tenants
// fail over to their replicas (MarkDown + Activate on the cluster
// client), ingestion resumes from each new owner's processed count, and
// every tenant must still verify byte-identical to Replay. With
// -cluster-bench the tool instead measures how throughput scales with
// cluster size: the same workload through in-process replicated fleets
// of 1, 2 and 4 nodes, reported with per-fleet speedup and scaling
// efficiency (the BENCH_PR8.json format).
//
// The synthesized traffic is shaped by pluggable arrival processes
// (-arrival constant|diurnal|bursty; internal/workload) and optionally
// by Zipf-skewed per-tenant volumes (-zipf-sizes), all deterministic in
// -seed. With -ramp the tool runs the SLA-driven stepped harness
// instead of one fixed load: tenant concurrency grows by -step-tenants
// per step (fresh engine each step, -step-duration submission deadline)
// until the submit-latency SLA (-sla-p99 milliseconds at
// -sla-percentile) breaks, and the report's ramp section records the
// whole trajectory plus the maximum sustainable throughput under SLA
// (the BENCH_PR6.json format). With -gate the run is compared against a
// committed BENCH_*.json snapshot of the same mode and fails on
// regression beyond -gate-tolerance — the CI perf gate.
//
// Usage:
//
//	leaseload -tenants 64 -events 256 -shards 8 -batch 64 -queue 256 -producers 4
//	leaseload -verify                        # parity-check tenants vs Replay
//	leaseload -remote [-addr http://host:8080] [-verify]
//	leaseload -remote -binary [-cpuprofile cpu.out]  # binary wire framing
//	leaseload -durable-bench [-out BENCH_PR5.json]   # fsync on/off WAL throughput
//	leaseload -crash -leased /path/to/leased [-data-dir DIR]
//	leaseload -crash -cluster -leased /path/to/leased [-nodes 3]
//	leaseload -cluster-bench [-out BENCH_PR8.json]   # 1/2/4-node scaling
//	leaseload -ramp -sla-p99 5 [-step-tenants 8] [-step-duration 2s]
//	leaseload -arrival diurnal -zipf-sizes 1.2   # shaped, skewed traffic
//	leaseload -ramp -json -gate BENCH_PR6.json [-gate-tolerance 0.15]
//	leaseload -json [-out BENCH_PR3.json]    # machine-readable report
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"leasing"
	"leasing/internal/benchgate"
	"leasing/internal/sim"
	"leasing/internal/stats"
	"leasing/internal/wire"
	"leasing/internal/workload"
)

// latReservoirCap bounds the submit-latency sample: produce records
// every call into a fixed-size reservoir (Vitter's algorithm R), so
// memory stays flat however long a run or ramp step submits.
const latReservoirCap = 4096

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leaseload:", err)
		os.Exit(1)
	}
}

// tenant is one synthetic session: a name, its fixed event stream, a
// factory building a fresh deterministic leaser (called once to serve in
// the engine and, under -verify, once more for the reference Replay),
// and the wire spec that opens the same session remotely.
type tenant struct {
	name   string
	domain string
	events []leasing.Event
	fresh  func() (leasing.Leaser, error)
	spec   leasing.RemoteOpenRequest
	wevs   []leasing.RemoteEvent // events in wire form (remote mode)
}

type latencyStats struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// jsonReport is the machine-readable format, the leaseload counterpart
// of leasebench's report: configuration, throughput, latency, and the
// engine's own per-shard counters. Mode records the driven boundary:
// "engine" for in-process runs, "remote" for HTTP runs (where the
// latency percentiles include the network round trip and any
// backpressure retries).
type jsonReport struct {
	Tool            string                `json:"tool"`
	Mode            string                `json:"mode"`
	GoVersion       string                `json:"go_version"`
	Seed            int64                 `json:"seed"`
	Tenants         int                   `json:"tenants"`
	Domains         map[string]int        `json:"domains"`
	TotalEvents     int64                 `json:"total_events"`
	Shards          int                   `json:"shards"`
	Batch           int                   `json:"batch"`
	Queue           int                   `json:"queue"`
	Producers       int                   `json:"producers"`
	Chunk           int                   `json:"chunk"`
	Encoding        string                `json:"encoding,omitempty"`
	ElapsedMS       float64               `json:"elapsed_ms"`
	EventsPerSec    float64               `json:"events_per_sec"`
	SubmitLatencyUS latencyStats          `json:"submit_latency_us"`
	Engine          leasing.EngineMetrics `json:"engine"`
	Verified        *bool                 `json:"verified,omitempty"`
	Ramp            *rampReport           `json:"ramp,omitempty"`
}

// rampReport is the -ramp section of the report: the SLA, the step
// schedule, every executed step, and the knee — the largest tenant
// count (and its throughput) that still met the SLA. In ramp mode the
// report's top-level events_per_sec and submit_latency_us mirror the
// last sustainable step, so the BENCH trajectory and the perf gate read
// ramp snapshots like any other.
type rampReport struct {
	SLAPercentile           float64    `json:"sla_percentile"`
	SLALatencyMS            float64    `json:"sla_latency_ms"`
	StepTenants             int        `json:"step_tenants"`
	StepDurationMS          float64    `json:"step_duration_ms"`
	Arrival                 string     `json:"arrival"`
	Steps                   []rampStep `json:"steps"`
	MaxTenantsUnderSLA      int        `json:"max_tenants_under_sla"`
	MaxEventsPerSecUnderSLA float64    `json:"max_events_per_sec_under_sla"`
}

// rampStep is one rung of the ramp: a fresh engine serving the first
// Tenants tenants. Completed reports whether the whole step load was
// submitted before the step deadline; a cut-off step is never
// sustainable, whatever its latency sample says.
type rampStep struct {
	Tenants         int          `json:"tenants"`
	SubmittedEvents int64        `json:"submitted_events"`
	Completed       bool         `json:"completed"`
	ElapsedMS       float64      `json:"elapsed_ms"`
	EventsPerSec    float64      `json:"events_per_sec"`
	SubmitLatencyUS latencyStats `json:"submit_latency_us"`
	LatencyAtSLAUS  float64      `json:"latency_at_sla_percentile_us"`
	SLAMet          bool         `json:"sla_met"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("leaseload", flag.ContinueOnError)
	var (
		tenants   = fs.Int("tenants", 64, "number of concurrent tenant sessions (domains cycle per tenant)")
		events    = fs.Int("events", 256, "target events per tenant (streams are stochastic, so counts vary around this)")
		shards    = fs.Int("shards", 8, "engine shards")
		batch     = fs.Int("batch", 64, "engine batch size (events drained per shard wake)")
		queue     = fs.Int("queue", 256, "engine per-shard queue depth (backpressure)")
		producers = fs.Int("producers", 4, "concurrent producer goroutines (tenants are partitioned across them)")
		chunk     = fs.Int("chunk", 32, "events per SubmitBatch call (per HTTP submit in -remote mode)")
		seed      = fs.Int64("seed", 2015, "base random seed for workload synthesis")
		verify    = fs.Bool("verify", false, "after the run, check every tenant byte-identical to a single-threaded Replay")
		remote    = fs.Bool("remote", false, "drive the HTTP lease service instead of the in-process engine")
		binaryEnc = fs.Bool("binary", false, "with -remote: submit events and read results over the binary wire framing (application/x-lease-binary) instead of JSON")
		addr      = fs.String("addr", "", "with -remote: base URL of a running leased daemon (empty starts an in-process loopback daemon)")
		crash     = fs.Bool("crash", false, "kill-and-recover drill: spawn a durable leased daemon (-leased), SIGKILL it mid-load, restart, resume from the recovered counts and verify every tenant against Replay")
		leasedBin = fs.String("leased", "", "with -crash: path to a built leased binary")
		dataDir   = fs.String("data-dir", "", "with -crash: WAL directory for the spawned daemon (default: a fresh temp dir, removed afterwards)")
		clusterFl = fs.Bool("cluster", false, "with -crash: multi-node drill — spawn -nodes peered daemons, SIGKILL the busiest mid-load, fail its tenants over to their replicas and verify every tenant against Replay")
		nodesFl   = fs.Int("nodes", 3, "with -crash -cluster: cluster size")
		clBench   = fs.Bool("cluster-bench", false, "scaling benchmark: run the workload through in-process replicated fleets of 1, 2 and 4 nodes and emit the combined JSON report (the BENCH_PR8.json format)")
		durable   = fs.Bool("durable-bench", false, "run the in-process workload twice through a WAL-backed engine (fsync off, then on) and emit the combined JSON report (the BENCH_PR5.json format)")
		jsonOut   = fs.Bool("json", false, "emit a machine-readable JSON report")
		outPath   = fs.String("out", "", "with -json: write the report to this file instead of stdout")
		arrival   = fs.String("arrival", "constant", "arrival process shaping every tenant's stream: constant, diurnal or bursty (deterministic in -seed)")
		domainsFl = fs.String("domains", "days,deadline,elements,facility,steiner", "comma-separated domain mix tenants cycle through (any subset; 'days' alone makes the cheapest per-event apply, so the run measures the ingestion path rather than the algorithms)")
		arrPeriod = fs.Int64("arrival-period", 64, "with -arrival diurnal: oscillation period in steps")
		zipfSizes = fs.Float64("zipf-sizes", 0, "skew per-tenant event volumes by a Zipf(s) rank-size law (0 = equal volumes); the total volume is preserved")
		ramp      = fs.Bool("ramp", false, "SLA-driven stepped harness: grow tenant concurrency by -step-tenants per step (up to -tenants) until the submit-latency SLA breaks; reports max sustainable throughput under SLA (in-process engine only)")
		slaP99    = fs.Float64("sla-p99", 5, "with -ramp: submit-latency SLA threshold in milliseconds, checked at -sla-percentile")
		slaPct    = fs.Float64("sla-percentile", 0.99, "with -ramp: latency percentile the SLA is checked at, in (0, 1]")
		stepTen   = fs.Int("step-tenants", 8, "with -ramp: tenants added per ramp step")
		stepDur   = fs.Duration("step-duration", 2*time.Second, "with -ramp: per-step submission deadline; a step cut off here is reported as unsustainable")
		gatePath  = fs.String("gate", "", "compare the run against this committed BENCH_*.json snapshot (same tool and mode) and fail on regression beyond -gate-tolerance")
		gateTol   = fs.Float64("gate-tolerance", 0.15, "with -gate: allowed fractional regression before the gate fails")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof format)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenants < 1 || *events < 1 || *producers < 1 || *chunk < 1 {
		return fmt.Errorf("-tenants, -events, -producers and -chunk must be >= 1")
	}
	// The engine would silently substitute defaults for these; reject
	// them instead so the report never misstates the measured config.
	if *shards < 1 || *batch < 1 || *queue < 1 {
		return fmt.Errorf("-shards, -batch and -queue must be >= 1")
	}
	if *addr != "" && !*remote {
		return fmt.Errorf("-addr requires -remote")
	}
	if *binaryEnc && !*remote {
		return fmt.Errorf("-binary requires -remote")
	}
	if *crash && *leasedBin == "" {
		return fmt.Errorf("-crash requires -leased (a built leased binary)")
	}
	if (*leasedBin != "" || *dataDir != "") && !*crash {
		return fmt.Errorf("-leased and -data-dir require -crash")
	}
	if *crash && (*remote || *durable) {
		return fmt.Errorf("-crash is its own mode; it cannot be combined with -remote or -durable-bench")
	}
	if *clusterFl && !*crash {
		return fmt.Errorf("-cluster requires -crash")
	}
	if *clusterFl && *nodesFl < 2 {
		return fmt.Errorf("-nodes must be >= 2 (a 1-node cluster has nothing to fail over to)")
	}
	if *clusterFl && *dataDir != "" {
		return fmt.Errorf("-data-dir cannot be combined with -cluster (each node gets its own temp dir)")
	}
	if !*clusterFl {
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if explicit["nodes"] {
			return fmt.Errorf("-nodes requires -cluster")
		}
	}
	if *clBench && (*remote || *crash || *durable || *ramp || *verify) {
		return fmt.Errorf("-cluster-bench is its own mode; it cannot be combined with -remote, -crash, -durable-bench, -ramp or -verify")
	}
	if *durable && *remote {
		return fmt.Errorf("-durable-bench drives the in-process engine; it cannot be combined with -remote")
	}
	if *ramp && (*remote || *crash || *durable) {
		return fmt.Errorf("-ramp drives the in-process engine; it cannot be combined with -remote, -crash or -durable-bench")
	}
	if *ramp && *verify {
		return fmt.Errorf("-ramp measures saturation (steps may be cut off mid-stream); it cannot be combined with -verify")
	}
	if !*ramp {
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		for _, name := range []string{"sla-p99", "sla-percentile", "step-tenants", "step-duration"} {
			if explicit[name] {
				return fmt.Errorf("-%s requires -ramp", name)
			}
		}
	}
	if *slaP99 <= 0 || *slaPct <= 0 || *slaPct > 1 {
		return fmt.Errorf("-sla-p99 must be > 0 and -sla-percentile in (0, 1]")
	}
	if *stepTen < 1 || *stepDur <= 0 {
		return fmt.Errorf("-step-tenants must be >= 1 and -step-duration > 0")
	}
	if *zipfSizes < 0 {
		return fmt.Errorf("-zipf-sizes must be >= 0")
	}
	if *gatePath == "" {
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if explicit["gate-tolerance"] {
			return fmt.Errorf("-gate-tolerance requires -gate")
		}
	}
	// Probe the arrival process once so a bad -arrival fails before any
	// work; tenants each get their own instance (the processes are
	// stateful) built from the same name.
	if _, err := workload.NewArrival(*arrival, 0.5, *arrPeriod); err != nil {
		return err
	}
	kinds, kerr := domainKinds(*domainsFl)
	if kerr != nil {
		return kerr
	}
	if *addr != "" {
		// An external daemon's engine configuration is set by the
		// daemon; local values would misstate the measured setup.
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		for _, name := range []string{"shards", "batch", "queue"} {
			if explicit[name] {
				return fmt.Errorf("-%s is set by the daemon; it cannot be combined with -addr", name)
			}
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	cfg := leasing.PowerLeaseConfig(3, 4, 0.55)
	sizes := make([]int, *tenants)
	for i := range sizes {
		sizes[i] = *events
	}
	if *zipfSizes > 0 {
		var err error
		if sizes, err = workload.ZipfSizes(*tenants, *zipfSizes, *tenants**events); err != nil {
			return err
		}
	}
	ts := make([]*tenant, *tenants)
	domains := map[string]int{}
	var total int64
	for i := range ts {
		t, err := buildTenant(i, kinds[i%len(kinds)], cfg, sim.TrialSeed(*seed, i), sizes[i], *arrival, *arrPeriod)
		if err != nil {
			return fmt.Errorf("tenant %d: %w", i, err)
		}
		ts[i] = t
		domains[t.domain]++
		total += int64(len(t.events))
	}

	report := jsonReport{
		Tool:        "leaseload",
		Mode:        "engine",
		GoVersion:   runtime.Version(),
		Seed:        *seed,
		Tenants:     *tenants,
		Domains:     domains,
		TotalEvents: total,
		Shards:      *shards,
		Batch:       *batch,
		Queue:       *queue,
		Producers:   *producers,
		Chunk:       *chunk,
	}

	if *durable {
		// The durable benchmark is a pair of runs; its combined report
		// is always JSON (the BENCH_PR5.json format).
		combined, err := runDurableBench(report, ts, engineParams{
			shards: *shards, batch: *batch, queue: *queue,
			producers: *producers, chunk: *chunk, verify: *verify,
		})
		if err != nil {
			return err
		}
		if err := writeJSON(combined, *outPath, w); err != nil {
			return err
		}
		return gateCheck(combined, *gatePath, *gateTol, w)
	}

	if *clBench {
		// Like the durable benchmark, the scaling benchmark is a series
		// of runs with a combined, always-JSON report (BENCH_PR8.json).
		combined, err := runClusterBench(report, ts, clusterBenchParams{
			shards: *shards, batch: *batch, queue: *queue,
			producers: *producers, chunk: *chunk,
			fleets: []int{1, 2, 4},
		})
		if err != nil {
			return err
		}
		if err := writeJSON(combined, *outPath, w); err != nil {
			return err
		}
		return gateCheck(combined, *gatePath, *gateTol, w)
	}

	var err error
	switch {
	case *ramp:
		report.Mode = "ramp"
		err = runRamp(&report, ts, rampParams{
			shards: *shards, batch: *batch, queue: *queue,
			producers: *producers, chunk: *chunk,
			stepTenants: *stepTen, stepDur: *stepDur,
			slaPct: *slaPct, slaMS: *slaP99,
			seed: *seed, arrival: *arrival,
		})
	case *crash && *clusterFl:
		report.Mode = "crash-cluster"
		err = runClusterCrash(&report, ts, clusterCrashParams{
			leasedBin: *leasedBin, nodes: *nodesFl,
			shards: *shards, batch: *batch, queue: *queue,
			producers: *producers, chunk: *chunk,
		})
	case *crash:
		report.Mode = "crash"
		err = runCrash(&report, ts, crashParams{
			leasedBin: *leasedBin, dataDir: *dataDir,
			shards: *shards, batch: *batch, queue: *queue,
			producers: *producers, chunk: *chunk,
		})
	case *remote:
		report.Mode = "remote"
		err = runRemote(&report, ts, remoteParams{
			addr: *addr, shards: *shards, batch: *batch, queue: *queue,
			producers: *producers, chunk: *chunk, verify: *verify,
			binary: *binaryEnc,
		})
	default:
		err = runEngine(&report, ts, engineParams{
			shards: *shards, batch: *batch, queue: *queue,
			producers: *producers, chunk: *chunk, verify: *verify,
		}, nil)
	}
	if err != nil {
		return err
	}

	if *jsonOut {
		if err := writeJSON(report, *outPath, w); err != nil {
			return err
		}
	} else {
		printText(w, report)
	}
	return gateCheck(report, *gatePath, *gateTol, w)
}

// gateCheck runs the perf-regression gate when -gate is set: the just-
// measured report is compared against the committed snapshot and the
// run fails on regression beyond the tolerance.
func gateCheck(report any, gatePath string, tolerance float64, w io.Writer) error {
	if gatePath == "" {
		return nil
	}
	measured, ref, err := benchgate.GateReport(report, gatePath, tolerance)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "gate:    ok, %s %.1f vs %s %.1f (tolerance %.0f%%)\n",
		measured.Name, measured.Value, gatePath, ref.Value, 100*tolerance)
	return nil
}

type engineParams struct {
	shards, batch, queue, producers, chunk int
	verify                                 bool
}

// runEngine drives the in-process engine, the original leaseload mode.
// A non-nil wlog makes the engine durable: sessions open through
// OpenSpec (so the log can rebuild them) and every submit is
// write-ahead logged before it is enqueued.
func runEngine(report *jsonReport, ts []*tenant, p engineParams, wlog *leasing.DurableLog) error {
	cfg := leasing.EngineConfig{
		Shards:     p.shards,
		QueueDepth: p.queue,
		BatchSize:  p.batch,
		RecordRuns: p.verify,
	}
	if wlog != nil {
		// Assigned only when non-nil: a typed nil pointer in the WAL
		// interface field would read as a configured WAL.
		cfg.WAL = wlog
	}
	eng := leasing.NewEngine(cfg)
	defer eng.Close()
	for _, t := range ts {
		lsr, err := t.fresh()
		if err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
		if wlog != nil {
			var spec []byte
			if spec, err = leasing.WireOpenSpec(t.spec); err == nil {
				err = eng.OpenSpec(t.name, lsr, spec)
			}
		} else {
			err = eng.Open(t.name, lsr)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
	}

	res := stats.NewReservoir(latReservoirCap, report.Seed)
	_, start, err := produce(ts, p.producers, func(t *tenant, lo, hi int) error {
		return eng.SubmitBatch(t.name, t.events[lo:hi])
	}, p.chunk, res, nil, nil)
	if err != nil {
		return err
	}
	if err := eng.Flush(); err != nil {
		return err
	}
	// Elapsed spans submission AND the flush barrier, so events still
	// queued on shards when producers finish are not counted as done —
	// the semantics every committed BENCH_PR*.json was measured with.
	elapsed := time.Since(start)

	report.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	report.EventsPerSec = float64(report.TotalEvents) / elapsed.Seconds()
	report.SubmitLatencyUS = summarize(res)
	report.Engine = eng.Metrics()

	if p.verify {
		ok := true
		for _, t := range ts {
			if err := verifyTenant(eng, t); err != nil {
				ok = false
				fmt.Fprintf(os.Stderr, "leaseload: verify %s: %v\n", t.name, err)
			}
		}
		report.Verified = &ok
		if !ok {
			return fmt.Errorf("engine output diverged from Replay")
		}
	}
	return nil
}

type remoteParams struct {
	addr                                   string
	shards, batch, queue, producers, chunk int
	verify                                 bool
	binary                                 bool
}

// runRemote drives the HTTP lease service: against a running daemon at
// p.addr, or against an in-process loopback daemon started here (the
// zero-setup path, also how the committed BENCH_PR4.json is produced).
func runRemote(report *jsonReport, ts []*tenant, p remoteParams) error {
	ctx := context.Background()
	addr := p.addr
	if addr == "" {
		eng := leasing.NewEngine(leasing.EngineConfig{
			Shards:     p.shards,
			QueueDepth: p.queue,
			BatchSize:  p.batch,
			RecordRuns: p.verify,
		})
		srv := &http.Server{Handler: leasing.Serve(eng, leasing.LeaseServerConfig{})}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			eng.Close()
			return err
		}
		go srv.Serve(ln)
		defer func() {
			srv.Close()
			eng.Close()
		}()
		addr = "http://" + ln.Addr().String()
	}
	report.Encoding = "json"
	if p.binary {
		report.Encoding = "binary"
	}
	cli := leasing.Dial(addr, leasing.RemoteClientOptions{Chunk: p.chunk, Binary: p.binary})
	if err := cli.Health(ctx); err != nil {
		return fmt.Errorf("health check %s: %w", addr, err)
	}

	for _, t := range ts {
		wevs, err := leasing.WireEvents(t.events)
		if err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
		t.wevs = wevs
		if err := cli.Open(ctx, t.name, t.spec); err != nil {
			return fmt.Errorf("open %s: %w", t.name, err)
		}
	}

	res := stats.NewReservoir(latReservoirCap, report.Seed)
	_, start, err := produce(ts, p.producers, func(t *tenant, lo, hi int) error {
		_, err := cli.Submit(ctx, t.name, t.wevs[lo:hi])
		return err
	}, p.chunk, res, nil, nil)
	if err != nil {
		return err
	}
	if err := cli.Flush(ctx, ts[0].name); err != nil {
		return err
	}
	// As in engine mode, elapsed spans submission and the flush barrier.
	elapsed := time.Since(start)

	report.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	report.EventsPerSec = float64(report.TotalEvents) / elapsed.Seconds()
	report.SubmitLatencyUS = summarize(res)
	m, err := cli.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	report.Engine = m.Engine()
	if p.addr != "" {
		// The daemon owns its engine configuration: report the shard
		// count it actually runs (visible in its metrics) and zero the
		// knobs the load generator cannot observe.
		report.Shards = len(m.Shards)
		report.Batch, report.Queue = 0, 0
	}

	if p.verify {
		ok := true
		for _, t := range ts {
			if err := verifyRemoteTenant(ctx, cli, t); err != nil {
				ok = false
				fmt.Fprintf(os.Stderr, "leaseload: verify %s: %v\n", t.name, err)
			}
		}
		report.Verified = &ok
		if !ok {
			return fmt.Errorf("remote output diverged from Replay")
		}
	}
	return nil
}

// durableReport is the combined fsync-on/off report -durable-bench
// emits (committed as BENCH_PR5.json): the same workload run twice
// through a WAL-backed engine, differing only in whether every
// acknowledged append is fsynced.
type durableReport struct {
	Tool        string     `json:"tool"`
	Mode        string     `json:"mode"`
	GoVersion   string     `json:"go_version"`
	Seed        int64      `json:"seed"`
	Tenants     int        `json:"tenants"`
	TotalEvents int64      `json:"total_events"`
	FsyncOff    jsonReport `json:"fsync_off"`
	FsyncOn     jsonReport `json:"fsync_on"`
}

// runDurableBench measures the WAL's cost at the engine boundary: the
// standard in-process workload through a durable engine, once without
// fsync (appends hit the file, group commit idle) and once with it
// (every acknowledgement is disk-durable). Each run gets a fresh
// temporary data dir.
func runDurableBench(base jsonReport, ts []*tenant, p engineParams) (durableReport, error) {
	combined := durableReport{
		Tool: "leaseload", Mode: "durable-bench",
		GoVersion: base.GoVersion, Seed: base.Seed,
		Tenants: base.Tenants, TotalEvents: base.TotalEvents,
	}
	runOnce := func(rep *jsonReport, fsync bool) error {
		dir, err := os.MkdirTemp("", "leaseload-wal-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		wlog, err := leasing.OpenDurableLog(dir, leasing.DurableLogOptions{Fsync: fsync})
		if err != nil {
			return err
		}
		defer wlog.Close()
		return runEngine(rep, ts, p, wlog)
	}
	for _, fsync := range []bool{false, true} {
		rep := base
		if fsync {
			rep.Mode = "durable-fsync-on"
		} else {
			rep.Mode = "durable-fsync-off"
		}
		if err := runOnce(&rep, fsync); err != nil {
			return combined, err
		}
		if fsync {
			combined.FsyncOn = rep
		} else {
			combined.FsyncOff = rep
		}
	}
	return combined, nil
}

type rampParams struct {
	shards, batch, queue, producers, chunk int
	stepTenants                            int
	stepDur                                time.Duration
	slaPct, slaMS                          float64
	seed                                   int64
	arrival                                string
}

// runRamp is the SLA-driven stepped harness: each step serves the first
// n tenants from a fresh engine (so steps are independent measurements,
// not survivors of earlier saturation), n growing by stepTenants until
// either the SLA breaks or the -tenants ceiling holds it. A step meets
// the SLA when its whole load was submitted before the step deadline
// AND the configured latency percentile stays under the threshold. The
// knee — the last step that met the SLA — is the report's headline:
// max sustainable throughput under SLA.
func runRamp(report *jsonReport, ts []*tenant, p rampParams) error {
	slaUS := p.slaMS * 1000
	r := &rampReport{
		SLAPercentile:  p.slaPct,
		SLALatencyMS:   p.slaMS,
		StepTenants:    p.stepTenants,
		StepDurationMS: float64(p.stepDur.Milliseconds()),
		Arrival:        p.arrival,
	}
	report.Ramp = r
	var totalSubmitted int64
	var totalElapsedMS float64
	for n := min(p.stepTenants, len(ts)); ; n += p.stepTenants {
		n = min(n, len(ts))
		step, m, err := runRampStep(ts[:n], p, slaUS)
		if err != nil {
			return err
		}
		r.Steps = append(r.Steps, step)
		totalSubmitted += step.SubmittedEvents
		totalElapsedMS += step.ElapsedMS
		report.Engine = m
		if step.SLAMet {
			r.MaxTenantsUnderSLA = step.Tenants
			r.MaxEventsPerSecUnderSLA = step.EventsPerSec
			report.SubmitLatencyUS = step.SubmitLatencyUS
		}
		if !step.SLAMet || n == len(ts) {
			break
		}
	}
	// In ramp mode the top-level totals describe the whole ramp, and the
	// headline throughput is the knee's — what the perf gate compares.
	report.TotalEvents = totalSubmitted
	report.ElapsedMS = totalElapsedMS
	report.EventsPerSec = r.MaxEventsPerSecUnderSLA
	return nil
}

// runRampStep measures one rung: open the step's tenants on a fresh
// engine, submit their streams until done or deadline, flush, and
// sample the latency reservoir at the SLA percentile.
func runRampStep(ts []*tenant, p rampParams, slaUS float64) (rampStep, leasing.EngineMetrics, error) {
	eng := leasing.NewEngine(leasing.EngineConfig{
		Shards:     p.shards,
		QueueDepth: p.queue,
		BatchSize:  p.batch,
	})
	defer eng.Close()
	var total int64
	for _, t := range ts {
		lsr, err := t.fresh()
		if err != nil {
			return rampStep{}, leasing.EngineMetrics{}, fmt.Errorf("%s: %w", t.name, err)
		}
		if err := eng.Open(t.name, lsr); err != nil {
			return rampStep{}, leasing.EngineMetrics{}, fmt.Errorf("%s: %w", t.name, err)
		}
		total += int64(len(t.events))
	}
	res := stats.NewReservoir(latReservoirCap, p.seed)
	deadline := time.Now().Add(p.stepDur)
	submitted, start, err := produce(ts, p.producers, func(t *tenant, lo, hi int) error {
		return eng.SubmitBatch(t.name, t.events[lo:hi])
	}, p.chunk, res, nil, func() bool { return !time.Now().Before(deadline) })
	if err != nil {
		return rampStep{}, leasing.EngineMetrics{}, err
	}
	if err := eng.Flush(); err != nil {
		return rampStep{}, leasing.EngineMetrics{}, err
	}
	elapsed := time.Since(start)

	lat := res.Quantiles(p.slaPct)[0]
	completed := submitted == total
	step := rampStep{
		Tenants:         len(ts),
		SubmittedEvents: submitted,
		Completed:       completed,
		ElapsedMS:       float64(elapsed.Microseconds()) / 1000,
		EventsPerSec:    float64(submitted) / elapsed.Seconds(),
		SubmitLatencyUS: summarize(res),
		LatencyAtSLAUS:  lat,
		SLAMet:          completed && lat <= slaUS,
	}
	return step, eng.Metrics(), nil
}

type crashParams struct {
	leasedBin, dataDir                     string
	shards, batch, queue, producers, chunk int
}

// runCrash is the kill-and-recover drill. Phase one spawns a durable,
// recording, fsyncing daemon and pumps load at it from concurrent
// producers; once half the total events are acknowledged the daemon is
// SIGKILLed mid-flight (producers treat errors after the kill begins as
// expected). Phase two restarts the same binary on the same data dir,
// flushes, reads every tenant's recovered processed-event count — the
// authoritative resume point, since the WAL can hold acknowledged
// events whose responses were lost with the process — submits the
// remainder of each tenant's stream, and verifies every tenant's
// result byte-identical to a single-threaded Replay of its full logged
// history. The recovered daemon is finally drained with SIGTERM and
// must exit cleanly.
func runCrash(report *jsonReport, ts []*tenant, p crashParams) error {
	ctx := context.Background()
	dir := p.dataDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "leaseload-crash-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	port, err := freePort()
	if err != nil {
		return err
	}
	hostport := fmt.Sprintf("127.0.0.1:%d", port)
	daemonArgs := []string{
		"-addr", hostport, "-record", "-data-dir", dir, "-fsync",
		"-shards", strconv.Itoa(p.shards),
		"-queue", strconv.Itoa(p.queue),
		"-batch", strconv.Itoa(p.batch),
	}
	start := func() (*exec.Cmd, error) {
		cmd := exec.Command(p.leasedBin, daemonArgs...)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("start %s: %w", p.leasedBin, err)
		}
		return cmd, nil
	}
	cli := leasing.Dial("http://"+hostport, leasing.RemoteClientOptions{Chunk: p.chunk})
	t0 := time.Now()

	// Phase one: spawn, open every tenant, pump load, SIGKILL mid-load.
	daemon, err := start()
	if err != nil {
		return err
	}
	kill := func() {
		daemon.Process.Kill()
		daemon.Wait()
	}
	if err := waitHealthy(ctx, cli, 15*time.Second); err != nil {
		kill()
		return err
	}
	for _, t := range ts {
		wevs, err := leasing.WireEvents(t.events)
		if err != nil {
			kill()
			return fmt.Errorf("%s: %w", t.name, err)
		}
		t.wevs = wevs
		if err := cli.Open(ctx, t.name, t.spec); err != nil {
			kill()
			return fmt.Errorf("open %s: %w", t.name, err)
		}
	}

	var accepted atomic.Int64
	var dying atomic.Bool
	killAt := max(report.TotalEvents/2, 1)
	doneProducing := make(chan struct{})
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if accepted.Load() < killAt {
					continue
				}
			case <-doneProducing:
			}
			dying.Store(true)
			daemon.Process.Kill()
			return
		}
	}()

	// Errors once the kill is underway are the whole point of the drill;
	// anything earlier is a real failure.
	_, _, err = produce(ts, p.producers, func(t *tenant, lo, hi int) error {
		n, err := cli.Submit(ctx, t.name, t.wevs[lo:hi])
		accepted.Add(int64(n))
		return err
	}, p.chunk, stats.NewReservoir(latReservoirCap, report.Seed), func(error) bool { return dying.Load() }, nil)
	close(doneProducing)
	<-killed
	daemon.Wait() // reap; a kill-induced exit error is expected
	if err != nil {
		return fmt.Errorf("pre-kill failure: %w", err)
	}

	// Phase two: restart on the same data dir, resume, verify, drain.
	daemon2, err := start()
	if err != nil {
		return err
	}
	graceful := false
	defer func() {
		if !graceful {
			daemon2.Process.Kill()
			daemon2.Wait()
		}
	}()
	if err := waitHealthy(ctx, cli, 15*time.Second); err != nil {
		return err
	}
	if err := cli.Flush(ctx, ts[0].name); err != nil {
		return err
	}
	for _, t := range ts {
		n, err := cli.Processed(ctx, t.name)
		if err != nil {
			return fmt.Errorf("recovered count of %s: %w", t.name, err)
		}
		if n > int64(len(t.wevs)) {
			return fmt.Errorf("%s: recovered %d events, only %d were ever submitted", t.name, n, len(t.wevs))
		}
		if _, err := cli.Submit(ctx, t.name, t.wevs[n:]); err != nil {
			return fmt.Errorf("resume %s after %d: %w", t.name, n, err)
		}
	}
	if err := cli.Flush(ctx, ts[0].name); err != nil {
		return err
	}
	elapsed := time.Since(t0)
	report.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	report.EventsPerSec = float64(report.TotalEvents) / elapsed.Seconds()

	if m, err := cli.Metrics(ctx); err == nil {
		report.Engine = m.Engine()
	}
	ok := true
	for _, t := range ts {
		if err := verifyRemoteTenant(ctx, cli, t); err != nil {
			ok = false
			fmt.Fprintf(os.Stderr, "leaseload: verify %s: %v\n", t.name, err)
		}
	}
	report.Verified = &ok

	if err := daemon2.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := daemon2.Wait(); err != nil {
		return fmt.Errorf("recovered daemon did not drain cleanly: %w", err)
	}
	graceful = true
	if !ok {
		return fmt.Errorf("kill-and-recover parity failed: a recovered tenant diverged from Replay of its logged history")
	}
	return nil
}

// waitHealthy polls the daemon's liveness probe until it answers.
func waitHealthy(ctx context.Context, cli *leasing.RemoteClient, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := cli.Health(ctx); err == nil {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon not healthy within %v", timeout)
}

// freePort reserves-and-releases an ephemeral port for the spawned
// daemon. The race between release and reuse is acceptable for a drill.
func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port, nil
}

// produce partitions tenants across producer goroutines; each producer
// round-robins its tenants in chunks so shard queues see interleaved
// multi-tenant traffic, and records the latency of every submit call
// (which includes any backpressure stall or retry) into res — a
// fixed-size reservoir, so the sample's memory is bounded no matter how
// long the run submits. It returns how many events were submitted and
// the submission start time so callers can measure elapsed across their
// flush barrier, plus the first submit error (a failed producer stops,
// but the run is then reported as failed rather than as a silently
// partial success). A non-nil tolerate classifies submit errors: a
// tolerated error stops the producer without failing the run — how the
// crash drill absorbs the daemon dying under it. A non-nil stop is
// polled between submits; once it reports true producers wind down
// cleanly — how a ramp step enforces its deadline.
func produce(ts []*tenant, producers int, submit func(t *tenant, lo, hi int) error, chunk int, res *stats.Reservoir, tolerate func(error) bool, stop func() bool) (int64, time.Time, error) {
	errs := make([]error, producers)
	var submitted atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var mine []*tenant
			for i := p; i < len(ts); i += producers {
				mine = append(mine, ts[i])
			}
			offset := make([]int, len(mine))
			for live := len(mine); live > 0; {
				live = 0
				for i, t := range mine {
					if stop != nil && stop() {
						return
					}
					lo := offset[i]
					if lo >= len(t.events) {
						continue
					}
					hi := min(lo+chunk, len(t.events))
					t0 := time.Now()
					if err := submit(t, lo, hi); err != nil {
						if tolerate == nil || !tolerate(err) {
							errs[p] = fmt.Errorf("producer %d: %s events [%d:%d): %w", p, t.name, lo, hi, err)
						}
						return
					}
					res.Add(float64(time.Since(t0).Nanoseconds()) / 1e3)
					submitted.Add(int64(hi - lo))
					offset[i] = hi
					if hi < len(t.events) {
						live++
					}
				}
			}
		}(p)
	}
	wg.Wait()
	return submitted.Load(), start, errors.Join(errs...)
}

func summarize(res *stats.Reservoir) latencyStats {
	qs := res.Quantiles(0.50, 0.90, 0.99)
	return latencyStats{P50: qs[0], P90: qs[1], P99: qs[2], Max: res.Max()}
}

// buildTenant synthesizes one tenant's instance, event stream, leaser
// factory and wire spec; the domain cycles with the tenant index. All
// randomness flows from tseed, so a tenant is reproducible independent
// of the others. The arrival process named by arrivalName gates which
// steps carry demand; each tenant gets its own instance (the processes
// are stateful), with mean rate 0.5 so every process lands near the
// same event volume. "constant" consumes the rng exactly like the
// original Bernoulli(0.5) streams, so default traffic is unchanged
// across committed seeds and BENCH snapshots.
// domainOrder is the full domain cycle, in the order tenants have
// always been assigned to it; -domains picks a subset.
var domainOrder = []string{"days", "deadline", "elements", "facility", "steiner", "reusable"}

// domainKinds parses the -domains list into buildTenant kind indexes.
func domainKinds(list string) ([]int, error) {
	var kinds []int
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		k := slices.Index(domainOrder, name)
		if k < 0 {
			return nil, fmt.Errorf("-domains: unknown domain %q (choose from %s)", name, strings.Join(domainOrder, ", "))
		}
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-domains must name at least one domain")
	}
	return kinds, nil
}

func buildTenant(i, kind int, cfg *leasing.LeaseConfig, tseed int64, events int, arrivalName string, period int64) (*tenant, error) {
	rng := rand.New(rand.NewSource(tseed))
	horizon := int64(2 * events)
	arr, err := workload.NewArrival(arrivalName, 0.5, period)
	if err != nil {
		return nil, err
	}
	types := leasing.WireLeaseTypes(cfg)
	switch kind {
	case 0:
		days := workload.ArrivalDays(rng, horizon, arr)
		return &tenant{
			name:   fmt.Sprintf("t%04d-days", i),
			domain: "days",
			events: leasing.DayEvents(days),
			fresh: func() (leasing.Leaser, error) {
				alg, err := leasing.NewDeterministicParkingPermit(cfg)
				if err != nil {
					return nil, err
				}
				return leasing.NewParkingStream(alg), nil
			},
			spec: leasing.RemoteOpenRequest{Domain: wire.DomainParking, Types: types},
		}, nil

	case 1:
		clients := workload.DeadlineArrivals(rng, horizon, arr, 12)
		return &tenant{
			name:   fmt.Sprintf("t%04d-deadline", i),
			domain: "deadline",
			events: leasing.WindowEvents(clients),
			fresh: func() (leasing.Leaser, error) {
				return leasing.NewDeadlineStream(cfg)
			},
			spec: leasing.RemoteOpenRequest{Domain: wire.DomainDeadline, Types: types},
		}, nil

	case 2:
		const n, m, delta = 32, 20, 3
		zipf, err := workload.NewZipf(rng, n, 1.5)
		if err != nil {
			return nil, err
		}
		arrivals := workload.ElementArrivals(rng, horizon, arr,
			zipf.Draw, func() int { return 1 + rng.Intn(2) })
		fam, err := leasing.RandomSetFamily(rng, n, m, delta)
		if err != nil {
			return nil, err
		}
		costs := leasing.RandomSetCosts(rng, m, cfg, 0.5)
		inst, err := leasing.NewSetCoverInstance(fam, cfg, costs, arrivals, leasing.PerArrival)
		if err != nil {
			return nil, err
		}
		sets := make([][]int, fam.M())
		for s := range sets {
			sets[s] = fam.Set(s)
		}
		warr := make([]wire.ElementArrival, len(arrivals))
		for j, a := range arrivals {
			warr[j] = wire.ElementArrival{T: a.T, Elem: a.Elem, P: a.P}
		}
		return &tenant{
			name:   fmt.Sprintf("t%04d-elements", i),
			domain: "elements",
			events: leasing.ElementEvents(arrivals),
			fresh: func() (leasing.Leaser, error) {
				return leasing.NewSetCoverStream(inst, rand.New(rand.NewSource(tseed+1)))
			},
			spec: leasing.RemoteOpenRequest{
				Domain: wire.DomainSetCover, Types: types, Seed: tseed + 1,
				SetCover: &wire.SetCoverSpec{
					Elements: n, Sets: sets, Costs: costs, Arrivals: warr,
				},
			},
		}, nil

	case 3:
		// Client batches clustered around a handful of sites; one Batch
		// event per step (empty steps included, as in stream.Batches).
		const sitesN = 6
		sites := make([]leasing.Point, sitesN)
		for s := range sites {
			sites[s] = leasing.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		}
		facCosts := make([][]float64, sitesN)
		for s := range facCosts {
			row := make([]float64, cfg.K())
			f := 1 + rng.Float64()*0.5
			for k := range row {
				row[k] = cfg.Cost(k) * f
			}
			facCosts[s] = row
		}
		// Steps are halved so a facility tenant lands near the same event
		// count as the others while still exercising multi-client steps.
		// The constant process keeps the original per-step client draw
		// byte-for-byte (committed BENCH traffic); other processes gate
		// which steps receive clients, like every other domain.
		batches := make([][]leasing.Point, events/2+1)
		for t := range batches {
			c := rng.Intn(3)
			if arrivalName != "constant" {
				c = 0
				if arr.Step(rng, int64(t)) {
					c = 1 + rng.Intn(2)
				}
			}
			for ; c > 0; c-- {
				s := sites[rng.Intn(sitesN)]
				batches[t] = append(batches[t], leasing.Point{
					X: s.X + rng.Float64()*4, Y: s.Y + rng.Float64()*4})
			}
		}
		inst, err := leasing.NewFacilityInstance(cfg, sites, facCosts, batches)
		if err != nil {
			return nil, err
		}
		return &tenant{
			name:   fmt.Sprintf("t%04d-facility", i),
			domain: "facility",
			events: leasing.BatchEvents(batches),
			fresh: func() (leasing.Leaser, error) {
				return leasing.NewFacilityStream(inst)
			},
			spec: leasing.RemoteOpenRequest{
				Domain: wire.DomainFacility, Types: types,
				Facility: &wire.FacilitySpec{
					Sites:   wirePoints(sites),
					Costs:   facCosts,
					Batches: wireBatches(batches),
				},
			},
		}, nil

	case 5:
		// Reusable-resource pool: demand steps gated by the arrival
		// process, usage durations uniform in [1, 8], capacity sized so
		// both grants and whole-pool-busy rejections occur.
		const capacity = 4
		days := workload.ArrivalDays(rng, horizon, arr)
		reqs := make([]leasing.ReusableRequest, len(days))
		for j, d := range days {
			reqs[j] = leasing.ReusableRequest{T: d, Dur: 1 + int64(rng.Intn(8))}
		}
		inst, err := leasing.NewReusableInstance(cfg, capacity, reqs)
		if err != nil {
			return nil, err
		}
		return &tenant{
			name:   fmt.Sprintf("t%04d-reusable", i),
			domain: "reusable",
			events: leasing.UseEvents(reqs),
			fresh: func() (leasing.Leaser, error) {
				return leasing.NewReusableStream(inst)
			},
			spec: leasing.RemoteOpenRequest{
				Domain: wire.DomainReusable, Types: types,
				Reusable: &wire.ReusableSpec{Capacity: capacity},
			},
		}, nil

	default:
		const terminals = 16
		g, err := leasing.RandomConnectedGraph(rng, terminals, 3*terminals, 1, 10)
		if err != nil {
			return nil, err
		}
		connects, err := workload.ConnectArrivals(rng, horizon, arr, terminals)
		if err != nil {
			return nil, err
		}
		reqs := make([]leasing.SteinerRequest, len(connects))
		wreqs := make([]wire.ConnectRequest, len(connects))
		for j, c := range connects {
			reqs[j] = leasing.SteinerRequest{Time: c.T, S: c.S, T: c.U}
			wreqs[j] = wire.ConnectRequest{T: c.T, S: c.S, U: c.U}
		}
		inst, err := leasing.NewSteinerInstance(g, cfg, reqs)
		if err != nil {
			return nil, err
		}
		edges := make([]wire.Edge, g.M())
		for j, e := range g.Edges() {
			edges[j] = wire.Edge{U: e.U, V: e.V, W: e.Weight}
		}
		return &tenant{
			name:   fmt.Sprintf("t%04d-steiner", i),
			domain: "steiner",
			events: leasing.ConnectEvents(reqs),
			fresh: func() (leasing.Leaser, error) {
				return leasing.NewSteinerStream(inst)
			},
			spec: leasing.RemoteOpenRequest{
				Domain: wire.DomainSteiner, Types: types,
				Steiner: &wire.SteinerSpec{
					Vertices: terminals, Edges: edges, Requests: wreqs,
				},
			},
		}, nil
	}
}

func wirePoints(ps []leasing.Point) []wire.Point {
	out := make([]wire.Point, len(ps))
	for i, p := range ps {
		out[i] = wire.Point{X: p.X, Y: p.Y}
	}
	return out
}

func wireBatches(batches [][]leasing.Point) [][]wire.Point {
	out := make([][]wire.Point, len(batches))
	for t, b := range batches {
		if b != nil {
			out[t] = wirePoints(b)
		}
	}
	return out
}

// verifyTenant holds the engine to its determinism anchor: the recorded
// run, cached cost and snapshot must equal a fresh single-threaded
// Replay of the tenant's events.
func verifyTenant(eng *leasing.Engine, t *tenant) error {
	got, err := eng.Result(t.name)
	if err != nil {
		return err
	}
	ref, err := t.fresh()
	if err != nil {
		return err
	}
	want, err := leasing.Replay(ref, t.events)
	if err != nil {
		return err
	}
	if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", want) {
		return fmt.Errorf("recorded run differs from Replay")
	}
	cost, err := eng.Cost(t.name)
	if err != nil {
		return err
	}
	if cost != want.Final {
		return fmt.Errorf("cached cost %+v != replay final %+v", cost, want.Final)
	}
	sol, err := eng.Snapshot(t.name)
	if err != nil {
		return err
	}
	if fmt.Sprintf("%#v", sol) != fmt.Sprintf("%#v", ref.Snapshot()) {
		return fmt.Errorf("cached snapshot differs from replay snapshot")
	}
	return nil
}

// tenantReader is the read surface verifyRemoteTenant checks — the
// single-node client and the cluster client both provide it, so the
// crash drills share one verification.
type tenantReader interface {
	Result(context.Context, string) (*wire.Run, error)
	Cost(context.Context, string) (wire.CostBreakdown, error)
	Snapshot(context.Context, string) (wire.Solution, error)
	Close(context.Context, string) (wire.CloseResponse, error)
}

// verifyRemoteTenant holds the service to the same anchor over the
// network: the run fetched through the result endpoint must be
// byte-identical to a single-threaded Replay of a leaser built from the
// tenant's own wire spec, the cost endpoint must agree exactly, and
// close must report the session's full event count.
func verifyRemoteTenant(ctx context.Context, cli tenantReader, t *tenant) error {
	wrun, err := cli.Result(ctx, t.name)
	if err != nil {
		return err
	}
	got := wrun.Stream()
	ref, err := t.spec.Build()
	if err != nil {
		return err
	}
	want, err := leasing.Replay(ref, t.events)
	if err != nil {
		return err
	}
	if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", want) {
		return fmt.Errorf("remote run differs from Replay")
	}
	cost, err := cli.Cost(ctx, t.name)
	if err != nil {
		return err
	}
	if cost.Stream() != want.Final || cost.Total != want.Final.Total() {
		return fmt.Errorf("remote cost %+v != replay final %+v", cost, want.Final)
	}
	snap, err := cli.Snapshot(ctx, t.name)
	if err != nil {
		return err
	}
	if fmt.Sprintf("%#v", snap.Stream()) != fmt.Sprintf("%#v", ref.Snapshot()) {
		return fmt.Errorf("remote snapshot differs from replay snapshot")
	}
	closed, err := cli.Close(ctx, t.name)
	if err != nil {
		return err
	}
	if closed.Events != int64(len(t.events)) {
		return fmt.Errorf("close reports %d events, submitted %d", closed.Events, len(t.events))
	}
	return nil
}

func writeJSON(report any, outPath string, w io.Writer) error {
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if outPath != "" {
		fmt.Printf("leaseload: wrote %s\n", outPath)
	}
	return nil
}

func printText(w io.Writer, r jsonReport) {
	if r.Encoding != "" {
		fmt.Fprintf(w, "mode:    %s (%s encoding)\n", r.Mode, r.Encoding)
	} else {
		fmt.Fprintf(w, "mode:    %s\n", r.Mode)
	}
	fmt.Fprintf(w, "tenants: %d (", r.Tenants)
	first := true
	for _, d := range domainOrder {
		if n, ok := r.Domains[d]; ok {
			if !first {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s %d", d, n)
			first = false
		}
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "engine:  shards=%d batch=%d queue=%d producers=%d chunk=%d\n",
		r.Shards, r.Batch, r.Queue, r.Producers, r.Chunk)
	fmt.Fprintf(w, "events:  %d in %.1fms  (%.0f events/s)\n",
		r.TotalEvents, r.ElapsedMS, r.EventsPerSec)
	fmt.Fprintf(w, "submit latency µs: p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
		r.SubmitLatencyUS.P50, r.SubmitLatencyUS.P90, r.SubmitLatencyUS.P99, r.SubmitLatencyUS.Max)
	fmt.Fprintf(w, "shards:  %d batches (%.1f events/batch avg), dropped %d, total cost %.2f\n",
		r.Engine.Batches, float64(r.Engine.Events)/float64(max(r.Engine.Batches, 1)), r.Engine.Dropped, r.Engine.Cost)
	if r.Verified != nil {
		fmt.Fprintf(w, "verified: every tenant byte-identical to single-threaded Replay: %v\n", *r.Verified)
	}
	if rp := r.Ramp; rp != nil {
		fmt.Fprintf(w, "ramp:    SLA p%g <= %.1fms, +%d tenants per step, %.0fms step deadline, %s arrivals\n",
			100*rp.SLAPercentile, rp.SLALatencyMS, rp.StepTenants, rp.StepDurationMS, rp.Arrival)
		for _, s := range rp.Steps {
			verdict := "SLA met"
			if !s.SLAMet {
				verdict = "SLA broken"
				if !s.Completed {
					verdict = "SLA broken (cut off at deadline)"
				}
			}
			fmt.Fprintf(w, "  %4d tenants: %8.0f events/s  p%g=%.0fµs  %s\n",
				s.Tenants, s.EventsPerSec, 100*rp.SLAPercentile, s.LatencyAtSLAUS, verdict)
		}
		if rp.MaxTenantsUnderSLA > 0 {
			fmt.Fprintf(w, "max sustainable under SLA: %d tenants at %.0f events/s\n",
				rp.MaxTenantsUnderSLA, rp.MaxEventsPerSecUnderSLA)
		} else {
			fmt.Fprintln(w, "max sustainable under SLA: none — the first step already broke the SLA")
		}
	}
}
