package main

// The cluster modes of leaseload. runClusterCrash is the multi-node
// kill-one-node drill: it spawns N leased daemons joined by -peers,
// pumps mixed-domain load through the cluster client, SIGKILLs the
// node owning the most tenants once half the load is acknowledged,
// fails its tenants over onto their replicas (MarkDown + Activate),
// resumes every tenant from the new owner's processed count, and
// verifies every tenant byte-identical to a single-threaded Replay —
// the CI smoke proof that log-shipping failover loses nothing
// acknowledged. runClusterBench is the scaling benchmark behind
// BENCH_PR8.json: the same workload through in-process fleets of 1, 2
// and 4 replicated nodes, reporting per-fleet throughput, speedup and
// the scaling efficiency of the largest fleet.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"leasing"
	"leasing/internal/stats"
)

type clusterCrashParams struct {
	leasedBin                              string
	nodes                                  int
	shards, batch, queue, producers, chunk int
}

// drillNode is one spawned leased daemon of the multi-node drill.
type drillNode struct {
	url      string
	hostport string
	dir      string
	cmd      *exec.Cmd
	cli      *leasing.RemoteClient
}

// runClusterCrash is the multi-node kill-and-recover drill.
func runClusterCrash(report *jsonReport, ts []*tenant, p clusterCrashParams) error {
	ctx := context.Background()
	nodes := make([]*drillNode, p.nodes)
	urls := make([]string, p.nodes)
	for i := range nodes {
		port, err := freePort()
		if err != nil {
			return err
		}
		dir, err := os.MkdirTemp("", "leaseload-cluster-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		hostport := fmt.Sprintf("127.0.0.1:%d", port)
		nodes[i] = &drillNode{url: "http://" + hostport, hostport: hostport, dir: dir}
		urls[i] = nodes[i].url
	}
	for _, nd := range nodes {
		cmd := exec.Command(p.leasedBin,
			"-addr", nd.hostport, "-record", "-data-dir", nd.dir, "-fsync",
			"-shards", strconv.Itoa(p.shards),
			"-queue", strconv.Itoa(p.queue),
			"-batch", strconv.Itoa(p.batch),
			"-peers", strings.Join(urls, ","),
			"-self", nd.url,
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start %s as %s: %w", p.leasedBin, nd.url, err)
		}
		nd.cmd = cmd
		nd.cli = leasing.Dial(nd.url, leasing.RemoteClientOptions{})
	}
	graceful := false
	defer func() {
		if graceful {
			return
		}
		for _, nd := range nodes {
			if nd.cmd != nil {
				nd.cmd.Process.Kill()
				nd.cmd.Wait()
			}
		}
	}()
	for _, nd := range nodes {
		if err := waitHealthy(ctx, nd.cli, 15*time.Second); err != nil {
			return fmt.Errorf("node %s: %w", nd.url, err)
		}
	}

	cl, err := leasing.DialCluster(urls, leasing.RemoteClientOptions{Chunk: p.chunk})
	if err != nil {
		return err
	}
	for _, t := range ts {
		wevs, err := leasing.WireEvents(t.events)
		if err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
		t.wevs = wevs
		if err := cl.Open(ctx, t.name, t.spec); err != nil {
			return fmt.Errorf("open %s: %w", t.name, err)
		}
	}
	// Let the shippers deliver the open records before any node can
	// die: a tenant whose open never reached its replica would have
	// nothing to fail over to. Event records lost the same way are
	// fine — the resume loop re-sends them.
	time.Sleep(250 * time.Millisecond)

	// The victim is the node owning the most tenants, so the failover
	// moves a meaningful share of the fleet.
	owned := map[string]int{}
	for _, t := range ts {
		owned[cl.Owner(t.name)]++
	}
	victim := nodes[0]
	for _, nd := range nodes {
		if owned[nd.url] > owned[victim.url] {
			victim = nd
		}
	}
	doomed := owned[victim.url]
	if doomed == 0 {
		return fmt.Errorf("no tenant placed on the victim; widen the tenant set")
	}

	t0 := time.Now()
	var accepted atomic.Int64
	var dying atomic.Bool
	killAt := max(report.TotalEvents/2, 1)
	doneProducing := make(chan struct{})
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if accepted.Load() < killAt {
					continue
				}
			case <-doneProducing:
			}
			dying.Store(true)
			victim.cmd.Process.Kill()
			return
		}
	}()
	_, _, err = produce(ts, p.producers, func(t *tenant, lo, hi int) error {
		n, err := cl.Submit(ctx, t.name, t.wevs[lo:hi])
		accepted.Add(int64(n))
		return err
	}, p.chunk, stats.NewReservoir(latReservoirCap, report.Seed), func(error) bool { return dying.Load() }, nil)
	close(doneProducing)
	<-killed
	victim.cmd.Wait() // reap; a kill-induced exit error is expected
	victim.cmd = nil
	if err != nil {
		return fmt.Errorf("pre-kill failure: %w", err)
	}

	// Failover: drop the victim from the live ring — its tenants now
	// route to their replicas — and have the survivors adopt exactly
	// the sessions the victim owned.
	if err := cl.MarkDown(victim.url); err != nil {
		return err
	}
	activated, err := cl.Activate(ctx)
	if err != nil {
		return fmt.Errorf("activate failover: %w", err)
	}
	if activated != doomed {
		return fmt.Errorf("activated %d sessions, want the victim's %d", activated, doomed)
	}

	// Resume every tenant from its (possibly new) owner's processed
	// count — the authoritative point: events the victim acknowledged
	// but never shipped are gone from the cluster and must be re-sent.
	for _, t := range ts {
		if err := cl.Flush(ctx, t.name); err != nil {
			return fmt.Errorf("flush %s after failover: %w", t.name, err)
		}
		n, err := cl.Processed(ctx, t.name)
		if err != nil {
			return fmt.Errorf("recovered count of %s: %w", t.name, err)
		}
		if n > int64(len(t.wevs)) {
			return fmt.Errorf("%s: recovered %d events, only %d were ever submitted", t.name, n, len(t.wevs))
		}
		if _, err := cl.SubmitResume(ctx, t.name, t.wevs, int(n)); err != nil {
			return fmt.Errorf("resume %s after %d: %w", t.name, n, err)
		}
	}
	for _, t := range ts {
		if err := cl.Flush(ctx, t.name); err != nil {
			return err
		}
		n, err := cl.Processed(ctx, t.name)
		if err != nil {
			return err
		}
		if n != int64(len(t.wevs)) {
			return fmt.Errorf("%s: processed %d after resume, want %d", t.name, n, len(t.wevs))
		}
	}
	elapsed := time.Since(t0)
	report.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	report.EventsPerSec = float64(report.TotalEvents) / elapsed.Seconds()

	ok := true
	for _, t := range ts {
		if err := verifyRemoteTenant(ctx, cl, t); err != nil {
			ok = false
			fmt.Fprintf(os.Stderr, "leaseload: verify %s: %v\n", t.name, err)
		}
	}
	report.Verified = &ok

	// The survivors must drain cleanly: SIGTERM flushes each node's
	// shipper and closes its logs in order.
	for _, nd := range nodes {
		if nd.cmd == nil {
			continue
		}
		if err := nd.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
	}
	for _, nd := range nodes {
		if nd.cmd == nil {
			continue
		}
		if err := nd.cmd.Wait(); err != nil {
			return fmt.Errorf("node %s did not drain cleanly: %w", nd.url, err)
		}
		nd.cmd = nil
	}
	graceful = true
	if !ok {
		return fmt.Errorf("cluster kill-and-recover parity failed: a failed-over tenant diverged from Replay of its full history")
	}
	return nil
}

// clusterReport is the -cluster-bench report (committed as
// BENCH_PR8.json): one fleet section per cluster size over the same
// workload. The top-level events_per_sec is the largest fleet's, so the
// perf gate reads cluster snapshots like any other leaseload report.
type clusterReport struct {
	Tool              string        `json:"tool"`
	Mode              string        `json:"mode"`
	GoVersion         string        `json:"go_version"`
	Seed              int64         `json:"seed"`
	Tenants           int           `json:"tenants"`
	TotalEvents       int64         `json:"total_events"`
	Shards            int           `json:"shards"`
	Batch             int           `json:"batch"`
	Queue             int           `json:"queue"`
	Producers         int           `json:"producers"`
	Chunk             int           `json:"chunk"`
	EventsPerSec      float64       `json:"events_per_sec"`
	ScalingEfficiency float64       `json:"scaling_efficiency"`
	Fleets            []fleetReport `json:"fleets"`
}

// fleetReport is one cluster size's measurement.
type fleetReport struct {
	Nodes           int          `json:"nodes"`
	ElapsedMS       float64      `json:"elapsed_ms"`
	EventsPerSec    float64      `json:"events_per_sec"`
	SubmitLatencyUS latencyStats `json:"submit_latency_us"`
	SpeedupVsSingle float64      `json:"speedup_vs_single"`
	ShippedRecords  int64        `json:"shipped_records"`
}

type clusterBenchParams struct {
	shards, batch, queue, producers, chunk int
	fleets                                 []int
}

// runClusterBench measures how ingestion throughput scales with nodes:
// the same workload through in-process fleets of p.fleets sizes, every
// node durable (fsync off) and shipping to its peers, driven through
// the ring-routing cluster client. Scaling efficiency is the largest
// fleet's speedup over the single node divided by its node count.
func runClusterBench(base jsonReport, ts []*tenant, p clusterBenchParams) (clusterReport, error) {
	combined := clusterReport{
		Tool: "leaseload", Mode: "cluster-bench",
		GoVersion: base.GoVersion, Seed: base.Seed,
		Tenants: base.Tenants, TotalEvents: base.TotalEvents,
		Shards: base.Shards, Batch: base.Batch, Queue: base.Queue,
		Producers: base.Producers, Chunk: base.Chunk,
	}
	for _, n := range p.fleets {
		fleet, err := runClusterFleet(ts, n, p, base.Seed)
		if err != nil {
			return combined, fmt.Errorf("%d-node fleet: %w", n, err)
		}
		combined.Fleets = append(combined.Fleets, fleet)
	}
	single := combined.Fleets[0].EventsPerSec
	for i := range combined.Fleets {
		combined.Fleets[i].SpeedupVsSingle = combined.Fleets[i].EventsPerSec / single
	}
	last := combined.Fleets[len(combined.Fleets)-1]
	combined.EventsPerSec = last.EventsPerSec
	combined.ScalingEfficiency = last.SpeedupVsSingle / float64(last.Nodes)
	return combined, nil
}

// benchNode is one in-process member of a benchmark fleet.
type benchNode struct {
	eng         *leasing.Engine
	srv         *http.Server
	sh          *leasing.ClusterShipper
	own, follow *leasing.DurableLog
}

// runClusterFleet runs the full workload through one n-node fleet,
// wired node-for-node as cmd/leased wires cluster mode.
func runClusterFleet(ts []*tenant, n int, p clusterBenchParams, seed int64) (fleetReport, error) {
	ctx := context.Background()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fleetReport{}, err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*benchNode, n)
	defer func() {
		for _, nd := range nodes {
			if nd == nil {
				continue
			}
			nd.srv.Close()
			nd.eng.Close()
			nd.sh.Close()
			nd.follow.Close()
			nd.own.Close()
		}
	}()
	for i := range nodes {
		dir, err := os.MkdirTemp("", "leaseload-fleet-*")
		if err != nil {
			return fleetReport{}, err
		}
		defer os.RemoveAll(dir)
		own, err := leasing.OpenDurableLog(dir, leasing.DurableLogOptions{})
		if err != nil {
			return fleetReport{}, err
		}
		follow, err := leasing.OpenDurableLog(dir+"/follower", leasing.DurableLogOptions{})
		if err != nil {
			own.Close()
			return fleetReport{}, err
		}
		sh, err := leasing.NewClusterShipper(urls[i], urls, leasing.ClusterShipperOptions{})
		if err != nil {
			follow.Close()
			own.Close()
			return fleetReport{}, err
		}
		rl := leasing.ReplicateDurableLog(own, sh)
		eng, _, err := leasing.RecoverEngineWAL(own, rl, leasing.EngineConfig{
			Shards: p.shards, QueueDepth: p.queue, BatchSize: p.batch,
		})
		if err != nil {
			sh.Close()
			follow.Close()
			own.Close()
			return fleetReport{}, err
		}
		srv := &http.Server{Handler: leasing.Serve(eng, leasing.LeaseServerConfig{
			Cluster: &leasing.LeaseClusterConfig{
				Self: urls[i], Peers: urls, Follower: follow, WAL: rl,
			},
		})}
		go srv.Serve(lns[i])
		nodes[i] = &benchNode{eng: eng, srv: srv, sh: sh, own: own, follow: follow}
	}

	cl, err := leasing.DialCluster(urls, leasing.RemoteClientOptions{Chunk: p.chunk})
	if err != nil {
		return fleetReport{}, err
	}
	for _, t := range ts {
		wevs, err := leasing.WireEvents(t.events)
		if err != nil {
			return fleetReport{}, fmt.Errorf("%s: %w", t.name, err)
		}
		t.wevs = wevs
		if err := cl.Open(ctx, t.name, t.spec); err != nil {
			return fleetReport{}, fmt.Errorf("open %s: %w", t.name, err)
		}
	}

	res := stats.NewReservoir(latReservoirCap, seed)
	var total int64
	_, start, err := produce(ts, p.producers, func(t *tenant, lo, hi int) error {
		n, err := cl.Submit(ctx, t.name, t.wevs[lo:hi])
		atomic.AddInt64(&total, int64(n))
		return err
	}, p.chunk, res, nil, nil)
	if err != nil {
		return fleetReport{}, err
	}
	// The barrier spans every node's engine, as engine mode's Flush
	// does for one; replication keeps streaming in the background and
	// is settled (and checked) by the shipper close below.
	for _, nd := range nodes {
		if err := nd.eng.Flush(); err != nil {
			return fleetReport{}, err
		}
	}
	elapsed := time.Since(start)

	var shipped int64
	for i, nd := range nodes {
		nd.sh.Close()
		st := nd.sh.Stats()
		shipped += st.Shipped
		if len(st.FailedPeers) > 0 {
			return fleetReport{}, fmt.Errorf("node %s failed peers %v (%d records dropped)",
				urls[i], st.FailedPeers, st.Dropped)
		}
	}
	return fleetReport{
		Nodes:           n,
		ElapsedMS:       float64(elapsed.Microseconds()) / 1000,
		EventsPerSec:    float64(atomic.LoadInt64(&total)) / elapsed.Seconds(),
		SubmitLatencyUS: summarize(res),
		ShippedRecords:  shipped,
	}, nil
}
