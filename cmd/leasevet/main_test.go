package main

import (
	"bytes"
	"strings"
	"testing"

	"leasing/internal/analysis"
)

// TestListCoversRegistry pins -list output to the registry: every
// registered analyzer appears with its documentation.
func TestListCoversRegistry(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errw.String())
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out.String(), a.Name+"\n") {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}

// TestStandaloneCleanTree runs the suite over this package — a cheap
// end-to-end check of the standalone driver, summary shape included.
func TestStandaloneCleanTree(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"."}, &out, &errw); code != 0 {
		t.Fatalf("run(.) = %d, stderr: %s", code, errw.String())
	}
	if !strings.HasPrefix(out.String(), "leasevet: 1 package(s), 0 finding(s)\n") {
		t.Errorf("unexpected summary header:\n%s", out.String())
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("summary missing analyzer %q:\n%s", a.Name, out.String())
		}
	}
}
