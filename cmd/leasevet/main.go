// Command leasevet runs the repository's custom static-analysis suite:
// the determinism, WAL-ordering and wire-protocol invariants that plain
// `go vet` cannot see. It speaks two protocols with one binary:
//
//   - As a vet tool, driven per package by the go command:
//
//     go build -o /tmp/leasevet ./cmd/leasevet
//     go vet -vettool=/tmp/leasevet ./...
//
//   - Standalone, analyzing the module in one process:
//
//     go run ./cmd/leasevet ./...
//
// Standalone mode prints the stable per-analyzer summary the CI lint
// job records (analyzer name → finding count, identical shape whether
// or not anything fired), then the diagnostics; it exits 2 when any
// invariant is violated. docs/LINTING.md documents every analyzer and
// the //lint:allow-<name> <reason> suppression syntax.
//
// Usage:
//
//	leasevet [-summary=false] [-list] [packages]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"leasing/internal/analysis"
	"leasing/internal/analysis/vet"
)

// version participates in `go vet` build caching: the go command runs
// `leasevet -V=full` and mixes the reported buildID into its cache key,
// so bumping it invalidates previously cached vet results.
const version = "1"

func main() {
	// The go vet driver protocol comes first: `-flags`, `-V=full`, or a
	// single JSON config file argument per package.
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasPrefix(args[0], "-V"):
			fmt.Printf("%s version %s buildID=leasevet-%s\n", os.Args[0], version, version)
			return
		case strings.HasSuffix(args[0], ".cfg"):
			diags, err := vet.RunUnit(args[0], analysis.Analyzers())
			if err != nil {
				fmt.Fprintln(os.Stderr, "leasevet:", err)
				os.Exit(1)
			}
			if len(diags) > 0 {
				for _, d := range diags {
					fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
				}
				os.Exit(2)
			}
			return
		}
	}
	os.Exit(run(args, os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("leasevet", flag.ContinueOnError)
	var (
		summary = fs.Bool("summary", true, "print the stable per-analyzer finding-count table before any diagnostics")
		list    = fs.Bool("list", false, "list the registered analyzers with their documentation and exit")
	)
	fs.SetOutput(errw)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%s\n    %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "leasevet:", err)
		return 1
	}
	res, err := vet.RunStandalone(dir, analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(errw, "leasevet:", err)
		return 1
	}
	if *summary {
		fmt.Fprint(out, res.Summary())
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(errw, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(res.Diagnostics) > 0 {
		return 2
	}
	return 0
}
