package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"leasing/internal/workload"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestGenerateKinds(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"days", []string{"-kind", "days", "-horizon", "60", "-p", "0.4", "-seed", "2"}},
		{"bursty days", []string{"-kind", "days", "-horizon", "60", "-bursty", "-seed", "2"}},
		{"deadline", []string{"-kind", "deadline", "-horizon", "60", "-p", "0.4", "-dmax", "5"}},
		{"elements", []string{"-kind", "elements", "-horizon", "60", "-p", "0.5", "-n", "9", "-pmax", "2"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := captureStdout(t, func() error { return run(tt.args) })
			if err != nil {
				t.Fatal(err)
			}
			tr, err := workload.ReadTrace(strings.NewReader(out))
			if err != nil {
				t.Fatalf("generated trace does not parse: %v", err)
			}
			if err := tr.Validate(); err != nil {
				t.Errorf("generated trace invalid: %v", err)
			}
		})
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := captureStdout(t, func() error { return run([]string{"-kind", "bogus"}) }); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := captureStdout(t, func() error { return run([]string{"-kind", "elements", "-n", "0"}) }); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
