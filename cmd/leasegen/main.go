// Command leasegen generates synthetic demand traces in the repository's
// JSON trace format, for use with leasesim.
//
// Usage:
//
//	leasegen -kind days     -horizon 365 -p 0.3 [-bursty] > days.json
//	leasegen -kind deadline -horizon 365 -p 0.3 -dmax 14  > deadline.json
//	leasegen -kind elements -horizon 365 -p 0.5 -n 50 -pmax 2 > elems.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"leasing/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leasegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leasegen", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "days", "trace kind: days, deadline, or elements")
		horizon = fs.Int64("horizon", 365, "number of time steps")
		p       = fs.Float64("p", 0.3, "per-step demand probability")
		bursty  = fs.Bool("bursty", false, "days: use the bursty Markov stream (stay=0.92)")
		dmax    = fs.Int64("dmax", 7, "deadline: maximum slack")
		n       = fs.Int("n", 20, "elements: universe size")
		pmax    = fs.Int("pmax", 1, "elements: maximum multicover multiplicity")
		seed    = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	tr := &workload.Trace{Kind: *kind}
	switch *kind {
	case workload.KindDays:
		if *bursty {
			tr.Days = workload.BurstyDays(rng, *horizon, 0.92)
		} else {
			tr.Days = workload.DemandDays(rng, *horizon, *p)
		}
	case workload.KindDeadline:
		tr.Deadline = workload.DeadlineStream(rng, *horizon, *p, *dmax)
	case workload.KindElements:
		if *n < 1 {
			return fmt.Errorf("need -n >= 1, got %d", *n)
		}
		tr.Elements = workload.ElementStream(rng, *horizon, *p,
			func() int { return rng.Intn(*n) },
			func() int {
				if *pmax <= 1 {
					return 1
				}
				return 1 + rng.Intn(*pmax)
			},
		)
	default:
		return fmt.Errorf("unknown kind %q (want days, deadline, or elements)", *kind)
	}
	return workload.WriteTrace(os.Stdout, tr)
}
