package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leasing"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func writeTrace(t *testing.T, tr *leasing.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := leasing.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimulateDays(t *testing.T) {
	path := writeTrace(t, &leasing.Trace{Kind: leasing.TraceKindDays, Days: []int64{0, 1, 2, 9, 10}})
	for _, algo := range []string{"det", "rand"} {
		out, err := captureStdout(t, func() error {
			return run([]string{"-trace", path, "-algorithm", algo, "-k", "2"})
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for _, want := range []string{"online cost", "offline OPT", "ratio"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", algo, want, out)
			}
		}
	}
}

func TestSimulateDeadline(t *testing.T) {
	path := writeTrace(t, &leasing.Trace{
		Kind:     leasing.TraceKindDeadline,
		Deadline: []leasing.DeadlineClient{{T: 0, D: 4}, {T: 3, D: 0}, {T: 9, D: 2}},
	})
	out, err := captureStdout(t, func() error {
		return run([]string{"-trace", path, "-k", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demands: 3") {
		t.Errorf("output missing demand count:\n%s", out)
	}
}

func TestSimulateElements(t *testing.T) {
	path := writeTrace(t, &leasing.Trace{
		Kind: leasing.TraceKindElements,
		Elements: []leasing.ElementArrival{
			{T: 0, Elem: 0, P: 1}, {T: 2, Elem: 1, P: 1}, {T: 5, Elem: 2, P: 1},
		},
	})
	out, err := captureStdout(t, func() error {
		return run([]string{"-trace", path, "-k", "2", "-sets", "6", "-delta", "2", "-seed", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ratio") {
		t.Errorf("output missing ratio:\n%s", out)
	}
}

func TestSimulateErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -trace accepted")
	}
	if err := run([]string{"-trace", "/nonexistent/file.json"}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTrace(t, &leasing.Trace{Kind: leasing.TraceKindDays, Days: []int64{1}})
	if err := run([]string{"-trace", path, "-algorithm", "bogus"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSimulateInterleavedTraces(t *testing.T) {
	a := writeTrace(t, &leasing.Trace{Kind: leasing.TraceKindDays, Days: []int64{0, 4, 8}})
	b := writeTrace(t, &leasing.Trace{Kind: leasing.TraceKindDays, Days: []int64{1, 4, 9}})
	out, err := captureStdout(t, func() error {
		return run([]string{"-trace", a + "," + b, "-k", "2", "-curve"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demands: 6") {
		t.Errorf("interleaved demand count missing:\n%s", out)
	}
	if !strings.Contains(out, "curve: event 0") || !strings.Contains(out, "curve: event 5") {
		t.Errorf("cost curve missing:\n%s", out)
	}
	// The merge is deterministic: replaying the same pair yields identical
	// output bytes.
	again, err := captureStdout(t, func() error {
		return run([]string{"-trace", a + "," + b, "-k", "2", "-curve"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Error("interleaved replay not deterministic")
	}
}

func TestSimulateMixedKindsRejected(t *testing.T) {
	a := writeTrace(t, &leasing.Trace{Kind: leasing.TraceKindDays, Days: []int64{0}})
	b := writeTrace(t, &leasing.Trace{
		Kind:     leasing.TraceKindDeadline,
		Deadline: []leasing.DeadlineClient{{T: 0, D: 1}},
	})
	if err := run([]string{"-trace", a + "," + b}); err == nil {
		t.Error("mixed trace kinds accepted")
	}
}
