// Command leasesim replays a demand trace (see leasegen) through one of
// the thesis' online algorithms and reports its cost next to the offline
// optimum and the resulting empirical competitive ratio.
//
// Usage:
//
//	leasesim -trace days.json -algorithm det  -k 4
//	leasesim -trace days.json -algorithm rand -k 4 -seed 7
//	leasesim -trace deadline.json -k 3
//	leasesim -trace elems.json -k 2 -sets 30 -delta 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"leasing"
	"leasing/internal/setcover"
	"leasing/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leasesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leasesim", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "path to a trace file written by leasegen")
		algorithm = fs.String("algorithm", "det", "days traces: det or rand")
		k         = fs.Int("k", 3, "number of lease types (power config, base 4, gamma 0.55)")
		sets      = fs.Int("sets", 20, "elements traces: number of sets")
		delta     = fs.Int("delta", 3, "elements traces: sets per element")
		seed      = fs.Int64("seed", 1, "seed for randomized algorithms")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("missing -trace")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.ReadTrace(f)
	if err != nil {
		return err
	}
	cfg := leasing.PowerLeaseConfig(*k, 4, 0.55)
	rng := rand.New(rand.NewSource(*seed))

	switch tr.Kind {
	case workload.KindDays:
		return simDays(cfg, tr.Days, *algorithm, rng)
	case workload.KindDeadline:
		return simDeadline(cfg, tr.Deadline)
	case workload.KindElements:
		return simElements(cfg, tr.Elements, *sets, *delta, rng)
	default:
		return fmt.Errorf("unsupported trace kind %q", tr.Kind)
	}
}

func simDays(cfg *leasing.LeaseConfig, days []int64, algorithm string, rng *rand.Rand) error {
	var (
		alg leasing.ParkingPermitAlgorithm
		err error
	)
	switch algorithm {
	case "det":
		alg, err = leasing.NewDeterministicParkingPermit(cfg)
	case "rand":
		alg, err = leasing.NewRandomizedParkingPermit(cfg, rng)
	default:
		return fmt.Errorf("unknown algorithm %q (want det or rand)", algorithm)
	}
	if err != nil {
		return err
	}
	cost, err := leasing.RunParkingPermit(alg, days)
	if err != nil {
		return err
	}
	opt, _, err := leasing.ParkingPermitOptimal(cfg, days)
	if err != nil {
		return err
	}
	report(cost, opt, len(days))
	return nil
}

func simDeadline(cfg *leasing.LeaseConfig, clients []leasing.DeadlineClient) error {
	in, err := leasing.NewDeadlineInstance(cfg, clients)
	if err != nil {
		return err
	}
	alg, err := leasing.NewDeadlineLeaser(cfg)
	if err != nil {
		return err
	}
	if err := alg.Run(in); err != nil {
		return err
	}
	if err := leasing.VerifyDeadline(in, alg.Leases()); err != nil {
		return err
	}
	opt, err := leasing.DeadlineOptimal(in, 0)
	if err != nil {
		return fmt.Errorf("offline optimum: %w (instance may be too large for exact search)", err)
	}
	report(alg.TotalCost(), opt, len(clients))
	return nil
}

func simElements(cfg *leasing.LeaseConfig, arrivals []leasing.ElementArrival, sets, delta int, rng *rand.Rand) error {
	n := 0
	for _, a := range arrivals {
		if a.Elem >= n {
			n = a.Elem + 1
		}
	}
	if n == 0 {
		return fmt.Errorf("trace has no arrivals")
	}
	fam, err := setcover.RandomFamily(rng, n, sets, delta)
	if err != nil {
		return err
	}
	costs := setcover.RandomCosts(rng, sets, cfg, 0.5)
	inst, err := leasing.NewSetCoverInstance(fam, cfg, costs, arrivals, leasing.PerArrival)
	if err != nil {
		return err
	}
	alg, err := leasing.NewSetCoverLeaser(inst, rng)
	if err != nil {
		return err
	}
	if err := alg.Run(); err != nil {
		return err
	}
	if err := leasing.VerifySetCover(inst, alg.Bought()); err != nil {
		return err
	}
	opt, exact, err := leasing.SetCoverOptimal(inst, 50000)
	if err != nil {
		return err
	}
	if !exact {
		fmt.Println("(offline optimum not proven; reporting best bound)")
	}
	report(alg.TotalCost(), opt, len(arrivals))
	return nil
}

func report(online, opt float64, demands int) {
	fmt.Printf("demands: %d\n", demands)
	fmt.Printf("online cost:  %.3f\n", online)
	fmt.Printf("offline OPT:  %.3f\n", opt)
	if opt > 0 {
		fmt.Printf("ratio:        %.3f\n", online/opt)
	}
}
