// Command leasesim replays demand traces (see leasegen) through the
// unified streaming Leaser API and reports the online cost next to the
// offline optimum and the resulting empirical competitive ratio. It is
// built entirely on the public leasing package: traces become Events,
// every algorithm is a Leaser, and one generic Replay drives them all.
//
// Usage:
//
//	leasesim -trace days.json -algorithm det  -k 4
//	leasesim -trace days.json -algorithm rand -k 4 -seed 7
//	leasesim -trace a.json,b.json -curve            # deterministic interleave
//	leasesim -trace deadline.json -k 3
//	leasesim -trace elems.json -k 2 -sets 30 -delta 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"leasing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leasesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leasesim", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "trace file(s) written by leasegen; comma-separated traces of the same kind are interleaved deterministically")
		algorithm = fs.String("algorithm", "det", "days traces: det or rand")
		k         = fs.Int("k", 3, "number of lease types (power config, base 4, gamma 0.55)")
		sets      = fs.Int("sets", 20, "elements traces: number of sets")
		delta     = fs.Int("delta", 3, "elements traces: sets per element")
		seed      = fs.Int64("seed", 1, "seed for randomized algorithms and instance generation")
		curve     = fs.Bool("curve", false, "print the per-event cumulative cost curve")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("missing -trace")
	}

	var (
		kind    string
		streams [][]leasing.Event
	)
	for _, path := range strings.Split(*tracePath, ",") {
		tr, err := readTrace(path)
		if err != nil {
			return err
		}
		if kind == "" {
			kind = tr.Kind
		} else if kind != tr.Kind {
			return fmt.Errorf("trace %s has kind %q, want %q (interleaved traces must share a kind)", path, tr.Kind, kind)
		}
		evs, err := leasing.TraceEvents(tr)
		if err != nil {
			return err
		}
		streams = append(streams, evs)
	}
	events := leasing.Interleave(streams...)
	if len(events) == 0 {
		return fmt.Errorf("traces carry no demands")
	}
	cfg := leasing.PowerLeaseConfig(*k, 4, 0.55)
	rng := rand.New(rand.NewSource(*seed))

	lsr, opt, optNote, verify, err := buildLeaser(cfg, kind, events, *algorithm, *sets, *delta, rng)
	if err != nil {
		return err
	}
	run, err := leasing.Replay(lsr, events)
	if err != nil {
		return err
	}
	if err := verify(lsr.Snapshot()); err != nil {
		return err
	}
	if *curve {
		printCurve(run)
	}
	if optNote != "" {
		fmt.Println(optNote)
	}
	report(run, opt, len(events))
	return nil
}

func readTrace(path string) (*leasing.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return leasing.ReadTrace(f)
}

// buildLeaser constructs the domain Leaser for the trace kind, computes
// the offline baseline it is measured against, and returns the snapshot
// verifier closed over the instance the leaser was built on.
func buildLeaser(cfg *leasing.LeaseConfig, kind string, events []leasing.Event, algorithm string, sets, delta int, rng *rand.Rand) (leasing.Leaser, float64, string, func(leasing.Solution) error, error) {
	noVerify := func(leasing.Solution) error { return nil }
	switch kind {
	case leasing.TraceKindDays:
		var alg leasing.ParkingPermitAlgorithm
		var err error
		switch algorithm {
		case "det":
			alg, err = leasing.NewDeterministicParkingPermit(cfg)
		case "rand":
			alg, err = leasing.NewRandomizedParkingPermit(cfg, rng)
		default:
			return nil, 0, "", nil, fmt.Errorf("unknown algorithm %q (want det or rand)", algorithm)
		}
		if err != nil {
			return nil, 0, "", nil, err
		}
		days := eventTimes(events)
		opt, _, err := leasing.ParkingPermitOptimal(cfg, days)
		if err != nil {
			return nil, 0, "", nil, err
		}
		verify := func(sol leasing.Solution) error {
			if !cfg.CoversAll(leasing.SolutionLeases(sol), days) {
				return fmt.Errorf("snapshot does not cover every demand day")
			}
			return nil
		}
		return leasing.NewParkingStream(alg), opt, "", verify, nil

	case leasing.TraceKindDeadline:
		in, err := deadlineInstance(cfg, events)
		if err != nil {
			return nil, 0, "", nil, err
		}
		lsr, err := leasing.NewDeadlineStream(cfg)
		if err != nil {
			return nil, 0, "", nil, err
		}
		opt, err := leasing.DeadlineOptimal(in, 0)
		if err != nil {
			return nil, 0, "", nil, fmt.Errorf("offline optimum: %w (instance may be too large for exact search)", err)
		}
		verify := func(sol leasing.Solution) error {
			return leasing.VerifyDeadline(in, leasing.SolutionLeases(sol))
		}
		return lsr, opt, "", verify, nil

	case leasing.TraceKindElements:
		inst, err := elementsInstance(cfg, events, sets, delta, rng)
		if err != nil {
			return nil, 0, "", nil, err
		}
		lsr, err := leasing.NewSetCoverStream(inst, rng)
		if err != nil {
			return nil, 0, "", nil, err
		}
		opt, exact, err := leasing.SetCoverOptimal(inst, 50000)
		if err != nil {
			return nil, 0, "", nil, err
		}
		note := ""
		if !exact {
			note = "(offline optimum not proven; reporting best bound)"
		}
		verify := func(sol leasing.Solution) error {
			return leasing.VerifySetCover(inst, leasing.SolutionSetLeases(sol))
		}
		return lsr, opt, note, verify, nil

	default:
		return nil, 0, "", noVerify, fmt.Errorf("unsupported trace kind %q", kind)
	}
}

func deadlineInstance(cfg *leasing.LeaseConfig, events []leasing.Event) (*leasing.DeadlineInstance, error) {
	clients := make([]leasing.DeadlineClient, 0, len(events))
	for i, ev := range events {
		w, ok := ev.Payload.(leasing.WindowPayload)
		if !ok {
			return nil, fmt.Errorf("event %d is not a deadline demand", i)
		}
		clients = append(clients, leasing.DeadlineClient{T: ev.Time, D: w.D})
	}
	return leasing.NewDeadlineInstance(cfg, clients)
}

func elementsInstance(cfg *leasing.LeaseConfig, events []leasing.Event, sets, delta int, rng *rand.Rand) (*leasing.SetCoverInstance, error) {
	arrivals := make([]leasing.ElementArrival, 0, len(events))
	n := 0
	for i, ev := range events {
		e, ok := ev.Payload.(leasing.ElementPayload)
		if !ok {
			return nil, fmt.Errorf("event %d is not an element demand", i)
		}
		arrivals = append(arrivals, leasing.ElementArrival{T: ev.Time, Elem: e.Elem, P: e.P})
		if e.Elem >= n {
			n = e.Elem + 1
		}
	}
	fam, err := leasing.RandomSetFamily(rng, n, sets, delta)
	if err != nil {
		return nil, err
	}
	costs := leasing.RandomSetCosts(rng, sets, cfg, 0.5)
	return leasing.NewSetCoverInstance(fam, cfg, costs, arrivals, leasing.PerArrival)
}

func eventTimes(events []leasing.Event) []int64 {
	out := make([]int64, len(events))
	for i, ev := range events {
		out[i] = ev.Time
	}
	return out
}

func printCurve(run *leasing.StreamRun) {
	for i, p := range run.Curve {
		fmt.Printf("curve: event %d  t=%d  cost=%.3f  bought=%d\n",
			i, p.Time, p.Cost, len(run.Decisions[i].Leases))
	}
}

func report(run *leasing.StreamRun, opt float64, demands int) {
	fmt.Printf("demands: %d\n", demands)
	fmt.Printf("online cost:  %.3f\n", run.Total())
	fmt.Printf("offline OPT:  %.3f\n", opt)
	if ratio, err := run.Ratio(opt); err == nil {
		fmt.Printf("ratio:        %.3f\n", ratio)
	}
}
