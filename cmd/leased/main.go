// Command leased is the network-facing lease service: an HTTP/JSON
// daemon fronting the sharded multi-tenant engine. Remote tenants open
// sessions from full instance specs, stream demands in (JSON arrays or
// NDJSON, or — negotiated per request via Content-Type/Accept — the
// compact application/x-lease-binary framing, which the daemon decodes
// on a pooled zero-allocation path), and read costs, snapshots and
// recorded runs back; shard-queue
// backpressure surfaces as 429s and SIGINT/SIGTERM triggers a graceful
// drain (stop accepting requests, process everything queued, publish
// final state, exit 0). With -data-dir the daemon is durable: every
// acknowledged open, event batch and close is write-ahead logged before
// it is acknowledged, and on boot every logged session is recovered —
// so a crash (even SIGKILL) loses nothing acknowledged. docs/API.md
// documents the protocol, docs/DURABILITY.md the log format and
// recovery semantics, and docs/OPERATIONS.md the operational knobs;
// cmd/leaseload -remote load-tests a running daemon and cmd/leaseload
// -crash drills kill-and-recover against this binary.
//
// With -peers (a comma-separated list of every node's base URL) and
// -self (this node's URL in that list) the daemon joins a cluster:
// tenants are placed on nodes by a shared consistent-hash ring,
// requests for foreign tenants answer 307 to the owner, and every WAL
// record this node appends is streamed to the tenant's replica — the
// next node clockwise on the ring — so killing a node fails its
// tenants over with their full logged history already in place.
// Cluster mode requires -data-dir (the follower log lives under it);
// docs/CLUSTER.md documents placement, replication and the failover
// runbook, and cmd/leaseload -crash -cluster drills it.
//
// Usage:
//
//	leased [-addr :8080] [-shards 8] [-queue 256] [-batch 64] [-record] [-auth tokens.txt]
//	       [-data-dir DIR] [-fsync] [-compact-every N]
//	       [-peers URL,URL,...] [-self URL] [-peer-token TOKEN]
//
// The -auth file enables per-tenant token scoping: one "token tenant"
// pair per line ('#' comments), where tenant "*" is the admin scope.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"leasing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leased:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("leased", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		shards   = fs.Int("shards", 8, "engine shards (goroutines sessions are hashed across)")
		queue    = fs.Int("queue", 256, "engine per-shard queue depth; a full queue turns submits into 429s")
		batch    = fs.Int("batch", 64, "engine batch size (events drained per shard wake)")
		record   = fs.Bool("record", false, "record full per-session runs so the result endpoint works")
		authPath = fs.String("auth", "", "token file enabling per-tenant auth: one 'token tenant' pair per line, tenant '*' is the admin scope")
		drainFor = fs.Duration("drain", 10*time.Second, "how long shutdown waits for in-flight requests before forcing the drain")
		dataDir  = fs.String("data-dir", "", "write-ahead-log directory enabling durability; sessions are recovered from it on boot (empty disables)")
		fsync    = fs.Bool("fsync", false, "with -data-dir: fsync the log before acknowledging (group-committed); survives machine crashes, not just process crashes")
		compact  = fs.Int64("compact-every", 0, "with -data-dir: compact the log after this many appended records (0 disables automatic compaction)")
		peersCSV = fs.String("peers", "", "comma-separated base URLs of every cluster node (including this one); enables cluster mode and requires -self and -data-dir")
		self     = fs.String("self", "", "with -peers: this node's base URL exactly as it appears in the peer list")
		peerTok  = fs.String("peer-token", "", "with -peers: admin bearer token sent with shipped records (required when peers run -auth)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 || *queue < 1 || *batch < 1 {
		return fmt.Errorf("-shards, -queue and -batch must be >= 1")
	}
	if *compact < 0 {
		return fmt.Errorf("-compact-every must be >= 0")
	}
	if *dataDir == "" && (*fsync || *compact > 0) {
		return fmt.Errorf("-fsync and -compact-every require -data-dir")
	}
	var peers []string
	if *peersCSV != "" {
		for _, p := range strings.Split(*peersCSV, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		if *self == "" {
			return fmt.Errorf("-peers requires -self")
		}
		if *dataDir == "" {
			return fmt.Errorf("-peers requires -data-dir (replication ships WAL records)")
		}
	} else if *self != "" || *peerTok != "" {
		return fmt.Errorf("-self and -peer-token require -peers")
	}
	tokens, err := loadAuth(*authPath)
	if err != nil {
		return err
	}

	logger := log.New(w, "leased: ", log.LstdFlags)
	cfg := leasing.EngineConfig{
		Shards:     *shards,
		QueueDepth: *queue,
		BatchSize:  *batch,
		RecordRuns: *record,
	}
	var eng *leasing.Engine
	var wlog, follower *leasing.DurableLog
	var shipper *leasing.ClusterShipper
	var replicated *leasing.ReplicatedDurableLog
	if *dataDir != "" {
		wlog, err = leasing.OpenDurableLog(*dataDir, leasing.DurableLogOptions{
			Fsync:        *fsync,
			CompactEvery: *compact,
		})
		if err != nil {
			return err
		}
		// The engine's WAL: the log itself, or — clustered — the log
		// wrapped with a shipper that streams each appended record to
		// the tenant's replica. Recovery replays without logging, so a
		// reboot never re-ships history the replicas already hold.
		var ewal leasing.EngineWAL = wlog
		if len(peers) > 0 {
			follower, err = leasing.OpenDurableLog(filepath.Join(*dataDir, "follower"), leasing.DurableLogOptions{
				Fsync: *fsync,
			})
			if err != nil {
				wlog.Close()
				return err
			}
			shipper, err = leasing.NewClusterShipper(*self, peers, leasing.ClusterShipperOptions{Token: *peerTok})
			if err != nil {
				follower.Close()
				wlog.Close()
				return err
			}
			replicated = leasing.ReplicateDurableLog(wlog, shipper)
			ewal = replicated
		}
		var recovered int
		eng, recovered, err = leasing.RecoverEngineWAL(wlog, ewal, cfg)
		if err != nil {
			if shipper != nil {
				shipper.Close()
			}
			if follower != nil {
				follower.Close()
			}
			wlog.Close()
			return err
		}
		m := eng.Metrics()
		logger.Printf("recovered %d sessions (%d events) from %s", recovered, m.Events, *dataDir)
	} else {
		eng = leasing.NewEngine(cfg)
	}
	closeAll := func() {
		eng.Close()
		if shipper != nil {
			shipper.Close()
		}
		if follower != nil {
			follower.Close()
		}
		if wlog != nil {
			wlog.Close()
		}
	}
	scfg := leasing.LeaseServerConfig{Tokens: tokens}
	if wlog != nil {
		// Durable daemons expose the log's counters on the Prometheus
		// scrape alongside the engine families.
		scfg.WALStats = wlog.Stats
	}
	if len(peers) > 0 {
		scfg.Cluster = &leasing.LeaseClusterConfig{
			Self:         *self,
			Peers:        peers,
			Follower:     follower,
			WAL:          replicated,
			ShipperStats: shipper.Stats,
		}
	}
	handler := leasing.Serve(eng, scfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		closeAll()
		return err
	}
	logger.Printf("listening on %s (shards=%d queue=%d batch=%d record=%v auth=%v durable=%v fsync=%v cluster=%d)",
		ln.Addr(), *shards, *queue, *batch, *record, len(tokens) > 0, *dataDir != "", *fsync, len(peers))
	if len(peers) > 0 {
		logger.Printf("cluster mode: self=%s peers=%s", *self, strings.Join(peers, ","))
	}

	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		closeAll()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting requests, let in-flight ones
	// finish, then close the engine — which processes everything already
	// queued and publishes final state before stopping its shards.
	logger.Printf("signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := eng.Close(); err != nil {
		return err
	}
	m := eng.Metrics()
	logger.Printf("drained: %d sessions, %d events processed, %d dropped, total cost %.2f",
		m.Sessions, m.Events, m.Dropped, m.Cost)
	// Clustered drain ordering: the engine has stopped appending, so
	// closing the shipper flushes every acknowledged record to its
	// replica before the logs close beneath it.
	if shipper != nil {
		shipper.Close()
		st := shipper.Stats()
		logger.Printf("shipper closed: %d records in %d batches shipped, %d dropped, failed peers: %v",
			st.Shipped, st.Batches, st.Dropped, st.FailedPeers)
	}
	if follower != nil {
		if err := follower.Close(); err != nil {
			return err
		}
	}
	if wlog != nil {
		st := wlog.Stats()
		if err := wlog.Close(); err != nil {
			return err
		}
		logger.Printf("wal closed: %d appends, %d syncs, %d compactions (segment %08d)",
			st.Appends, st.Syncs, st.Compactions, st.Segment)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loadAuth parses the -auth token file: one "token tenant" pair per
// line, blank lines and '#' comments skipped. An empty path disables
// auth.
func loadAuth(path string) (map[string]string, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tokens := map[string]string{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'token tenant', got %q", path, line, text)
		}
		if _, dup := tokens[fields[0]]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate token", path, line)
		}
		tokens[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("%s: no tokens (auth would be disabled implicitly)", path)
	}
	return tokens, nil
}
