package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-shards", "0"}, os.Stderr); err == nil {
		t.Error("shards=0 accepted")
	}
	if err := run([]string{"-nope"}, os.Stderr); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-auth", "/does/not/exist"}, os.Stderr); err == nil {
		t.Error("missing auth file accepted")
	}
	if err := run([]string{"-fsync"}, os.Stderr); err == nil {
		t.Error("-fsync without -data-dir accepted")
	}
	if err := run([]string{"-compact-every", "100"}, os.Stderr); err == nil {
		t.Error("-compact-every without -data-dir accepted")
	}
	if err := run([]string{"-data-dir", t.TempDir(), "-compact-every", "-1"}, os.Stderr); err == nil {
		t.Error("negative -compact-every accepted")
	}
	if err := run([]string{"-peers", "http://a,http://b", "-data-dir", t.TempDir()}, os.Stderr); err == nil {
		t.Error("-peers without -self accepted")
	}
	if err := run([]string{"-peers", "http://a,http://b", "-self", "http://a"}, os.Stderr); err == nil {
		t.Error("-peers without -data-dir accepted")
	}
	if err := run([]string{"-self", "http://a"}, os.Stderr); err == nil {
		t.Error("-self without -peers accepted")
	}
	if err := run([]string{"-peer-token", "tok"}, os.Stderr); err == nil {
		t.Error("-peer-token without -peers accepted")
	}
	if err := run([]string{"-peers", "http://a,http://b", "-self", "http://c", "-data-dir", t.TempDir()}, os.Stderr); err == nil {
		t.Error("-self outside the peer list accepted")
	}
}

func TestLoadAuth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tokens.txt")
	content := `# operator tokens
acme-token acme

root-token *
`
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	tokens, err := loadAuth(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 2 || tokens["acme-token"] != "acme" || tokens["root-token"] != "*" {
		t.Errorf("tokens = %v", tokens)
	}
}

func TestLoadAuthRejects(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"three fields":    "tok tenant extra\n",
		"duplicate token": "tok a\ntok b\n",
		"empty file":      "# only comments\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".txt")
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := loadAuth(path); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadAuthEmptyPathDisables(t *testing.T) {
	tokens, err := loadAuth("")
	if err != nil || tokens != nil {
		t.Errorf("loadAuth(\"\") = %v, %v; want nil, nil", tokens, err)
	}
}
