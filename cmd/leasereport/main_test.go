package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteCheckRoundTrip is the pipeline's core promise: docs written by
// the tool pass -check, and any edit to them fails it.
func TestWriteCheckRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-seed", "7", "-dir", dir}); err != nil {
		t.Fatalf("write: %v", err)
	}
	for _, name := range []string{"DESIGN.md", "EXPERIMENTS.md"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		for _, id := range []string{"E1", "E20"} {
			if !strings.Contains(string(b), id) {
				t.Errorf("%s missing %s", name, id)
			}
		}
	}
	if err := run([]string{"-check", "-quick", "-seed", "7", "-dir", dir}); err != nil {
		t.Fatalf("check of freshly written docs failed: %v", err)
	}

	// Hand-editing a generated doc must trip the gate.
	path := filepath.Join(dir, "EXPERIMENTS.md")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, []byte("manual edit\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-check", "-quick", "-seed", "7", "-dir", dir})
	if err == nil {
		t.Fatal("check accepted a hand-edited EXPERIMENTS.md")
	}
	if !strings.Contains(err.Error(), "EXPERIMENTS.md") || !strings.Contains(err.Error(), "leasereport") {
		t.Errorf("drift error should name the file and the regeneration command, got: %v", err)
	}
}

// TestCheckWorkerCountInvariance regenerates under different worker counts
// against the same committed docs; the bytes must not depend on the pool
// size.
func TestCheckWorkerCountInvariance(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-seed", "7", "-workers", "1", "-dir", dir}); err != nil {
		t.Fatalf("write: %v", err)
	}
	for _, workers := range []string{"1", "4", "0"} {
		if err := run([]string{"-check", "-quick", "-seed", "7", "-workers", workers, "-dir", dir}); err != nil {
			t.Errorf("workers=%s: %v", workers, err)
		}
	}
}

// TestCheckMissingDocs points the user at the regeneration command when
// the docs were never generated.
func TestCheckMissingDocs(t *testing.T) {
	err := run([]string{"-check", "-quick", "-dir", t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "go run ./cmd/leasereport") {
		t.Errorf("missing-docs error should include the regeneration command, got: %v", err)
	}
}
