// Command leasereport regenerates the generated documentation: DESIGN.md
// (architecture and the E1..E20 experiment index) and EXPERIMENTS.md
// (paper-predicted vs measured, one table per experiment) from the
// experiment registry, docs/API.md (the lease service's endpoint
// reference) from the protocol declarations in internal/wire,
// docs/DURABILITY.md (the write-ahead log format, recovery semantics
// and runbook) from internal/wal — quantified from the committed
// BENCH_PR5.json when present — and docs/CLUSTER.md (tenant placement,
// log-shipping replication and the failover runbook) from
// internal/cluster, quantified from the committed BENCH_PR8.json. The
// docs are generated artifacts — they cannot drift from the code, and
// -check turns that promise into a CI gate by regenerating all five
// files in memory and failing when the committed bytes differ.
//
// Usage:
//
//	leasereport [-quick] [-seed 2015] [-workers 0] [-dir .]
//	leasereport -check [-quick] [-seed 2015]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"leasing/internal/cluster"
	"leasing/internal/experiments"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leasereport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leasereport", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "shrink sweeps and trial counts (the committed docs use -quick)")
		seed    = fs.Int64("seed", 2015, "base random seed")
		workers = fs.Int("workers", 0, "trial-engine workers; <= 0 selects GOMAXPROCS (output is identical either way)")
		dir     = fs.String("dir", ".", "directory holding DESIGN.md and EXPERIMENTS.md")
		check   = fs.Bool("check", false, "verify the committed docs match regenerated output instead of writing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	// The regeneration hint mirrors the flags of this invocation, so
	// following it reproduces exactly the bytes -check compared against.
	regen := "go run ./cmd/leasereport"
	if *quick {
		regen += " -quick"
	}
	regen += fmt.Sprintf(" -seed %d", *seed)
	if *dir != "." {
		regen += " -dir " + *dir
	}

	if *check {
		// Cheap failures first: read all committed files and compare the
		// run-free DESIGN.md, docs/API.md, docs/DURABILITY.md and
		// docs/CLUSTER.md before spending the full experiment sweep on
		// EXPERIMENTS.md.
		committed := map[string][]byte{}
		for _, name := range []string{"DESIGN.md", "EXPERIMENTS.md", apiDocPath, durabilityDocPath, clusterDocPath} {
			got, err := os.ReadFile(filepath.Join(*dir, name))
			if err != nil {
				return fmt.Errorf("%s: %w (generate it with: %s)", name, err, regen)
			}
			committed[name] = got
		}
		if err := checkDoc("DESIGN.md", committed["DESIGN.md"], experiments.DesignMarkdown(), regen); err != nil {
			return err
		}
		if err := checkDoc(apiDocPath, committed[apiDocPath], apiMarkdown(), regen); err != nil {
			return err
		}
		durability, err := durabilityMarkdown(*dir)
		if err != nil {
			return err
		}
		if err := checkDoc(durabilityDocPath, committed[durabilityDocPath], durability, regen); err != nil {
			return err
		}
		clusterDoc, err := clusterMarkdown(*dir)
		if err != nil {
			return err
		}
		if err := checkDoc(clusterDocPath, committed[clusterDocPath], clusterDoc, regen); err != nil {
			return err
		}
		record, err := experiments.ExperimentsMarkdown(cfg)
		if err != nil {
			return err
		}
		if err := checkDoc("EXPERIMENTS.md", committed["EXPERIMENTS.md"], record, regen); err != nil {
			return err
		}
		fmt.Printf("leasereport: DESIGN.md, EXPERIMENTS.md, %s, %s and %s match the code (%d experiments, %d endpoints)\n",
			apiDocPath, durabilityDocPath, clusterDocPath, len(experiments.IDs()), len(wire.Endpoints()))
		return nil
	}

	record, err := experiments.ExperimentsMarkdown(cfg)
	if err != nil {
		return err
	}
	durability, err := durabilityMarkdown(*dir)
	if err != nil {
		return err
	}
	clusterDoc, err := clusterMarkdown(*dir)
	if err != nil {
		return err
	}
	docs := []struct {
		name string
		want []byte
	}{
		{"DESIGN.md", experiments.DesignMarkdown()},
		{"EXPERIMENTS.md", record},
		{apiDocPath, apiMarkdown()},
		{durabilityDocPath, durability},
		{clusterDocPath, clusterDoc},
	}
	for _, d := range docs {
		path := filepath.Join(*dir, d.name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, d.want, 0o644); err != nil {
			return err
		}
		fmt.Printf("leasereport: wrote %s (%d bytes)\n", path, len(d.want))
	}
	return nil
}

// apiDocPath is where the generated endpoint reference lives, relative
// to -dir.
const apiDocPath = "docs/API.md"

// apiMarkdown renders docs/API.md: the shared generated-file header
// followed by the endpoint reference generated from internal/wire.
func apiMarkdown() []byte {
	return append([]byte(experiments.GeneratedHeader), wire.APIMarkdown()...)
}

// durabilityDocPath is where the generated WAL reference lives,
// relative to -dir.
const durabilityDocPath = "docs/DURABILITY.md"

// durabilityMarkdown renders docs/DURABILITY.md from internal/wal,
// quantifying the fsync trade-off from the committed BENCH_PR5.json in
// dir when present (a missing benchmark renders the unquantified
// fallback, so fresh checkouts and test dirs still generate).
func durabilityMarkdown(dir string) ([]byte, error) {
	bench, err := wal.LoadBenchPair(filepath.Join(dir, "BENCH_PR5.json"))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	return append([]byte(experiments.GeneratedHeader), wal.DurabilityMarkdown(bench)...), nil
}

// clusterDocPath is where the generated cluster reference lives,
// relative to -dir.
const clusterDocPath = "docs/CLUSTER.md"

// clusterMarkdown renders docs/CLUSTER.md from internal/cluster,
// quantifying node-count scaling from the committed BENCH_PR8.json in
// dir when present (a missing benchmark renders the unquantified
// fallback, so fresh checkouts and test dirs still generate).
func clusterMarkdown(dir string) ([]byte, error) {
	bench, err := cluster.LoadScalingBench(filepath.Join(dir, "BENCH_PR8.json"))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	return append([]byte(experiments.GeneratedHeader), cluster.ClusterMarkdown(bench)...), nil
}

// checkDoc compares a committed doc against its regenerated bytes; regen
// is the exact command that reproduces want.
func checkDoc(name string, got, want []byte, regen string) error {
	if !bytes.Equal(got, want) {
		return fmt.Errorf("%s drifted from the experiment registry at line %d; regenerate with: %s",
			name, firstDiffLine(got, want), regen)
	}
	return nil
}

// firstDiffLine reports the 1-based line where got and want diverge, so a
// failing CI gate points at the drifted experiment instead of just "files
// differ".
func firstDiffLine(got, want []byte) int {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return i + 1
		}
	}
	if len(gl) < len(wl) {
		return len(gl) + 1
	}
	return len(wl) + 1
}
