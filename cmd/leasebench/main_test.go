package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestList(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E11", "E20"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-experiment", "E11", "-quick", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E11 tight example") {
		t.Errorf("output missing table title:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := captureStdout(t, func() error {
		return run([]string{"-experiment", "E99"})
	}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestMarkdownRendering(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-experiment", "E11", "-quick", "-seed", "3", "-markdown"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### E11 tight example", "| dmax |", "| --- |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing %q:\n%s", want, out)
		}
	}
}
