package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestList(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E11", "E20"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-experiment", "E11", "-quick", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E11 tight example") {
		t.Errorf("output missing table title:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := captureStdout(t, func() error {
		return run([]string{"-experiment", "E99"})
	}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestMarkdownRendering(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-experiment", "E11", "-quick", "-seed", "3", "-markdown"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### E11 tight example", "| dmax |", "| --- |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONReport(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-json", "-experiment", "E11", "-quick", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Tool        string `json:"tool"`
		Mode        string `json:"mode"`
		Seed        int64  `json:"seed"`
		Experiments []struct {
			ID      string     `json:"id"`
			Title   string     `json:"title"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if report.Tool != "leasebench" || report.Mode != "quick" || report.Seed != 3 {
		t.Errorf("report header = %+v", report)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "E11" {
		t.Fatalf("experiments = %+v", report.Experiments)
	}
	e := report.Experiments[0]
	if len(e.Columns) == 0 || len(e.Rows) == 0 || !strings.Contains(e.Title, "E11") {
		t.Errorf("experiment record incomplete: %+v", e)
	}
}

func TestJSONReportToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if _, err := captureStdout(t, func() error {
		return run([]string{"-json", "-experiment", "E11", "-quick", "-out", path})
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Errorf("file is not valid JSON:\n%s", b)
	}
}

func TestJSONUnknownExperiment(t *testing.T) {
	if _, err := captureStdout(t, func() error {
		return run([]string{"-json", "-experiment", "E99"})
	}); err == nil {
		t.Error("unknown experiment accepted in -json mode")
	}
}
