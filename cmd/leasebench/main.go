// Command leasebench regenerates the evaluation artifacts of the thesis
// "Online Resource Leasing": one table per experiment E1..E20 (theorems,
// lower bounds, tight examples, extensions; see DESIGN.md for the index).
//
// Usage:
//
//	leasebench -list
//	leasebench -experiment E1 [-quick] [-seed 42] [-workers 4]
//	leasebench -experiment all [-markdown]
//	leasebench -json [-out BENCH_PR2.json]   # machine-readable report
//	leasebench -quick -json -gate BENCH_PR2.json [-gate-tolerance 0.15]
//
// Committed BENCH_*.json snapshots track the repo's perf trajectory,
// one per serving boundary, numbered by the PR that introduced them
// (the README documents the convention): leasebench writes the
// experiment-table reports (BENCH_PR2.json) and cmd/leaseload writes
// the serving-stack baselines — the in-process engine (BENCH_PR3.json)
// and the HTTP lease service driven with -remote (BENCH_PR4.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"leasing"
	"leasing/internal/benchgate"
	"leasing/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leasebench:", err)
		os.Exit(1)
	}
}

// jsonReport is the machine-readable benchmark format: one record per
// experiment with its full table and wall-clock cost, so the perf
// trajectory of the harness can be tracked across commits (committed
// snapshots are named BENCH_*.json).
type jsonReport struct {
	Tool        string           `json:"tool"`
	Mode        string           `json:"mode"`
	Seed        int64            `json:"seed"`
	Workers     int              `json:"workers"`
	GoVersion   string           `json:"go_version"`
	Experiments []jsonExperiment `json:"experiments"`
	TotalMS     float64          `json:"total_ms"`
}

type jsonExperiment struct {
	ID        string     `json:"id"`
	Chapter   string     `json:"chapter"`
	Paper     string     `json:"paper"`
	Predicted string     `json:"predicted"`
	Summary   string     `json:"summary"`
	Title     string     `json:"title"`
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	Note      string     `json:"note,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("leasebench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id (E1..E20) or 'all'")
		quick      = fs.Bool("quick", false, "shrink sweeps and trial counts")
		seed       = fs.Int64("seed", 2015, "base random seed")
		workers    = fs.Int("workers", 0, "trial-engine workers; <= 0 selects GOMAXPROCS (output is identical either way)")
		markdown   = fs.Bool("markdown", false, "render tables as Markdown (the cmd/leasereport format)")
		jsonOut    = fs.Bool("json", false, "emit a machine-readable JSON report (tables + timings)")
		outPath    = fs.String("out", "", "with -json: write the report to this file instead of stdout")
		list       = fs.Bool("list", false, "list experiments and exit")
		gatePath   = fs.String("gate", "", "with -json: compare total_ms against this committed BENCH_*.json snapshot (same mode) and fail on slowdown beyond -gate-tolerance")
		gateTol    = fs.Float64("gate-tolerance", 0.15, "with -gate: allowed fractional slowdown before the gate fails")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gatePath != "" && !*jsonOut {
		return fmt.Errorf("-gate requires -json (the gate compares the machine-readable report)")
	}
	if *list {
		for _, e := range leasing.Experiments() {
			fmt.Printf("%-4s ch %-13s %-24s %s\n", e.ID, e.Chapter, e.Paper, e.Summary)
		}
		return nil
	}
	ids := leasing.ExperimentIDs()
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers}

	if *jsonOut {
		report, err := writeJSON(ids, cfg, *outPath)
		if err != nil {
			return err
		}
		if *gatePath == "" {
			return nil
		}
		measured, ref, err := benchgate.GateReport(report, *gatePath, *gateTol)
		if err != nil {
			return err
		}
		fmt.Printf("leasebench: gate ok, %s %.1f vs %s %.1f (tolerance %.0f%%)\n",
			measured.Name, measured.Value, *gatePath, ref.Value, 100**gateTol)
		return nil
	}
	if *markdown {
		for _, id := range ids {
			tb, err := experiments.Run(id, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Printf("### %s\n\n", tb.Title)
			if err := tb.Markdown(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	lcfg := leasing.ExperimentConfig{Quick: *quick, Seed: *seed, Workers: *workers}
	if *experiment == "all" {
		return leasing.RunAllExperiments(lcfg, os.Stdout)
	}
	return leasing.RunExperiment(*experiment, lcfg, os.Stdout)
}

// writeJSON runs the selected experiments, emits the report, and
// returns it so the caller can gate on it.
func writeJSON(ids []string, cfg experiments.Config, outPath string) (jsonReport, error) {
	byID := map[string]experiments.Info{}
	for _, in := range experiments.List() {
		byID[in.ID] = in
	}
	mode := "full"
	if cfg.Quick {
		mode = "quick"
	}
	report := jsonReport{
		Tool:      "leasebench",
		Mode:      mode,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		GoVersion: runtime.Version(),
	}
	start := time.Now()
	for _, id := range ids {
		in, ok := byID[id]
		if !ok {
			return jsonReport{}, fmt.Errorf("unknown experiment %q", id)
		}
		expStart := time.Now()
		tb, err := experiments.Run(id, cfg)
		if err != nil {
			return jsonReport{}, fmt.Errorf("%s: %w", id, err)
		}
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID:        in.ID,
			Chapter:   in.Chapter,
			Paper:     in.Paper,
			Predicted: in.Predicted,
			Summary:   in.Summary,
			Title:     tb.Title,
			Columns:   tb.Columns,
			Rows:      tb.Rows,
			Note:      tb.Note,
			ElapsedMS: float64(time.Since(expStart).Microseconds()) / 1000,
		})
	}
	report.TotalMS = float64(time.Since(start).Microseconds()) / 1000

	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return jsonReport{}, err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return jsonReport{}, err
	}
	if outPath != "" {
		fmt.Printf("leasebench: wrote %s (%d experiments)\n", outPath, len(report.Experiments))
	}
	return report, nil
}
