// Command leasebench regenerates the evaluation artifacts of the thesis
// "Online Resource Leasing": one table per experiment E1..E16 (theorems,
// lower bounds, tight examples; see DESIGN.md for the index).
//
// Usage:
//
//	leasebench -list
//	leasebench -experiment E1 [-quick] [-seed 42]
//	leasebench -experiment all
package main

import (
	"flag"
	"fmt"
	"os"

	"leasing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leasebench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leasebench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id (E1..E16) or 'all'")
		quick      = fs.Bool("quick", false, "shrink sweeps and trial counts")
		seed       = fs.Int64("seed", 2015, "base random seed")
		list       = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range leasing.Experiments() {
			fmt.Printf("%-4s %-24s %s\n", e.ID, e.Paper, e.Summary)
		}
		return nil
	}
	cfg := leasing.ExperimentConfig{Quick: *quick, Seed: *seed}
	if *experiment == "all" {
		return leasing.RunAllExperiments(cfg, os.Stdout)
	}
	return leasing.RunExperiment(*experiment, cfg, os.Stdout)
}
