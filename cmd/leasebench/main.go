// Command leasebench regenerates the evaluation artifacts of the thesis
// "Online Resource Leasing": one table per experiment E1..E20 (theorems,
// lower bounds, tight examples, extensions; see DESIGN.md for the index).
//
// Usage:
//
//	leasebench -list
//	leasebench -experiment E1 [-quick] [-seed 42] [-workers 4]
//	leasebench -experiment all [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"

	"leasing"
	"leasing/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leasebench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leasebench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id (E1..E20) or 'all'")
		quick      = fs.Bool("quick", false, "shrink sweeps and trial counts")
		seed       = fs.Int64("seed", 2015, "base random seed")
		workers    = fs.Int("workers", 0, "trial-engine workers; <= 0 selects GOMAXPROCS (output is identical either way)")
		markdown   = fs.Bool("markdown", false, "render tables as Markdown (the cmd/leasereport format)")
		list       = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range leasing.Experiments() {
			fmt.Printf("%-4s ch %-13s %-24s %s\n", e.ID, e.Chapter, e.Paper, e.Summary)
		}
		return nil
	}
	if *markdown {
		ids := leasing.ExperimentIDs()
		if *experiment != "all" {
			ids = []string{*experiment}
		}
		cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers}
		for _, id := range ids {
			tb, err := experiments.Run(id, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Printf("### %s\n\n", tb.Title)
			if err := tb.Markdown(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	cfg := leasing.ExperimentConfig{Quick: *quick, Seed: *seed, Workers: *workers}
	if *experiment == "all" {
		return leasing.RunAllExperiments(cfg, os.Stdout)
	}
	return leasing.RunExperiment(*experiment, cfg, os.Stdout)
}
