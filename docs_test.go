package leasing

// Documentation-consistency tests: the repository's promise is that every
// experiment is indexed in DESIGN.md and recorded in EXPERIMENTS.md; these
// tests keep the docs from drifting as experiments are added.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"leasing/internal/analysis"
	"leasing/internal/cluster"
	"leasing/internal/experiments"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

func readDoc(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

func TestDesignIndexesEveryExperiment(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	for _, id := range ExperimentIDs() {
		if !strings.Contains(design, id+" ") && !strings.Contains(design, "| "+id+" |") {
			t.Errorf("DESIGN.md does not index experiment %s", id)
		}
	}
}

func TestExperimentsRecordsEveryExperiment(t *testing.T) {
	record := readDoc(t, "EXPERIMENTS.md")
	for _, id := range ExperimentIDs() {
		if !strings.Contains(record, id) {
			t.Errorf("EXPERIMENTS.md does not record experiment %s", id)
		}
	}
}

func TestReadmeMentionsDeliverables(t *testing.T) {
	readme := readDoc(t, "README.md")
	for _, want := range []string{
		"cmd/leasebench", "cmd/leasereport", "cmd/leaseload",
		"cmd/leased", "examples/quickstart", "DESIGN.md", "EXPERIMENTS.md",
		"docs/ARCHITECTURE.md", "docs/API.md", "docs/OPERATIONS.md",
		"docs/DURABILITY.md", "go test", "PODC 2015",
		"Leaser", "Replay", "Interleave", "Engine", "Serve", "Dial",
		"OpenDurableLog", "RecoverEngine",
		"-json", "BENCH_PR3.json", "BENCH_PR4.json", "BENCH_PR5.json",
		"BENCH_PR6.json", "-ramp", "-gate", "Prometheus",
		"docs/CLUSTER.md", "BENCH_PR8.json", "DialCluster", "-peers",
		"failover",
	} {
		if !strings.Contains(readme, want) {
			t.Errorf("README.md missing %q", want)
		}
	}
}

// TestGeneratedDocsCarryHeader keeps the generated documents recognizably
// generated: a hand-recreated DESIGN.md without the header would silently
// stop being checked against the registry.
func TestGeneratedDocsCarryHeader(t *testing.T) {
	for _, name := range []string{"DESIGN.md", "EXPERIMENTS.md", "docs/API.md", "docs/DURABILITY.md", "docs/CLUSTER.md"} {
		if !strings.HasPrefix(readDoc(t, name), experiments.GeneratedHeader) {
			t.Errorf("%s does not start with the cmd/leasereport generated-file header", name)
		}
	}
}

// TestPackageDocsMatchRegistrySize guards the drift this repo once had:
// doc.go and leasing.go claiming "sixteen experiments E1..E16" while the
// registry held twenty.
func TestPackageDocsMatchRegistrySize(t *testing.T) {
	last := ExperimentIDs()[len(ExperimentIDs())-1]
	for _, name := range []string{"doc.go", "leasing.go"} {
		src := readDoc(t, name)
		if !strings.Contains(src, "E1.."+last) {
			t.Errorf("%s does not document the experiment range E1..%s", name, last)
		}
		if strings.Contains(src, "sixteen") || (last != "E16" && strings.Contains(src, "E1..E16")) {
			t.Errorf("%s still documents the stale sixteen-experiment registry", name)
		}
	}
}

// TestDocGoDocumentsStreamProtocol keeps the package documentation honest
// about the unified streaming API being the primary interface.
func TestDocGoDocumentsStreamProtocol(t *testing.T) {
	src := readDoc(t, "doc.go")
	for _, want := range []string{"Leaser", "Observe", "Replay", "Interleave"} {
		if !strings.Contains(src, want) {
			t.Errorf("doc.go does not document %s of the stream protocol", want)
		}
	}
}

// TestInternalPackagesHaveGodoc enforces that every internal package
// carries package-level documentation: a doc comment starting with
// "Package <name>" on some file's package clause.
func TestInternalPackagesHaveGodoc(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no internal packages found")
	}
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			found := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.HasPrefix(f.Doc.Text(), "Package "+name) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("internal package %s (%s) has no package-level godoc", name, dir)
			}
		}
	}
}

// TestReadmeFlagsExist is the quickstart drift gate: every command-line
// flag the README or any document under docs/ mentions must still be
// defined by some cmd/ tool (or be a known `go test` flag), so renamed
// or removed flags cannot linger anywhere in the docs. The doc list is
// globbed, not enumerated — a new docs/*.md is gated the day it lands.
func TestReadmeFlagsExist(t *testing.T) {
	defined := map[string]bool{
		// `go test` / `go build` flags appearing in the docs' command
		// lines.
		"bench": true, "benchmem": true, "race": true, "run": true,
		"o": true, "update": true,
		// `go vet` flags appearing in docs/LINTING.md's command lines.
		"vettool": true,
	}
	mains, err := filepath.Glob("cmd/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(mains) == 0 {
		t.Fatal("no cmd mains found")
	}
	def := regexp.MustCompile(`fs\.[A-Za-z0-9]+\("([a-z][a-z0-9-]*)"`)
	for _, m := range mains {
		for _, g := range def.FindAllStringSubmatch(readDoc(t, m), -1) {
			defined[g[1]] = true
		}
	}
	docs := []string{"README.md"}
	more, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(more) < 4 {
		t.Fatalf("docs glob found only %v", more)
	}
	docs = append(docs, more...)
	use := regexp.MustCompile("(?m)(?:^|[\\s`(])-([a-z][a-z0-9-]*)")
	for _, doc := range docs {
		for _, g := range use.FindAllStringSubmatch(readDoc(t, doc), -1) {
			flag := strings.TrimRight(g[1], "-")
			if !defined[flag] {
				t.Errorf("%s mentions flag -%s, which no cmd/ tool defines", doc, flag)
			}
		}
	}
}

// TestArchitectureDocLinked keeps the architecture document discoverable
// and honest: it must exist, be linked from README and DESIGN.md, and
// describe the serving layers including the lease service and the
// durability layer.
func TestArchitectureDocLinked(t *testing.T) {
	arch := readDoc(t, "docs/ARCHITECTURE.md")
	for _, want := range []string{
		"internal/engine", "internal/stream", "cmd/leaseload",
		"internal/wire", "internal/server", "internal/client",
		"cmd/leased", "byte-identical", "backpressure", "429",
		"OPERATIONS.md", "API.md",
		"internal/wal", "DURABILITY.md", "write-ahead",
		"internal/cluster", "CLUSTER.md", "consistent-hash", "failover",
		"log shipping",
	} {
		if !strings.Contains(arch, want) {
			t.Errorf("docs/ARCHITECTURE.md does not mention %q", want)
		}
	}
	for _, name := range []string{"README.md", "DESIGN.md"} {
		if !strings.Contains(readDoc(t, name), "docs/ARCHITECTURE.md") {
			t.Errorf("%s does not link docs/ARCHITECTURE.md", name)
		}
	}
}

// TestOperationsDocLinked keeps the operator guide discoverable (linked
// from README, DESIGN.md and docs/ARCHITECTURE.md) and covering the
// operational surface: every leased flag, auth, metrics, shutdown, and
// the sizing baselines.
func TestOperationsDocLinked(t *testing.T) {
	ops := readDoc(t, "docs/OPERATIONS.md")
	for _, want := range []string{
		"-addr", "-shards", "-queue", "-batch", "-record", "-auth", "-drain",
		"-data-dir", "-fsync", "-compact-every",
		"SIGTERM", "429", "BENCH_PR3.json", "BENCH_PR4.json", "BENCH_PR5.json",
		"BENCH_PR6.json", "BENCH_PR7.json", "/v1/metrics", "/v1/healthz", "API.md",
		"ARCHITECTURE.md", "DURABILITY.md", "Backup", "compact",
		"Capacity planning", "-ramp", "-sla-p99", "-step-tenants",
		"-step-duration", "-gate", "-gate-tolerance", "-arrival",
		"-zipf-sizes", "promtool", "format=prometheus",
		"Binary framing", "application/x-lease-binary", "-binary",
		"-domains", "-cpuprofile",
		"leased_engine_events_total", "leased_wal_appends_total",
		"leased_http_requests_total",
		"-peers", "-self", "-peer-token", "BENCH_PR8.json", "CLUSTER.md",
		"leased_shipper_failed_peers", "-cluster", "-nodes",
		"-cluster-bench",
	} {
		if !strings.Contains(ops, want) {
			t.Errorf("docs/OPERATIONS.md does not mention %q", want)
		}
	}
	for _, name := range []string{"README.md", "DESIGN.md", "docs/ARCHITECTURE.md"} {
		if !strings.Contains(readDoc(t, name), "OPERATIONS.md") {
			t.Errorf("%s does not link the operator guide", name)
		}
	}
	if !strings.Contains(readDoc(t, "README.md"), "docs/API.md") {
		t.Error("README.md does not link the API reference")
	}
}

// TestAPIDocMatchesWire is the cheap in-tree twin of `leasereport
// -check`: the committed docs/API.md must be byte-identical to the
// reference regenerated from internal/wire's declarations.
func TestAPIDocMatchesWire(t *testing.T) {
	want := experiments.GeneratedHeader + string(wire.APIMarkdown())
	if got := readDoc(t, "docs/API.md"); got != want {
		t.Error("docs/API.md drifted from internal/wire; regenerate with: go run ./cmd/leasereport -quick")
	}
}

// TestDurabilityDocMatchesWal is the same gate for the WAL reference:
// the committed docs/DURABILITY.md must be byte-identical to the
// document regenerated from internal/wal and the committed
// BENCH_PR5.json.
func TestDurabilityDocMatchesWal(t *testing.T) {
	bench, err := wal.LoadBenchPair("BENCH_PR5.json")
	if err != nil {
		t.Fatalf("BENCH_PR5.json must be committed alongside docs/DURABILITY.md: %v", err)
	}
	want := experiments.GeneratedHeader + string(wal.DurabilityMarkdown(bench))
	if got := readDoc(t, "docs/DURABILITY.md"); got != want {
		t.Error("docs/DURABILITY.md drifted from internal/wal; regenerate with: go run ./cmd/leasereport -quick")
	}
}

// TestClusterDocMatches is the same gate for the cluster reference:
// the committed docs/CLUSTER.md must be byte-identical to the document
// regenerated from internal/cluster and the committed BENCH_PR8.json.
func TestClusterDocMatches(t *testing.T) {
	bench, err := cluster.LoadScalingBench("BENCH_PR8.json")
	if err != nil {
		t.Fatalf("BENCH_PR8.json must be committed alongside docs/CLUSTER.md: %v", err)
	}
	want := experiments.GeneratedHeader + string(cluster.ClusterMarkdown(bench))
	if got := readDoc(t, "docs/CLUSTER.md"); got != want {
		t.Error("docs/CLUSTER.md drifted from internal/cluster; regenerate with: go run ./cmd/leasereport -quick")
	}
}

// TestClusterDocLinked keeps the cluster reference discoverable (linked
// from the README, the architecture document and the operator guide)
// and covering the load-bearing pieces: placement, redirects, the
// log-shipping delivery contract, and the failover runbook.
func TestClusterDocLinked(t *testing.T) {
	doc := readDoc(t, "docs/CLUSTER.md")
	for _, want := range []string{
		"307", "replica", "follower", "byte-identical", "prefix",
		"sticky-fail", "MarkDown", "SubmitResume", "BENCH_PR8.json",
		"OPERATIONS.md", "ARCHITECTURE.md", "DURABILITY.md",
		"-crash -cluster", "Scaling",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/CLUSTER.md does not mention %q", want)
		}
	}
	for _, name := range []string{"README.md", "docs/ARCHITECTURE.md", "docs/OPERATIONS.md"} {
		if !strings.Contains(readDoc(t, name), "CLUSTER.md") {
			t.Errorf("%s does not link the cluster reference", name)
		}
	}
}

// TestDurabilityDocLinked keeps the durability reference discoverable:
// linked from the README, the generated DESIGN.md, the architecture
// document and the operator guide, and covering the load-bearing
// pieces (record framing, torn-tail truncation, compaction, the
// crash-recovery runbook and the quantified fsync trade-off).
func TestDurabilityDocLinked(t *testing.T) {
	doc := readDoc(t, "docs/DURABILITY.md")
	for _, want := range []string{
		"CRC-32C", "torn", "snapshot", "compaction", "fsync",
		"group commit", "BENCH_PR5.json", "runbook", "byte-identical",
		"OPERATIONS.md", "ARCHITECTURE.md",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/DURABILITY.md does not mention %q", want)
		}
	}
	for _, name := range []string{"README.md", "DESIGN.md", "docs/ARCHITECTURE.md", "docs/OPERATIONS.md"} {
		if !strings.Contains(readDoc(t, name), "DURABILITY.md") {
			t.Errorf("%s does not link the durability reference", name)
		}
	}
}

// TestLintingDocMatchesAnalyzers keeps docs/LINTING.md in lockstep
// with the leasevet registry: every registered analyzer has a `###`
// section, every `###` section names a registered analyzer, and the
// document stays discoverable from README and the architecture doc.
func TestLintingDocMatchesAnalyzers(t *testing.T) {
	doc := readDoc(t, "docs/LINTING.md")
	registered := map[string]bool{}
	for _, a := range analysis.Analyzers() {
		registered[a.Name] = true
		if !strings.Contains(doc, "### "+a.Name+"\n") {
			t.Errorf("docs/LINTING.md has no section for analyzer %q", a.Name)
		}
	}
	for _, m := range regexp.MustCompile(`(?m)^### ([a-z][a-z0-9-]*)$`).FindAllStringSubmatch(doc, -1) {
		if !registered[m[1]] {
			t.Errorf("docs/LINTING.md documents %q, which cmd/leasevet does not register", m[1])
		}
	}
	for _, want := range []string{"-vettool", "//lint:allow-", "wallclock", "cmd/leasevet", "ci.yml"} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/LINTING.md does not mention %q", want)
		}
	}
	for _, name := range []string{"README.md", "docs/ARCHITECTURE.md"} {
		if !strings.Contains(readDoc(t, name), "LINTING.md") {
			t.Errorf("%s does not link docs/LINTING.md", name)
		}
	}
}

func TestBenchmarksExistForEveryExperiment(t *testing.T) {
	bench := readDoc(t, "bench_test.go")
	for _, id := range ExperimentIDs() {
		if !strings.Contains(bench, `"`+id+`"`) {
			t.Errorf("bench_test.go has no benchmark for %s", id)
		}
	}
}
