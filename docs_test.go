package leasing

// Documentation-consistency tests: the repository's promise is that every
// experiment is indexed in DESIGN.md and recorded in EXPERIMENTS.md; these
// tests keep the docs from drifting as experiments are added.

import (
	"os"
	"strings"
	"testing"

	"leasing/internal/experiments"
)

func readDoc(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

func TestDesignIndexesEveryExperiment(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	for _, id := range ExperimentIDs() {
		if !strings.Contains(design, id+" ") && !strings.Contains(design, "| "+id+" |") {
			t.Errorf("DESIGN.md does not index experiment %s", id)
		}
	}
}

func TestExperimentsRecordsEveryExperiment(t *testing.T) {
	record := readDoc(t, "EXPERIMENTS.md")
	for _, id := range ExperimentIDs() {
		if !strings.Contains(record, id) {
			t.Errorf("EXPERIMENTS.md does not record experiment %s", id)
		}
	}
}

func TestReadmeMentionsDeliverables(t *testing.T) {
	readme := readDoc(t, "README.md")
	for _, want := range []string{
		"cmd/leasebench", "cmd/leasereport", "examples/quickstart",
		"DESIGN.md", "EXPERIMENTS.md", "go test", "PODC 2015",
		"Leaser", "Replay", "Interleave", "-json",
	} {
		if !strings.Contains(readme, want) {
			t.Errorf("README.md missing %q", want)
		}
	}
}

// TestGeneratedDocsCarryHeader keeps the generated documents recognizably
// generated: a hand-recreated DESIGN.md without the header would silently
// stop being checked against the registry.
func TestGeneratedDocsCarryHeader(t *testing.T) {
	for _, name := range []string{"DESIGN.md", "EXPERIMENTS.md"} {
		if !strings.HasPrefix(readDoc(t, name), experiments.GeneratedHeader) {
			t.Errorf("%s does not start with the cmd/leasereport generated-file header", name)
		}
	}
}

// TestPackageDocsMatchRegistrySize guards the drift this repo once had:
// doc.go and leasing.go claiming "sixteen experiments E1..E16" while the
// registry held twenty.
func TestPackageDocsMatchRegistrySize(t *testing.T) {
	last := ExperimentIDs()[len(ExperimentIDs())-1]
	for _, name := range []string{"doc.go", "leasing.go"} {
		src := readDoc(t, name)
		if !strings.Contains(src, "E1.."+last) {
			t.Errorf("%s does not document the experiment range E1..%s", name, last)
		}
		if strings.Contains(src, "sixteen") || (last != "E16" && strings.Contains(src, "E1..E16")) {
			t.Errorf("%s still documents the stale sixteen-experiment registry", name)
		}
	}
}

// TestDocGoDocumentsStreamProtocol keeps the package documentation honest
// about the unified streaming API being the primary interface.
func TestDocGoDocumentsStreamProtocol(t *testing.T) {
	src := readDoc(t, "doc.go")
	for _, want := range []string{"Leaser", "Observe", "Replay", "Interleave"} {
		if !strings.Contains(src, want) {
			t.Errorf("doc.go does not document %s of the stream protocol", want)
		}
	}
}

func TestBenchmarksExistForEveryExperiment(t *testing.T) {
	bench := readDoc(t, "bench_test.go")
	for _, id := range ExperimentIDs() {
		if !strings.Contains(bench, `"`+id+`"`) {
			t.Errorf("bench_test.go has no benchmark for %s", id)
		}
	}
}
