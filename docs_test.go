package leasing

// Documentation-consistency tests: the repository's promise is that every
// experiment is indexed in DESIGN.md and recorded in EXPERIMENTS.md; these
// tests keep the docs from drifting as experiments are added.

import (
	"os"
	"strings"
	"testing"
)

func readDoc(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

func TestDesignIndexesEveryExperiment(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	for _, id := range ExperimentIDs() {
		if !strings.Contains(design, id+" ") && !strings.Contains(design, "| "+id+" |") {
			t.Errorf("DESIGN.md does not index experiment %s", id)
		}
	}
}

func TestExperimentsRecordsEveryExperiment(t *testing.T) {
	record := readDoc(t, "EXPERIMENTS.md")
	for _, id := range ExperimentIDs() {
		if !strings.Contains(record, id) {
			t.Errorf("EXPERIMENTS.md does not record experiment %s", id)
		}
	}
}

func TestReadmeMentionsDeliverables(t *testing.T) {
	readme := readDoc(t, "README.md")
	for _, want := range []string{
		"cmd/leasebench", "examples/quickstart", "DESIGN.md", "EXPERIMENTS.md",
		"go test", "PODC 2015",
	} {
		if !strings.Contains(readme, want) {
			t.Errorf("README.md missing %q", want)
		}
	}
}

func TestBenchmarksExistForEveryExperiment(t *testing.T) {
	bench := readDoc(t, "bench_test.go")
	for _, id := range ExperimentIDs() {
		if !strings.Contains(bench, `"`+id+`"`) {
			t.Errorf("bench_test.go has no benchmark for %s", id)
		}
	}
}
