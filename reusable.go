package leasing

import (
	"leasing/internal/reusable"
)

// ReusableRequest is one reusable-resource demand: it arrives at T and,
// if granted, occupies one capacity unit over [T, T+Dur) before the unit
// returns to the pool. Durations below 1 are treated as 1.
type ReusableRequest = reusable.Request

// ReusableInstance couples a lease configuration with a pool capacity
// and a request stream; ReusableOffline and VerifyReusable are defined
// against it.
type ReusableInstance = reusable.Instance

// NewReusableInstance validates and builds a reusable-resource instance.
// The configuration must be in the interval model, capacity at least 1,
// and requests sorted by arrival.
func NewReusableInstance(cfg *LeaseConfig, capacity int, requests []ReusableRequest) (*ReusableInstance, error) {
	return reusable.NewInstance(cfg, capacity, requests)
}

// NewReusableStream builds the greedy first-fit reusable-resource
// allocator as a unified Leaser consuming Use events: each granted
// request occupies one of C units for its duration, provisioning
// uncovered grants with the per-unit parking-permit primal-dual rule
// (K-competitive per unit against ReusableOffline's baseline).
func NewReusableStream(inst *ReusableInstance) (Leaser, error) {
	alg, err := reusable.NewOnline(inst.Config(), inst.Capacity(), reusable.Options{})
	if err != nil {
		return nil, err
	}
	return reusable.NewLeaser(alg), nil
}

// NewPredictiveReusableStream is the learning-augmented variant: with
// believed per-step demand probability p in (0, 1], uncovered grants buy
// the lease minimizing cost per expected served request — the pool-wide
// generalization of the predictive parking-permit rule (experiment E22
// measures the consistency/robustness trade-off).
func NewPredictiveReusableStream(inst *ReusableInstance, p float64) (Leaser, error) {
	alg, err := reusable.NewOnline(inst.Config(), inst.Capacity(), reusable.Options{Prediction: p})
	if err != nil {
		return nil, err
	}
	return reusable.NewLeaser(alg), nil
}

// ReusableOffline is the offline feasibility oracle: the same first-fit
// admission as the online allocator, with each unit's leases chosen by
// the exact laminar DP over that unit's grant instants. It returns the
// total provisioning cost and the lease set in canonical order.
func ReusableOffline(inst *ReusableInstance) (float64, []ItemLease, error) {
	return reusable.Offline(inst)
}

// VerifyReusable checks a reusable-resource solution against the
// instance: one assignment per request in arrival order, exclusive unit
// occupation (never more than C concurrent usages), every grant covered
// by a lease of the reported type on its serving unit, and rejections
// only when the whole pool was busy.
func VerifyReusable(inst *ReusableInstance, sol Solution) error {
	return reusable.Verify(inst, sol)
}

// UseEvent builds a reusable-resource demand arriving at t that occupies
// one capacity unit for dur steps when granted.
func UseEvent(t, dur int64) Event {
	return Event{Time: t, Payload: UsePayload{Dur: dur}}
}

// UseEvents converts a sorted request stream into events.
func UseEvents(reqs []ReusableRequest) []Event { return reusable.Events(reqs) }

// SolutionUnitAssignments projects a snapshot's assignments onto the
// reusable domain's per-request verdicts: Unit is the serving capacity
// unit (-1 for a rejection) and K the lease type the grant was served
// under.
func SolutionUnitAssignments(sol Solution) []UnitAssignment {
	out := make([]UnitAssignment, len(sol.Assignments))
	for i, a := range sol.Assignments {
		out[i] = UnitAssignment{Unit: a.Item, K: a.K}
	}
	return out
}

// UnitAssignment is one reusable-resource verdict: the request (in
// arrival order) was served by capacity unit Unit under lease type K, or
// rejected when Unit is -1.
type UnitAssignment struct {
	Unit int
	K    int
}
