package stream

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"leasing/internal/workload"
)

// fakeLeaser buys one unit-cost lease per event; it exists to test the
// driver without pulling in a domain package.
type fakeLeaser struct {
	events int
	cost   float64
}

func (f *fakeLeaser) Observe(ev Event) (Decision, error) {
	if _, ok := ev.Payload.(Day); !ok && ev.Payload != nil {
		return Decision{}, errors.New("fake: unsupported payload")
	}
	f.events++
	f.cost += 1
	return Decision{
		Leases: []ItemLease{{Item: 0, K: 0, Start: ev.Time}},
		Cost:   1,
	}, nil
}

func (f *fakeLeaser) Cost() CostBreakdown { return CostBreakdown{Lease: f.cost} }

func (f *fakeLeaser) Snapshot() Solution { return Solution{} }

func TestReplayCurveAndTotals(t *testing.T) {
	l := &fakeLeaser{}
	run, err := Replay(l, Days([]int64{1, 3, 3, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Decisions) != 4 || len(run.Curve) != 4 {
		t.Fatalf("got %d decisions, %d curve points", len(run.Decisions), len(run.Curve))
	}
	if run.Total() != 4 {
		t.Errorf("total = %v, want 4", run.Total())
	}
	if math.Abs(run.DecisionCostSum()-run.Total()) > 1e-12 {
		t.Errorf("decision sum %v != total %v", run.DecisionCostSum(), run.Total())
	}
	for i, p := range run.Curve {
		if want := float64(i + 1); p.Cost != want {
			t.Errorf("curve[%d].Cost = %v, want %v", i, p.Cost, want)
		}
	}
	ratio, err := run.Ratio(2)
	if err != nil || ratio != 2 {
		t.Errorf("ratio = %v, %v", ratio, err)
	}
	curve, err := run.RatioCurve(4)
	if err != nil || curve[len(curve)-1] != 1 {
		t.Errorf("ratio curve = %v, %v", curve, err)
	}
	if _, err := run.Ratio(0); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestReplayRejectsTimeRegression(t *testing.T) {
	if _, err := Replay(&fakeLeaser{}, Days([]int64{5, 4})); err == nil {
		t.Error("out-of-order events accepted")
	}
}

func TestReplaySurfacesLeaserErrors(t *testing.T) {
	evs := []Event{{Time: 0, Payload: Connect{S: 0, T: 1}}}
	if _, err := Replay(&fakeLeaser{}, evs); err == nil {
		t.Error("unsupported payload accepted")
	}
}

func TestInterleaveDeterministicMerge(t *testing.T) {
	a := Days([]int64{0, 2, 2, 9})
	b := Days([]int64{1, 2, 5})
	got := Interleave(a, b)
	var times []int64
	for _, ev := range got {
		times = append(times, ev.Time)
	}
	want := []int64{0, 1, 2, 2, 2, 5, 9}
	if !reflect.DeepEqual(times, want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
	// Ties go to the earlier stream: both events at t=2 from stream a come
	// before stream b's.
	again := Interleave(a, b)
	if !reflect.DeepEqual(got, again) {
		t.Error("interleave not deterministic")
	}
	if out := Interleave(); len(out) != 0 {
		t.Errorf("empty interleave returned %d events", len(out))
	}
}

func TestFromTraceAllKinds(t *testing.T) {
	cases := []struct {
		tr   *workload.Trace
		want Payload
	}{
		{&workload.Trace{Kind: workload.KindDays, Days: []int64{3}}, Day{}},
		{&workload.Trace{Kind: workload.KindDeadline, Deadline: []workload.DeadlineClient{{T: 3, D: 2}}}, Window{D: 2}},
		{&workload.Trace{Kind: workload.KindElements, Elements: []workload.ElementArrival{{T: 3, Elem: 1, P: 2}}}, Element{Elem: 1, P: 2}},
	}
	for _, c := range cases {
		evs, err := FromTrace(c.tr)
		if err != nil {
			t.Fatalf("%s: %v", c.tr.Kind, err)
		}
		if len(evs) != 1 || evs[0].Time != 3 || !reflect.DeepEqual(evs[0].Payload, c.want) {
			t.Errorf("%s: events = %+v", c.tr.Kind, evs)
		}
	}
	if _, err := FromTrace(&workload.Trace{Kind: "bogus"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSortItemLeases(t *testing.T) {
	ls := []ItemLease{{Item: 1, K: 0, Start: 4}, {Item: 0, K: 1, Start: 0}, {Item: 0, K: 0, Start: 8}, {Item: 0, K: 0, Start: 2}}
	SortItemLeases(ls)
	want := []ItemLease{{Item: 0, K: 0, Start: 2}, {Item: 0, K: 0, Start: 8}, {Item: 0, K: 1, Start: 0}, {Item: 1, K: 0, Start: 4}}
	if !reflect.DeepEqual(ls, want) {
		t.Errorf("sorted = %v", ls)
	}
}
