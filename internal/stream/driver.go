package stream

import (
	"fmt"

	"leasing/internal/metric"
	"leasing/internal/workload"
)

// CurvePoint is one point of a replay's cost curve: the cumulative total
// cost after the event at Time was processed.
type CurvePoint struct {
	Time int64
	Cost float64
}

// Run is the result of replaying an event stream through a Leaser: one
// Decision and one cost-curve point per event, plus the final breakdown.
type Run struct {
	Decisions []Decision
	Curve     []CurvePoint
	Final     CostBreakdown
}

// Total returns the final cumulative cost.
func (r *Run) Total() float64 { return r.Final.Total() }

// DecisionCostSum sums the per-event incremental costs; up to floating
// rounding it equals Total() (the conformance suite asserts this).
func (r *Run) DecisionCostSum() float64 {
	var sum float64
	for _, d := range r.Decisions {
		sum += d.Cost
	}
	return sum
}

// Ratio returns Total()/offline, the empirical competitive ratio of the
// run against an offline baseline.
func (r *Run) Ratio(offline float64) (float64, error) {
	if offline <= 0 {
		return 0, fmt.Errorf("stream: non-positive offline baseline %v", offline)
	}
	return r.Total() / offline, nil
}

// RatioCurve returns the per-event cumulative-cost-to-baseline curve, the
// "ratio vs offline" trajectory of one replay.
func (r *Run) RatioCurve(offline float64) ([]float64, error) {
	if offline <= 0 {
		return nil, fmt.Errorf("stream: non-positive offline baseline %v", offline)
	}
	out := make([]float64, len(r.Curve))
	for i, p := range r.Curve {
		out[i] = p.Cost / offline
	}
	return out, nil
}

// Recorder drives one Leaser event by event: it enforces non-decreasing
// event times, counts events, and (when keeping) accumulates the decision
// list and cumulative cost curve a Replay returns. It is the incremental
// core shared by Replay and by the multi-tenant engine
// (internal/engine), which owns one Recorder per session — that sharing
// is what makes an engine session's recorded run byte-identical to a
// single-threaded Replay of the same events.
type Recorder struct {
	keep      bool
	n         int
	last      int64
	decisions []Decision
	curve     []CurvePoint
}

// NewRecorder returns an empty Recorder. With keep false it still
// enforces the protocol and counts events but retains no per-event
// output, so long-lived sessions run in constant memory.
func NewRecorder(keep bool) *Recorder { return &Recorder{keep: keep} }

// Observe checks the event's time against the previous one, feeds it
// through the Leaser, and records the outcome. On error the Leaser is
// presumed corrupted and the Recorder must not be fed further events.
func (r *Recorder) Observe(l Leaser, ev Event) (Decision, error) {
	if r.n > 0 && ev.Time < r.last {
		return Decision{}, fmt.Errorf("stream: event %d at time %d precedes %d", r.n, ev.Time, r.last)
	}
	r.last = ev.Time
	d, err := l.Observe(ev)
	if err != nil {
		return Decision{}, fmt.Errorf("stream: event %d (t=%d): %w", r.n, ev.Time, err)
	}
	r.n++
	if r.keep {
		r.decisions = append(r.decisions, d)
		r.curve = append(r.curve, CurvePoint{Time: ev.Time, Cost: l.Cost().Total()})
	}
	return d, nil
}

// Events returns the number of events observed so far.
func (r *Recorder) Events() int { return r.n }

// Recorded returns the accumulated decisions and curve. The returned
// slice headers are stable snapshots: later Observes append past their
// length without disturbing the prefix, so a snapshot taken between
// events stays valid while recording continues.
func (r *Recorder) Recorded() ([]Decision, []CurvePoint) {
	return r.decisions[:len(r.decisions):len(r.decisions)],
		r.curve[:len(r.curve):len(r.curve)]
}

// Run packages the recorded output with the Leaser's final cost.
func (r *Recorder) Run(l Leaser) *Run {
	ds, cv := r.Recorded()
	return &Run{Decisions: ds, Curve: cv, Final: l.Cost()}
}

// Replay feeds every event through the Leaser in order and records the
// decision and cost curve. It is the single generic code path every
// domain's online runs go through — the experiment harness, cmd/leasesim
// and the conformance suite all call it. Event times must be
// non-decreasing; the first violation is reported before the Leaser sees
// the event.
func Replay(l Leaser, events []Event) (*Run, error) {
	rec := NewRecorder(true)
	for _, ev := range events {
		if _, err := rec.Observe(l, ev); err != nil {
			return nil, err
		}
	}
	return rec.Run(l), nil
}

// Interleave merges several event streams (each sorted by time) into one
// deterministic stream: events are ordered by time, ties broken by stream
// index and then by within-stream order. It is how multiple demand sources
// are fed to a single Leaser reproducibly.
func Interleave(streams ...[]Event) []Event {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	out := make([]Event, 0, n)
	idx := make([]int, len(streams))
	for len(out) < n {
		best := -1
		for s := range streams {
			if idx[s] >= len(streams[s]) {
				continue
			}
			if best < 0 || streams[s][idx[s]].Time < streams[best][idx[best]].Time {
				best = s
			}
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
	return out
}

// Days converts a sorted demand-day stream into parking-permit events.
func Days(days []int64) []Event {
	out := make([]Event, len(days))
	for i, t := range days {
		out[i] = Event{Time: t, Payload: Day{}}
	}
	return out
}

// Elements converts element arrivals into set-multicover events.
func Elements(arrivals []workload.ElementArrival) []Event {
	out := make([]Event, len(arrivals))
	for i, a := range arrivals {
		out[i] = Event{Time: a.T, Payload: Element{Elem: a.Elem, P: a.P}}
	}
	return out
}

// Windows converts deadline clients into leasing-with-deadlines events.
func Windows(clients []workload.DeadlineClient) []Event {
	out := make([]Event, len(clients))
	for i, c := range clients {
		out[i] = Event{Time: c.T, Payload: Window{D: c.D}}
	}
	return out
}

// Batches converts a facility-leasing timeline (Batches[t] arrives at step
// t) into one Batch event per step, empty steps included so the cost curve
// has one point per step.
func Batches(batches [][]metric.Point) []Event {
	out := make([]Event, len(batches))
	for t, b := range batches {
		out[t] = Event{Time: int64(t), Payload: Batch{Clients: b}}
	}
	return out
}

// FromTrace converts a serialized workload trace into the matching event
// stream (days, deadline or elements).
func FromTrace(tr *workload.Trace) ([]Event, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	switch tr.Kind {
	case workload.KindDays:
		return Days(tr.Days), nil
	case workload.KindDeadline:
		return Windows(tr.Deadline), nil
	case workload.KindElements:
		return Elements(tr.Elements), nil
	default:
		return nil, fmt.Errorf("stream: trace kind %q has no event mapping", tr.Kind)
	}
}
