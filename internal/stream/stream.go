// Package stream defines the unified event-driven protocol every online
// leasing algorithm in this repository speaks. The thesis (Section 2.3)
// presents parking permits, set multicover leasing, facility leasing,
// leasing with deadlines and the network extensions as instantiations of
// one framework — demands arrive online and the algorithm buys item-lease
// triples (i, k, t) — and this package is that framework as an API:
//
//   - an Event is one demand (a timestamp plus a domain payload),
//   - a Decision is what the algorithm bought in response (new triples,
//     new assignments, and the incremental cost of the step),
//   - a Leaser is any online algorithm consuming Events and producing
//     Decisions, with cumulative cost accounting and a solution snapshot.
//
// Each domain package (internal/parking, internal/setcover,
// internal/facility, internal/deadline, internal/steiner) provides a thin
// adapter from its native algorithm to this protocol; the generic driver
// in this package (Replay, Interleave) then works over every domain
// uniformly, which is what the experiment harness, cmd/leasesim and the
// conformance suite build on.
package stream

import (
	"sort"

	"leasing/internal/core"
	"leasing/internal/metric"
)

// Event is one online demand: a timestamp plus a domain payload. Events
// must be fed to a Leaser in non-decreasing time order.
type Event struct {
	// Time is the arrival step of the demand.
	Time int64
	// Payload carries the domain-specific part of the demand. A nil
	// payload is equivalent to Day{} (a bare timestamped demand).
	Payload Payload
}

// Payload is the domain-specific part of an Event. Exactly the payload
// types below implement it; a Leaser rejects payload types it does not
// understand with ErrPayload-wrapped errors.
type Payload interface{ payload() }

// Day is the parking-permit payload: a demand needing a valid lease on the
// event's day. It carries no extra data.
type Day struct{}

// Element is the set-multicover payload: element Elem arrives and must be
// covered by P distinct leased sets.
type Element struct {
	Elem int
	P    int
}

// Window is the leasing-with-deadlines payload: the demand may be served
// on any day of [Time, Time+D].
type Window struct {
	D int64
}

// ElementWindow is the SCLD payload: element Elem must be covered by a set
// leased over some day of [Time, Time+D].
type ElementWindow struct {
	Elem int
	D    int64
}

// Batch is the facility-leasing payload: the clients arriving at this step,
// each of which must be connected to a leased facility.
type Batch struct {
	Clients []metric.Point
}

// Connect is the Steiner-tree-leasing payload: terminals S and T must be
// connected by leased edges at the event's step.
type Connect struct {
	S, T int
}

// Use is the reusable-resource payload: a request arriving at the event's
// step that, if accepted, occupies one capacity unit for Dur steps and
// then returns it to the pool. Dur values below 1 are treated as 1.
type Use struct {
	Dur int64
}

func (Day) payload()           {}
func (Element) payload()       {}
func (Window) payload()        {}
func (ElementWindow) payload() {}
func (Batch) payload()         {}
func (Connect) payload()       {}
func (Use) payload()           {}

// ItemLease is the triple (i, k, t) of the thesis' infrastructure leasing
// set: item Item leased with type K from Start. The item index is
// domain-specific — 0 for the single-resource problems (parking,
// deadlines), the set index for set cover, the site index for facility
// leasing, the edge index for Steiner tree leasing.
type ItemLease = core.ItemLease

// Assignment records one service decision next to the leases: the client
// (implicitly, in arrival order) was served by item Item under lease type
// K at service cost Cost (the connection distance in facility leasing).
type Assignment struct {
	Item int
	K    int
	Cost float64
}

// Decision is a Leaser's response to one Event: the triples newly bought,
// the assignments newly made, and the incremental total cost of the step.
// Leases and Assignments are in deterministic order (triples sorted by
// item, type, start; assignments in arrival order).
type Decision struct {
	Leases      []ItemLease
	Assignments []Assignment
	// Cost is the increase of Cost().Total() caused by this event.
	Cost float64
}

// CostBreakdown splits a Leaser's cumulative cost into leasing and service
// parts. Service is zero for the pure covering problems; facility leasing
// reports connection cost there.
type CostBreakdown struct {
	Lease   float64
	Service float64
}

// Total returns the combined cost.
func (c CostBreakdown) Total() float64 { return c.Lease + c.Service }

// Solution is a snapshot of everything a Leaser has bought and assigned so
// far, in deterministic order.
type Solution struct {
	Leases      []ItemLease
	Assignments []Assignment
}

// Leaser is the unified protocol: demands stream in as Events, purchases
// stream out as Decisions. Implementations are the thin per-domain
// adapters; they reject events whose payload type they do not understand
// and require non-decreasing event times.
type Leaser interface {
	// Observe processes one demand and returns what was bought for it.
	Observe(Event) (Decision, error)
	// Cost returns the cumulative cost of everything bought so far.
	Cost() CostBreakdown
	// Snapshot returns the current solution for verification.
	Snapshot() Solution
}

// SortItemLeases orders triples by (item, type, start), the canonical
// order of Decision and Solution lease lists.
func SortItemLeases(ls []ItemLease) {
	sort.Slice(ls, func(a, b int) bool {
		if ls[a].Item != ls[b].Item {
			return ls[a].Item < ls[b].Item
		}
		if ls[a].K != ls[b].K {
			return ls[a].K < ls[b].K
		}
		return ls[a].Start < ls[b].Start
	})
}
