// Package chaos is the fault-injection harness: an http.RoundTripper
// wrapper that deterministically injects the failure classes a cluster
// client must survive — refused connections, raw 5xx answers, responses
// lost after the server already applied the request, and responses cut
// off mid-body. The schedule is a pure function of the seed, so a test
// that fails replays exactly.
//
// Faults are injected on the client side of the exchange and never
// corrupt a request that was not sent: a Refuse drops the request
// before the wire, a DropResponse delivers the request and discards the
// answer (the ambiguous "did it land?" timeout), a Truncate closes the
// response body early (a mid-body reset). The server's state therefore
// always corresponds to some prefix of what a fault-free client would
// have produced — which is exactly the contract resume-after-accepted
// recovery is tested against.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
)

// Options sets per-request fault probabilities, each in [0,1]. The sum
// is the overall fault rate; at most one fault fires per request.
type Options struct {
	// Seed pins the fault schedule.
	Seed int64
	// Refuse is the probability the request never reaches the server
	// (returned as a transport error, like a refused connection).
	Refuse float64
	// Status503 is the probability the request is answered with a raw
	// 503 — an unstructured proxy-style error, not a wire.Error body —
	// without reaching the server.
	Status503 float64
	// DropResponse is the probability the request is delivered and
	// applied but its response is discarded as a transport error: the
	// ambiguous timeout case.
	DropResponse float64
	// Truncate is the probability the response body is cut off halfway:
	// a mid-body connection reset.
	Truncate float64
}

// Stats counts injected faults by class.
type Stats struct {
	Requests, Refused, Status503, Dropped, Truncated int64
}

// Transport injects faults in front of a base RoundTripper. Safe for
// concurrent use; concurrent requests draw from one seeded stream in
// arrival order, so single-producer tests are fully deterministic.
type Transport struct {
	base http.RoundTripper
	opts Options

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// New wraps base (nil means http.DefaultTransport).
func New(base http.RoundTripper, opts Options) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// errInjected marks every chaos-made transport error.
type errInjected struct{ class string }

func (e *errInjected) Error() string { return "chaos: injected " + e.class }

// IsInjected reports whether err came from a chaos Transport
// (url.Error wrapping included).
func IsInjected(err error) bool {
	var ie *errInjected
	return errors.As(err, &ie)
}

// draw picks this request's fault under the lock.
func (t *Transport) draw() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Requests++
	x := t.rng.Float64()
	for _, f := range []struct {
		p     float64
		class string
	}{
		{t.opts.Refuse, "refuse"},
		{t.opts.Status503, "status503"},
		{t.opts.DropResponse, "drop-response"},
		{t.opts.Truncate, "truncate"},
	} {
		if x < f.p {
			return f.class
		}
		x -= f.p
	}
	return ""
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.draw() {
	case "refuse":
		t.count(func(s *Stats) { s.Refused++ })
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &errInjected{class: "connection refused"}
	case "status503":
		t.count(func(s *Stats) { s.Status503++ })
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable",
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(strings.NewReader("injected outage\n")),
			Request: req,
		}, nil
	case "drop-response":
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.count(func(s *Stats) { s.Dropped++ })
		return nil, &errInjected{class: "response dropped after delivery"}
	case "truncate":
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		t.count(func(s *Stats) { s.Truncated++ })
		resp.Body = io.NopCloser(&resetReader{data: body[:len(body)/2]})
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

func (t *Transport) count(f func(*Stats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}

// Stats samples the fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// resetReader yields its data and then fails like a reset connection
// instead of reporting a clean EOF.
type resetReader struct {
	data []byte
	off  int
}

func (r *resetReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("chaos: %w", &errInjected{class: "mid-body reset"})
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
