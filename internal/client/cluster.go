package client

// Cluster is the cluster-aware face of the client: it builds the same
// consistent-hash ring the daemons build from the shared peer list,
// routes each tenant's requests to its owner, and rides out two kinds
// of disagreement:
//
//   - A stale member list on this client: the daemon answers 307 and
//     the underlying http.Client re-sends the request — method, body
//     and bearer token — to the owner.
//   - A dead owner: the operator (or the crash drill) calls MarkDown,
//     which removes the node from this client's live ring — tenant
//     traffic shifts exactly to each tenant's replica, where its
//     shipped WAL history lives — then Activate, which tells the
//     survivors to adopt their followed sessions.
//
// SubmitResume is the ingestion loop built on top: it submits through
// failures, re-synchronizing after each one by asking the (possibly
// new) owner how many events it has processed and resuming exactly
// there — never skipping and never double-submitting, so the final
// state is byte-identical to an uninterrupted run.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"leasing/internal/cluster"
	"leasing/internal/wire"
)

// Cluster routes tenant requests across a peer ring. Methods are safe
// for concurrent use under the same per-tenant submission discipline as
// Client.
type Cluster struct {
	opts  Options
	peers []string // the full list every node was started with

	mu      sync.RWMutex
	ring    *cluster.Ring // live ring: full peer list minus marked-down nodes
	clients map[string]*Client
}

// NewCluster builds a cluster client over the peer list every node was
// started with.
func NewCluster(peers []string, opts Options) (*Cluster, error) {
	ring, err := cluster.New(peers, 0)
	if err != nil {
		return nil, err
	}
	if opts.RetryWait <= 0 {
		opts.RetryWait = 2 * time.Millisecond
	}
	if opts.MaxRetries < 1 {
		opts.MaxRetries = 20
	}
	cl := &Cluster{opts: opts, peers: ring.Members(), ring: ring, clients: map[string]*Client{}}
	for _, p := range ring.Members() {
		cl.clients[p] = New(p, opts)
	}
	return cl, nil
}

// Nodes lists the live members.
func (cl *Cluster) Nodes() []string {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.ring.Members()
}

// Owner reports which live node the cluster places a tenant on.
func (cl *Cluster) Owner(tenant string) string {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.ring.Owner(tenant)
}

// MarkDown removes a node from the live ring: its tenants' traffic
// shifts to each tenant's replica. Erroring on the last node keeps a
// broken drill from looping on an empty ring.
func (cl *Cluster) MarkDown(node string) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	ring, err := cl.ring.Without(node)
	if err != nil {
		return err
	}
	cl.ring = ring
	return nil
}

// Activate asks every live node to adopt the follower sessions of the
// marked-down peers — the failover step after MarkDown. The down list
// scopes adoption: survivors never take over tenants a healthy primary
// still serves. Activation is idempotent on each node; the sum of
// adopted sessions is returned.
func (cl *Cluster) Activate(ctx context.Context) (int, error) {
	live := cl.Nodes()
	isLive := make(map[string]bool, len(live))
	for _, node := range live {
		isLive[node] = true
	}
	req := wire.ActivateRequest{}
	for _, node := range cl.peers {
		if !isLive[node] {
			req.Down = append(req.Down, node)
		}
	}
	total := 0
	for _, node := range live {
		var resp wire.ActivateResponse
		c := cl.clientFor(node)
		if err := c.doJSON(ctx, "POST", "/v1/replica/activate", req, &resp); err != nil {
			return total, fmt.Errorf("activate %s: %w", node, err)
		}
		total += resp.Activated
	}
	return total, nil
}

// clientFor returns the cached per-node client.
func (cl *Cluster) clientFor(node string) *Client {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	c, ok := cl.clients[node]
	if !ok {
		c = New(node, cl.opts)
		cl.clients[node] = c
	}
	return c
}

// route picks the client for a tenant's current owner.
func (cl *Cluster) route(tenant string) *Client {
	return cl.clientFor(cl.Owner(tenant))
}

// Open opens a tenant session on its owner.
func (cl *Cluster) Open(ctx context.Context, tenant string, req wire.OpenRequest) error {
	return cl.route(tenant).Open(ctx, tenant, req)
}

// Submit enqueues events on the tenant's owner, with the single-node
// client's chunking and backpressure-resume behavior.
func (cl *Cluster) Submit(ctx context.Context, tenant string, evs []wire.Event) (int, error) {
	return cl.route(tenant).Submit(ctx, tenant, evs)
}

// Flush blocks until the tenant's owner has processed and published
// everything submitted before the call.
func (cl *Cluster) Flush(ctx context.Context, tenant string) error {
	return cl.route(tenant).Flush(ctx, tenant)
}

// Close seals the tenant's session on its owner.
func (cl *Cluster) Close(ctx context.Context, tenant string) (wire.CloseResponse, error) {
	return cl.route(tenant).Close(ctx, tenant)
}

// Cost reads the tenant's cost breakdown from its owner.
func (cl *Cluster) Cost(ctx context.Context, tenant string) (wire.CostBreakdown, error) {
	return cl.route(tenant).Cost(ctx, tenant)
}

// Processed reads the tenant's processed-event count from its owner.
func (cl *Cluster) Processed(ctx context.Context, tenant string) (int64, error) {
	return cl.route(tenant).Processed(ctx, tenant)
}

// Snapshot reads the tenant's solution snapshot from its owner.
func (cl *Cluster) Snapshot(ctx context.Context, tenant string) (wire.Solution, error) {
	return cl.route(tenant).Snapshot(ctx, tenant)
}

// Result reads the tenant's recorded run from its owner.
func (cl *Cluster) Result(ctx context.Context, tenant string) (*wire.Run, error) {
	return cl.route(tenant).Result(ctx, tenant)
}

// retryable reports whether a SubmitResume failure is worth a resync:
// transport errors, unexpected statuses and a shutting-down daemon are;
// a structured rejection of the request itself is not.
func retryable(err error) bool {
	var apiErr *wire.Error
	if !errors.As(err, &apiErr) {
		return true // transport-level: connection refused/reset, raw 5xx, ...
	}
	switch apiErr.Code {
	case wire.CodeShuttingDown, wire.CodeBackpressure, wire.CodeStorageFailed:
		// storage_failed is terminal on the node that reported it, but a
		// failover can move the tenant to a healthy one mid-loop.
		return true
	}
	return false
}

// SubmitResume submits the tenant's full event history from offset
// `from`, resuming across failures and failovers. After any retryable
// error it re-synchronizes — Flush on the current owner, then read its
// processed count — and continues from exactly that offset; events the
// old owner accepted and shipped are never re-sent, events it lost are.
// The retry budget counts consecutive attempts without forward
// progress.
func (cl *Cluster) SubmitResume(ctx context.Context, tenant string, evs []wire.Event, from int) (int, error) {
	bo := newBackoff(cl.opts.RetryWait, tenantSeed(cl.opts.JitterSeed, tenant))
	retries := 0
	offset := from
	for offset < len(evs) {
		n, err := cl.route(tenant).Submit(ctx, tenant, evs[offset:])
		offset += n
		if err == nil {
			continue
		}
		if ctx.Err() != nil {
			return offset, ctx.Err()
		}
		if !retryable(err) {
			return offset, err
		}
		if n > 0 {
			retries = 0
			bo.reset()
		}
		// Resync before the next submit — and never submit on a stale
		// offset: a failed request may still have been applied (a dropped
		// response), so re-sending without a fresh processed count would
		// duplicate events. The sync itself retries on the same terms
		// (the owner may be mid-failover).
		for {
			if retries++; retries > cl.opts.MaxRetries {
				return offset, fmt.Errorf("client: submit %q: %w after %d resumes", tenant, err, retries-1)
			}
			select {
			case <-time.After(bo.wait()):
			case <-ctx.Done():
				return offset, ctx.Err()
			}
			synced, rerr := cl.resync(ctx, tenant)
			if rerr == nil {
				// Below the local offset: a failover lost the old owner's
				// unshipped suffix — re-send it. Above: a submit landed
				// whose response was lost — skip what the owner holds.
				offset = int(synced)
				break
			}
			if !retryable(rerr) {
				return offset, rerr
			}
			err = rerr
		}
	}
	return offset, nil
}

// resync flushes the tenant's owner and reads its processed count.
func (cl *Cluster) resync(ctx context.Context, tenant string) (int64, error) {
	c := cl.route(tenant)
	if err := c.Flush(ctx, tenant); err != nil {
		return 0, err
	}
	return c.Processed(ctx, tenant)
}
