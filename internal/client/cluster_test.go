package client_test

// Cluster client integration tests against real in-process nodes: each
// node is an engine + server with cluster mode on, wired with follower
// logs and a replicated WAL exactly as cmd/leased wires them. The tests
// prove the PR's two headline invariants:
//
//   - Failover: killing a node and activating its tenants' replicas
//     yields state byte-identical to an uninterrupted single-node run
//     of the same history.
//   - Fault tolerance: under injected connection failures, raw 5xx,
//     dropped responses and mid-body resets — and even with a stale
//     client routing everything through one node, so every request
//     rides a 307 — resumed ingestion converges to that same
//     byte-identical state.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"leasing/internal/chaos"
	"leasing/internal/client"
	"leasing/internal/cluster"
	"leasing/internal/engine"
	"leasing/internal/server"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

// node is one in-process cluster member.
type node struct {
	url     string
	ts      *httptest.Server
	eng     *engine.Engine
	sh      *cluster.Shipper
	own     *wal.Log
	follow  *wal.Log
	stopped bool
}

// kill simulates a crash: stop serving and drop the engine. The node's
// logs stay on disk, as they would after a SIGKILL.
func (n *node) kill() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.ts.CloseClientConnections()
	n.ts.Close()
	n.eng.Close()
}

// startNodes brings up an n-node cluster with log-shipping replication.
// Listeners are created first so every node (and its shipper) knows the
// full peer URL list before serving.
func startNodes(t *testing.T, n int) []*node {
	t.Helper()
	nodes := make([]*node, n)
	urls := make([]string, n)
	for i := range nodes {
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		nodes[i] = &node{ts: ts, url: "http://" + ts.Listener.Addr().String()}
		urls[i] = nodes[i].url
	}
	for i, nd := range nodes {
		var err error
		nd.follow, err = wal.Open(t.TempDir(), wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nd.own, err = wal.Open(t.TempDir(), wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nd.sh, err = cluster.NewShipper(nd.url, urls, cluster.ShipperOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rl := cluster.NewReplicatedLog(nd.own, nd.sh)
		nd.eng = engine.New(engine.Config{Shards: 2, RecordRuns: true, WAL: rl})
		srv := server.New(nd.eng, server.Config{Cluster: &server.ClusterConfig{
			Self: nd.url, Peers: urls, Follower: nd.follow, WAL: rl,
		}})
		nd.ts.Config.Handler = srv
		nd.ts.Start()
		i := i
		t.Cleanup(func() {
			nodes[i].kill()
			nd.sh.Close()
			nd.own.Close()
			nd.follow.Close()
		})
	}
	return nodes
}

// parkingSpec is the session spec every test tenant opens with.
func parkingSpec() wire.OpenRequest {
	return wire.OpenRequest{
		Domain: wire.DomainParking,
		Types:  []wire.LeaseType{{Length: 1, Cost: 1}, {Length: 4, Cost: 2.5}, {Length: 16, Cost: 6}},
	}
}

// history builds tenant i's deterministic event stream: day events at a
// per-tenant cadence, so tenants diverge without randomness.
func history(i, n int) []wire.Event {
	out := make([]wire.Event, n)
	day := int64(0)
	for j := range out {
		day += int64(1 + (i+j)%3)
		out[j] = wire.Event{Time: day, Kind: wire.KindDay}
	}
	return out
}

// referenceRun replays a tenant's full history on a fresh single-node
// service and returns the marshaled run — the byte-identity baseline.
func referenceRun(t *testing.T, tenant string, evs []wire.Event) []byte {
	t.Helper()
	eng := engine.New(engine.Config{Shards: 2, RecordRuns: true})
	defer eng.Close()
	ts := httptest.NewServer(server.New(eng, server.Config{}))
	defer ts.Close()
	c := client.New(ts.URL, client.Options{})
	ctx := context.Background()
	if err := c.Open(ctx, tenant, parkingSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, tenant, evs); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx, tenant); err != nil {
		t.Fatal(err)
	}
	run, err := c.Result(ctx, tenant)
	if err != nil {
		t.Fatal(err)
	}
	return mustMarshal(t, run)
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterFailoverByteIdentity is the in-process kill-one-node
// drill: load tenants across three nodes, flush replication, kill one
// node, fail its tenants over, resume the second half of every history,
// and require each tenant's final recorded run to be byte-identical to
// an uninterrupted single-node replay.
func TestClusterFailoverByteIdentity(t *testing.T) {
	nodes := startNodes(t, 3)
	peers := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	cl, err := client.NewCluster(peers, client.Options{RetryWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const tenants = 9
	const perTenant = 40
	names := make([]string, tenants)
	full := make([][]wire.Event, tenants)
	for i := range names {
		names[i] = "tenant-" + string(rune('a'+i))
		full[i] = history(i, perTenant)
		if err := cl.Open(ctx, names[i], parkingSpec()); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.SubmitResume(ctx, names[i], full[i][:perTenant/2], 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, tn := range names {
		if err := cl.Flush(ctx, tn); err != nil {
			t.Fatal(err)
		}
	}
	// Replication barrier, then the crash.
	for _, nd := range nodes {
		nd.sh.Flush()
	}
	victim := nodes[0]
	doomed := 0
	for _, tn := range names {
		if cl.Owner(tn) == victim.url {
			doomed++
		}
	}
	if doomed == 0 {
		t.Fatal("no tenant placed on the victim; widen the tenant set")
	}
	victim.kill()

	if err := cl.MarkDown(victim.url); err != nil {
		t.Fatal(err)
	}
	activated, err := cl.Activate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if activated != doomed {
		t.Fatalf("activated %d sessions, want the victim's %d", activated, doomed)
	}

	// Resume every tenant's second half and verify byte identity.
	for i, tn := range names {
		if _, err := cl.SubmitResume(ctx, tn, full[i], perTenant/2); err != nil {
			t.Fatalf("%s: resume after failover: %v", tn, err)
		}
		if err := cl.Flush(ctx, tn); err != nil {
			t.Fatal(err)
		}
		processed, err := cl.Processed(ctx, tn)
		if err != nil {
			t.Fatal(err)
		}
		if processed != perTenant {
			t.Fatalf("%s: processed %d, want %d", tn, processed, perTenant)
		}
		run, err := cl.Result(ctx, tn)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mustMarshal(t, run), referenceRun(t, tn, full[i]); string(got) != string(want) {
			t.Fatalf("%s: post-failover run diverged from reference\n got %s\nwant %s", tn, got, want)
		}
	}
}

// TestClusterChaosByteIdentity drives ingestion through a fault
// injector — refused connections, raw 503s, responses dropped after
// delivery, mid-body resets — with a deliberately stale client whose
// ring holds a single node, so nearly every request also crosses a 307
// redirect. The resumed histories must still land byte-identical to
// fault-free single-node replays.
func TestClusterChaosByteIdentity(t *testing.T) {
	nodes := startNodes(t, 2)
	peers := []string{nodes[0].url, nodes[1].url}
	ctx := context.Background()

	faults := chaos.New(nil, chaos.Options{
		Seed:         41,
		Refuse:       0.06,
		Status503:    0.06,
		DropResponse: 0.06,
		Truncate:     0.06,
	})
	// The stale client knows only node 0: every request for a tenant
	// owned by node 1 is answered 307 and re-sent by the http.Client.
	stale, err := client.NewCluster(peers[:1], client.Options{
		HTTPClient: &http.Client{Transport: faults},
		Chunk:      5,
		RetryWait:  time.Millisecond,
		MaxRetries: 200,
		JitterSeed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := client.NewCluster(peers, client.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const tenants = 6
	const perTenant = 60
	redirected := 0
	for i := 0; i < tenants; i++ {
		tn := "chaos-" + string(rune('a'+i))
		evs := history(i, perTenant)
		// Open cleanly: the drill under test is ingestion resume.
		if err := clean.Open(ctx, tn, parkingSpec()); err != nil {
			t.Fatal(err)
		}
		if clean.Owner(tn) == nodes[1].url {
			redirected++
		}
		if _, err := stale.SubmitResume(ctx, tn, evs, 0); err != nil {
			t.Fatalf("%s: submit under chaos: %v", tn, err)
		}
		if err := clean.Flush(ctx, tn); err != nil {
			t.Fatal(err)
		}
		processed, err := clean.Processed(ctx, tn)
		if err != nil {
			t.Fatal(err)
		}
		if processed != perTenant {
			t.Fatalf("%s: processed %d, want %d (lost or duplicated events)", tn, processed, perTenant)
		}
		run, err := clean.Result(ctx, tn)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mustMarshal(t, run), referenceRun(t, tn, evs); string(got) != string(want) {
			t.Fatalf("%s: chaotic run diverged from reference\n got %s\nwant %s", tn, got, want)
		}
	}
	if redirected == 0 {
		t.Fatal("every tenant landed on the stale client's one node; no redirect was exercised")
	}
	st := faults.Stats()
	if st.Refused == 0 || st.Status503 == 0 || st.Dropped == 0 || st.Truncated == 0 {
		t.Fatalf("fault injector idle: %+v (raise the event count)", st)
	}
}

// TestClusterMarkDownLastNode: the live ring refuses to go empty.
func TestClusterMarkDownLastNode(t *testing.T) {
	cl, err := client.NewCluster([]string{"http://solo.invalid"}, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.MarkDown("http://solo.invalid"); err == nil {
		t.Fatal("MarkDown removed the last node")
	}
}
