package client_test

// Cluster client integration tests against real in-process nodes: each
// node is an engine + server with cluster mode on, wired with follower
// logs and a replicated WAL exactly as cmd/leased wires them. The tests
// prove the PR's two headline invariants:
//
//   - Failover: killing a node and activating its tenants' replicas
//     yields state byte-identical to an uninterrupted single-node run
//     of the same history.
//   - Fault tolerance: under injected connection failures, raw 5xx,
//     dropped responses and mid-body resets — and even with a stale
//     client routing everything through one node, so every request
//     rides a 307 — resumed ingestion converges to that same
//     byte-identical state.

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"leasing"
	"leasing/internal/chaos"
	"leasing/internal/client"
	"leasing/internal/cluster"
	"leasing/internal/engine"
	"leasing/internal/server"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

// node is one in-process cluster member.
type node struct {
	url     string
	ts      *httptest.Server
	eng     *engine.Engine
	sh      *cluster.Shipper
	own     *wal.Log
	follow  *wal.Log
	stopped bool
}

// kill simulates a crash: stop serving and drop the engine. The node's
// logs stay on disk, as they would after a SIGKILL.
func (n *node) kill() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.ts.CloseClientConnections()
	n.ts.Close()
	n.eng.Close()
}

// startNodes brings up an n-node cluster with log-shipping replication.
// Listeners are created first so every node (and its shipper) knows the
// full peer URL list before serving.
func startNodes(t *testing.T, n int) []*node {
	t.Helper()
	nodes := make([]*node, n)
	urls := make([]string, n)
	for i := range nodes {
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		nodes[i] = &node{ts: ts, url: "http://" + ts.Listener.Addr().String()}
		urls[i] = nodes[i].url
	}
	for i, nd := range nodes {
		var err error
		nd.follow, err = wal.Open(t.TempDir(), wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nd.own, err = wal.Open(t.TempDir(), wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nd.sh, err = cluster.NewShipper(nd.url, urls, cluster.ShipperOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rl := cluster.NewReplicatedLog(nd.own, nd.sh)
		nd.eng = engine.New(engine.Config{Shards: 2, RecordRuns: true, WAL: rl})
		srv := server.New(nd.eng, server.Config{Cluster: &server.ClusterConfig{
			Self: nd.url, Peers: urls, Follower: nd.follow, WAL: rl,
		}})
		nd.ts.Config.Handler = srv
		nd.ts.Start()
		i := i
		t.Cleanup(func() {
			nodes[i].kill()
			nd.sh.Close()
			nd.own.Close()
			nd.follow.Close()
		})
	}
	return nodes
}

// clusterCase is one domain tenant template: the wire spec it opens
// with and the deterministic event history it replicates.
type clusterCase struct {
	domain string
	spec   wire.OpenRequest
	events []wire.Event
}

// clusterCases builds one template per registered wire domain, sized so
// half-histories still carry meaningful lease state across a failover.
// Randomized domains carry their seed in the spec, so a replica rebuilt
// from the replicated log replays the exact same coin flips.
func clusterCases(t *testing.T) []clusterCase {
	t.Helper()
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	types := wire.ConfigTypes(cfg)
	toWire := func(evs []leasing.Event) []wire.Event {
		w, err := wire.FromStreamEvents(evs)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	var cases []clusterCase

	var days []int64
	dayRng := rand.New(rand.NewSource(21))
	for tm := int64(0); tm < 90; tm++ {
		if dayRng.Float64() < 0.5 {
			days = append(days, tm)
		}
	}
	cases = append(cases, clusterCase{
		domain: wire.DomainParking,
		spec:   wire.OpenRequest{Domain: wire.DomainParking, Types: types},
		events: toWire(leasing.DayEvents(days)),
	})
	cases = append(cases, clusterCase{
		domain: wire.DomainParkingRand,
		spec:   wire.OpenRequest{Domain: wire.DomainParkingRand, Types: types, Seed: 11},
		events: toWire(leasing.DayEvents(days)),
	})

	wRng := rand.New(rand.NewSource(22))
	var windows []leasing.DeadlineClient
	for tm := int64(0); tm < 80; tm++ {
		if wRng.Float64() < 0.5 {
			windows = append(windows, leasing.DeadlineClient{T: tm, D: int64(wRng.Intn(6))})
		}
	}
	cases = append(cases, clusterCase{
		domain: wire.DomainDeadline,
		spec:   wire.OpenRequest{Domain: wire.DomainDeadline, Types: types},
		events: toWire(leasing.WindowEvents(windows)),
	})

	sets := [][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}, {1, 4}}
	scCosts := [][]float64{{1, 2, 5}, {1.5, 2.5, 4}, {1, 2, 5}, {2, 3, 6}, {1, 1.8, 4.4}}
	scRng := rand.New(rand.NewSource(23))
	var scArrivals []leasing.ElementArrival
	for tm := int64(0); tm < 70; tm++ {
		if scRng.Float64() < 0.5 {
			scArrivals = append(scArrivals, leasing.ElementArrival{
				T: tm, Elem: scRng.Intn(6), P: 1 + scRng.Intn(2)})
		}
	}
	warr := make([]wire.ElementArrival, len(scArrivals))
	for i, a := range scArrivals {
		warr[i] = wire.ElementArrival{T: a.T, Elem: a.Elem, P: a.P}
	}
	cases = append(cases, clusterCase{
		domain: wire.DomainSetCover,
		spec: wire.OpenRequest{
			Domain: wire.DomainSetCover, Types: types, Seed: 7,
			SetCover: &wire.SetCoverSpec{Elements: 6, Sets: sets, Costs: scCosts, Arrivals: warr},
		},
		events: toWire(leasing.ElementEvents(scArrivals)),
	})

	scldRng := rand.New(rand.NewSource(24))
	var scldArrivals []leasing.SCLDArrival
	for tm := int64(0); tm < 70; tm++ {
		if scldRng.Float64() < 0.5 {
			scldArrivals = append(scldArrivals, leasing.SCLDArrival{
				T: tm, Elem: scldRng.Intn(4), D: int64(scldRng.Intn(5))})
		}
	}
	scldSets := [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	scldCosts := [][]float64{{1, 2, 4}, {1, 2, 4}, {1, 2, 4}, {1, 2, 4}}
	scldWarr := make([]wire.SCLDArrival, len(scldArrivals))
	for i, a := range scldArrivals {
		scldWarr[i] = wire.SCLDArrival{T: a.T, Elem: a.Elem, D: a.D}
	}
	cases = append(cases, clusterCase{
		domain: wire.DomainSCLD,
		spec: wire.OpenRequest{
			Domain: wire.DomainSCLD, Types: types, Seed: 9,
			SCLD: &wire.SCLDSpec{Elements: 4, Sets: scldSets, Costs: scldCosts, Arrivals: scldWarr},
		},
		events: toWire(leasing.ElementWindowEvents(scldArrivals)),
	})

	facRng := rand.New(rand.NewSource(25))
	sites := []leasing.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 8}}
	facCosts := [][]float64{{1, 2, 5}, {1, 2, 5}, {1.5, 3, 6}}
	batches := make([][]leasing.Point, 36)
	for i := range batches {
		for c := facRng.Intn(3); c > 0; c-- {
			s := sites[facRng.Intn(len(sites))]
			batches[i] = append(batches[i], leasing.Point{
				X: s.X + facRng.Float64()*2, Y: s.Y + facRng.Float64()*2})
		}
	}
	wSites := make([]wire.Point, len(sites))
	for i, p := range sites {
		wSites[i] = wire.Point{X: p.X, Y: p.Y}
	}
	wBatches := make([][]wire.Point, len(batches))
	for i, b := range batches {
		if b == nil {
			continue
		}
		wBatches[i] = make([]wire.Point, len(b))
		for j, p := range b {
			wBatches[i][j] = wire.Point{X: p.X, Y: p.Y}
		}
	}
	cases = append(cases, clusterCase{
		domain: wire.DomainFacility,
		spec: wire.OpenRequest{
			Domain: wire.DomainFacility, Types: types,
			Facility: &wire.FacilitySpec{Sites: wSites, Costs: facCosts, Batches: wBatches},
		},
		events: toWire(leasing.BatchEvents(batches)),
	})

	g, err := leasing.RandomConnectedGraph(rand.New(rand.NewSource(26)), 10, 20, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	stRng := rand.New(rand.NewSource(27))
	var reqs []leasing.SteinerRequest
	for tm := int64(0); tm < 70; tm++ {
		if stRng.Float64() < 0.5 {
			s := stRng.Intn(10)
			u := stRng.Intn(9)
			if u >= s {
				u++
			}
			reqs = append(reqs, leasing.SteinerRequest{Time: tm, S: s, T: u})
		}
	}
	wEdges := make([]wire.Edge, g.M())
	for i, e := range g.Edges() {
		wEdges[i] = wire.Edge{U: e.U, V: e.V, W: e.Weight}
	}
	wReqs := make([]wire.ConnectRequest, len(reqs))
	for i, r := range reqs {
		wReqs[i] = wire.ConnectRequest{T: r.Time, S: r.S, U: r.T}
	}
	cases = append(cases, clusterCase{
		domain: wire.DomainSteiner,
		spec: wire.OpenRequest{
			Domain: wire.DomainSteiner, Types: types,
			Steiner: &wire.SteinerSpec{Vertices: 10, Edges: wEdges, Requests: wReqs},
		},
		events: toWire(leasing.ConnectEvents(reqs)),
	})

	ruRng := rand.New(rand.NewSource(28))
	var ruReqs []leasing.ReusableRequest
	for tm := int64(0); tm < 80; tm++ {
		if ruRng.Float64() < 0.5 {
			ruReqs = append(ruReqs, leasing.ReusableRequest{T: tm, Dur: int64(ruRng.Intn(8))})
		}
	}
	cases = append(cases, clusterCase{
		domain: wire.DomainReusable,
		spec: wire.OpenRequest{
			Domain: wire.DomainReusable, Types: types,
			Reusable: &wire.ReusableSpec{Capacity: 2},
		},
		events: toWire(leasing.UseEvents(ruReqs)),
	})

	return cases
}

// TestClusterCasesCoverAllWireDomains is the suite's completeness gate:
// every domain registered in wire.Domains must have a cluster tenant
// template, so the replica byte-identity drills exercise all of them.
func TestClusterCasesCoverAllWireDomains(t *testing.T) {
	covered := make(map[string]bool)
	for _, tc := range clusterCases(t) {
		if tc.domain != tc.spec.Domain {
			t.Errorf("cluster case %q opens with mismatched spec domain %q", tc.domain, tc.spec.Domain)
		}
		covered[tc.domain] = true
	}
	for _, d := range wire.Domains() {
		if !covered[d] {
			t.Errorf("wire domain %q has no cluster case; failover and chaos drills are not exercising it", d)
		}
		delete(covered, d)
	}
	for d := range covered {
		t.Errorf("cluster case domain %q is not registered in wire.Domains", d)
	}
}

// referenceRun replays a tenant's full history on a fresh single-node
// service and returns the marshaled run — the byte-identity baseline.
func referenceRun(t *testing.T, tenant string, spec wire.OpenRequest, evs []wire.Event) []byte {
	t.Helper()
	eng := engine.New(engine.Config{Shards: 2, RecordRuns: true})
	defer eng.Close()
	ts := httptest.NewServer(server.New(eng, server.Config{}))
	defer ts.Close()
	c := client.New(ts.URL, client.Options{})
	ctx := context.Background()
	if err := c.Open(ctx, tenant, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, tenant, evs); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx, tenant); err != nil {
		t.Fatal(err)
	}
	run, err := c.Result(ctx, tenant)
	if err != nil {
		t.Fatal(err)
	}
	return mustMarshal(t, run)
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterFailoverByteIdentity is the in-process kill-one-node
// drill: load one tenant per domain (plus a spare, so nine tenants
// spread over all eight domains) across three nodes, flush replication,
// kill one node, fail its tenants over, resume the second half of every
// history, and require each tenant's final recorded run to be
// byte-identical to an uninterrupted single-node replay.
func TestClusterFailoverByteIdentity(t *testing.T) {
	nodes := startNodes(t, 3)
	peers := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	cl, err := client.NewCluster(peers, client.Options{RetryWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cases := clusterCases(t)
	tenants := len(cases) + 1
	names := make([]string, tenants)
	specs := make([]wire.OpenRequest, tenants)
	full := make([][]wire.Event, tenants)
	for i := range names {
		tc := cases[i%len(cases)]
		names[i] = "tenant-" + string(rune('a'+i)) + "-" + tc.domain
		specs[i] = tc.spec
		full[i] = tc.events
		if err := cl.Open(ctx, names[i], tc.spec); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.SubmitResume(ctx, names[i], full[i][:len(full[i])/2], 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, tn := range names {
		if err := cl.Flush(ctx, tn); err != nil {
			t.Fatal(err)
		}
	}
	// Replication barrier, then the crash.
	for _, nd := range nodes {
		nd.sh.Flush()
	}
	victim := nodes[0]
	doomed := 0
	for _, tn := range names {
		if cl.Owner(tn) == victim.url {
			doomed++
		}
	}
	if doomed == 0 {
		t.Fatal("no tenant placed on the victim; widen the tenant set")
	}
	victim.kill()

	if err := cl.MarkDown(victim.url); err != nil {
		t.Fatal(err)
	}
	activated, err := cl.Activate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if activated != doomed {
		t.Fatalf("activated %d sessions, want the victim's %d", activated, doomed)
	}

	// Resume every tenant's second half and verify byte identity.
	for i, tn := range names {
		if _, err := cl.SubmitResume(ctx, tn, full[i], len(full[i])/2); err != nil {
			t.Fatalf("%s: resume after failover: %v", tn, err)
		}
		if err := cl.Flush(ctx, tn); err != nil {
			t.Fatal(err)
		}
		processed, err := cl.Processed(ctx, tn)
		if err != nil {
			t.Fatal(err)
		}
		if processed != int64(len(full[i])) {
			t.Fatalf("%s: processed %d, want %d", tn, processed, len(full[i]))
		}
		run, err := cl.Result(ctx, tn)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mustMarshal(t, run), referenceRun(t, tn, specs[i], full[i]); string(got) != string(want) {
			t.Fatalf("%s: post-failover run diverged from reference\n got %s\nwant %s", tn, got, want)
		}
	}
}

// TestClusterChaosByteIdentity drives one tenant per domain through a
// fault injector — refused connections, raw 503s, responses dropped
// after delivery, mid-body resets — with a deliberately stale client
// whose ring holds a single node, so nearly every request also crosses
// a 307 redirect. The resumed histories must still land byte-identical
// to fault-free single-node replays.
func TestClusterChaosByteIdentity(t *testing.T) {
	nodes := startNodes(t, 2)
	peers := []string{nodes[0].url, nodes[1].url}
	ctx := context.Background()

	faults := chaos.New(nil, chaos.Options{
		Seed:         41,
		Refuse:       0.06,
		Status503:    0.06,
		DropResponse: 0.06,
		Truncate:     0.06,
	})
	// The stale client knows only node 0: every request for a tenant
	// owned by node 1 is answered 307 and re-sent by the http.Client.
	stale, err := client.NewCluster(peers[:1], client.Options{
		HTTPClient: &http.Client{Transport: faults},
		Chunk:      5,
		RetryWait:  time.Millisecond,
		MaxRetries: 200,
		JitterSeed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := client.NewCluster(peers, client.Options{})
	if err != nil {
		t.Fatal(err)
	}

	redirected := 0
	for i, tc := range clusterCases(t) {
		tn := "chaos-" + string(rune('a'+i)) + "-" + tc.domain
		evs := tc.events
		// Open cleanly: the drill under test is ingestion resume.
		if err := clean.Open(ctx, tn, tc.spec); err != nil {
			t.Fatal(err)
		}
		if clean.Owner(tn) == nodes[1].url {
			redirected++
		}
		if _, err := stale.SubmitResume(ctx, tn, evs, 0); err != nil {
			t.Fatalf("%s: submit under chaos: %v", tn, err)
		}
		if err := clean.Flush(ctx, tn); err != nil {
			t.Fatal(err)
		}
		processed, err := clean.Processed(ctx, tn)
		if err != nil {
			t.Fatal(err)
		}
		if processed != int64(len(evs)) {
			t.Fatalf("%s: processed %d, want %d (lost or duplicated events)", tn, processed, len(evs))
		}
		run, err := clean.Result(ctx, tn)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mustMarshal(t, run), referenceRun(t, tn, tc.spec, evs); string(got) != string(want) {
			t.Fatalf("%s: chaotic run diverged from reference\n got %s\nwant %s", tn, got, want)
		}
	}
	if redirected == 0 {
		t.Fatal("every tenant landed on the stale client's one node; no redirect was exercised")
	}
	st := faults.Stats()
	if st.Refused == 0 || st.Status503 == 0 || st.Dropped == 0 || st.Truncated == 0 {
		t.Fatalf("fault injector idle: %+v (raise the event count)", st)
	}
}

// TestClusterMarkDownLastNode: the live ring refuses to go empty.
func TestClusterMarkDownLastNode(t *testing.T) {
	cl, err := client.NewCluster([]string{"http://solo.invalid"}, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.MarkDown("http://solo.invalid"); err == nil {
		t.Fatal("MarkDown removed the last node")
	}
}
