package client

// Retry backoff. The schedule is exponential doubling capped at 64x the
// base — as before — but each delay is jittered: concurrent producers
// that hit the same backpressure event would otherwise back off in
// lockstep and re-arrive as the same thundering herd they just formed.
// The jitter is deterministic: a seed fully pins the schedule, so tests
// assert exact delays and two runs of the same workload behave
// identically.

import (
	"math/rand"
	"time"
)

// backoffCap bounds the exponential step at this multiple of the base.
const backoffCap = 64

// backoff produces one retry schedule. Not safe for concurrent use;
// make one per retry loop.
type backoff struct {
	base time.Duration
	step time.Duration
	rng  *rand.Rand
}

// newBackoff starts a schedule at base. The seed fully determines every
// delay the schedule will produce.
func newBackoff(base time.Duration, seed int64) *backoff {
	return &backoff{base: base, step: base, rng: rand.New(rand.NewSource(seed))}
}

// wait returns the next delay — half the current exponential step plus
// a seeded-uniform half ("equal jitter"), which keeps the expected wait
// of the unjittered schedule while decorrelating producers — and then
// advances the step.
func (b *backoff) wait() time.Duration {
	half := b.step / 2
	d := half + time.Duration(b.rng.Int63n(int64(half)+1))
	if b.step < backoffCap*b.base {
		b.step *= 2
	}
	return d
}

// reset rewinds the schedule to its first step after forward progress.
// The jitter stream deliberately keeps advancing: the schedule stays a
// pure function of the seed and the call sequence.
func (b *backoff) reset() { b.step = b.base }

// tenantSeed mixes a client-level seed with the tenant name (FNV-1a),
// so producers for different tenants jitter independently while any
// given (seed, tenant) pair replays the same schedule.
func tenantSeed(seed int64, tenant string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= 1099511628211
	}
	return seed ^ int64(h)
}
