package client

// Schedule-pinning tests for the jittered retry backoff: the whole
// point of seeding the jitter is that a schedule is reproducible, so
// these tests assert the exact delays a known seed produces and the
// structural invariants every seed must keep.

import (
	"testing"
	"time"
)

// TestBackoffSchedulePinned: seed 7 over a 2ms base produces exactly
// this delay sequence — any change to the jitter algorithm, the cap or
// the doubling shows up here.
func TestBackoffSchedulePinned(t *testing.T) {
	want := []time.Duration{
		1272694 * time.Nanosecond,
		2667317 * time.Nanosecond,
		4779064 * time.Nanosecond,
		12055130 * time.Nanosecond,
		18424806 * time.Nanosecond,
		53535106 * time.Nanosecond,
		69167434 * time.Nanosecond,
		107736932 * time.Nanosecond,
		97607390 * time.Nanosecond,
		103559846 * time.Nanosecond,
	}
	bo := newBackoff(2*time.Millisecond, 7)
	for i, w := range want {
		if got := bo.wait(); got != w {
			t.Fatalf("wait %d = %v, want %v", i, got, w)
		}
	}
}

// TestBackoffInvariants: every delay lies in [step/2, step], the step
// doubles up to 64x the base and no further, and the same seed replays
// the same schedule while different seeds diverge.
func TestBackoffInvariants(t *testing.T) {
	const base = 2 * time.Millisecond
	a, b := newBackoff(base, 41), newBackoff(base, 41)
	other := newBackoff(base, 42)
	step, diverged := base, false
	for i := 0; i < 20; i++ {
		wa, wb, wo := a.wait(), b.wait(), other.wait()
		if wa != wb {
			t.Fatalf("wait %d: same seed diverged (%v vs %v)", i, wa, wb)
		}
		if wa != wo {
			diverged = true
		}
		if wa < step/2 || wa > step {
			t.Fatalf("wait %d = %v outside [%v, %v]", i, wa, step/2, step)
		}
		if step < backoffCap*base {
			step *= 2
		}
	}
	if step != backoffCap*base {
		t.Fatalf("final step %v, want capped at %v", step, backoffCap*base)
	}
	if !diverged {
		t.Fatal("seeds 41 and 42 produced identical schedules")
	}
}

// TestBackoffReset: reset rewinds the exponential step to the base but
// keeps consuming the same seeded stream, so a schedule stays a pure
// function of the seed and the call sequence.
func TestBackoffReset(t *testing.T) {
	const base = 2 * time.Millisecond
	bo := newBackoff(base, 9)
	for i := 0; i < 5; i++ {
		bo.wait()
	}
	bo.reset()
	if w := bo.wait(); w < base/2 || w > base {
		t.Fatalf("post-reset wait %v outside [%v, %v]", w, base/2, base)
	}
}

// TestTenantSeedSpreads: different tenants under one client seed get
// different effective seeds, and the mix is stable.
func TestTenantSeedSpreads(t *testing.T) {
	if tenantSeed(1, "tenant-a") == tenantSeed(1, "tenant-b") {
		t.Fatal("distinct tenants share a seed")
	}
	if tenantSeed(1, "tenant-a") != tenantSeed(1, "tenant-a") {
		t.Fatal("tenantSeed is not stable")
	}
	if tenantSeed(1, "tenant-a") == tenantSeed(2, "tenant-a") {
		t.Fatal("client seed does not mix in")
	}
}
