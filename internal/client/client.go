// Package client is the Go client of the lease service: it speaks the
// HTTP/JSON protocol declared in internal/wire against a cmd/leased
// daemon (or any handler built by internal/server), decodes wire errors
// into typed values, and turns the service's fail-fast 429 backpressure
// into transparent resume-after-accepted retries with exponential
// backoff — so callers see the same blocking-ingestion semantics the
// in-process engine gives, over the network.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"leasing/internal/stream"
	"leasing/internal/wire"
)

// Options shapes a Client. The zero value is usable.
type Options struct {
	// Token is sent as the bearer token when non-empty.
	Token string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Chunk caps events per submit request. Default 512.
	Chunk int
	// RetryWait is the initial backpressure backoff, doubled per
	// consecutive 429 up to 64x, with seeded jitter (see JitterSeed).
	// Default 2ms.
	RetryWait time.Duration
	// JitterSeed seeds the deterministic backoff jitter. The effective
	// seed mixes in the tenant name, so concurrent producers spread out
	// while any given (seed, tenant) pair replays the exact same retry
	// schedule. Zero is a valid seed.
	JitterSeed int64
	// MaxRetries caps consecutive no-progress 429 retries before Submit
	// gives up. Default 20.
	MaxRetries int
	// Binary switches the submit and result paths to the binary framing
	// (wire.ContentTypeBinary): Submit and SubmitNDJSON encode events as
	// length-prefixed binary frames into pooled buffers, and Result asks
	// for (and decodes) the binary run encoding. Every other endpoint
	// stays JSON. The decoded values are identical either way — the
	// binary encoding is exact — so Binary is purely a throughput knob.
	Binary bool
}

// Client talks to one lease service. Create it with New; methods are
// safe for concurrent use (one tenant's events must still be submitted
// from one goroutine, as with the in-process engine).
type Client struct {
	base string
	opts Options
	bufs sync.Pool // *[]byte, binary encode scratch
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts Options) *Client {
	if opts.HTTPClient == nil {
		// The default transport keeps only two idle connections per
		// host, which makes concurrent producers churn through TCP
		// handshakes; a per-client transport sized for fan-in keeps the
		// submit path on warm connections.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 256
		tr.MaxIdleConnsPerHost = 256
		opts.HTTPClient = &http.Client{Transport: tr}
	}
	if opts.Chunk < 1 {
		opts.Chunk = 512
	}
	if opts.RetryWait <= 0 {
		opts.RetryWait = 2 * time.Millisecond
	}
	if opts.MaxRetries < 1 {
		opts.MaxRetries = 20
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), opts: opts}
}

// do performs one request and decodes the response into out. Non-2xx
// responses decode into *wire.Error, which is returned as the error.
func (c *Client) do(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.Token)
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &wire.Error{}
		if err := json.NewDecoder(resp.Body).Decode(apiErr); err != nil || apiErr.Code == "" {
			return fmt.Errorf("client: %s %s: unexpected status %d", method, path, resp.StatusCode)
		}
		return apiErr
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	contentType := ""
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
		contentType = "application/json"
	}
	return c.do(ctx, method, path, contentType, body, out)
}

func tenantPath(tenant, suffix string) string {
	return "/v1/tenants/" + url.PathEscape(tenant) + suffix
}

// Open opens a tenant session from its spec.
func (c *Client) Open(ctx context.Context, tenant string, req wire.OpenRequest) error {
	var resp wire.OpenResponse
	return c.doJSON(ctx, http.MethodPost, tenantPath(tenant, ""), req, &resp)
}

// IsCode reports whether err is (or wraps) a wire error with the given
// code.
func IsCode(err error, code string) bool {
	var apiErr *wire.Error
	return errors.As(err, &apiErr) && apiErr.Code == code
}

// Submit enqueues events for the tenant, chunking at Options.Chunk and
// transparently retrying 429 backpressure: each retry resumes after the
// server's reported accepted count with exponentially growing backoff.
// It returns how many events the service accepted (all of them, unless
// the returned error is non-nil).
func (c *Client) Submit(ctx context.Context, tenant string, evs []wire.Event) (int, error) {
	total := 0
	for len(evs) > 0 {
		n := min(c.opts.Chunk, len(evs))
		accepted, err := c.submitChunk(ctx, tenant, evs[:n])
		total += accepted
		if err != nil {
			return total, err
		}
		evs = evs[n:]
	}
	return total, nil
}

// submitEvents posts one chunk: a JSON array by default, a binary
// frame body (magic + one frame) from a pooled buffer under
// Options.Binary.
func (c *Client) submitEvents(ctx context.Context, tenant string, evs []wire.Event, resp *wire.SubmitResponse) error {
	if !c.opts.Binary {
		return c.doJSON(ctx, http.MethodPost, tenantPath(tenant, "/events"), evs, resp)
	}
	payloadp := c.buf()
	defer c.bufs.Put(payloadp)
	payload, err := wire.AppendEventsBinaryWire((*payloadp)[:0], evs)
	if err != nil {
		return err
	}
	*payloadp = payload
	bodyp := c.buf()
	defer c.bufs.Put(bodyp)
	body := append((*bodyp)[:0], wire.BinaryMagic...)
	body = wire.AppendFrame(body, payload)
	*bodyp = body
	return c.do(ctx, http.MethodPost, tenantPath(tenant, "/events"),
		wire.ContentTypeBinary, bytes.NewReader(body), resp)
}

// buf takes a pooled encode buffer.
func (c *Client) buf() *[]byte {
	bufp, _ := c.bufs.Get().(*[]byte)
	if bufp == nil {
		bufp = new([]byte)
	}
	return bufp
}

func (c *Client) submitChunk(ctx context.Context, tenant string, chunk []wire.Event) (int, error) {
	done := 0
	bo := newBackoff(c.opts.RetryWait, tenantSeed(c.opts.JitterSeed, tenant))
	retries := 0
	for done < len(chunk) {
		remaining := chunk[done:]
		var resp wire.SubmitResponse
		err := c.submitEvents(ctx, tenant, remaining, &resp)
		if err == nil {
			done += resp.Accepted
			if resp.Accepted < len(remaining) {
				// Defensive: a 2xx must accept the whole remainder.
				return done, fmt.Errorf("client: submit accepted %d of %d without error", resp.Accepted, len(remaining))
			}
			continue
		}
		apiErr, ok := err.(*wire.Error)
		if !ok || apiErr.Code != wire.CodeBackpressure {
			return done + acceptedOf(err), err
		}
		done += apiErr.Accepted
		if apiErr.Accepted > 0 {
			retries = 0 // progress resets the budget and the backoff
			bo.reset()
		} else if retries++; retries > c.opts.MaxRetries {
			return done, fmt.Errorf("client: submit: %w after %d retries", apiErr, retries-1)
		}
		select {
		case <-time.After(bo.wait()):
		case <-ctx.Done():
			return done, ctx.Err()
		}
	}
	return done, nil
}

func acceptedOf(err error) int {
	var apiErr *wire.Error
	if errors.As(err, &apiErr) {
		return apiErr.Accepted
	}
	return 0
}

// SubmitNDJSON streams the events as one chunked request — one
// application/x-ndjson line per event, or under Options.Binary one
// binary frame per Options.Chunk events (the framed equivalent of the
// line-per-event stream). Unlike Submit it does not retry: on
// backpressure the wire error's Accepted count says where to resume.
func (c *Client) SubmitNDJSON(ctx context.Context, tenant string, evs []wire.Event) (int, error) {
	var resp wire.SubmitResponse
	if c.opts.Binary {
		bodyp := c.buf()
		defer c.bufs.Put(bodyp)
		framep := c.buf()
		defer c.bufs.Put(framep)
		body := append((*bodyp)[:0], wire.BinaryMagic...)
		for lo := 0; lo < len(evs); lo += c.opts.Chunk {
			payload, err := wire.AppendEventsBinaryWire((*framep)[:0], evs[lo:min(lo+c.opts.Chunk, len(evs))])
			*framep = payload
			if err != nil {
				return 0, err
			}
			body = wire.AppendFrame(body, payload)
		}
		*bodyp = body
		err := c.do(ctx, http.MethodPost, tenantPath(tenant, "/events"),
			wire.ContentTypeBinary, bytes.NewReader(body), &resp)
		if err != nil {
			return acceptedOf(err), err
		}
		return resp.Accepted, nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return 0, err
		}
	}
	err := c.do(ctx, http.MethodPost, tenantPath(tenant, "/events"), "application/x-ndjson", &buf, &resp)
	if err != nil {
		return acceptedOf(err), err
	}
	return resp.Accepted, nil
}

// Flush blocks until every event submitted before the call (any tenant)
// is processed and published — the read barrier.
func (c *Client) Flush(ctx context.Context, tenant string) error {
	var resp wire.FlushResponse
	return c.doJSON(ctx, http.MethodPost, tenantPath(tenant, "/flush"), nil, &resp)
}

// Close seals the tenant's session and returns its final totals.
func (c *Client) Close(ctx context.Context, tenant string) (wire.CloseResponse, error) {
	var resp wire.CloseResponse
	err := c.doJSON(ctx, http.MethodDelete, tenantPath(tenant, ""), nil, &resp)
	return resp, err
}

// Cost reads the tenant's cumulative cost breakdown.
func (c *Client) Cost(ctx context.Context, tenant string) (wire.CostBreakdown, error) {
	var resp wire.CostBreakdown
	err := c.doJSON(ctx, http.MethodGet, tenantPath(tenant, "/cost"), nil, &resp)
	return resp, err
}

// Processed reads how many of the tenant's events have been processed.
func (c *Client) Processed(ctx context.Context, tenant string) (int64, error) {
	var resp wire.EventsResponse
	err := c.doJSON(ctx, http.MethodGet, tenantPath(tenant, "/events"), nil, &resp)
	return resp.Processed, err
}

// Snapshot reads the tenant's current solution snapshot.
func (c *Client) Snapshot(ctx context.Context, tenant string) (wire.Solution, error) {
	var resp wire.Solution
	err := c.doJSON(ctx, http.MethodGet, tenantPath(tenant, "/snapshot"), nil, &resp)
	return resp, err
}

// Result reads the tenant's full recorded run (daemon must run with
// -record). Under Options.Binary it negotiates the binary run encoding
// via Accept and decodes it; the returned value is identical to the
// JSON path's — both encodings are exact.
func (c *Client) Result(ctx context.Context, tenant string) (*wire.Run, error) {
	if c.opts.Binary {
		run, err := c.resultBinary(ctx, tenant)
		if err != nil {
			return nil, err
		}
		return wire.FromStreamRun(run), nil
	}
	var resp wire.Run
	if err := c.doJSON(ctx, http.MethodGet, tenantPath(tenant, "/result"), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// resultBinary fetches and decodes the binary run encoding.
func (c *Client) resultBinary(ctx context.Context, tenant string) (*stream.Run, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+tenantPath(tenant, "/result"), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", wire.ContentTypeBinary)
	if c.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.Token)
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &wire.Error{}
		if err := json.NewDecoder(resp.Body).Decode(apiErr); err != nil || apiErr.Code == "" {
			return nil, fmt.Errorf("client: GET result: unexpected status %d", resp.StatusCode)
		}
		return nil, apiErr
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeBinary {
		return nil, fmt.Errorf("client: result: server answered %q to a binary Accept", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return wire.DecodeRunBinary(body)
}

// Metrics samples the engine's counters (admin scope under auth).
func (c *Client) Metrics(ctx context.Context) (wire.Metrics, error) {
	var resp wire.Metrics
	err := c.doJSON(ctx, http.MethodGet, "/v1/metrics", nil, &resp)
	return resp, err
}

// Health probes liveness.
func (c *Client) Health(ctx context.Context) error {
	var resp wire.HealthResponse
	return c.doJSON(ctx, http.MethodGet, "/v1/healthz", nil, &resp)
}
