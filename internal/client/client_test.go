package client_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"leasing/internal/client"
	"leasing/internal/wire"
)

// fakeService is a scripted submit endpoint: each call pops the next
// behavior (accept all, or 429 after accepting k events).
type fakeService struct {
	mu       sync.Mutex
	script   []int // -1 = accept everything; k >= 0 = accept k then 429
	accepted []wire.Event
	tokens   []string
}

func (f *fakeService) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{tenant}/events", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.tokens = append(f.tokens, r.Header.Get("Authorization"))
		var evs []wire.Event
		if err := json.NewDecoder(r.Body).Decode(&evs); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(&wire.Error{Code: wire.CodeBadRequest, Message: err.Error()})
			return
		}
		step := -1
		if len(f.script) > 0 {
			step, f.script = f.script[0], f.script[1:]
		}
		if step < 0 || step >= len(evs) {
			f.accepted = append(f.accepted, evs...)
			json.NewEncoder(w).Encode(wire.SubmitResponse{Accepted: len(evs)})
			return
		}
		f.accepted = append(f.accepted, evs[:step]...)
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(&wire.Error{
			Code: wire.CodeBackpressure, Message: "queue full", Accepted: step,
		})
	})
	return mux
}

func events(n int) []wire.Event {
	out := make([]wire.Event, n)
	for i := range out {
		out[i] = wire.Event{Time: int64(i), Kind: wire.KindDay}
	}
	return out
}

// TestSubmitResumesAfterBackpressure: partial 429s are retried from the
// reported offset, so every event arrives exactly once and in order.
func TestSubmitResumesAfterBackpressure(t *testing.T) {
	f := &fakeService{script: []int{3, 0, 2, -1, 1, -1}}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()
	cli := client.New(ts.URL, client.Options{Chunk: 10, RetryWait: time.Microsecond})

	evs := events(25)
	n, err := cli.Submit(context.Background(), "acme", evs)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(evs) {
		t.Fatalf("submitted %d of %d", n, len(evs))
	}
	if len(f.accepted) != len(evs) {
		t.Fatalf("service saw %d events, want %d", len(f.accepted), len(evs))
	}
	for i, ev := range f.accepted {
		if ev.Time != int64(i) {
			t.Fatalf("event %d has time %d: stream reordered or duplicated", i, ev.Time)
		}
	}
}

// TestSubmitGivesUpWithoutProgress: endless zero-progress 429s exhaust
// the retry budget instead of spinning forever.
func TestSubmitGivesUpWithoutProgress(t *testing.T) {
	script := make([]int, 100)
	f := &fakeService{script: script} // every call: accept 0, then 429
	ts := httptest.NewServer(f.handler())
	defer ts.Close()
	cli := client.New(ts.URL, client.Options{Chunk: 10, RetryWait: time.Microsecond, MaxRetries: 3})

	n, err := cli.Submit(context.Background(), "acme", events(5))
	if err == nil {
		t.Fatal("no error after exhausted retries")
	}
	if !client.IsCode(err, wire.CodeBackpressure) {
		t.Fatalf("error %v does not carry backpressure code", err)
	}
	if n != 0 {
		t.Fatalf("reported %d accepted, want 0", n)
	}
}

// TestTokenHeader: the configured token rides every request.
func TestTokenHeader(t *testing.T) {
	f := &fakeService{}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()
	cli := client.New(ts.URL, client.Options{Token: "secret"})
	if _, err := cli.Submit(context.Background(), "acme", events(1)); err != nil {
		t.Fatal(err)
	}
	if len(f.tokens) != 1 || f.tokens[0] != "Bearer secret" {
		t.Fatalf("authorization headers %q, want one Bearer secret", f.tokens)
	}
}

// TestErrorDecoding: non-2xx responses surface as typed wire errors.
func TestErrorDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(&wire.Error{Code: wire.CodeUnknownTenant, Message: "nope"})
	}))
	defer ts.Close()
	cli := client.New(ts.URL, client.Options{})
	_, err := cli.Cost(context.Background(), "ghost")
	if !client.IsCode(err, wire.CodeUnknownTenant) {
		t.Fatalf("error %v, want unknown_tenant", err)
	}
}

// TestContextCancellation: a canceled context stops the backoff loop.
func TestContextCancellation(t *testing.T) {
	script := make([]int, 1000)
	f := &fakeService{script: script}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()
	cli := client.New(ts.URL, client.Options{RetryWait: 50 * time.Millisecond, MaxRetries: 1000})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := cli.Submit(ctx, "acme", events(3)); err == nil {
		t.Fatal("no error from canceled context")
	}
}
