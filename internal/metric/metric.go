// Package metric provides the metric-space substrate for facility leasing
// (Chapter 4): points in the Euclidean plane, distance helpers, and
// generators for facility sites and client populations. Euclidean distances
// satisfy the triangle inequality the dual-fitting analysis relies on.
package metric

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the plane.
type Point struct {
	X float64
	Y float64
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// RandomPoints draws n points uniformly from the square [0, size)^2.
func RandomPoints(rng *rand.Rand, n int, size float64) []Point {
	out := make([]Point, n)
	for i := range out {
		out[i] = Point{X: rng.Float64() * size, Y: rng.Float64() * size}
	}
	return out
}

// ClusteredPoints draws n points around the given centers: each point picks
// a uniform center and adds Gaussian noise with the given spread. Models
// client populations concentrated near candidate facility sites.
func ClusteredPoints(rng *rand.Rand, centers []Point, n int, spread float64) ([]Point, error) {
	if len(centers) == 0 {
		return nil, fmt.Errorf("metric: clustered points need at least one center")
	}
	out := make([]Point, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = Point{
			X: c.X + rng.NormFloat64()*spread,
			Y: c.Y + rng.NormFloat64()*spread,
		}
	}
	return out, nil
}

// GridPoints lays out n points on a near-square grid with the given cell
// size, a deterministic facility-site pattern.
func GridPoints(n int, cell float64) []Point {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	out := make([]Point, 0, n)
	for r := 0; r < side && len(out) < n; r++ {
		for c := 0; c < side && len(out) < n; c++ {
			out = append(out, Point{X: float64(c) * cell, Y: float64(r) * cell})
		}
	}
	return out
}

// CheckQuadrilateral verifies the inequality the facility-leasing analysis
// uses (Proposition 4.2): for all facilities i, i' and clients j, j',
// d(i',j) <= d(i,j) + d(i,j') + d(i',j'). It holds in any metric space; the
// test suite uses it as a sanity check on generators.
func CheckQuadrilateral(facilities, clients []Point) bool {
	for _, i := range facilities {
		for _, i2 := range facilities {
			for _, j := range clients {
				for _, j2 := range clients {
					if Dist(i2, j) > Dist(i, j)+Dist(i, j2)+Dist(i2, j2)+1e-9 {
						return false
					}
				}
			}
		}
	}
	return true
}
