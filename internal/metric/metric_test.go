package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1, 1}, Point{1, 9}, 8},
	}
	for _, tt := range tests {
		if got := Dist(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestDistProperties(t *testing.T) {
	symmetric := func(ax, ay, bx, by int16) bool {
		a := Point{X: float64(ax), Y: float64(ay)}
		b := Point{X: float64(bx), Y: float64(by)}
		return math.Abs(Dist(a, b)-Dist(b, a)) < 1e-12
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	triangle := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{X: float64(ax), Y: float64(ay)}
		b := Point{X: float64(bx), Y: float64(by)}
		c := Point{X: float64(cx), Y: float64(cy)}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomPointsInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := RandomPoints(rng, 200, 50)
	if len(pts) != 200 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X >= 50 || p.Y < 0 || p.Y >= 50 {
			t.Fatalf("point %v outside [0,50)^2", p)
		}
	}
}

func TestClusteredPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	centers := []Point{{X: 0, Y: 0}, {X: 100, Y: 100}}
	pts, err := ClusteredPoints(rng, centers, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Nearly every point should be within a few spreads of some center.
	far := 0
	for _, p := range pts {
		if Dist(p, centers[0]) > 10 && Dist(p, centers[1]) > 10 {
			far++
		}
	}
	if far > 4 {
		t.Errorf("%d of 400 clustered points far from all centers", far)
	}
	if _, err := ClusteredPoints(rng, nil, 5, 1); err == nil {
		t.Error("no centers accepted")
	}
}

func TestGridPoints(t *testing.T) {
	pts := GridPoints(9, 3)
	if len(pts) != 9 {
		t.Fatalf("got %d points, want 9", len(pts))
	}
	// A 3x3 grid with cell 3: corners at (0,0) and (6,6).
	if pts[0] != (Point{0, 0}) || pts[8] != (Point{X: 6, Y: 6}) {
		t.Errorf("grid corners wrong: %v ... %v", pts[0], pts[8])
	}
	if got := GridPoints(7, 1); len(got) != 7 {
		t.Errorf("GridPoints(7) returned %d", len(got))
	}
	if got := GridPoints(0, 1); len(got) != 0 {
		t.Errorf("GridPoints(0) returned %d", len(got))
	}
}

func TestCheckQuadrilateral(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fs := RandomPoints(rng, 6, 30)
	cs := RandomPoints(rng, 10, 30)
	if !CheckQuadrilateral(fs, cs) {
		t.Error("Euclidean points must satisfy the quadrilateral inequality")
	}
}
