package promtext

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleFamilies() []Family {
	return []Family{
		{
			Name: "leased_engine_events_total", Type: TypeCounter,
			Help:    "Events processed engine-wide.",
			Samples: []Sample{{Value: 14761}},
		},
		{
			Name: "leased_engine_queue_depth", Type: TypeGauge,
			Help: "Queued operations per shard at sample time.",
			Samples: []Sample{
				{Labels: []Label{{Name: "shard", Value: "0"}}, Value: 3},
				{Labels: []Label{{Name: "shard", Value: "1"}}, Value: 0},
			},
		},
		{
			Name: "leased_engine_cost_total", Type: TypeCounter,
			Help:    "Cumulative cost with a \\ and\na newline.",
			Samples: []Sample{{Value: 11958.953594820541}},
		},
	}
}

// TestEncodeParseRoundTrip: Parse(Encode(f)) == f, float bits and label
// order included — the half of the golden gate that catches a renamed
// metric or a broken encoder.
func TestEncodeParseRoundTrip(t *testing.T) {
	fams := sampleFamilies()
	text, err := Encode(fams)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("parse of own encoding failed: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(fams, back) {
		t.Fatalf("round trip diverged:\nin:  %#v\nout: %#v", fams, back)
	}
	// And a second encode is byte-identical (stability for golden files).
	text2, err := Encode(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text, text2) {
		t.Fatalf("re-encode not byte-identical:\n%s\nvs\n%s", text, text2)
	}
}

// TestEncodeRejectsMalformed: the validator fires on everything a stock
// promtool check metrics would flag.
func TestEncodeRejectsMalformed(t *testing.T) {
	cases := map[string][]Family{
		"bad name": {{Name: "1bad", Type: TypeGauge, Help: "h", Samples: []Sample{{Value: 1}}}},
		"bad type": {{Name: "ok_metric", Type: "histogram", Help: "h"}},
		"no help":  {{Name: "ok_metric", Type: TypeGauge, Help: "  "}},
		"counter without _total": {
			{Name: "leased_events", Type: TypeCounter, Help: "h"}},
		"duplicate family": {
			{Name: "ok_metric", Type: TypeGauge, Help: "h"},
			{Name: "ok_metric", Type: TypeGauge, Help: "h"}},
		"duplicate sample": {
			{Name: "ok_metric", Type: TypeGauge, Help: "h", Samples: []Sample{{Value: 1}, {Value: 2}}}},
		"bad label": {
			{Name: "ok_metric", Type: TypeGauge, Help: "h",
				Samples: []Sample{{Labels: []Label{{Name: "0bad", Value: "x"}}, Value: 1}}}},
	}
	for name, fams := range cases {
		if _, err := Encode(fams); err == nil {
			t.Errorf("%s: encoded without error", name)
		}
	}
}

// TestParseRejectsMangled: truncations and hand edits that silently
// change meaning must fail to parse.
func TestParseRejectsMangled(t *testing.T) {
	good, err := Encode(sampleFamilies())
	if err != nil {
		t.Fatal(err)
	}
	mangle := map[string]string{
		"sample before family":   "leased_x 1\n",
		"TYPE without HELP":      "# TYPE leased_x gauge\nleased_x 1\n",
		"non-numeric value":      strings.Replace(string(good), "14761", "fast", 1),
		"renamed sample line":    strings.Replace(string(good), "leased_engine_events_total 14761", "leased_engine_event_total 14761", 1),
		"unterminated label set": "# HELP leased_x h\n# TYPE leased_x gauge\nleased_x{shard=\"0\" 1\n",
	}
	for name, text := range mangle {
		if _, err := Parse([]byte(text)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestParseSkipsForeignComments: ordinary comments and blank lines are
// legal exposition text.
func TestParseSkipsForeignComments(t *testing.T) {
	text := "# scraped at t0\n\n# HELP m h\n# TYPE m gauge\nm 4\n"
	fams, err := Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Samples[0].Value != 4 {
		t.Fatalf("parsed %#v", fams)
	}
}
