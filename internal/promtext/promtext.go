// Package promtext encodes and parses the Prometheus text exposition
// format (version 0.0.4): families of counter and gauge samples with
// HELP and TYPE headers and optional labels. The lease service's
// metrics endpoint serves this encoding to scrapers; internal/wire maps
// the engine's counters onto families and internal/server appends the
// WAL and HTTP ones. Parse understands exactly what Encode writes, so a
// golden-file round trip can prove a renamed or malformed metric never
// ships silently.
package promtext

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Family types of the exposition format this package emits.
const (
	TypeCounter = "counter"
	TypeGauge   = "gauge"
)

// Label is one name="value" pair of a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one measured value of a family, with optional labels.
type Sample struct {
	Labels []Label
	Value  float64
}

// Family is one metric family: a name, its type, a help line, and its
// samples.
type Family struct {
	Name    string
	Type    string // TypeCounter or TypeGauge
	Help    string
	Samples []Sample
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Validate rejects families the exposition format (or promtool's lints)
// would not accept: bad names, unknown types, empty help, counters not
// ending in _total, and duplicate sample label sets.
func Validate(fams []Family) error {
	seenFam := map[string]bool{}
	for _, f := range fams {
		if !nameRe.MatchString(f.Name) {
			return fmt.Errorf("promtext: invalid metric name %q", f.Name)
		}
		if seenFam[f.Name] {
			return fmt.Errorf("promtext: duplicate family %q", f.Name)
		}
		seenFam[f.Name] = true
		if f.Type != TypeCounter && f.Type != TypeGauge {
			return fmt.Errorf("promtext: family %q has unknown type %q", f.Name, f.Type)
		}
		if strings.TrimSpace(f.Help) == "" {
			return fmt.Errorf("promtext: family %q has no help text", f.Name)
		}
		if f.Type == TypeCounter && !strings.HasSuffix(f.Name, "_total") {
			return fmt.Errorf("promtext: counter %q does not end in _total", f.Name)
		}
		seenSample := map[string]bool{}
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				if !labelRe.MatchString(l.Name) {
					return fmt.Errorf("promtext: family %q has invalid label name %q", f.Name, l.Name)
				}
			}
			key := labelKey(s.Labels)
			if seenSample[key] {
				return fmt.Errorf("promtext: family %q has duplicate sample {%s}", f.Name, key)
			}
			seenSample[key] = true
			if math.IsNaN(s.Value) {
				return fmt.Errorf("promtext: family %q has a NaN sample", f.Name)
			}
		}
	}
	return nil
}

func labelKey(ls []Label) string {
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Name + "=" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Encode renders the families in order as exposition text. It validates
// first, so a malformed family is an error rather than a scrape that
// fails later.
func Encode(fams []Family) ([]byte, error) {
	if err := Validate(fams); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			b.WriteString(f.Name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
				}
				b.WriteByte('}')
			}
			fmt.Fprintf(&b, " %s\n", formatValue(s.Value))
		}
	}
	return b.Bytes(), nil
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func unescapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\n`, "\n")
	return strings.ReplaceAll(h, `\\`, `\`)
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trippable float.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Parse decodes exposition text produced by Encode back into families —
// the round-trip half of the golden-file gate. It requires every sample
// to follow its family's HELP and TYPE headers and re-validates the
// result, so hand-edited or truncated expositions fail loudly.
func Parse(text []byte) ([]Family, error) {
	var fams []Family
	var cur *Family
	help := map[string]string{}
	for ln, raw := range strings.Split(string(text), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, h, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("promtext: line %d: HELP without text", ln+1)
			}
			help[name] = unescapeHelp(h)
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("promtext: line %d: TYPE without type", ln+1)
			}
			h, ok := help[name]
			if !ok {
				return nil, fmt.Errorf("promtext: line %d: TYPE %s before its HELP", ln+1, name)
			}
			fams = append(fams, Family{Name: name, Type: typ, Help: h})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(line, "#"):
			// Other comments are legal exposition; skip.
		default:
			name, sample, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("promtext: line %d: %w", ln+1, err)
			}
			if cur == nil || cur.Name != name {
				return nil, fmt.Errorf("promtext: line %d: sample %s outside its family block", ln+1, name)
			}
			cur.Samples = append(cur.Samples, sample)
		}
	}
	if err := Validate(fams); err != nil {
		return nil, err
	}
	return fams, nil
}

// parseSample decodes one `name{l="v",...} value` line.
func parseSample(line string) (string, Sample, error) {
	var s Sample
	name := line
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		close := strings.LastIndexByte(line, '}')
		if close < i {
			return "", s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels := line[i+1 : close]
		rest = strings.TrimSpace(line[close+1:])
		for len(labels) > 0 {
			eq := strings.IndexByte(labels, '=')
			if eq < 0 {
				return "", s, fmt.Errorf("label without '=' in %q", line)
			}
			lname := labels[:eq]
			val, n, err := scanQuoted(labels[eq+1:])
			if err != nil {
				return "", s, fmt.Errorf("label value in %q: %w", line, err)
			}
			s.Labels = append(s.Labels, Label{Name: lname, Value: val})
			labels = labels[eq+1+n:]
			labels = strings.TrimPrefix(labels, ",")
		}
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", s, fmt.Errorf("want 'name value', got %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", s, fmt.Errorf("sample value in %q: %w", line, err)
	}
	s.Value = v
	return name, s, nil
}

// scanQuoted reads a leading Go-quoted string and reports how many
// input bytes it consumed.
func scanQuoted(in string) (string, int, error) {
	if len(in) == 0 || in[0] != '"' {
		return "", 0, fmt.Errorf("want quoted value, got %q", in)
	}
	for i := 1; i < len(in); i++ {
		if in[i] == '\\' {
			i++
			continue
		}
		if in[i] == '"' {
			val, err := strconv.Unquote(in[:i+1])
			return val, i + 1, err
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted value %q", in)
}
