package reusable

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"leasing/internal/lease"
	"leasing/internal/parking"
	"leasing/internal/stream"
)

func testConfig(t *testing.T) *lease.Config {
	t.Helper()
	cfg, err := lease.NewConfig(
		lease.Type{Length: 1, Cost: 1},
		lease.Type{Length: 4, Cost: 2.5},
		lease.Type{Length: 16, Cost: 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func randomRequests(rng *rand.Rand, n int) []Request {
	reqs := make([]Request, 0, n)
	t := int64(rng.Intn(4))
	for len(reqs) < n {
		reqs = append(reqs, Request{T: t, Dur: int64(rng.Intn(7))})
		t += int64(rng.Intn(3))
	}
	return reqs
}

func TestNewInstanceValidates(t *testing.T) {
	cfg := testConfig(t)
	if _, err := NewInstance(cfg, 0, nil); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewInstance(cfg, 2, []Request{{T: 5}, {T: 3}}); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("unsorted requests: got %v", err)
	}
	general := lease.MustConfig(lease.Type{Length: 1, Cost: 1}, lease.Type{Length: 3, Cost: 2})
	if _, err := NewInstance(general, 2, nil); !errors.Is(err, parking.ErrNotIntervalModel) {
		t.Fatalf("non-interval config: got %v", err)
	}
	reqs := []Request{{T: 1, Dur: 2}, {T: 1, Dur: 0}, {T: 4, Dur: 1}}
	inst, err := NewInstance(cfg, 2, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Config() != cfg || inst.Capacity() != 2 {
		t.Fatal("accessors disagree with construction")
	}
	if !reflect.DeepEqual(inst.Requests(), reqs) {
		t.Fatal("requests not preserved")
	}
	reqs[0].T = 99 // the instance must have copied its input
	if inst.Requests()[0].T == 99 {
		t.Fatal("instance aliases the caller's request slice")
	}
}

func TestNewOnlineValidates(t *testing.T) {
	cfg := testConfig(t)
	if _, err := NewOnline(cfg, 0, Options{}); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewOnline(cfg, 1, Options{Prediction: 1.5}); err == nil {
		t.Fatal("prediction above 1 accepted")
	}
	general := lease.MustConfig(lease.Type{Length: 1, Cost: 1}, lease.Type{Length: 3, Cost: 2})
	if _, err := NewOnline(general, 1, Options{}); !errors.Is(err, parking.ErrNotIntervalModel) {
		t.Fatalf("non-interval config: got %v", err)
	}
}

func TestGrantFirstFitAndReuse(t *testing.T) {
	cfg := testConfig(t)
	o, err := NewOnline(cfg, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// t=0: unit 0 granted, provisioned.
	unit, ktype, bought, cost, err := o.Grant(0, 3)
	if err != nil || unit != 0 {
		t.Fatalf("first grant: unit %d, err %v", unit, err)
	}
	if len(bought) == 0 || cost <= 0 || ktype < 0 {
		t.Fatalf("first grant bought %v at %v under type %d", bought, cost, ktype)
	}
	// t=1: unit 0 busy until 3, unit 1 serves until 3.
	unit, _, _, _, err = o.Grant(1, 2)
	if err != nil || unit != 1 {
		t.Fatalf("second grant: unit %d, err %v", unit, err)
	}
	// t=2: both busy — rejected.
	unit, ktype, bought, cost, err = o.Grant(2, 1)
	if err != nil || unit != -1 || ktype != -1 || bought != nil || cost != 0 {
		t.Fatalf("expected rejection, got unit %d type %d bought %v cost %v err %v", unit, ktype, bought, cost, err)
	}
	if o.InUse(2) != 2 {
		t.Fatalf("InUse(2) = %d, want 2", o.InUse(2))
	}
	// t=3: unit 0 free again; if its lease still covers t the grant is free.
	before := o.TotalCost()
	unit, _, _, cost, err = o.Grant(3, 1)
	if err != nil || unit != 0 {
		t.Fatalf("reuse grant: unit %d, err %v", unit, err)
	}
	if covered := cost == 0; covered != (o.TotalCost() == before) {
		t.Fatal("cost delta disagrees with TotalCost")
	}
	if o.Accepted() != 3 || o.Rejected() != 1 {
		t.Fatalf("accepted %d rejected %d", o.Accepted(), o.Rejected())
	}
	if o.Capacity() != 2 {
		t.Fatalf("capacity %d", o.Capacity())
	}
	if got := o.Leases(); len(got) == 0 {
		t.Fatal("no leases recorded")
	}
	if _, _, _, _, err := o.Grant(1, 1); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("time regression: got %v", err)
	}
}

func TestGrantSaturatesPathologicalDurations(t *testing.T) {
	cfg := testConfig(t)
	o, err := NewOnline(cfg, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Duration 0 is normalized to 1: the unit is busy at t but free at t+1.
	if unit, _, _, _, _ := o.Grant(5, 0); unit != 0 {
		t.Fatal("zero-duration grant rejected")
	}
	if o.InUse(5) != 1 || o.InUse(6) != 0 {
		t.Fatalf("zero-duration occupancy: InUse(5)=%d InUse(6)=%d", o.InUse(5), o.InUse(6))
	}
	// A maximal duration saturates instead of wrapping: the unit is busy
	// forever, so every later request on the 1-unit pool is rejected.
	if unit, _, _, _, _ := o.Grant(6, math.MaxInt64); unit != 0 {
		t.Fatal("max-duration grant rejected")
	}
	if unit, _, _, _, _ := o.Grant(math.MaxInt64-1, 1); unit != -1 {
		t.Fatal("grant accepted on a saturated unit")
	}
	if o.InUse(math.MaxInt64-1) != 1 {
		t.Fatal("saturated unit not counted busy")
	}
}

func TestPredictiveMatchesAdmissionShiftsProvisioning(t *testing.T) {
	cfg := testConfig(t)
	rng := rand.New(rand.NewSource(41))
	reqs := randomRequests(rng, 120)
	inst, err := NewInstance(cfg, 3, reqs)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewOnline(cfg, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewOnline(cfg, 3, Options{Prediction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range inst.Requests() {
		du, _, _, _, err := det.Grant(r.T, r.Dur)
		if err != nil {
			t.Fatal(err)
		}
		pu, _, _, _, err := pred.Grant(r.T, r.Dur)
		if err != nil {
			t.Fatal(err)
		}
		// Admission and routing are provisioning-policy independent.
		if du != pu {
			t.Fatalf("policies routed t=%d to units %d vs %d", r.T, du, pu)
		}
	}
	if det.Accepted() != pred.Accepted() || det.Rejected() != pred.Rejected() {
		t.Fatal("policies disagree on the accepted set")
	}
	// Under heavy believed demand the predictive rule provisions longer
	// leases; both must stay feasible against the offline baseline.
	off, _, err := Offline(inst)
	if err != nil {
		t.Fatal(err)
	}
	if off <= 0 {
		t.Fatal("offline baseline is free")
	}
	for name, o := range map[string]*Online{"det": det, "pred": pred} {
		if o.TotalCost() < off-1e-9 {
			t.Fatalf("%s beat the exact offline optimum: %v < %v", name, o.TotalCost(), off)
		}
	}
	ratio := det.TotalCost() / off
	if ratio > float64(cfg.K())+1e-9 {
		t.Fatalf("deterministic ratio %v exceeds K=%d", ratio, cfg.K())
	}
}

func TestOfflineMatchesPerUnitOptimum(t *testing.T) {
	cfg := testConfig(t)
	inst, err := NewInstance(cfg, 2, []Request{
		{T: 0, Dur: 4}, {T: 1, Dur: 1}, {T: 2, Dur: 1}, {T: 6, Dur: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	total, leases, err := Offline(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Routing: unit 0 gets {0, 6}, unit 1 gets {1, 2}.
	c0, _, err := parking.Optimal(cfg, []int64{0, 6})
	if err != nil {
		t.Fatal(err)
	}
	c1, _, err := parking.Optimal(cfg, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if total != c0+c1 {
		t.Fatalf("offline total %v, want %v", total, c0+c1)
	}
	for _, l := range leases {
		if l.Item != 0 && l.Item != 1 {
			t.Fatalf("offline lease on unit %d", l.Item)
		}
	}
	// A non-interval instance cannot be constructed, but Offline must
	// surface per-unit DP errors; exercise via a hand-built instance.
	bad := &Instance{cfg: lease.MustConfig(lease.Type{Length: 1, Cost: 1}, lease.Type{Length: 3, Cost: 2}),
		capacity: 1, requests: []Request{{T: 0, Dur: 1}}}
	if _, _, err := Offline(bad); err == nil {
		t.Fatal("offline accepted a non-interval configuration")
	}
}

func TestVerifyAcceptsOnlineAndOffline(t *testing.T) {
	cfg := testConfig(t)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		reqs := randomRequests(rng, 60)
		inst, err := NewInstance(cfg, 1+int(seed)%3, reqs)
		if err != nil {
			t.Fatal(err)
		}
		for name, opts := range map[string]Options{"det": {}, "pred": {Prediction: 0.5}} {
			alg, err := NewOnline(inst.Config(), inst.Capacity(), opts)
			if err != nil {
				t.Fatal(err)
			}
			l := NewLeaser(alg)
			if _, err := stream.Replay(l, Events(inst.Requests())); err != nil {
				t.Fatal(err)
			}
			if err := Verify(inst, l.Snapshot()); err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
		}
	}
}

func TestVerifyRejectsInvalidSolutions(t *testing.T) {
	cfg := testConfig(t)
	inst, err := NewInstance(cfg, 2, []Request{{T: 0, Dur: 2}, {T: 1, Dur: 1}, {T: 1, Dur: 1}})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewOnline(cfg, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLeaser(alg)
	if _, err := stream.Replay(l, Events(inst.Requests())); err != nil {
		t.Fatal(err)
	}
	good := l.Snapshot()
	if err := Verify(inst, good); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(s *stream.Solution)) stream.Solution {
		s := stream.Solution{
			Leases:      append([]stream.ItemLease(nil), good.Leases...),
			Assignments: append([]stream.Assignment(nil), good.Assignments...),
		}
		f(&s)
		return s
	}
	cases := map[string]stream.Solution{
		"missing assignment": mutate(func(s *stream.Solution) { s.Assignments = s.Assignments[:1] }),
		"unit out of range":  mutate(func(s *stream.Solution) { s.Assignments[0].Item = 7 }),
		"lease unit out of range": mutate(func(s *stream.Solution) {
			s.Leases[0].Item = -1
		}),
		"lease type out of range": mutate(func(s *stream.Solution) {
			s.Leases[0].K = 99
		}),
		"service cost": mutate(func(s *stream.Solution) { s.Assignments[0].Cost = 1 }),
		"overlap": mutate(func(s *stream.Solution) {
			// Route every request to unit 0: request 1 overlaps request 0.
			for i := range s.Assignments {
				s.Assignments[i].Item = 0
			}
		}),
		"uncovered grant": mutate(func(s *stream.Solution) { s.Leases = nil }),
		"unjustified rejection": mutate(func(s *stream.Solution) {
			s.Assignments[1] = stream.Assignment{Item: -1, K: -1}
		}),
	}
	for name, sol := range cases {
		if err := Verify(inst, sol); err == nil {
			t.Errorf("%s: verify accepted a broken solution", name)
		}
	}
}

func TestLeaserConformsLocally(t *testing.T) {
	cfg := testConfig(t)
	alg, err := NewOnline(cfg, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLeaser(alg)
	if _, err := l.Observe(stream.Event{Time: 0, Payload: stream.Day{}}); err == nil {
		t.Fatal("day payload accepted")
	}
	events := Events([]Request{{T: 0, Dur: 2}, {T: 0, Dur: 2}, {T: 1, Dur: 1}, {T: 5, Dur: 1}})
	var sum float64
	for _, ev := range events {
		d, err := l.Observe(ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Assignments) != 1 {
			t.Fatalf("decision carries %d assignments", len(d.Assignments))
		}
		sum += d.Cost
	}
	if got := l.Cost(); got.Total() != sum || got.Service != 0 {
		t.Fatalf("cost %+v does not telescope to %v", got, sum)
	}
	sol := l.Snapshot()
	if len(sol.Assignments) != len(events) {
		t.Fatalf("snapshot has %d assignments for %d events", len(sol.Assignments), len(events))
	}
	if !reflect.DeepEqual(sol.Leases, alg.Leases()) {
		t.Fatal("snapshot leases disagree with the allocator")
	}
	// The third request (t=1) finds both units busy.
	if sol.Assignments[2].Item != -1 || sol.Assignments[2].K != -1 {
		t.Fatalf("expected rejection verdict, got %+v", sol.Assignments[2])
	}
	if _, err := l.Observe(stream.Event{Time: 0, Payload: stream.Use{Dur: 1}}); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("time regression through the adapter: got %v", err)
	}
}

func TestEventsConversion(t *testing.T) {
	reqs := []Request{{T: 3, Dur: 0}, {T: 9, Dur: 7}}
	evs := Events(reqs)
	if len(evs) != 2 {
		t.Fatal("length mismatch")
	}
	for i, ev := range evs {
		p, ok := ev.Payload.(stream.Use)
		if !ok || ev.Time != reqs[i].T || p.Dur != reqs[i].Dur {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
}
