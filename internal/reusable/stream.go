package reusable

import (
	"fmt"

	"leasing/internal/stream"
)

// Leaser adapts the reusable-resource allocator to the unified stream
// protocol. Items are capacity units; every request produces exactly one
// assignment — (unit, lease type, 0) for a grant, (-1, -1, 0) for a
// rejection — so a Solution carries a positional verdict per request
// that Verify can replay against the instance.
type Leaser struct {
	alg         *Online
	leases      []stream.ItemLease
	assignments []stream.Assignment
}

var _ stream.Leaser = (*Leaser)(nil)

// NewLeaser wraps an allocator as a stream.Leaser consuming Use events.
func NewLeaser(alg *Online) *Leaser { return &Leaser{alg: alg} }

// Observe implements stream.Leaser. It accepts Use payloads only.
func (l *Leaser) Observe(ev stream.Event) (stream.Decision, error) {
	p, ok := ev.Payload.(stream.Use)
	if !ok {
		return stream.Decision{}, fmt.Errorf("reusable: unsupported payload %T", ev.Payload)
	}
	unit, ktype, bought, cost, err := l.alg.Grant(ev.Time, p.Dur)
	if err != nil {
		return stream.Decision{}, err
	}
	d := stream.Decision{
		Assignments: []stream.Assignment{{Item: unit, K: ktype, Cost: 0}},
		Cost:        cost,
	}
	for _, b := range bought {
		d.Leases = append(d.Leases, stream.ItemLease{Item: unit, K: b.K, Start: b.Start})
	}
	stream.SortItemLeases(d.Leases)
	l.leases = append(l.leases, d.Leases...)
	l.assignments = append(l.assignments, d.Assignments...)
	return d, nil
}

// Cost implements stream.Leaser; provisioning is pure leasing cost.
func (l *Leaser) Cost() stream.CostBreakdown {
	return stream.CostBreakdown{Lease: l.alg.TotalCost()}
}

// Snapshot implements stream.Leaser.
func (l *Leaser) Snapshot() stream.Solution {
	sol := stream.Solution{
		Leases:      make([]stream.ItemLease, len(l.leases)),
		Assignments: make([]stream.Assignment, len(l.assignments)),
	}
	copy(sol.Leases, l.leases)
	copy(sol.Assignments, l.assignments)
	stream.SortItemLeases(sol.Leases)
	return sol
}
