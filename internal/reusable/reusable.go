// Package reusable is the eighth online domain: allocation of reusable
// resources under leasing. A pool holds C capacity units; each request
// arrives online with a usage duration, and a granted request occupies
// one unit exclusively for that duration before the unit returns to the
// pool. Serving a request requires the serving unit to hold a lease
// covering the grant instant, so the online policy makes two coupled
// decisions per request: admission (grant or reject) and provisioning
// (which lease type to buy when the serving unit is uncovered).
//
// The model follows the reusable-resource papers surveyed in PAPERS.md
// ("Asymptotically Optimal Competitive Ratio for Online Allocation of
// Reusable Resources", "Online Bipartite Matching with Reusable
// Resources"): capacity is not consumed by a grant, only borrowed.
// Admission here is greedy first-fit — a request is rejected only when
// every unit is busy at its arrival — which makes the accepted set and
// the per-unit grant sequences independent of the provisioning policy.
// That separation is what gives the competitive guarantee: each unit's
// grant instants form a non-decreasing demand-day sequence, each unit
// provisions with the parking-permit primal-dual rule (K-competitive
// per unit against that unit's offline optimum), and Offline computes
// exactly that baseline — the same first-fit routing with each unit's
// leases chosen by the exact laminar DP. Summed over units, the online
// provisioning cost is K-competitive against Offline.
//
// The learning-augmented variant generalizes the stochastic-demand rule
// of internal/parking/predictive.go from one resource to the pool: with
// believed demand probability p, an uncovered grant buys the lease
// minimizing cost per expected served request, shifting the
// provisioning threshold toward long leases under heavy predicted
// demand. Experiment E22 measures the consistency/robustness trade-off.
package reusable

import (
	"errors"
	"fmt"
	"math"

	"leasing/internal/lease"
	"leasing/internal/parking"
	"leasing/internal/stream"
)

// Request is one usage demand: it arrives at T and, if granted, occupies
// one capacity unit over [T, T+Dur). Durations below 1 are treated as 1.
type Request struct {
	T   int64
	Dur int64
}

// ErrTimeRegression is returned when requests arrive out of order.
var ErrTimeRegression = errors.New("reusable: arrival time precedes an earlier arrival")

// Instance couples a lease configuration with a pool capacity and a
// request stream; Offline and Verify are defined against it.
type Instance struct {
	cfg      *lease.Config
	capacity int
	requests []Request
}

// NewInstance validates and builds an instance. The configuration must
// be in the interval model (the per-unit provisioning rules require it),
// capacity must be at least 1, and requests must be sorted by arrival.
func NewInstance(cfg *lease.Config, capacity int, requests []Request) (*Instance, error) {
	if !cfg.IsIntervalModel() {
		return nil, parking.ErrNotIntervalModel
	}
	if capacity < 1 {
		return nil, fmt.Errorf("reusable: capacity %d below 1", capacity)
	}
	for i := 1; i < len(requests); i++ {
		if requests[i].T < requests[i-1].T {
			return nil, fmt.Errorf("%w: request %d at %d after %d",
				ErrTimeRegression, i, requests[i].T, requests[i-1].T)
		}
	}
	rs := make([]Request, len(requests))
	copy(rs, requests)
	return &Instance{cfg: cfg, capacity: capacity, requests: rs}, nil
}

// Config returns the instance's lease configuration.
func (in *Instance) Config() *lease.Config { return in.cfg }

// Capacity returns the pool size C.
func (in *Instance) Capacity() int { return in.capacity }

// Requests returns the demand stream (the caller must not modify it).
func (in *Instance) Requests() []Request { return in.requests }

// Events converts a request stream into Use events.
func Events(reqs []Request) []stream.Event {
	out := make([]stream.Event, len(reqs))
	for i, r := range reqs {
		out[i] = stream.Event{Time: r.T, Payload: stream.Use{Dur: r.Dur}}
	}
	return out
}

// Options select the provisioning policy.
type Options struct {
	// Prediction is the believed per-step demand probability of the
	// learning-augmented rule, in (0, 1]; zero selects the worst-case
	// primal-dual rule.
	Prediction float64
}

// provisioner is what a pool unit runs: a parking-permit algorithm with
// the purchase journal the decision diff reads.
type provisioner interface {
	parking.Algorithm
	BoughtSince(n int) []lease.Lease
}

// poolUnit is one capacity unit: its provisioning state, its busy
// horizon, and everything it has bought (for covering-type lookup).
type poolUnit struct {
	alg       provisioner
	cursor    int
	busyUntil int64 // exclusive: the unit is free at t iff t >= busyUntil
	leases    []lease.Lease
}

// Online is the greedy first-fit allocator over C units. It is
// deterministic given (configuration, capacity, options).
type Online struct {
	cfg      *lease.Config
	opts     Options
	units    []poolUnit
	total    float64
	lastT    int64
	started  bool
	accepted int
	rejected int
}

// NewOnline builds the allocator. The configuration must be in the
// interval model and capacity at least 1; a non-zero Prediction must lie
// in (0, 1].
func NewOnline(cfg *lease.Config, capacity int, opts Options) (*Online, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("reusable: capacity %d below 1", capacity)
	}
	units := make([]poolUnit, capacity)
	for i := range units {
		var (
			alg provisioner
			err error
		)
		if opts.Prediction != 0 {
			alg, err = parking.NewPredictive(cfg, opts.Prediction)
		} else {
			alg, err = parking.NewDeterministic(cfg)
		}
		if err != nil {
			return nil, err
		}
		units[i].alg = alg
	}
	return &Online{cfg: cfg, opts: opts, units: units}, nil
}

// Capacity returns the pool size C.
func (o *Online) Capacity() int { return len(o.units) }

// Accepted returns how many requests have been granted.
func (o *Online) Accepted() int { return o.accepted }

// Rejected returns how many requests have been rejected.
func (o *Online) Rejected() int { return o.rejected }

// InUse counts the units still occupied at time t.
func (o *Online) InUse(t int64) int {
	n := 0
	for i := range o.units {
		if o.units[i].busyUntil > t {
			n++
		}
	}
	return n
}

// TotalCost returns the cumulative provisioning cost.
func (o *Online) TotalCost() float64 { return o.total }

// satAdd saturates t+d at the maximum time, so a pathological duration
// occupies a unit forever instead of wrapping around.
func satAdd(t, d int64) int64 {
	if s := t + d; s >= t {
		return s
	}
	return math.MaxInt64
}

// Grant processes one request: unit is the serving unit and ktype the
// lease type it was served under (both -1 on rejection), bought lists
// the leases newly purchased for the grant, and cost is the incremental
// provisioning cost of the step.
func (o *Online) Grant(t, dur int64) (unit, ktype int, bought []lease.Lease, cost float64, err error) {
	if o.started && t < o.lastT {
		return -1, -1, nil, 0, fmt.Errorf("%w: %d after %d", ErrTimeRegression, t, o.lastT)
	}
	o.started, o.lastT = true, t
	dur = max(dur, 1)

	// Strict first-fit: the lowest-indexed free unit serves. Routing never
	// depends on lease state, so the per-unit grant sequences are exactly
	// the ones Offline's baseline provisions — that identity is what makes
	// the per-unit primal-dual guarantee compose into a pool-wide one.
	pick := -1
	for i := range o.units {
		if o.units[i].busyUntil <= t {
			pick = i
			break
		}
	}
	if pick < 0 {
		o.rejected++
		return -1, -1, nil, 0, nil
	}

	u := &o.units[pick]
	if err := u.alg.Arrive(t); err != nil {
		return -1, -1, nil, 0, err
	}
	if news := u.alg.BoughtSince(u.cursor); len(news) > 0 {
		u.cursor += len(news)
		u.leases = append(u.leases, news...)
		bought = news
		for _, l := range news {
			cost += o.cfg.Cost(l.K)
		}
		o.total += cost
	}
	ktype = o.coveringType(u, t)
	if ktype < 0 {
		return -1, -1, nil, 0, fmt.Errorf("reusable: unit %d uncovered at %d after provisioning", pick, t)
	}
	u.busyUntil = satAdd(t, dur)
	o.accepted++
	return pick, ktype, bought, cost, nil
}

// coveringType returns the longest lease type under which the unit's
// purchases cover t, or -1 when uncovered.
func (o *Online) coveringType(u *poolUnit, t int64) int {
	best := -1
	for _, l := range u.leases {
		if l.K > best && o.cfg.Covers(l, t) {
			best = l.K
		}
	}
	return best
}

// Leases returns every lease bought so far as (unit, type, start)
// triples in canonical order.
func (o *Online) Leases() []stream.ItemLease {
	var out []stream.ItemLease
	for i := range o.units {
		for _, l := range o.units[i].leases {
			out = append(out, stream.ItemLease{Item: i, K: l.K, Start: l.Start})
		}
	}
	stream.SortItemLeases(out)
	return out
}

// route replays inst's requests through the first-fit admission rule
// alone and returns each unit's grant instants plus the per-request
// serving unit (-1 for rejections). Admission is provisioning-policy
// independent, so this is exactly the accepted set any Online run grants.
func route(inst *Instance) (grants [][]int64, serving []int) {
	busy := make([]int64, inst.capacity)
	grants = make([][]int64, inst.capacity)
	serving = make([]int, len(inst.requests))
	for i, r := range inst.requests {
		serving[i] = -1
		for u := 0; u < inst.capacity; u++ {
			if busy[u] > r.T {
				continue
			}
			busy[u] = satAdd(r.T, max(r.Dur, 1))
			grants[u] = append(grants[u], r.T)
			serving[i] = u
			break
		}
	}
	return grants, serving
}

// Offline is the feasibility oracle the online policy is measured
// against: the same first-fit admission, with each unit's leases chosen
// by the exact laminar DP over that unit's grant instants. It returns
// the total provisioning cost and the lease set in canonical order.
func Offline(inst *Instance) (float64, []stream.ItemLease, error) {
	grants, _ := route(inst)
	var (
		total  float64
		leases []stream.ItemLease
	)
	for u, days := range grants {
		cost, ls, err := parking.Optimal(inst.cfg, days)
		if err != nil {
			return 0, nil, err
		}
		total += cost
		for _, l := range ls {
			leases = append(leases, stream.ItemLease{Item: u, K: l.K, Start: l.Start})
		}
	}
	stream.SortItemLeases(leases)
	return total, leases, nil
}

// Verify checks a solution against the instance: one assignment per
// request in arrival order, valid serving units, exclusive occupation
// (never more than one concurrent usage per unit, hence never more than
// C units in use), every grant covered by a lease of the reported type
// on the serving unit, and rejections only when every unit was busy.
func Verify(inst *Instance, sol stream.Solution) error {
	if len(sol.Assignments) != len(inst.requests) {
		return fmt.Errorf("reusable: %d assignments for %d requests",
			len(sol.Assignments), len(inst.requests))
	}
	// Index the solution's leases per unit for coverage checks.
	unitLeases := make([][]lease.Lease, inst.capacity)
	for _, il := range sol.Leases {
		if il.Item < 0 || il.Item >= inst.capacity {
			return fmt.Errorf("reusable: lease on unit %d outside pool of %d", il.Item, inst.capacity)
		}
		if il.K < 0 || il.K >= inst.cfg.K() {
			return fmt.Errorf("reusable: lease type %d outside configuration", il.K)
		}
		unitLeases[il.Item] = append(unitLeases[il.Item], lease.Lease{K: il.K, Start: il.Start})
	}
	busy := make([]int64, inst.capacity)
	for i, r := range inst.requests {
		a := sol.Assignments[i]
		if a.Cost != 0 {
			return fmt.Errorf("reusable: request %d carries service cost %v", i, a.Cost)
		}
		if a.Item < 0 {
			// Rejection is only justified when the whole pool was busy.
			for u := 0; u < inst.capacity; u++ {
				if busy[u] <= r.T {
					return fmt.Errorf("reusable: request %d rejected while unit %d was free at %d", i, u, r.T)
				}
			}
			continue
		}
		if a.Item >= inst.capacity {
			return fmt.Errorf("reusable: request %d served by unit %d outside pool of %d", i, a.Item, inst.capacity)
		}
		if busy[a.Item] > r.T {
			return fmt.Errorf("reusable: request %d overlaps unit %d (busy until %d, arrival %d)",
				i, a.Item, busy[a.Item], r.T)
		}
		covered := false
		for _, l := range unitLeases[a.Item] {
			if l.K == a.K && inst.cfg.Covers(l, r.T) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("reusable: request %d served by unit %d without a covering type-%d lease at %d",
				i, a.Item, a.K, r.T)
		}
		busy[a.Item] = satAdd(r.T, max(r.Dur, 1))
	}
	return nil
}
