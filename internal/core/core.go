// Package core implements the leasing framework of Section 2.3 of the
// thesis: the generic transformation of an online infrastructure problem
// (demands j arriving over time, covered by buying infrastructure elements
// i) into its leasing variant, where buying is replaced by leasing an
// element i at time t with one of K lease types — the triples (i, k, t) the
// thesis calls the infrastructure leasing set.
//
// The concrete problems (set multicover leasing, facility leasing, leasing
// with deadlines) instantiate this framework; package core supplies the
// pieces they share: the item-lease triple, a purchase store with per-item
// per-type costs, demand streams, and competitive-ratio bookkeeping.
package core

import (
	"fmt"
	"sort"

	"leasing/internal/lease"
)

// ItemLease is the triple (i, k, t) of the infrastructure leasing set I̅:
// infrastructure element Item leased with type K starting at time Start.
type ItemLease struct {
	Item  int
	K     int
	Start int64
}

// Lease returns the timeline part (k, start) of the triple.
func (il ItemLease) Lease() lease.Lease { return lease.Lease{K: il.K, Start: il.Start} }

// ItemStore records purchased item leases with per-item, per-type costs
// (c_ik in the thesis). Construct with NewItemStore.
type ItemStore struct {
	cfg    *lease.Config
	costs  [][]float64
	bought map[ItemLease]struct{}
	byItem map[int][][]int64 // item -> per type -> sorted starts
	total  float64
}

// NewItemStore creates an empty store. costs[i][k] is the cost of leasing
// item i with type k; it must be rectangular with one row per item and one
// column per lease type.
func NewItemStore(cfg *lease.Config, costs [][]float64) (*ItemStore, error) {
	for i, row := range costs {
		if len(row) != cfg.K() {
			return nil, fmt.Errorf("core: cost row %d has %d entries, want %d", i, len(row), cfg.K())
		}
		for k, c := range row {
			if !(c > 0) {
				return nil, fmt.Errorf("core: cost[%d][%d] = %v, want > 0", i, k, c)
			}
		}
	}
	return &ItemStore{
		cfg:    cfg,
		costs:  costs,
		bought: make(map[ItemLease]struct{}),
		byItem: make(map[int][][]int64),
	}, nil
}

// Cost returns c_ik for item i and lease type k.
func (s *ItemStore) Cost(item, k int) float64 { return s.costs[item][k] }

// Config returns the lease configuration.
func (s *ItemStore) Config() *lease.Config { return s.cfg }

// NumItems returns the number of items the store has costs for.
func (s *ItemStore) NumItems() int { return len(s.costs) }

// Buy purchases the triple if new and accounts its cost c_ik. It reports
// whether the triple was newly bought and errors on out-of-range indices.
func (s *ItemStore) Buy(il ItemLease) (bool, error) {
	if il.Item < 0 || il.Item >= len(s.costs) {
		return false, fmt.Errorf("core: item %d out of range [0,%d)", il.Item, len(s.costs))
	}
	if il.K < 0 || il.K >= s.cfg.K() {
		return false, fmt.Errorf("core: lease type %d out of range [0,%d)", il.K, s.cfg.K())
	}
	if _, ok := s.bought[il]; ok {
		return false, nil
	}
	s.bought[il] = struct{}{}
	s.total += s.costs[il.Item][il.K]
	perType, ok := s.byItem[il.Item]
	if !ok {
		perType = make([][]int64, s.cfg.K())
		s.byItem[il.Item] = perType
	}
	ss := perType[il.K]
	i := sort.Search(len(ss), func(i int) bool { return ss[i] >= il.Start })
	ss = append(ss, 0)
	copy(ss[i+1:], ss[i:])
	ss[i] = il.Start
	perType[il.K] = ss
	return true, nil
}

// Has reports whether the exact triple is bought.
func (s *ItemStore) Has(il ItemLease) bool {
	_, ok := s.bought[il]
	return ok
}

// ItemActive reports whether item i has any lease whose window covers t.
func (s *ItemStore) ItemActive(item int, t int64) bool {
	perType, ok := s.byItem[item]
	if !ok {
		return false
	}
	for k, ss := range perType {
		i := sort.Search(len(ss), func(i int) bool { return ss[i] > t })
		if i > 0 && ss[i-1]+s.cfg.Length(k) > t {
			return true
		}
	}
	return false
}

// ActiveItems returns the items with at least one lease covering t, in
// ascending item order.
func (s *ItemStore) ActiveItems(t int64) []int {
	var out []int
	for item := range s.byItem {
		if s.ItemActive(item, t) {
			out = append(out, item)
		}
	}
	sort.Ints(out)
	return out
}

// TotalCost returns the accumulated leasing cost.
func (s *ItemStore) TotalCost() float64 { return s.total }

// Count returns the number of distinct triples bought.
func (s *ItemStore) Count() int { return len(s.bought) }

// Leases returns all bought triples sorted by (item, type, start).
func (s *ItemStore) Leases() []ItemLease {
	out := make([]ItemLease, 0, len(s.bought))
	for il := range s.bought {
		out = append(out, il)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Item != out[b].Item {
			return out[a].Item < out[b].Item
		}
		if out[a].K != out[b].K {
			return out[a].K < out[b].K
		}
		return out[a].Start < out[b].Start
	})
	return out
}

// CostReporter is implemented by every online algorithm in this repository.
type CostReporter interface {
	// TotalCost returns the cost accumulated so far.
	TotalCost() float64
}

// Ratio returns online/opt, the empirical competitive ratio of one run. A
// non-positive opt yields an error: every experiment instance in this
// repository has positive optimum.
func Ratio(online, opt float64) (float64, error) {
	if opt <= 0 {
		return 0, fmt.Errorf("core: non-positive optimum %v", opt)
	}
	return online / opt, nil
}
