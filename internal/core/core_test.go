package core

import (
	"testing"

	"leasing/internal/lease"
)

func testConfig() *lease.Config {
	return lease.MustConfig(
		lease.Type{Length: 2, Cost: 1},
		lease.Type{Length: 8, Cost: 3},
	)
}

func TestNewItemStoreValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := NewItemStore(cfg, [][]float64{{1}}); err == nil {
		t.Error("short cost row accepted")
	}
	if _, err := NewItemStore(cfg, [][]float64{{1, 0}}); err == nil {
		t.Error("zero cost accepted")
	}
	if _, err := NewItemStore(cfg, [][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Errorf("valid costs rejected: %v", err)
	}
}

func TestItemStoreBuyAndActive(t *testing.T) {
	cfg := testConfig()
	s, err := NewItemStore(cfg, [][]float64{{1, 3}, {2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	il := ItemLease{Item: 0, K: 1, Start: 8}
	fresh, err := s.Buy(il)
	if err != nil || !fresh {
		t.Fatalf("Buy = %v, %v; want true, nil", fresh, err)
	}
	fresh, err = s.Buy(il)
	if err != nil || fresh {
		t.Fatalf("duplicate Buy = %v, %v; want false, nil", fresh, err)
	}
	if got := s.TotalCost(); got != 3 {
		t.Errorf("TotalCost = %v, want 3 (no double charge)", got)
	}
	if !s.Has(il) {
		t.Error("Has(bought) = false")
	}
	if !s.ItemActive(0, 8) || !s.ItemActive(0, 15) || s.ItemActive(0, 16) || s.ItemActive(0, 7) {
		t.Error("ItemActive window [8,16) wrong")
	}
	if s.ItemActive(1, 10) {
		t.Error("unbought item active")
	}
	if _, err := s.Buy(ItemLease{Item: 5, K: 0, Start: 0}); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, err := s.Buy(ItemLease{Item: 0, K: 9, Start: 0}); err == nil {
		t.Error("out-of-range type accepted")
	}
}

func TestActiveItemsSortedAndLeases(t *testing.T) {
	cfg := testConfig()
	s, _ := NewItemStore(cfg, [][]float64{{1, 3}, {2, 5}, {1, 4}})
	for _, il := range []ItemLease{
		{Item: 2, K: 0, Start: 4},
		{Item: 0, K: 1, Start: 0},
		{Item: 2, K: 0, Start: 0},
	} {
		if _, err := s.Buy(il); err != nil {
			t.Fatal(err)
		}
	}
	got := s.ActiveItems(5)
	want := []int{0, 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ActiveItems(5) = %v, want %v", got, want)
	}
	ls := s.Leases()
	if len(ls) != 3 {
		t.Fatalf("Leases() len = %d, want 3", len(ls))
	}
	if ls[0] != (ItemLease{Item: 0, K: 1, Start: 0}) ||
		ls[1] != (ItemLease{Item: 2, K: 0, Start: 0}) ||
		ls[2] != (ItemLease{Item: 2, K: 0, Start: 4}) {
		t.Errorf("Leases() = %v not sorted as expected", ls)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	if s.NumItems() != 3 {
		t.Errorf("NumItems = %d, want 3", s.NumItems())
	}
	if s.Cost(1, 1) != 5 {
		t.Errorf("Cost(1,1) = %v, want 5", s.Cost(1, 1))
	}
}

func TestItemLeaseLease(t *testing.T) {
	il := ItemLease{Item: 3, K: 1, Start: 16}
	l := il.Lease()
	if l.K != 1 || l.Start != 16 {
		t.Errorf("Lease() = %+v", l)
	}
}

func TestRatio(t *testing.T) {
	r, err := Ratio(6, 2)
	if err != nil || r != 3 {
		t.Errorf("Ratio(6,2) = %v, %v; want 3, nil", r, err)
	}
	if _, err := Ratio(1, 0); err == nil {
		t.Error("Ratio with zero opt accepted")
	}
}
