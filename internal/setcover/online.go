package setcover

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Options tunes the online algorithm.
type Options struct {
	// RoundingDraws overrides the number q of independent uniform draws
	// whose minimum forms each triple's rounding threshold µ. The default
	// (0) uses the paper's 2*ceil(log2(n+1)) for PerArrival scope and
	// 2*ceil(log2(δ·n+1)) for PerElement scope (Corollary 3.5). Used by the
	// rounding ablation experiment.
	RoundingDraws int
}

// Online is the randomized algorithm of Section 3.3 (Algorithms 3 and 4):
// it maintains a monotone fraction per candidate triple, raises the
// fractions of a demand's candidates until they sum to one, rounds with
// per-triple min-of-uniforms thresholds, and falls back to buying the
// cheapest candidate when rounding leaves a layer uncovered.
type Online struct {
	inst   *Instance
	rng    *rand.Rand
	draws  int
	frac   map[SetLease]float64
	mu     map[SetLease]float64
	bought map[SetLease]struct{}
	// usedByElem tracks, per element, the sets counted for earlier arrivals
	// (PerElement scope only).
	usedByElem map[int]map[int]bool
	total      float64
	fracCost   float64
	fallbacks  int
	lastT      int64
	started    bool
}

// NewOnline builds the online algorithm for an instance. rng drives both
// threshold sampling and nothing else; runs are reproducible per seed.
func NewOnline(inst *Instance, rng *rand.Rand, opts Options) (*Online, error) {
	if !inst.Cfg.IsIntervalModel() {
		return nil, errors.New("setcover: configuration is not in the interval model")
	}
	if rng == nil {
		return nil, errors.New("setcover: nil rng")
	}
	draws := opts.RoundingDraws
	if draws <= 0 {
		base := inst.Fam.N() + 1
		if inst.Scope == PerElement {
			base = inst.Fam.Delta()*inst.Fam.N() + 1
		}
		draws = 2 * int(math.Ceil(math.Log2(float64(base))))
		if draws < 1 {
			draws = 1
		}
	}
	return &Online{
		inst:       inst,
		rng:        rng,
		draws:      draws,
		frac:       make(map[SetLease]float64),
		mu:         make(map[SetLease]float64),
		bought:     make(map[SetLease]struct{}),
		usedByElem: make(map[int]map[int]bool),
	}, nil
}

// threshold lazily samples the rounding threshold of a triple: the minimum
// of `draws` independent uniforms, fixed for the triple's lifetime.
func (o *Online) threshold(sl SetLease) float64 {
	if mu, ok := o.mu[sl]; ok {
		return mu
	}
	mu := 1.0
	for i := 0; i < o.draws; i++ {
		if u := o.rng.Float64(); u < mu {
			mu = u
		}
	}
	o.mu[sl] = mu
	return mu
}

func (o *Online) buy(sl SetLease) bool {
	if _, ok := o.bought[sl]; ok {
		return false
	}
	o.bought[sl] = struct{}{}
	o.total += o.inst.Costs[sl.Set][sl.K]
	return true
}

// Arrive processes the demand (element e, multiplicity p) at time t,
// leasing sets until p distinct sets containing e are leased over t.
func (o *Online) Arrive(t int64, e int, p int) error {
	if o.started && t < o.lastT {
		return fmt.Errorf("setcover: arrival at %d precedes %d", t, o.lastT)
	}
	o.started, o.lastT = true, t
	if e < 0 || e >= o.inst.Fam.N() {
		return fmt.Errorf("setcover: element %d outside universe", e)
	}
	if p < 1 {
		return fmt.Errorf("setcover: multiplicity %d < 1", p)
	}

	exclude := map[int]bool{}
	if o.inst.Scope == PerElement {
		for s := range o.usedByElem[e] {
			exclude[s] = true
		}
	}
	for layer := 0; layer < p; layer++ {
		usedSet, err := o.coverOnce(t, e, exclude)
		if err != nil {
			return fmt.Errorf("setcover: element %d layer %d at %d: %w", e, layer, t, err)
		}
		exclude[usedSet] = true
		if o.inst.Scope == PerElement {
			if o.usedByElem[e] == nil {
				o.usedByElem[e] = make(map[int]bool)
			}
			o.usedByElem[e][usedSet] = true
		}
	}
	return nil
}

// coverOnce is Algorithm 3 (i-Cover): it guarantees that after it returns,
// at least one candidate outside the exclusion list is leased, and returns
// the set chosen to account for this layer.
func (o *Online) coverOnce(t int64, e int, exclude map[int]bool) (int, error) {
	cands := o.inst.Candidates(e, t, exclude)
	if len(cands) == 0 {
		return 0, errors.New("no candidates left (infeasible demand)")
	}

	// Fractional phase: multiplicative increments until the candidate mass
	// reaches one.
	sum := 0.0
	for _, c := range cands {
		sum += o.frac[c]
	}
	for sum < 1 {
		sum = 0
		for _, c := range cands {
			cost := o.inst.Costs[c.Set][c.K]
			f := o.frac[c]
			nf := f*(1+1/cost) + 1/(float64(len(cands))*cost)
			o.frac[c] = nf
			o.fracCost += (nf - f) * cost
			sum += nf
		}
	}

	// Rounding phase: lease every candidate whose fraction clears its
	// threshold; remember leased candidates (new or previously bought).
	chosen := -1
	chosenCost := math.Inf(1)
	for _, c := range cands {
		leased := false
		if _, ok := o.bought[c]; ok {
			leased = true
		} else if o.frac[c] > o.threshold(c) {
			o.buy(c)
			leased = true
		}
		if leased {
			if cc := o.inst.Costs[c.Set][c.K]; cc < chosenCost {
				chosen, chosenCost = c.Set, cc
			}
		}
	}
	if chosen >= 0 {
		return chosen, nil
	}

	// Fallback: lease the cheapest candidate to guarantee feasibility. The
	// analysis shows this fires with probability at most 1/n^2.
	o.fallbacks++
	best := cands[0]
	bestCost := o.inst.Costs[best.Set][best.K]
	for _, c := range cands[1:] {
		if cc := o.inst.Costs[c.Set][c.K]; cc < bestCost {
			best, bestCost = c, cc
		}
	}
	o.buy(best)
	return best.Set, nil
}

// Run feeds the whole instance stream through the algorithm.
func (o *Online) Run() error {
	for _, a := range o.inst.Arrivals {
		if err := o.Arrive(a.T, a.Elem, a.P); err != nil {
			return err
		}
	}
	return nil
}

// TotalCost returns the integral solution cost so far.
func (o *Online) TotalCost() float64 { return o.total }

// FractionalCost returns the accumulated fractional cost (the quantity
// Lemma 3.1 bounds by O(log(δK)) * OPT).
func (o *Online) FractionalCost() float64 { return o.fracCost }

// Fallbacks returns how often the buy-cheapest fallback fired.
func (o *Online) Fallbacks() int { return o.fallbacks }

// Bought returns the leased triples in canonical (set, type, start)
// order, so snapshots built from it are identical across runs.
func (o *Online) Bought() []SetLease {
	out := make([]SetLease, 0, len(o.bought))
	for sl := range o.bought {
		out = append(out, sl)
	}
	SortSetLeases(out)
	return out
}

// VerifyFeasible replays the instance stream against the final solution and
// checks every arrival is covered by the required number of distinct sets.
// In PerArrival scope distinctness is local to each arrival; in PerElement
// scope (repetitions) the units of all arrivals of an element must be
// matched to pairwise-distinct sets, which is verified with bipartite
// matching per element. It is the package's feasibility oracle, shared by
// tests and the experiment harness.
func VerifyFeasible(inst *Instance, bought []SetLease) error {
	owned := make(map[SetLease]struct{}, len(bought))
	for _, sl := range bought {
		owned[sl] = struct{}{}
	}
	coveredBy := func(e int, t int64) []int {
		var sets []int
		for _, s := range inst.Fam.Containing(e) {
			for k := 0; k < inst.Cfg.K(); k++ {
				sl := SetLease{Set: s, K: k, Start: inst.Cfg.AlignedStart(k, t)}
				if _, ok := owned[sl]; ok {
					sets = append(sets, s)
					break
				}
			}
		}
		return sets
	}

	if inst.Scope == PerArrival {
		for i, a := range inst.Arrivals {
			if got := len(coveredBy(a.Elem, a.T)); got < a.P {
				return fmt.Errorf("setcover: arrival %d (elem %d, t %d) covered by %d sets, need %d", i, a.Elem, a.T, got, a.P)
			}
		}
		return nil
	}

	// PerElement: per element, match demand units (arrival copies) to
	// distinct sets via augmenting paths.
	byElem := map[int][]int{} // element -> arrival indices
	for i, a := range inst.Arrivals {
		byElem[a.Elem] = append(byElem[a.Elem], i)
	}
	for e, idxs := range byElem {
		var units [][]int // candidate set list per demand unit
		for _, i := range idxs {
			a := inst.Arrivals[i]
			sets := coveredBy(e, a.T)
			for u := 0; u < a.P; u++ {
				units = append(units, sets)
			}
		}
		if !matchable(units) {
			return fmt.Errorf("setcover: element %d: %d demand units cannot be matched to distinct leased sets", e, len(units))
		}
	}
	return nil
}

// matchable runs Kuhn's augmenting-path bipartite matching: every unit must
// be assigned a distinct set from its candidate list.
func matchable(units [][]int) bool {
	setOwner := map[int]int{} // set -> unit index
	var try func(u int, visited map[int]bool) bool
	try = func(u int, visited map[int]bool) bool {
		for _, s := range units[u] {
			if visited[s] {
				continue
			}
			visited[s] = true
			owner, taken := setOwner[s]
			if !taken || try(owner, visited) {
				setOwner[s] = u
				return true
			}
		}
		return false
	}
	for u := range units {
		if !try(u, map[int]bool{}) {
			return false
		}
	}
	return true
}
