package setcover

import (
	"errors"
	"fmt"
	"math"

	"leasing/internal/ilp"
	"leasing/internal/lp"
)

// candidateTriples enumerates the aligned triples that can serve at least
// one arrival of the instance, deduplicated, in deterministic order.
func candidateTriples(inst *Instance) []SetLease {
	seen := map[SetLease]bool{}
	var out []SetLease
	for _, a := range inst.Arrivals {
		for _, s := range inst.Fam.Containing(a.Elem) {
			for k := 0; k < inst.Cfg.K(); k++ {
				sl := SetLease{Set: s, K: k, Start: inst.Cfg.AlignedStart(k, a.T)}
				if !seen[sl] {
					seen[sl] = true
					out = append(out, sl)
				}
			}
		}
	}
	return out
}

// Greedy computes an offline solution with the classical
// price-per-new-coverage greedy, generalized to leased multicover: each
// iteration buys the triple minimizing cost divided by the number of unmet
// demand units it newly serves (a triple serves at most one unit per
// arrival, and only if its set is not already serving that arrival, or —
// in PerElement scope — any arrival of that element). The result is an
// O(log)-approximate upper bound on OPT and the default incumbent for the
// exact solver.
func Greedy(inst *Instance) (float64, []SetLease, error) {
	type unitState struct {
		need int
		used map[int]bool // sets already serving this arrival
	}
	states := make([]unitState, len(inst.Arrivals))
	remaining := 0
	for i, a := range inst.Arrivals {
		states[i] = unitState{need: a.P, used: map[int]bool{}}
		remaining += a.P
	}
	usedByElem := map[int]map[int]bool{}
	elemUsed := func(e, s int) bool {
		if inst.Scope != PerElement {
			return false
		}
		return usedByElem[e][s]
	}

	cands := candidateTriples(inst)
	var sol []SetLease
	var total float64
	for remaining > 0 {
		bestIdx := -1
		bestPrice := math.Inf(1)
		for ci, c := range cands {
			served := 0
			for i, a := range inst.Arrivals {
				if states[i].need == 0 {
					continue
				}
				if !c.Covers(inst.Cfg, a.T) {
					continue
				}
				if states[i].used[c.Set] || elemUsed(a.Elem, c.Set) {
					continue
				}
				if !contains(inst.Fam.Set(c.Set), a.Elem) {
					continue
				}
				served++
			}
			if served == 0 {
				continue
			}
			price := inst.Costs[c.Set][c.K] / float64(served)
			if price < bestPrice {
				bestPrice, bestIdx = price, ci
			}
		}
		if bestIdx < 0 {
			return 0, nil, errors.New("setcover: greedy stuck (infeasible instance)")
		}
		c := cands[bestIdx]
		sol = append(sol, c)
		total += inst.Costs[c.Set][c.K]
		for i, a := range inst.Arrivals {
			if states[i].need == 0 {
				continue
			}
			if !c.Covers(inst.Cfg, a.T) || states[i].used[c.Set] || elemUsed(a.Elem, c.Set) {
				continue
			}
			if !contains(inst.Fam.Set(c.Set), a.Elem) {
				continue
			}
			states[i].need--
			states[i].used[c.Set] = true
			if inst.Scope == PerElement {
				if usedByElem[a.Elem] == nil {
					usedByElem[a.Elem] = map[int]bool{}
				}
				usedByElem[a.Elem][c.Set] = true
			}
			remaining--
		}
	}
	return total, sol, nil
}

// contains reports membership in a sorted int slice.
func contains(sorted []int, x int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case sorted[mid] < x:
			lo = mid + 1
		case sorted[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// OptimalResult is the outcome of the exact offline computation.
type OptimalResult struct {
	Cost float64
	// Exact is true when branch and bound proved optimality; when false,
	// Cost is the best upper bound found and Lower the proven lower bound.
	Exact bool
	Lower float64
}

// Optimal computes the exact offline optimum by branch and bound.
//
// The formulation has one binary variable x per candidate triple. Simple
// instances (all multiplicities 1, PerArrival scope) need only covering
// rows. Otherwise a continuous assignment variable z_{s,i} in [0,1] per
// (set, arrival) pair tracks whether set s serves arrival i:
//
//	z_{s,i} <= sum_k x_{(s,k,aligned(t_i))}      (availability)
//	sum_s z_{s,i} >= P_i                          (demand)
//	sum_{i in arrivals(e)} z_{s,i} <= 1           (PerElement distinctness)
//	z_{s,i} <= 1                                  (PerArrival distinctness)
//
// Given integral x the z-polytope is a bipartite b-matching polytope and
// hence integral, so branching on x alone is exact. nodeLimit <= 0 uses the
// solver default.
func Optimal(inst *Instance, nodeLimit int) (*OptimalResult, error) {
	if len(inst.Arrivals) == 0 {
		return &OptimalResult{Cost: 0, Exact: true}, nil
	}
	cands := candidateTriples(inst)
	candIdx := map[SetLease]int{}
	for i, c := range cands {
		candIdx[c] = i
	}

	simple := inst.Scope == PerArrival
	if simple {
		for _, a := range inst.Arrivals {
			if a.P > 1 {
				simple = false
				break
			}
		}
	}

	// Variable layout: triples first, then z counters.
	type zKey struct{ set, arrival int }
	zIdx := map[zKey]int{}
	next := len(cands)
	if !simple {
		for i, a := range inst.Arrivals {
			for _, s := range inst.Fam.Containing(a.Elem) {
				zIdx[zKey{set: s, arrival: i}] = next
				next++
			}
		}
	}

	costs := make([]float64, next)
	for i, c := range cands {
		costs[i] = inst.Costs[c.Set][c.K]
	}
	prob := ilp.NewBinaryMinimize(costs)
	for j := len(cands); j < next; j++ {
		if err := prob.SetContinuous(j); err != nil {
			return nil, err
		}
	}

	if simple {
		for _, a := range inst.Arrivals {
			row := map[int]float64{}
			for _, s := range inst.Fam.Containing(a.Elem) {
				for k := 0; k < inst.Cfg.K(); k++ {
					sl := SetLease{Set: s, K: k, Start: inst.Cfg.AlignedStart(k, a.T)}
					row[candIdx[sl]] = 1
				}
			}
			if err := prob.Add(row, lp.GE, 1); err != nil {
				return nil, err
			}
		}
	} else {
		for i, a := range inst.Arrivals {
			demand := map[int]float64{}
			for _, s := range inst.Fam.Containing(a.Elem) {
				z := zIdx[zKey{set: s, arrival: i}]
				demand[z] = 1
				avail := map[int]float64{z: -1}
				for k := 0; k < inst.Cfg.K(); k++ {
					sl := SetLease{Set: s, K: k, Start: inst.Cfg.AlignedStart(k, a.T)}
					avail[candIdx[sl]] = 1
				}
				if err := prob.Add(avail, lp.GE, 0); err != nil {
					return nil, err
				}
				if inst.Scope == PerArrival {
					if err := prob.Add(map[int]float64{z: 1}, lp.LE, 1); err != nil {
						return nil, err
					}
				}
			}
			if err := prob.Add(demand, lp.GE, float64(a.P)); err != nil {
				return nil, err
			}
		}
		if inst.Scope == PerElement {
			// Distinctness across arrivals of the same element.
			byElemSet := map[zKey][]int{} // (set, element) -> z vars
			for i, a := range inst.Arrivals {
				for _, s := range inst.Fam.Containing(a.Elem) {
					k := zKey{set: s, arrival: -a.Elem - 1} // group key by element
					byElemSet[k] = append(byElemSet[k], zIdx[zKey{set: s, arrival: i}])
				}
			}
			for _, zs := range byElemSet {
				row := map[int]float64{}
				for _, z := range zs {
					row[z] = 1
				}
				if err := prob.Add(row, lp.LE, 1); err != nil {
					return nil, err
				}
			}
		}
	}

	res, err := prob.Solve(ilp.Options{NodeLimit: nodeLimit})
	if err != nil {
		return nil, fmt.Errorf("setcover: offline ILP: %w", err)
	}
	return &OptimalResult{Cost: res.Objective, Exact: res.Proven, Lower: res.LowerBound}, nil
}

// LPLowerBound returns the LP-relaxation lower bound on OPT, usable for
// instances too large for exact branch and bound. Distinctness is relaxed
// (each arrival just needs fractional mass P), which keeps it a valid lower
// bound in both scopes.
func LPLowerBound(inst *Instance) (float64, error) {
	cands := candidateTriples(inst)
	candIdx := map[SetLease]int{}
	costs := make([]float64, len(cands))
	for i, c := range cands {
		candIdx[c] = i
		costs[i] = inst.Costs[c.Set][c.K]
	}
	prob := lp.NewMinimize(costs)
	for _, a := range inst.Arrivals {
		row := map[int]float64{}
		for _, s := range inst.Fam.Containing(a.Elem) {
			for k := 0; k < inst.Cfg.K(); k++ {
				sl := SetLease{Set: s, K: k, Start: inst.Cfg.AlignedStart(k, a.T)}
				row[candIdx[sl]] = 1
			}
		}
		if err := prob.Add(row, lp.GE, float64(a.P)); err != nil {
			return 0, err
		}
	}
	sol, err := prob.Solve()
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("setcover: LP relaxation status %v", sol.Status)
	}
	return sol.Objective, nil
}
