package setcover

import (
	"fmt"

	"leasing/internal/stream"
)

// Leaser adapts the set-multicover Online algorithm to the unified stream
// protocol. Items are set indices; every Element payload is delegated to
// the native Arrive and the purchase set is diffed into the decision.
type Leaser struct {
	alg      *Online
	seen     map[SetLease]struct{}
	lastCost float64
}

var _ stream.Leaser = (*Leaser)(nil)

// NewLeaser wraps a set-multicover algorithm as a stream.Leaser.
func NewLeaser(alg *Online) *Leaser {
	return &Leaser{alg: alg, seen: make(map[SetLease]struct{})}
}

// Observe implements stream.Leaser. It accepts Element payloads.
func (l *Leaser) Observe(ev stream.Event) (stream.Decision, error) {
	p, ok := ev.Payload.(stream.Element)
	if !ok {
		return stream.Decision{}, fmt.Errorf("setcover: unsupported payload %T", ev.Payload)
	}
	if err := l.alg.Arrive(ev.Time, p.Elem, p.P); err != nil {
		return stream.Decision{}, err
	}
	// A demand served by existing leases left the total bit-identical;
	// skip the O(L) purchase-set diff.
	if l.alg.TotalCost() == l.lastCost {
		return stream.Decision{}, nil
	}
	d := stream.Decision{Cost: l.alg.TotalCost() - l.lastCost}
	l.lastCost = l.alg.TotalCost()
	for sl := range l.alg.bought {
		if _, ok := l.seen[sl]; ok {
			continue
		}
		l.seen[sl] = struct{}{}
		d.Leases = append(d.Leases, stream.ItemLease{Item: sl.Set, K: sl.K, Start: sl.Start})
	}
	stream.SortItemLeases(d.Leases)
	return d, nil
}

// Cost implements stream.Leaser.
func (l *Leaser) Cost() stream.CostBreakdown {
	return stream.CostBreakdown{Lease: l.alg.TotalCost()}
}

// Snapshot implements stream.Leaser.
func (l *Leaser) Snapshot() stream.Solution {
	bought := l.alg.Bought()
	sol := stream.Solution{Leases: make([]stream.ItemLease, len(bought))}
	for i, sl := range bought {
		sol.Leases[i] = stream.ItemLease{Item: sl.Set, K: sl.K, Start: sl.Start}
	}
	stream.SortItemLeases(sol.Leases)
	return sol
}
