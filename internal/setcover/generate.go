package setcover

import (
	"fmt"
	"math/rand"

	"leasing/internal/lease"
	"leasing/internal/workload"
)

// RandomFamily builds a set system over n elements and m sets where every
// element belongs to exactly delta distinct sets (so δ is exact and any
// multiplicity p <= delta is feasible for every element). Requires
// delta <= m.
func RandomFamily(rng *rand.Rand, n, m, delta int) (*Family, error) {
	if delta < 1 || delta > m {
		return nil, fmt.Errorf("setcover: delta %d outside [1,%d]", delta, m)
	}
	members := make([][]int, m)
	for e := 0; e < n; e++ {
		perm := rng.Perm(m)
		for _, s := range perm[:delta] {
			members[s] = append(members[s], e)
		}
	}
	// Pad empty sets with one random element each so the family validates;
	// padding never lowers δ below delta because it only adds memberships.
	for s := range members {
		if len(members[s]) == 0 {
			members[s] = append(members[s], rng.Intn(n))
		}
	}
	return NewFamily(n, members)
}

// RandomCosts draws per-set, per-type costs around the configuration's type
// costs: cost[s][k] = cfg.Cost(k) * U[1, 1+spread). A spread of 0 makes all
// sets equally priced.
func RandomCosts(rng *rand.Rand, m int, cfg *lease.Config, spread float64) [][]float64 {
	if spread < 0 {
		spread = 0
	}
	out := make([][]float64, m)
	for s := range out {
		row := make([]float64, cfg.K())
		f := 1 + rng.Float64()*spread
		for k := range row {
			row[k] = cfg.Cost(k) * f
		}
		out[s] = row
	}
	return out
}

// RandomInstance assembles a full SetMulticoverLeasing instance: a random
// family with exact δ, Zipf-popular element arrivals over the horizon with
// per-day probability pArrive, and multiplicities uniform in [1, pMax].
func RandomInstance(rng *rand.Rand, cfg *lease.Config, n, m, delta int, horizon int64, pArrive float64, pMax int, costSpread float64) (*Instance, error) {
	fam, err := RandomFamily(rng, n, m, delta)
	if err != nil {
		return nil, err
	}
	if pMax < 1 {
		pMax = 1
	}
	if pMax > delta {
		pMax = delta
	}
	zipf, err := workload.NewZipf(rng, n, 1.4)
	if err != nil {
		return nil, err
	}
	arrivals := workload.ElementStream(rng, horizon, pArrive,
		zipf.Draw,
		func() int { return 1 + rng.Intn(pMax) },
	)
	costs := RandomCosts(rng, m, cfg, costSpread)
	return NewInstance(fam, cfg, costs, arrivals, PerArrival)
}

// RepetitionsInstance assembles an OnlineSetCoverWithRepetitions instance
// (Corollary 3.5): elements arrive repeatedly (each arrival with p=1), and
// every arrival must be served by a fresh set; repetitions per element are
// capped at delta to keep the instance feasible.
func RepetitionsInstance(rng *rand.Rand, cfg *lease.Config, n, m, delta int, horizon int64, pArrive float64) (*Instance, error) {
	fam, err := RandomFamily(rng, n, m, delta)
	if err != nil {
		return nil, err
	}
	count := make([]int, n)
	var arrivals []workload.ElementArrival
	for t := int64(0); t < horizon; t++ {
		if rng.Float64() >= pArrive {
			continue
		}
		e := rng.Intn(n)
		if count[e] >= delta {
			continue
		}
		count[e]++
		arrivals = append(arrivals, workload.ElementArrival{T: t, Elem: e, P: 1})
	}
	costs := RandomCosts(rng, m, cfg, 0.5)
	return NewInstance(fam, cfg, costs, arrivals, PerElement)
}

// NonLeasingInstance wraps a family and arrival stream in the degenerate
// K=1, l_1=∞ configuration, reducing SetMulticoverLeasing to classical
// OnlineSetMulticover (Corollary 3.4). Set s costs setCosts[s].
func NonLeasingInstance(fam *Family, setCosts []float64, arrivals []workload.ElementArrival, scope ExclusionScope) (*Instance, error) {
	horizon := int64(1)
	if len(arrivals) > 0 {
		horizon = arrivals[len(arrivals)-1].T + 1
	}
	cfg := lease.SingleTypeConfig(horizon, 1)
	if len(setCosts) != fam.M() {
		return nil, fmt.Errorf("setcover: %d set costs for %d sets", len(setCosts), fam.M())
	}
	costs := make([][]float64, fam.M())
	for s, c := range setCosts {
		costs[s] = []float64{c}
	}
	return NewInstance(fam, cfg, costs, arrivals, scope)
}
