// Package setcover implements Chapter 3 of the thesis: SetMulticoverLeasing
// and its special cases. Elements arrive over time, each demanding coverage
// by p distinct sets leased at its arrival time; sets are leased with one of
// K lease types at per-set, per-type costs c_Sk.
//
// The package provides the randomized online algorithm of Section 3.3
// (layered fractional increments with randomized rounding, Algorithms 3+4),
// the reductions to OnlineSetMulticover (K=1, l_1=∞; Corollary 3.4) and
// OnlineSetCoverWithRepetitions (Corollary 3.5), an offline greedy
// baseline, and an exact ILP optimum for small instances.
package setcover

import (
	"errors"
	"fmt"
	"sort"

	"leasing/internal/lease"
	"leasing/internal/workload"
)

// Family is a set system over the universe {0, ..., n-1}.
type Family struct {
	n          int
	sets       [][]int
	containing [][]int
	delta      int
	maxSize    int
}

// NewFamily validates the set system and builds the element->sets index.
// Every element of every set must be in [0, n); sets may not be empty.
func NewFamily(n int, sets [][]int) (*Family, error) {
	if n < 1 {
		return nil, fmt.Errorf("setcover: universe size %d < 1", n)
	}
	if len(sets) == 0 {
		return nil, errors.New("setcover: family needs at least one set")
	}
	f := &Family{
		n:          n,
		sets:       make([][]int, len(sets)),
		containing: make([][]int, n),
	}
	for si, s := range sets {
		if len(s) == 0 {
			return nil, fmt.Errorf("setcover: set %d is empty", si)
		}
		cp := make([]int, len(s))
		copy(cp, s)
		sort.Ints(cp)
		for i, e := range cp {
			if e < 0 || e >= n {
				return nil, fmt.Errorf("setcover: set %d contains element %d outside [0,%d)", si, e, n)
			}
			if i > 0 && cp[i-1] == e {
				return nil, fmt.Errorf("setcover: set %d contains element %d twice", si, e)
			}
			f.containing[e] = append(f.containing[e], si)
		}
		f.sets[si] = cp
		if len(cp) > f.maxSize {
			f.maxSize = len(cp)
		}
	}
	for _, c := range f.containing {
		if len(c) > f.delta {
			f.delta = len(c)
		}
	}
	return f, nil
}

// N returns the universe size.
func (f *Family) N() int { return f.n }

// M returns the number of sets.
func (f *Family) M() int { return len(f.sets) }

// Set returns the (sorted) elements of set s.
func (f *Family) Set(s int) []int { return f.sets[s] }

// Containing returns the indices of the sets containing element e.
func (f *Family) Containing(e int) []int { return f.containing[e] }

// Delta returns δ, the maximum number of sets any element belongs to.
func (f *Family) Delta() int { return f.delta }

// MaxSetSize returns Δ, the maximum set cardinality.
func (f *Family) MaxSetSize() int { return f.maxSize }

// ExclusionScope controls which previously used sets are off-limits when
// covering a new demand layer.
type ExclusionScope int

// Exclusion scopes.
const (
	// PerArrival is SetMulticoverLeasing: the p sets covering one arrival
	// must be distinct, but later arrivals of the same element start fresh.
	PerArrival ExclusionScope = iota + 1
	// PerElement is OnlineSetCoverWithRepetitions: every arrival of an
	// element must be covered by a set not used for any of its earlier
	// arrivals.
	PerElement
)

func (s ExclusionScope) String() string {
	switch s {
	case PerArrival:
		return "per-arrival"
	case PerElement:
		return "per-element"
	default:
		return fmt.Sprintf("ExclusionScope(%d)", int(s))
	}
}

// Instance bundles a set system, lease configuration, leasing costs and a
// demand stream.
type Instance struct {
	Fam   *Family
	Cfg   *lease.Config
	Costs [][]float64 // Costs[s][k] = c_Sk
	// Arrivals is the demand stream, sorted by time.
	Arrivals []workload.ElementArrival
	// Scope selects the multicover semantics (default PerArrival).
	Scope ExclusionScope
}

// NewInstance validates dimensions, stream order and feasibility (each
// arrival's multiplicity cannot exceed the number of sets containing the
// element; in PerElement scope the total number of arrivals per element is
// similarly bounded).
func NewInstance(fam *Family, cfg *lease.Config, costs [][]float64, arrivals []workload.ElementArrival, scope ExclusionScope) (*Instance, error) {
	if scope == 0 {
		scope = PerArrival
	}
	if scope != PerArrival && scope != PerElement {
		return nil, fmt.Errorf("setcover: unknown scope %v", scope)
	}
	if len(costs) != fam.M() {
		return nil, fmt.Errorf("setcover: %d cost rows for %d sets", len(costs), fam.M())
	}
	for s, row := range costs {
		if len(row) != cfg.K() {
			return nil, fmt.Errorf("setcover: cost row %d has %d entries, want %d", s, len(row), cfg.K())
		}
		for k, c := range row {
			if !(c > 0) {
				return nil, fmt.Errorf("setcover: cost[%d][%d] = %v, want > 0", s, k, c)
			}
		}
	}
	used := make(map[int]int) // element -> cumulative demand (PerElement)
	var lastT int64
	for i, a := range arrivals {
		if i > 0 && a.T < lastT {
			return nil, fmt.Errorf("setcover: arrival %d out of order", i)
		}
		lastT = a.T
		if a.Elem < 0 || a.Elem >= fam.N() {
			return nil, fmt.Errorf("setcover: arrival %d element %d outside universe", i, a.Elem)
		}
		if a.P < 1 {
			return nil, fmt.Errorf("setcover: arrival %d multiplicity %d < 1", i, a.P)
		}
		avail := len(fam.Containing(a.Elem))
		switch scope {
		case PerArrival:
			if a.P > avail {
				return nil, fmt.Errorf("setcover: arrival %d demands %d sets but element %d is in only %d", i, a.P, a.Elem, avail)
			}
		case PerElement:
			used[a.Elem] += a.P
			if used[a.Elem] > avail {
				return nil, fmt.Errorf("setcover: element %d accumulates demand %d but is in only %d sets", a.Elem, used[a.Elem], avail)
			}
		}
	}
	return &Instance{Fam: fam, Cfg: cfg, Costs: costs, Arrivals: arrivals, Scope: scope}, nil
}

// Horizon returns one past the last arrival time (0 for an empty stream).
func (in *Instance) Horizon() int64 {
	if len(in.Arrivals) == 0 {
		return 0
	}
	return in.Arrivals[len(in.Arrivals)-1].T + 1
}

// Candidates returns the candidate triples of a demand (element e at time
// t): for every set containing e and every lease type, the aligned lease
// covering t. Sets listed in exclude are skipped.
func (in *Instance) Candidates(e int, t int64, exclude map[int]bool) []SetLease {
	var out []SetLease
	for _, s := range in.Fam.Containing(e) {
		if exclude[s] {
			continue
		}
		for k := 0; k < in.Cfg.K(); k++ {
			out = append(out, SetLease{Set: s, K: k, Start: in.Cfg.AlignedStart(k, t)})
		}
	}
	return out
}

// SetLease is the triple (S, k, t): set Set leased with type K from Start.
type SetLease struct {
	Set   int
	K     int
	Start int64
}

// Covers reports whether the triple's window covers time t under cfg.
func (sl SetLease) Covers(cfg *lease.Config, t int64) bool {
	return sl.Start <= t && t < sl.Start+cfg.Length(sl.K)
}

// SortSetLeases orders triples by (set, type, start), the canonical
// order for solution output, so slices collected from the bought set
// are identical across runs.
func SortSetLeases(ls []SetLease) {
	sort.Slice(ls, func(i, j int) bool {
		a, b := ls[i], ls[j]
		if a.Set != b.Set {
			return a.Set < b.Set
		}
		if a.K != b.K {
			return a.K < b.K
		}
		return a.Start < b.Start
	})
}
