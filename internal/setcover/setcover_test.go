package setcover

import (
	"math"
	"math/rand"
	"testing"

	"leasing/internal/lease"
	"leasing/internal/workload"
)

func smallConfig() *lease.Config {
	return lease.MustConfig(
		lease.Type{Length: 2, Cost: 1},
		lease.Type{Length: 8, Cost: 2.5},
	)
}

func TestNewFamilyValidation(t *testing.T) {
	if _, err := NewFamily(0, [][]int{{0}}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewFamily(3, nil); err == nil {
		t.Error("empty family accepted")
	}
	if _, err := NewFamily(3, [][]int{{}}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewFamily(3, [][]int{{0, 3}}); err == nil {
		t.Error("out-of-range element accepted")
	}
	if _, err := NewFamily(3, [][]int{{1, 1}}); err == nil {
		t.Error("duplicate element accepted")
	}
}

func TestFamilyAccessors(t *testing.T) {
	fam, err := NewFamily(4, [][]int{{0, 1, 2}, {1, 3}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if fam.N() != 4 || fam.M() != 3 {
		t.Errorf("N,M = %d,%d want 4,3", fam.N(), fam.M())
	}
	if fam.Delta() != 3 { // element 1 is in all three sets
		t.Errorf("Delta = %d, want 3", fam.Delta())
	}
	if fam.MaxSetSize() != 3 {
		t.Errorf("MaxSetSize = %d, want 3", fam.MaxSetSize())
	}
	c := fam.Containing(1)
	if len(c) != 3 {
		t.Errorf("Containing(1) = %v", c)
	}
	if got := fam.Set(1); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Set(1) = %v, want [1 3]", got)
	}
}

func mustInstance(t *testing.T, fam *Family, cfg *lease.Config, costs [][]float64, arrivals []workload.ElementArrival, scope ExclusionScope) *Instance {
	t.Helper()
	inst, err := NewInstance(fam, cfg, costs, arrivals, scope)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNewInstanceValidation(t *testing.T) {
	fam, _ := NewFamily(2, [][]int{{0}, {0, 1}})
	cfg := smallConfig()
	good := [][]float64{{1, 2}, {1, 2}}
	if _, err := NewInstance(fam, cfg, [][]float64{{1, 2}}, nil, PerArrival); err == nil {
		t.Error("wrong cost rows accepted")
	}
	if _, err := NewInstance(fam, cfg, [][]float64{{1}, {1}}, nil, PerArrival); err == nil {
		t.Error("short cost row accepted")
	}
	if _, err := NewInstance(fam, cfg, [][]float64{{1, 0}, {1, 1}}, nil, PerArrival); err == nil {
		t.Error("zero cost accepted")
	}
	if _, err := NewInstance(fam, cfg, good, []workload.ElementArrival{{T: 5, Elem: 0, P: 1}, {T: 1, Elem: 0, P: 1}}, PerArrival); err == nil {
		t.Error("unsorted arrivals accepted")
	}
	if _, err := NewInstance(fam, cfg, good, []workload.ElementArrival{{T: 0, Elem: 7, P: 1}}, PerArrival); err == nil {
		t.Error("unknown element accepted")
	}
	if _, err := NewInstance(fam, cfg, good, []workload.ElementArrival{{T: 0, Elem: 1, P: 0}}, PerArrival); err == nil {
		t.Error("zero multiplicity accepted")
	}
	// Element 0 is in 2 sets: p=3 infeasible.
	if _, err := NewInstance(fam, cfg, good, []workload.ElementArrival{{T: 0, Elem: 0, P: 3}}, PerArrival); err == nil {
		t.Error("infeasible multiplicity accepted")
	}
	// PerElement: cumulative demand 3 > 2 sets.
	arr := []workload.ElementArrival{{T: 0, Elem: 0, P: 1}, {T: 1, Elem: 0, P: 1}, {T: 2, Elem: 0, P: 1}}
	if _, err := NewInstance(fam, cfg, good, arr, PerElement); err == nil {
		t.Error("PerElement cumulative overflow accepted")
	}
	if _, err := NewInstance(fam, cfg, good, nil, ExclusionScope(9)); err == nil {
		t.Error("unknown scope accepted")
	}
	// Scope zero defaults to PerArrival.
	inst, err := NewInstance(fam, cfg, good, nil, 0)
	if err != nil || inst.Scope != PerArrival {
		t.Errorf("default scope = %v, err %v", inst.Scope, err)
	}
}

func TestOnlineCoversSingleArrival(t *testing.T) {
	fam, _ := NewFamily(2, [][]int{{0, 1}, {1}})
	cfg := smallConfig()
	inst := mustInstance(t, fam, cfg, [][]float64{{1, 2.5}, {1, 2.5}},
		[]workload.ElementArrival{{T: 3, Elem: 1, P: 2}}, PerArrival)
	alg, err := NewOnline(inst, rand.New(rand.NewSource(1)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(inst, alg.Bought()); err != nil {
		t.Errorf("infeasible: %v", err)
	}
	if alg.TotalCost() <= 0 {
		t.Error("no cost accumulated")
	}
}

func TestOnlineFeasibleOnRandomInstances(t *testing.T) {
	cfg := smallConfig()
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst, err := RandomInstance(rng, cfg, 12, 8, 3, 48, 0.5, 2, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		alg, err := NewOnline(inst, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Run(); err != nil {
			t.Fatal(err)
		}
		if err := VerifyFeasible(inst, alg.Bought()); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if alg.FractionalCost() < 0 {
			t.Error("negative fractional cost")
		}
	}
}

func TestOnlineRejectsBadInput(t *testing.T) {
	fam, _ := NewFamily(2, [][]int{{0, 1}})
	cfg := smallConfig()
	inst := mustInstance(t, fam, cfg, [][]float64{{1, 2}}, nil, PerArrival)
	if _, err := NewOnline(inst, nil, Options{}); err == nil {
		t.Error("nil rng accepted")
	}
	alg, _ := NewOnline(inst, rand.New(rand.NewSource(1)), Options{})
	if err := alg.Arrive(0, 5, 1); err == nil {
		t.Error("unknown element accepted")
	}
	if err := alg.Arrive(0, 0, 0); err == nil {
		t.Error("zero multiplicity accepted")
	}
	if err := alg.Arrive(5, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := alg.Arrive(2, 0, 1); err == nil {
		t.Error("time regression accepted")
	}
	badCfg := lease.MustConfig(lease.Type{Length: 3, Cost: 1})
	badInst := &Instance{Fam: fam, Cfg: badCfg, Costs: [][]float64{{1}}, Scope: PerArrival}
	if _, err := NewOnline(badInst, rand.New(rand.NewSource(1)), Options{}); err == nil {
		t.Error("non-interval config accepted")
	}
}

func TestGreedyAndOptimalOnHandInstance(t *testing.T) {
	// Universe {0,1}; S0={0} cheap, S1={0,1} pricey, S2={1} cheap.
	// One arrival of each element at t=0; OPT should buy S1 once if it is
	// cheaper than S0+S2, else the two singletons.
	fam, _ := NewFamily(2, [][]int{{0}, {0, 1}, {1}})
	cfg := lease.MustConfig(lease.Type{Length: 4, Cost: 1})
	costs := [][]float64{{1}, {1.5}, {1}}
	arrivals := []workload.ElementArrival{{T: 0, Elem: 0, P: 1}, {T: 0, Elem: 1, P: 1}}
	inst := mustInstance(t, fam, cfg, costs, arrivals, PerArrival)

	opt, err := Optimal(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Exact || math.Abs(opt.Cost-1.5) > 1e-6 {
		t.Errorf("OPT = %+v, want exact 1.5 (S1)", opt)
	}
	gCost, gSol, err := Greedy(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(inst, gSol); err != nil {
		t.Errorf("greedy infeasible: %v", err)
	}
	if gCost < opt.Cost-1e-9 {
		t.Errorf("greedy %v below OPT %v", gCost, opt.Cost)
	}
	lpLB, err := LPLowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	if lpLB > opt.Cost+1e-6 {
		t.Errorf("LP bound %v above OPT %v", lpLB, opt.Cost)
	}
}

func TestMulticoverOptimalCountsDistinctSets(t *testing.T) {
	// Element 0 in three sets; arrival demands p=2: OPT must lease the two
	// cheapest DISTINCT sets, not one set twice.
	fam, _ := NewFamily(1, [][]int{{0}, {0}, {0}})
	cfg := lease.MustConfig(lease.Type{Length: 4, Cost: 1})
	costs := [][]float64{{1}, {2}, {5}}
	arrivals := []workload.ElementArrival{{T: 0, Elem: 0, P: 2}}
	inst := mustInstance(t, fam, cfg, costs, arrivals, PerArrival)
	opt, err := Optimal(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Exact || math.Abs(opt.Cost-3) > 1e-6 {
		t.Errorf("OPT = %+v, want exact 3 (sets 0 and 1)", opt)
	}
}

func TestRepetitionsOptimalForcesFreshSets(t *testing.T) {
	// Element 0 in two sets, arriving twice far apart. A single long lease
	// of one set covers both times but repetitions demand distinct sets, so
	// OPT leases both sets.
	fam, _ := NewFamily(1, [][]int{{0}, {0}})
	cfg := lease.MustConfig(lease.Type{Length: 16, Cost: 2})
	costs := [][]float64{{2}, {3}}
	arrivals := []workload.ElementArrival{{T: 0, Elem: 0, P: 1}, {T: 1, Elem: 0, P: 1}}

	instRep := mustInstance(t, fam, cfg, costs, arrivals, PerElement)
	optRep, err := Optimal(instRep, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !optRep.Exact || math.Abs(optRep.Cost-5) > 1e-6 {
		t.Errorf("repetitions OPT = %+v, want exact 5", optRep)
	}

	instPlain := mustInstance(t, fam, cfg, costs, arrivals, PerArrival)
	optPlain, err := Optimal(instPlain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !optPlain.Exact || math.Abs(optPlain.Cost-2) > 1e-6 {
		t.Errorf("plain OPT = %+v, want exact 2 (one lease covers both)", optPlain)
	}
}

func TestOnlineAboveOptimalAndGreedyAboveOptimal(t *testing.T) {
	cfg := smallConfig()
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst, err := RandomInstance(rng, cfg, 8, 6, 2, 24, 0.4, 2, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(inst.Arrivals) == 0 {
			continue
		}
		opt, err := Optimal(inst, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Exact {
			t.Fatalf("seed %d: OPT not proven", seed)
		}
		alg, err := NewOnline(inst, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Run(); err != nil {
			t.Fatal(err)
		}
		if alg.TotalCost() < opt.Cost-1e-6 {
			t.Errorf("seed %d: online %v below OPT %v", seed, alg.TotalCost(), opt.Cost)
		}
		gCost, gSol, err := Greedy(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyFeasible(inst, gSol); err != nil {
			t.Errorf("seed %d greedy infeasible: %v", seed, err)
		}
		if gCost < opt.Cost-1e-6 {
			t.Errorf("seed %d: greedy %v below OPT %v", seed, gCost, opt.Cost)
		}
		lb, err := LPLowerBound(inst)
		if err != nil {
			t.Fatal(err)
		}
		if lb > opt.Cost+1e-6 {
			t.Errorf("seed %d: LP bound %v above OPT %v", seed, lb, opt.Cost)
		}
	}
}

func TestRepetitionsOnlineFeasible(t *testing.T) {
	cfg := smallConfig()
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst, err := RepetitionsInstance(rng, cfg, 6, 8, 4, 40, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		alg, err := NewOnline(inst, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Run(); err != nil {
			t.Fatal(err)
		}
		if err := VerifyFeasible(inst, alg.Bought()); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestNonLeasingReduction(t *testing.T) {
	fam, _ := NewFamily(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	arrivals := []workload.ElementArrival{
		{T: 0, Elem: 0, P: 1}, {T: 50, Elem: 1, P: 2}, {T: 900, Elem: 2, P: 1},
	}
	inst, err := NonLeasingInstance(fam, []float64{1, 2, 3}, arrivals, PerArrival)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Cfg.K() != 1 {
		t.Fatalf("K = %d, want 1", inst.Cfg.K())
	}
	if inst.Cfg.LMax() < 901 {
		t.Fatalf("l_1 = %d does not span the horizon", inst.Cfg.LMax())
	}
	alg, err := NewOnline(inst, rand.New(rand.NewSource(2)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(inst, alg.Bought()); err != nil {
		t.Errorf("infeasible: %v", err)
	}
	// With a single infinite lease type, a bought set stays usable: total
	// cost is at most the sum of all set costs.
	if alg.TotalCost() > 6+1e-9 {
		t.Errorf("cost %v exceeds family total 6", alg.TotalCost())
	}
	if _, err := NonLeasingInstance(fam, []float64{1}, arrivals, PerArrival); err == nil {
		t.Error("wrong-length costs accepted")
	}
}

func TestRandomFamilyExactDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fam, err := RandomFamily(rng, 20, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < fam.N(); e++ {
		if got := len(fam.Containing(e)); got != 4 {
			t.Errorf("element %d in %d sets, want exactly 4", e, got)
		}
	}
	if fam.Delta() != 4 {
		t.Errorf("Delta = %d, want 4", fam.Delta())
	}
	if _, err := RandomFamily(rng, 5, 3, 4); err == nil {
		t.Error("delta > m accepted")
	}
}

func TestCandidatesExcludes(t *testing.T) {
	fam, _ := NewFamily(2, [][]int{{0, 1}, {1}})
	cfg := smallConfig()
	inst := mustInstance(t, fam, cfg, [][]float64{{1, 2}, {1, 2}}, nil, PerArrival)
	all := inst.Candidates(1, 5, nil)
	if len(all) != 4 { // 2 sets x 2 types
		t.Fatalf("candidates = %d, want 4", len(all))
	}
	some := inst.Candidates(1, 5, map[int]bool{0: true})
	if len(some) != 2 {
		t.Fatalf("candidates with exclusion = %d, want 2", len(some))
	}
	for _, c := range some {
		if c.Set != 1 {
			t.Errorf("excluded set appeared: %+v", c)
		}
		if !c.Covers(cfg, 5) {
			t.Errorf("candidate %+v does not cover t=5", c)
		}
	}
}

func TestScopeString(t *testing.T) {
	if PerArrival.String() != "per-arrival" || PerElement.String() != "per-element" {
		t.Error("scope strings wrong")
	}
	if ExclusionScope(9).String() == "" {
		t.Error("unknown scope string empty")
	}
}

func TestRoundingDrawsAblationKnob(t *testing.T) {
	fam, _ := NewFamily(4, [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	cfg := smallConfig()
	arrivals := []workload.ElementArrival{{T: 0, Elem: 0, P: 1}, {T: 4, Elem: 2, P: 1}}
	inst := mustInstance(t, fam, cfg, RandomCosts(rand.New(rand.NewSource(1)), 4, cfg, 0), arrivals, PerArrival)
	for _, draws := range []int{1, 4, 16} {
		alg, err := NewOnline(inst, rand.New(rand.NewSource(9)), Options{RoundingDraws: draws})
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Run(); err != nil {
			t.Fatal(err)
		}
		if err := VerifyFeasible(inst, alg.Bought()); err != nil {
			t.Errorf("draws=%d: %v", draws, err)
		}
	}
}
