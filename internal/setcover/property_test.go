package setcover

import (
	"testing"
	"testing/quick"
)

// bruteMatchable answers the matching feasibility question by exhaustive
// assignment for tiny unit lists, the oracle for Kuhn's algorithm.
func bruteMatchable(units [][]int) bool {
	var rec func(u int, used map[int]bool) bool
	rec = func(u int, used map[int]bool) bool {
		if u == len(units) {
			return true
		}
		for _, s := range units[u] {
			if used[s] {
				continue
			}
			used[s] = true
			if rec(u+1, used) {
				return true
			}
			delete(used, s)
		}
		return false
	}
	return rec(0, map[int]bool{})
}

// Property: the augmenting-path matcher agrees with brute force on every
// small bipartite instance.
func TestQuickMatchableAgreesWithBruteForce(t *testing.T) {
	f := func(raw [5]uint8, nUnits uint8) bool {
		n := int(nUnits%5) + 1
		units := make([][]int, 0, n)
		for u := 0; u < n; u++ {
			var cands []int
			for s := 0; s < 5; s++ {
				if raw[u]&(1<<s) != 0 {
					cands = append(cands, s)
				}
			}
			units = append(units, cands)
		}
		return matchable(units) == bruteMatchable(units)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: family construction is consistent — every element's containing
// list inverts the set membership relation exactly.
func TestQuickFamilyContainingInvertsSets(t *testing.T) {
	f := func(raw [6]uint8) bool {
		const n = 8
		sets := make([][]int, 0, len(raw))
		for _, bits := range raw {
			var s []int
			for e := 0; e < n; e++ {
				if bits&(1<<e) != 0 {
					s = append(s, e)
				}
			}
			if len(s) > 0 {
				sets = append(sets, s)
			}
		}
		if len(sets) == 0 {
			return true
		}
		fam, err := NewFamily(n, sets)
		if err != nil {
			return false
		}
		for e := 0; e < n; e++ {
			for _, si := range fam.Containing(e) {
				if !contains(fam.Set(si), e) {
					return false
				}
			}
			// Count cross-check.
			count := 0
			for si := range sets {
				if contains(fam.Set(si), e) {
					count++
				}
			}
			if count != len(fam.Containing(e)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
