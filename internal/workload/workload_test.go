package workload

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func sortedDistinct(t *testing.T, days []int64) {
	t.Helper()
	for i := 1; i < len(days); i++ {
		if days[i] <= days[i-1] {
			t.Fatalf("days not sorted distinct at %d: %v <= %v", i, days[i], days[i-1])
		}
	}
}

func TestDemandDays(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	days := DemandDays(rng, 1000, 0.3)
	sortedDistinct(t, days)
	for _, d := range days {
		if d < 0 || d >= 1000 {
			t.Fatalf("day %d out of range", d)
		}
	}
	// Expectation 300, tolerate ±100.
	if len(days) < 200 || len(days) > 400 {
		t.Errorf("got %d days, want roughly 300", len(days))
	}
	if got := DemandDays(rng, 100, 0); len(got) != 0 {
		t.Errorf("p=0 produced %d days", len(got))
	}
	if got := DemandDays(rng, 100, 1); len(got) != 100 {
		t.Errorf("p=1 produced %d days, want 100", len(got))
	}
}

func TestBurstyDays(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	days := BurstyDays(rng, 2000, 0.95)
	sortedDistinct(t, days)
	if len(days) == 0 || len(days) == 2000 {
		t.Fatalf("degenerate bursty stream: %d days", len(days))
	}
	// Bursty streams should have long runs: mean run length >> 1.
	runs, runLen := 0, 0
	prev := int64(-10)
	for _, d := range days {
		if d != prev+1 {
			runs++
		}
		runLen++
		prev = d
	}
	if runs == 0 {
		t.Fatal("no runs")
	}
	if mean := float64(runLen) / float64(runs); mean < 3 {
		t.Errorf("mean run length %.1f, want >= 3 for stay=0.95", mean)
	}
}

func TestSeasonalDays(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	days := SeasonalDays(rng, 4000, 100, 0.05, 0.95)
	sortedDistinct(t, days)
	if len(days) < 1000 || len(days) > 3000 {
		t.Errorf("seasonal stream has %d days, want mid-range density", len(days))
	}
	// Period clamp must not panic.
	_ = SeasonalDays(rng, 10, 0, 0.5, 0.5)
}

func TestEveryDay(t *testing.T) {
	days := EveryDay(5)
	if len(days) != 5 || days[0] != 0 || days[4] != 4 {
		t.Errorf("EveryDay(5) = %v", days)
	}
}

func TestZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z, err := NewZipf(rng, 100, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf drew %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	if _, err := NewZipf(rng, 0, 2); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(rng, 10, 1.0); err == nil {
		t.Error("s=1 accepted")
	}
}

func TestBatchSizes(t *testing.T) {
	for _, p := range []ArrivalPattern{PatternConstant, PatternNonIncreasing, PatternPolynomial, PatternExponential} {
		t.Run(p.String(), func(t *testing.T) {
			sizes, err := BatchSizes(p, 16, 1, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if len(sizes) != 16 {
				t.Fatalf("len = %d", len(sizes))
			}
			for i, s := range sizes {
				if s < 1 || s > 1000 {
					t.Errorf("size[%d] = %d out of [1,1000]", i, s)
				}
			}
		})
	}
	t.Run("shape", func(t *testing.T) {
		cst, _ := BatchSizes(PatternConstant, 8, 3, 100)
		for _, s := range cst {
			if s != 3 {
				t.Errorf("constant pattern gave %v", cst)
				break
			}
		}
		ni, _ := BatchSizes(PatternNonIncreasing, 8, 1, 100)
		if !sort.SliceIsSorted(ni, func(i, j int) bool { return ni[i] > ni[j] }) {
			t.Errorf("non-increasing pattern gave %v", ni)
		}
		exp, _ := BatchSizes(PatternExponential, 8, 1, 1<<20)
		for i := 1; i < len(exp); i++ {
			if exp[i] != 2*exp[i-1] {
				t.Errorf("exponential pattern gave %v", exp)
				break
			}
		}
	})
	if _, err := BatchSizes(PatternConstant, 0, 1, 1); err == nil {
		t.Error("steps=0 accepted")
	}
	if _, err := BatchSizes(ArrivalPattern(77), 4, 1, 1); err == nil {
		t.Error("unknown pattern accepted")
	}
	if ArrivalPattern(77).String() == "" {
		t.Error("unknown pattern String empty")
	}
}

func TestHSeries(t *testing.T) {
	// Constant batches of size c: H_q = sum 1/i = harmonic number.
	batch := []int{1, 1, 1, 1}
	want := 1.0 + 0.5 + 1.0/3 + 0.25
	if got := HSeries(batch); math.Abs(got-want) > 1e-12 {
		t.Errorf("HSeries(1,1,1,1) = %v, want %v", got, want)
	}
	// Exponential batches 2^i: each term ~ 1/2 ... H_q = Θ(q).
	exp := []int{1, 2, 4, 8, 16, 32}
	if got := HSeries(exp); got < 2.5 {
		t.Errorf("HSeries(exponential) = %v, want > 2.5 (Θ(q) growth)", got)
	}
	// Zero batches contribute nothing.
	if got := HSeries([]int{0, 0, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("HSeries(0,0,5) = %v, want 1", got)
	}
	if got := HSeries(nil); got != 0 {
		t.Errorf("HSeries(nil) = %v, want 0", got)
	}
}

func TestDeadlineStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cs := DeadlineStream(rng, 500, 0.4, 10)
	for i, c := range cs {
		if c.D < 0 || c.D > 10 {
			t.Fatalf("client %d slack %d out of [0,10]", i, c.D)
		}
		if i > 0 && c.T < cs[i-1].T {
			t.Fatalf("clients not sorted at %d", i)
		}
	}
	uni := UniformDeadlineStream(rng, 500, 0.4, 7)
	for _, c := range uni {
		if c.D != 7 {
			t.Fatalf("uniform stream has slack %d, want 7", c.D)
		}
	}
	zero := DeadlineStream(rng, 100, 1, 0)
	for _, c := range zero {
		if c.D != 0 {
			t.Fatal("dmax=0 must give slack 0")
		}
	}
}

func TestElementStream(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pick := func() int { return rng.Intn(20) }
	mult := func() int { return 1 + rng.Intn(3) }
	es := ElementStream(rng, 300, 0.5, pick, mult)
	if len(es) == 0 {
		t.Fatal("empty stream")
	}
	for i, a := range es {
		if a.Elem < 0 || a.Elem >= 20 || a.P < 1 || a.P > 3 {
			t.Fatalf("arrival %d invalid: %+v", i, a)
		}
		if i > 0 && a.T < es[i-1].T {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestMergeSortedDays(t *testing.T) {
	got := MergeSortedDays([]int64{1, 3, 5}, []int64{2, 3, 6})
	want := []int64{1, 2, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("MergeSortedDays = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeSortedDays = %v, want %v", got, want)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tests := []*Trace{
		{Kind: KindDays, Days: []int64{0, 3, 9}},
		{Kind: KindDeadline, Deadline: []DeadlineClient{{T: 0, D: 5}, {T: 2, D: 0}}},
		{Kind: KindElements, Elements: []ElementArrival{{T: 0, Elem: 1, P: 2}, {T: 4, Elem: 0, P: 1}}},
	}
	for _, tr := range tests {
		t.Run(tr.Kind, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteTrace(&buf, tr); err != nil {
				t.Fatal(err)
			}
			got, err := ReadTrace(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != tr.Kind {
				t.Errorf("kind = %q, want %q", got.Kind, tr.Kind)
			}
			if len(got.Days) != len(tr.Days) || len(got.Deadline) != len(tr.Deadline) || len(got.Elements) != len(tr.Elements) {
				t.Errorf("payload lengths changed: %+v vs %+v", got, tr)
			}
		})
	}
}

func TestTraceValidation(t *testing.T) {
	bad := []*Trace{
		{Kind: "bogus"},
		{Kind: KindDays, Days: []int64{5, 3}},
		{Kind: KindDeadline, Deadline: []DeadlineClient{{T: 0, D: -1}}},
		{Kind: KindDeadline, Deadline: []DeadlineClient{{T: 5}, {T: 1}}},
		{Kind: KindElements, Elements: []ElementArrival{{T: 0, Elem: 0, P: 0}}},
		{Kind: KindElements, Elements: []ElementArrival{{T: 0, Elem: -1, P: 1}}},
		{Kind: KindElements, Elements: []ElementArrival{{T: 3, Elem: 0, P: 1}, {T: 1, Elem: 0, P: 1}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d validated", i)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err == nil {
			t.Errorf("bad trace %d written", i)
		}
	}
	if _, err := ReadTrace(strings.NewReader("{not json")); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := ReadTrace(strings.NewReader(`{"kind":"bogus"}`)); err == nil {
		t.Error("bad kind decoded")
	}
}
