package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// arrivalUnderTest builds every named process at a common mean rate, the
// sweep the property tests run over.
func arrivalUnderTest(t *testing.T, name string) Arrival {
	t.Helper()
	a, err := NewArrival(name, 0.4, 48)
	if err != nil {
		t.Fatalf("NewArrival(%q): %v", name, err)
	}
	return a
}

var arrivalNames = []string{"constant", "diurnal", "bursty"}

// TestArrivalSeededDeterminism: the same seed must yield byte-identical
// day streams, run after run — the property every committed BENCH_*.json
// and every parity check leans on.
func TestArrivalSeededDeterminism(t *testing.T) {
	const horizon = 4096
	for _, name := range arrivalNames {
		for seed := int64(1); seed <= 20; seed++ {
			a1 := arrivalUnderTest(t, name)
			a2 := arrivalUnderTest(t, name)
			d1 := ArrivalDays(rand.New(rand.NewSource(seed)), horizon, a1)
			d2 := ArrivalDays(rand.New(rand.NewSource(seed)), horizon, a2)
			if !reflect.DeepEqual(d1, d2) {
				t.Fatalf("%s seed %d: two generations differ (%d vs %d days)", name, seed, len(d1), len(d2))
			}
		}
	}
}

// TestArrivalSeedsDiffer: distinct seeds must not collapse onto one
// stream (a trivially-deterministic constant generator would pass the
// determinism test; this one catches it).
func TestArrivalSeedsDiffer(t *testing.T) {
	const horizon = 4096
	for _, name := range arrivalNames {
		d1 := ArrivalDays(rand.New(rand.NewSource(1)), horizon, arrivalUnderTest(t, name))
		d2 := ArrivalDays(rand.New(rand.NewSource(2)), horizon, arrivalUnderTest(t, name))
		if reflect.DeepEqual(d1, d2) {
			t.Errorf("%s: seeds 1 and 2 generated identical streams", name)
		}
	}
}

// TestArrivalRateConservation: over many seeds, the empirical arrival
// rate must sit within a few standard errors of MeanRate — the processes
// may reshape traffic in time but must conserve its volume.
func TestArrivalRateConservation(t *testing.T) {
	const (
		horizon = 2048
		seeds   = 40
	)
	for _, name := range arrivalNames {
		var total float64
		for seed := int64(0); seed < seeds; seed++ {
			a := arrivalUnderTest(t, name)
			days := ArrivalDays(rand.New(rand.NewSource(seed)), horizon, a)
			total += float64(len(days))
		}
		got := total / (seeds * horizon)
		want := arrivalUnderTest(t, name).MeanRate(horizon)
		// Bernoulli steps give se ~ sqrt(p(1-p)/n) ~ 0.0017 here; the
		// bursty chain's correlated runs inflate the variance by the mean
		// run length, so the tolerance is generous but still damning for
		// any systematic rate distortion.
		if tol := 0.03; math.Abs(got-want) > tol {
			t.Errorf("%s: empirical rate %.4f, want %.4f +/- %v", name, got, want, tol)
		}
	}
}

// TestArrivalStepsStayOrdered: ArrivalDays must return sorted distinct
// days for every process (the contract DayEvents and the domain stream
// builders assume).
func TestArrivalStepsStayOrdered(t *testing.T) {
	for _, name := range arrivalNames {
		days := ArrivalDays(rand.New(rand.NewSource(7)), 2048, arrivalUnderTest(t, name))
		for i := 1; i < len(days); i++ {
			if days[i] <= days[i-1] {
				t.Fatalf("%s: days[%d]=%d <= days[%d]=%d", name, i, days[i], i-1, days[i-1])
			}
		}
	}
}

// TestBurstyRuns: the bursty process must actually burst — its mean
// on-run length must sit near the configured 10 steps, far from the
// geometric(0.4) runs a Bernoulli process of equal rate produces.
func TestBurstyRuns(t *testing.T) {
	const horizon = 200000
	a := arrivalUnderTest(t, "bursty")
	days := ArrivalDays(rand.New(rand.NewSource(3)), horizon, a)
	runs, length := 0, 0
	var prev int64 = -2
	for _, d := range days {
		if d != prev+1 {
			runs++
		}
		length++
		prev = d
	}
	if runs == 0 {
		t.Fatal("no runs at all")
	}
	mean := float64(length) / float64(runs)
	if mean < 5 || mean > 20 {
		t.Errorf("mean on-run length %.1f, want near 10 (bursty), not near 1.7 (bernoulli)", mean)
	}
}

// TestDiurnalOscillates: the diurnal process must be denser at the peak
// half of the cycle than at the trough half — a constant process of the
// same mean would split 50/50.
func TestDiurnalOscillates(t *testing.T) {
	a, err := NewDiurnal(0.4, 0.36, 48)
	if err != nil {
		t.Fatal(err)
	}
	days := ArrivalDays(rand.New(rand.NewSource(5)), 48*400, a)
	peak := 0
	for _, d := range days {
		if d%48 < 24 { // sin positive on the first half of the period
			peak++
		}
	}
	frac := float64(peak) / float64(len(days))
	if frac < 0.6 {
		t.Errorf("peak-half fraction %.3f, want > 0.6 (process does not oscillate)", frac)
	}
}

// TestZipfSizesShape: the rank-size law must hold — sizes sum exactly
// to the total, are non-increasing in rank, and the head/tail ratio
// tracks the exponent.
func TestZipfSizesShape(t *testing.T) {
	const n, total = 64, 64 * 500
	sizes, err := ZipfSizes(n, 1.2, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != n {
		t.Fatalf("got %d sizes, want %d", len(sizes), n)
	}
	sum := 0
	for r, sz := range sizes {
		if sz < 1 {
			t.Fatalf("rank %d has size %d < 1", r, sz)
		}
		if r > 0 && sz > sizes[r-1] {
			t.Fatalf("sizes not non-increasing at rank %d: %d > %d", r, sz, sizes[r-1])
		}
		sum += sz
	}
	if sum != total {
		t.Fatalf("sizes sum to %d, want exactly %d", sum, total)
	}
	// Rank-size law: size(r) ~ r^-s, so size(0)/size(15) ~ 16^1.2 ~ 28.
	ratio := float64(sizes[0]) / float64(sizes[15])
	if want := math.Pow(16, 1.2); ratio < want*0.5 || ratio > want*2 {
		t.Errorf("head/rank-15 ratio %.1f, want within 2x of %.1f", ratio, want)
	}
	// The even split degenerate case.
	flat, err := ZipfSizes(8, 0, 80)
	if err != nil {
		t.Fatal(err)
	}
	for r, sz := range flat {
		if sz != 10 {
			t.Fatalf("s=0 rank %d has size %d, want an even 10", r, sz)
		}
	}
}

// TestZipfSizesRejectsBadInput: the constructor guards its domain.
func TestZipfSizesRejectsBadInput(t *testing.T) {
	for _, c := range []struct{ n, total int }{{0, 10}, {5, 4}} {
		if _, err := ZipfSizes(c.n, 1, c.total); err == nil {
			t.Errorf("ZipfSizes(%d, 1, %d) accepted", c.n, c.total)
		}
	}
	if _, err := ZipfSizes(4, -1, 40); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := NewArrival("poisson", 0.5, 48); err == nil {
		t.Error("unknown process name accepted")
	}
	if _, err := NewConstant(1.5); err == nil {
		t.Error("constant p > 1 accepted")
	}
	if _, err := NewBursty(1, 0.5); err == nil {
		t.Error("bursty stay = 1 accepted")
	}
	if _, err := NewDiurnal(0.5, 0.2, 0); err == nil {
		t.Error("diurnal period 0 accepted")
	}
}
