package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Trace is a serializable request stream, the interchange format of the
// cmd/leasegen and cmd/leasesim tools. Exactly one of the payload slices is
// populated, matching Kind.
type Trace struct {
	// Kind is one of "days", "deadline", or "elements".
	Kind string `json:"kind"`
	// Days is a sorted demand-day stream (parking permit).
	Days []int64 `json:"days,omitempty"`
	// Deadline is a deadline-client stream (Chapter 5).
	Deadline []DeadlineClient `json:"deadline,omitempty"`
	// Elements is an element-arrival stream (Chapter 3).
	Elements []ElementArrival `json:"elements,omitempty"`
}

// Trace kinds.
const (
	KindDays     = "days"
	KindDeadline = "deadline"
	KindElements = "elements"
)

// Validate checks internal consistency: known kind, the matching payload
// populated, and times non-decreasing.
func (tr *Trace) Validate() error {
	switch tr.Kind {
	case KindDays:
		for i := 1; i < len(tr.Days); i++ {
			if tr.Days[i] < tr.Days[i-1] {
				return fmt.Errorf("workload: days not sorted at %d", i)
			}
		}
	case KindDeadline:
		for i, c := range tr.Deadline {
			if c.D < 0 {
				return fmt.Errorf("workload: deadline client %d has negative slack", i)
			}
			if i > 0 && c.T < tr.Deadline[i-1].T {
				return fmt.Errorf("workload: deadline clients not sorted at %d", i)
			}
		}
	case KindElements:
		for i, a := range tr.Elements {
			if a.P < 1 {
				return fmt.Errorf("workload: element arrival %d has multiplicity %d < 1", i, a.P)
			}
			if a.Elem < 0 {
				return fmt.Errorf("workload: element arrival %d has negative element", i)
			}
			if i > 0 && a.T < tr.Elements[i-1].T {
				return fmt.Errorf("workload: element arrivals not sorted at %d", i)
			}
		}
	default:
		return fmt.Errorf("workload: unknown trace kind %q", tr.Kind)
	}
	return nil
}

// WriteTrace encodes the trace as a single JSON object (one line).
func WriteTrace(w io.Writer, tr *Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(tr); err != nil {
		return fmt.Errorf("workload: encode trace: %w", err)
	}
	return nil
}

// ReadTrace decodes a trace written by WriteTrace and validates it.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var tr Trace
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}
