// Package workload generates the synthetic request streams the experiments
// drive the online algorithms with. The thesis analyses worst-case streams;
// the generators here cover both the literal adversarial constructions
// (implemented next to each algorithm) and the "natural" stochastic
// patterns the thesis refers to — uniform demand, bursts, seasonality,
// Zipf-popular resources, and the arrival-count patterns of Corollary 4.7
// (constant, non-increasing, polynomially bounded, exponential).
//
// All generators take an explicit *rand.Rand so experiments are
// reproducible seed-for-seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// DemandDays returns sorted distinct demand days in [0, horizon) where each
// day independently carries demand with probability p (the "rainy day"
// stream of the parking permit problem).
func DemandDays(rng *rand.Rand, horizon int64, p float64) []int64 {
	// Delegates to the arrival-process form; Constant{P: p} draws the
	// rng once per step, exactly as the inline gate did.
	return ArrivalDays(rng, horizon, &Constant{P: p})
}

// BurstyDays returns sorted distinct demand days from a two-state Markov
// chain: in the "on" state a day carries demand, and the chain stays in its
// state with probability stay (per day). Long on-runs reward long leases,
// long off-runs punish them — the tension the leasing model is about.
func BurstyDays(rng *rand.Rand, horizon int64, stay float64) []int64 {
	var out []int64
	on := rng.Float64() < 0.5
	for t := int64(0); t < horizon; t++ {
		if on {
			out = append(out, t)
		}
		if rng.Float64() >= stay {
			on = !on
		}
	}
	return out
}

// SeasonalDays returns demand days where the demand probability oscillates
// sinusoidally between lo and hi with the given period, modelling seasonal
// markets (the thesis' truck subcontractor).
func SeasonalDays(rng *rand.Rand, horizon, period int64, lo, hi float64) []int64 {
	if period < 1 {
		period = 1
	}
	var out []int64
	for t := int64(0); t < horizon; t++ {
		phase := 2 * math.Pi * float64(t%period) / float64(period)
		p := lo + (hi-lo)*(0.5+0.5*math.Sin(phase))
		if rng.Float64() < p {
			out = append(out, t)
		}
	}
	return out
}

// EveryDay returns all days in [0, horizon).
func EveryDay(horizon int64) []int64 {
	out := make([]int64, horizon)
	for t := range out {
		out[t] = int64(t)
	}
	return out
}

// Zipf draws values in [0, n) with a Zipf(s) popularity distribution,
// used for element popularity in the set cover streams. s > 1.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf creates a Zipf sampler over [0, n) with exponent s (> 1).
func NewZipf(rng *rand.Rand, n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf needs n >= 1, got %d", n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf needs s > 1, got %v", s)
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}, nil
}

// Draw samples one value.
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// ArrivalPattern names the client-arrival-count patterns of Corollary 4.7
// and the conjectured hard pattern of Section 4.4.
type ArrivalPattern int

// Arrival patterns for batch streams.
const (
	// PatternConstant has the same number of arrivals every step.
	PatternConstant ArrivalPattern = iota + 1
	// PatternNonIncreasing starts high and decays.
	PatternNonIncreasing
	// PatternPolynomial grows polynomially in the step index.
	PatternPolynomial
	// PatternExponential doubles every step (D_i = 2^i), the conjectured
	// hard case where H_lmax is Θ(lmax).
	PatternExponential
)

func (p ArrivalPattern) String() string {
	switch p {
	case PatternConstant:
		return "constant"
	case PatternNonIncreasing:
		return "non-increasing"
	case PatternPolynomial:
		return "polynomial"
	case PatternExponential:
		return "exponential"
	default:
		return fmt.Sprintf("ArrivalPattern(%d)", int(p))
	}
}

// BatchSizes returns the number of arrivals per step for steps 0..steps-1
// under the pattern, scaled so that step counts start at base (>= 1).
// Sizes are capped at maxPerStep to keep instances tractable; the cap only
// binds for PatternExponential.
func BatchSizes(pattern ArrivalPattern, steps int, base, maxPerStep int) ([]int, error) {
	if steps < 1 {
		return nil, fmt.Errorf("workload: steps must be >= 1, got %d", steps)
	}
	if base < 1 {
		base = 1
	}
	if maxPerStep < 1 {
		maxPerStep = 1
	}
	out := make([]int, steps)
	for i := range out {
		var v int
		switch pattern {
		case PatternConstant:
			v = base
		case PatternNonIncreasing:
			v = base + (steps-1-i)/2
		case PatternPolynomial:
			v = base + i*i/4
		case PatternExponential:
			if i < 30 {
				v = base << i
			} else {
				v = maxPerStep
			}
		default:
			return nil, fmt.Errorf("workload: unknown pattern %v", pattern)
		}
		if v > maxPerStep {
			v = maxPerStep
		}
		if v < 1 {
			v = 1
		}
		out[i] = v
	}
	return out, nil
}

// HSeries computes the series H_q of Theorem 4.5 for the batch sizes |D_1|,
// ..., |D_q|: H_q = sum_{i<=q} |D_i| / sum_{j<=i} |D_j|. Steps with zero
// arrivals contribute zero terms (their |D_i| is 0).
func HSeries(batch []int) float64 {
	var h float64
	var cum int64
	for _, d := range batch {
		cum += int64(d)
		if cum > 0 && d > 0 {
			h += float64(d) / float64(cum)
		}
	}
	return h
}

// DeadlineClient is one flexible demand: it arrives at T and may be served
// on any day in [T, T+D] (Chapter 5's client (t, d)).
type DeadlineClient struct {
	T int64 `json:"t"`
	D int64 `json:"d"`
}

// DeadlineStream draws clients with Bernoulli(p) arrivals per day and i.i.d.
// slack D uniform in [0, dmax]. The stream is sorted by arrival day.
func DeadlineStream(rng *rand.Rand, horizon int64, p float64, dmax int64) []DeadlineClient {
	// Constant{P: p} consumes one rng draw per step, exactly like the
	// inline Bernoulli gate this wrapped before arrival processes
	// existed, so committed seeds keep their streams.
	return DeadlineArrivals(rng, horizon, &Constant{P: p}, dmax)
}

// UniformDeadlineStream draws clients with Bernoulli(p) arrivals and the
// same fixed slack d for every client ("uniform OLD" in Section 5.2).
func UniformDeadlineStream(rng *rand.Rand, horizon int64, p float64, d int64) []DeadlineClient {
	var out []DeadlineClient
	for t := int64(0); t < horizon; t++ {
		if rng.Float64() < p {
			out = append(out, DeadlineClient{T: t, D: d})
		}
	}
	return out
}

// ElementArrival is one demand of the set (multi)cover streams: element
// Elem arrives at time T and must be covered by P distinct sets.
type ElementArrival struct {
	T    int64 `json:"t"`
	Elem int   `json:"elem"`
	P    int   `json:"p"`
}

// ElementStream draws element arrivals over [0, horizon): each day with
// probability p an element chosen by pick() arrives needing cover
// multiplicity drawn by mult(). Arrivals are sorted by time.
func ElementStream(rng *rand.Rand, horizon int64, p float64, pick func() int, mult func() int) []ElementArrival {
	return ElementArrivals(rng, horizon, &Constant{P: p}, pick, mult)
}

// ConnectRequest is one demand of the network-leasing streams: terminals
// S and U must be connected at time T (the Steiner-tree-leasing request).
type ConnectRequest struct {
	T int64 `json:"t"`
	S int   `json:"s"`
	U int   `json:"u"`
}

// ConnectStream draws connectivity requests over [0, horizon): each day
// with probability p a request between two distinct terminals uniform in
// [0, n) arrives. Requests are sorted by time; n must be at least 2.
func ConnectStream(rng *rand.Rand, horizon int64, p float64, n int) ([]ConnectRequest, error) {
	return ConnectArrivals(rng, horizon, &Constant{P: p}, n)
}

// MergeSortedDays merges and deduplicates two ascending day slices.
func MergeSortedDays(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}
