package workload

// Pluggable arrival processes for the load harness. Where the
// generators in workload.go are one-shot helpers bound to a fixed
// Bernoulli rate, an Arrival is a named, stateful process the stepped
// SLA ramp of cmd/leaseload plugs in per tenant: constant, diurnal
// sinusoid, or bursty on/off — plus Zipf-skewed tenant sizing. All
// randomness flows through the caller's *rand.Rand in a fixed per-step
// order, so equal seeds yield byte-identical event streams (the
// property the arrival tests pin down).

import (
	"fmt"
	"math"
	"math/rand"
)

// Arrival decides, step by step, whether a demand arrives. Step must
// consume randomness from rng in a deterministic per-step order; an
// Arrival instance carries its own state (the bursty chain) and must
// not be shared across streams. MeanRate reports the process's expected
// arrivals per step over a horizon, the anchor of the rate-conservation
// tests.
type Arrival interface {
	// Name identifies the process in reports and flags.
	Name() string
	// Step reports whether a demand arrives at step t.
	Step(rng *rand.Rand, t int64) bool
	// MeanRate is the expected arrivals per step over [0, horizon).
	MeanRate(horizon int64) float64
}

// Constant is the fixed-rate Bernoulli process: every step carries a
// demand independently with probability P.
type Constant struct {
	P float64
}

// NewConstant returns the Bernoulli(p) arrival process.
func NewConstant(p float64) (*Constant, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("workload: constant arrival needs p in [0,1], got %v", p)
	}
	return &Constant{P: p}, nil
}

// Name implements Arrival.
func (c *Constant) Name() string { return "constant" }

// Step implements Arrival.
func (c *Constant) Step(rng *rand.Rand, t int64) bool { return rng.Float64() < c.P }

// MeanRate implements Arrival.
func (c *Constant) MeanRate(horizon int64) float64 { return c.P }

// Diurnal is the sinusoidal day/night process: the arrival probability
// oscillates around Mean with amplitude Swing and the given Period,
// clamped to [0, 1]. It models the daily traffic wave a serving system
// must ride without re-provisioning.
type Diurnal struct {
	Mean   float64
	Swing  float64
	Period int64
}

// NewDiurnal returns the sinusoidal arrival process; period must be
// positive and mean in [0, 1].
func NewDiurnal(mean, swing float64, period int64) (*Diurnal, error) {
	if mean < 0 || mean > 1 {
		return nil, fmt.Errorf("workload: diurnal arrival needs mean in [0,1], got %v", mean)
	}
	if swing < 0 {
		return nil, fmt.Errorf("workload: diurnal arrival needs swing >= 0, got %v", swing)
	}
	if period < 1 {
		return nil, fmt.Errorf("workload: diurnal arrival needs period >= 1, got %d", period)
	}
	return &Diurnal{Mean: mean, Swing: swing, Period: period}, nil
}

// Name implements Arrival.
func (d *Diurnal) Name() string { return "diurnal" }

// rate is the clamped instantaneous probability at step t.
func (d *Diurnal) rate(t int64) float64 {
	phase := 2 * math.Pi * float64(t%d.Period) / float64(d.Period)
	p := d.Mean + d.Swing*math.Sin(phase)
	return math.Min(1, math.Max(0, p))
}

// Step implements Arrival.
func (d *Diurnal) Step(rng *rand.Rand, t int64) bool { return rng.Float64() < d.rate(t) }

// MeanRate implements Arrival. Clamping makes the closed form wrong in
// general, so the mean is the exact average of the per-step rates.
func (d *Diurnal) MeanRate(horizon int64) float64 {
	if horizon < 1 {
		return 0
	}
	// The rate is periodic, so average one period (or the horizon if
	// shorter) — exact and O(period) instead of O(horizon).
	n := min(horizon, d.Period)
	var sum float64
	for t := int64(0); t < n; t++ {
		sum += d.rate(t)
	}
	if horizon <= d.Period {
		return sum / float64(n)
	}
	full := horizon / d.Period
	total := sum * float64(full)
	for t := full * d.Period; t < horizon; t++ {
		total += d.rate(t % d.Period)
	}
	return total / float64(horizon)
}

// Bursty is the two-state Markov-modulated on/off process: in the "on"
// state every step carries a demand, in "off" none does, and the chain
// stays in its state with probability StayOn / StayOff per step. Long
// on-runs reward long leases, long off-runs punish them — the tension
// the leasing model is about, now as a pluggable process.
type Bursty struct {
	StayOn  float64
	StayOff float64
	on      bool
	started bool
}

// NewBursty returns the on/off process; both stay probabilities must be
// in [0, 1).
func NewBursty(stayOn, stayOff float64) (*Bursty, error) {
	if stayOn < 0 || stayOn >= 1 || stayOff < 0 || stayOff >= 1 {
		return nil, fmt.Errorf("workload: bursty arrival needs stay probabilities in [0,1), got on=%v off=%v", stayOn, stayOff)
	}
	return &Bursty{StayOn: stayOn, StayOff: stayOff}, nil
}

// Name implements Arrival.
func (b *Bursty) Name() string { return "bursty" }

// Step implements Arrival. The first step draws the initial state from
// the chain's stationary distribution, so short streams are not biased
// toward either state.
func (b *Bursty) Step(rng *rand.Rand, t int64) bool {
	if !b.started {
		b.on = rng.Float64() < b.MeanRate(1)
		b.started = true
	}
	arrived := b.on
	stay := b.StayOff
	if b.on {
		stay = b.StayOn
	}
	if rng.Float64() >= stay {
		b.on = !b.on
	}
	return arrived
}

// MeanRate implements Arrival: the chain's stationary on-probability
// (1-StayOff) / ((1-StayOn) + (1-StayOff)), independent of horizon.
func (b *Bursty) MeanRate(int64) float64 {
	flipOn, flipOff := 1-b.StayOn, 1-b.StayOff
	return flipOff / (flipOn + flipOff)
}

// NewArrival builds a named arrival process with mean rate p: the
// pluggable seam of cmd/leaseload's -arrival flag. "constant" is
// Bernoulli(p); "diurnal" oscillates around p with amplitude 0.9*p over
// the given period; "bursty" is the on/off chain whose stay
// probabilities are tuned so its stationary rate is p with mean run
// length 10 steps.
func NewArrival(name string, p float64, period int64) (Arrival, error) {
	switch name {
	case "constant":
		return NewConstant(p)
	case "diurnal":
		return NewDiurnal(p, 0.9*p, period)
	case "bursty":
		if p <= 0 || p >= 1 {
			return nil, fmt.Errorf("workload: bursty arrival needs rate in (0,1), got %v", p)
		}
		// Mean on-run of 10 steps; off-run scaled to hit stationary p.
		const run = 10.0
		flipOn := 1 / run
		flipOff := flipOn * p / (1 - p)
		if flipOff >= 1 {
			flipOff = 0.999
		}
		return NewBursty(1-flipOn, 1-flipOff)
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q (want constant, diurnal or bursty)", name)
	}
}

// ArrivalDays materializes the process over [0, horizon) as sorted
// distinct demand days — the arrival-process counterpart of DemandDays.
func ArrivalDays(rng *rand.Rand, horizon int64, a Arrival) []int64 {
	var out []int64
	for t := int64(0); t < horizon; t++ {
		if a.Step(rng, t) {
			out = append(out, t)
		}
	}
	return out
}

// DeadlineArrivals is DeadlineStream with the step gate replaced by an
// arrival process: on each demand step a client arrives with i.i.d.
// slack uniform in [0, dmax]. With Constant{p} it consumes the rng
// exactly like DeadlineStream(rng, horizon, p, dmax).
func DeadlineArrivals(rng *rand.Rand, horizon int64, a Arrival, dmax int64) []DeadlineClient {
	var out []DeadlineClient
	for t := int64(0); t < horizon; t++ {
		if a.Step(rng, t) {
			d := int64(0)
			if dmax > 0 {
				d = rng.Int63n(dmax + 1)
			}
			out = append(out, DeadlineClient{T: t, D: d})
		}
	}
	return out
}

// ElementArrivals is ElementStream driven by an arrival process: each
// demand step delivers an element chosen by pick() with multiplicity
// drawn by mult().
func ElementArrivals(rng *rand.Rand, horizon int64, a Arrival, pick func() int, mult func() int) []ElementArrival {
	var out []ElementArrival
	for t := int64(0); t < horizon; t++ {
		if a.Step(rng, t) {
			out = append(out, ElementArrival{T: t, Elem: pick(), P: mult()})
		}
	}
	return out
}

// ConnectArrivals is ConnectStream driven by an arrival process: each
// demand step requests connectivity between two distinct terminals
// uniform in [0, n). n must be at least 2.
func ConnectArrivals(rng *rand.Rand, horizon int64, a Arrival, n int) ([]ConnectRequest, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: connect stream needs n >= 2 terminals, got %d", n)
	}
	var out []ConnectRequest
	for t := int64(0); t < horizon; t++ {
		if a.Step(rng, t) {
			s := rng.Intn(n)
			u := rng.Intn(n - 1)
			if u >= s {
				u++
			}
			out = append(out, ConnectRequest{T: t, S: s, U: u})
		}
	}
	return out, nil
}

// ZipfSizes splits total into n tenant sizes with a Zipf(s) rank-size
// law: tenant of rank r gets a share proportional to 1/(r+1)^s, so a
// few tenants are heavy and the tail is light — the skew real
// multi-tenant fleets show. s = 0 degenerates to an even split. Sizes
// are at least 1 each (total must be >= n) and sum exactly to total;
// the split is deterministic, callers shuffle ranks if they need to.
func ZipfSizes(n int, s float64, total int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf sizes need n >= 1, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: zipf sizes need s >= 0, got %v", s)
	}
	if total < n {
		return nil, fmt.Errorf("workload: zipf sizes need total >= n, got total=%d n=%d", total, n)
	}
	weights := make([]float64, n)
	var norm float64
	for r := range weights {
		weights[r] = math.Pow(float64(r+1), -s)
		norm += weights[r]
	}
	out := make([]int, n)
	assigned := 0
	for r := range out {
		out[r] = max(1, int(float64(total)*weights[r]/norm))
		assigned += out[r]
	}
	// Largest-first correction so the sizes sum exactly to total while
	// keeping every tenant at >= 1 event.
	for i := 0; assigned != total; i = (i + 1) % n {
		if assigned < total {
			out[i]++
			assigned++
		} else if out[i] > 1 {
			out[i]--
			assigned--
		}
	}
	return out, nil
}
