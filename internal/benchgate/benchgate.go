// Package benchgate is the perf-regression gate behind the -gate flag
// of cmd/leaseload and cmd/leasebench: it extracts the headline figure
// from any committed BENCH_PR*.json snapshot (detecting which schema it
// is from its tool and mode fields), compares a freshly measured report
// against it, and fails when the measurement is worse than the snapshot
// by more than the configured tolerance. Improvements never fail, and a
// report can only be gated against a snapshot of the same tool and mode
// — a ramp run cannot quietly "pass" against an engine-mode baseline.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
)

// Metric is the headline figure of one benchmark report.
type Metric struct {
	// Tool and Mode identify the report schema the figure came from.
	Tool string
	Mode string
	// Name is the JSON path of the compared figure.
	Name string
	// Value is the figure itself.
	Value float64
	// HigherBetter orients the comparison (throughput vs wall-clock).
	HigherBetter bool
}

// FromReport extracts the headline metric from a serialized report:
//
//	leasebench (any mode)       -> total_ms, lower is better
//	leaseload engine/remote     -> events_per_sec, higher is better
//	leaseload durable-bench     -> fsync_off.events_per_sec, higher is better
//	leaseload ramp              -> ramp.max_events_per_sec_under_sla, higher is better
func FromReport(raw []byte) (Metric, error) {
	var doc struct {
		Tool         string  `json:"tool"`
		Mode         string  `json:"mode"`
		EventsPerSec float64 `json:"events_per_sec"`
		TotalMS      float64 `json:"total_ms"`
		FsyncOff     *struct {
			EventsPerSec float64 `json:"events_per_sec"`
		} `json:"fsync_off"`
		Ramp *struct {
			MaxEventsPerSec float64 `json:"max_events_per_sec_under_sla"`
		} `json:"ramp"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return Metric{}, fmt.Errorf("benchgate: parse report: %w", err)
	}
	m := Metric{Tool: doc.Tool, Mode: doc.Mode}
	switch {
	case doc.Tool == "leasebench":
		m.Name, m.Value, m.HigherBetter = "total_ms", doc.TotalMS, false
	case doc.Tool == "leaseload" && doc.Mode == "durable-bench":
		if doc.FsyncOff == nil {
			return Metric{}, fmt.Errorf("benchgate: durable-bench report has no fsync_off section")
		}
		m.Name, m.Value, m.HigherBetter = "fsync_off.events_per_sec", doc.FsyncOff.EventsPerSec, true
	case doc.Tool == "leaseload" && doc.Mode == "ramp":
		if doc.Ramp == nil {
			return Metric{}, fmt.Errorf("benchgate: ramp report has no ramp section")
		}
		m.Name, m.Value, m.HigherBetter = "ramp.max_events_per_sec_under_sla", doc.Ramp.MaxEventsPerSec, true
	case doc.Tool == "leaseload":
		m.Name, m.Value, m.HigherBetter = "events_per_sec", doc.EventsPerSec, true
	default:
		return Metric{}, fmt.Errorf("benchgate: unknown report tool %q", doc.Tool)
	}
	if m.Value <= 0 {
		return Metric{}, fmt.Errorf("benchgate: %s/%s report has no usable %s (got %v)", m.Tool, m.Mode, m.Name, m.Value)
	}
	return m, nil
}

// Load reads a committed snapshot and extracts its headline metric.
func Load(path string) (Metric, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Metric{}, fmt.Errorf("benchgate: %w", err)
	}
	m, err := FromReport(raw)
	if err != nil {
		return Metric{}, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return m, nil
}

// GateReport is the one-call form both load tools use: marshal the
// freshly built report, load the committed snapshot at refPath, and
// Check. The two extracted metrics come back for the caller's success
// message.
func GateReport(report any, refPath string, tolerance float64) (measured, reference Metric, err error) {
	raw, err := json.Marshal(report)
	if err != nil {
		return Metric{}, Metric{}, fmt.Errorf("benchgate: marshal report: %w", err)
	}
	if measured, err = FromReport(raw); err != nil {
		return Metric{}, Metric{}, err
	}
	if reference, err = Load(refPath); err != nil {
		return Metric{}, Metric{}, err
	}
	return measured, reference, Check(measured, reference, tolerance)
}

// Check fails when measured regressed past the reference by more than
// tolerance (a fraction: 0.15 allows a 15% regression). The two metrics
// must come from the same tool and mode.
func Check(measured, reference Metric, tolerance float64) error {
	if tolerance <= 0 || tolerance >= 1 {
		return fmt.Errorf("benchgate: tolerance must be in (0,1), got %v", tolerance)
	}
	if measured.Tool != reference.Tool || measured.Mode != reference.Mode {
		return fmt.Errorf("benchgate: measured %s/%s cannot be gated against reference %s/%s",
			measured.Tool, measured.Mode, reference.Tool, reference.Mode)
	}
	change := measured.Value/reference.Value - 1
	regressed := change < -tolerance
	if !reference.HigherBetter {
		regressed = change > tolerance
	}
	if regressed {
		return fmt.Errorf("benchgate: %s regressed %.1f%% past the %.0f%% tolerance (measured %.1f, reference %.1f)",
			measured.Name, 100*change, 100*tolerance, measured.Value, reference.Value)
	}
	return nil
}
