package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFromReportSchemas: every committed BENCH_PR*.json shape resolves
// to its documented headline figure.
func TestFromReportSchemas(t *testing.T) {
	cases := []struct {
		name, raw  string
		wantName   string
		wantValue  float64
		wantHigher bool
	}{
		{
			name:     "leasebench",
			raw:      `{"tool":"leasebench","mode":"quick","total_ms":1234.5}`,
			wantName: "total_ms", wantValue: 1234.5, wantHigher: false,
		},
		{
			name:     "leaseload engine",
			raw:      `{"tool":"leaseload","mode":"engine","events_per_sec":12800}`,
			wantName: "events_per_sec", wantValue: 12800, wantHigher: true,
		},
		{
			name:     "leaseload remote",
			raw:      `{"tool":"leaseload","mode":"remote","events_per_sec":9000}`,
			wantName: "events_per_sec", wantValue: 9000, wantHigher: true,
		},
		{
			name:     "durable-bench",
			raw:      `{"tool":"leaseload","mode":"durable-bench","fsync_off":{"events_per_sec":7000},"fsync_on":{"events_per_sec":900}}`,
			wantName: "fsync_off.events_per_sec", wantValue: 7000, wantHigher: true,
		},
		{
			name:     "ramp",
			raw:      `{"tool":"leaseload","mode":"ramp","events_per_sec":5000,"ramp":{"max_events_per_sec_under_sla":4800}}`,
			wantName: "ramp.max_events_per_sec_under_sla", wantValue: 4800, wantHigher: true,
		},
		{
			// BENCH_PR8.json: the top-level figure is the largest fleet's
			// throughput, so the gate bites on a regression at scale even
			// when the single-node fleet is unchanged.
			name:     "cluster-bench",
			raw:      `{"tool":"leaseload","mode":"cluster-bench","events_per_sec":10500,"scaling_efficiency":0.22,"fleets":[{"nodes":1,"events_per_sec":11800},{"nodes":4,"events_per_sec":10500}]}`,
			wantName: "events_per_sec", wantValue: 10500, wantHigher: true,
		},
	}
	for _, tc := range cases {
		m, err := FromReport([]byte(tc.raw))
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if m.Name != tc.wantName || m.Value != tc.wantValue || m.HigherBetter != tc.wantHigher {
			t.Errorf("%s: got %+v, want %s=%v higher=%v", tc.name, m, tc.wantName, tc.wantValue, tc.wantHigher)
		}
	}
}

func TestFromReportRejects(t *testing.T) {
	for name, raw := range map[string]string{
		"unknown tool":      `{"tool":"x","mode":"y"}`,
		"missing figure":    `{"tool":"leaseload","mode":"engine"}`,
		"ramp without ramp": `{"tool":"leaseload","mode":"ramp","events_per_sec":5}`,
		"not json":          `events/s: lots`,
	} {
		if _, err := FromReport([]byte(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCheck covers both orientations, the tolerance boundary, and the
// mode-mismatch guard.
func TestCheck(t *testing.T) {
	ref := Metric{Tool: "leaseload", Mode: "ramp", Name: "ramp.max_events_per_sec_under_sla", Value: 1000, HigherBetter: true}
	meas := func(v float64) Metric { m := ref; m.Value = v; return m }

	if err := Check(meas(1000), ref, 0.15); err != nil {
		t.Errorf("equal value failed: %v", err)
	}
	if err := Check(meas(860), ref, 0.15); err != nil {
		t.Errorf("within tolerance failed: %v", err)
	}
	if err := Check(meas(840), ref, 0.15); err == nil {
		t.Error("16% regression passed a 15% gate")
	}
	if err := Check(meas(2000), ref, 0.15); err != nil {
		t.Errorf("improvement failed the gate: %v", err)
	}

	lower := Metric{Tool: "leasebench", Mode: "quick", Name: "total_ms", Value: 1000, HigherBetter: false}
	lmeas := func(v float64) Metric { m := lower; m.Value = v; return m }
	if err := Check(lmeas(1100), lower, 0.15); err != nil {
		t.Errorf("lower-better within tolerance failed: %v", err)
	}
	if err := Check(lmeas(1200), lower, 0.15); err == nil {
		t.Error("20% slowdown passed a 15% gate")
	}
	if err := Check(lmeas(500), lower, 0.15); err != nil {
		t.Errorf("lower-better improvement failed: %v", err)
	}

	other := ref
	other.Mode = "engine"
	if err := Check(other, ref, 0.15); err == nil {
		t.Error("mode mismatch accepted")
	}
	if err := Check(meas(1000), ref, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
}

// TestLoadCommittedSnapshots: every BENCH_*.json in the repo root stays
// loadable — the gate must never be silently unable to read its own
// references.
func TestLoadCommittedSnapshots(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Skip("no committed snapshots found")
	}
	for _, path := range matches {
		m, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		t.Logf("%s: %s/%s %s = %.1f", filepath.Base(path), m.Tool, m.Mode, m.Name, m.Value)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(os.TempDir(), "no-such-bench.json")); err == nil || !strings.Contains(err.Error(), "benchgate") {
		t.Errorf("missing file: err %v", err)
	}
}
