// Package graph provides the weighted-undirected-graph substrate used by
// the leasing extensions: Steiner tree leasing (edges are leased to keep
// terminal pairs connected) and the vertex/edge cover leasing reductions
// that Chapter 3's outlook proposes. It includes adjacency structures,
// Dijkstra shortest paths with per-edge cost overrides, connectivity
// checks, and random graph generators.
package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Edge is an undirected weighted edge between vertices U < V.
type Edge struct {
	U, V   int
	Weight float64
}

// Graph is an immutable undirected weighted graph. Construct with New.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]halfEdge // adjacency: vertex -> (neighbor, edge index)
}

type halfEdge struct {
	to   int
	edge int
}

// New validates the edge list and builds adjacency structures. Self-loops
// and duplicate edges are rejected; weights must be positive and finite.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: need n >= 1, got %d", n)
	}
	g := &Graph{n: n, edges: make([]Edge, len(edges)), adj: make([][]halfEdge, n)}
	seen := map[[2]int]bool{}
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge %d endpoints (%d,%d) outside [0,%d)", i, e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: edge %d is a self-loop at %d", i, e.U)
		}
		if !(e.Weight > 0) || math.IsInf(e.Weight, 0) || math.IsNaN(e.Weight) {
			return nil, fmt.Errorf("graph: edge %d weight %v, want positive finite", i, e.Weight)
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
		}
		seen[key] = true
		g.edges[i] = Edge{U: u, V: v, Weight: e.Weight}
		g.adj[u] = append(g.adj[u], halfEdge{to: v, edge: i})
		g.adj[v] = append(g.adj[v], halfEdge{to: u, edge: i})
	}
	return g, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edge returns the i-th edge (endpoints normalized U < V).
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of all edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Incident returns the indices of edges incident to v.
func (g *Graph) Incident(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, h := range g.adj[v] {
		out[i] = h.edge
	}
	return out
}

// MaxDegree returns the maximum vertex degree (the δ of the vertex-cover
// leasing reduction).
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > best {
			best = d
		}
	}
	return best
}

// ErrDisconnected is returned by path queries with no route.
var ErrDisconnected = errors.New("graph: vertices are disconnected")

// Path is a shortest-path result: the total cost and the edge indices
// along the route.
type Path struct {
	Cost  float64
	Edges []int
}

// ShortestPath runs Dijkstra from src to dst using cost(edgeIndex) as the
// effective edge cost (allowing callers to discount already-leased edges
// to zero and charge lease prices on the rest). cost must return
// non-negative finite values; nil uses the static weights.
func (g *Graph) ShortestPath(src, dst int, cost func(edge int) float64) (Path, error) {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		return Path{}, fmt.Errorf("graph: path endpoints (%d,%d) outside [0,%d)", src, dst, g.n)
	}
	if cost == nil {
		cost = func(e int) float64 { return g.edges[e].Weight }
	}
	dist := make([]float64, g.n)
	prevEdge := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	pq := &vertexHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(vertexItem)
		if done[item.v] {
			continue
		}
		done[item.v] = true
		if item.v == dst {
			break
		}
		for _, h := range g.adj[item.v] {
			if done[h.to] {
				continue
			}
			c := cost(h.edge)
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return Path{}, fmt.Errorf("graph: cost(%d) = %v, want non-negative finite", h.edge, c)
			}
			if nd := item.d + c; nd < dist[h.to] {
				dist[h.to] = nd
				prevEdge[h.to] = h.edge
				heap.Push(pq, vertexItem{v: h.to, d: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, ErrDisconnected
	}
	// Reconstruct edge sequence from dst back to src.
	var edges []int
	at := dst
	for at != src {
		e := prevEdge[at]
		edges = append(edges, e)
		if g.edges[e].U == at {
			at = g.edges[e].V
		} else {
			at = g.edges[e].U
		}
	}
	// Reverse into src->dst order.
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	return Path{Cost: dist[dst], Edges: edges}, nil
}

// Connected reports whether the whole graph is connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[v] {
			if !seen[h.to] {
				seen[h.to] = true
				count++
				stack = append(stack, h.to)
			}
		}
	}
	return count == g.n
}

type vertexItem struct {
	v int
	d float64
}

type vertexHeap []vertexItem

func (h vertexHeap) Len() int            { return len(h) }
func (h vertexHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h vertexHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x interface{}) { *h = append(*h, x.(vertexItem)) }
func (h *vertexHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// RandomConnected generates a connected graph: a random spanning tree plus
// extra random edges up to the requested edge count, with weights uniform
// in [minW, maxW).
func RandomConnected(rng *rand.Rand, n, m int, minW, maxW float64) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: need n >= 1, got %d", n)
	}
	if maxW <= minW {
		maxW = minW + 1
	}
	if m < n-1 {
		m = n - 1
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	w := func() float64 { return minW + rng.Float64()*(maxW-minW) }
	seen := map[[2]int]bool{}
	var edges []Edge
	add := func(u, v int) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			return false
		}
		seen[key] = true
		edges = append(edges, Edge{U: u, V: v, Weight: w()})
		return true
	}
	// Random spanning tree: attach each vertex to a random earlier one.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(perm[i], perm[rng.Intn(i)])
	}
	for len(edges) < m {
		add(rng.Intn(n), rng.Intn(n))
	}
	return New(n, edges)
}

// Grid generates an r x c grid graph with unit-jittered weights, a common
// network substrate.
func Grid(rng *rand.Rand, rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: grid %dx%d invalid", rows, cols)
	}
	var edges []Edge
	id := func(r, c int) int { return r*cols + c }
	w := func() float64 { return 1 + rng.Float64()*0.25 }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1), Weight: w()})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c), Weight: w()})
			}
		}
	}
	return New(rows*cols, edges)
}
