package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(2, []Edge{{U: 0, V: 2, Weight: 1}}); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := New(2, []Edge{{U: 1, V: 1, Weight: 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New(2, []Edge{{U: 0, V: 1, Weight: 0}}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := New(2, []Edge{{U: 0, V: 1, Weight: math.NaN()}}); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := New(2, []Edge{{U: 0, V: 1, Weight: 1}, {U: 1, V: 0, Weight: 2}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	g, err := New(3, []Edge{{U: 2, V: 0, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if e := g.Edge(0); e.U != 0 || e.V != 2 {
		t.Errorf("endpoints not normalized: %+v", e)
	}
}

func pathGraph(t *testing.T) *Graph {
	t.Helper()
	// 0 -1- 1 -1- 2 -1- 3 with a costly shortcut 0-3.
	g, err := New(4, []Edge{
		{U: 0, V: 1, Weight: 1},
		{U: 1, V: 2, Weight: 1},
		{U: 2, V: 3, Weight: 1},
		{U: 0, V: 3, Weight: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShortestPath(t *testing.T) {
	g := pathGraph(t)
	p, err := g.ShortestPath(0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Cost-3) > 1e-12 {
		t.Errorf("cost = %v, want 3", p.Cost)
	}
	if len(p.Edges) != 3 || p.Edges[0] != 0 || p.Edges[1] != 1 || p.Edges[2] != 2 {
		t.Errorf("edges = %v, want [0 1 2]", p.Edges)
	}
	// Zero-length path.
	p0, err := g.ShortestPath(2, 2, nil)
	if err != nil || p0.Cost != 0 || len(p0.Edges) != 0 {
		t.Errorf("self path = %+v, %v", p0, err)
	}
}

func TestShortestPathWithCostOverride(t *testing.T) {
	g := pathGraph(t)
	// Discount the shortcut to zero: it becomes the best route.
	p, err := g.ShortestPath(0, 3, func(e int) float64 {
		if e == 3 {
			return 0
		}
		return g.Edge(e).Weight
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 0 || len(p.Edges) != 1 || p.Edges[0] != 3 {
		t.Errorf("path = %+v, want free shortcut", p)
	}
	// Invalid override values are rejected.
	if _, err := g.ShortestPath(0, 3, func(e int) float64 { return -1 }); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := g.ShortestPath(0, 9, nil); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

func TestDisconnected(t *testing.T) {
	g, err := New(4, []Edge{{U: 0, V: 1, Weight: 1}, {U: 2, V: 3, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if _, err := g.ShortestPath(0, 3, nil); !errors.Is(err, ErrDisconnected) {
		t.Errorf("error = %v, want ErrDisconnected", err)
	}
}

func TestDegreeAndIncident(t *testing.T) {
	g := pathGraph(t)
	if g.Degree(0) != 2 || g.Degree(1) != 2 || g.MaxDegree() != 2 {
		t.Errorf("degrees wrong: %d %d max %d", g.Degree(0), g.Degree(1), g.MaxDegree())
	}
	inc := g.Incident(3)
	if len(inc) != 2 {
		t.Errorf("Incident(3) = %v", inc)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Errorf("N,M = %d,%d", g.N(), g.M())
	}
	if len(g.Edges()) != 4 {
		t.Error("Edges() wrong length")
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		m := n - 1 + rng.Intn(2*n)
		g, err := RandomConnected(rng, n, m, 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("trial %d: not connected (n=%d m=%d)", trial, n, g.M())
		}
		if g.M() < n-1 {
			t.Fatalf("trial %d: too few edges", trial)
		}
		for _, e := range g.Edges() {
			if e.Weight < 1 || e.Weight >= 5 {
				t.Fatalf("weight %v outside [1,5)", e.Weight)
			}
		}
	}
	if _, err := RandomConnected(rng, 0, 0, 1, 2); err == nil {
		t.Error("n=0 accepted")
	}
	// Degenerate weight range is repaired, excessive m clamped.
	g, err := RandomConnected(rng, 4, 100, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() > 6 {
		t.Errorf("m = %d exceeds complete graph", g.M())
	}
}

func TestGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := Grid(rng, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Errorf("N = %d, want 12", g.N())
	}
	// Grid edges: 3*(4-1) horizontal + (3-1)*4 vertical = 17.
	if g.M() != 17 {
		t.Errorf("M = %d, want 17", g.M())
	}
	if !g.Connected() {
		t.Error("grid not connected")
	}
	if _, err := Grid(rng, 0, 3); err == nil {
		t.Error("bad grid accepted")
	}
}

// Dijkstra against Floyd–Warshall on random graphs.
func TestShortestPathMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(10)
		g, err := RandomConnected(rng, n, n+rng.Intn(n), 1, 9)
		if err != nil {
			t.Fatal(err)
		}
		// Floyd–Warshall.
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
			for j := range d[i] {
				if i != j {
					d[i][j] = math.Inf(1)
				}
			}
		}
		for _, e := range g.Edges() {
			if e.Weight < d[e.U][e.V] {
				d[e.U][e.V] = e.Weight
				d[e.V][e.U] = e.Weight
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d[i][k]+d[k][j] < d[i][j] {
						d[i][j] = d[i][k] + d[k][j]
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p, err := g.ShortestPath(i, j, nil)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if math.Abs(p.Cost-d[i][j]) > 1e-9 {
					t.Fatalf("trial %d: dijkstra %v != FW %v for (%d,%d)", trial, p.Cost, d[i][j], i, j)
				}
				// Path edges must form a route of the reported cost.
				var sum float64
				for _, e := range p.Edges {
					sum += g.Edge(e).Weight
				}
				if math.Abs(sum-p.Cost) > 1e-9 {
					t.Fatalf("trial %d: path edges sum %v != cost %v", trial, sum, p.Cost)
				}
			}
		}
	}
}
