// Package lease implements the leasing timeline model that underlies every
// problem in the thesis "Online Resource Leasing" (Markarian, 2015): lease
// types with lengths and costs, the interval model of Definition 2.5, the
// general-to-interval transformation of Lemma 2.6, purchase stores with cost
// accounting, and pricing generators used by the experiments.
//
// Time is a discrete sequence of steps ("days") represented as int64. A lease
// of type k bought at start time t covers the half-open window [t, t+l_k).
package lease

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Type describes a single lease type: its duration in time steps and the
// one-time cost of buying one lease of this type.
type Type struct {
	// Length is the lease duration l_k in time steps. Must be >= 1.
	Length int64
	// Cost is the purchase cost c_k. Must be > 0.
	Cost float64
}

// PerStep returns the cost per covered time step, the economy-of-scale
// quantity the thesis refers to when it says "longer leases cost less per
// unit time".
func (t Type) PerStep() float64 { return t.Cost / float64(t.Length) }

// Lease identifies one concrete purchasable lease: a type index (0-based)
// and a start time. It covers [Start, Start+Length_K).
type Lease struct {
	K     int   // type index into the Config, 0-based
	Start int64 // first covered time step
}

// Config is an immutable, validated ordered collection of lease types,
// sorted by strictly increasing length. Type indices used throughout the
// repository refer to positions in this ordering (0 = shortest).
type Config struct {
	types    []Type
	interval bool // all lengths are powers of two
}

// Errors returned by NewConfig.
var (
	ErrNoTypes          = errors.New("lease: config needs at least one type")
	ErrBadLength        = errors.New("lease: type length must be >= 1")
	ErrBadCost          = errors.New("lease: type cost must be > 0")
	ErrLengthsNotSorted = errors.New("lease: type lengths must be strictly increasing")
)

// NewConfig validates and builds a lease configuration. The provided types
// must have positive costs and strictly increasing lengths >= 1.
func NewConfig(types ...Type) (*Config, error) {
	if len(types) == 0 {
		return nil, ErrNoTypes
	}
	cp := make([]Type, len(types))
	copy(cp, types)
	interval := true
	for i, t := range cp {
		if t.Length < 1 {
			return nil, fmt.Errorf("type %d has length %d: %w", i, t.Length, ErrBadLength)
		}
		if !(t.Cost > 0) || math.IsInf(t.Cost, 0) || math.IsNaN(t.Cost) {
			return nil, fmt.Errorf("type %d has cost %v: %w", i, t.Cost, ErrBadCost)
		}
		if i > 0 && cp[i-1].Length >= t.Length {
			return nil, fmt.Errorf("type %d length %d <= previous %d: %w", i, t.Length, cp[i-1].Length, ErrLengthsNotSorted)
		}
		if !isPowerOfTwo(t.Length) {
			interval = false
		}
	}
	return &Config{types: cp, interval: interval}, nil
}

// MustConfig is NewConfig for statically known-good inputs; it panics on
// error and is intended for tests, examples and package-level experiment
// fixtures only.
func MustConfig(types ...Type) *Config {
	c, err := NewConfig(types...)
	if err != nil {
		panic(err)
	}
	return c
}

// K returns the number of lease types.
func (c *Config) K() int { return len(c.types) }

// Type returns the k-th lease type (0-based).
func (c *Config) Type(k int) Type { return c.types[k] }

// Types returns a copy of all lease types in length order.
func (c *Config) Types() []Type {
	cp := make([]Type, len(c.types))
	copy(cp, c.types)
	return cp
}

// Length returns l_k, the length of lease type k.
func (c *Config) Length(k int) int64 { return c.types[k].Length }

// Cost returns c_k, the cost of lease type k.
func (c *Config) Cost(k int) float64 { return c.types[k].Cost }

// LMin returns the shortest lease length l_min.
func (c *Config) LMin() int64 { return c.types[0].Length }

// LMax returns the longest lease length l_max.
func (c *Config) LMax() int64 { return c.types[len(c.types)-1].Length }

// IsIntervalModel reports whether every lease length is a power of two,
// the structural requirement of the interval model (Definition 2.5). Note
// that the second requirement — leases of the same type never overlap — is
// a property of solutions, enforced by AlignedStart.
func (c *Config) IsIntervalModel() bool { return c.interval }

// AlignedStart returns the unique interval-model start time of a type-k
// lease whose window covers time t, i.e. floor(t/l_k)*l_k. It supports
// negative t (flooring toward negative infinity) so adversarial instances
// may use any origin.
func (c *Config) AlignedStart(k int, t int64) int64 {
	l := c.types[k].Length
	q := t / l
	if t%l != 0 && t < 0 {
		q--
	}
	return q * l
}

// AlignedLease returns the unique type-k interval-model lease covering t.
func (c *Config) AlignedLease(k int, t int64) Lease {
	return Lease{K: k, Start: c.AlignedStart(k, t)}
}

// Covering returns the K interval-model leases (one per type) whose windows
// cover time t. In the interval model these are exactly the candidates of a
// demand arriving at t (Section 2.2).
func (c *Config) Covering(t int64) []Lease {
	out := make([]Lease, len(c.types))
	for k := range c.types {
		out[k] = c.AlignedLease(k, t)
	}
	return out
}

// Window returns the half-open covered window [start, end) of a lease.
func (c *Config) Window(l Lease) (start, end int64) {
	return l.Start, l.Start + c.types[l.K].Length
}

// Covers reports whether lease l covers time t.
func (c *Config) Covers(l Lease, t int64) bool {
	return l.Start <= t && t < l.Start+c.types[l.K].Length
}

// Intersecting returns, for lease type k, all interval-model leases whose
// windows intersect the inclusive time range [a, b]. These are the type-k
// candidates of a deadline client with window [a, b] (Chapter 5).
func (c *Config) Intersecting(k int, a, b int64) []Lease {
	if b < a {
		a, b = b, a
	}
	first := c.AlignedStart(k, a)
	last := c.AlignedStart(k, b)
	l := c.types[k].Length
	n := (last-first)/l + 1
	out := make([]Lease, 0, n)
	for s := first; s <= last; s += l {
		out = append(out, Lease{K: k, Start: s})
	}
	return out
}

// IntersectingAll returns, across all types, the interval-model leases whose
// windows intersect [a, b].
func (c *Config) IntersectingAll(a, b int64) []Lease {
	var out []Lease
	for k := range c.types {
		out = append(out, c.Intersecting(k, a, b)...)
	}
	return out
}

// CheapestCovering returns the cheapest interval-model lease covering t.
func (c *Config) CheapestCovering(t int64) Lease {
	best := c.AlignedLease(0, t)
	bestCost := c.types[0].Cost
	for k := 1; k < len(c.types); k++ {
		if c.types[k].Cost < bestCost {
			bestCost = c.types[k].Cost
			best = c.AlignedLease(k, t)
		}
	}
	return best
}

// EconomyOfScale reports whether per-step costs are non-increasing with
// length, the "longer leases cost less per unit time" assumption. The
// algorithms do not require it, but most experiments generate such configs.
func (c *Config) EconomyOfScale() bool {
	for i := 1; i < len(c.types); i++ {
		if c.types[i].PerStep() > c.types[i-1].PerStep()+1e-12 {
			return false
		}
	}
	return true
}

// RoundToIntervalModel returns a new configuration whose lengths are the
// original lengths rounded up to the next power of two, as in the first
// half of Lemma 2.6. Costs are unchanged. Rounding can merge two types to
// the same length; in that case only the cheaper is kept, preserving the
// strictly-increasing length invariant without affecting optimal costs.
func (c *Config) RoundToIntervalModel() *Config {
	byLen := map[int64]Type{}
	var lens []int64
	for _, t := range c.types {
		l := nextPowerOfTwo(t.Length)
		prev, ok := byLen[l]
		if !ok {
			byLen[l] = Type{Length: l, Cost: t.Cost}
			lens = append(lens, l)
			continue
		}
		if t.Cost < prev.Cost {
			byLen[l] = Type{Length: l, Cost: t.Cost}
		}
	}
	sort.Slice(lens, func(i, j int) bool { return lens[i] < lens[j] })
	types := make([]Type, 0, len(lens))
	for _, l := range lens {
		types = append(types, byLen[l])
	}
	cfg, err := NewConfig(types...)
	if err != nil {
		// Unreachable: rounding preserves positivity and the lengths are
		// deduplicated and sorted above.
		panic(fmt.Sprintf("lease: rounding produced invalid config: %v", err))
	}
	return cfg
}

// TypeMapToRounded returns, for each type index of c, the type index in the
// rounded configuration produced by RoundToIntervalModel that the type was
// mapped to (the type with length nextPow2(l_k) in the rounded config).
func (c *Config) TypeMapToRounded(rounded *Config) []int {
	m := make([]int, len(c.types))
	for i, t := range c.types {
		want := nextPowerOfTwo(t.Length)
		m[i] = -1
		for j := range rounded.types {
			if rounded.types[j].Length == want {
				m[i] = j
				break
			}
		}
	}
	return m
}

// ExpandToGeneral converts a feasible interval-model solution (a set of
// leases over the rounded config) into a feasible solution of the original
// general-model config, per Lemma 2.6: each rounded lease of length l' is
// replaced by two consecutive original leases of the mapped type (whose
// combined span 2*l_k >= l' covers the rounded window). The returned cost is
// exactly twice the original-type cost per rounded lease.
func ExpandToGeneral(orig, rounded *Config, mapToRounded []int, sol []Lease) []Lease {
	// Invert the type map: rounded type -> cheapest original type mapping to it.
	inv := make(map[int]int, len(mapToRounded))
	for origK, rk := range mapToRounded {
		if rk < 0 {
			continue
		}
		if cur, ok := inv[rk]; !ok || orig.Cost(origK) < orig.Cost(cur) {
			inv[rk] = origK
		}
	}
	out := make([]Lease, 0, 2*len(sol))
	for _, l := range sol {
		ok, exists := inv[l.K]
		if !exists {
			continue
		}
		out = append(out,
			Lease{K: ok, Start: l.Start},
			Lease{K: ok, Start: l.Start + orig.Length(ok)},
		)
	}
	return out
}

// SolutionCost sums the costs of a multiset of leases under config c.
func (c *Config) SolutionCost(sol []Lease) float64 {
	var sum float64
	for _, l := range sol {
		sum += c.types[l.K].Cost
	}
	return sum
}

// CoversAll reports whether every time step in ts is covered by at least one
// lease in sol.
func (c *Config) CoversAll(sol []Lease, ts []int64) bool {
	for _, t := range ts {
		covered := false
		for _, l := range sol {
			if c.Covers(l, t) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

func isPowerOfTwo(v int64) bool { return v > 0 && v&(v-1) == 0 }

// nextPowerOfTwo returns the smallest power of two >= v (v >= 1).
func nextPowerOfTwo(v int64) int64 {
	p := int64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// NextPowerOfTwo is the exported form of the rounding helper used by
// instance generators (e.g. the Chapter 5 tight example chooses the long
// lease length 2^ceil(log2 d_max)).
func NextPowerOfTwo(v int64) int64 { return nextPowerOfTwo(v) }
