package lease

import "math"

// Pricing generators. Each returns a validated interval-model configuration
// used by the experiment harness. All follow the thesis' standing
// assumption that longer leases cost less per time step but more in total.

// PowerConfig builds K lease types with lengths base^0..base^(K-1) scaled by
// unitLen, and costs l^gamma (0 < gamma < 1 gives a strict economy of
// scale). base must be a power of two and unitLen >= 1 for the result to be
// an interval-model config; PowerConfig rounds lengths up to powers of two
// to guarantee it regardless.
func PowerConfig(k int, base int64, gamma float64) *Config {
	if k < 1 {
		k = 1
	}
	if base < 2 {
		base = 2
	}
	types := make([]Type, 0, k)
	l := int64(1)
	for i := 0; i < k; i++ {
		ll := nextPowerOfTwo(l)
		types = append(types, Type{Length: ll, Cost: math.Pow(float64(ll), gamma)})
		if l > (1<<40)/base { // avoid overflow for absurd K
			break
		}
		l *= base
	}
	return dedupByLength(types)
}

// DoublingConfig builds K types with l_k = 2^k and c_k = costBase * growth^k.
// With growth = 2 and lengths quadrupling this is the classic "pay twice,
// cover four times as long" schedule; with growth < 2 leases are more
// attractive the longer they are.
func DoublingConfig(k int, costBase, growth float64) *Config {
	if k < 1 {
		k = 1
	}
	types := make([]Type, 0, k)
	l := int64(1)
	c := costBase
	for i := 0; i < k; i++ {
		types = append(types, Type{Length: l, Cost: c})
		l *= 2
		c *= growth
	}
	return dedupByLength(types)
}

// MeyersonLowerBoundConfig builds the configuration used by the
// deterministic Omega(K) adversary of Theorem 2.8: costs c_k = 2^k and
// lengths l_k = (2K)*l_{k-1}, with the length factor rounded up to a power
// of two so the interval model applies (the proof only needs l_k to contain
// at least 2K disjoint type-(k-1) windows, which rounding up preserves).
func MeyersonLowerBoundConfig(k int) *Config {
	if k < 1 {
		k = 1
	}
	factor := nextPowerOfTwo(int64(2 * k))
	types := make([]Type, 0, k)
	l := int64(1)
	c := 2.0
	for i := 0; i < k; i++ {
		types = append(types, Type{Length: l, Cost: c})
		l *= factor
		c *= 2
	}
	return dedupByLength(types)
}

// RandomizedLowerBoundConfig builds the configuration of the randomized
// Omega(log K) lower bound of Theorem 2.9: c_i = 2^i with lengths growing
// by a large (power-of-two) factor so each type-i window contains many
// type-(i-1) sub-windows.
func RandomizedLowerBoundConfig(k int, lengthFactor int64) *Config {
	if k < 1 {
		k = 1
	}
	if lengthFactor < 2 {
		lengthFactor = 2
	}
	lengthFactor = nextPowerOfTwo(lengthFactor)
	types := make([]Type, 0, k)
	l := int64(1)
	c := 2.0
	for i := 0; i < k; i++ {
		types = append(types, Type{Length: l, Cost: c})
		l *= lengthFactor
		c *= 2
	}
	return dedupByLength(types)
}

// TwoTypeConfig builds the two-type configuration of the Chapter 5 tight
// example (Proposition 5.4): a short lease of length lmin and cost 1, and a
// long lease of length 2^ceil(log2 span) and cost 1+eps.
func TwoTypeConfig(lmin, span int64, eps float64) *Config {
	lmin = nextPowerOfTwo(lmin)
	long := nextPowerOfTwo(span)
	if long <= lmin {
		long = lmin * 2
	}
	return MustConfig(
		Type{Length: lmin, Cost: 1},
		Type{Length: long, Cost: 1 + eps},
	)
}

// SingleTypeConfig builds the K=1 degenerate configuration that reduces a
// leasing problem to its classical non-leasing variant (Corollary 3.4): one
// type whose length is a power of two at least horizon, emulating l_1 =
// infinity over any experiment of that horizon.
func SingleTypeConfig(horizon int64, cost float64) *Config {
	return MustConfig(Type{Length: nextPowerOfTwo(horizon), Cost: cost})
}

func dedupByLength(types []Type) *Config {
	out := types[:0:0]
	for _, t := range types {
		if len(out) > 0 && out[len(out)-1].Length == t.Length {
			if t.Cost < out[len(out)-1].Cost {
				out[len(out)-1] = t
			}
			continue
		}
		out = append(out, t)
	}
	return MustConfig(out...)
}
