package lease

import "sort"

// Store is a set of purchased leases with cost accounting and coverage
// queries. It supports both interval-model and general (arbitrary-start)
// solutions; coverage queries use a per-type sorted index of start times.
//
// The zero value is not usable; construct with NewStore.
type Store struct {
	cfg     *Config
	bought  map[Lease]struct{}
	starts  [][]int64 // per type, sorted start times
	journal []Lease   // purchases in buy order, append-only
	total   float64
}

// NewStore returns an empty purchase store over the given configuration.
func NewStore(cfg *Config) *Store {
	return &Store{
		cfg:    cfg,
		bought: make(map[Lease]struct{}),
		starts: make([][]int64, cfg.K()),
	}
}

// Buy adds the lease to the store if not already present and accounts for
// its cost. It reports whether the lease was newly bought.
func (s *Store) Buy(l Lease) bool {
	if _, ok := s.bought[l]; ok {
		return false
	}
	s.bought[l] = struct{}{}
	s.journal = append(s.journal, l)
	s.total += s.cfg.Cost(l.K)
	ss := s.starts[l.K]
	i := sort.Search(len(ss), func(i int) bool { return ss[i] >= l.Start })
	ss = append(ss, 0)
	copy(ss[i+1:], ss[i:])
	ss[i] = l.Start
	s.starts[l.K] = ss
	return true
}

// Has reports whether the exact lease is in the store.
func (s *Store) Has(l Lease) bool {
	_, ok := s.bought[l]
	return ok
}

// Covers reports whether any bought lease covers time t.
func (s *Store) Covers(t int64) bool {
	for k := range s.starts {
		if s.coversWithType(k, t) {
			return true
		}
	}
	return false
}

// CoversWithType reports whether a bought lease of type k covers time t.
func (s *Store) CoversWithType(k int, t int64) bool { return s.coversWithType(k, t) }

func (s *Store) coversWithType(k int, t int64) bool {
	ss := s.starts[k]
	// Find the last start <= t and check its window reaches past t.
	i := sort.Search(len(ss), func(i int) bool { return ss[i] > t })
	if i == 0 {
		return false
	}
	return ss[i-1]+s.cfg.Length(k) > t
}

// TotalCost returns the accumulated purchase cost.
func (s *Store) TotalCost() float64 { return s.total }

// Count returns the number of distinct leases bought.
func (s *Store) Count() int { return len(s.bought) }

// BoughtSince returns the leases bought after the first n, in buy
// order. A caller that remembers Count() between calls reads each new
// purchase exactly once, without rebuilding (or re-sorting) the full
// set the way Leases does — the streaming adapters' O(new) diff. The
// slice aliases the store's journal; callers must not mutate it.
func (s *Store) BoughtSince(n int) []Lease { return s.journal[n:] }

// Leases returns the bought leases in deterministic order (by type, then
// start time).
func (s *Store) Leases() []Lease {
	out := make([]Lease, 0, len(s.bought))
	for l := range s.bought {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].K != out[j].K {
			return out[i].K < out[j].K
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Config returns the configuration the store was built over.
func (s *Store) Config() *Config { return s.cfg }
