package lease

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		types   []Type
		wantErr error
	}{
		{"empty", nil, ErrNoTypes},
		{"zero length", []Type{{Length: 0, Cost: 1}}, ErrBadLength},
		{"negative length", []Type{{Length: -4, Cost: 1}}, ErrBadLength},
		{"zero cost", []Type{{Length: 1, Cost: 0}}, ErrBadCost},
		{"negative cost", []Type{{Length: 1, Cost: -2}}, ErrBadCost},
		{"unsorted", []Type{{Length: 4, Cost: 1}, {Length: 2, Cost: 2}}, ErrLengthsNotSorted},
		{"duplicate length", []Type{{Length: 4, Cost: 1}, {Length: 4, Cost: 2}}, ErrLengthsNotSorted},
		{"valid single", []Type{{Length: 1, Cost: 1}}, nil},
		{"valid multi", []Type{{Length: 1, Cost: 1}, {Length: 8, Cost: 4}}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewConfig(tt.types...)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("NewConfig() error = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("NewConfig() error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := MustConfig(Type{Length: 1, Cost: 1}, Type{Length: 4, Cost: 2}, Type{Length: 16, Cost: 5})
	if got := cfg.K(); got != 3 {
		t.Errorf("K() = %d, want 3", got)
	}
	if got := cfg.LMin(); got != 1 {
		t.Errorf("LMin() = %d, want 1", got)
	}
	if got := cfg.LMax(); got != 16 {
		t.Errorf("LMax() = %d, want 16", got)
	}
	if !cfg.IsIntervalModel() {
		t.Error("IsIntervalModel() = false, want true for power-of-two lengths")
	}
	if got := cfg.Length(1); got != 4 {
		t.Errorf("Length(1) = %d, want 4", got)
	}
	if got := cfg.Cost(2); got != 5 {
		t.Errorf("Cost(2) = %v, want 5", got)
	}
	if !cfg.EconomyOfScale() {
		t.Error("EconomyOfScale() = false, want true (1, 0.5, 0.3125 per step)")
	}
}

func TestIsIntervalModelFalse(t *testing.T) {
	cfg := MustConfig(Type{Length: 3, Cost: 1}, Type{Length: 7, Cost: 2})
	if cfg.IsIntervalModel() {
		t.Error("IsIntervalModel() = true for lengths 3 and 7, want false")
	}
}

func TestAlignedStart(t *testing.T) {
	cfg := MustConfig(Type{Length: 4, Cost: 1})
	tests := []struct {
		t    int64
		want int64
	}{
		{0, 0}, {1, 0}, {3, 0}, {4, 4}, {7, 4}, {8, 8},
		{-1, -4}, {-4, -4}, {-5, -8},
	}
	for _, tt := range tests {
		if got := cfg.AlignedStart(0, tt.t); got != tt.want {
			t.Errorf("AlignedStart(0, %d) = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestCoveringContainsT(t *testing.T) {
	cfg := MustConfig(Type{Length: 1, Cost: 1}, Type{Length: 8, Cost: 3}, Type{Length: 64, Cost: 9})
	for _, tm := range []int64{0, 5, 63, 64, 100, 1023, -3} {
		cov := cfg.Covering(tm)
		if len(cov) != cfg.K() {
			t.Fatalf("Covering(%d) returned %d leases, want %d", tm, len(cov), cfg.K())
		}
		for _, l := range cov {
			if !cfg.Covers(l, tm) {
				t.Errorf("Covering(%d) lease %+v does not cover %d", tm, l, tm)
			}
			if l.Start%cfg.Length(l.K) != 0 {
				t.Errorf("Covering(%d) lease %+v not aligned", tm, l)
			}
		}
	}
}

func TestIntersecting(t *testing.T) {
	cfg := MustConfig(Type{Length: 4, Cost: 1}, Type{Length: 16, Cost: 2})
	got := cfg.Intersecting(0, 3, 9)
	want := []Lease{{K: 0, Start: 0}, {K: 0, Start: 4}, {K: 0, Start: 8}}
	if len(got) != len(want) {
		t.Fatalf("Intersecting(0,3,9) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Intersecting(0,3,9)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := cfg.Intersecting(1, 3, 9); len(got) != 1 || got[0] != (Lease{K: 1, Start: 0}) {
		t.Errorf("Intersecting(1,3,9) = %v, want single lease at 0", got)
	}
	if got := cfg.IntersectingAll(3, 9); len(got) != 4 {
		t.Errorf("IntersectingAll(3,9) returned %d leases, want 4", len(got))
	}
}

func TestIntersectingEveryLeaseTouchesRange(t *testing.T) {
	cfg := MustConfig(Type{Length: 2, Cost: 1}, Type{Length: 8, Cost: 2}, Type{Length: 32, Cost: 4})
	f := func(a0 int16, span uint8, k0 uint8) bool {
		a := int64(a0)
		b := a + int64(span)
		k := int(k0) % cfg.K()
		for _, l := range cfg.Intersecting(k, a, b) {
			s, e := cfg.Window(l)
			if e <= a || s > b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundToIntervalModel(t *testing.T) {
	cfg := MustConfig(Type{Length: 3, Cost: 2}, Type{Length: 5, Cost: 3}, Type{Length: 11, Cost: 4})
	r := cfg.RoundToIntervalModel()
	if !r.IsIntervalModel() {
		t.Fatal("rounded config is not interval model")
	}
	// 3 -> 4, 5 -> 8, 11 -> 16.
	wantLens := []int64{4, 8, 16}
	if r.K() != len(wantLens) {
		t.Fatalf("rounded K = %d, want %d", r.K(), len(wantLens))
	}
	for i, w := range wantLens {
		if r.Length(i) != w {
			t.Errorf("rounded length[%d] = %d, want %d", i, r.Length(i), w)
		}
	}
}

func TestRoundToIntervalModelMerges(t *testing.T) {
	// 3 and 4 both round to 4; the cheaper must win.
	cfg := MustConfig(Type{Length: 3, Cost: 7}, Type{Length: 4, Cost: 2})
	r := cfg.RoundToIntervalModel()
	if r.K() != 1 {
		t.Fatalf("rounded K = %d, want 1", r.K())
	}
	if r.Length(0) != 4 || r.Cost(0) != 2 {
		t.Errorf("rounded type = %+v, want {4 2}", r.Type(0))
	}
}

func TestExpandToGeneralFeasibleAndTwiceCost(t *testing.T) {
	orig := MustConfig(Type{Length: 3, Cost: 2}, Type{Length: 10, Cost: 5})
	rounded := orig.RoundToIntervalModel() // lengths 4 and 16
	m := orig.TypeMapToRounded(rounded)
	// An interval-model solution: one lease of each rounded type.
	sol := []Lease{{K: 0, Start: 4}, {K: 1, Start: 16}}
	gen := ExpandToGeneral(orig, rounded, m, sol)
	if len(gen) != 4 {
		t.Fatalf("expanded %d leases, want 4", len(gen))
	}
	wantCost := 2 * rounded.SolutionCost(sol) // costs unchanged by rounding here
	if got := orig.SolutionCost(gen); got != wantCost {
		t.Errorf("expanded cost = %v, want %v", got, wantCost)
	}
	// Every step covered by the rounded solution must be covered by the
	// expansion (Lemma 2.6 feasibility direction).
	for _, l := range sol {
		s, e := rounded.Window(l)
		for tm := s; tm < e; tm++ {
			if !orig.CoversAll(gen, []int64{tm}) {
				t.Fatalf("expanded solution does not cover step %d", tm)
			}
		}
	}
}

func TestStoreBuyAndCovers(t *testing.T) {
	cfg := MustConfig(Type{Length: 2, Cost: 1}, Type{Length: 8, Cost: 3})
	s := NewStore(cfg)
	if s.Covers(5) {
		t.Error("empty store covers 5")
	}
	if !s.Buy(Lease{K: 0, Start: 4}) {
		t.Error("first Buy returned false")
	}
	if s.Buy(Lease{K: 0, Start: 4}) {
		t.Error("duplicate Buy returned true")
	}
	if got := s.TotalCost(); got != 1 {
		t.Errorf("TotalCost = %v, want 1 (duplicate not charged)", got)
	}
	if !s.Covers(4) || !s.Covers(5) || s.Covers(6) || s.Covers(3) {
		t.Errorf("coverage of [4,6) wrong: 4:%v 5:%v 6:%v 3:%v", s.Covers(4), s.Covers(5), s.Covers(6), s.Covers(3))
	}
	s.Buy(Lease{K: 1, Start: 8})
	if !s.CoversWithType(1, 15) || s.CoversWithType(0, 15) {
		t.Error("CoversWithType wrong after buying type-1 lease at 8")
	}
	if got := s.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	ls := s.Leases()
	if len(ls) != 2 || ls[0] != (Lease{K: 0, Start: 4}) || ls[1] != (Lease{K: 1, Start: 8}) {
		t.Errorf("Leases() = %v, want sorted [{0 4} {1 8}]", ls)
	}
}

func TestStoreCoversMatchesBruteForce(t *testing.T) {
	cfg := MustConfig(Type{Length: 2, Cost: 1}, Type{Length: 8, Cost: 3}, Type{Length: 32, Cost: 6})
	rng := rand.New(rand.NewSource(7))
	s := NewStore(cfg)
	var sol []Lease
	for i := 0; i < 40; i++ {
		k := rng.Intn(cfg.K())
		l := cfg.AlignedLease(k, int64(rng.Intn(256)))
		s.Buy(l)
		sol = append(sol, l)
	}
	for tm := int64(-8); tm < 300; tm++ {
		want := false
		for _, l := range sol {
			if cfg.Covers(l, tm) {
				want = true
				break
			}
		}
		if got := s.Covers(tm); got != want {
			t.Fatalf("Covers(%d) = %v, want %v", tm, got, want)
		}
	}
}

func TestPricingGenerators(t *testing.T) {
	t.Run("PowerConfig", func(t *testing.T) {
		cfg := PowerConfig(5, 4, 0.5)
		if !cfg.IsIntervalModel() {
			t.Error("PowerConfig not interval model")
		}
		if !cfg.EconomyOfScale() {
			t.Error("PowerConfig gamma=0.5 should have economy of scale")
		}
		if cfg.K() != 5 {
			t.Errorf("K = %d, want 5", cfg.K())
		}
	})
	t.Run("DoublingConfig", func(t *testing.T) {
		cfg := DoublingConfig(6, 1, 1.5)
		if cfg.K() != 6 || !cfg.IsIntervalModel() {
			t.Errorf("DoublingConfig wrong: K=%d interval=%v", cfg.K(), cfg.IsIntervalModel())
		}
		if !cfg.EconomyOfScale() {
			t.Error("growth 1.5 < 2 must yield economy of scale")
		}
	})
	t.Run("MeyersonLowerBoundConfig", func(t *testing.T) {
		cfg := MeyersonLowerBoundConfig(4)
		if !cfg.IsIntervalModel() {
			t.Error("MeyersonLowerBoundConfig not interval model")
		}
		for k := 0; k < cfg.K(); k++ {
			if want := float64(int64(2) << k); cfg.Cost(k) != want {
				t.Errorf("cost[%d] = %v, want %v", k, cfg.Cost(k), want)
			}
		}
		// Each window must contain at least 2K windows of the previous type.
		for k := 1; k < cfg.K(); k++ {
			if cfg.Length(k)/cfg.Length(k-1) < 8 {
				t.Errorf("length ratio at %d = %d, want >= 2K = 8", k, cfg.Length(k)/cfg.Length(k-1))
			}
		}
	})
	t.Run("TwoTypeConfig", func(t *testing.T) {
		cfg := TwoTypeConfig(4, 100, 0.01)
		if cfg.K() != 2 || cfg.Length(0) != 4 || cfg.Length(1) != 128 {
			t.Errorf("TwoTypeConfig = %+v, want lengths 4 and 128", cfg.Types())
		}
	})
	t.Run("SingleTypeConfig", func(t *testing.T) {
		cfg := SingleTypeConfig(1000, 3)
		if cfg.K() != 1 || cfg.Length(0) != 1024 {
			t.Errorf("SingleTypeConfig = %+v, want one type of length 1024", cfg.Types())
		}
	})
}

func TestNextPowerOfTwo(t *testing.T) {
	tests := []struct{ in, want int64 }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {17, 32}, {1024, 1024}, {1025, 2048}}
	for _, tt := range tests {
		if got := NextPowerOfTwo(tt.in); got != tt.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestCheapestCovering(t *testing.T) {
	cfg := MustConfig(Type{Length: 1, Cost: 5}, Type{Length: 4, Cost: 2}, Type{Length: 16, Cost: 9})
	l := cfg.CheapestCovering(7)
	if l.K != 1 || l.Start != 4 {
		t.Errorf("CheapestCovering(7) = %+v, want type 1 at 4", l)
	}
}

// Property: AlignedLease always covers t and is aligned.
func TestAlignedLeaseProperty(t *testing.T) {
	cfg := MustConfig(Type{Length: 2, Cost: 1}, Type{Length: 16, Cost: 3}, Type{Length: 128, Cost: 8})
	f := func(t0 int32, k0 uint8) bool {
		k := int(k0) % cfg.K()
		tm := int64(t0)
		l := cfg.AlignedLease(k, tm)
		if !cfg.Covers(l, tm) {
			return false
		}
		mod := l.Start % cfg.Length(k)
		return mod == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
