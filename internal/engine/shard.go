package engine

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"leasing/internal/stream"
)

type opKind uint8

const (
	opOpen opKind = iota + 1
	opEvents
	opFlush
	opClose
	opStop
)

// op is one queued operation. Open and Flush carry a reply channel;
// Events carries the payload. The queue is strictly FIFO, which is what
// makes Open a write barrier and Flush a read barrier.
type op struct {
	kind    opKind
	tenant  string
	leaser  stream.Leaser
	events  []stream.Event
	spec    []byte // open spec to WAL-log during install; nil = don't log
	nolog   bool   // close op: skip WAL logging (Restore replays)
	release func() // events op: called once the shard is done with events
	done    chan error
}

// sessionState is the immutable read view a shard publishes for a
// session after each batch that touched it. Decisions and curve are
// length-capped snapshot headers into the Recorder's backing arrays (see
// Recorder.Recorded), so publishing is O(1) and race-free under appends.
type sessionState struct {
	events    int64
	cost      stream.CostBreakdown
	solution  stream.Solution
	decisions []stream.Decision
	curve     []stream.CurvePoint
	closed    bool // sealed; the shard drops further events
	err       error
}

// session is one tenant's serving state. The leaser and recorder are
// owned exclusively by the shard goroutine; everyone else reads the
// published state.
type session struct {
	tenant string
	leaser stream.Leaser
	rec    *stream.Recorder
	state  atomic.Pointer[sessionState]
	failed bool
	closed bool  // sealed by CloseTenant; reads stay valid, events drop
	err    error // the failure, carried into every published state
}

// publish refreshes the session's read view from its leaser.
func (s *session) publish(keepRuns bool) {
	st := &sessionState{
		events:   int64(s.rec.Events()),
		cost:     s.leaser.Cost(),
		solution: s.leaser.Snapshot(),
		closed:   s.closed,
		err:      s.err,
	}
	if keepRuns {
		st.decisions, st.curve = s.rec.Recorded()
	}
	s.state.Store(st)
}

// shard owns a subset of sessions and drains its queue on one goroutine.
// sessions is the goroutine-private registry; reg is its copy-on-write
// published twin for lock-free lookups by readers and Submit-side code.
type shard struct {
	id    int
	cfg   Config
	queue chan op

	// ingest makes durable TrySubmitBatch admissions atomic (room check
	// + reservation); reserved counts slots admitted but not yet
	// enqueued, so the WAL append can run outside the lock without a
	// later admission stealing the room. Unused without a WAL.
	ingest   sync.Mutex
	reserved atomic.Int64

	sessions map[string]*session                 // shard goroutine only
	reg      atomic.Pointer[map[string]*session] // published on Open

	// Counters: written only by the shard goroutine, read via atomics.
	events   atomic.Int64
	batches  atomic.Int64
	dropped  atomic.Int64
	costBits atomic.Uint64 // math.Float64bits of cumulative cost
}

func newShard(id int, cfg Config) *shard {
	sh := &shard{
		id:       id,
		cfg:      cfg,
		queue:    make(chan op, cfg.QueueDepth),
		sessions: make(map[string]*session),
	}
	empty := map[string]*session{}
	sh.reg.Store(&empty)
	return sh
}

// lookup finds a session in the published registry without locking.
func (sh *shard) lookup(tenant string) *session {
	return (*sh.reg.Load())[tenant]
}

// run is the shard goroutine: block for one op, greedily drain more up
// to BatchSize events, apply them in order, then publish the touched
// sessions' state once. It exits on opStop, which Close enqueues last.
func (sh *shard) run(done interface{ Done() }) {
	defer done.Done()
	touched := make(map[*session]struct{}, 16)
	batch := make([]op, 0, 32)
	for {
		batch = append(batch[:0], <-sh.queue)
		n := len(batch[0].events)
	drain:
		for n < sh.cfg.BatchSize && batch[len(batch)-1].kind != opStop {
			select {
			case o := <-sh.queue:
				batch = append(batch, o)
				n += len(o.events)
			default:
				break drain
			}
		}
		stop := false
		for _, o := range batch {
			switch o.kind {
			case opOpen:
				o.done <- sh.open(o.tenant, o.leaser, o.spec)
			case opEvents:
				sh.apply(o, touched)
				// The batch is consumed (applied, partially applied on a
				// session failure, or dropped) — hand its buffers back.
				// The queue drains fully before opStop, so every enqueued
				// batch is released exactly once.
				if o.release != nil {
					o.release()
				}
			case opFlush:
				// All ops queued before this flush have been applied;
				// publish before acking so the barrier covers reads.
				sh.publish(touched)
				o.done <- nil
			case opClose:
				o.done <- sh.close(o.tenant, o.nolog, touched)
			case opStop:
				stop = true
			}
		}
		sh.publish(touched)
		sh.batches.Add(1)
		if stop {
			return
		}
	}
}

// open installs a new session and republishes the registry copy. On a
// durable engine the open record is appended here, between the
// duplicate check and the registry publish: only the winning spec of
// racing duplicate opens is logged, and no submit can observe (and
// therefore log events for) a session whose own open record is not
// already in the log.
func (sh *shard) open(tenant string, l stream.Leaser, spec []byte) error {
	if _, ok := sh.sessions[tenant]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateTenant, tenant)
	}
	if sh.cfg.WAL != nil && spec != nil {
		if err := sh.cfg.WAL.LogOpen(tenant, spec); err != nil {
			return fmt.Errorf("%w: open %q: %v", ErrWAL, tenant, err)
		}
	}
	s := &session{tenant: tenant, leaser: l, rec: stream.NewRecorder(sh.cfg.RecordRuns)}
	s.state.Store(&sessionState{})
	sh.sessions[tenant] = s
	reg := make(map[string]*session, len(sh.sessions))
	for k, v := range sh.sessions {
		reg[k] = v
	}
	sh.reg.Store(&reg)
	return nil
}

// close seals a session: every event queued for the tenant before the
// close op has already been applied (the queue is FIFO), so publishing
// here makes the final state visible before the caller's CloseTenant
// returns. On a durable engine the close record is appended here, after
// validation (unknown and double closes never pollute the log) and in
// the shard's own apply order, so for a well-ordered client the log's
// close position matches the live seal exactly. Restore passes nolog:
// its close is already in the log.
func (sh *shard) close(tenant string, nolog bool, touched map[*session]struct{}) error {
	s, ok := sh.sessions[tenant]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	if s.closed {
		return fmt.Errorf("%w: %q", ErrTenantClosed, tenant)
	}
	if sh.cfg.WAL != nil && !nolog {
		if err := sh.cfg.WAL.LogClose(tenant); err != nil {
			return fmt.Errorf("%w: close %q: %v", ErrWAL, tenant, err)
		}
	}
	s.closed = true
	s.publish(sh.cfg.RecordRuns)
	delete(touched, s)
	return nil
}

// apply feeds one submitted batch into its session. Events for unknown,
// closed or failed sessions are dropped (and counted); a leaser error
// marks the session failed and surfaces through every subsequent read.
func (sh *shard) apply(o op, touched map[*session]struct{}) {
	s, ok := sh.sessions[o.tenant]
	if !ok || s.failed || s.closed {
		sh.dropped.Add(int64(len(o.events)))
		return
	}
	for i, ev := range o.events {
		d, err := s.rec.Observe(s.leaser, ev)
		if err != nil {
			s.failed = true
			s.err = fmt.Errorf("engine: tenant %q: %w", o.tenant, err)
			touched[s] = struct{}{}
			sh.dropped.Add(int64(len(o.events) - i))
			return
		}
		sh.events.Add(1)
		sh.addCost(d.Cost)
	}
	touched[s] = struct{}{}
}

// publish refreshes and clears the touched set.
func (sh *shard) publish(touched map[*session]struct{}) {
	for s := range touched {
		s.publish(sh.cfg.RecordRuns)
		delete(touched, s)
	}
}

// addCost accumulates into the float counter; single-writer, so a plain
// load-add-store on the bits is race-free.
func (sh *shard) addCost(c float64) {
	sh.costBits.Store(math.Float64bits(math.Float64frombits(sh.costBits.Load()) + c))
}

func (sh *shard) metrics() ShardMetrics {
	return ShardMetrics{
		Shard:      sh.id,
		Sessions:   len(*sh.reg.Load()),
		Events:     sh.events.Load(),
		Batches:    sh.batches.Load(),
		Dropped:    sh.dropped.Load(),
		QueueDepth: len(sh.queue),
		Cost:       math.Float64frombits(sh.costBits.Load()),
	}
}
