package engine_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"leasing"
	"leasing/internal/engine"
	"leasing/internal/stream"
)

func parkingLeaser(t *testing.T) stream.Leaser {
	t.Helper()
	cfg := parityConfig(t)
	alg, err := leasing.NewDeterministicParkingPermit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return leasing.NewParkingStream(alg)
}

func TestEngineOpenErrors(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	defer eng.Close()

	if err := eng.Open("a", nil); err == nil {
		t.Error("nil leaser accepted")
	}
	if err := eng.Open("a", parkingLeaser(t)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Open("a", parkingLeaser(t)); !errors.Is(err, engine.ErrDuplicateTenant) {
		t.Errorf("duplicate open: got %v, want ErrDuplicateTenant", err)
	}
}

func TestEngineUnknownTenant(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	defer eng.Close()

	if _, err := eng.Cost("ghost"); !errors.Is(err, engine.ErrUnknownTenant) {
		t.Errorf("Cost: got %v, want ErrUnknownTenant", err)
	}
	if _, err := eng.Snapshot("ghost"); !errors.Is(err, engine.ErrUnknownTenant) {
		t.Errorf("Snapshot: got %v, want ErrUnknownTenant", err)
	}
	if _, err := eng.Events("ghost"); !errors.Is(err, engine.ErrUnknownTenant) {
		t.Errorf("Events: got %v, want ErrUnknownTenant", err)
	}

	// Events for a tenant that was never opened are dropped and counted.
	if err := eng.Submit("ghost", leasing.DayEvent(0)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if m := eng.Metrics(); m.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", m.Dropped)
	}
}

func TestEngineClosed(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	if err := eng.Open("a", parkingLeaser(t)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit("a", leasing.DayEvent(0)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := eng.Submit("a", leasing.DayEvent(1)); !errors.Is(err, engine.ErrClosed) {
		t.Errorf("submit after close: got %v, want ErrClosed", err)
	}
	if err := eng.Open("b", parkingLeaser(t)); !errors.Is(err, engine.ErrClosed) {
		t.Errorf("open after close: got %v, want ErrClosed", err)
	}
	if err := eng.Flush(); !errors.Is(err, engine.ErrClosed) {
		t.Errorf("flush after close: got %v, want ErrClosed", err)
	}
	// Close drained the queued event; cached reads survive.
	cost, err := eng.Cost("a")
	if err != nil {
		t.Fatal(err)
	}
	if cost.Total() <= 0 {
		t.Errorf("cost after close = %v, want > 0", cost.Total())
	}
}

func TestEngineSessionFailure(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	defer eng.Close()
	if err := eng.Open("a", parkingLeaser(t)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit("a", leasing.DayEvent(3)); err != nil {
		t.Fatal(err)
	}
	// A payload the parking leaser rejects fails the session...
	if err := eng.Submit("a", leasing.ConnectEvent(5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// ...and later events are dropped, not processed.
	if err := eng.Submit("a", leasing.DayEvent(9)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Cost("a"); err == nil {
		t.Error("Cost of failed session returned no error")
	}
	if _, err := eng.Snapshot("a"); err == nil {
		t.Error("Snapshot of failed session returned no error")
	}
	m := eng.Metrics()
	if m.Events != 1 {
		t.Errorf("events = %d, want 1 (only the pre-failure event)", m.Events)
	}
	if m.Dropped != 2 {
		t.Errorf("dropped = %d, want 2 (the failing event and its successor)", m.Dropped)
	}
	// The pre-failure state is still readable alongside the error.
	n, err := eng.Events("a")
	if err == nil {
		t.Error("Events of failed session returned no error")
	}
	if n != 1 {
		t.Errorf("events processed before failure = %d, want 1", n)
	}
}

// TestEngineCloseRacesWriters closes the engine while producers are
// mid-flight: every Submit must either land before the drain or return
// ErrClosed — never hang or panic. (Run under -race in CI.)
func TestEngineCloseRacesWriters(t *testing.T) {
	for round := 0; round < 20; round++ {
		eng := engine.New(engine.Config{Shards: 2, QueueDepth: 2, BatchSize: 4})
		if err := eng.Open("a", parkingLeaser(t)); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for d := int64(0); d < 50; d++ {
					if err := eng.Submit("a", leasing.DayEvent(d)); errors.Is(err, engine.ErrClosed) {
						return
					} else if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
				}
			}()
		}
		go eng.Close()
		wg.Wait()
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); !errors.Is(err, engine.ErrClosed) {
			t.Errorf("flush after close: got %v, want ErrClosed", err)
		}
	}
}

func TestEngineResultRequiresRecording(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 1})
	defer eng.Close()
	if err := eng.Open("a", parkingLeaser(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Result("a"); !errors.Is(err, engine.ErrNotRecording) {
		t.Errorf("got %v, want ErrNotRecording", err)
	}
}

func TestEngineMetrics(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 4, BatchSize: 8})
	defer eng.Close()

	days := []int64{0, 1, 2, 3, 9, 17}
	tenants := []string{"alpha", "beta", "gamma"}
	var wantCost float64
	for _, tenant := range tenants {
		lsr := parkingLeaser(t)
		if err := eng.Open(tenant, lsr); err != nil {
			t.Fatal(err)
		}
		ref := parkingLeaser(t)
		run, err := stream.Replay(ref, leasing.DayEvents(days))
		if err != nil {
			t.Fatal(err)
		}
		wantCost += run.Total()
	}
	for _, tenant := range tenants {
		if err := eng.SubmitBatch(tenant, leasing.DayEvents(days)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if m.Sessions != len(tenants) {
		t.Errorf("sessions = %d, want %d", m.Sessions, len(tenants))
	}
	if want := int64(len(tenants) * len(days)); m.Events != want {
		t.Errorf("events = %d, want %d", m.Events, want)
	}
	if m.Batches == 0 {
		t.Error("batches = 0, want > 0")
	}
	if math.Abs(m.Cost-wantCost) > 1e-9 {
		t.Errorf("metrics cost = %v, want %v", m.Cost, wantCost)
	}
	if len(m.Shards) != 4 {
		t.Errorf("shard samples = %d, want 4", len(m.Shards))
	}
}
