package engine_test

// Tests for the serving-layer hooks: non-blocking ingestion
// (TrySubmitBatch -> ErrBackpressure) and per-tenant session sealing
// (CloseTenant), both added for the HTTP service in internal/server.

import (
	"errors"
	"sync"
	"testing"

	"leasing"
	"leasing/internal/engine"
	"leasing/internal/stream"
)

// wedgedLeaser blocks its first Observe until released, pinning the
// shard goroutine so queue state is controllable from the test.
type wedgedLeaser struct {
	release <-chan struct{}
	once    sync.Once
}

func (l *wedgedLeaser) Observe(stream.Event) (stream.Decision, error) {
	l.once.Do(func() { <-l.release })
	return stream.Decision{Cost: 1}, nil
}
func (l *wedgedLeaser) Cost() stream.CostBreakdown { return stream.CostBreakdown{} }
func (l *wedgedLeaser) Snapshot() stream.Solution  { return stream.Solution{} }

func TestTrySubmitBatchBackpressure(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 1, QueueDepth: 1, BatchSize: 1})
	defer eng.Close()
	release := make(chan struct{})
	if err := eng.Open("acme", &wedgedLeaser{release: release}); err != nil {
		t.Fatal(err)
	}

	// Wedge the shard with one event, then fill the queue. Eventually a
	// TrySubmitBatch must fail fast with ErrBackpressure instead of
	// blocking like SubmitBatch would.
	ev := []stream.Event{{Time: 0}}
	sawBackpressure := false
	for i := 0; i < 10 && !sawBackpressure; i++ {
		if err := eng.TrySubmitBatch("acme", ev); err != nil {
			if !errors.Is(err, engine.ErrBackpressure) {
				t.Fatalf("unexpected error %v", err)
			}
			sawBackpressure = true
		}
	}
	if !sawBackpressure {
		t.Fatal("queue never reported backpressure")
	}
	close(release)
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	// With the shard drained, TrySubmitBatch accepts again.
	if err := eng.TrySubmitBatch("acme", []stream.Event{{Time: 1}}); err != nil {
		t.Fatalf("post-drain try-submit: %v", err)
	}
}

func TestTrySubmitBatchAfterClose(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 1})
	eng.Close()
	err := eng.TrySubmitBatch("acme", []stream.Event{{Time: 0}})
	if !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("error %v, want ErrClosed", err)
	}
}

func TestCloseTenant(t *testing.T) {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Shards: 2, RecordRuns: true})
	defer eng.Close()

	alg, err := leasing.NewDeterministicParkingPermit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Open("acme", leasing.NewParkingStream(alg)); err != nil {
		t.Fatal(err)
	}

	if err := eng.CloseTenant("ghost"); !errors.Is(err, engine.ErrUnknownTenant) {
		t.Errorf("close unknown: %v, want ErrUnknownTenant", err)
	}

	if err := eng.SubmitBatch("acme", leasing.DayEvents([]int64{0, 1, 2})); err != nil {
		t.Fatal(err)
	}
	// CloseTenant is a per-tenant barrier: the three queued events are
	// processed and published before it returns, no Flush needed.
	if err := eng.CloseTenant("acme"); err != nil {
		t.Fatal(err)
	}
	n, err := eng.Events("acme")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("events at close = %d, want 3", n)
	}
	cost, err := eng.Cost("acme")
	if err != nil {
		t.Fatal(err)
	}

	if err := eng.CloseTenant("acme"); !errors.Is(err, engine.ErrTenantClosed) {
		t.Errorf("double close: %v, want ErrTenantClosed", err)
	}

	// Post-close events are dropped and counted; the final state stays.
	if err := eng.SubmitBatch("acme", leasing.DayEvents([]int64{3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, _ := eng.Events("acme"); n != 3 {
		t.Errorf("events after post-close submit = %d, want 3", n)
	}
	if c, _ := eng.Cost("acme"); c != cost {
		t.Errorf("cost changed after close: %+v -> %+v", cost, c)
	}
	if m := eng.Metrics(); m.Dropped != 2 {
		t.Errorf("dropped = %d, want 2", m.Dropped)
	}
	if run, err := eng.Result("acme"); err != nil || len(run.Decisions) != 3 {
		t.Errorf("result after close: run %v, err %v (want 3 decisions)", run, err)
	}
}
