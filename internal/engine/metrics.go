package engine

// ShardMetrics is one shard's counter sample: cumulative totals since
// New, except QueueDepth which is instantaneous.
type ShardMetrics struct {
	// Shard is the shard's index.
	Shard int `json:"shard"`
	// Sessions is the number of open sessions the shard owns.
	Sessions int `json:"sessions"`
	// Events counts events successfully processed.
	Events int64 `json:"events"`
	// Batches counts processing wakes (queue drains); Events/Batches is
	// the achieved batching factor.
	Batches int64 `json:"batches"`
	// Dropped counts events discarded because their tenant was unknown
	// or its session had failed.
	Dropped int64 `json:"dropped"`
	// QueueDepth is the number of queued operations at sample time.
	QueueDepth int `json:"queue_depth"`
	// Cost is the cumulative cost of every decision the shard's
	// sessions have made.
	Cost float64 `json:"cost"`
}

// Metrics aggregates the per-shard samples engine-wide.
type Metrics struct {
	Shards     []ShardMetrics `json:"shards"`
	Sessions   int            `json:"sessions"`
	Events     int64          `json:"events"`
	Batches    int64          `json:"batches"`
	Dropped    int64          `json:"dropped"`
	QueueDepth int            `json:"queue_depth"`
	Cost       float64        `json:"cost"`
}
