package engine_test

// Determinism anchor of the engine: for any fixed tenant, the engine's
// recorded output must be byte-identical to a single-threaded Replay of
// that tenant's events — for ANY shard count and ANY batch size, and no
// matter how submission is chunked or interleaved with other tenants.
// The tenant cases mirror the public conformance suite: all eight domain
// leasers, built deterministically so a fresh construction replays the
// same decisions.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"leasing"
	"leasing/internal/engine"
	"leasing/internal/stream"
	"leasing/internal/workload"
)

// tenantCase is one domain workload: a fixed event stream plus a factory
// returning a fresh, deterministically-constructed leaser per call.
type tenantCase struct {
	name   string
	events []stream.Event
	fresh  func() (stream.Leaser, error)
}

func parityConfig(t *testing.T) *leasing.LeaseConfig {
	t.Helper()
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2},
		leasing.LeaseType{Length: 16, Cost: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// tenantCases builds one case per domain with workload-generated streams
// sized to span many engine batches.
func tenantCases(t *testing.T) []tenantCase {
	t.Helper()
	cfg := parityConfig(t)
	var cases []tenantCase

	days := workload.DemandDays(rand.New(rand.NewSource(1)), 200, 0.3)
	cases = append(cases, tenantCase{
		name:   "parking",
		events: leasing.DayEvents(days),
		fresh: func() (stream.Leaser, error) {
			alg, err := leasing.NewDeterministicParkingPermit(cfg)
			if err != nil {
				return nil, err
			}
			return leasing.NewParkingStream(alg), nil
		},
	})
	cases = append(cases, tenantCase{
		name:   "parking-randomized",
		events: leasing.DayEvents(days),
		fresh: func() (stream.Leaser, error) {
			alg, err := leasing.NewRandomizedParkingPermit(cfg, rand.New(rand.NewSource(11)))
			if err != nil {
				return nil, err
			}
			return leasing.NewParkingStream(alg), nil
		},
	})

	clients := workload.DeadlineStream(rand.New(rand.NewSource(2)), 150, 0.4, 9)
	cases = append(cases, tenantCase{
		name:   "deadline",
		events: leasing.WindowEvents(clients),
		fresh: func() (stream.Leaser, error) {
			return leasing.NewDeadlineStream(cfg)
		},
	})

	scRng := rand.New(rand.NewSource(3))
	zipf, err := workload.NewZipf(scRng, 12, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.ElementStream(scRng, 120, 0.5,
		zipf.Draw, func() int { return 1 + scRng.Intn(2) })
	fam, err := leasing.RandomSetFamily(rand.New(rand.NewSource(4)), 12, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	costs := leasing.RandomSetCosts(rand.New(rand.NewSource(5)), 8, cfg, 0.5)
	scInst, err := leasing.NewSetCoverInstance(fam, cfg, costs, arrivals, leasing.PerArrival)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tenantCase{
		name:   "setcover",
		events: leasing.ElementEvents(arrivals),
		fresh: func() (stream.Leaser, error) {
			return leasing.NewSetCoverStream(scInst, rand.New(rand.NewSource(7)))
		},
	})

	facRng := rand.New(rand.NewSource(6))
	sites := []leasing.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 8}}
	batches := make([][]leasing.Point, 40)
	for i := range batches {
		for c := facRng.Intn(3); c > 0; c-- {
			s := sites[facRng.Intn(len(sites))]
			batches[i] = append(batches[i], leasing.Point{
				X: s.X + facRng.Float64()*2, Y: s.Y + facRng.Float64()*2})
		}
	}
	facInst, err := leasing.NewFacilityInstance(cfg, sites,
		[][]float64{{1, 2, 5}, {1, 2, 5}, {1.5, 3, 6}}, batches)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tenantCase{
		name:   "facility",
		events: leasing.BatchEvents(batches),
		fresh: func() (stream.Leaser, error) {
			return leasing.NewFacilityStream(facInst)
		},
	})

	scldFam, err := leasing.NewSetFamily(4, [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	scldRng := rand.New(rand.NewSource(8))
	var scldArrivals []leasing.SCLDArrival
	for tm := int64(0); tm < 80; tm++ {
		if scldRng.Float64() < 0.4 {
			scldArrivals = append(scldArrivals, leasing.SCLDArrival{
				T: tm, Elem: scldRng.Intn(4), D: int64(scldRng.Intn(5))})
		}
	}
	scldInst, err := leasing.NewSCLDInstance(scldFam, cfg,
		[][]float64{{1, 2, 4}, {1, 2, 4}, {1, 2, 4}, {1, 2, 4}}, scldArrivals)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tenantCase{
		name:   "scld",
		events: leasing.ElementWindowEvents(scldArrivals),
		fresh: func() (stream.Leaser, error) {
			return leasing.NewSCLDStream(scldInst, rand.New(rand.NewSource(9)))
		},
	})

	g, err := leasing.RandomConnectedGraph(rand.New(rand.NewSource(10)), 12, 24, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	connects, err := workload.ConnectStream(rand.New(rand.NewSource(12)), 90, 0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]leasing.SteinerRequest, len(connects))
	for i, c := range connects {
		reqs[i] = leasing.SteinerRequest{Time: c.T, S: c.S, T: c.U}
	}
	stInst, err := leasing.NewSteinerInstance(g, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tenantCase{
		name:   "steiner",
		events: leasing.ConnectEvents(reqs),
		fresh: func() (stream.Leaser, error) {
			return leasing.NewSteinerStream(stInst)
		},
	})

	ruRng := rand.New(rand.NewSource(13))
	var ruReqs []leasing.ReusableRequest
	for tm := int64(0); tm < 160; tm++ {
		if ruRng.Float64() < 0.45 {
			ruReqs = append(ruReqs, leasing.ReusableRequest{T: tm, Dur: int64(ruRng.Intn(10))})
		}
	}
	ruInst, err := leasing.NewReusableInstance(cfg, 2, ruReqs)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tenantCase{
		name:   "reusable",
		events: leasing.UseEvents(ruReqs),
		fresh: func() (stream.Leaser, error) {
			return leasing.NewReusableStream(ruInst)
		},
	})

	return cases
}

// TestEngineParityWithReplay is the table-driven anchor: shard counts
// {1, 4, 16} crossed with batch sizes {1, 8, 64}, every domain tenant
// submitted concurrently in uneven chunks, then each tenant's Result,
// Cost, Events and Snapshot compared against a fresh single-threaded
// Replay — including a byte-level comparison of the formatted runs.
func TestEngineParityWithReplay(t *testing.T) {
	cases := tenantCases(t)
	for _, shards := range []int{1, 4, 16} {
		for _, batch := range []int{1, 8, 64} {
			t.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(t *testing.T) {
				eng := engine.New(engine.Config{
					Shards:     shards,
					BatchSize:  batch,
					QueueDepth: 4, // tiny queue so backpressure engages
					RecordRuns: true,
				})
				defer eng.Close()

				for _, tc := range cases {
					lsr, err := tc.fresh()
					if err != nil {
						t.Fatalf("%s: fresh: %v", tc.name, err)
					}
					if err := eng.Open(tc.name, lsr); err != nil {
						t.Fatalf("%s: open: %v", tc.name, err)
					}
				}

				// One producer per tenant, chunk sizes cycling 1..5 so
				// batch boundaries never align with event boundaries.
				var wg sync.WaitGroup
				for i, tc := range cases {
					wg.Add(1)
					go func(i int, tc tenantCase) {
						defer wg.Done()
						evs := tc.events
						for n := 0; len(evs) > 0; n++ {
							chunk := 1 + (i+n)%5
							if chunk > len(evs) {
								chunk = len(evs)
							}
							if err := eng.SubmitBatch(tc.name, evs[:chunk]); err != nil {
								t.Errorf("%s: submit: %v", tc.name, err)
								return
							}
							evs = evs[chunk:]
						}
					}(i, tc)
				}
				wg.Wait()
				if err := eng.Flush(); err != nil {
					t.Fatal(err)
				}

				for _, tc := range cases {
					got, err := eng.Result(tc.name)
					if err != nil {
						t.Fatalf("%s: result: %v", tc.name, err)
					}
					ref, err := tc.fresh()
					if err != nil {
						t.Fatal(err)
					}
					want, err := stream.Replay(ref, tc.events)
					if err != nil {
						t.Fatalf("%s: replay: %v", tc.name, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: engine run differs from Replay", tc.name)
					}
					gb, wb := fmt.Sprintf("%#v", got), fmt.Sprintf("%#v", want)
					if gb != wb {
						t.Errorf("%s: formatted runs not byte-identical:\nengine %s\nreplay %s",
							tc.name, gb, wb)
					}
					cost, err := eng.Cost(tc.name)
					if err != nil {
						t.Fatal(err)
					}
					if cost != want.Final {
						t.Errorf("%s: cached cost %+v != replay final %+v", tc.name, cost, want.Final)
					}
					n, err := eng.Events(tc.name)
					if err != nil {
						t.Fatal(err)
					}
					if n != int64(len(tc.events)) {
						t.Errorf("%s: engine processed %d events, want %d", tc.name, n, len(tc.events))
					}
					sol, err := eng.Snapshot(tc.name)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(sol, ref.Snapshot()) {
						t.Errorf("%s: cached snapshot differs from replay snapshot", tc.name)
					}
				}

				// Reads stay valid after a graceful close.
				if err := eng.Close(); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Cost(cases[0].name); err != nil {
					t.Errorf("cost after close: %v", err)
				}
			})
		}
	}
}
