// Package engine is the sharded, multi-tenant serving layer over the
// stream protocol: it multiplexes many independent stream.Leaser sessions
// — one per tenant — across a fixed set of shards, each shard owning its
// sessions and draining a batched event queue on its own goroutine.
//
// The design is single-writer throughout. A tenant is hashed (FNV-1a) to
// exactly one shard, so a tenant's events are processed in submission
// order by one goroutine and no lock ever guards a Leaser: within a shard
// the only synchronization is the ingestion channel itself (whose bounded
// capacity is the backpressure) and atomically published snapshots.
// Readers never touch a Leaser: Cost, Snapshot, Events and Result serve
// from per-session state the shard publishes after each processed batch,
// and the session registry is a copy-on-write map republished on Open.
//
// Because each session is driven by the same stream.Recorder that powers
// the single-threaded Replay driver, a tenant's recorded run is
// byte-identical to Replay of that tenant's events for any shard count
// and any batch size — the determinism anchor the parity tests enforce.
//
// With Config.WAL set the engine is durable: every acknowledged
// operation is in the write-ahead log before its caller learns it
// succeeded — event batches and closes are appended before the owning
// shard even sees them, and opens are appended once the shard installs
// the session (so racing duplicate opens log only the winning spec) —
// and Restore replays a recovered history back into a fresh engine
// without re-logging it. The log implementation lives in internal/wal;
// the engine only speaks the WAL interface.
package engine

import (
	"errors"
	"fmt"
	"sync"

	"leasing/internal/stream"
)

// Sentinel errors of the engine API; returned errors wrap these together
// with the offending tenant where applicable.
var (
	// ErrClosed is returned by every operation after Close (and by
	// writes after Drain has begun).
	ErrClosed = errors.New("engine: closed")
	// ErrUnknownTenant is returned by reads and reported in metrics for
	// events addressed to a tenant that was never opened.
	ErrUnknownTenant = errors.New("engine: unknown tenant")
	// ErrDuplicateTenant is returned by Open for an already-open tenant.
	ErrDuplicateTenant = errors.New("engine: tenant already open")
	// ErrNotRecording is returned by Result when the engine was built
	// without RecordRuns.
	ErrNotRecording = errors.New("engine: RecordRuns disabled")
	// ErrBackpressure is returned by TrySubmitBatch when the owning
	// shard's queue is full, instead of blocking like SubmitBatch does.
	// The serving layer maps it to HTTP 429.
	ErrBackpressure = errors.New("engine: shard queue full")
	// ErrTenantClosed is returned by CloseTenant for an already-closed
	// tenant; events submitted after CloseTenant are dropped and counted.
	ErrTenantClosed = errors.New("engine: tenant closed")
	// ErrWAL wraps write-ahead-log append failures. The operation was
	// not applied (nothing reaches a shard unlogged), so the session is
	// exactly as durable as the last successful append.
	ErrWAL = errors.New("engine: wal append failed")
	// ErrSpecRequired is returned by Open on a durable engine: without a
	// spec the session could never be rebuilt on recovery, so durable
	// sessions must be opened through OpenSpec.
	ErrSpecRequired = errors.New("engine: durable engine requires an open spec")
)

// WAL is the durability hook: when Config.WAL is set, the engine appends
// every acknowledged open, event batch and close through it before the
// owning shard applies the operation. internal/wal implements it; the
// engine deliberately depends only on this interface so the log can
// reuse the wire encodings without an import cycle.
type WAL interface {
	// LogOpen appends a session open: the tenant and the spec that
	// deterministically rebuilds its algorithm on recovery.
	LogOpen(tenant string, spec []byte) error
	// LogEvents appends one acknowledged event batch in submission
	// order. It must be durable when it returns nil.
	LogEvents(tenant string, evs []stream.Event) error
	// LogClose appends a session seal.
	LogClose(tenant string) error
}

// Config sizes the engine. The zero value is usable: every field falls
// back to the default documented on it.
type Config struct {
	// Shards is the number of shard goroutines sessions are hashed
	// across. Default 8.
	Shards int
	// QueueDepth is the per-shard ingestion queue capacity in submitted
	// operations; a full queue blocks Submit (backpressure). Default 256.
	QueueDepth int
	// BatchSize caps how many events a shard drains per processing wake;
	// cached read state is republished once per batch, so BatchSize
	// trades read freshness for ingestion throughput. Default 64.
	BatchSize int
	// RecordRuns keeps each session's full decision list and cost curve
	// so Result can return the per-tenant *stream.Run (what the parity
	// tests compare against Replay). Off by default: long-lived sessions
	// then run in constant memory.
	RecordRuns bool
	// WAL, when non-nil, makes the engine durable: every acknowledged
	// write is appended through it before its shard applies it. Sessions
	// must then be opened with OpenSpec so recovery can rebuild them.
	WAL WAL
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 8
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.BatchSize < 1 {
		c.BatchSize = 64
	}
	return c
}

// Engine multiplexes independent tenant sessions across shards. All
// methods are safe for concurrent use — an Open/Submit/Flush racing
// Close either completes before the drain or returns ErrClosed — with
// one ordering caveat: events of a single tenant must be submitted from
// one goroutine (or otherwise externally ordered), since per-tenant
// determinism is defined by submission order.
type Engine struct {
	cfg    Config
	shards []*shard
	// mu makes the closed-check-and-enqueue atomic against Close, so no
	// operation can slip into a queue behind the stop marker (which
	// would hang its caller forever). Writers hold it shared; Close
	// holds it exclusively while flipping closed and enqueueing stops.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// New starts an engine with cfg's shard goroutines running. Callers must
// Close it to release them.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range e.shards {
		e.shards[i] = newShard(i, cfg)
		e.wg.Add(1)
		go e.shards[i].run(&e.wg)
	}
	return e
}

// shardIndex hashes a tenant ID with FNV-1a; the hash fixes which shard
// owns the tenant for the engine's lifetime.
func shardIndex(tenant string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(tenant); i++ {
		h ^= uint32(tenant[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

func (e *Engine) shardFor(tenant string) *shard {
	return e.shards[shardIndex(tenant, len(e.shards))]
}

// send enqueues one op unless the engine is closed; the shared lock
// guarantees the op lands ahead of any stop marker.
func (e *Engine) send(sh *shard, o op) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	sh.queue <- o
	return nil
}

// Open registers a new tenant session served by l. It returns once the
// owning shard has installed the session, so events submitted afterwards
// (from the same goroutine) are guaranteed to find it. On a durable
// engine Open fails with ErrSpecRequired — use OpenSpec, so recovery
// can rebuild the session.
func (e *Engine) Open(tenant string, l stream.Leaser) error {
	return e.OpenSpec(tenant, l, nil)
}

// OpenSpec is Open carrying the spec that deterministically rebuilds the
// session's algorithm. On a durable engine the owning shard appends the
// spec to the WAL as it installs the session — after the duplicate
// check, so racing duplicate opens log only the winning spec, and
// before the registry publish, so no submit can observe (and log events
// for) a session ahead of its own open record. A failed append leaves
// the session uninstalled. Recovery replays the spec through the same
// spec-to-algorithm mapping the caller used to build l. Without a WAL
// the spec is ignored.
func (e *Engine) OpenSpec(tenant string, l stream.Leaser, spec []byte) error {
	if l == nil {
		return fmt.Errorf("engine: open %q: nil leaser", tenant)
	}
	if e.cfg.WAL == nil {
		return e.open(tenant, l, nil)
	}
	if len(spec) == 0 {
		return fmt.Errorf("%w: %q", ErrSpecRequired, tenant)
	}
	return e.open(tenant, l, spec)
}

// open installs the session; the shard logs spec during the install
// when non-nil (Restore passes nil — its open is already logged).
func (e *Engine) open(tenant string, l stream.Leaser, spec []byte) error {
	done := make(chan error, 1)
	if err := e.send(e.shardFor(tenant), op{kind: opOpen, tenant: tenant, leaser: l, spec: spec, done: done}); err != nil {
		return err
	}
	return <-done
}

// isClosed samples the closed flag; the authoritative check is send's.
func (e *Engine) isClosed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closed
}

// Submit enqueues one event for the tenant, blocking while the owning
// shard's queue is full. Delivery is asynchronous: an event for an
// unknown (or failed) tenant is counted as dropped in Metrics rather
// than reported here.
func (e *Engine) Submit(tenant string, ev stream.Event) error {
	return e.SubmitBatch(tenant, []stream.Event{ev})
}

// SubmitBatch enqueues a batch of events for the tenant as one queue
// operation (the cheap path for bulk ingestion). The engine takes
// ownership of evs; callers must not mutate it afterwards. On a durable
// engine the batch is appended to the WAL before it is enqueued, so a
// nil return means the events are both logged and queued. (In the
// narrow crash window where the batch was logged but the submit still
// failed with ErrClosed, recovery replays it anyway — the authoritative
// resume point after a restart is the tenant's processed-event count,
// not the submitter's last acknowledged offset.)
func (e *Engine) SubmitBatch(tenant string, evs []stream.Event) error {
	if len(evs) == 0 {
		return nil
	}
	sh := e.shardFor(tenant)
	if e.cfg.WAL != nil && loggable(sh, tenant) {
		if e.isClosed() {
			return ErrClosed
		}
		if err := e.cfg.WAL.LogEvents(tenant, evs); err != nil {
			return fmt.Errorf("%w: %q: %v", ErrWAL, tenant, err)
		}
	}
	return e.send(sh, op{kind: opEvents, tenant: tenant, events: evs})
}

// loggable reports whether a batch for the tenant belongs in the WAL: a
// batch the shard will only drop (never-opened, sealed or failed
// session) is not logged — recovery would drop it identically, and
// logging it would let a misaddressed or misbehaving producer grow the
// log without bound. The check is best-effort against the published
// state, and under the documented ordering contract — a tenant's
// submits come from one goroutine, and CloseTenant is ordered with them
// — it is exact: the registry publishes before Open returns and seals
// publish before CloseTenant returns. A CloseTenant racing an in-flight
// submit from another goroutine is outside that contract: the raced
// batch may be logged ahead of the close record and dropped live but
// replayed on recovery (or vice versa) — per-tenant determinism is
// defined by submission order, which a race leaves undefined.
func loggable(sh *shard, tenant string) bool {
	s := sh.lookup(tenant)
	if s == nil {
		return false
	}
	st := s.state.Load()
	return !st.closed && st.err == nil
}

// TrySubmitBatch is the non-blocking SubmitBatch: if the owning shard's
// queue has room the batch is enqueued exactly as SubmitBatch would, and
// otherwise ErrBackpressure is returned immediately with no events
// accepted. It is the ingestion hook for servers that must convert
// backpressure into a retryable signal (HTTP 429) instead of stalling a
// request-handling goroutine. Like SubmitBatch, the engine takes
// ownership of evs on success.
func (e *Engine) TrySubmitBatch(tenant string, evs []stream.Event) error {
	return e.TrySubmitBatchRelease(tenant, evs, nil)
}

// TrySubmitBatchRelease is TrySubmitBatch with a buffer-recycling hook:
// on a nil return, release (when non-nil) is called exactly once, after
// the owning shard has consumed evs — applied, dropped, or drained
// during Close — so callers that decode into pooled batches know when
// the batch (and every payload it points into) may be reused. On a
// non-nil return nothing was enqueued, release is not called, and
// ownership of evs stays with the caller. release runs on the shard
// goroutine and must not block.
func (e *Engine) TrySubmitBatchRelease(tenant string, evs []stream.Event, release func()) error {
	if len(evs) == 0 {
		return nil
	}
	sh := e.shardFor(tenant)
	if e.cfg.WAL == nil || !loggable(sh, tenant) {
		// No WAL, or a batch the shard will only drop and count —
		// nothing to make durable (see loggable).
		e.mu.RLock()
		defer e.mu.RUnlock()
		if e.closed {
			return ErrClosed
		}
		select {
		case sh.queue <- op{kind: opEvents, tenant: tenant, events: evs, release: release}:
			return nil
		default:
			return fmt.Errorf("%w: %q", ErrBackpressure, tenant)
		}
	}
	// Durable path: the admission decision comes first, so a batch that
	// 429s is never in the log — logging first and discovering a full
	// queue after would make the client's resubmission a duplicate that
	// recovery replays twice. Admission reserves a queue slot (under the
	// brief ingest lock only), then the WAL append runs outside every
	// lock so concurrent tenants share group-committed fsyncs, then the
	// reserved enqueue completes. The send can still wait briefly if a
	// control op takes the measured slot, but it can never deadlock (the
	// shard goroutine always drains) and never turns into a 429.
	if e.isClosed() {
		return ErrClosed
	}
	sh.ingest.Lock()
	if int(sh.reserved.Load())+len(sh.queue) >= cap(sh.queue) {
		sh.ingest.Unlock()
		return fmt.Errorf("%w: %q", ErrBackpressure, tenant)
	}
	sh.reserved.Add(1)
	sh.ingest.Unlock()
	defer sh.reserved.Add(-1)
	if err := e.cfg.WAL.LogEvents(tenant, evs); err != nil {
		return fmt.Errorf("%w: %q: %v", ErrWAL, tenant, err)
	}
	// In the narrow window where Close began after the append, the batch
	// is logged but not applied; recovery replays it, and resuming
	// clients follow the processed-event count (see SubmitBatch).
	return e.send(sh, op{kind: opEvents, tenant: tenant, events: evs, release: release})
}

// CloseTenant seals one tenant's session: it returns once every event
// submitted for the tenant before the call has been processed and the
// final session state published, after which further events for the
// tenant are dropped (and counted in Metrics) while Cost, Snapshot,
// Events and Result keep serving the final state. Closing an unknown
// tenant returns ErrUnknownTenant; closing twice returns ErrTenantClosed.
func (e *Engine) CloseTenant(tenant string) error {
	done := make(chan error, 1)
	if err := e.send(e.shardFor(tenant), op{kind: opClose, tenant: tenant, done: done}); err != nil {
		return err
	}
	return <-done
}

// Restored is one recovered tenant session: the leaser rebuilt from its
// logged spec, its full logged event history in order, and whether it
// was sealed.
type Restored struct {
	Tenant string
	Leaser stream.Leaser
	Events []stream.Event
	Closed bool
}

// Restore replays recovered sessions into the engine, bypassing the WAL
// (the history is already logged): each session is opened, its events
// are enqueued in order, sealed sessions are re-sealed, and Restore
// returns after a full flush — so every recovered session's published
// state is current when it returns. Because the replay runs through the
// same per-session Recorder as live traffic, a restored session is
// byte-identical to one that processed the history live, including
// sessions whose algorithm failed mid-history. Call it once, before
// serving new traffic.
func (e *Engine) Restore(sessions []Restored) error {
	for _, s := range sessions {
		if err := e.open(s.Tenant, s.Leaser, nil); err != nil {
			return fmt.Errorf("engine: restore %q: %w", s.Tenant, err)
		}
		if len(s.Events) > 0 {
			//lint:allow-walorder recovery replays events already durable in the WAL; re-logging them would duplicate records
			if err := e.send(e.shardFor(s.Tenant), op{kind: opEvents, tenant: s.Tenant, events: s.Events}); err != nil {
				return fmt.Errorf("engine: restore %q: %w", s.Tenant, err)
			}
		}
		if s.Closed {
			done := make(chan error, 1)
			if err := e.send(e.shardFor(s.Tenant), op{kind: opClose, tenant: s.Tenant, nolog: true, done: done}); err != nil {
				return fmt.Errorf("engine: restore %q: %w", s.Tenant, err)
			}
			if err := <-done; err != nil {
				return fmt.Errorf("engine: restore %q: %w", s.Tenant, err)
			}
		}
	}
	return e.Flush()
}

// Flush blocks until every event submitted before the call has been
// processed and its session state published. It is the read barrier:
// after Flush, Cost/Snapshot/Result reflect all prior submissions.
func (e *Engine) Flush() error {
	done := make(chan error, len(e.shards))
	sent := 0
	for _, sh := range e.shards {
		if err := e.send(sh, op{kind: opFlush, done: done}); err != nil {
			return err
		}
		sent++
	}
	for ; sent > 0; sent-- {
		if err := <-done; err != nil {
			return err
		}
	}
	return nil
}

// Close drains gracefully: it stops accepting new work, processes
// everything already queued, publishes final session state, and stops
// the shard goroutines. Close is idempotent and safe to race with
// writers — an operation either lands before the drain (and is fully
// processed) or returns ErrClosed. Reads remain valid afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		for _, sh := range e.shards {
			sh.queue <- op{kind: opStop}
		}
	}
	e.mu.Unlock()
	// Every Close waits for the drain, so the post-Close read guarantee
	// holds for concurrent callers too, not just the first one.
	e.wg.Wait()
	return nil
}

// Has reports whether the tenant has a session on this engine — open,
// failed or sealed. It reads the shard's published registry, so a
// session is visible once its open has been applied (OpenSpec returns
// only then).
func (e *Engine) Has(tenant string) bool {
	return e.shardFor(tenant).lookup(tenant) != nil
}

// session looks a tenant up in its shard's published registry.
func (e *Engine) session(tenant string) (*session, error) {
	s := e.shardFor(tenant).lookup(tenant)
	if s == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	return s, nil
}

// Cost returns the tenant's cached cumulative cost breakdown, current as
// of the last batch its shard processed (Flush to synchronize). If the
// session failed, the breakdown at failure is returned with the error.
func (e *Engine) Cost(tenant string) (stream.CostBreakdown, error) {
	s, err := e.session(tenant)
	if err != nil {
		return stream.CostBreakdown{}, err
	}
	st := s.state.Load()
	return st.cost, st.err
}

// Events returns how many of the tenant's events have been processed.
func (e *Engine) Events(tenant string) (int64, error) {
	s, err := e.session(tenant)
	if err != nil {
		return 0, err
	}
	st := s.state.Load()
	return st.events, st.err
}

// Snapshot returns the tenant's cached solution snapshot, current as of
// the last batch its shard processed (Flush to synchronize).
func (e *Engine) Snapshot(tenant string) (stream.Solution, error) {
	s, err := e.session(tenant)
	if err != nil {
		return stream.Solution{}, err
	}
	st := s.state.Load()
	return st.solution, st.err
}

// Result returns the tenant's recorded run — decisions, cost curve and
// final breakdown — as Replay would have produced it. It requires
// Config.RecordRuns and, like all reads, is current as of the last
// processed batch.
func (e *Engine) Result(tenant string) (*stream.Run, error) {
	if !e.cfg.RecordRuns {
		return nil, ErrNotRecording
	}
	s, err := e.session(tenant)
	if err != nil {
		return nil, err
	}
	st := s.state.Load()
	if st.err != nil {
		return nil, st.err
	}
	return &stream.Run{Decisions: st.decisions, Curve: st.curve, Final: st.cost}, nil
}

// Metrics samples per-shard counters and aggregates them. Queue depths
// are instantaneous; the event, drop and cost counters are cumulative.
func (e *Engine) Metrics() Metrics {
	m := Metrics{Shards: make([]ShardMetrics, len(e.shards))}
	for i, sh := range e.shards {
		sm := sh.metrics()
		m.Shards[i] = sm
		m.Sessions += sm.Sessions
		m.Events += sm.Events
		m.Batches += sm.Batches
		m.Dropped += sm.Dropped
		m.QueueDepth += sm.QueueDepth
		m.Cost += sm.Cost
	}
	return m
}
