// Package engine is the sharded, multi-tenant serving layer over the
// stream protocol: it multiplexes many independent stream.Leaser sessions
// — one per tenant — across a fixed set of shards, each shard owning its
// sessions and draining a batched event queue on its own goroutine.
//
// The design is single-writer throughout. A tenant is hashed (FNV-1a) to
// exactly one shard, so a tenant's events are processed in submission
// order by one goroutine and no lock ever guards a Leaser: within a shard
// the only synchronization is the ingestion channel itself (whose bounded
// capacity is the backpressure) and atomically published snapshots.
// Readers never touch a Leaser: Cost, Snapshot, Events and Result serve
// from per-session state the shard publishes after each processed batch,
// and the session registry is a copy-on-write map republished on Open.
//
// Because each session is driven by the same stream.Recorder that powers
// the single-threaded Replay driver, a tenant's recorded run is
// byte-identical to Replay of that tenant's events for any shard count
// and any batch size — the determinism anchor the parity tests enforce.
package engine

import (
	"errors"
	"fmt"
	"sync"

	"leasing/internal/stream"
)

// Sentinel errors of the engine API; returned errors wrap these together
// with the offending tenant where applicable.
var (
	// ErrClosed is returned by every operation after Close (and by
	// writes after Drain has begun).
	ErrClosed = errors.New("engine: closed")
	// ErrUnknownTenant is returned by reads and reported in metrics for
	// events addressed to a tenant that was never opened.
	ErrUnknownTenant = errors.New("engine: unknown tenant")
	// ErrDuplicateTenant is returned by Open for an already-open tenant.
	ErrDuplicateTenant = errors.New("engine: tenant already open")
	// ErrNotRecording is returned by Result when the engine was built
	// without RecordRuns.
	ErrNotRecording = errors.New("engine: RecordRuns disabled")
	// ErrBackpressure is returned by TrySubmitBatch when the owning
	// shard's queue is full, instead of blocking like SubmitBatch does.
	// The serving layer maps it to HTTP 429.
	ErrBackpressure = errors.New("engine: shard queue full")
	// ErrTenantClosed is returned by CloseTenant for an already-closed
	// tenant; events submitted after CloseTenant are dropped and counted.
	ErrTenantClosed = errors.New("engine: tenant closed")
)

// Config sizes the engine. The zero value is usable: every field falls
// back to the default documented on it.
type Config struct {
	// Shards is the number of shard goroutines sessions are hashed
	// across. Default 8.
	Shards int
	// QueueDepth is the per-shard ingestion queue capacity in submitted
	// operations; a full queue blocks Submit (backpressure). Default 256.
	QueueDepth int
	// BatchSize caps how many events a shard drains per processing wake;
	// cached read state is republished once per batch, so BatchSize
	// trades read freshness for ingestion throughput. Default 64.
	BatchSize int
	// RecordRuns keeps each session's full decision list and cost curve
	// so Result can return the per-tenant *stream.Run (what the parity
	// tests compare against Replay). Off by default: long-lived sessions
	// then run in constant memory.
	RecordRuns bool
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 8
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.BatchSize < 1 {
		c.BatchSize = 64
	}
	return c
}

// Engine multiplexes independent tenant sessions across shards. All
// methods are safe for concurrent use — an Open/Submit/Flush racing
// Close either completes before the drain or returns ErrClosed — with
// one ordering caveat: events of a single tenant must be submitted from
// one goroutine (or otherwise externally ordered), since per-tenant
// determinism is defined by submission order.
type Engine struct {
	cfg    Config
	shards []*shard
	// mu makes the closed-check-and-enqueue atomic against Close, so no
	// operation can slip into a queue behind the stop marker (which
	// would hang its caller forever). Writers hold it shared; Close
	// holds it exclusively while flipping closed and enqueueing stops.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// New starts an engine with cfg's shard goroutines running. Callers must
// Close it to release them.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range e.shards {
		e.shards[i] = newShard(i, cfg)
		e.wg.Add(1)
		go e.shards[i].run(&e.wg)
	}
	return e
}

// shardIndex hashes a tenant ID with FNV-1a; the hash fixes which shard
// owns the tenant for the engine's lifetime.
func shardIndex(tenant string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(tenant); i++ {
		h ^= uint32(tenant[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

func (e *Engine) shardFor(tenant string) *shard {
	return e.shards[shardIndex(tenant, len(e.shards))]
}

// send enqueues one op unless the engine is closed; the shared lock
// guarantees the op lands ahead of any stop marker.
func (e *Engine) send(sh *shard, o op) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	sh.queue <- o
	return nil
}

// Open registers a new tenant session served by l. It returns once the
// owning shard has installed the session, so events submitted afterwards
// (from the same goroutine) are guaranteed to find it.
func (e *Engine) Open(tenant string, l stream.Leaser) error {
	if l == nil {
		return fmt.Errorf("engine: open %q: nil leaser", tenant)
	}
	done := make(chan error, 1)
	if err := e.send(e.shardFor(tenant), op{kind: opOpen, tenant: tenant, leaser: l, done: done}); err != nil {
		return err
	}
	return <-done
}

// Submit enqueues one event for the tenant, blocking while the owning
// shard's queue is full. Delivery is asynchronous: an event for an
// unknown (or failed) tenant is counted as dropped in Metrics rather
// than reported here.
func (e *Engine) Submit(tenant string, ev stream.Event) error {
	return e.SubmitBatch(tenant, []stream.Event{ev})
}

// SubmitBatch enqueues a batch of events for the tenant as one queue
// operation (the cheap path for bulk ingestion). The engine takes
// ownership of evs; callers must not mutate it afterwards.
func (e *Engine) SubmitBatch(tenant string, evs []stream.Event) error {
	if len(evs) == 0 {
		return nil
	}
	return e.send(e.shardFor(tenant), op{kind: opEvents, tenant: tenant, events: evs})
}

// TrySubmitBatch is the non-blocking SubmitBatch: if the owning shard's
// queue has room the batch is enqueued exactly as SubmitBatch would, and
// otherwise ErrBackpressure is returned immediately with no events
// accepted. It is the ingestion hook for servers that must convert
// backpressure into a retryable signal (HTTP 429) instead of stalling a
// request-handling goroutine. Like SubmitBatch, the engine takes
// ownership of evs on success.
func (e *Engine) TrySubmitBatch(tenant string, evs []stream.Event) error {
	if len(evs) == 0 {
		return nil
	}
	sh := e.shardFor(tenant)
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	select {
	case sh.queue <- op{kind: opEvents, tenant: tenant, events: evs}:
		return nil
	default:
		return fmt.Errorf("%w: %q", ErrBackpressure, tenant)
	}
}

// CloseTenant seals one tenant's session: it returns once every event
// submitted for the tenant before the call has been processed and the
// final session state published, after which further events for the
// tenant are dropped (and counted in Metrics) while Cost, Snapshot,
// Events and Result keep serving the final state. Closing an unknown
// tenant returns ErrUnknownTenant; closing twice returns ErrTenantClosed.
func (e *Engine) CloseTenant(tenant string) error {
	done := make(chan error, 1)
	if err := e.send(e.shardFor(tenant), op{kind: opClose, tenant: tenant, done: done}); err != nil {
		return err
	}
	return <-done
}

// Flush blocks until every event submitted before the call has been
// processed and its session state published. It is the read barrier:
// after Flush, Cost/Snapshot/Result reflect all prior submissions.
func (e *Engine) Flush() error {
	done := make(chan error, len(e.shards))
	sent := 0
	for _, sh := range e.shards {
		if err := e.send(sh, op{kind: opFlush, done: done}); err != nil {
			return err
		}
		sent++
	}
	for ; sent > 0; sent-- {
		if err := <-done; err != nil {
			return err
		}
	}
	return nil
}

// Close drains gracefully: it stops accepting new work, processes
// everything already queued, publishes final session state, and stops
// the shard goroutines. Close is idempotent and safe to race with
// writers — an operation either lands before the drain (and is fully
// processed) or returns ErrClosed. Reads remain valid afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		for _, sh := range e.shards {
			sh.queue <- op{kind: opStop}
		}
	}
	e.mu.Unlock()
	// Every Close waits for the drain, so the post-Close read guarantee
	// holds for concurrent callers too, not just the first one.
	e.wg.Wait()
	return nil
}

// session looks a tenant up in its shard's published registry.
func (e *Engine) session(tenant string) (*session, error) {
	s := e.shardFor(tenant).lookup(tenant)
	if s == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	return s, nil
}

// Cost returns the tenant's cached cumulative cost breakdown, current as
// of the last batch its shard processed (Flush to synchronize). If the
// session failed, the breakdown at failure is returned with the error.
func (e *Engine) Cost(tenant string) (stream.CostBreakdown, error) {
	s, err := e.session(tenant)
	if err != nil {
		return stream.CostBreakdown{}, err
	}
	st := s.state.Load()
	return st.cost, st.err
}

// Events returns how many of the tenant's events have been processed.
func (e *Engine) Events(tenant string) (int64, error) {
	s, err := e.session(tenant)
	if err != nil {
		return 0, err
	}
	st := s.state.Load()
	return st.events, st.err
}

// Snapshot returns the tenant's cached solution snapshot, current as of
// the last batch its shard processed (Flush to synchronize).
func (e *Engine) Snapshot(tenant string) (stream.Solution, error) {
	s, err := e.session(tenant)
	if err != nil {
		return stream.Solution{}, err
	}
	st := s.state.Load()
	return st.solution, st.err
}

// Result returns the tenant's recorded run — decisions, cost curve and
// final breakdown — as Replay would have produced it. It requires
// Config.RecordRuns and, like all reads, is current as of the last
// processed batch.
func (e *Engine) Result(tenant string) (*stream.Run, error) {
	if !e.cfg.RecordRuns {
		return nil, ErrNotRecording
	}
	s, err := e.session(tenant)
	if err != nil {
		return nil, err
	}
	st := s.state.Load()
	if st.err != nil {
		return nil, st.err
	}
	return &stream.Run{Decisions: st.decisions, Curve: st.curve, Final: st.cost}, nil
}

// Metrics samples per-shard counters and aggregates them. Queue depths
// are instantaneous; the event, drop and cost counters are cumulative.
func (e *Engine) Metrics() Metrics {
	m := Metrics{Shards: make([]ShardMetrics, len(e.shards))}
	for i, sh := range e.shards {
		sm := sh.metrics()
		m.Shards[i] = sm
		m.Sessions += sm.Sessions
		m.Events += sm.Events
		m.Batches += sm.Batches
		m.Dropped += sm.Dropped
		m.QueueDepth += sm.QueueDepth
		m.Cost += sm.Cost
	}
	return m
}
