package engine_test

// Ingestion stress test, meant to run under -race (the CI workflow does):
// many tenants fed concurrently while readers hammer the cached state and
// metrics. Correctness is still exact — after Flush every tenant's cost
// must equal its single-threaded Replay.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"leasing"
	"leasing/internal/engine"
	"leasing/internal/stream"
	"leasing/internal/workload"
)

func TestEngineConcurrentStress(t *testing.T) {
	const tenants = 48
	cfg := parityConfig(t)
	eng := engine.New(engine.Config{Shards: 8, BatchSize: 16, QueueDepth: 32})
	defer eng.Close()

	streams := make([][]stream.Event, tenants)
	want := make([]float64, tenants)
	names := make([]string, tenants)
	for i := range streams {
		names[i] = fmt.Sprintf("tenant-%03d", i)
		days := workload.DemandDays(rand.New(rand.NewSource(int64(100+i))), 160, 0.35)
		streams[i] = leasing.DayEvents(days)
		alg, err := leasing.NewDeterministicParkingPermit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, err := stream.Replay(leasing.NewParkingStream(alg), streams[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = run.Total()

		open, err := leasing.NewDeterministicParkingPermit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Open(names[i], leasing.NewParkingStream(open)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for !stop.Load() {
				name := names[rng.Intn(tenants)]
				if _, err := eng.Cost(name); err != nil {
					t.Errorf("reader cost: %v", err)
					return
				}
				if _, err := eng.Snapshot(name); err != nil {
					t.Errorf("reader snapshot: %v", err)
					return
				}
				if m := eng.Metrics(); m.Sessions != tenants {
					t.Errorf("metrics sessions = %d, want %d", m.Sessions, tenants)
					return
				}
			}
		}(r)
	}

	var producers sync.WaitGroup
	for i := range streams {
		producers.Add(1)
		go func(i int) {
			defer producers.Done()
			evs := streams[i]
			for len(evs) > 0 {
				chunk := 1 + i%7
				if chunk > len(evs) {
					chunk = len(evs)
				}
				if err := eng.SubmitBatch(names[i], evs[:chunk]); err != nil {
					t.Errorf("submit %s: %v", names[i], err)
					return
				}
				evs = evs[chunk:]
			}
		}(i)
	}
	producers.Wait()
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	readers.Wait()

	var total int64
	for i := range streams {
		cost, err := eng.Cost(names[i])
		if err != nil {
			t.Fatal(err)
		}
		if cost.Total() != want[i] {
			t.Errorf("%s: engine cost %v != replay cost %v", names[i], cost.Total(), want[i])
		}
		total += int64(len(streams[i]))
	}
	m := eng.Metrics()
	if m.Events != total {
		t.Errorf("metrics events = %d, want %d", m.Events, total)
	}
	if m.Dropped != 0 {
		t.Errorf("metrics dropped = %d, want 0", m.Dropped)
	}
}
