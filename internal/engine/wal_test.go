package engine

// Durable-engine contract tests against a fake WAL: logging happens
// before application, a durable TrySubmitBatch never logs a batch it
// 429s (the no-duplicate-on-backpressure admission), Open without a
// spec is rejected, WAL failures fail the write without applying it,
// and Restore replays without re-logging.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"leasing/internal/stream"
)

// fakeWAL counts appends and can be armed to fail.
type fakeWAL struct {
	mu     sync.Mutex
	opens  []string
	events map[string]int
	closes []string
	fail   error
}

func newFakeWAL() *fakeWAL { return &fakeWAL{events: map[string]int{}} }

func (w *fakeWAL) LogOpen(tenant string, spec []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fail != nil {
		return w.fail
	}
	w.opens = append(w.opens, tenant)
	return nil
}

func (w *fakeWAL) LogEvents(tenant string, evs []stream.Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fail != nil {
		return w.fail
	}
	w.events[tenant] += len(evs)
	return nil
}

func (w *fakeWAL) LogClose(tenant string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fail != nil {
		return w.fail
	}
	w.closes = append(w.closes, tenant)
	return nil
}

func (w *fakeWAL) loggedEvents(tenant string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.events[tenant]
}

// gateLeaser blocks every Observe until released, to pin a shard
// goroutine while its queue fills.
type gateLeaser struct {
	gate chan struct{}
}

func (g *gateLeaser) Observe(stream.Event) (stream.Decision, error) {
	<-g.gate
	return stream.Decision{}, nil
}
func (g *gateLeaser) Cost() stream.CostBreakdown { return stream.CostBreakdown{} }
func (g *gateLeaser) Snapshot() stream.Solution  { return stream.Solution{} }

func day(t int64) stream.Event { return stream.Event{Time: t, Payload: stream.Day{}} }

// TestDurableOpenRequiresSpec: a durable engine must reject Open so
// recovery can always rebuild sessions.
func TestDurableOpenRequiresSpec(t *testing.T) {
	w := newFakeWAL()
	e := New(Config{Shards: 1, WAL: w})
	defer e.Close()
	if err := e.Open("a", &gateLeaser{gate: make(chan struct{})}); !errors.Is(err, ErrSpecRequired) {
		t.Fatalf("Open on durable engine: %v, want ErrSpecRequired", err)
	}
	if err := e.OpenSpec("a", &gateLeaser{gate: make(chan struct{})}, []byte(`{}`)); err != nil {
		t.Fatalf("OpenSpec: %v", err)
	}
	if len(w.opens) != 1 || w.opens[0] != "a" {
		t.Fatalf("logged opens = %v", w.opens)
	}
}

// TestDurableOpenLogFailureNotInstalled: if the open record cannot be
// appended, the session must not be installed — no event could ever be
// acknowledged for a tenant recovery knows nothing about — and the name
// stays free for a retry once storage heals.
func TestDurableOpenLogFailureNotInstalled(t *testing.T) {
	w := newFakeWAL()
	e := New(Config{Shards: 1, WAL: w})
	defer e.Close()
	g := &gateLeaser{gate: make(chan struct{})}
	close(g.gate)
	w.mu.Lock()
	w.fail = errors.New("no space left")
	w.mu.Unlock()
	if err := e.OpenSpec("a", g, []byte(`{}`)); !errors.Is(err, ErrWAL) {
		t.Fatalf("open with failing WAL: %v, want ErrWAL", err)
	}
	if _, err := e.Events("a"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("failed open installed the session: %v", err)
	}
	w.mu.Lock()
	w.fail = nil
	w.mu.Unlock()
	// The name is free again: the retry succeeds and serves normally.
	if err := e.OpenSpec("a", g, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch("a", []stream.Event{day(0)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, _ := e.Events("a"); n != 1 {
		t.Fatalf("retried session applied %d events", n)
	}
}

// TestDurableWritesLogBeforeApply: every acknowledged write is in the
// log; a WAL failure fails the write and nothing reaches the shard.
func TestDurableWritesLogBeforeApply(t *testing.T) {
	w := newFakeWAL()
	e := New(Config{Shards: 1, WAL: w})
	defer e.Close()
	g := &gateLeaser{gate: make(chan struct{})}
	close(g.gate) // never block
	if err := e.OpenSpec("a", g, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch("a", []stream.Event{day(0), day(1)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, err := e.Events("a"); err != nil || n != 2 {
		t.Fatalf("events = %d, %v", n, err)
	}
	if got := w.loggedEvents("a"); got != 2 {
		t.Fatalf("logged %d events, want 2", got)
	}

	boom := errors.New("disk on fire")
	w.mu.Lock()
	w.fail = boom
	w.mu.Unlock()
	if err := e.SubmitBatch("a", []stream.Event{day(2)}); !errors.Is(err, ErrWAL) {
		t.Fatalf("submit with failing WAL: %v, want ErrWAL", err)
	}
	if err := e.CloseTenant("a"); !errors.Is(err, ErrWAL) {
		t.Fatalf("close with failing WAL: %v, want ErrWAL", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, _ := e.Events("a"); n != 2 {
		t.Fatalf("failed write reached the shard: events = %d", n)
	}
}

// TestDurableTrySubmitNeverLogsRejectedBatch is the admission property
// behind resumable 429s: a batch TrySubmitBatch rejects with
// ErrBackpressure must not be in the log — the client will resubmit it,
// and a logged-then-429d batch would be replayed twice on recovery.
func TestDurableTrySubmitNeverLogsRejectedBatch(t *testing.T) {
	w := newFakeWAL()
	e := New(Config{Shards: 1, QueueDepth: 2, BatchSize: 1, WAL: w})
	defer e.Close()
	g := &gateLeaser{gate: make(chan struct{})}
	if err := e.OpenSpec("a", g, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	// Pin the shard on the first event, then fill the queue until
	// backpressure. Every accepted batch is logged; every rejected one
	// is not.
	if err := e.SubmitBatch("a", []stream.Event{day(0)}); err != nil {
		t.Fatal(err)
	}
	// Wait for the shard to pick the pinned op off the queue.
	deadline := time.Now().Add(2 * time.Second)
	for len(e.shards[0].queue) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	accepted := 1
	sawBackpressure := false
	for i := 1; i < 50; i++ {
		err := e.TrySubmitBatch("a", []stream.Event{day(int64(i))})
		if err == nil {
			accepted++
			continue
		}
		if !errors.Is(err, ErrBackpressure) {
			t.Fatalf("try submit: %v", err)
		}
		sawBackpressure = true
		break
	}
	if !sawBackpressure {
		t.Fatal("queue never filled")
	}
	if got := w.loggedEvents("a"); got != accepted {
		t.Fatalf("logged %d events, accepted %d — a rejected batch was logged", got, accepted)
	}
	close(g.gate)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, _ := e.Events("a"); int(n) != accepted {
		t.Fatalf("processed %d, accepted %d", n, accepted)
	}
}

// TestDurableUnknownTenantSubmitNotLogged: a batch for a never-opened
// tenant is dropped (and counted) by the shard and must not reach the
// log — recovery would drop it anyway, and logging it would let a
// misaddressed producer grow the log without bound.
func TestDurableUnknownTenantSubmitNotLogged(t *testing.T) {
	w := newFakeWAL()
	e := New(Config{Shards: 1, WAL: w})
	defer e.Close()
	if err := e.SubmitBatch("ghost", []stream.Event{day(0)}); err != nil {
		t.Fatal(err)
	}
	if err := e.TrySubmitBatch("ghost", []stream.Event{day(1)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := w.loggedEvents("ghost"); got != 0 {
		t.Fatalf("unknown-tenant submits logged %d events", got)
	}
	if m := e.Metrics(); m.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", m.Dropped)
	}
}

// TestDurableCloseTenantLogging: close is logged for known tenants and
// rejected without logging for unknown ones.
func TestDurableCloseTenantLogging(t *testing.T) {
	w := newFakeWAL()
	e := New(Config{Shards: 1, WAL: w})
	defer e.Close()
	if err := e.CloseTenant("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("close unknown: %v", err)
	}
	if len(w.closes) != 0 {
		t.Fatalf("unknown-tenant close polluted the log: %v", w.closes)
	}
	g := &gateLeaser{gate: make(chan struct{})}
	close(g.gate)
	if err := e.OpenSpec("a", g, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := e.CloseTenant("a"); err != nil {
		t.Fatal(err)
	}
	if len(w.closes) != 1 || w.closes[0] != "a" {
		t.Fatalf("logged closes = %v", w.closes)
	}
}

// TestRestoreBypassesWAL: replaying a recovered history must not append
// anything — it is already logged.
func TestRestoreBypassesWAL(t *testing.T) {
	w := newFakeWAL()
	e := New(Config{Shards: 2, RecordRuns: true, WAL: w})
	defer e.Close()
	g := &gateLeaser{gate: make(chan struct{})}
	close(g.gate)
	err := e.Restore([]Restored{
		{Tenant: "a", Leaser: g, Events: []stream.Event{day(0), day(1), day(2)}},
		{Tenant: "b", Leaser: &gateLeaser{gate: g.gate}, Events: []stream.Event{day(5)}, Closed: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.opens) != 0 || len(w.closes) != 0 || w.loggedEvents("a")+w.loggedEvents("b") != 0 {
		t.Fatalf("restore logged: opens=%v closes=%v events=%v", w.opens, w.closes, w.events)
	}
	if n, err := e.Events("a"); err != nil || n != 3 {
		t.Fatalf("restored a: %d, %v", n, err)
	}
	if err := e.CloseTenant("b"); !errors.Is(err, ErrTenantClosed) {
		t.Fatalf("restored b not sealed: %v", err)
	}
	// New traffic after restore is logged again.
	if err := e.SubmitBatch("a", []stream.Event{day(9)}); err != nil {
		t.Fatal(err)
	}
	if got := w.loggedEvents("a"); got != 1 {
		t.Fatalf("post-restore submit logged %d events, want 1", got)
	}
}
