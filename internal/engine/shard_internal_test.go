package engine

import "testing"

// shardIndex must be stable (it defines tenant placement for the
// engine's lifetime) and in range for any shard count.
func TestShardIndex(t *testing.T) {
	tenants := []string{"", "a", "tenant-000", "tenant-001", "alpha", "beta"}
	for _, n := range []int{1, 2, 8, 16} {
		seen := map[int]bool{}
		for _, tenant := range tenants {
			i := shardIndex(tenant, n)
			if i < 0 || i >= n {
				t.Fatalf("shardIndex(%q, %d) = %d out of range", tenant, n, i)
			}
			if i != shardIndex(tenant, n) {
				t.Fatalf("shardIndex(%q, %d) not stable", tenant, n)
			}
			seen[i] = true
		}
		if n >= 8 && len(seen) < 2 {
			t.Errorf("shardIndex maps %d tenants to %d shard(s) of %d — suspicious clustering",
				len(tenants), len(seen), n)
		}
	}
}
