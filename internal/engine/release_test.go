package engine_test

// The release-hook contract of TrySubmitBatchRelease: on a nil return
// the hook fires exactly once, after the owning shard has consumed the
// batch — applied, dropped, or drained during Close — and on a non-nil
// return it never fires (the caller keeps ownership of the batch).
// internal/server's pooled binary decode path depends on exactly these
// semantics to recycle event batches safely.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"leasing/internal/engine"
	"leasing/internal/stream"
)

// blockingLeaser parks the shard goroutine inside Observe until
// released, so a test can deterministically fill the shard queue.
type blockingLeaser struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (l *blockingLeaser) Observe(stream.Event) (stream.Decision, error) {
	l.once.Do(func() { close(l.entered) })
	<-l.release
	return stream.Decision{}, nil
}

func (l *blockingLeaser) Cost() stream.CostBreakdown { return stream.CostBreakdown{} }
func (l *blockingLeaser) Snapshot() stream.Solution  { return stream.Solution{} }

func day(t int64) stream.Event { return stream.Event{Time: t, Payload: stream.Day{}} }

// TestReleaseAfterApply: a batch that is applied fires its release
// exactly once, and a flush is enough to observe it.
func TestReleaseAfterApply(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	defer eng.Close()
	if err := eng.Open("a", parkingLeaser(t)); err != nil {
		t.Fatal(err)
	}
	var released atomic.Int64
	for i := 0; i < 5; i++ {
		if err := eng.TrySubmitBatchRelease("a", []stream.Event{day(int64(i))}, func() { released.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := released.Load(); got != 5 {
		t.Errorf("released %d times, want 5", got)
	}
	if n, err := eng.Events("a"); err != nil || n != 5 {
		t.Errorf("events = %d, %v; want 5, nil", n, err)
	}
}

// TestReleaseAfterDrop: a batch for an unknown tenant is dropped and
// counted, but its buffers are still released.
func TestReleaseAfterDrop(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	defer eng.Close()
	var released atomic.Int64
	if err := eng.TrySubmitBatchRelease("ghost", []stream.Event{day(0), day(1)}, func() { released.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := released.Load(); got != 1 {
		t.Errorf("released %d times, want 1", got)
	}
	if m := eng.Metrics(); m.Dropped != 2 {
		t.Errorf("dropped = %d, want 2", m.Dropped)
	}
}

// TestReleaseAfterCloseDrain: batches still queued when Close begins are
// drained and released before Close returns.
func TestReleaseAfterCloseDrain(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 1, QueueDepth: 64})
	if err := eng.Open("a", parkingLeaser(t)); err != nil {
		t.Fatal(err)
	}
	var released atomic.Int64
	const batches = 20
	for i := 0; i < batches; i++ {
		if err := eng.TrySubmitBatchRelease("a", []stream.Event{day(int64(i))}, func() { released.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := released.Load(); got != batches {
		t.Errorf("released %d times, want %d", got, batches)
	}
}

// TestReleaseNotCalledOnBackpressure: a rejected batch was never
// enqueued, so its release must not fire — the caller still owns it.
func TestReleaseNotCalledOnBackpressure(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 1, QueueDepth: 1, BatchSize: 1})
	defer eng.Close()
	lsr := &blockingLeaser{entered: make(chan struct{}), release: make(chan struct{})}
	defer close(lsr.release)
	if err := eng.Open("a", lsr); err != nil {
		t.Fatal(err)
	}
	// Park the shard inside Observe, then fill the one queue slot.
	if err := eng.TrySubmitBatch("a", []stream.Event{day(0)}); err != nil {
		t.Fatal(err)
	}
	<-lsr.entered
	if err := eng.TrySubmitBatch("a", []stream.Event{day(1)}); err != nil {
		t.Fatal(err)
	}
	var released atomic.Int64
	err := eng.TrySubmitBatchRelease("a", []stream.Event{day(2)}, func() { released.Add(1) })
	if !errors.Is(err, engine.ErrBackpressure) {
		t.Fatalf("got %v, want ErrBackpressure", err)
	}
	if got := released.Load(); got != 0 {
		t.Errorf("release fired %d times on a rejected batch, want 0", got)
	}
}

// TestReleaseNotCalledAfterClosed: ErrClosed means nothing was enqueued
// and the hook never fires.
func TestReleaseNotCalledAfterClosed(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 1})
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	var released atomic.Int64
	err := eng.TrySubmitBatchRelease("a", []stream.Event{day(0)}, func() { released.Add(1) })
	if !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if got := released.Load(); got != 0 {
		t.Errorf("release fired %d times after Close, want 0", got)
	}
}

// TestReleaseEmptyBatch: an empty batch is a no-op nil return with no
// enqueue; the hook does not fire (there is nothing to hand back).
func TestReleaseEmptyBatch(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 1})
	defer eng.Close()
	var released atomic.Int64
	if err := eng.TrySubmitBatchRelease("a", nil, func() { released.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := released.Load(); got != 0 {
		t.Errorf("release fired %d times for an empty batch, want 0", got)
	}
}
