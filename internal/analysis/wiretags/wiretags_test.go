package wiretags_test

import (
	"path/filepath"
	"testing"

	"leasing/internal/analysis/vet/vettest"
	"leasing/internal/analysis/wiretags"
)

func TestWireTags(t *testing.T) {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	// wire before server: the endpoint fact flows forward.
	vettest.Run(t, dir, wiretags.Analyzer,
		"example/internal/wire",
		"example/internal/server",
	)
}
