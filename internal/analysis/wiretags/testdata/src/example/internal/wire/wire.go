// Package wire is golden-test input for the wiretags analyzer: every
// exported struct field needs an explicit json tag, and the Endpoints
// table is exported as a fact for the server-side handler check.
package wire

// Tagged is fully annotated and must not fire.
type Tagged struct {
	Tenant string `json:"tenant"`
	Count  int64  `json:"count"`

	internal int // unexported fields need no tag
}

// Untagged is missing tags on both exported fields.
type Untagged struct { // want "wire struct Untagged has exported fields without explicit json tags: Tenant, Count"
	Tenant string
	Count  int64
}

// Partial tags one field and forgets the other.
type Partial struct { // want "wire struct Partial has exported fields without explicit json tags: Count"
	Tenant string `json:"tenant"`
	Count  int64
}

// Endpoint is a declaration table row, never serialized; the
// struct-level directive covers the whole declaration.
//
//lint:allow-wiretags route declaration table consumed in-process, never serialized
type Endpoint struct {
	Name   string
	Method string
	Path   string
}

// Endpoints declares the service's routes; the Name column is the fact
// the server package is checked against.
func Endpoints() []Endpoint {
	return []Endpoint{
		{Name: "open", Method: "POST", Path: "/v1/{tenant}/open"},
		{Name: "submit", Method: "POST", Path: "/v1/{tenant}/submit"},
		{Name: "close", Method: "POST", Path: "/v1/{tenant}/close"},
	}
}

func use(t Tagged) int { return t.internal }
