// Package server is golden-test input for the wiretags analyzer's
// cross-package check: the handler-registration map is compared against
// the endpoint fact exported from the wire package, and the forgotten
// "close" handler is reported.
package server

import (
	"net/http"

	"example/internal/wire"
)

// Server registers one handler per wire endpoint — or should.
type Server struct {
	mux *http.ServeMux
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request)   {}
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {}

// New builds the route table. The "close" endpoint declared by
// wire.Endpoints() has no entry, which the analyzer reports at the map
// literal.
func New() *Server {
	s := &Server{mux: http.NewServeMux()}
	handlers := map[string]http.HandlerFunc{ // want "endpoints with no handler registration here: close"
		"open":   s.handleOpen,
		"submit": s.handleSubmit,
	}
	for _, ep := range wire.Endpoints() {
		h, ok := handlers[ep.Name]
		if !ok {
			panic("no handler for " + ep.Name)
		}
		s.mux.HandleFunc(ep.Method+" "+ep.Path, h)
	}
	return s
}
