// Package wiretags guards the wire protocol's two contracts. Inside
// internal/wire, every exported struct field must carry an explicit
// json tag — the wire format is documented field by field, and an
// untagged field silently couples the protocol to a Go identifier
// rename. Across the wire/server boundary, every endpoint declared in
// the wire.Endpoints() table must have a handler registered in
// internal/server — today that invariant is a runtime panic at server
// construction; this analyzer moves it to build time, using a fact
// exported from the wire package.
//
// Declaration-only structs that never cross the wire (the Endpoint
// table rows themselves) opt out with a struct-level
// `//lint:allow-wiretags <reason>`.
package wiretags

import (
	"encoding/json"
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"leasing/internal/analysis/vet"
)

// Analyzer is the wiretags check.
var Analyzer = &vet.Analyzer{
	Name: "wiretags",
	Doc: "requires an explicit json tag on every exported struct field in " +
		"internal/wire, and a handler registration in internal/server for " +
		"every endpoint wire.Endpoints() declares; non-wire declaration " +
		"structs opt out with a struct-level //lint:allow-wiretags <reason>",
	Run: run,
}

func run(pass *vet.Pass) error {
	path := vet.StripTestVariant(pass.Pkg.Path())
	if vet.PathHasSuffix(path, "internal/wire") {
		checkTags(pass)
		exportEndpoints(pass)
	}
	if vet.PathHasSuffix(path, "internal/server") {
		checkHandlers(pass)
	}
	return nil
}

// checkTags reports, once per struct, the exported fields missing an
// explicit json tag. The diagnostic sits on the type declaration so a
// single struct-level directive covers the whole declaration.
func checkTags(pass *vet.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			spec, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := spec.Type.(*ast.StructType)
			if !ok {
				return true
			}
			var missing []string
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 {
					continue // embedded field: its own declaration is checked
				}
				tagged := false
				if field.Tag != nil {
					raw, _ := unquoteTag(field.Tag.Value)
					if _, ok := reflect.StructTag(raw).Lookup("json"); ok {
						tagged = true
					}
				}
				if tagged {
					continue
				}
				for _, name := range field.Names {
					if name.IsExported() {
						missing = append(missing, name.Name)
					}
				}
			}
			if len(missing) > 0 {
				pass.Reportf(spec.Pos(),
					"wire struct %s has exported fields without explicit json tags: %s; the wire format must not depend on Go field names",
					spec.Name.Name, strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// unquoteTag strips the surrounding back- or double-quotes of a struct
// tag literal.
func unquoteTag(lit string) (string, bool) {
	if len(lit) >= 2 && (lit[0] == '`' || lit[0] == '"') {
		return lit[1 : len(lit)-1], true
	}
	return lit, false
}

// exportEndpoints publishes the Name of every wire.Endpoint composite
// literal as the "endpoints" fact — a sorted JSON array of strings.
func exportEndpoints(pass *vet.Pass) {
	var names []string
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isEndpointLit(pass, lit) {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "Name" {
					continue
				}
				if lit, ok := kv.Value.(*ast.BasicLit); ok {
					if name, err := strconv.Unquote(lit.Value); err == nil && name != "" {
						names = append(names, name)
					}
				}
			}
			return true
		})
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	payload, err := json.Marshal(names)
	if err != nil {
		return
	}
	pass.ExportFact("endpoints", string(payload))
}

// isEndpointLit reports whether lit's type is a named type "Endpoint"
// declared in the current (wire) package.
func isEndpointLit(pass *vet.Pass, lit *ast.CompositeLit) bool {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Endpoint" && obj.Pkg() == pass.Pkg
}

// checkHandlers compares the endpoint fact from the wire dependency
// against the string keys of the server's handler-registration map
// literals, and reports endpoints with no handler.
func checkHandlers(pass *vet.Pass) {
	var endpoints []string
	for _, dep := range pass.DepPaths() {
		if !vet.PathHasSuffix(dep, "internal/wire") {
			continue
		}
		if payload, ok := pass.ImportFact(dep, "endpoints"); ok {
			if err := json.Unmarshal([]byte(payload), &endpoints); err != nil {
				endpoints = nil
			}
		}
	}
	if len(endpoints) == 0 {
		return
	}

	registered := map[string]bool{}
	var mapPos ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isHandlerMap(pass, lit) {
				return true
			}
			if mapPos == nil {
				mapPos = lit
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.BasicLit); ok {
					if name, err := strconv.Unquote(key.Value); err == nil {
						registered[name] = true
					}
				}
			}
			return true
		})
	}
	if mapPos == nil {
		return // no registration map in this package (e.g. helper-only file sets)
	}
	var missing []string
	for _, name := range endpoints {
		if !registered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(mapPos.Pos(),
			"wire.Endpoints() declares endpoints with no handler registration here: %s; the server would panic at construction",
			strings.Join(missing, ", "))
	}
}

// isHandlerMap reports whether lit is a map[string]F literal where F is
// a function type taking (http.ResponseWriter, *http.Request) — the
// handler-registration table shape.
func isHandlerMap(pass *vet.Pass, lit *ast.CompositeLit) bool {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	if basic, ok := m.Key().Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return false
	}
	sig, ok := m.Elem().Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return false
	}
	return strings.Contains(sig.Params().At(0).Type().String(), "http.ResponseWriter") &&
		strings.Contains(sig.Params().At(1).Type().String(), "http.Request")
}
