// Package counter is golden-test input for the atomicfields analyzer:
// the Hits field is accessed through sync/atomic, so every plain access
// — here and in dependent packages — must fire.
package counter

import "sync/atomic"

// Stats mixes an old-style atomic counter with plain fields.
type Stats struct {
	Hits  int64
	Local int64        // never touched atomically; plain access is fine
	Typed atomic.Int64 // typed atomics make the mix unrepresentable
}

// Bump and Snapshot are the sanctioned atomic accesses.
func (s *Stats) Bump() {
	atomic.AddInt64(&s.Hits, 1)
}

func (s *Stats) Snapshot() int64 {
	return atomic.LoadInt64(&s.Hits)
}

// Peek reads the atomic field plainly and fires.
func (s *Stats) Peek() int64 {
	return s.Hits // want "plain access to example/counter.Stats.Hits"
}

// Reset writes it plainly and fires too.
func (s *Stats) Reset() {
	s.Hits = 0 // want "plain access to example/counter.Stats.Hits"
}

// PlainOnly fields and typed atomics never fire.
func (s *Stats) Other() int64 {
	s.Typed.Add(1)
	return s.Local + s.Typed.Load()
}

// Annotated single-threaded access (e.g. inside a constructor before
// the value escapes) is suppressed.
func New(seed int64) *Stats {
	s := &Stats{}
	s.Hits = seed //lint:allow-atomicfields constructor runs before the value escapes to any other goroutine
	return s
}
