// Package reader is golden-test input for the atomicfields analyzer's
// cross-package check: counter.Stats.Hits is atomic (a fact exported by
// the counter package), so the plain read here fires even though this
// package never imports sync/atomic.
package reader

import "example/counter"

func Read(s *counter.Stats) int64 {
	return s.Hits // want "plain access to example/counter.Stats.Hits"
}

func ReadSafe(s *counter.Stats) int64 {
	return s.Snapshot() + s.Local
}
