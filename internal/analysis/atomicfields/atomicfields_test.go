package atomicfields_test

import (
	"path/filepath"
	"testing"

	"leasing/internal/analysis/atomicfields"
	"leasing/internal/analysis/vet/vettest"
)

func TestAtomicFields(t *testing.T) {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	// counter before reader: the atomic-field fact flows forward.
	vettest.Run(t, dir, atomicfields.Analyzer,
		"example/counter",
		"example/reader",
	)
}
