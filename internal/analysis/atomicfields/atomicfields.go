// Package atomicfields enforces all-or-nothing atomicity on struct
// fields: a field accessed through sync/atomic anywhere in the module
// may never be read or written with a plain load or store elsewhere.
//
// Mixing the two access modes is a data race the race detector only
// catches when both sides happen to run concurrently under -race; the
// compiled code is wrong regardless. The repository's own convention is
// the typed atomics (atomic.Int64, atomic.Pointer), which make the
// mixed pattern unrepresentable — this analyzer exists to keep the
// old-style `atomic.AddInt64(&s.n, 1)` + `s.n` pairing from creeping
// in, including across package boundaries via exported fields, which it
// tracks with facts.
package atomicfields

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"leasing/internal/analysis/vet"
)

// Analyzer is the atomicfields check.
var Analyzer = &vet.Analyzer{
	Name: "atomicfields",
	Doc: "flags plain reads or writes of a struct field that is accessed via " +
		"sync/atomic anywhere (in any package — atomic use is exported as a " +
		"fact); mixed access is a data race even when the plain side looks " +
		"harmless",
	Run: run,
}

func run(pass *vet.Pass) error {
	// Atomic field keys discovered in dependencies.
	atomic := map[string]bool{}
	for _, dep := range pass.DepPaths() {
		if payload, ok := pass.ImportFact(dep, "fields"); ok {
			for _, key := range strings.Split(payload, ",") {
				if key != "" {
					atomic[key] = true
				}
			}
		}
	}

	// First pass: find sync/atomic calls taking &x.f, mark the field
	// atomic, and remember the sanctioned selector nodes.
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if key := fieldKey(pass, sel); key != "" {
					atomic[key] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	// Export the union, so the fact reaches indirect dependents through
	// this package's bundle as well.
	var keys []string
	for key := range atomic {
		keys = append(keys, key)
	}
	if len(keys) > 0 {
		sort.Strings(keys)
		pass.ExportFact("fields", strings.Join(keys, ","))
	}

	// Second pass: every other selector resolving to an atomic field is
	// a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			key := fieldKey(pass, sel)
			if key == "" || !atomic[key] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access to %s, which is accessed with sync/atomic elsewhere; every load and store must go through sync/atomic (or migrate the field to a typed atomic)",
				key)
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic function.
func isAtomicCall(pass *vet.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync/atomic"
}

// fieldKey names the struct field a selector denotes, as
// "pkgpath.Type.Field" — stable across packages, so it can travel as a
// fact. Non-field selectors yield "".
func fieldKey(pass *vet.Pass, sel *ast.SelectorExpr) string {
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return ""
	}
	recv := selection.Recv()
	for {
		ptr, ok := recv.(*types.Pointer)
		if !ok {
			break
		}
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	pkgPath := ""
	if obj.Pkg() != nil {
		pkgPath = vet.StripTestVariant(obj.Pkg().Path())
	}
	return pkgPath + "." + obj.Name() + "." + field.Name()
}
