// Package analysis is the leasevet analyzer registry: the one place
// that decides which static checks the suite ships. cmd/leasevet runs
// exactly this list, docs/LINTING.md is gated against it, and the CI
// summary enumerates it — so adding an analyzer here is the entire
// registration step.
package analysis

import (
	"leasing/internal/analysis/atomicfields"
	"leasing/internal/analysis/detorder"
	"leasing/internal/analysis/seededrand"
	"leasing/internal/analysis/vet"
	"leasing/internal/analysis/walorder"
	"leasing/internal/analysis/wiretags"
)

// Analyzers returns the full suite in stable (alphabetical) order.
func Analyzers() []*vet.Analyzer {
	return []*vet.Analyzer{
		atomicfields.Analyzer,
		detorder.Analyzer,
		seededrand.Analyzer,
		walorder.Analyzer,
		wiretags.Analyzer,
	}
}
