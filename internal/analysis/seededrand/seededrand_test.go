package seededrand_test

import (
	"path/filepath"
	"testing"

	"leasing/internal/analysis/seededrand"
	"leasing/internal/analysis/vet/vettest"
)

func TestSeededRand(t *testing.T) {
	vettest.Run(t, testdata(t), seededrand.Analyzer,
		"example/internal/stream",
		"example/internal/api",
	)
}

func testdata(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}
