// Package seededrand forbids ambient nondeterminism — the global
// math/rand source, wall-clock reads, and crypto/rand — inside the
// packages whose output must be a pure function of their inputs.
//
// The engine's contract (and the WAL's, and the wire protocol's) is
// byte-identical re-execution: a tenant's session replayed from its
// logged spec and events must reproduce the live run exactly. A single
// time.Now or global rand.Intn on those paths breaks recovery, breaks
// the Replay parity suite, and breaks any future log-shipping replica.
// Randomized algorithms are still welcome — through an explicitly
// seeded *rand.Rand threaded in by the caller, the convention every
// domain package already follows.
//
// Sites that legitimately need wall time (latency measurement, metrics
// timestamps) opt out with `//lint:allow-wallclock <reason>` on or
// directly above the flagged line.
package seededrand

import (
	"go/ast"
	"go/types"
	"strconv"

	"leasing/internal/analysis/vet"
)

// DeterministicPackages lists the package-path suffixes the analyzer
// polices: the layers on the logged, replayed, byte-compared path.
var DeterministicPackages = []string{
	"internal/stream",
	"internal/engine",
	"internal/wal",
	"internal/workload",
	"internal/wire",
	"internal/reusable",
}

// seededConstructors are the math/rand selectors that do not touch the
// global source: they build explicitly seeded generators.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// wallClockFuncs are the time package selectors that read the wall (or
// monotonic) clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// Analyzer is the seededrand check.
var Analyzer = &vet.Analyzer{
	Name: "seededrand",
	Doc: "forbids the global math/rand source, wall-clock reads (time.Now and " +
		"friends) and crypto/rand in the deterministic packages " +
		"(internal/stream, internal/engine, internal/wal, internal/workload, " +
		"internal/wire, internal/reusable); randomness must flow through an " +
		"explicitly seeded *rand.Rand, and intentional wall-clock sites carry " +
		"//lint:allow-wallclock <reason>",
	Directive: "wallclock",
	Run:       run,
}

func run(pass *vet.Pass) error {
	deterministic := false
	for _, suffix := range DeterministicPackages {
		if vet.PathHasSuffix(pass.Pkg.Path(), suffix) {
			deterministic = true
			break
		}
	}
	if !deterministic {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "crypto/rand" {
				pass.Reportf(imp.Pos(),
					"crypto/rand in deterministic package %s: recovery and replay cannot reproduce its output; derive randomness from the session's seeded generator",
					vet.StripTestVariant(pass.Pkg.Path()))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true
			}
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if !seededConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"global math/rand source (rand.%s) in deterministic package %s: seed-dependent replay requires an explicit *rand.Rand",
						sel.Sel.Name, vet.StripTestVariant(pass.Pkg.Path()))
				}
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"wall clock (time.%s) in deterministic package %s: event time is the only clock on the replayed path; if this site measures real latency, annotate it with //lint:allow-wallclock <reason>",
						sel.Sel.Name, vet.StripTestVariant(pass.Pkg.Path()))
				}
			}
			return true
		})
	}
	return nil
}
