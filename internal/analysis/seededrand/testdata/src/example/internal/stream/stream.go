// Package stream is golden-test input for the seededrand analyzer: it
// sits on a deterministic package path, so ambient nondeterminism must
// be flagged and the seeded idiom must not be.
package stream

import (
	crand "crypto/rand" // want "crypto/rand in deterministic package"
	mrand "math/rand"
	rand "math/rand/v2"
	"time"
)

// Seeded randomness threaded through an explicit generator is the
// sanctioned idiom and must not fire.
func Seeded(seed int64) int {
	r := mrand.New(mrand.NewSource(seed))
	r2 := rand.New(rand.NewPCG(uint64(seed), 2))
	return r.Intn(10) + int(r2.Uint64N(10))
}

func GlobalRand() int {
	return mrand.Intn(10) // want "global math/rand source \\(rand\\.Intn\\)"
}

func GlobalRandV2() uint64 {
	return rand.Uint64N(10) // want "global math/rand source \\(rand\\.Uint64N\\)"
}

func WallClock() int64 {
	return time.Now().UnixNano() // want "wall clock \\(time\\.Now\\)"
}

// Event time handled as a value type is fine: only clock reads fire.
func Elapsed(a, b time.Time) time.Duration {
	return b.Sub(a)
}

// An annotated site with a reason is suppressed.
func MeasuredLatency() time.Duration {
	start := time.Now() //lint:allow-wallclock measures real request latency for metrics, never replayed
	return time.Since(start) //lint:allow-wallclock measures real request latency for metrics, never replayed
}

// A bare directive is itself a diagnostic and suppresses nothing.
func BareDirective() int64 {
	//lint:allow-wallclock // want "directive requires a reason"
	return time.Now().UnixNano() // want "wall clock \\(time\\.Now\\)"
}

// The import diagnostic is the only one for crypto/rand; uses ride on
// the flagged import.
func CryptoRead(p []byte) {
	crand.Read(p)
}
