// Package api is golden-test input for the seededrand analyzer: it is
// NOT on a deterministic package path, so wall clocks and the global
// rand source are fine here and nothing may fire.
package api

import (
	"math/rand"
	"time"
)

func Jitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond
}

func Stamp() int64 {
	return time.Now().UnixNano()
}
