package analysis_test

import (
	"path/filepath"
	"sort"
	"testing"

	"leasing/internal/analysis"
	"leasing/internal/analysis/vet/vettest"
)

// TestRegistry pins the registry's shape: stable alphabetical order,
// unique names, and documentation on every analyzer — the properties
// the summary table, the suppression directives and the LINTING.md
// gate all rely on.
func TestRegistry(t *testing.T) {
	as := analysis.Analyzers()
	if len(as) < 5 {
		t.Fatalf("registry has %d analyzers, want at least 5", len(as))
	}
	var names []string
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing name, doc or run function", a.Name)
		}
		names = append(names, a.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("registry not in alphabetical order: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate analyzer name %q", n)
		}
		seen[n] = true
	}
}

// TestDirectiveScope proves a //lint:allow-<name> directive suppresses
// only the analyzer whose directive it names: a single line violating
// both seededrand and detorder keeps its detorder diagnostic when
// annotated with allow-wallclock.
func TestDirectiveScope(t *testing.T) {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	vettest.RunAnalyzers(t, dir, analysis.Analyzers(), "example/internal/stream")
}
