// Package stream is golden-test input for the suite-level directive
// test: one line violates two analyzers at once, and the wallclock
// directive must suppress only seededrand — detorder still fires.
package stream

import (
	"fmt"
	"io"
	"time"
)

// DumpAges emits one line per entry in map order, stamped with the wall
// clock: a detorder violation and a seededrand violation on the same
// line. The wallclock directive names only seededrand's directive, so
// the detorder diagnostic must survive.
func DumpAges(w io.Writer, m map[string]int) {
	for k, v := range m {
		//lint:allow-wallclock metrics timestamp, never replayed
		fmt.Fprintf(w, "%s=%d@%d\n", k, v, time.Now().Unix()) // want "map iteration calls fmt.Fprintf in randomized order"
	}
}
