package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Deps       []string
}

// LoadedPackage pairs a typechecked package with its listing entry.
type LoadedPackage struct {
	*Package
	Dir     string
	DepOnly bool
	Deps    []string
}

// GoList runs `go list -deps -export -json` for the patterns in dir and
// returns the listed packages in dependency order (dependencies first —
// the order `go list -deps` guarantees).
func GoList(dir string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,Standard,DepOnly,GoFiles,Imports,Deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportLookup builds the importer lookup function over a map of import
// path → export data file.
func ExportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// NewInfo allocates the full types.Info map set the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Typecheck parses and typechecks one package from source, resolving
// imports through imp.
func Typecheck(path string, files []string, fset *token.FileSet, imp types.Importer) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		parsed = append(parsed, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(StripTestVariant(path), fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Fset:  fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load lists, parses and typechecks the packages matching patterns in
// dir, returning the non-dependency, non-standard matches in dependency
// order, each with DepFacts left nil (the driver fills them in as it
// runs the analyzers).
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	listed, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", ExportLookup(exports))
	var out []*LoadedPackage
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		files := make([]string, 0, len(p.GoFiles))
		for _, f := range p.GoFiles {
			files = append(files, joinDir(p.Dir, f))
		}
		pkg, err := Typecheck(p.ImportPath, files, fset, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &LoadedPackage{Package: pkg, Dir: p.Dir, Deps: p.Deps})
	}
	return out, nil
}

func joinDir(dir, name string) string {
	if strings.HasPrefix(name, "/") {
		return name
	}
	return dir + string(os.PathSeparator) + name
}
