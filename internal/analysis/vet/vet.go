// Package vet is the dependency-free core of the leasevet static
// analysis suite: the analyzer and pass types, the //lint:allow-<name>
// suppression directives, and the per-package execution engine shared by
// the standalone driver, the `go vet -vettool` unitchecker mode and the
// vettest golden-file harness.
//
// The shape deliberately mirrors golang.org/x/tools/go/analysis — an
// Analyzer owns a Run function over a typed Pass, diagnostics carry
// positions, and cross-package state travels as per-package facts — but
// it is built entirely on the standard library (go/ast, go/types and the
// gc export-data importer), so the repository stays free of third-party
// dependencies. Facts are JSON documents keyed by analyzer and fact
// name; a package's fact bundle includes the transitive bundles of its
// dependencies, which is what lets an analyzer checking internal/server
// see the endpoint table an earlier pass extracted from internal/wire.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. Its Run function is invoked once per
// analyzed package with a fully typechecked Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and summaries.
	Name string
	// Doc is the one-paragraph description rendered by `leasevet help`
	// and gated against docs/LINTING.md.
	Doc string
	// Directive is the suppression name: a `//lint:allow-<Directive>
	// <reason>` comment on (or immediately above) a flagged line
	// suppresses this analyzer's diagnostics there — and only this
	// analyzer's. Empty means Name.
	Directive string
	// Run analyzes one package.
	Run func(*Pass) error
}

// directive returns the analyzer's suppression name.
func (a *Analyzer) directive() string {
	if a.Directive != "" {
		return a.Directive
	}
	return a.Name
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Facts is one package's exported fact bundle: analyzer name → fact
// name → JSON payload. Bundles are merged transitively, so a dependent
// package's view includes facts from every dependency.
type Facts map[string]map[string]string

// Package is one typechecked package handed to the analyzers.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// DepFacts maps a dependency's import path to its fact bundle.
	DepFacts map[string]Facts
}

// Pass is the per-analyzer view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	pkg      *Package
	exported Facts
	diags    *[]Diagnostic
	dirs     []directiveSite
}

// Reportf records a diagnostic at pos. Findings in _test.go files are
// dropped — the invariants leasevet enforces are production-path
// properties, and tests legitimately use wall clocks and unordered
// iteration — and findings carrying a matching allow directive on their
// line (or the line above) are suppressed.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.suppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact publishes a fact of this package under the running
// analyzer; dependent packages read it back with ImportFact.
func (p *Pass) ExportFact(name, payload string) {
	byName := p.exported[p.Analyzer.Name]
	if byName == nil {
		byName = map[string]string{}
		p.exported[p.Analyzer.Name] = byName
	}
	byName[name] = payload
}

// ImportFact reads a fact the running analyzer exported while analyzing
// the dependency package at path.
func (p *Pass) ImportFact(path, name string) (string, bool) {
	bundle, ok := p.pkg.DepFacts[path]
	if !ok {
		return "", false
	}
	payload, ok := bundle[p.Analyzer.Name][name]
	return payload, ok
}

// DepPaths returns the dependency paths with fact bundles, sorted.
func (p *Pass) DepPaths() []string {
	paths := make([]string, 0, len(p.pkg.DepFacts))
	for path := range p.pkg.DepFacts {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	return paths
}

// directiveSite is one parsed //lint:allow-<name> comment.
type directiveSite struct {
	name   string
	reason string
	file   string
	line   int
	pos    token.Pos
}

var directiveRx = regexp.MustCompile(`^//lint:allow-([a-z][a-z0-9-]*)(?:\s+(.*))?$`)

// scanDirectives collects every allow directive in the package.
func scanDirectives(fset *token.FileSet, files []*ast.File) []directiveSite {
	var sites []directiveSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(m[2])
				// Golden tests pin missing-reason diagnostics with a
				// trailing `// want …` clause; it is harness metadata,
				// not a reason.
				if i := strings.Index(reason, "// want"); i >= 0 {
					reason = strings.TrimSpace(reason[:i])
				}
				sites = append(sites, directiveSite{
					name:   m[1],
					reason: reason,
					file:   pos.Filename,
					line:   pos.Line,
					pos:    c.Pos(),
				})
			}
		}
	}
	return sites
}

// suppressed reports whether a diagnostic at position carries a valid
// allow directive for the running analyzer: same file, same line or the
// line directly above, with a non-empty reason.
func (p *Pass) suppressed(position token.Position) bool {
	want := p.Analyzer.directive()
	for _, d := range p.dirs {
		if d.name != want || d.reason == "" || d.file != position.Filename {
			continue
		}
		if d.line == position.Line || d.line == position.Line-1 {
			return true
		}
	}
	return false
}

// RunAnalyzers executes the analyzers over one package and returns the
// surviving diagnostics plus the package's merged fact bundle (its own
// exports layered over its dependencies'). Directive hygiene is part of
// the run: an allow directive naming an analyzer but carrying no reason
// is itself a diagnostic of that analyzer — an unexplained suppression
// is as suspect as the pattern it hides.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, Facts, error) {
	dirs := scanDirectives(pkg.Fset, pkg.Files)
	merged := Facts{}
	for _, dep := range pkg.DepFacts {
		for an, byName := range dep {
			if merged[an] == nil {
				merged[an] = map[string]string{}
			}
			for name, payload := range byName {
				merged[an][name] = payload
			}
		}
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			pkg:      pkg,
			exported: merged,
			diags:    &diags,
			dirs:     dirs,
		}
		for _, d := range dirs {
			if d.name == a.directive() && d.reason == "" && !strings.HasSuffix(d.file, "_test.go") {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.pos),
					Message: fmt.Sprintf(
						"lint:allow-%s directive requires a reason (//lint:allow-%s <why this site is exempt>)",
						d.name, d.name),
				})
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, merged, nil
}

// PathHasSuffix reports whether an import path ends with the given
// package path suffix on a path-segment boundary: "internal/engine"
// matches "leasing/internal/engine" (and any test-variant suffix has
// been stripped by the caller), but not "internal/engineering".
func PathHasSuffix(path, suffix string) bool {
	path = StripTestVariant(path)
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// StripTestVariant removes the " [foo.test]" suffix go vet appends to
// the import paths of test-build package variants.
func StripTestVariant(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
