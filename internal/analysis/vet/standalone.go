package vet

// The standalone driver: `leasevet ./...` without the go command in
// front. It loads the matched packages through `go list -export`, runs
// the analyzers in dependency order so facts flow from internal/wire to
// internal/server in one process, and renders the stable summary the CI
// lint job diffs.

import (
	"bytes"
	"fmt"
	"sort"
)

// Result is one standalone run's outcome.
type Result struct {
	Diagnostics []Diagnostic
	// Counts maps analyzer name → finding count, including analyzers
	// with zero findings so the summary's shape never varies.
	Counts map[string]int
	// Packages is how many packages were analyzed.
	Packages int
}

// RunStandalone analyzes the packages matching patterns in dir.
func RunStandalone(dir string, analyzers []*Analyzer, patterns ...string) (*Result, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	res := &Result{Counts: map[string]int{}}
	for _, a := range analyzers {
		res.Counts[a.Name] = 0
	}
	factsByPath := map[string]Facts{}
	for _, p := range pkgs {
		p.DepFacts = map[string]Facts{}
		for _, dep := range p.Deps {
			if f, ok := factsByPath[dep]; ok {
				p.DepFacts[dep] = f
			}
		}
		diags, merged, err := RunAnalyzers(p.Package, analyzers)
		if err != nil {
			return nil, err
		}
		factsByPath[StripTestVariant(p.Path)] = merged
		res.Diagnostics = append(res.Diagnostics, diags...)
		res.Packages++
	}
	for _, d := range res.Diagnostics {
		res.Counts[d.Analyzer]++
	}
	return res, nil
}

// Summary renders the stable, diffable per-analyzer finding table: one
// line per analyzer, sorted by name, identical shape whether or not
// anything fired — so a CI log diff shows exactly which invariant
// regressed.
func (r *Result) Summary() string {
	names := make([]string, 0, len(r.Counts))
	width := 0
	for name := range r.Counts {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	var b bytes.Buffer
	fmt.Fprintf(&b, "leasevet: %d package(s), %d finding(s)\n", r.Packages, len(r.Diagnostics))
	for _, name := range names {
		fmt.Fprintf(&b, "  %-*s %d\n", width, name, r.Counts[name])
	}
	return b.String()
}
