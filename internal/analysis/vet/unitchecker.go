package vet

// The `go vet -vettool` protocol. For every package in the build, the
// go command invokes the tool three ways: `-flags` (report supported
// flags), `-V=full` (version stamp for build caching) and with a single
// vet.cfg argument describing one compiled package — its files, the
// export data of its dependencies, and the .vetx fact files earlier
// invocations produced for them. The tool must analyze the package,
// write its own fact file to VetxOutput, and exit non-zero with
// diagnostics on stderr to fail the vet run.

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
)

// UnitConfig mirrors the vet.cfg JSON the go command writes. Unknown
// fields are ignored.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxBundle is the on-disk fact file: package path → fact bundle,
// carrying the transitive closure so facts reach indirect dependents.
type vetxBundle map[string]Facts

// RunUnit executes one vet.cfg invocation and returns the diagnostics.
// Writing the (possibly empty) VetxOutput file is unconditional — the
// go command treats a missing fact file as a tool failure.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("leasevet: read %s: %w", cfgPath, err)
	}
	var cfg UnitConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("leasevet: parse %s: %w", cfgPath, err)
	}

	closure := vetxBundle{}
	for _, vetx := range cfg.PackageVetx {
		b, err := os.ReadFile(vetx)
		if err != nil {
			continue // a dependency ran without producing facts
		}
		var dep vetxBundle
		if err := json.Unmarshal(b, &dep); err != nil {
			continue
		}
		for path, facts := range dep {
			closure[path] = facts
		}
	}

	// Dependency-only invocations without export data (the standard
	// library) cannot be typechecked from a vet.cfg; they also cannot
	// hold the repository's invariants. Record an empty fact bundle and
	// succeed.
	if cfg.VetxOnly && len(cfg.PackageFile) == 0 {
		return nil, writeVetx(cfg.VetxOutput, closure)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, lookup)
	pkg, err := Typecheck(cfg.ImportPath, cfg.GoFiles, fset, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			return nil, writeVetx(cfg.VetxOutput, closure)
		}
		return nil, fmt.Errorf("leasevet: %w", err)
	}
	pkg.DepFacts = map[string]Facts{}
	for path, facts := range closure {
		pkg.DepFacts[path] = facts
	}

	diags, merged, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	closure[StripTestVariant(cfg.ImportPath)] = merged
	if err := writeVetx(cfg.VetxOutput, closure); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	return diags, nil
}

func writeVetx(path string, b vetxBundle) error {
	if path == "" {
		return nil
	}
	js, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("leasevet: encode facts: %w", err)
	}
	if err := os.WriteFile(path, js, 0o666); err != nil {
		return fmt.Errorf("leasevet: write facts: %w", err)
	}
	return nil
}
