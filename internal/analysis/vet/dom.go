package vet

import (
	"go/ast"
)

// Parents maps every node in a file tree to its parent, supporting the
// structural-dominance queries the ordering analyzers need.
type Parents map[ast.Node]ast.Node

// NewParents indexes the parent of every node under root.
func NewParents(root ast.Node) Parents {
	p := Parents{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			p[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return p
}

// Path returns the ancestor chain of n from the root down to n itself.
func (p Parents) Path(n ast.Node) []ast.Node {
	var rev []ast.Node
	for cur := n; cur != nil; cur = p[cur] {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EnclosingFunc returns the innermost function declaration or literal
// containing n, or nil.
func (p Parents) EnclosingFunc(n ast.Node) ast.Node {
	for cur := p[n]; cur != nil; cur = p[cur] {
		switch cur.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return cur
		}
	}
	return nil
}

// Dominators returns the statements that structurally dominate n within
// its enclosing function, innermost first: for every enclosing block,
// the statements listed before the one containing n. A statement earlier
// in a straight-line block always executes before n does (the analyzers
// run on goto-free code), so "some dominator touches X" is a sound
// approximation of "X happens before n on this path". The statement
// chain containing n itself is excluded; enclosing if/for/switch nodes
// are reported via GuardConditions instead.
func (p Parents) Dominators(n ast.Node) []ast.Stmt {
	var doms []ast.Stmt
	cur := n
	for {
		parent := p[cur]
		if parent == nil {
			break
		}
		if _, done := parent.(*ast.FuncDecl); done {
			break
		}
		if _, done := parent.(*ast.FuncLit); done {
			break
		}
		if block, ok := parent.(*ast.BlockStmt); ok {
			for _, st := range block.List {
				if st == cur {
					break
				}
				doms = append(doms, st)
			}
		}
		cur = parent
	}
	return doms
}

// GuardConditions returns the conditions of every if, for and switch
// statement enclosing n within its function. A guard does not dominate
// the code after the construct, but it does dominate n while n sits
// inside its body — which is exactly the "the branch already considered
// X" evidence the walorder analyzer accepts.
func (p Parents) GuardConditions(n ast.Node) []ast.Expr {
	var conds []ast.Expr
	for cur := p[n]; cur != nil; cur = p[cur] {
		switch s := cur.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return conds
		case *ast.IfStmt:
			if s.Cond != nil {
				conds = append(conds, s.Cond)
			}
		case *ast.ForStmt:
			if s.Cond != nil {
				conds = append(conds, s.Cond)
			}
		case *ast.SwitchStmt:
			if s.Tag != nil {
				conds = append(conds, s.Tag)
			}
		case *ast.CaseClause:
			conds = append(conds, s.List...)
		}
	}
	return conds
}
