// Package vettest is the golden-file test harness for leasevet
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest
// but built on the standard library only. A test points it at packages
// under testdata/src; every diagnostic the analyzer reports must be
// matched by a `// want "regexp"` comment on the flagged line, and
// every want comment must be matched by a diagnostic — so each golden
// package pins both the firing and the non-firing behavior of its
// analyzer.
package vettest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"leasing/internal/analysis/vet"
)

// expectation is one `// want` clause: a line that must produce a
// diagnostic matching rx.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

var wantRx = regexp.MustCompile(`// want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantArgRx = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run analyzes the listed packages (paths relative to dir/src, in
// dependency order — list a fact-producing package before its
// dependents) and compares diagnostics against the want comments.
func Run(t *testing.T, dir string, analyzer *vet.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunAnalyzers(t, dir, []*vet.Analyzer{analyzer}, pkgPaths...)
}

// RunAnalyzers is Run for a set of analyzers sharing one golden tree —
// used to prove a directive suppresses only the analyzer it names.
func RunAnalyzers(t *testing.T, dir string, analyzers []*vet.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()

	type parsedPkg struct {
		path  string
		files []*ast.File
		names []string
	}
	var parsed []*parsedPkg
	imports := map[string]bool{}
	local := map[string]bool{}
	for _, p := range pkgPaths {
		local[p] = true
	}
	for _, p := range pkgPaths {
		src := filepath.Join(dir, "src", filepath.FromSlash(p))
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatalf("vettest: %v", err)
		}
		pk := &parsedPkg{path: p}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			name := filepath.Join(src, e.Name())
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("vettest: parse %s: %v", name, err)
			}
			pk.files = append(pk.files, f)
			pk.names = append(pk.names, name)
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if !local[path] {
					imports[path] = true
				}
			}
		}
		if len(pk.files) == 0 {
			t.Fatalf("vettest: no Go files under %s", src)
		}
		parsed = append(parsed, pk)
	}

	// Resolve the non-local imports (the standard library) through the
	// gc export data `go list -export` produces.
	exports := map[string]string{}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := vet.GoList(dir, paths...)
		if err != nil {
			t.Fatalf("vettest: %v", err)
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	gc := importer.ForCompiler(fset, "gc", vet.ExportLookup(exports))
	mem := &memImporter{gc: gc, pkgs: map[string]*types.Package{}}

	var expects []*expectation
	for _, pk := range parsed {
		for _, f := range pk.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRx.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, q := range wantArgRx.FindAllString(m[1], -1) {
						raw, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("vettest: %s:%d: bad want clause %s: %v", pos.Filename, pos.Line, q, err)
						}
						rx, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("vettest: %s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						}
						expects = append(expects, &expectation{
							file: pos.Filename, line: pos.Line, rx: rx, raw: raw,
						})
					}
				}
			}
		}
	}

	var all []vet.Diagnostic
	factsByPath := map[string]vet.Facts{}
	for _, pk := range parsed {
		info := vet.NewInfo()
		conf := types.Config{Importer: mem}
		tpkg, err := conf.Check(pk.path, fset, pk.files, info)
		if err != nil {
			t.Fatalf("vettest: typecheck %s: %v", pk.path, err)
		}
		mem.pkgs[pk.path] = tpkg
		pkg := &vet.Package{
			Path:     pk.path,
			Fset:     fset,
			Files:    pk.files,
			Types:    tpkg,
			Info:     info,
			DepFacts: map[string]vet.Facts{},
		}
		for path, f := range factsByPath {
			pkg.DepFacts[path] = f
		}
		diags, merged, err := vet.RunAnalyzers(pkg, analyzers)
		if err != nil {
			t.Fatalf("vettest: %v", err)
		}
		factsByPath[pk.path] = merged
		all = append(all, diags...)
	}

	for _, d := range all {
		if !claim(expects, d) {
			t.Errorf("vettest: unexpected diagnostic %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("vettest: %s:%d: no diagnostic matched want %q", e.file, e.line, e.raw)
		}
	}
}

// claim matches a diagnostic against the unmatched expectation on its
// line.
func claim(expects []*expectation, d vet.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.rx.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// memImporter serves already-typechecked testdata packages from memory
// and everything else from gc export data.
type memImporter struct {
	gc   types.Importer
	pkgs map[string]*types.Package
}

func (m *memImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.gc.Import(path)
}
