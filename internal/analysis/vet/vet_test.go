package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"leasing/internal/engine", "internal/engine", true},
		{"internal/engine", "internal/engine", true},
		{"leasing/internal/engine [leasing/internal/engine.test]", "internal/engine", true},
		{"leasing/internal/engineering", "internal/engine", false},
		{"leasing/internal/wal", "internal/engine", false},
	}
	for _, c := range cases {
		if got := PathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestStripTestVariant(t *testing.T) {
	if got := StripTestVariant("p/q [p/q.test]"); got != "p/q" {
		t.Errorf("StripTestVariant = %q, want p/q", got)
	}
	if got := StripTestVariant("p/q"); got != "p/q" {
		t.Errorf("StripTestVariant = %q, want p/q", got)
	}
}

func TestScanDirectives(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow-wallclock measures latency
	//lint:allow-detorder
	_ = 2
	//lint:allow-walorder reason here // want "ignored"
	_ = 3
	// not a directive: lint:allow-x
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sites := scanDirectives(fset, []*ast.File{f})
	if len(sites) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(sites), sites)
	}
	if sites[0].name != "wallclock" || sites[0].reason != "measures latency" {
		t.Errorf("site 0 = %+v", sites[0])
	}
	if sites[1].name != "detorder" || sites[1].reason != "" {
		t.Errorf("site 1 = %+v (bare directive must have empty reason)", sites[1])
	}
	if sites[2].name != "walorder" || sites[2].reason != "reason here" {
		t.Errorf("site 2 = %+v (want clause must be stripped from the reason)", sites[2])
	}
}

func TestSummaryShape(t *testing.T) {
	r := &Result{
		Counts:   map[string]int{"detorder": 2, "walorder": 0},
		Packages: 7,
	}
	r.Diagnostics = make([]Diagnostic, 2)
	got := r.Summary()
	want := "leasevet: 7 package(s), 2 finding(s)\n  detorder 2\n  walorder 0\n"
	if got != want {
		t.Errorf("Summary:\n%q\nwant:\n%q", got, want)
	}
	if !strings.HasSuffix(got, "\n") {
		t.Error("summary must end with a newline for stable diffs")
	}
}
