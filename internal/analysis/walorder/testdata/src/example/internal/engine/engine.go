// Package engine is golden-test input for the walorder analyzer: a
// miniature of the real engine's op/shard shape. Event enqueues must be
// dominated by WAL evidence, carry nolog: true, or be annotated.
package engine

type op struct {
	kind   int
	tenant string
	events []int
	nolog  bool
}

const (
	opOpen = iota
	opEvents
	opClose
)

// WAL is the append-only log the admission invariant guards.
type WAL interface {
	LogEvents(tenant string, events []int) error
}

// Config carries the optional WAL.
type Config struct {
	WAL WAL
}

// Engine is the enqueue side.
type Engine struct {
	cfg   Config
	queue chan op
}

func (e *Engine) send(o op) error {
	e.queue <- o
	return nil
}

// Submit logs before it enqueues: the WAL append dominates the send, so
// nothing fires.
func (e *Engine) Submit(tenant string, events []int) error {
	if err := e.cfg.WAL.LogEvents(tenant, events); err != nil {
		return err
	}
	return e.send(op{kind: opEvents, tenant: tenant, events: events})
}

// Broken enqueues without any WAL evidence and fires.
func (e *Engine) Broken(tenant string, events []int) error {
	return e.send(op{kind: opEvents, tenant: tenant, events: events}) // want "opEvents enqueued without a dominating WAL append"
}

// NonDurable decides about the WAL in its guard — the nil check is the
// evidence that logging was considered — so nothing fires.
func (e *Engine) NonDurable(tenant string, events []int) error {
	if e.cfg.WAL == nil {
		return e.send(op{kind: opEvents, tenant: tenant, events: events})
	}
	if err := e.cfg.WAL.LogEvents(tenant, events); err != nil {
		return err
	}
	return e.send(op{kind: opEvents, tenant: tenant, events: events})
}

// Waived carries the explicit in-band nolog marker, so nothing fires.
func (e *Engine) Waived(tenant string, events []int) error {
	return e.send(op{kind: opEvents, tenant: tenant, events: events, nolog: true})
}

// Replay is the annotated recovery-path exception.
func (e *Engine) Replay(tenant string, events []int) error {
	//lint:allow-walorder recovery replays events already durable in the WAL
	return e.send(op{kind: opEvents, tenant: tenant, events: events})
}

// Open and close ops are logged shard-side and are out of scope.
func (e *Engine) Lifecycle(tenant string) error {
	if err := e.send(op{kind: opOpen, tenant: tenant}); err != nil {
		return err
	}
	return e.send(op{kind: opClose, tenant: tenant})
}
