package walorder_test

import (
	"path/filepath"
	"testing"

	"leasing/internal/analysis/vet/vettest"
	"leasing/internal/analysis/walorder"
)

func TestWALOrder(t *testing.T) {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	vettest.Run(t, dir, walorder.Analyzer, "example/internal/engine")
}
