// Package walorder enforces the engine's log-before-enqueue admission
// invariant: a batch of events may only be handed to a shard after the
// write-ahead log has accepted it (or after the code has explicitly
// established that no WAL is configured). Enqueue-then-log loses
// acknowledged events on crash — the exact failure the durable-session
// work exists to rule out.
//
// Concretely, inside internal/engine every `op{kind: opEvents, …}`
// composite literal must either be structurally preceded by WAL
// evidence — a dominating statement or enclosing guard that touches the
// `.WAL` handle or calls LogEvents/LogOpen/LogClose — or carry the
// explicit `nolog: true` waiver field the replay path uses. Open and
// close ops are logged shard-side during installation and sealing, so
// only event batches are checked. Recovery-time sites that re-inject
// already-logged events annotate with `//lint:allow-walorder <reason>`.
package walorder

import (
	"go/ast"
	"go/types"

	"leasing/internal/analysis/vet"
)

// Analyzer is the walorder check.
var Analyzer = &vet.Analyzer{
	Name: "walorder",
	Doc: "requires every op{kind: opEvents} enqueue in internal/engine to be " +
		"dominated by write-ahead-log evidence (a statement or guard touching " +
		".WAL or calling LogEvents/LogOpen/LogClose) or to carry nolog: true; " +
		"replay-path exceptions annotate with //lint:allow-walorder <reason>",
	Run: run,
}

// walCalls are the WAL append entry points that count as logging
// evidence.
var walCalls = map[string]bool{
	"LogEvents": true, "LogOpen": true, "LogClose": true,
}

func run(pass *vet.Pass) error {
	if !vet.PathHasSuffix(pass.Pkg.Path(), "internal/engine") {
		return nil
	}
	for _, f := range pass.Files {
		parents := vet.NewParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isEventsOp(pass, lit) {
				return true
			}
			if hasNologWaiver(lit) {
				return true
			}
			if dominatedByWAL(parents, lit) {
				return true
			}
			pass.Reportf(lit.Pos(),
				"opEvents enqueued without a dominating WAL append: events must be logged before they reach a shard (log-before-enqueue), or the op must carry nolog: true / a //lint:allow-walorder <reason> annotation")
			return true
		})
	}
	return nil
}

// isEventsOp reports whether lit is an `op{…}` composite literal whose
// kind field is the opEvents constant.
func isEventsOp(pass *vet.Pass, lit *ast.CompositeLit) bool {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "op" {
		return false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "kind" {
			continue
		}
		if val, ok := kv.Value.(*ast.Ident); ok && val.Name == "opEvents" {
			return true
		}
	}
	return false
}

// hasNologWaiver reports whether the literal sets nolog: true — the
// explicit in-band marker for ops that must bypass the log.
func hasNologWaiver(lit *ast.CompositeLit) bool {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "nolog" {
			continue
		}
		if val, ok := kv.Value.(*ast.Ident); ok && val.Name == "true" {
			return true
		}
	}
	return false
}

// dominatedByWAL reports whether any statement structurally dominating
// lit, or any enclosing guard condition, touches the WAL: selects a
// field or method named WAL, or calls one of the Log* append entry
// points. Dominators execute before the enqueue on every path reaching
// it, so their WAL touch is the log-append (or the nil-WAL decision)
// the invariant demands.
func dominatedByWAL(parents vet.Parents, lit *ast.CompositeLit) bool {
	for _, stmt := range parents.Dominators(lit) {
		if mentionsWAL(stmt) {
			return true
		}
	}
	for _, cond := range parents.GuardConditions(lit) {
		if mentionsWAL(cond) {
			return true
		}
	}
	return false
}

// mentionsWAL scans a subtree for WAL evidence.
func mentionsWAL(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "WAL" || walCalls[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}
