// Package detorder flags `for … range` over a map whose body produces
// ordered output — appending to an outer slice, encoding or writing
// bytes, appending write-ahead-log records, or sending on a channel —
// without the iteration order being neutralized afterwards.
//
// Go randomizes map iteration order on purpose, so any byte stream,
// slice or log assembled inside such a loop differs run to run. In this
// repository that is not a style nit: engine output must be
// byte-identical to a single-threaded Replay, WAL records must replay
// to the same sessions, and wire encodings must survive exact round
// trips. A map-ordered WAL record is a determinism bug that only
// surfaces on recovery.
//
// The analyzer accepts the two idioms that make map iteration safe:
// collecting into a slice that is passed to a sort function later in
// the same function (sort.*, slices.Sort*), and effects that are
// order-free (writing into another map, counting, summing). Genuinely
// order-free emission — e.g. independent per-session publishes — can be
// annotated with `//lint:allow-detorder <reason>`.
package detorder

import (
	"go/ast"
	"go/types"
	"strings"

	"leasing/internal/analysis/vet"
)

// Analyzer is the detorder check.
var Analyzer = &vet.Analyzer{
	Name: "detorder",
	Doc: "flags map iteration that appends to an outer slice (unless the slice " +
		"is sorted later in the same function), encodes or writes output, " +
		"appends WAL records, or sends on a channel — ordered output built in " +
		"randomized map order; exempt truly order-free sites with " +
		"//lint:allow-detorder <reason>",
	Run: run,
}

// emitterCalls are method / function selector names that emit ordered
// output when called once per map iteration.
var emitterCalls = map[string]bool{
	"Encode": true, "Marshal": true, "MarshalJSON": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"LogOpen": true, "LogEvents": true, "LogClose": true,
}

// sortCalls recognize the order-neutralizing calls of the sort and
// slices packages.
var sortCalls = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

// isSortCall also accepts the repository's own Sort-prefixed canonical
// ordering helpers (stream.SortItemLeases, setcover.SortSetLeases, …).
func isSortCall(name string) bool {
	return sortCalls[name] || strings.HasPrefix(name, "Sort")
}

func run(pass *vet.Pass) error {
	for _, f := range pass.Files {
		parents := vet.NewParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, parents, rng)
			return true
		})
	}
	return nil
}

func checkMapRange(pass *vet.Pass, parents vet.Parents, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"map iteration sends on a channel in randomized order; drain a sorted key list instead")
		case *ast.CallExpr:
			if obj := appendTarget(pass, n); obj != nil && obj.Pos() < rng.Pos() {
				if !sortedLater(pass, parents, rng, obj) {
					pass.Reportf(n.Pos(),
						"map iteration appends to %q in randomized order; sort %q afterwards or iterate sorted keys",
						obj.Name(), obj.Name())
				}
				return true
			}
			if name, ok := emitterName(n); ok {
				pass.Reportf(n.Pos(),
					"map iteration calls %s in randomized order, producing order-dependent output; iterate sorted keys or collect and sort first",
					name)
			}
		}
		return true
	})
}

// appendTarget returns the object of the slice being appended to when
// call is `append(x, ...)` with x a plain identifier or selector, nil
// otherwise.
func appendTarget(pass *vet.Pass, call *ast.CallExpr) types.Object {
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	switch arg := call.Args[0].(type) {
	case *ast.Ident:
		return pass.Info.Uses[arg]
	case *ast.SelectorExpr:
		return pass.Info.Uses[arg.Sel]
	}
	return nil
}

// emitterName reports whether call is an ordered-output emitter and
// names it for the diagnostic.
func emitterName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !emitterCalls[sel.Sel.Name] {
		return "", false
	}
	if x, ok := sel.X.(*ast.Ident); ok {
		return x.Name + "." + sel.Sel.Name, true
	}
	return sel.Sel.Name, true
}

// sortedLater reports whether obj is passed to a sort call after the
// range statement, anywhere later in the enclosing function.
func sortedLater(pass *vet.Pass, parents vet.Parents, rng *ast.RangeStmt, obj types.Object) bool {
	fn := parents.EnclosingFunc(rng)
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		if !isSortCall(name) {
			return true
		}
		for _, arg := range call.Args {
			if target := rootObject(pass, arg); target == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// rootObject resolves an argument expression to the variable it
// denotes, looking through unary & and slice expressions.
func rootObject(pass *vet.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.Info.Uses[x]
		case *ast.SelectorExpr:
			return pass.Info.Uses[x.Sel]
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
