// Package detorder is golden-test input for the detorder analyzer:
// map iteration building ordered output fires, the sanctioned idioms
// (sort afterwards, map-to-map copies, pure aggregation) do not.
package detorder

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Appending to an outer slice in map order fires.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map iteration appends to \"out\" in randomized order"
	}
	return out
}

// The same loop followed by a sort of the slice is the sanctioned
// collect-then-sort idiom and must not fire.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// A repository-style Sort helper also neutralizes the order.
func SortLeases(ls []string) { sort.Strings(ls) }

func HelperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	SortLeases(out)
	return out
}

// Copying a map into another map is order-free and must not fire (the
// engine's shard registry snapshot does exactly this).
func Snapshot(m map[string]int) map[string]int {
	reg := make(map[string]int, len(m))
	for k, v := range m {
		reg[k] = v
	}
	return reg
}

// Aggregation carries no order and must not fire.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Appending to a slice born inside the loop body is per-iteration
// state, not ordered output, and must not fire.
func PerKey(m map[string][]int, f func([]int)) {
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		f(local)
	}
}

// Encoding inside map iteration writes bytes in randomized order.
func Encode(w io.Writer, m map[string]int) error {
	enc := json.NewEncoder(w)
	for k, v := range m {
		if err := enc.Encode(map[string]int{k: v}); err != nil { // want "map iteration calls enc.Encode in randomized order"
			return err
		}
	}
	return nil
}

// Printing inside map iteration fires.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "map iteration calls fmt.Fprintf in randomized order"
	}
}

// Sending on a channel in map order fires.
func Publish(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "map iteration sends on a channel in randomized order"
	}
}

// An annotated order-free emission is suppressed.
func Broadcast(m map[string]chan int, v int) {
	for _, ch := range m {
		ch <- v //lint:allow-detorder independent per-subscriber notification; receivers never compare order
	}
}
