package detorder_test

import (
	"path/filepath"
	"testing"

	"leasing/internal/analysis/detorder"
	"leasing/internal/analysis/vet/vettest"
)

func TestDetOrder(t *testing.T) {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	vettest.Run(t, dir, detorder.Analyzer, "example/detorder")
}
