package steiner

import (
	"math"
	"math/rand"
	"testing"

	"leasing/internal/graph"
	"leasing/internal/lease"
)

func steinerConfig() *lease.Config {
	return lease.MustConfig(
		lease.Type{Length: 1, Cost: 1},
		lease.Type{Length: 8, Cost: 4},
	)
}

func lineGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.New(3, []graph.Edge{
		{U: 0, V: 1, Weight: 2},
		{U: 1, V: 2, Weight: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewInstanceValidation(t *testing.T) {
	g := lineGraph(t)
	cfg := steinerConfig()
	if _, err := NewInstance(g, lease.MustConfig(lease.Type{Length: 3, Cost: 1}), nil); err == nil {
		t.Error("non-interval config accepted")
	}
	if _, err := NewInstance(g, cfg, []Request{{Time: 0, S: 0, T: 9}}); err == nil {
		t.Error("bad terminal accepted")
	}
	if _, err := NewInstance(g, cfg, []Request{{Time: 0, S: 1, T: 1}}); err == nil {
		t.Error("equal terminals accepted")
	}
	if _, err := NewInstance(g, cfg, []Request{{Time: 5, S: 0, T: 1}, {Time: 1, S: 0, T: 1}}); err == nil {
		t.Error("unsorted requests accepted")
	}
}

func TestSingleRequestLeasesPath(t *testing.T) {
	g := lineGraph(t)
	inst, err := NewInstance(g, steinerConfig(), []Request{{Time: 0, S: 0, T: 2}})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewOnline(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	if err := alg.VerifyFeasible(); err != nil {
		t.Error(err)
	}
	// Both edges leased with the day type: (2+3)*1 = 5.
	if math.Abs(alg.TotalCost()-5) > 1e-9 {
		t.Errorf("cost = %v, want 5", alg.TotalCost())
	}
}

func TestRepeatedPairUpgradesToLongLease(t *testing.T) {
	g := lineGraph(t)
	// The same pair every day: per-edge parking permits must switch to the
	// long lease (cost 4w vs 8 daily leases at 1w each).
	var reqs []Request
	for day := int64(0); day < 8; day++ {
		reqs = append(reqs, Request{Time: day, S: 0, T: 2})
	}
	inst, err := NewInstance(g, steinerConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewOnline(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	if err := alg.VerifyFeasible(); err != nil {
		t.Error(err)
	}
	baseline, err := OfflineTreeBaseline(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Offline buys the long lease per edge: (2+3)*4 = 20.
	if math.Abs(baseline-20) > 1e-9 {
		t.Errorf("baseline = %v, want 20", baseline)
	}
	if alg.TotalCost() < baseline-1e-9 {
		t.Errorf("online %v below offline baseline %v", alg.TotalCost(), baseline)
	}
	// The per-edge primal-dual is K-competitive per edge, so the composed
	// cost is at most K times the baseline.
	if alg.TotalCost() > float64(steinerConfig().K())*baseline+1e-9 {
		t.Errorf("online %v exceeds K*baseline %v", alg.TotalCost(), float64(steinerConfig().K())*baseline)
	}
}

func TestActiveEdgesAreFreeToRoute(t *testing.T) {
	// Triangle: direct edge 0-2 is pricey, path via 1 cheap. After leasing
	// the cheap path once, a second same-day request must cost nothing.
	g, err := graph.New(3, []graph.Edge{
		{U: 0, V: 1, Weight: 1},
		{U: 1, V: 2, Weight: 1},
		{U: 0, V: 2, Weight: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(g, steinerConfig(), []Request{
		{Time: 0, S: 0, T: 2},
		{Time: 0, S: 0, T: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewOnline(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(alg.TotalCost()-2) > 1e-9 {
		t.Errorf("cost = %v, want 2 (second request free)", alg.TotalCost())
	}
}

func TestRandomInstancesFeasibleAndBounded(t *testing.T) {
	cfg := steinerConfig()
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.RandomConnected(rng, 12, 20, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		var reqs []Request
		for day := int64(0); day < 24; day++ {
			if rng.Float64() < 0.6 {
				s, tt := rng.Intn(12), rng.Intn(12)
				if s == tt {
					continue
				}
				reqs = append(reqs, Request{Time: day, S: s, T: tt})
			}
		}
		if len(reqs) == 0 {
			continue
		}
		inst, err := NewInstance(g, cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		alg, err := NewOnline(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := alg.VerifyFeasible(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		baseline, err := OfflineTreeBaseline(inst)
		if err != nil {
			t.Fatal(err)
		}
		if baseline <= 0 {
			t.Fatalf("seed %d: zero baseline", seed)
		}
		// The online route always has marginal cost at most the static
		// route's full leasing price, and each edge is K-competitive, so a
		// generous sanity ceiling is (K+1) * baseline.
		ceiling := float64(cfg.K()+1) * baseline
		if alg.TotalCost() > ceiling+1e-9 {
			t.Errorf("seed %d: online %v above ceiling %v", seed, alg.TotalCost(), ceiling)
		}
	}
}

func TestServeTimeRegression(t *testing.T) {
	g := lineGraph(t)
	inst, err := NewInstance(g, steinerConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewOnline(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Serve(Request{Time: 5, S: 0, T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := alg.Serve(Request{Time: 2, S: 0, T: 1}); err == nil {
		t.Error("time regression accepted")
	}
}
