package steiner

import (
	"fmt"

	"leasing/internal/core"
	"leasing/internal/lease"
	"leasing/internal/stream"
)

// Leaser adapts the composed Steiner-tree-leasing algorithm to the
// unified stream protocol. Items are edge indices; each Connect payload is
// one communication request.
type Leaser struct {
	alg      *Online
	seen     map[core.ItemLease]struct{}
	lastCost float64
}

var _ stream.Leaser = (*Leaser)(nil)

// NewLeaser wraps a Steiner-tree-leasing algorithm as a stream.Leaser.
func NewLeaser(alg *Online) *Leaser {
	return &Leaser{alg: alg, seen: make(map[core.ItemLease]struct{})}
}

// Observe implements stream.Leaser. It accepts Connect payloads.
func (l *Leaser) Observe(ev stream.Event) (stream.Decision, error) {
	p, ok := ev.Payload.(stream.Connect)
	if !ok {
		return stream.Decision{}, fmt.Errorf("steiner: unsupported payload %T", ev.Payload)
	}
	if err := l.alg.Serve(Request{Time: ev.Time, S: p.S, T: p.T}); err != nil {
		return stream.Decision{}, err
	}
	// A request routed over active edges left the total bit-identical;
	// skip the all-edges purchase-set diff.
	if l.alg.TotalCost() == l.lastCost {
		return stream.Decision{}, nil
	}
	d := stream.Decision{Cost: l.alg.TotalCost() - l.lastCost}
	l.lastCost = l.alg.TotalCost()
	for _, il := range l.alg.EdgeLeases() {
		if _, ok := l.seen[il]; ok {
			continue
		}
		l.seen[il] = struct{}{}
		d.Leases = append(d.Leases, il)
	}
	stream.SortItemLeases(d.Leases)
	return d, nil
}

// Cost implements stream.Leaser.
func (l *Leaser) Cost() stream.CostBreakdown {
	return stream.CostBreakdown{Lease: l.alg.TotalCost()}
}

// Snapshot implements stream.Leaser.
func (l *Leaser) Snapshot() stream.Solution {
	return stream.Solution{Leases: l.alg.EdgeLeases()}
}

// EdgeLeases returns every lease bought across the per-edge parking
// permits as (edge, type, start) triples, sorted by (edge, type, start).
func (o *Online) EdgeLeases() []core.ItemLease {
	var out []core.ItemLease
	for e, alg := range o.perEdge {
		for _, ls := range alg.Leases() {
			out = append(out, core.ItemLease{Item: e, K: ls.K, Start: ls.Start})
		}
	}
	stream.SortItemLeases(out)
	return out
}

// Events converts requests into Connect events.
func Events(reqs []Request) []stream.Event {
	out := make([]stream.Event, len(reqs))
	for i, r := range reqs {
		out[i] = stream.Event{Time: r.Time, Payload: stream.Connect{S: r.S, T: r.T}}
	}
	return out
}

// VerifySolution checks a set of edge-lease triples serves every request
// of the instance: at each request's step, its terminals must be connected
// by edges holding an active lease. It is the snapshot-level feasibility
// oracle of the stream protocol (the Online type's VerifyFeasible checks
// the same property against its own internal state).
func VerifySolution(inst *Instance, leases []core.ItemLease) error {
	stores := make([]*lease.Store, inst.G.M())
	for e := range stores {
		stores[e] = lease.NewStore(inst.Cfg)
	}
	for _, il := range leases {
		if il.Item < 0 || il.Item >= inst.G.M() {
			return fmt.Errorf("steiner: lease %+v names edge outside [0,%d)", il, inst.G.M())
		}
		if il.K < 0 || il.K >= inst.Cfg.K() {
			return fmt.Errorf("steiner: lease %+v has type outside [0,%d)", il, inst.Cfg.K())
		}
		stores[il.Item].Buy(lease.Lease{K: il.K, Start: il.Start})
	}
	for i, r := range inst.Requests {
		p, err := inst.G.ShortestPath(r.S, r.T, func(e int) float64 {
			if stores[e].Covers(r.Time) {
				return 0
			}
			return 1
		})
		if err != nil || p.Cost != 0 {
			return fmt.Errorf("steiner: request %d (%d,%d) at %d not connected by leased edges", i, r.S, r.T, r.Time)
		}
	}
	return nil
}
