// Package steiner implements SteinerTreeLeasing, the companion problem
// Meyerson introduced alongside the parking permit problem (thesis
// Section 5.1): pairs of communicating nodes announce themselves over
// time, and edges of a network must be leased so every announced pair is
// connected by active edges at its announcement step. Leasing edge e with
// type k costs weight(e) * typeCost(k) and keeps e active for l_k steps.
//
// The online algorithm composes the repository's substrates: routing uses
// shortest paths where active edges are free and inactive edges charge
// their marginal leasing price, and each edge manages its own lease
// purchases with the deterministic parking-permit primal-dual of
// Chapter 2 (the edge's demand days are the steps routes cross it). The
// offline baseline builds, with hindsight, a static routing tree and then
// buys each used edge's leases exactly optimally via the laminar DP.
package steiner

import (
	"errors"
	"fmt"

	"leasing/internal/graph"
	"leasing/internal/lease"
	"leasing/internal/parking"
)

// Request is one communication demand: terminals S and T must be
// connected by active edges at step Time.
type Request struct {
	Time int64
	S, T int
}

// Instance is a Steiner-tree-leasing input. Edge lease prices are
// weight(e) * Cfg.Cost(k), so the configuration's costs act as per-type
// multipliers.
type Instance struct {
	G        *graph.Graph
	Cfg      *lease.Config
	Requests []Request
}

// NewInstance validates the input: interval-model configuration, valid
// terminals, non-decreasing request times.
func NewInstance(g *graph.Graph, cfg *lease.Config, reqs []Request) (*Instance, error) {
	if !cfg.IsIntervalModel() {
		return nil, errors.New("steiner: configuration is not in the interval model")
	}
	var lastT int64
	for i, r := range reqs {
		if r.S < 0 || r.S >= g.N() || r.T < 0 || r.T >= g.N() {
			return nil, fmt.Errorf("steiner: request %d terminals (%d,%d) outside [0,%d)", i, r.S, r.T, g.N())
		}
		if r.S == r.T {
			return nil, fmt.Errorf("steiner: request %d has equal terminals", i)
		}
		if i > 0 && r.Time < lastT {
			return nil, fmt.Errorf("steiner: request %d out of order", i)
		}
		lastT = r.Time
	}
	return &Instance{G: g, Cfg: cfg, Requests: reqs}, nil
}

// edgeConfig scales the lease configuration by an edge's weight.
func edgeConfig(cfg *lease.Config, weight float64) *lease.Config {
	types := cfg.Types()
	for i := range types {
		types[i].Cost *= weight
	}
	return lease.MustConfig(types...)
}

// Online is the composed online algorithm: per-edge parking-permit
// instances plus marginal-price shortest-path routing.
type Online struct {
	inst    *Instance
	perEdge []*parking.Deterministic
	total   float64
	lastT   int64
	started bool
}

// NewOnline builds the algorithm.
func NewOnline(inst *Instance) (*Online, error) {
	perEdge := make([]*parking.Deterministic, inst.G.M())
	for e := range perEdge {
		alg, err := parking.NewDeterministic(edgeConfig(inst.Cfg, inst.G.Edge(e).Weight))
		if err != nil {
			return nil, err
		}
		perEdge[e] = alg
	}
	return &Online{inst: inst, perEdge: perEdge}, nil
}

// Serve processes one request: route S-T over the cheapest mix of active
// and to-be-leased edges, then feed the chosen inactive edges' parking
// permits a demand at this step.
func (o *Online) Serve(r Request) error {
	if o.started && r.Time < o.lastT {
		return fmt.Errorf("steiner: request at %d precedes %d", r.Time, o.lastT)
	}
	o.started, o.lastT = true, r.Time

	marginal := func(e int) float64 {
		if o.perEdge[e].Covers(r.Time) {
			return 0
		}
		// The cheapest lease the edge could buy to serve this step.
		w := o.inst.G.Edge(e).Weight
		best := o.inst.Cfg.Cost(0)
		for k := 1; k < o.inst.Cfg.K(); k++ {
			if c := o.inst.Cfg.Cost(k); c < best {
				best = c
			}
		}
		return w * best
	}
	p, err := o.inst.G.ShortestPath(r.S, r.T, marginal)
	if err != nil {
		return fmt.Errorf("steiner: request (%d,%d) at %d: %w", r.S, r.T, r.Time, err)
	}
	for _, e := range p.Edges {
		if o.perEdge[e].Covers(r.Time) {
			continue
		}
		before := o.perEdge[e].TotalCost()
		if err := o.perEdge[e].Arrive(r.Time); err != nil {
			return fmt.Errorf("steiner: edge %d lease: %w", e, err)
		}
		o.total += o.perEdge[e].TotalCost() - before
		if !o.perEdge[e].Covers(r.Time) {
			return fmt.Errorf("steiner: edge %d still inactive after leasing", e)
		}
	}
	return nil
}

// Run processes all requests of the instance.
func (o *Online) Run() error {
	for _, r := range o.inst.Requests {
		if err := o.Serve(r); err != nil {
			return err
		}
	}
	return nil
}

// TotalCost returns the accumulated leasing cost.
func (o *Online) TotalCost() float64 { return o.total }

// Connected reports whether s and t are connected by edges active at time
// tm — the feasibility predicate.
func (o *Online) Connected(s, t int, tm int64) bool {
	p, err := o.inst.G.ShortestPath(s, t, func(e int) float64 {
		if o.perEdge[e].Covers(tm) {
			return 0
		}
		return 1
	})
	return err == nil && p.Cost == 0
}

// VerifyFeasible replays the requests against the final per-edge lease
// state. Because leases expire, feasibility is checked at each request's
// own timestamp.
func (o *Online) VerifyFeasible() error {
	for i, r := range o.inst.Requests {
		if !o.Connected(r.S, r.T, r.Time) {
			return fmt.Errorf("steiner: request %d (%d,%d) at %d not connected", i, r.S, r.T, r.Time)
		}
	}
	return nil
}

// OfflineTreeBaseline computes a hindsight baseline: route every request
// on the static shortest path of the underlying graph, collect each
// edge's demand days, and buy each used edge's leases exactly optimally
// with the laminar DP. The result is a feasible offline solution (not
// necessarily optimal, but a strong anchor for ratio measurements).
func OfflineTreeBaseline(inst *Instance) (float64, error) {
	edgeDays := map[int][]int64{}
	for _, r := range inst.Requests {
		p, err := inst.G.ShortestPath(r.S, r.T, nil)
		if err != nil {
			return 0, fmt.Errorf("steiner: baseline routing (%d,%d): %w", r.S, r.T, err)
		}
		for _, e := range p.Edges {
			days := edgeDays[e]
			if len(days) == 0 || days[len(days)-1] != r.Time {
				edgeDays[e] = append(days, r.Time)
			}
		}
	}
	var total float64
	for e, days := range edgeDays {
		cost, _, err := parking.Optimal(edgeConfig(inst.Cfg, inst.G.Edge(e).Weight), days)
		if err != nil {
			return 0, err
		}
		total += cost
	}
	return total, nil
}
