package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"leasing/internal/lease"
	"leasing/internal/parking"
	"leasing/internal/sim"
	"leasing/internal/stats"
	"leasing/internal/stream"
	"leasing/internal/workload"
)

// parkingExperiments declares the Chapter 2 experiments implemented in
// this file, with the paper artifact and predicted bound each regenerates.
func parkingExperiments() []Info {
	return []Info{
		{ID: "E1", Paper: "Thm 2.7 / Fig 1.1", Chapter: "2", Predicted: "ratio <= K, i.e. O(K)",
			Summary: "deterministic parking permit is O(K)-competitive", Run: e1DeterministicParking},
		{ID: "E2", Paper: "Thm 2.8", Chapter: "2", Predicted: "ratio >= K/3, i.e. Omega(K)",
			Summary: "adaptive adversary forces Omega(K)", Run: e2DeterministicLowerBound},
		{ID: "E3", Paper: "Alg 2 (Sec 2.2.3)", Chapter: "2", Predicted: "O(log K) in expectation",
			Summary: "randomized parking permit is O(log K)-competitive", Run: e3RandomizedParking},
		{ID: "E4", Paper: "Thm 2.9", Chapter: "2", Predicted: "Omega(log K) for any online algorithm",
			Summary: "randomized lower-bound distribution forces Omega(log K)", Run: e4RandomizedLowerBound},
		{ID: "E5", Paper: "Lemma 2.6 / Fig 2.3", Chapter: "2", Predicted: "expanded cost <= 4 * general OPT",
			Summary: "interval-model transformation loses at most a factor 4", Run: e5IntervalModel},
	}
}

// parkingStream draws a demand-day stream mixing uniform and bursty days so
// both lease regimes are exercised.
func parkingStream(rng *rand.Rand, horizon int64) []int64 {
	if rng.Float64() < 0.5 {
		return workload.DemandDays(rng, horizon, 0.3)
	}
	return workload.BurstyDays(rng, horizon, 0.92)
}

func parkingHorizon(cfg *lease.Config) int64 {
	h := cfg.LMax()
	if h < 256 {
		h = 256
	}
	if h > 4096 {
		h = 4096
	}
	return h
}

// e1DeterministicParking measures the deterministic primal-dual algorithm's
// competitive ratio against the exact DP optimum while sweeping K
// (Theorem 2.7 predicts ratio <= K; growth should be at most linear).
func e1DeterministicParking(cfg Config) (*sim.Table, error) {
	ks := []int{1, 2, 3, 4, 5, 6, 7, 8}
	trials := 12
	if cfg.Quick {
		ks = []int{1, 2, 4}
		trials = 3
	}
	tb := &sim.Table{
		Title:   "E1 deterministic parking permit (Thm 2.7): ratio vs K",
		Columns: []string{"K", "trials", "mean_ratio", "max_ratio", "bound_K"},
	}
	var xs, ys []float64
	for _, k := range ks {
		lcfg := lease.PowerConfig(k, 4, 0.5)
		horizon := parkingHorizon(lcfg)
		s, err := sim.RatiosWorkers(trials, cfg.Seed+int64(k)*1000, cfg.Workers, func(rng *rand.Rand) (float64, float64, error) {
			days := parkingStream(rng, horizon)
			if len(days) == 0 {
				return 0, 0, nil
			}
			alg, err := parking.NewDeterministic(lcfg)
			if err != nil {
				return 0, 0, err
			}
			online, err := replayTotal(parking.NewLeaser(alg), stream.Days(days))
			if err != nil {
				return 0, 0, err
			}
			opt, _, err := parking.Optimal(lcfg, days)
			if err != nil {
				return 0, 0, err
			}
			return online, opt, nil
		})
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(sim.D(k), sim.D(s.N), sim.F(s.Mean), sim.F(s.Max), sim.D(k))
		xs = append(xs, float64(k))
		ys = append(ys, s.Mean)
	}
	if fit, err := stats.LinearFit(xs, ys); err == nil {
		tb.Note = fmt.Sprintf("linear fit of mean ratio on K: slope %.3f, R2 %.3f (paper: <= K)", fit.Slope, fit.R2)
	}
	return tb, nil
}

// e2DeterministicLowerBound drives the adaptive adversary of Theorem 2.8
// against the deterministic algorithm on the c_k = 2^k configuration; the
// proof forces ratio >= K/3 for any online algorithm.
func e2DeterministicLowerBound(cfg Config) (*sim.Table, error) {
	ks := []int{2, 3, 4, 5}
	var maxDays int64 = 1 << 17
	if cfg.Quick {
		ks = []int{2, 3}
		maxDays = 1 << 12
	}
	tb := &sim.Table{
		Title:   "E2 deterministic lower bound (Thm 2.8): adversary forces Omega(K)",
		Columns: []string{"K", "demands", "online", "opt", "ratio", "K/3"},
	}
	var xs, ys []float64
	for _, k := range ks {
		lcfg := lease.MeyersonLowerBoundConfig(k)
		alg, err := parking.NewDeterministic(lcfg)
		if err != nil {
			return nil, err
		}
		days, err := parking.RunAdversary(lcfg, alg, maxDays)
		if err != nil {
			return nil, err
		}
		opt, _, err := parking.Optimal(lcfg, days)
		if err != nil {
			return nil, err
		}
		ratio := alg.TotalCost() / opt
		tb.MustAddRow(sim.D(k), sim.D(len(days)), sim.F(alg.TotalCost()), sim.F(opt), sim.F(ratio), sim.F(float64(k)/3))
		xs = append(xs, float64(k))
		ys = append(ys, ratio)
	}
	if fit, err := stats.LinearFit(xs, ys); err == nil {
		tb.Note = fmt.Sprintf("linear fit of ratio on K: slope %.3f, R2 %.3f (paper: Omega(K))", fit.Slope, fit.R2)
	}
	return tb, nil
}

// e3RandomizedParking measures the randomized algorithm's expected ratio on
// the E1 streams; Meyerson's analysis predicts O(log K) growth, so the
// ratio should flatten where the deterministic one keeps climbing.
func e3RandomizedParking(cfg Config) (*sim.Table, error) {
	ks := []int{1, 2, 3, 4, 5, 6, 7, 8}
	trials := 16
	if cfg.Quick {
		ks = []int{1, 2, 4}
		trials = 4
	}
	tb := &sim.Table{
		Title:   "E3 randomized parking permit (Alg 2): expected ratio vs K",
		Columns: []string{"K", "trials", "mean_ratio", "max_ratio", "mean_det_ratio"},
	}
	var xs, ys []float64
	for _, k := range ks {
		lcfg := lease.PowerConfig(k, 4, 0.5)
		horizon := parkingHorizon(lcfg)
		// Each trial records the deterministic comparison ratio in its own
		// slot so the worker pool stays race-free and the aggregate is
		// independent of scheduling order.
		detRatios := stats.NewSeries(trials)
		s, err := sim.RatiosIndexed(trials, cfg.Seed+int64(k)*2222, cfg.Workers, func(i int, rng *rand.Rand) (float64, float64, error) {
			days := parkingStream(rng, horizon)
			if len(days) == 0 {
				return 0, 0, nil
			}
			ralg, err := parking.NewRandomized(lcfg, rng)
			if err != nil {
				return 0, 0, err
			}
			online, err := replayTotal(parking.NewLeaser(ralg), stream.Days(days))
			if err != nil {
				return 0, 0, err
			}
			opt, _, err := parking.Optimal(lcfg, days)
			if err != nil {
				return 0, 0, err
			}
			dalg, err := parking.NewDeterministic(lcfg)
			if err != nil {
				return 0, 0, err
			}
			det, err := replayTotal(parking.NewLeaser(dalg), stream.Days(days))
			if err != nil {
				return 0, 0, err
			}
			detRatios.Set(i, det/opt)
			return online, opt, nil
		})
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(sim.D(k), sim.D(s.N), sim.F(s.Mean), sim.F(s.Max), sim.F(detRatios.Mean()))
		xs = append(xs, float64(k))
		ys = append(ys, s.Mean)
	}
	if fit, err := stats.LogFit(xs, ys); err == nil {
		tb.Note = fmt.Sprintf("log fit of mean ratio on K: slope %.3f, R2 %.3f (paper: O(log K))", fit.Slope, fit.R2)
	}
	return tb, nil
}

// e4RandomizedLowerBound draws instances from the Theorem 2.9 distribution
// and measures both algorithms' expected ratios; any online algorithm is
// Omega(log K) in expectation on this distribution.
func e4RandomizedLowerBound(cfg Config) (*sim.Table, error) {
	ks := []int{2, 3, 4, 5}
	trials := 24
	if cfg.Quick {
		ks = []int{2, 3}
		trials = 6
	}
	tb := &sim.Table{
		Title:   "E4 randomized lower bound (Thm 2.9): expected ratios on the hard distribution",
		Columns: []string{"K", "trials", "det_ratio", "rand_ratio", "log2K"},
	}
	var xs, ys []float64
	for _, k := range ks {
		lcfg := lease.RandomizedLowerBoundConfig(k, 8)
		var det, rnd stats.Accumulator
		for i := 0; i < trials; i++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(k)*555 + int64(i)))
			days, err := parking.LowerBoundInstance(lcfg, rng)
			if err != nil {
				return nil, err
			}
			if len(days) == 0 {
				continue
			}
			opt, _, err := parking.Optimal(lcfg, days)
			if err != nil {
				return nil, err
			}
			dalg, err := parking.NewDeterministic(lcfg)
			if err != nil {
				return nil, err
			}
			dcost, err := replayTotal(parking.NewLeaser(dalg), stream.Days(days))
			if err != nil {
				return nil, err
			}
			ralg, err := parking.NewRandomized(lcfg, rng)
			if err != nil {
				return nil, err
			}
			rcost, err := replayTotal(parking.NewLeaser(ralg), stream.Days(days))
			if err != nil {
				return nil, err
			}
			det.Add(dcost / opt)
			rnd.Add(rcost / opt)
		}
		tb.MustAddRow(sim.D(k), sim.D(det.N()), sim.F(det.Mean()), sim.F(rnd.Mean()), sim.F(log2(float64(k))))
		xs = append(xs, float64(k))
		ys = append(ys, rnd.Mean())
	}
	if fit, err := stats.LogFit(xs, ys); err == nil {
		tb.Note = fmt.Sprintf("log fit of randomized ratio on K: slope %.3f, R2 %.3f (paper: Omega(log K))", fit.Slope, fit.R2)
	}
	return tb, nil
}

// e5IntervalModel checks Lemma 2.6 empirically: solving in the rounded
// interval model and expanding back to the general model costs at most 4x
// the general optimum.
func e5IntervalModel(cfg Config) (*sim.Table, error) {
	trials := 20
	maxDayCount := 10
	if cfg.Quick {
		trials = 5
		maxDayCount = 6
	}
	general := lease.MustConfig(
		lease.Type{Length: 3, Cost: 2},
		lease.Type{Length: 10, Cost: 4.5},
		lease.Type{Length: 36, Cost: 9},
	)
	rounded := general.RoundToIntervalModel()
	typeMap := general.TypeMapToRounded(rounded)

	var ratios []float64
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*13))
		dayset := map[int64]bool{}
		n := 1 + rng.Intn(maxDayCount)
		for len(dayset) < n {
			dayset[int64(rng.Intn(72))] = true
		}
		days := make([]int64, 0, n)
		for d := range dayset {
			days = append(days, d)
		}
		// Map iteration order is random; the docs pipeline needs every
		// table to be a pure function of the seed.
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		intervalOpt, sol, err := parking.Optimal(rounded, days)
		if err != nil {
			return nil, err
		}
		expanded := lease.ExpandToGeneral(general, rounded, typeMap, sol)
		if !general.CoversAll(expanded, days) {
			return nil, fmt.Errorf("E5: expanded solution infeasible")
		}
		expandedCost := general.SolutionCost(expanded)
		genOpt, err := parking.OptimalILP(general, days, false)
		if err != nil {
			return nil, err
		}
		if genOpt <= 0 {
			continue
		}
		_ = intervalOpt
		ratios = append(ratios, expandedCost/genOpt)
	}
	s, err := stats.Summarize(ratios)
	if err != nil {
		return nil, err
	}
	tb := &sim.Table{
		Title:   "E5 interval-model transformation (Lemma 2.6): expanded cost / general OPT",
		Columns: []string{"trials", "mean_ratio", "max_ratio", "bound"},
		Note:    "the transformation is feasible on every trial and never exceeds the factor-4 bound",
	}
	tb.MustAddRow(sim.D(s.N), sim.F(s.Mean), sim.F(s.Max), "4.000")
	return tb, nil
}

// log2 is math.Log2 clamped to 0 for non-positive inputs, the convention
// used when printing bound columns.
func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}
