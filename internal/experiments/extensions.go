package experiments

import (
	"math/rand"

	"leasing/internal/coverext"
	"leasing/internal/facility"
	"leasing/internal/graph"
	"leasing/internal/lease"
	"leasing/internal/parking"
	"leasing/internal/setcover"
	"leasing/internal/sim"
	"leasing/internal/stats"
	"leasing/internal/steiner"
	"leasing/internal/stream"
	"leasing/internal/workload"
)

// extensionExperiments declares the outlook/extension experiments E17-E20
// implemented in this file: problems the thesis names but leaves open.
func extensionExperiments() []Info {
	return []Info{
		{ID: "E17", Paper: "Sec 5.1 (extension)", Chapter: "2 (extension)", Predicted: "within K of the static-route baseline",
			Summary: "Steiner tree leasing via per-edge parking permits", Run: e17SteinerTreeLeasing},
		{ID: "E18", Paper: "Sec 3.5 outlook", Chapter: "3 (outlook)", Predicted: "O(log(dK) log n) via the multicover reduction",
			Summary: "vertex & edge cover leasing reductions", Run: e18CoverReductions},
		{ID: "E19", Paper: "Sec 4.5 outlook", Chapter: "4 (outlook)", Predicted: "capacitated OPT falls as capacity grows; greedies pay a premium",
			Summary: "capacitated facility leasing: price of capacity", Run: e19CapacitatedFacility},
		{ID: "E20", Paper: "Sec 5.6 outlook", Chapter: "5 (outlook)", Predicted: "accurate prior beats worst-case; wrong prior loses the guarantee",
			Summary: "stochastic demand: prior-aware vs worst-case", Run: e20StochasticDemand},
	}
}

// steinerRequest aliases the steiner demand for the sweep tables.
type steinerRequest = steiner.Request

// steinerTrial runs the composed online algorithm against the hindsight
// static-route baseline on one instance.
func steinerTrial(g *graph.Graph, lcfg *lease.Config, reqs []steiner.Request) (float64, float64, error) {
	inst, err := steiner.NewInstance(g, lcfg, reqs)
	if err != nil {
		return 0, 0, err
	}
	alg, err := steiner.NewOnline(inst)
	if err != nil {
		return 0, 0, err
	}
	online, err := replayTotal(steiner.NewLeaser(alg), steiner.Events(reqs))
	if err != nil {
		return 0, 0, err
	}
	if err := alg.VerifyFeasible(); err != nil {
		return 0, 0, err
	}
	baseline, err := steiner.OfflineTreeBaseline(inst)
	if err != nil {
		return 0, 0, err
	}
	return online, baseline, nil
}

// e17SteinerTreeLeasing exercises SteinerTreeLeasing (the problem Meyerson
// introduced next to the parking permit problem): the composed online
// algorithm (marginal-price routing + per-edge parking permits) against
// the hindsight static-tree baseline.
func e17SteinerTreeLeasing(cfg Config) (*sim.Table, error) {
	type point struct {
		nodes int
		k     int
	}
	points := []point{{8, 1}, {8, 2}, {16, 2}, {16, 3}, {24, 3}}
	trials := 6
	horizon := int64(48)
	if cfg.Quick {
		points = []point{{8, 2}}
		trials = 2
		horizon = 16
	}
	tb := &sim.Table{
		Title:   "E17 Steiner tree leasing (extension; Meyerson's companion problem)",
		Columns: []string{"nodes", "K", "trials", "mean_ratio", "max_ratio", "K_bound"},
		Note:    "ratio vs the hindsight static-route baseline with per-edge DP-optimal leases; per-edge primal-dual keeps it within K of that baseline",
	}
	for _, pt := range points {
		lcfg := lease.PowerConfig(pt.k, 4, 0.5)
		s, err := sim.RatiosWorkers(trials, cfg.Seed+int64(pt.nodes*10+pt.k), cfg.Workers, func(rng *rand.Rand) (float64, float64, error) {
			g, err := graph.RandomConnected(rng, pt.nodes, 2*pt.nodes, 1, 4)
			if err != nil {
				return 0, 0, err
			}
			var reqs []steinerRequest
			for day := int64(0); day < horizon; day++ {
				if rng.Float64() < 0.5 {
					s, t := rng.Intn(pt.nodes), rng.Intn(pt.nodes)
					if s == t {
						continue
					}
					reqs = append(reqs, steinerRequest{Time: day, S: s, T: t})
				}
			}
			if len(reqs) == 0 {
				return 0, 0, nil
			}
			return steinerTrial(g, lcfg, reqs)
		})
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(sim.D(pt.nodes), sim.D(pt.k), sim.D(s.N), sim.F(s.Mean), sim.F(s.Max), sim.D(pt.k))
	}
	return tb, nil
}

// e18CoverReductions exercises the Chapter 3 outlook reductions: vertex
// cover leasing (δ = 2) and edge cover leasing (δ = max degree) through
// the SetMulticoverLeasing machinery.
func e18CoverReductions(cfg Config) (*sim.Table, error) {
	sizes := []int{8, 12, 16}
	trials := 5
	horizon := int64(24)
	if cfg.Quick {
		sizes = []int{8}
		trials = 2
		horizon = 12
	}
	lcfg := lease.PowerConfig(2, 4, 0.5)
	tb := &sim.Table{
		Title:   "E18 covering reductions (Ch 3 outlook): vertex & edge cover leasing",
		Columns: []string{"problem", "vertices", "delta", "trials", "mean_ratio", "bound"},
		Note:    "both reduce to SetMulticoverLeasing; vertex cover has δ = 2 so its bound is O(log(2K) log n)",
	}
	for _, n := range sizes {
		for _, kind := range []string{"vertex-cover", "edge-cover"} {
			kind := kind
			// Per-trial slots keep the observed family degree race-free
			// under the worker pool; the row reports the last trial's
			// delta, as the sequential engine did.
			deltas := make([]int, trials)
			s, err := sim.RatiosIndexed(trials, cfg.Seed+int64(n)*13+int64(len(kind)), cfg.Workers, func(i int, rng *rand.Rand) (float64, float64, error) {
				g, err := graph.RandomConnected(rng, n, 2*n, 1, 3)
				if err != nil {
					return 0, 0, err
				}
				var inst *setcover.Instance
				if kind == "vertex-cover" {
					inst, err = coverext.VertexCoverInstance(rng, g, lcfg, horizon, 0.5)
				} else {
					inst, err = coverext.EdgeCoverInstance(rng, g, lcfg, horizon, 0.5)
				}
				if err != nil {
					return 0, 0, err
				}
				if len(inst.Arrivals) == 0 {
					return 0, 0, nil
				}
				deltas[i] = inst.Fam.Delta()
				alg, err := setcover.NewOnline(inst, rng, setcover.Options{})
				if err != nil {
					return 0, 0, err
				}
				online, err := replayTotal(setcover.NewLeaser(alg), stream.Elements(inst.Arrivals))
				if err != nil {
					return 0, 0, err
				}
				if err := setcover.VerifyFeasible(inst, alg.Bought()); err != nil {
					return 0, 0, err
				}
				opt, err := setcover.Optimal(inst, 20000)
				if err != nil {
					return 0, 0, err
				}
				baseline := opt.Cost
				if !opt.Exact {
					if baseline, err = setcover.LPLowerBound(inst); err != nil {
						return 0, 0, err
					}
				}
				return online, baseline, nil
			})
			if err != nil {
				return nil, err
			}
			var deltaSeen int
			for _, d := range deltas {
				if d != 0 {
					deltaSeen = d
				}
			}
			universe := 2 * n // edges for vertex cover (m≈2n), vertices otherwise
			if kind == "edge-cover" {
				universe = n
			}
			bound := log2(float64(deltaSeen*lcfg.K())) * log2(float64(universe))
			tb.MustAddRow(kind, sim.D(n), sim.D(deltaSeen), sim.D(s.N), sim.F(s.Mean), sim.F(bound))
		}
	}
	return tb, nil
}

// e19CapacitatedFacility measures the price of per-step facility
// capacities (Ch 4 outlook): exact capacitated OPT and the online greedy
// across a capacity sweep.
func e19CapacitatedFacility(cfg Config) (*sim.Table, error) {
	caps := []int{1, 2, 4}
	trials := 4
	base := 2
	if cfg.Quick {
		caps = []int{2}
		trials = 2
	}
	lcfg := facilityLeaseConfig()
	tb := &sim.Table{
		Title:   "E19 capacitated facility leasing (Ch 4 outlook)",
		Columns: []string{"capacity", "trials", "opt_cost", "greedy_rate_ratio", "greedy_short_ratio"},
		Note:    "capacitated OPT falls as capacity grows; the best-rate greedy commits to long leases, the shortest-type greedy rents daily",
	}
	for _, capU := range caps {
		var optAcc, rateAcc, shortAcc stats.Accumulator
		for i := 0; i < trials; i++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(capU*100+i)))
			inst, err := facility.RandomInstance(rng, lcfg, facility.GenParams{
				Sites: 3, Steps: 5, Pattern: workload.PatternConstant,
				Base: base, MaxPerStep: base, WorldSize: 30, CostSpread: 0.3,
			})
			if err != nil {
				return nil, err
			}
			// Capacity rows make these the hardest facility ILPs; a small
			// node budget with the proven lower bound as fallback keeps the
			// sweep fast (ratios become conservative over-estimates).
			res, err := facility.OptimalCapacitated(inst, capU, 800)
			if err != nil {
				return nil, err
			}
			baseline := res.Cost
			if !res.Exact {
				baseline = res.Lower
			}
			if baseline <= 0 {
				continue
			}
			optAcc.Add(baseline)
			for _, pol := range []facility.TypePolicy{facility.BestRateType, facility.ShortestType} {
				gCost, leases, assigns, err := facility.CapacitatedGreedy(inst, capU, pol)
				if err != nil {
					return nil, err
				}
				if _, err := facility.VerifyCapacitated(inst, leases, assigns, capU); err != nil {
					return nil, err
				}
				if pol == facility.BestRateType {
					rateAcc.Add(gCost / baseline)
				} else {
					shortAcc.Add(gCost / baseline)
				}
			}
		}
		tb.MustAddRow(sim.D(capU), sim.D(optAcc.N()), sim.F(optAcc.Mean()), sim.F(rateAcc.Mean()), sim.F(shortAcc.Mean()))
	}
	return tb, nil
}

// e20StochasticDemand studies the Chapter 5 outlook question — what if
// demands follow a known distribution? A distribution-aware policy beats
// the worst-case algorithm when its prior is right and loses the guarantee
// when the prior is wrong.
func e20StochasticDemand(cfg Config) (*sim.Table, error) {
	ps := []float64{0.05, 0.2, 0.5, 0.9}
	trials := 10
	horizon := int64(512)
	if cfg.Quick {
		ps = []float64{0.2}
		trials = 3
		horizon = 128
	}
	lcfg := lease.PowerConfig(3, 4, 0.5)
	tb := &sim.Table{
		Title:   "E20 stochastic demand (Ch 5 outlook): prior-aware vs worst-case",
		Columns: []string{"stream", "true_p", "believed_p", "trials", "pred_ratio", "det_ratio"},
		Note:    "an accurate prior beats the worst-case algorithm; a wrong prior on bursty streams loses the guarantee the primal-dual keeps",
	}
	row := func(streamName string, trueP, believedP float64, gen func(*rand.Rand) []int64) error {
		var pred, det stats.Accumulator
		for i := 0; i < trials; i++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*31 + int64(trueP*1000) + int64(believedP*7)))
			days := gen(rng)
			if len(days) == 0 {
				continue
			}
			opt, _, err := parking.Optimal(lcfg, days)
			if err != nil {
				return err
			}
			p, err := parking.NewPredictive(lcfg, believedP)
			if err != nil {
				return err
			}
			pCost, err := replayTotal(parking.NewLeaser(p), stream.Days(days))
			if err != nil {
				return err
			}
			d, err := parking.NewDeterministic(lcfg)
			if err != nil {
				return err
			}
			dCost, err := replayTotal(parking.NewLeaser(d), stream.Days(days))
			if err != nil {
				return err
			}
			pred.Add(pCost / opt)
			det.Add(dCost / opt)
		}
		tb.MustAddRow(streamName, sim.F(trueP), sim.F(believedP), sim.D(pred.N()), sim.F(pred.Mean()), sim.F(det.Mean()))
		return nil
	}
	for _, p := range ps {
		p := p
		if err := row("bernoulli", p, p, func(rng *rand.Rand) []int64 {
			return workload.DemandDays(rng, horizon, p)
		}); err != nil {
			return nil, err
		}
	}
	// Misprediction: bursty reality, overconfident sparse prior and vice
	// versa.
	burst := func(rng *rand.Rand) []int64 { return workload.BurstyDays(rng, horizon, 0.95) }
	if err := row("bursty", 0.5, 0.05, burst); err != nil {
		return nil, err
	}
	if err := row("bursty", 0.5, 0.9, burst); err != nil {
		return nil, err
	}
	return tb, nil
}
