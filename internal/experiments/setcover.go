package experiments

import (
	"math/rand"

	"leasing/internal/lease"
	"leasing/internal/setcover"
	"leasing/internal/sim"
	"leasing/internal/stats"
	"leasing/internal/stream"
	"leasing/internal/workload"
)

// setcoverExperiments declares the Chapter 3 experiments implemented in
// this file (plus the Chapter 3 rounding ablation E16).
func setcoverExperiments() []Info {
	return []Info{
		{ID: "E6", Paper: "Thm 3.3 / Figs 3.1-3.3", Chapter: "3", Predicted: "O(log(dK) log n)",
			Summary: "set multicover leasing is O(log(dK) log n)-competitive", Run: e6SetMulticoverLeasing},
		{ID: "E7", Paper: "Cor 3.4", Chapter: "3", Predicted: "O(log d log n)",
			Summary: "online set multicover reduction (K=1, l1=inf)", Run: e7OnlineSetMulticover},
		{ID: "E8", Paper: "Cor 3.5", Chapter: "3", Predicted: "O(log d log(dn)), improving O(log^2(mn))",
			Summary: "online set cover with repetitions", Run: e8Repetitions},
		{ID: "E16", Paper: "Alg 3 rounding", Chapter: "3", Predicted: "ablation; paper default 2*ceil(log2(n+1)) draws",
			Summary: "ablation: rounding-threshold draw count", Run: e16RoundingAblation},
	}
}

// randomElementArrivals draws a uniform element stream with multiplicities
// in [1, pMax].
func randomElementArrivals(rng *rand.Rand, n int, horizon int64, p float64, pMax int) []workload.ElementArrival {
	return workload.ElementStream(rng, horizon, p,
		func() int { return rng.Intn(n) },
		func() int { return 1 + rng.Intn(pMax) },
	)
}

// smclTrial runs one online-vs-OPT trial on a random SetMulticoverLeasing
// instance, falling back to the LP lower bound when branch and bound does
// not prove optimality in time.
func smclTrial(rng *rand.Rand, lcfg *lease.Config, n, m, delta int, horizon int64, pMax int) (float64, float64, error) {
	inst, err := setcover.RandomInstance(rng, lcfg, n, m, delta, horizon, 0.5, pMax, 0.5)
	if err != nil {
		return 0, 0, err
	}
	if len(inst.Arrivals) == 0 {
		return 0, 0, nil
	}
	alg, err := setcover.NewOnline(inst, rng, setcover.Options{})
	if err != nil {
		return 0, 0, err
	}
	online, err := replayTotal(setcover.NewLeaser(alg), stream.Elements(inst.Arrivals))
	if err != nil {
		return 0, 0, err
	}
	if err := setcover.VerifyFeasible(inst, alg.Bought()); err != nil {
		return 0, 0, err
	}
	opt, err := setcover.Optimal(inst, 30000)
	if err != nil {
		return 0, 0, err
	}
	baseline := opt.Cost
	if !opt.Exact {
		lb, err := setcover.LPLowerBound(inst)
		if err != nil {
			return 0, 0, err
		}
		baseline = lb
	}
	return online, baseline, nil
}

// e6SetMulticoverLeasing sweeps universe size and lease-type count and
// reports the online/OPT ratio against the O(log(dK) log n) bound of
// Theorem 3.3.
func e6SetMulticoverLeasing(cfg Config) (*sim.Table, error) {
	type point struct {
		n, k int
	}
	points := []point{{8, 1}, {8, 2}, {16, 1}, {16, 2}, {16, 3}, {32, 2}, {32, 3}}
	trials := 5
	horizon := int64(24)
	if cfg.Quick {
		points = []point{{8, 2}}
		trials = 2
		horizon = 12
	}
	const delta = 3
	tb := &sim.Table{
		Title:   "E6 set multicover leasing (Thm 3.3): ratio vs n and K (delta=3, p<=2)",
		Columns: []string{"n", "m", "K", "trials", "mean_ratio", "max_ratio", "log2(dK)*log2(n)"},
		Note:    "ratio compared to exact OPT (LP bound when branch-and-bound is truncated); paper bound O(log(dK) log n)",
	}
	for _, pt := range points {
		lcfg := lease.PowerConfig(pt.k, 4, 0.5)
		s, err := sim.RatiosWorkers(trials, cfg.Seed+int64(pt.n*100+pt.k), cfg.Workers, func(rng *rand.Rand) (float64, float64, error) {
			return smclTrial(rng, lcfg, pt.n, pt.n, delta, horizon, 2)
		})
		if err != nil {
			return nil, err
		}
		bound := log2(float64(delta*pt.k)) * log2(float64(pt.n))
		tb.MustAddRow(sim.D(pt.n), sim.D(pt.n), sim.D(pt.k), sim.D(s.N), sim.F(s.Mean), sim.F(s.Max), sim.F(bound))
	}
	return tb, nil
}

// e7OnlineSetMulticover exercises the Corollary 3.4 reduction: K=1 with an
// effectively infinite lease recovers classical OnlineSetMulticover with
// the optimal O(log d log n) ratio.
func e7OnlineSetMulticover(cfg Config) (*sim.Table, error) {
	ns := []int{8, 16, 32}
	trials := 6
	if cfg.Quick {
		ns = []int{8}
		trials = 2
	}
	const delta = 3
	tb := &sim.Table{
		Title:   "E7 online set multicover (Cor 3.4): K=1, l1=infinity reduction",
		Columns: []string{"n", "delta", "trials", "mean_ratio", "max_ratio", "log2(d)*log2(n)"},
	}
	for _, n := range ns {
		s, err := sim.RatiosWorkers(trials, cfg.Seed+int64(n)*31, cfg.Workers, func(rng *rand.Rand) (float64, float64, error) {
			fam, err := setcover.RandomFamily(rng, n, n, delta)
			if err != nil {
				return 0, 0, err
			}
			setCosts := make([]float64, fam.M())
			for i := range setCosts {
				setCosts[i] = 1 + rng.Float64()*3
			}
			arrivals := randomElementArrivals(rng, n, 24, 0.5, 2)
			inst, err := setcover.NonLeasingInstance(fam, setCosts, arrivals, setcover.PerArrival)
			if err != nil {
				return 0, 0, err
			}
			if len(inst.Arrivals) == 0 {
				return 0, 0, nil
			}
			alg, err := setcover.NewOnline(inst, rng, setcover.Options{})
			if err != nil {
				return 0, 0, err
			}
			online, err := replayTotal(setcover.NewLeaser(alg), stream.Elements(inst.Arrivals))
			if err != nil {
				return 0, 0, err
			}
			if err := setcover.VerifyFeasible(inst, alg.Bought()); err != nil {
				return 0, 0, err
			}
			opt, err := setcover.Optimal(inst, 30000)
			if err != nil {
				return 0, 0, err
			}
			baseline := opt.Cost
			if !opt.Exact {
				if baseline, err = setcover.LPLowerBound(inst); err != nil {
					return 0, 0, err
				}
			}
			return online, baseline, nil
		})
		if err != nil {
			return nil, err
		}
		bound := log2(float64(delta)) * log2(float64(n))
		tb.MustAddRow(sim.D(n), sim.D(delta), sim.D(s.N), sim.F(s.Mean), sim.F(s.Max), sim.F(bound))
	}
	return tb, nil
}

// e8Repetitions exercises the Corollary 3.5 variant where every arrival of
// an element must be served by a fresh set; the thesis improves the bound
// from O(log^2(mn)) to O(log d log(dn)).
func e8Repetitions(cfg Config) (*sim.Table, error) {
	ns := []int{6, 10, 14}
	trials := 5
	if cfg.Quick {
		ns = []int{6}
		trials = 2
	}
	const delta = 4
	tb := &sim.Table{
		Title:   "E8 set cover with repetitions (Cor 3.5)",
		Columns: []string{"n", "m", "delta", "trials", "mean_ratio", "new_bound", "old_bound"},
		Note:    "new bound log2(d)*log2(d*n) vs Alon et al.'s log2^2(m*n)",
	}
	for _, n := range ns {
		m := n + 2
		lcfg := lease.PowerConfig(2, 4, 0.5)
		s, err := sim.RatiosWorkers(trials, cfg.Seed+int64(n)*77, cfg.Workers, func(rng *rand.Rand) (float64, float64, error) {
			inst, err := setcover.RepetitionsInstance(rng, lcfg, n, m, delta, 20, 0.45)
			if err != nil {
				return 0, 0, err
			}
			if len(inst.Arrivals) == 0 {
				return 0, 0, nil
			}
			alg, err := setcover.NewOnline(inst, rng, setcover.Options{})
			if err != nil {
				return 0, 0, err
			}
			online, err := replayTotal(setcover.NewLeaser(alg), stream.Elements(inst.Arrivals))
			if err != nil {
				return 0, 0, err
			}
			if err := setcover.VerifyFeasible(inst, alg.Bought()); err != nil {
				return 0, 0, err
			}
			// The per-element distinctness rows make these ILPs the hardest
			// in the harness; a modest node budget with LP fallback keeps
			// the sweep fast while the ratio stays a valid upper estimate.
			opt, err := setcover.Optimal(inst, 3000)
			if err != nil {
				return 0, 0, err
			}
			baseline := opt.Cost
			if !opt.Exact {
				if baseline, err = setcover.LPLowerBound(inst); err != nil {
					return 0, 0, err
				}
			}
			return online, baseline, nil
		})
		if err != nil {
			return nil, err
		}
		newBound := log2(delta) * log2(float64(delta*n))
		oldBound := log2(float64(m*n)) * log2(float64(m*n))
		tb.MustAddRow(sim.D(n), sim.D(m), sim.D(delta), sim.D(s.N), sim.F(s.Mean), sim.F(newBound), sim.F(oldBound))
	}
	return tb, nil
}

// e16RoundingAblation varies the number of uniform draws behind each
// rounding threshold (the paper uses 2*ceil(log2(n+1))): too few draws
// raise thresholds, forcing expensive fallbacks; too many draws buy
// aggressively.
func e16RoundingAblation(cfg Config) (*sim.Table, error) {
	draws := []int{1, 2, 4, 8, 16}
	trials := 8
	if cfg.Quick {
		draws = []int{1, 8}
		trials = 3
	}
	lcfg := lease.PowerConfig(2, 4, 0.5)
	tb := &sim.Table{
		Title:   "E16 ablation: rounding-threshold draw count (Alg 3)",
		Columns: []string{"draws", "trials", "mean_ratio", "mean_fallbacks"},
		Note:    "paper default is 2*ceil(log2(n+1)) = 10 draws for n=16",
	}
	for _, dr := range draws {
		// Per-trial slots keep the fallback counts race-free under the
		// worker pool and their mean independent of scheduling order.
		fallbacks := stats.NewSeries(trials)
		s, err := sim.RatiosIndexed(trials, cfg.Seed+int64(dr)*11, cfg.Workers, func(i int, rng *rand.Rand) (float64, float64, error) {
			inst, err := setcover.RandomInstance(rng, lcfg, 16, 16, 3, 24, 0.5, 2, 0.5)
			if err != nil {
				return 0, 0, err
			}
			if len(inst.Arrivals) == 0 {
				return 0, 0, nil
			}
			alg, err := setcover.NewOnline(inst, rng, setcover.Options{RoundingDraws: dr})
			if err != nil {
				return 0, 0, err
			}
			online, err := replayTotal(setcover.NewLeaser(alg), stream.Elements(inst.Arrivals))
			if err != nil {
				return 0, 0, err
			}
			if err := setcover.VerifyFeasible(inst, alg.Bought()); err != nil {
				return 0, 0, err
			}
			opt, err := setcover.Optimal(inst, 30000)
			if err != nil {
				return 0, 0, err
			}
			baseline := opt.Cost
			if !opt.Exact {
				if baseline, err = setcover.LPLowerBound(inst); err != nil {
					return 0, 0, err
				}
			}
			fallbacks.Set(i, float64(alg.Fallbacks()))
			return online, baseline, nil
		})
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(sim.D(dr), sim.D(s.N), sim.F(s.Mean), sim.F(fallbacks.Mean()))
	}
	return tb, nil
}
