package experiments

import (
	"fmt"
	"math/rand"

	"leasing/internal/deadline"
	"leasing/internal/lease"
	"leasing/internal/setcover"
	"leasing/internal/sim"
	"leasing/internal/stats"
	"leasing/internal/stream"
	"leasing/internal/workload"
)

// deadlineExperiments declares the Chapter 5 experiments implemented in
// this file.
func deadlineExperiments() []Info {
	return []Info{
		{ID: "E10", Paper: "Thm 5.3 / Fig 5.1-5.2", Chapter: "5", Predicted: "O(K) uniform; O(K + dmax/lmin) non-uniform",
			Summary: "leasing with deadlines: O(K) uniform, O(K + dmax/lmin) non-uniform", Run: e10Deadlines},
		{ID: "E11", Paper: "Prop 5.4 / Fig 5.3", Chapter: "5", Predicted: "ratio Theta(dmax/lmin) while OPT stays 1+eps",
			Summary: "tight example: ratio Theta(dmax/lmin) vs OPT = 1+eps", Run: e11TightExample},
		{ID: "E12", Paper: "Thm 5.7 / Fig 5.4", Chapter: "5", Predicted: "O(log(m(K + dmax/lmin)) log lmax)",
			Summary: "set cover leasing with deadlines (SCLD)", Run: e12SCLD},
		{ID: "E13", Paper: "Cor 5.8", Chapter: "5", Predicted: "ratio flat in the horizon (depends on lmax, not time)",
			Summary: "time-independent set cover leasing: ratio flat in the horizon", Run: e13TimeIndependence},
	}
}

func oldLeaseConfig(k int) *lease.Config {
	return lease.PowerConfig(k, 4, 0.55)
}

// e10Deadlines measures OLD ratios in both regimes of Theorem 5.3: uniform
// slacks (O(K)) sweeping K, and non-uniform slacks (O(K + dmax/lmin))
// sweeping dmax.
func e10Deadlines(cfg Config) (*sim.Table, error) {
	ks := []int{1, 2, 3, 4}
	dmaxes := []int64{0, 4, 8, 16, 32}
	trials := 8
	horizon := int64(96)
	if cfg.Quick {
		ks = []int{2}
		dmaxes = []int64{0, 8}
		trials = 3
		horizon = 48
	}
	tb := &sim.Table{
		Title:   "E10 online leasing with deadlines (Thm 5.3)",
		Columns: []string{"mode", "K", "dmax", "trials", "mean_ratio", "max_ratio", "bound"},
		Note:    "uniform bound 2K; non-uniform bound K + dmax/lmin",
	}
	// Uniform sweep over K with fixed slack 4.
	for _, k := range ks {
		lcfg := oldLeaseConfig(k)
		s, err := sim.RatiosWorkers(trials, cfg.Seed+int64(k)*17, cfg.Workers, func(rng *rand.Rand) (float64, float64, error) {
			clients := workload.UniformDeadlineStream(rng, horizon, 0.35, 4)
			return oldTrial(lcfg, clients)
		})
		if err != nil {
			return nil, err
		}
		tb.MustAddRow("uniform", sim.D(k), "4", sim.D(s.N), sim.F(s.Mean), sim.F(s.Max), sim.F(2*float64(k)))
	}
	// Non-uniform sweep over dmax with fixed K=2.
	lcfg := oldLeaseConfig(2)
	for _, dmax := range dmaxes {
		s, err := sim.RatiosWorkers(trials, cfg.Seed+dmax*29+1, cfg.Workers, func(rng *rand.Rand) (float64, float64, error) {
			clients := workload.DeadlineStream(rng, horizon, 0.35, dmax)
			return oldTrial(lcfg, clients)
		})
		if err != nil {
			return nil, err
		}
		bound := float64(lcfg.K()) + float64(dmax)/float64(lcfg.LMin())
		tb.MustAddRow("non-uniform", sim.D(lcfg.K()), sim.D64(dmax), sim.D(s.N), sim.F(s.Mean), sim.F(s.Max), sim.F(bound))
	}
	return tb, nil
}

func oldTrial(lcfg *lease.Config, clients []workload.DeadlineClient) (float64, float64, error) {
	if len(clients) == 0 {
		return 0, 0, nil
	}
	in, err := deadline.NewInstance(lcfg, clients)
	if err != nil {
		return 0, 0, err
	}
	alg, err := deadline.NewOnline(lcfg)
	if err != nil {
		return 0, 0, err
	}
	online, err := replayTotal(deadline.NewLeaser(alg), stream.Windows(in.Clients))
	if err != nil {
		return 0, 0, err
	}
	if err := deadline.VerifyFeasible(in, alg.Leases()); err != nil {
		return 0, 0, err
	}
	opt, err := deadline.Optimal(in, 0)
	if err != nil {
		return 0, 0, err
	}
	return online, opt, nil
}

// e11TightExample replays the literal Proposition 5.4 instance for growing
// dmax: the online cost grows like dmax/lmin while OPT stays 1+eps.
func e11TightExample(cfg Config) (*sim.Table, error) {
	dmaxes := []int64{8, 16, 32, 64, 128}
	if cfg.Quick {
		dmaxes = []int64{8, 16}
	}
	const lmin = 2
	const eps = 0.01
	tb := &sim.Table{
		Title:   "E11 tight example (Prop 5.4 / Fig 5.3)",
		Columns: []string{"dmax", "dmax/lmin", "online", "opt", "ratio"},
	}
	var xs, ys []float64
	for _, dmax := range dmaxes {
		in, err := deadline.TightInstance(lmin, dmax, eps)
		if err != nil {
			return nil, err
		}
		alg, err := deadline.NewOnline(in.Cfg)
		if err != nil {
			return nil, err
		}
		online, err := replayTotal(deadline.NewLeaser(alg), stream.Windows(in.Clients))
		if err != nil {
			return nil, err
		}
		if err := deadline.VerifyFeasible(in, alg.Leases()); err != nil {
			return nil, err
		}
		opt, err := deadline.Optimal(in, 0)
		if err != nil {
			return nil, err
		}
		ratio := online / opt
		tb.MustAddRow(sim.D64(dmax), sim.F(float64(dmax)/float64(in.Cfg.LMin())), sim.F(online), sim.F(opt), sim.F(ratio))
		xs = append(xs, float64(dmax)/float64(in.Cfg.LMin()))
		ys = append(ys, ratio)
	}
	if fit, err := stats.LinearFit(xs, ys); err == nil {
		tb.Note = fmt.Sprintf("linear fit of ratio on dmax/lmin: slope %.3f, R2 %.3f (paper: Theta(dmax/lmin))", fit.Slope, fit.R2)
	}
	return tb, nil
}

func scldInstance(rng *rand.Rand, lcfg *lease.Config, n int, horizon, dmax int64) (*deadline.SCLDInstance, error) {
	fam, err := setcover.RandomFamily(rng, n, n, 3)
	if err != nil {
		return nil, err
	}
	costs := setcover.RandomCosts(rng, fam.M(), lcfg, 0.5)
	var arrivals []deadline.SCLDArrival
	for day := int64(0); day < horizon; day++ {
		if rng.Float64() < 0.4 {
			d := int64(0)
			if dmax > 0 {
				d = rng.Int63n(dmax + 1)
			}
			arrivals = append(arrivals, deadline.SCLDArrival{T: day, Elem: rng.Intn(n), D: d})
		}
	}
	return deadline.NewSCLDInstance(fam, lcfg, costs, arrivals)
}

// e12SCLD measures the SCLD randomized algorithm against exact OPT while
// sweeping the slack budget (Theorem 5.7).
func e12SCLD(cfg Config) (*sim.Table, error) {
	dmaxes := []int64{0, 4, 8}
	trials := 5
	horizon := int64(32)
	n := 10
	if cfg.Quick {
		dmaxes = []int64{0, 4}
		trials = 2
		horizon = 16
	}
	lcfg := oldLeaseConfig(2)
	tb := &sim.Table{
		Title:   "E12 set cover leasing with deadlines (Thm 5.7)",
		Columns: []string{"dmax", "trials", "mean_ratio", "max_ratio", "bound"},
		Note:    "bound shape log2(m*(K + dmax/lmin)) * log2(lmax), constant factors omitted",
	}
	for _, dmax := range dmaxes {
		s, err := sim.RatiosWorkers(trials, cfg.Seed+dmax*41+3, cfg.Workers, func(rng *rand.Rand) (float64, float64, error) {
			inst, err := scldInstance(rng, lcfg, n, horizon, dmax)
			if err != nil {
				return 0, 0, err
			}
			if len(inst.Arrivals) == 0 {
				return 0, 0, nil
			}
			alg, err := deadline.NewSCLDOnline(inst, rng)
			if err != nil {
				return 0, 0, err
			}
			online, err := replayTotal(deadline.NewSCLDStream(alg), deadline.SCLDEvents(inst.Arrivals))
			if err != nil {
				return 0, 0, err
			}
			if err := deadline.VerifySCLDFeasible(inst, alg.Bought()); err != nil {
				return 0, 0, err
			}
			opt, proven, err := deadline.SCLDOptimal(inst, 30000)
			if err != nil {
				return 0, 0, err
			}
			if !proven {
				if opt, err = deadline.SCLDLPLowerBound(inst); err != nil {
					return 0, 0, err
				}
			}
			return online, opt, nil
		})
		if err != nil {
			return nil, err
		}
		bound := log2(float64(n)*(float64(lcfg.K())+float64(dmax)/float64(lcfg.LMin()))) * log2(float64(lcfg.LMax()))
		tb.MustAddRow(sim.D64(dmax), sim.D(s.N), sim.F(s.Mean), sim.F(s.Max), sim.F(bound))
	}
	return tb, nil
}

// e13TimeIndependence grows the horizon with everything else fixed: the
// Corollary 5.8 algorithm's ratio must stay flat (its bound depends on
// l_max, not on time), in contrast to the Chapter 3 analysis whose bound
// grows with n.
func e13TimeIndependence(cfg Config) (*sim.Table, error) {
	horizons := []int64{32, 64, 128, 256}
	trials := 4
	if cfg.Quick {
		horizons = []int64{32, 64}
		trials = 2
	}
	lcfg := oldLeaseConfig(2)
	const n = 10
	tb := &sim.Table{
		Title:   "E13 time-independent set cover leasing (Cor 5.8): ratio vs horizon",
		Columns: []string{"horizon", "trials", "mean_ratio", "max_ratio"},
	}
	var xs, ys []float64
	for _, h := range horizons {
		s, err := sim.RatiosWorkers(trials, cfg.Seed+h*3+9, cfg.Workers, func(rng *rand.Rand) (float64, float64, error) {
			inst, err := scldInstance(rng, lcfg, n, h, 0)
			if err != nil {
				return 0, 0, err
			}
			if len(inst.Arrivals) == 0 {
				return 0, 0, nil
			}
			alg, err := deadline.NewSCLDOnline(inst, rng)
			if err != nil {
				return 0, 0, err
			}
			online, err := replayTotal(deadline.NewSCLDStream(alg), deadline.SCLDEvents(inst.Arrivals))
			if err != nil {
				return 0, 0, err
			}
			if err := deadline.VerifySCLDFeasible(inst, alg.Bought()); err != nil {
				return 0, 0, err
			}
			lb, err := deadline.SCLDLPLowerBound(inst)
			if err != nil {
				return 0, 0, err
			}
			return online, lb, nil
		})
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(sim.D64(h), sim.D(s.N), sim.F(s.Mean), sim.F(s.Max))
		xs = append(xs, float64(h))
		ys = append(ys, s.Mean)
	}
	if fit, err := stats.LogFit(xs, ys); err == nil {
		tb.Note = fmt.Sprintf("log fit of ratio on horizon: slope %.3f (paper: flat, i.e. ~0; ratio vs LP lower bound)", fit.Slope)
	}
	return tb, nil
}
