// Package experiments regenerates every evaluation artifact of the thesis:
// one experiment per theorem, lower-bound construction, tight example, or
// illustrated model (the per-experiment index lives in DESIGN.md, the
// paper-vs-measured record in EXPERIMENTS.md). Each experiment returns a
// printable table whose rows are the paper's series.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"leasing/internal/sim"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks sweeps and trial counts for tests and smoke runs.
	Quick bool
	// Seed is the base seed; every table is deterministic given a seed.
	Seed int64
}

// Runner produces one experiment's table.
type Runner func(Config) (*sim.Table, error)

// Info describes an experiment for listings.
type Info struct {
	ID      string
	Paper   string // the thesis artifact it regenerates
	Summary string
	Run     Runner
}

var registry = []Info{
	{ID: "E1", Paper: "Thm 2.7 / Fig 1.1", Summary: "deterministic parking permit is O(K)-competitive", Run: e1DeterministicParking},
	{ID: "E2", Paper: "Thm 2.8", Summary: "adaptive adversary forces Omega(K)", Run: e2DeterministicLowerBound},
	{ID: "E3", Paper: "Alg 2 (Sec 2.2.3)", Summary: "randomized parking permit is O(log K)-competitive", Run: e3RandomizedParking},
	{ID: "E4", Paper: "Thm 2.9", Summary: "randomized lower-bound distribution forces Omega(log K)", Run: e4RandomizedLowerBound},
	{ID: "E5", Paper: "Lemma 2.6 / Fig 2.3", Summary: "interval-model transformation loses at most a factor 4", Run: e5IntervalModel},
	{ID: "E6", Paper: "Thm 3.3 / Figs 3.1-3.3", Summary: "set multicover leasing is O(log(dK) log n)-competitive", Run: e6SetMulticoverLeasing},
	{ID: "E7", Paper: "Cor 3.4", Summary: "online set multicover reduction (K=1, l1=inf)", Run: e7OnlineSetMulticover},
	{ID: "E8", Paper: "Cor 3.5", Summary: "online set cover with repetitions", Run: e8Repetitions},
	{ID: "E9", Paper: "Thm 4.5 / Cor 4.6-4.7", Summary: "facility leasing ratio tracks (3+K)*H_lmax per arrival pattern", Run: e9FacilityLeasing},
	{ID: "E10", Paper: "Thm 5.3 / Fig 5.1-5.2", Summary: "leasing with deadlines: O(K) uniform, O(K + dmax/lmin) non-uniform", Run: e10Deadlines},
	{ID: "E11", Paper: "Prop 5.4 / Fig 5.3", Summary: "tight example: ratio Theta(dmax/lmin) vs OPT = 1+eps", Run: e11TightExample},
	{ID: "E12", Paper: "Thm 5.7 / Fig 5.4", Summary: "set cover leasing with deadlines (SCLD)", Run: e12SCLD},
	{ID: "E13", Paper: "Cor 5.8", Summary: "time-independent set cover leasing: ratio flat in the horizon", Run: e13TimeIndependence},
	{ID: "E14", Paper: "Fig 1.2 / Sec 1.3", Summary: "cloud subcontractor narrative: primal-dual vs naive strategies", Run: e14CloudSubcontractor},
	{ID: "E15", Paper: "Sec 4.3 phase 2", Summary: "ablation: MIS ordering in the conflict graphs", Run: e15MISAblation},
	{ID: "E16", Paper: "Alg 3 rounding", Summary: "ablation: rounding-threshold draw count", Run: e16RoundingAblation},
	{ID: "E17", Paper: "Sec 5.1 (extension)", Summary: "Steiner tree leasing via per-edge parking permits", Run: e17SteinerTreeLeasing},
	{ID: "E18", Paper: "Sec 3.5 outlook", Summary: "vertex & edge cover leasing reductions", Run: e18CoverReductions},
	{ID: "E19", Paper: "Sec 4.5 outlook", Summary: "capacitated facility leasing: price of capacity", Run: e19CapacitatedFacility},
	{ID: "E20", Paper: "Sec 5.6 outlook", Summary: "stochastic demand: prior-aware vs worst-case", Run: e20StochasticDemand},
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// List returns experiment metadata in order.
func List() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*sim.Table, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
}

// RunAll executes every experiment in order and prints tables to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range registry {
		tb, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		if err := tb.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}
