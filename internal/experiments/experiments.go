// Package experiments regenerates every evaluation artifact of the thesis:
// one experiment per theorem, lower-bound construction, tight example, or
// illustrated model (the per-experiment index lives in DESIGN.md, the
// paper-vs-measured record in EXPERIMENTS.md; both are written by
// cmd/leasereport from this registry). Each experiment returns a printable
// table whose rows are the paper's series.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"leasing/internal/sim"
	"leasing/internal/stream"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks sweeps and trial counts for tests and smoke runs.
	Quick bool
	// Seed is the base seed; every table is deterministic given a seed.
	Seed int64
	// Workers sets the trial-engine worker count; <= 0 selects GOMAXPROCS.
	// Tables are identical for every worker count.
	Workers int
}

// Runner produces one experiment's table.
type Runner func(Config) (*sim.Table, error)

// replayTotal runs an online algorithm through the unified stream driver
// and returns its final total cost. Every online run in the registry goes
// through this one code path, so any algorithm the registry measures is,
// by construction, a conforming stream.Leaser.
func replayTotal(l stream.Leaser, evs []stream.Event) (float64, error) {
	run, err := stream.Replay(l, evs)
	if err != nil {
		return 0, err
	}
	return run.Total(), nil
}

// Info describes an experiment for listings and for the generated docs.
type Info struct {
	ID      string
	Paper   string // the thesis artifact it regenerates
	Chapter string // thesis chapter (or "outlook"/"extension" origin)
	// Predicted is the paper-predicted bound or expected outcome the
	// measured table is compared against in EXPERIMENTS.md.
	Predicted string
	Summary   string
	Run       Runner
}

// registry is assembled from the per-file experiment groups; each runner
// file declares the metadata for the experiments it implements.
var registry = buildRegistry(
	parkingExperiments(),
	setcoverExperiments(),
	facilityExperiments(),
	deadlineExperiments(),
	extensionExperiments(),
	reusableExperiments(),
)

// buildRegistry merges the per-file groups into one E1..EN sequence; it
// panics on malformed, duplicate, or non-contiguous IDs (programmer error
// caught by any test that touches the package).
func buildRegistry(groups ...[]Info) []Info {
	var all []Info
	for _, g := range groups {
		all = append(all, g...)
	}
	num := func(id string) int {
		n, err := strconv.Atoi(strings.TrimPrefix(id, "E"))
		if err != nil {
			panic(fmt.Sprintf("experiments: malformed id %q", id))
		}
		return n
	}
	sort.Slice(all, func(i, j int) bool { return num(all[i].ID) < num(all[j].ID) })
	for i, e := range all {
		if want := fmt.Sprintf("E%d", i+1); e.ID != want {
			panic(fmt.Sprintf("experiments: registry gap or duplicate at %s (want %s)", e.ID, want))
		}
	}
	return all
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// List returns experiment metadata in order.
func List() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*sim.Table, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
}

// RunAll executes every experiment in order and prints tables to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range registry {
		tb, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		if err := tb.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}
