package experiments

import (
	"math/rand"

	"leasing/internal/lease"
	"leasing/internal/reusable"
	"leasing/internal/sim"
	"leasing/internal/stats"
	"leasing/internal/stream"
)

// reusableExperiments declares the reusable-resource experiments E21-E22:
// the pool allocator of internal/reusable measured against its offline
// oracle, worst-case and learning-augmented.
func reusableExperiments() []Info {
	return []Info{
		{ID: "E21", Paper: "Sec 6 outlook (reusable resources)", Chapter: "outlook", Predicted: "within K of the offline per-unit optimum at every capacity",
			Summary: "reusable-resource pool: online ratio vs offline oracle", Run: e21ReusablePool},
		{ID: "E22", Paper: "Sec 6 outlook (learning-augmented)", Chapter: "outlook", Predicted: "accurate prior beats worst-case provisioning; wrong prior stays feasible but loses the advantage",
			Summary: "reusable-resource predictions: consistency vs robustness", Run: e22ReusablePredictions},
	}
}

// reusableRequests draws a request stream: arrivals Bernoulli(p) per
// step, usage durations uniform in [0, maxDur].
func reusableRequests(rng *rand.Rand, horizon int64, p float64, maxDur int) []reusable.Request {
	var reqs []reusable.Request
	for tm := int64(0); tm < horizon; tm++ {
		if rng.Float64() < p {
			reqs = append(reqs, reusable.Request{T: tm, Dur: int64(rng.Intn(maxDur + 1))})
		}
	}
	return reqs
}

// reusableTrial replays one online allocator over the instance's events,
// verifies the snapshot against the instance, and returns the online and
// offline-oracle costs. A non-positive prediction selects the worst-case
// per-unit rule.
func reusableTrial(inst *reusable.Instance, prediction float64) (float64, float64, error) {
	alg, err := reusable.NewOnline(inst.Config(), inst.Capacity(), reusable.Options{Prediction: prediction})
	if err != nil {
		return 0, 0, err
	}
	lsr := reusable.NewLeaser(alg)
	run, err := stream.Replay(lsr, reusable.Events(inst.Requests()))
	if err != nil {
		return 0, 0, err
	}
	if err := reusable.Verify(inst, lsr.Snapshot()); err != nil {
		return 0, 0, err
	}
	baseline, _, err := reusable.Offline(inst)
	if err != nil {
		return 0, 0, err
	}
	return run.Total(), baseline, nil
}

// e21ReusablePool sweeps pool capacity and demand intensity: the online
// allocator (first-fit admission + per-unit primal-dual provisioning)
// against the offline oracle that prices the identical grant sequence
// with exact per-unit lease planning. First-fit admission makes the two
// grant sequences equal, so the per-unit K-competitiveness composes
// pool-wide and every ratio must stay within K.
func e21ReusablePool(cfg Config) (*sim.Table, error) {
	type point struct {
		capacity int
		p        float64
		k        int
	}
	points := []point{
		{1, 0.3, 2}, {2, 0.3, 2}, {2, 0.6, 3}, {4, 0.6, 3}, {4, 0.9, 3},
	}
	trials := 8
	horizon := int64(256)
	maxDur := 8
	if cfg.Quick {
		points = []point{{2, 0.5, 2}}
		trials = 2
		horizon = 48
	}
	tb := &sim.Table{
		Title:   "E21 reusable-resource pool (outlook): online vs offline oracle",
		Columns: []string{"capacity", "arrival_p", "K", "trials", "mean_ratio", "max_ratio", "K_bound"},
		Note:    "first-fit admission pins online and offline to the same per-unit grant sequences, so the per-unit parking-permit guarantee composes: every ratio stays within K",
	}
	for _, pt := range points {
		lcfg := lease.PowerConfig(pt.k, 4, 0.5)
		s, err := sim.RatiosWorkers(trials, cfg.Seed+int64(pt.capacity*100)+int64(pt.p*10), cfg.Workers, func(rng *rand.Rand) (float64, float64, error) {
			reqs := reusableRequests(rng, horizon, pt.p, maxDur)
			if len(reqs) == 0 {
				return 0, 0, nil
			}
			inst, err := reusable.NewInstance(lcfg, pt.capacity, reqs)
			if err != nil {
				return 0, 0, err
			}
			return reusableTrial(inst, 0)
		})
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(sim.D(pt.capacity), sim.F(pt.p), sim.D(pt.k), sim.D(s.N), sim.F(s.Mean), sim.F(s.Max), sim.D(pt.k))
	}
	return tb, nil
}

// e22ReusablePredictions is the learning-augmented study: the predictive
// per-unit rule (provision for the believed per-step demand probability)
// against the worst-case rule, both normalized by the offline oracle.
// Consistency: an accurate prior should provision long leases early on
// dense streams and beat the worst-case ratio. Robustness: a wrong prior
// never breaks feasibility — admission is policy-independent — it only
// pays more.
func e22ReusablePredictions(cfg Config) (*sim.Table, error) {
	ps := []float64{0.1, 0.4, 0.8}
	trials := 8
	horizon := int64(256)
	capacity := 3
	maxDur := 6
	if cfg.Quick {
		ps = []float64{0.4}
		trials = 2
		horizon = 48
		capacity = 2
	}
	lcfg := lease.PowerConfig(3, 4, 0.5)
	tb := &sim.Table{
		Title:   "E22 reusable-resource predictions (outlook): consistency vs robustness",
		Columns: []string{"stream", "true_p", "believed_p", "capacity", "trials", "pred_ratio", "det_ratio"},
		Note:    "an accurate prior beats worst-case provisioning; a mispredicted prior keeps the same grants (admission is policy-independent) and only pays a provisioning premium",
	}
	row := func(streamName string, trueP, believedP float64) error {
		var pred, det stats.Accumulator
		for i := 0; i < trials; i++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*37 + int64(trueP*1000) + int64(believedP*11)))
			reqs := reusableRequests(rng, horizon, trueP, maxDur)
			if len(reqs) == 0 {
				continue
			}
			inst, err := reusable.NewInstance(lcfg, capacity, reqs)
			if err != nil {
				return err
			}
			pCost, baseline, err := reusableTrial(inst, believedP)
			if err != nil {
				return err
			}
			dCost, _, err := reusableTrial(inst, 0)
			if err != nil {
				return err
			}
			if baseline <= 0 {
				continue
			}
			pred.Add(pCost / baseline)
			det.Add(dCost / baseline)
		}
		tb.MustAddRow(streamName, sim.F(trueP), sim.F(believedP), sim.D(capacity), sim.D(pred.N()), sim.F(pred.Mean()), sim.F(det.Mean()))
		return nil
	}
	for _, p := range ps {
		if err := row("bernoulli", p, p); err != nil {
			return nil, err
		}
	}
	// Misprediction rows: dense reality with a sparse prior and vice versa.
	if err := row("bernoulli", 0.8, 0.1); err != nil {
		return nil, err
	}
	if err := row("bernoulli", 0.1, 0.8); err != nil {
		return nil, err
	}
	return tb, nil
}
