package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every registered experiment in quick
// mode and checks it produces a non-empty, well-formed table.
func TestAllExperimentsQuick(t *testing.T) {
	for _, info := range List() {
		info := info
		t.Run(info.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := info.Run(Config{Quick: true, Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", info.ID, err)
			}
			if tb.Title == "" || len(tb.Columns) == 0 || len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table %+v", info.ID, tb)
			}
			for i, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Errorf("%s row %d has %d cells, want %d", info.ID, i, len(row), len(tb.Columns))
				}
			}
			var buf bytes.Buffer
			if err := tb.Fprint(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), info.ID) {
				t.Errorf("%s: printed table missing its id:\n%s", info.ID, buf.String())
			}
		})
	}
}

func TestRunByID(t *testing.T) {
	tb, err := Run("E1", Config{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Error("E1 produced no rows")
	}
	if _, err := Run("E99", Config{Quick: true}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestIDsAndList(t *testing.T) {
	ids := IDs()
	if len(ids) != 22 {
		t.Errorf("got %d experiments, want 22", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %s", id)
		}
		seen[id] = true
	}
	for _, info := range List() {
		if info.Paper == "" || info.Summary == "" || info.Run == nil {
			t.Errorf("experiment %s has incomplete metadata", info.ID)
		}
		if info.Chapter == "" || info.Predicted == "" {
			t.Errorf("experiment %s missing chapter/predicted-bound metadata (needed by the generated docs)", info.ID)
		}
	}
}

// TestWorkerCountInvariance renders one sweep-heavy experiment under
// different worker counts; the table must be byte-identical (the docs
// pipeline depends on this).
func TestWorkerCountInvariance(t *testing.T) {
	render := func(workers int) string {
		tb, err := Run("E1", Config{Quick: true, Seed: 2015, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tb.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := render(1)
	for _, workers := range []int{4, 0} {
		if got := render(workers); got != want {
			t.Errorf("workers=%d table differs:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestReportMarkdown checks the generated-doc renderers cover every
// experiment and stay deterministic across calls.
func TestReportMarkdown(t *testing.T) {
	design := string(DesignMarkdown())
	record, err := ExperimentsMarkdown(Config{Quick: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if !strings.Contains(design, "| "+id+" |") {
			t.Errorf("DesignMarkdown missing index row for %s", id)
		}
		if !strings.Contains(string(record), "## "+id+" ") {
			t.Errorf("ExperimentsMarkdown missing section for %s", id)
		}
	}
	record2, err := ExperimentsMarkdown(Config{Quick: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(record, record2) {
		t.Error("ExperimentsMarkdown not deterministic for a fixed config")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covered by per-experiment tests")
	}
	var buf bytes.Buffer
	if err := RunAll(Config{Quick: true, Seed: 5}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, id+" ") {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

func TestLog2(t *testing.T) {
	if log2(0) != 0 || log2(1) != 0 {
		t.Error("log2 of <=1 should clamp to 0")
	}
	if log2(8) != 3 {
		t.Errorf("log2(8) = %v", log2(8))
	}
}
