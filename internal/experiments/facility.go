package experiments

import (
	"math/rand"

	"leasing/internal/facility"
	"leasing/internal/lease"
	"leasing/internal/metric"
	"leasing/internal/sim"
	"leasing/internal/stats"
	"leasing/internal/stream"
	"leasing/internal/workload"
)

// facilityExperiments declares the Chapter 4 experiments implemented in
// this file (plus the Chapter 1 cloud-subcontractor narrative E14).
func facilityExperiments() []Info {
	return []Info{
		{ID: "E9", Paper: "Thm 4.5 / Cor 4.6-4.7", Chapter: "4", Predicted: "(3+K)*H_lmax per arrival pattern",
			Summary: "facility leasing ratio tracks (3+K)*H_lmax per arrival pattern", Run: e9FacilityLeasing},
		{ID: "E14", Paper: "Fig 1.2 / Sec 1.3", Chapter: "1", Predicted: "bounded premium in both regimes; naive strategies lose one each",
			Summary: "cloud subcontractor narrative: primal-dual vs naive strategies", Run: e14CloudSubcontractor},
		{ID: "E15", Paper: "Sec 4.3 phase 2", Chapter: "4", Predicted: "ablation; all orderings stay feasible",
			Summary: "ablation: MIS ordering in the conflict graphs", Run: e15MISAblation},
	}
}

func facilityLeaseConfig() *lease.Config {
	return lease.MustConfig(
		lease.Type{Length: 1, Cost: 3},
		lease.Type{Length: 4, Cost: 7},
		lease.Type{Length: 8, Cost: 10},
	)
}

// facilityTrial runs the primal-dual algorithm on a random instance and
// compares against the exact optimum (or its proven lower bound when the
// search is truncated).
func facilityTrial(rng *rand.Rand, lcfg *lease.Config, p facility.GenParams) (float64, float64, float64, error) {
	inst, err := facility.RandomInstance(rng, lcfg, p)
	if err != nil {
		return 0, 0, 0, err
	}
	alg, err := facility.NewOnline(inst, facility.Options{})
	if err != nil {
		return 0, 0, 0, err
	}
	online, err := replayTotal(facility.NewLeaser(alg), stream.Batches(inst.Batches))
	if err != nil {
		return 0, 0, 0, err
	}
	leases, assigns := alg.Solution()
	if _, err := facility.VerifySolution(inst, leases, assigns); err != nil {
		return 0, 0, 0, err
	}
	opt, err := facility.Optimal(inst, 4000)
	if err != nil {
		return 0, 0, 0, err
	}
	baseline := opt.Cost
	if !opt.Exact {
		baseline = opt.Lower
	}
	h := workload.HSeries(inst.BatchCounts())
	return online, baseline, h, nil
}

// e9FacilityLeasing sweeps the arrival patterns of Corollary 4.7 and the
// conjectured-hard exponential pattern, reporting the measured ratio next
// to the (3+K)*H_lmax guide of Theorem 4.5.
func e9FacilityLeasing(cfg Config) (*sim.Table, error) {
	patterns := []workload.ArrivalPattern{
		workload.PatternConstant,
		workload.PatternNonIncreasing,
		workload.PatternPolynomial,
		workload.PatternExponential,
	}
	trials := 4
	steps := 8
	maxPerStep := 12
	if cfg.Quick {
		patterns = patterns[:2]
		trials = 2
		steps = 4
		maxPerStep = 4
	}
	lcfg := facilityLeaseConfig()
	tb := &sim.Table{
		Title:   "E9 facility leasing (Thm 4.5 / Cor 4.7): ratio per arrival pattern",
		Columns: []string{"pattern", "trials", "H_lmax", "mean_ratio", "max_ratio", "(3+K)*H"},
		Note:    "natural patterns stay near (3+K)*H_lmax with small H; the exponential pattern inflates H toward Theta(lmax)",
	}
	for _, pat := range patterns {
		// Per-trial slots for the H series keep the closure race-free
		// under the worker pool.
		hs := stats.NewSeries(trials)
		s, err := sim.RatiosIndexed(trials, cfg.Seed+int64(pat)*101, cfg.Workers, func(i int, rng *rand.Rand) (float64, float64, error) {
			online, baseline, h, err := facilityTrial(rng, lcfg, facility.GenParams{
				Sites: 3, Steps: steps, Pattern: pat, Base: 1,
				MaxPerStep: maxPerStep, WorldSize: 40, CostSpread: 0.3,
			})
			if err != nil {
				return 0, 0, err
			}
			hs.Set(i, h)
			return online, baseline, nil
		})
		if err != nil {
			return nil, err
		}
		h := hs.Mean()
		bound := float64(3+lcfg.K()) * h
		tb.MustAddRow(pat.String(), sim.D(s.N), sim.F(h), sim.F(s.Mean), sim.F(s.Max), sim.F(bound))
	}
	return tb, nil
}

// e14CloudSubcontractor plays the Section 1.3 narrative: a subcontractor
// leasing cloud machines (facilities) for calling clients. Two demand
// regimes expose the naive strategies — steady demand punishes rent-daily,
// sparse demand punishes buy-longest — while the primal-dual algorithm
// stays robust in both.
func e14CloudSubcontractor(cfg Config) (*sim.Table, error) {
	steps := 32
	if cfg.Quick {
		steps = 8
	}
	lcfg := facilityLeaseConfig() // 1 day $3, 4 days $7, 8 days $10
	rng := rand.New(rand.NewSource(cfg.Seed + 14))
	sites := []struct{ x, y float64 }{{5, 5}, {30, 8}, {18, 28}}

	makeInstance := func(busy func(t int) int) (*facility.Instance, error) {
		siteP := make([]metric.Point, len(sites))
		for i, s := range sites {
			siteP[i] = metric.Point{X: s.x, Y: s.y}
		}
		batches := make([][]metric.Point, steps)
		for t := 0; t < steps; t++ {
			for c := 0; c < busy(t); c++ {
				s := siteP[rng.Intn(len(siteP))]
				batches[t] = append(batches[t], metric.Point{
					X: s.X + rng.NormFloat64(),
					Y: s.Y + rng.NormFloat64(),
				})
			}
		}
		costs := make([][]float64, len(siteP))
		for i := range costs {
			costs[i] = []float64{lcfg.Cost(0), lcfg.Cost(1), lcfg.Cost(2)}
		}
		return facility.NewInstance(lcfg, siteP, costs, batches)
	}

	scenarios := []struct {
		name string
		busy func(t int) int
	}{
		{"steady (2 calls/day)", func(t int) int { return 2 }},
		{"sparse (1 call/8 days)", func(t int) int {
			if t%8 == 0 {
				return 1
			}
			return 0
		}},
	}

	tb := &sim.Table{
		Title:   "E14 cloud subcontractor (Fig 1.2): strategy robustness across demand regimes",
		Columns: []string{"scenario", "strategy", "cost", "ratio_vs_opt"},
		Note:    "each naive strategy is near-optimal in one regime and pays for it in the other (and its worst case grows with l_max); the Chapter 4 algorithm pays a bounded constant-factor premium in both, which is exactly what a worst-case guarantee buys",
	}
	for _, sc := range scenarios {
		inst, err := makeInstance(sc.busy)
		if err != nil {
			return nil, err
		}
		alg, err := facility.NewOnline(inst, facility.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := replayTotal(facility.NewLeaser(alg), stream.Batches(inst.Batches)); err != nil {
			return nil, err
		}
		leases, assigns := alg.Solution()
		if _, err := facility.VerifySolution(inst, leases, assigns); err != nil {
			return nil, err
		}
		daily, dl, da, err := facility.RentDaily(inst)
		if err != nil {
			return nil, err
		}
		if _, err := facility.VerifySolution(inst, dl, da); err != nil {
			return nil, err
		}
		long, ll, la, err := facility.BuyLongest(inst)
		if err != nil {
			return nil, err
		}
		if _, err := facility.VerifySolution(inst, ll, la); err != nil {
			return nil, err
		}
		opt, err := facility.Optimal(inst, 6000)
		if err != nil {
			return nil, err
		}
		baseline := opt.Cost
		if !opt.Exact {
			baseline = opt.Lower
		}
		tb.MustAddRow(sc.name, "primal-dual (Ch 4)", sim.F(alg.TotalCost()), sim.F(alg.TotalCost()/baseline))
		tb.MustAddRow(sc.name, "rent-daily", sim.F(daily), sim.F(daily/baseline))
		tb.MustAddRow(sc.name, "buy-longest", sim.F(long), sim.F(long/baseline))
		tb.MustAddRow(sc.name, "offline optimum", sim.F(baseline), "1.000")
	}
	return tb, nil
}

// e15MISAblation compares the two phase-2 orderings: opening-time order
// (what the analysis assumes) against arbitrary site-index order.
func e15MISAblation(cfg Config) (*sim.Table, error) {
	trials := 8
	steps := 8
	if cfg.Quick {
		trials = 3
		steps = 4
	}
	lcfg := facilityLeaseConfig()
	variants := []struct {
		name string
		opts facility.Options
	}{
		{"by-opening-time", facility.Options{MISOrder: facility.ByOpeningTime}},
		{"by-site-index", facility.Options{MISOrder: facility.ByIndex}},
		{"round-reset history", facility.Options{MISOrder: facility.ByOpeningTime, ResetEachRound: true}},
	}
	accs := make([]stats.Accumulator, len(variants))
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*271))
		inst, err := facility.RandomInstance(rng, lcfg, facility.GenParams{
			Sites: 4, Steps: steps, Pattern: workload.PatternConstant, Base: 2,
			MaxPerStep: 3, WorldSize: 40, CostSpread: 0.4,
		})
		if err != nil {
			return nil, err
		}
		for vi, v := range variants {
			alg, err := facility.NewOnline(inst, v.opts)
			if err != nil {
				return nil, err
			}
			if _, err := replayTotal(facility.NewLeaser(alg), stream.Batches(inst.Batches)); err != nil {
				return nil, err
			}
			leases, assigns := alg.Solution()
			if _, err := facility.VerifySolution(inst, leases, assigns); err != nil {
				return nil, err
			}
			accs[vi].Add(alg.TotalCost())
		}
	}
	tb := &sim.Table{
		Title:   "E15 ablation: phase-2 MIS ordering and bidding-history scope",
		Columns: []string{"variant", "trials", "mean_cost"},
		Note:    "all variants stay feasible; opening-time order is what the dual-fitting analysis charges, and resetting history at round boundaries matches the analysis' decomposition",
	}
	for vi, v := range variants {
		tb.MustAddRow(v.name, sim.D(accs[vi].N()), sim.F(accs[vi].Mean()))
	}
	return tb, nil
}
