// Package ilp implements a 0/1 integer-program solver via LP-based branch
// and bound, built on leasing/internal/lp. It computes the exact offline
// optima (OPT) that the experiment harness divides online costs by: set
// cover leasing, facility leasing, and leasing-with-deadlines instances are
// all expressed as small binary covering programs.
//
// Variables are binary by default; individual variables may be declared
// continuous in [0,1] (used for the auxiliary "distinct set" counters of
// the multicover formulation, which are automatically integral once the
// binary variables are fixed).
package ilp

import (
	"errors"
	"fmt"
	"math"

	"leasing/internal/lp"
)

// Problem is a 0/1 minimization problem under construction.
type Problem struct {
	c          []float64
	continuous []bool
	relax      *lp.Problem
}

// NewBinaryMinimize creates a minimization problem over len(c) binary
// variables with objective coefficients c.
func NewBinaryMinimize(c []float64) *Problem {
	cp := make([]float64, len(c))
	copy(cp, c)
	p := &Problem{
		c:          cp,
		continuous: make([]bool, len(c)),
		relax:      lp.NewMinimize(cp),
	}
	return p
}

// SetContinuous declares variable j continuous in [0,1] instead of binary.
func (p *Problem) SetContinuous(j int) error {
	if j < 0 || j >= len(p.c) {
		return fmt.Errorf("ilp: variable %d out of range [0,%d)", j, len(p.c))
	}
	p.continuous[j] = true
	return nil
}

// Add appends a sparse constraint sum(coeffs[j]*x_j) op rhs.
func (p *Problem) Add(coeffs map[int]float64, op lp.Op, rhs float64) error {
	return p.relax.Add(coeffs, op, rhs)
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.c) }

// Options tunes Solve.
type Options struct {
	// NodeLimit bounds the number of branch-and-bound nodes explored.
	// 0 means the default (200000).
	NodeLimit int
	// Incumbent optionally provides a known feasible 0/1 solution used as
	// the initial upper bound (for example from a greedy heuristic).
	Incumbent []float64
}

// Result reports the outcome of Solve.
type Result struct {
	// X is the best 0/1 assignment found (nil if none).
	X []float64
	// Objective is c·X.
	Objective float64
	// Proven is true when the search space was exhausted, making X an exact
	// optimum; false when the node limit was hit first.
	Proven bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// LowerBound is the best proven lower bound on the optimum (the root
	// LP relaxation value if the search was truncated).
	LowerBound float64
}

// ErrInfeasible is returned when no feasible 0/1 assignment exists.
var ErrInfeasible = errors.New("ilp: infeasible")

const intTol = 1e-6

type node struct {
	fixed map[int]float64
	depth int
}

// Solve runs best-effort depth-first branch and bound and returns the best
// integral solution found.
func (p *Problem) Solve(opts Options) (*Result, error) {
	limit := opts.NodeLimit
	if limit <= 0 {
		limit = 200000
	}
	n := len(p.c)

	// The [0,1] box is enforced with per-variable <= 1 rows on a copy of the
	// relaxation so repeated Solve calls do not accumulate rows.
	base := lp.NewMinimize(p.c)
	if err := copyConstraints(p.relax, base); err != nil {
		return nil, err
	}
	for j := 0; j < n; j++ {
		if err := base.Add(map[int]float64{j: 1}, lp.LE, 1); err != nil {
			return nil, err
		}
	}

	incumbentObj := math.Inf(1)
	var incumbentX []float64
	if opts.Incumbent != nil {
		if len(opts.Incumbent) != n {
			return nil, fmt.Errorf("ilp: incumbent has %d values, want %d", len(opts.Incumbent), n)
		}
		if err := p.relax.Verify(opts.Incumbent, 1e-6); err == nil {
			incumbentX = roundCopy(opts.Incumbent)
			incumbentObj = dot(p.c, incumbentX)
		}
	}

	stack := []node{{fixed: map[int]float64{}}}
	nodes := 0
	rootBound := math.Inf(-1)
	proven := true

	for len(stack) > 0 {
		if nodes >= limit {
			proven = false
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		sol, err := p.solveRelaxation(base, nd.fixed)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			continue // infeasible subtree
		}
		if nodes == 1 {
			rootBound = sol.Objective
		}
		if sol.Objective >= incumbentObj-1e-9 {
			continue // bound prune
		}
		branchVar := p.mostFractional(sol.X, nd.fixed)
		if branchVar < 0 {
			// Integral on all binary variables: new incumbent.
			x := roundCopy(sol.X)
			obj := dot(p.c, x)
			if obj < incumbentObj-1e-12 {
				incumbentObj = obj
				incumbentX = x
			}
			continue
		}
		// Depth-first, exploring x=1 first: covering problems reach
		// feasible incumbents much faster that way.
		f0 := cloneFixed(nd.fixed)
		f0[branchVar] = 0
		f1 := cloneFixed(nd.fixed)
		f1[branchVar] = 1
		stack = append(stack, node{fixed: f0, depth: nd.depth + 1})
		stack = append(stack, node{fixed: f1, depth: nd.depth + 1})
	}

	if incumbentX == nil {
		if !proven {
			return &Result{Proven: false, Nodes: nodes, LowerBound: rootBound}, fmt.Errorf("%w within %d nodes", ErrInfeasible, nodes)
		}
		return nil, ErrInfeasible
	}
	lb := rootBound
	if proven {
		lb = incumbentObj
	}
	return &Result{
		X:          incumbentX,
		Objective:  incumbentObj,
		Proven:     proven,
		Nodes:      nodes,
		LowerBound: lb,
	}, nil
}

// solveRelaxation solves base plus equality fixings, pushing the fixing
// rows onto base and truncating them afterwards (cheaper than rebuilding
// the problem per branch-and-bound node).
func (p *Problem) solveRelaxation(base *lp.Problem, fixed map[int]float64) (*lp.Solution, error) {
	mark := base.NumConstraints()
	defer func() {
		// Truncating back to the recorded mark cannot fail.
		if err := base.TruncateConstraints(mark); err != nil {
			panic(fmt.Sprintf("ilp: truncate to %d: %v", mark, err))
		}
	}()
	for j, v := range fixed {
		if err := base.Add(map[int]float64{j: 1}, lp.EQ, v); err != nil {
			return nil, err
		}
	}
	return base.Solve()
}

// mostFractional returns the unfixed binary variable whose relaxation value
// is closest to 1/2, or -1 if all binary variables are integral.
func (p *Problem) mostFractional(x []float64, fixed map[int]float64) int {
	best := -1
	bestDist := math.Inf(1)
	for j, v := range x {
		if p.continuous[j] {
			continue
		}
		if _, ok := fixed[j]; ok {
			continue
		}
		frac := math.Abs(v - math.Round(v))
		if frac <= intTol {
			continue
		}
		d := math.Abs(v - 0.5)
		if d < bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

func cloneFixed(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func roundCopy(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		r := math.Round(v)
		if math.Abs(v-r) <= 1e-4 {
			out[i] = r
		} else {
			out[i] = v
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// copyConstraints replays src's constraints onto dst.
func copyConstraints(src, dst *lp.Problem) error {
	for _, c := range src.Snapshot() {
		if err := dst.Add(c.Coeffs, c.Op, c.RHS); err != nil {
			return err
		}
	}
	return nil
}
