package ilp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"leasing/internal/lp"
)

func mustAdd(t *testing.T, p *Problem, coeffs map[int]float64, op lp.Op, rhs float64) {
	t.Helper()
	if err := p.Add(coeffs, op, rhs); err != nil {
		t.Fatalf("Add: %v", err)
	}
}

func TestSetCoverExact(t *testing.T) {
	// Elements {a,b,c}; S0={a,b} cost 2, S1={b,c} cost 2, S2={a,b,c} cost 3.5,
	// S3={c} cost 1. Optimum: S0+S3 = 3.
	p := NewBinaryMinimize([]float64{2, 2, 3.5, 1})
	mustAdd(t, p, map[int]float64{0: 1, 2: 1}, lp.GE, 1)       // a
	mustAdd(t, p, map[int]float64{0: 1, 1: 1, 2: 1}, lp.GE, 1) // b
	mustAdd(t, p, map[int]float64{1: 1, 2: 1, 3: 1}, lp.GE, 1) // c
	r, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Proven {
		t.Error("small problem should be proven optimal")
	}
	if math.Abs(r.Objective-3) > 1e-9 {
		t.Errorf("objective = %v, want 3", r.Objective)
	}
	if r.X[0] != 1 || r.X[3] != 1 || r.X[1] != 0 || r.X[2] != 0 {
		t.Errorf("X = %v, want [1 0 0 1]", r.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x0 + x1 >= 3 with binary vars is infeasible.
	p := NewBinaryMinimize([]float64{1, 1})
	mustAdd(t, p, map[int]float64{0: 1, 1: 1}, lp.GE, 3)
	_, err := p.Solve(Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestFractionalLPGapForced(t *testing.T) {
	// Odd-cycle vertex cover: LP relaxation gives 1.5, ILP optimum is 2.
	p := NewBinaryMinimize([]float64{1, 1, 1})
	mustAdd(t, p, map[int]float64{0: 1, 1: 1}, lp.GE, 1)
	mustAdd(t, p, map[int]float64{1: 1, 2: 1}, lp.GE, 1)
	mustAdd(t, p, map[int]float64{0: 1, 2: 1}, lp.GE, 1)
	r, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Objective-2) > 1e-9 || !r.Proven {
		t.Errorf("objective = %v proven=%v, want 2 proven", r.Objective, r.Proven)
	}
}

func TestContinuousVariables(t *testing.T) {
	// min x0 + 0.1*z: z >= 0.5 (continuous), x0 binary >= z - 0.4 → x0 can be
	// ... simpler: z continuous in [0,1] with z >= 0.7; x0 binary with
	// x0 >= z - 1 (vacuous). Optimum: x0=0, z=0.7 → 0.07.
	p := NewBinaryMinimize([]float64{1, 0.1})
	if err := p.SetContinuous(1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, map[int]float64{1: 1}, lp.GE, 0.7)
	r, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Objective-0.07) > 1e-6 {
		t.Errorf("objective = %v, want 0.07", r.Objective)
	}
	if r.X[0] != 0 {
		t.Errorf("binary var = %v, want 0", r.X[0])
	}
	if err := p.SetContinuous(5); err == nil {
		t.Error("SetContinuous out of range accepted")
	}
}

func TestIncumbentSpeedsButDoesNotChangeOptimum(t *testing.T) {
	p := NewBinaryMinimize([]float64{3, 2, 2})
	mustAdd(t, p, map[int]float64{0: 1, 1: 1}, lp.GE, 1)
	mustAdd(t, p, map[int]float64{0: 1, 2: 1}, lp.GE, 1)
	// Feasible incumbent: all ones, cost 7. Optimum: x1=x2=1 cost 4 or x0=1 cost 3.
	r, err := p.Solve(Options{Incumbent: []float64{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Objective-3) > 1e-9 {
		t.Errorf("objective = %v, want 3 (x0 alone)", r.Objective)
	}
	// Malformed incumbent length must error.
	if _, err := p.Solve(Options{Incumbent: []float64{1}}); err == nil {
		t.Error("wrong-length incumbent accepted")
	}
	// Infeasible incumbent is ignored, not fatal.
	r2, err := p.Solve(Options{Incumbent: []float64{0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Objective-3) > 1e-9 {
		t.Errorf("objective with bad incumbent = %v, want 3", r2.Objective)
	}
}

func TestNodeLimitTruncates(t *testing.T) {
	// A problem needing more than one node, truncated at 1 node: no proof.
	p := NewBinaryMinimize([]float64{1, 1, 1})
	mustAdd(t, p, map[int]float64{0: 1, 1: 1}, lp.GE, 1)
	mustAdd(t, p, map[int]float64{1: 1, 2: 1}, lp.GE, 1)
	mustAdd(t, p, map[int]float64{0: 1, 2: 1}, lp.GE, 1)
	r, err := p.Solve(Options{NodeLimit: 1})
	if err == nil && r.Proven {
		t.Error("1-node search claimed proof on a fractional-root problem")
	}
}

func TestKnapsackStyle(t *testing.T) {
	// min -profit subject to weight <= capacity:
	// items (profit, weight): (6,4) (5,3) (4,2), capacity 5 → best profit 9 = items 2+3.
	p := NewBinaryMinimize([]float64{-6, -5, -4})
	mustAdd(t, p, map[int]float64{0: 4, 1: 3, 2: 2}, lp.LE, 5)
	r, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Objective+9) > 1e-9 {
		t.Errorf("objective = %v, want -9", r.Objective)
	}
	if r.X[1] != 1 || r.X[2] != 1 || r.X[0] != 0 {
		t.Errorf("X = %v, want [0 1 1]", r.X)
	}
}

// Exhaustive cross-check: on random small covering instances the B&B optimum
// must equal brute-force enumeration.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8) // up to 10 vars → 1024 assignments
		m := 1 + rng.Intn(6)
		c := make([]float64, n)
		for j := range c {
			c[j] = float64(1+rng.Intn(20)) / 2
		}
		type row struct {
			coeffs map[int]float64
			rhs    float64
		}
		rows := make([]row, m)
		p := NewBinaryMinimize(c)
		for i := 0; i < m; i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.4 {
					coeffs[j] = 1
				}
			}
			coeffs[rng.Intn(n)] = 1
			rhs := 1.0
			if len(coeffs) > 2 && rng.Float64() < 0.3 {
				rhs = 2
			}
			rows[i] = row{coeffs, rhs}
			mustAdd(t, p, coeffs, lp.GE, rhs)
		}
		// Brute force.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			feasible := true
			for _, r := range rows {
				var lhs float64
				for j := range r.coeffs {
					if mask&(1<<j) != 0 {
						lhs++
					}
				}
				if lhs < r.rhs {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			var cost float64
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					cost += c[j]
				}
			}
			if cost < best {
				best = cost
			}
		}
		r, err := p.Solve(Options{})
		if math.IsInf(best, 1) {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: brute force infeasible but solver said %v, err %v", trial, r, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !r.Proven {
			t.Fatalf("trial %d: not proven", trial)
		}
		if math.Abs(r.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: B&B %v != brute force %v", trial, r.Objective, best)
		}
	}
}

func TestNumVars(t *testing.T) {
	p := NewBinaryMinimize([]float64{1, 2, 3})
	if p.NumVars() != 3 {
		t.Errorf("NumVars = %d, want 3", p.NumVars())
	}
}
