package facility

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"leasing/internal/core"
	"leasing/internal/metric"
)

const eps = 1e-9

// MISOrder selects how phase 2 orders temporarily open facilities when
// building each conflict graph's maximal independent set.
type MISOrder int

// MIS orderings.
const (
	// ByOpeningTime considers temporarily opened facilities in the order
	// they became tight (the Jain–Vazirani order the analysis assumes).
	ByOpeningTime MISOrder = iota + 1
	// ByIndex considers them in site-index order (the ablation arm of
	// experiment E15).
	ByIndex
)

// Options tunes the online algorithm.
type Options struct {
	// MISOrder defaults to ByOpeningTime.
	MISOrder MISOrder
	// ResetEachRound drops the bidding history at multiples of l_max — the
	// round boundaries along which Theorem 4.5's analysis decomposes (all
	// facilities are closed there, so rounds are independent
	// sub-problems). The default (false) keeps the literal D_{<=t} of the
	// paper's pseudocode; the reset variant is the E15 ablation's second
	// arm. Connections already made are unaffected.
	ResetEachRound bool
}

// Online is the two-phase primal-dual algorithm of Section 4.3. Each time
// step: phase 1 raises client potentials continuously — a potential
// α_{jk} freezes when it reaches an open type-k facility or the client's
// cap α̂_j, and a closed facility opens temporarily the moment its bids
// sum to its lease cost (invariant INV1) — and phase 2 keeps a maximal
// independent set of each type's conflict graph, permanently leasing the
// survivors and reconnecting new clients through conflict witnesses
// (Proposition 4.2 bounds the detour by a factor 3).
type Online struct {
	inst       *Instance
	store      *core.ItemStore
	misOrder   MISOrder
	resetRound bool

	clients  []clientState // clients still bidding (current round if resetting)
	archived []clientState // clients dropped from bidding by round resets
	connCost float64
	dualSum  float64
	step     int64
}

type clientState struct {
	pos      metric.Point
	arrived  int64
	alphaHat float64
	dists    []float64 // distance to each site
	assign   Assignment
}

// NewOnline builds the online algorithm for an instance.
func NewOnline(inst *Instance, opts Options) (*Online, error) {
	order := opts.MISOrder
	if order == 0 {
		order = ByOpeningTime
	}
	if order != ByOpeningTime && order != ByIndex {
		return nil, fmt.Errorf("facility: unknown MIS order %d", int(order))
	}
	store, err := core.NewItemStore(inst.Cfg, inst.FacCosts)
	if err != nil {
		return nil, err
	}
	return &Online{inst: inst, store: store, misOrder: order, resetRound: opts.ResetEachRound}, nil
}

// Run processes every batch of the instance in order.
func (o *Online) Run() error {
	for t, batch := range o.inst.Batches {
		if err := o.Step(int64(t), batch); err != nil {
			return err
		}
	}
	return nil
}

// Step processes the batch arriving at time t. Steps must be fed in
// increasing order.
func (o *Online) Step(t int64, batch []metric.Point) error {
	if t < o.step {
		return fmt.Errorf("facility: step %d after %d", t, o.step)
	}
	o.step = t + 1
	if o.resetRound && t%o.inst.Cfg.LMax() == 0 && len(o.clients) > 0 {
		o.archived = append(o.archived, o.clients...)
		o.clients = nil
	}
	newStart := len(o.clients)
	for _, p := range batch {
		cs := clientState{pos: p, arrived: t, alphaHat: math.Inf(1), assign: Assignment{Facility: -1}}
		cs.dists = make([]float64, len(o.inst.Sites))
		for i, s := range o.inst.Sites {
			cs.dists[i] = metric.Dist(s, p)
		}
		o.clients = append(o.clients, cs)
	}
	if len(batch) == 0 {
		return nil
	}

	ps, err := o.phase1(t)
	if err != nil {
		return err
	}
	o.phase2(t, ps, newStart)
	for j := newStart; j < len(o.clients); j++ {
		o.dualSum += o.clients[j].alphaHat
	}
	return nil
}

// phaseState carries phase-1 results into phase 2.
type phaseState struct {
	alpha    [][]float64 // final potential per (client, type)
	isOpen   [][]bool    // (site, type) open at the end of phase 1
	isTemp   [][]bool    // subset of isOpen opened this step
	openAt   [][]float64 // potential value at opening (0 for permanent)
	connType []int       // for new clients: the type they connected through
}

func (o *Online) phase1(t int64) (*phaseState, error) {
	var (
		n = len(o.clients)
		m = len(o.inst.Sites)
		k = o.inst.Cfg.K()
	)
	ps := &phaseState{
		alpha:    mat(n, k),
		isOpen:   matB(m, k),
		isTemp:   matB(m, k),
		openAt:   mat(m, k),
		connType: make([]int, n),
	}
	frozen := matB(n, k)
	for kk := 0; kk < k; kk++ {
		for i := 0; i < m; i++ {
			il := core.ItemLease{Item: i, K: kk, Start: o.inst.Cfg.AlignedStart(kk, t)}
			if o.store.Has(il) {
				ps.isOpen[i][kk] = true
			}
		}
	}

	// minOpenDist[j][k]: distance to the nearest open type-k facility.
	minOpen := mat(n, k)
	recomputeMinOpen := func(j, kk int) {
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if ps.isOpen[i][kk] && o.clients[j].dists[i] < best {
				best = o.clients[j].dists[i]
			}
		}
		minOpen[j][kk] = best
	}
	for j := 0; j < n; j++ {
		ps.connType[j] = -1
		for kk := 0; kk < k; kk++ {
			recomputeMinOpen(j, kk)
		}
	}

	// Per-facility client orderings by distance, computed once per step so
	// tight-time queries avoid re-sorting.
	orders := make([][]int, m)
	for i := 0; i < m; i++ {
		ord := make([]int, n)
		for j := range ord {
			ord[j] = j
		}
		sort.Slice(ord, func(a, b int) bool {
			return o.clients[ord[a]].dists[i] < o.clients[ord[b]].dists[i]
		})
		orders[i] = ord
	}

	active := n * k
	tau := 0.0
	maxEvents := 4*(n*k+m*k) + 16
	for ev := 0; active > 0; ev++ {
		if ev > maxEvents {
			return nil, errors.New("facility: phase 1 exceeded event budget (numerical stall)")
		}
		// Next freeze event.
		nextFreeze := math.Inf(1)
		for j := 0; j < n; j++ {
			for kk := 0; kk < k; kk++ {
				if frozen[j][kk] {
					continue
				}
				trig := math.Min(o.clients[j].alphaHat, minOpen[j][kk])
				if trig < nextFreeze {
					nextFreeze = trig
				}
			}
		}
		// Next facility-opening event.
		nextOpen := math.Inf(1)
		for i := 0; i < m; i++ {
			for kk := 0; kk < k; kk++ {
				if ps.isOpen[i][kk] {
					continue
				}
				if ts := o.tightTime(ps, frozen, i, kk, tau, orders[i]); ts < nextOpen {
					nextOpen = ts
				}
			}
		}
		next := math.Min(nextFreeze, nextOpen)
		if math.IsInf(next, 1) {
			return nil, errors.New("facility: phase 1 stalled with active potentials")
		}
		if next < tau {
			next = tau
		}
		tau = next

		// Open every facility tight at tau.
		for i := 0; i < m; i++ {
			for kk := 0; kk < k; kk++ {
				if ps.isOpen[i][kk] {
					continue
				}
				if o.tightTime(ps, frozen, i, kk, tau, orders[i]) <= tau+eps {
					ps.isOpen[i][kk] = true
					ps.isTemp[i][kk] = true
					ps.openAt[i][kk] = tau
					for j := 0; j < n; j++ {
						if o.clients[j].dists[i] < minOpen[j][kk] {
							minOpen[j][kk] = o.clients[j].dists[i]
						}
					}
				}
			}
		}
		// Freeze cascade at tau: a new client's first facility-freeze sets
		// its cap, which immediately freezes its remaining potentials.
		for changed := true; changed; {
			changed = false
			for j := 0; j < n; j++ {
				for kk := 0; kk < k; kk++ {
					if frozen[j][kk] {
						continue
					}
					byFacility := minOpen[j][kk] <= tau+eps
					byCap := o.clients[j].alphaHat <= tau+eps
					if !byFacility && !byCap {
						continue
					}
					frozen[j][kk] = true
					ps.alpha[j][kk] = tau
					active--
					changed = true
					if byFacility && math.IsInf(o.clients[j].alphaHat, 1) {
						// New client connects to the nearest open type-k
						// facility it just reached.
						best, bestD := -1, math.Inf(1)
						for i := 0; i < m; i++ {
							if ps.isOpen[i][kk] && o.clients[j].dists[i] < bestD {
								best, bestD = i, o.clients[j].dists[i]
							}
						}
						o.clients[j].alphaHat = tau
						o.clients[j].assign = Assignment{Facility: best, K: kk, Dist: bestD}
						ps.connType[j] = kk
					}
				}
			}
		}
	}
	return ps, nil
}

// tightTime returns the earliest potential value tau* >= tau at which the
// bids toward the closed facility (i, k) would reach its cost, assuming no
// further freezes: frozen potentials contribute constants, active ones grow
// at unit rate past their distance kink. order lists clients sorted by
// distance to facility i.
func (o *Online) tightTime(ps *phaseState, frozen [][]bool, i, kk int, tau float64, order []int) float64 {
	c := o.inst.FacCosts[i][kk]
	base := 0.0
	for j := range o.clients {
		if !frozen[j][kk] {
			continue
		}
		if a, d := ps.alpha[j][kk], o.clients[j].dists[i]; a > d {
			base += a - d
		}
	}
	if base >= c-eps {
		return tau
	}
	// Walk active clients in distance order, accumulating the slope count
	// and distance mass; solve the linear piece that brackets tau*.
	cnt := 0
	sumD := 0.0
	pos := 0
	nextActive := func() (float64, bool) {
		for ; pos < len(order); pos++ {
			j := order[pos]
			if !frozen[j][kk] {
				d := o.clients[j].dists[i]
				pos++
				return d, true
			}
		}
		return 0, false
	}
	pending, havePending := nextActive()
	for havePending && pending <= tau {
		cnt++
		sumD += pending
		pending, havePending = nextActive()
	}
	cur := tau
	for {
		if cnt > 0 {
			tstar := (c - base + sumD) / float64(cnt)
			limit := math.Inf(1)
			if havePending {
				limit = pending
			}
			if tstar >= cur-eps && tstar <= limit+eps {
				return math.Max(tstar, cur)
			}
		}
		if !havePending {
			return math.Inf(1)
		}
		cur = pending
		cnt++
		sumD += pending
		pending, havePending = nextActive()
	}
}

// phase2 builds the per-type conflict graphs, keeps a maximal independent
// set (permanent facilities first), permanently leases surviving temporary
// facilities, and (re)connects the step's new clients.
func (o *Online) phase2(t int64, ps *phaseState, newStart int) {
	var (
		n = len(o.clients)
		m = len(o.inst.Sites)
		k = o.inst.Cfg.K()
	)
	selected := matB(m, k)

	conflict := func(kk, i1, i2 int) bool {
		for j := 0; j < n; j++ {
			a := ps.alpha[j][kk]
			d1 := o.clients[j].dists[i1]
			d2 := o.clients[j].dists[i2]
			if a > d1+eps && a > d2+eps {
				return true
			}
		}
		return false
	}

	for kk := 0; kk < k; kk++ {
		var temp []int
		for i := 0; i < m; i++ {
			if !ps.isOpen[i][kk] {
				continue
			}
			if ps.isTemp[i][kk] {
				temp = append(temp, i)
			} else {
				selected[i][kk] = true // permanent facilities always stay
			}
		}
		switch o.misOrder {
		case ByOpeningTime:
			sort.Slice(temp, func(a, b int) bool {
				if ps.openAt[temp[a]][kk] != ps.openAt[temp[b]][kk] {
					return ps.openAt[temp[a]][kk] < ps.openAt[temp[b]][kk]
				}
				return temp[a] < temp[b]
			})
		case ByIndex:
			sort.Ints(temp)
		}
		for _, i := range temp {
			free := true
			for i2 := 0; i2 < m; i2++ {
				if i2 != i && selected[i2][kk] && ps.isOpen[i2][kk] && conflict(kk, i, i2) {
					free = false
					break
				}
			}
			if free {
				selected[i][kk] = true
				il := core.ItemLease{Item: i, K: kk, Start: o.inst.Cfg.AlignedStart(kk, t)}
				if _, err := o.store.Buy(il); err != nil {
					// Indices are validated at construction; Buy cannot fail.
					panic(fmt.Sprintf("facility: buy %+v: %v", il, err))
				}
			}
		}
	}

	// Connect the new clients: keep the phase-1 facility if it survived,
	// otherwise route through a selected conflict neighbor (Prop 4.2).
	for j := newStart; j < n; j++ {
		cs := &o.clients[j]
		i, kk := cs.assign.Facility, cs.assign.K
		if i >= 0 && selected[i][kk] {
			o.connCost += cs.assign.Dist
			continue
		}
		bestI, bestD := -1, math.Inf(1)
		for i2 := 0; i2 < m; i2++ {
			if i2 == i || !selected[i2][kk] || !ps.isOpen[i2][kk] {
				continue
			}
			if conflict(kk, i, i2) && cs.dists[i2] < bestD {
				bestI, bestD = i2, cs.dists[i2]
			}
		}
		if bestI < 0 {
			// Maximality guarantees a selected neighbor exists; fall back to
			// the nearest selected facility of the same type to stay feasible
			// even under numerical ties.
			for i2 := 0; i2 < m; i2++ {
				if selected[i2][kk] && ps.isOpen[i2][kk] && cs.dists[i2] < bestD {
					bestI, bestD = i2, cs.dists[i2]
				}
			}
		}
		cs.assign = Assignment{Facility: bestI, K: kk, Dist: bestD}
		o.connCost += bestD
	}
}

// TotalCost returns leasing plus connection cost accumulated so far.
func (o *Online) TotalCost() float64 { return o.store.TotalCost() + o.connCost }

// LeaseCost returns the leasing part of the cost.
func (o *Online) LeaseCost() float64 { return o.store.TotalCost() }

// ConnectionCost returns the connection part of the cost.
func (o *Online) ConnectionCost() float64 { return o.connCost }

// DualTotal returns the sum of the client caps α̂_j, the dual objective of
// Lemma 4.1 (TotalCost <= (3+K) * DualTotal).
func (o *Online) DualTotal() float64 { return o.dualSum }

// Solution returns the bought facility leases and per-client assignments
// (in arrival order, including clients archived by round resets) for
// verification.
func (o *Online) Solution() ([]FacilityLease, []Assignment) {
	var leases []FacilityLease
	for _, il := range o.store.Leases() {
		leases = append(leases, FacilityLease{Facility: il.Item, K: il.K, Start: il.Start})
	}
	assigns := make([]Assignment, 0, len(o.archived)+len(o.clients))
	for _, cs := range o.archived {
		assigns = append(assigns, cs.assign)
	}
	for _, cs := range o.clients {
		assigns = append(assigns, cs.assign)
	}
	return leases, assigns
}

func mat(r, c int) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		out[i] = make([]float64, c)
	}
	return out
}

func matB(r, c int) [][]bool {
	out := make([][]bool, r)
	for i := range out {
		out[i] = make([]bool, c)
	}
	return out
}
