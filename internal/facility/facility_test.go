package facility

import (
	"math"
	"math/rand"
	"testing"

	"leasing/internal/lease"
	"leasing/internal/metric"
	"leasing/internal/workload"
)

func facConfig() *lease.Config {
	return lease.MustConfig(
		lease.Type{Length: 1, Cost: 2},
		lease.Type{Length: 4, Cost: 5},
	)
}

func TestNewInstanceValidation(t *testing.T) {
	cfg := facConfig()
	sites := []metric.Point{{X: 0, Y: 0}}
	if _, err := NewInstance(lease.MustConfig(lease.Type{Length: 3, Cost: 1}), sites, [][]float64{{1}}, nil); err == nil {
		t.Error("non-interval config accepted")
	}
	if _, err := NewInstance(cfg, nil, nil, nil); err == nil {
		t.Error("no sites accepted")
	}
	if _, err := NewInstance(cfg, sites, [][]float64{{1, 2}, {3, 4}}, nil); err == nil {
		t.Error("cost row count mismatch accepted")
	}
	if _, err := NewInstance(cfg, sites, [][]float64{{1}}, nil); err == nil {
		t.Error("short cost row accepted")
	}
	if _, err := NewInstance(cfg, sites, [][]float64{{1, 0}}, nil); err == nil {
		t.Error("zero cost accepted")
	}
	if _, err := NewInstance(cfg, sites, [][]float64{{1, 2}}, nil); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestSingleClientSingleFacility(t *testing.T) {
	cfg := facConfig()
	inst, err := NewInstance(cfg,
		[]metric.Point{{X: 0, Y: 0}},
		[][]float64{{2, 5}},
		[][]metric.Point{{{X: 3, Y: 0}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewOnline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	// The facility must open with the cheaper type (potential reaches
	// 3 + 2 = 5 for type 0 before 3 + 5 = 8 for type 1), and the client
	// connects at distance 3: total = 2 + 3 = 5.
	if math.Abs(alg.TotalCost()-5) > 1e-6 {
		t.Errorf("total = %v, want 5", alg.TotalCost())
	}
	leases, assigns := alg.Solution()
	cost, err := VerifySolution(inst, leases, assigns)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-alg.TotalCost()) > 1e-6 {
		t.Errorf("verified cost %v != reported %v", cost, alg.TotalCost())
	}
	if math.Abs(alg.DualTotal()-5) > 1e-6 {
		t.Errorf("dual = %v, want 5 (alpha-hat = 5)", alg.DualTotal())
	}
}

func TestColocatedClientsShareOneFacility(t *testing.T) {
	cfg := facConfig()
	pts := make([]metric.Point, 6)
	for i := range pts {
		pts[i] = metric.Point{X: 1, Y: 1}
	}
	inst, err := NewInstance(cfg,
		[]metric.Point{{X: 1, Y: 1}, {X: 50, Y: 50}},
		[][]float64{{2, 5}, {2, 5}},
		[][]metric.Point{pts},
	)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewOnline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	// All clients sit on facility 0: open it once (cost 2), zero connection.
	if math.Abs(alg.TotalCost()-2) > 1e-6 {
		t.Errorf("total = %v, want 2", alg.TotalCost())
	}
	if alg.ConnectionCost() > 1e-9 {
		t.Errorf("connection cost = %v, want 0", alg.ConnectionCost())
	}
}

func TestLeaseReuseAcrossSteps(t *testing.T) {
	// A client at the same spot in 4 consecutive steps: with a length-4
	// lease costing 5 vs 4 daily leases costing 8, the algorithm should
	// not exceed the cost of the naive daily strategy, and the long-lease
	// OPT is 5.
	cfg := facConfig()
	batches := make([][]metric.Point, 4)
	for tstep := range batches {
		batches[tstep] = []metric.Point{{X: 0, Y: 0}}
	}
	inst, err := NewInstance(cfg, []metric.Point{{X: 0, Y: 0}}, [][]float64{{2, 5}}, batches)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewOnline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	leases, assigns := alg.Solution()
	if _, err := VerifySolution(inst, leases, assigns); err != nil {
		t.Fatal(err)
	}
	opt, err := Optimal(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Exact || math.Abs(opt.Cost-5) > 1e-6 {
		t.Errorf("OPT = %+v, want exact 5 (one long lease)", opt)
	}
	if alg.TotalCost() < opt.Cost-1e-6 {
		t.Errorf("online %v below OPT %v", alg.TotalCost(), opt.Cost)
	}
}

func TestOnlineFeasibleAndBoundedOnRandomInstances(t *testing.T) {
	cfg := facConfig()
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst, err := RandomInstance(rng, cfg, GenParams{
			Sites: 3, Steps: 6, Pattern: workload.PatternConstant,
			Base: 2, MaxPerStep: 2, WorldSize: 20, CostSpread: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		alg, err := NewOnline(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		leases, assigns := alg.Solution()
		cost, err := VerifySolution(inst, leases, assigns)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(cost-alg.TotalCost()) > 1e-6 {
			t.Fatalf("seed %d: verified %v != reported %v", seed, cost, alg.TotalCost())
		}
		// Lemma 4.1: cost <= (3+K) * dual.
		bound := float64(3+cfg.K()) * alg.DualTotal()
		if alg.TotalCost() > bound+1e-6 {
			t.Errorf("seed %d: cost %v exceeds (3+K)*dual = %v", seed, alg.TotalCost(), bound)
		}
		opt, err := Optimal(inst, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !opt.Exact {
			t.Logf("seed %d: OPT not proven (bound %v)", seed, opt.Lower)
			continue
		}
		if alg.TotalCost() < opt.Cost-1e-6 {
			t.Errorf("seed %d: online %v below OPT %v", seed, alg.TotalCost(), opt.Cost)
		}
		// Theorem 4.5 with the Lemma 2.6 transfer: 4*(3+K)*H_lmax. Measured
		// runs should sit far below; assert the theorem bound holds.
		h := workload.HSeries(inst.BatchCounts())
		if h < 1 {
			h = 1
		}
		if ratio := alg.TotalCost() / opt.Cost; ratio > 4*float64(3+cfg.K())*h+1e-6 {
			t.Errorf("seed %d: ratio %v above theorem bound", seed, ratio)
		}
	}
}

func TestNaiveBaselines(t *testing.T) {
	cfg := facConfig()
	rng := rand.New(rand.NewSource(9))
	inst, err := RandomInstance(rng, cfg, GenParams{
		Sites: 3, Steps: 8, Pattern: workload.PatternConstant,
		Base: 2, MaxPerStep: 2, WorldSize: 30, CostSpread: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	daily, dl, da, err := RentDaily(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySolution(inst, dl, da); err != nil {
		t.Errorf("RentDaily infeasible: %v", err)
	}
	long, ll, la, err := BuyLongest(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySolution(inst, ll, la); err != nil {
		t.Errorf("BuyLongest infeasible: %v", err)
	}
	if daily <= 0 || long <= 0 {
		t.Error("baseline costs must be positive")
	}
	opt, err := Optimal(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Exact {
		if daily < opt.Cost-1e-6 || long < opt.Cost-1e-6 {
			t.Errorf("baseline beat OPT: daily %v long %v opt %v", daily, long, opt.Cost)
		}
	}
}

func TestMISOrderAblationRuns(t *testing.T) {
	cfg := facConfig()
	rng := rand.New(rand.NewSource(4))
	inst, err := RandomInstance(rng, cfg, GenParams{
		Sites: 4, Steps: 5, Pattern: workload.PatternConstant,
		Base: 2, MaxPerStep: 3, WorldSize: 25, CostSpread: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []MISOrder{ByOpeningTime, ByIndex} {
		alg, err := NewOnline(inst, Options{MISOrder: order})
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Run(); err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		leases, assigns := alg.Solution()
		if _, err := VerifySolution(inst, leases, assigns); err != nil {
			t.Errorf("order %d infeasible: %v", order, err)
		}
	}
	if _, err := NewOnline(inst, Options{MISOrder: MISOrder(42)}); err == nil {
		t.Error("unknown MIS order accepted")
	}
}

func TestResetEachRoundStaysFeasible(t *testing.T) {
	cfg := facConfig() // l_max = 4, so 12 steps span 3 rounds
	rng := rand.New(rand.NewSource(77))
	inst, err := RandomInstance(rng, cfg, GenParams{
		Sites: 3, Steps: 12, Pattern: workload.PatternConstant,
		Base: 2, MaxPerStep: 2, WorldSize: 25, CostSpread: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewOnline(inst, Options{ResetEachRound: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	leases, assigns := alg.Solution()
	if len(assigns) != inst.NumClients() {
		t.Fatalf("got %d assignments for %d clients (archives lost?)", len(assigns), inst.NumClients())
	}
	cost, err := VerifySolution(inst, leases, assigns)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-alg.TotalCost()) > 1e-6 {
		t.Errorf("verified %v != reported %v", cost, alg.TotalCost())
	}
	// Dual-fitting bound still holds per round.
	if alg.TotalCost() > float64(3+cfg.K())*alg.DualTotal()+1e-6 {
		t.Errorf("cost %v exceeds (3+K)*dual %v under round reset", alg.TotalCost(), float64(3+cfg.K())*alg.DualTotal())
	}
}

func TestStepOrderEnforced(t *testing.T) {
	cfg := facConfig()
	inst, _ := NewInstance(cfg, []metric.Point{{}}, [][]float64{{2, 5}}, nil)
	alg, err := NewOnline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Step(3, []metric.Point{{X: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := alg.Step(2, []metric.Point{{X: 1}}); err == nil {
		t.Error("step regression accepted")
	}
	if err := alg.Step(9, nil); err != nil {
		t.Errorf("empty batch errored: %v", err)
	}
}

func TestInstanceHelpers(t *testing.T) {
	cfg := facConfig()
	inst, _ := NewInstance(cfg, []metric.Point{{}}, [][]float64{{2, 5}},
		[][]metric.Point{{{X: 1}}, {}, {{X: 2}, {X: 3}}})
	if inst.NumClients() != 3 {
		t.Errorf("NumClients = %d, want 3", inst.NumClients())
	}
	if inst.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", inst.Steps())
	}
	cl := inst.Clients()
	if len(cl) != 3 || cl[0].Arrived != 0 || cl[2].Arrived != 2 {
		t.Errorf("Clients() = %+v", cl)
	}
	bc := inst.BatchCounts()
	if len(bc) != 3 || bc[0] != 1 || bc[1] != 0 || bc[2] != 2 {
		t.Errorf("BatchCounts() = %v", bc)
	}
}

func TestVerifySolutionRejects(t *testing.T) {
	cfg := facConfig()
	inst, _ := NewInstance(cfg, []metric.Point{{}}, [][]float64{{2, 5}},
		[][]metric.Point{{{X: 1}}})
	// Wrong assignment count.
	if _, err := VerifySolution(inst, nil, nil); err == nil {
		t.Error("missing assignments accepted")
	}
	// Assignment without covering lease.
	if _, err := VerifySolution(inst, nil, []Assignment{{Facility: 0, K: 0}}); err == nil {
		t.Error("uncovered assignment accepted")
	}
	// Out-of-range lease.
	if _, err := VerifySolution(inst, []FacilityLease{{Facility: 7, K: 0, Start: 0}}, []Assignment{{Facility: 0, K: 0}}); err == nil {
		t.Error("bad lease accepted")
	}
	// Duplicate lease.
	dup := []FacilityLease{{Facility: 0, K: 0, Start: 0}, {Facility: 0, K: 0, Start: 0}}
	if _, err := VerifySolution(inst, dup, []Assignment{{Facility: 0, K: 0}}); err == nil {
		t.Error("duplicate lease accepted")
	}
	// Valid.
	ok := []FacilityLease{{Facility: 0, K: 0, Start: 0}}
	cost, err := VerifySolution(inst, ok, []Assignment{{Facility: 0, K: 0, Dist: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-3) > 1e-9 { // lease 2 + distance 1
		t.Errorf("cost = %v, want 3", cost)
	}
}

func TestMetricGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fs := metric.RandomPoints(rng, 5, 50)
	cs, err := metric.ClusteredPoints(rng, fs, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !metric.CheckQuadrilateral(fs, cs) {
		t.Error("Euclidean points violate quadrilateral inequality")
	}
	if _, err := metric.ClusteredPoints(rng, nil, 5, 1); err == nil {
		t.Error("no centers accepted")
	}
	g := metric.GridPoints(10, 2)
	if len(g) != 10 {
		t.Errorf("GridPoints(10) returned %d points", len(g))
	}
	if metric.Dist(metric.Point{X: 0, Y: 0}, metric.Point{X: 3, Y: 4}) != 5 {
		t.Error("Dist(3-4-5) != 5")
	}
}
