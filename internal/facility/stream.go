package facility

import (
	"fmt"

	"leasing/internal/core"
	"leasing/internal/stream"
)

// Leaser adapts the facility-leasing Online algorithm to the unified
// stream protocol. Items are site indices; each Batch payload is one
// Step, and new client connections surface as Decision assignments.
type Leaser struct {
	alg      *Online
	seen     map[core.ItemLease]struct{}
	assigned int
	lastCost float64
	leases   int
}

var _ stream.Leaser = (*Leaser)(nil)

// NewLeaser wraps a facility-leasing algorithm as a stream.Leaser.
func NewLeaser(alg *Online) *Leaser {
	return &Leaser{alg: alg, seen: make(map[core.ItemLease]struct{})}
}

// Observe implements stream.Leaser. It accepts Batch payloads (an empty
// batch is a valid empty step).
func (l *Leaser) Observe(ev stream.Event) (stream.Decision, error) {
	p, ok := ev.Payload.(stream.Batch)
	if !ok {
		return stream.Decision{}, fmt.Errorf("facility: unsupported payload %T", ev.Payload)
	}
	if err := l.alg.Step(ev.Time, p.Clients); err != nil {
		return stream.Decision{}, err
	}
	d := stream.Decision{Cost: l.alg.TotalCost() - l.lastCost}
	l.lastCost = l.alg.TotalCost()
	// The store only grows, so an unchanged count means no new triples
	// and the O(L log L) enumeration can be skipped.
	if n := l.alg.store.Count(); n != l.leases {
		l.leases = n
		for _, il := range l.alg.store.Leases() {
			if _, ok := l.seen[il]; ok {
				continue
			}
			l.seen[il] = struct{}{}
			d.Leases = append(d.Leases, il)
		}
		stream.SortItemLeases(d.Leases)
	}
	// Clients are only ever appended (round resets preserve arrival
	// order across archived+live), so the new assignments are the tail.
	if len(p.Clients) > 0 {
		assigns := l.assignments()
		d.Assignments = assigns[l.assigned:]
		l.assigned = len(assigns)
	}
	return d, nil
}

// Cost implements stream.Leaser, splitting leasing from connection cost.
func (l *Leaser) Cost() stream.CostBreakdown {
	return stream.CostBreakdown{Lease: l.alg.LeaseCost(), Service: l.alg.ConnectionCost()}
}

// Snapshot implements stream.Leaser.
func (l *Leaser) Snapshot() stream.Solution {
	sol := stream.Solution{
		Leases:      l.alg.store.Leases(),
		Assignments: l.assignments(),
	}
	stream.SortItemLeases(sol.Leases)
	return sol
}

func (l *Leaser) assignments() []stream.Assignment {
	_, native := l.alg.Solution()
	out := make([]stream.Assignment, len(native))
	for i, a := range native {
		out[i] = stream.Assignment{Item: a.Facility, K: a.K, Cost: a.Dist}
	}
	return out
}
