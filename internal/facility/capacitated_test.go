package facility

import (
	"math"
	"math/rand"
	"testing"

	"leasing/internal/lease"
	"leasing/internal/metric"
	"leasing/internal/workload"
)

func capInstance(t *testing.T, seed int64, base int) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst, err := RandomInstance(rng, facConfig(), GenParams{
		Sites: 3, Steps: 5, Pattern: workload.PatternConstant,
		Base: base, MaxPerStep: base, WorldSize: 25, CostSpread: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestCapacitatedGreedyRespectsCapacity(t *testing.T) {
	// 4 clients per step over 3 sites: capacity >= 2 keeps it feasible.
	inst := capInstance(t, 1, 4)
	if _, _, _, err := CapacitatedGreedy(inst, 1, ShortestType); err == nil {
		t.Error("capacity 1 with 4 clients per step over 3 sites must be infeasible")
	}
	for _, capU := range []int{2, 3, 4} {
		for _, pol := range []TypePolicy{ShortestType, BestRateType} {
			cost, leases, assigns, err := CapacitatedGreedy(inst, capU, pol)
			if err != nil {
				t.Fatalf("cap=%d pol=%d: %v", capU, pol, err)
			}
			vCost, err := VerifyCapacitated(inst, leases, assigns, capU)
			if err != nil {
				t.Fatalf("cap=%d pol=%d: %v", capU, pol, err)
			}
			if math.Abs(cost-vCost) > 1e-6 {
				t.Errorf("cap=%d pol=%d: cost %v != verified %v", capU, pol, cost, vCost)
			}
		}
	}
	if _, _, _, err := CapacitatedGreedy(inst, 0, ShortestType); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, _, _, err := CapacitatedGreedy(inst, 1, TypePolicy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestVerifyCapacitatedRejectsOverload(t *testing.T) {
	cfg := facConfig()
	// Two clients on one facility in one step with capacity 1.
	inst, err := NewInstance(cfg, []metric.Point{{}}, [][]float64{{2, 5}},
		[][]metric.Point{{{X: 1}, {X: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	leases := []FacilityLease{{Facility: 0, K: 0, Start: 0}}
	assigns := []Assignment{{Facility: 0, K: 0, Dist: 1}, {Facility: 0, K: 0, Dist: 2}}
	if _, err := VerifyCapacitated(inst, leases, assigns, 1); err == nil {
		t.Error("overloaded facility accepted")
	}
	if _, err := VerifyCapacitated(inst, leases, assigns, 2); err != nil {
		t.Errorf("capacity-2 rejected a feasible solution: %v", err)
	}
}

func TestOptimalCapacitatedMonotoneInCapacity(t *testing.T) {
	inst := capInstance(t, 2, 3)
	var prev float64 = math.Inf(1)
	for _, capU := range []int{1, 2, 3} {
		res, err := OptimalCapacitated(inst, capU, 0)
		if err != nil {
			t.Fatalf("cap=%d: %v", capU, err)
		}
		if !res.Exact {
			t.Skipf("cap=%d: search truncated, skipping monotonicity check", capU)
		}
		if res.Cost > prev+1e-6 {
			t.Errorf("capacitated OPT increased with capacity: cap=%d cost=%v prev=%v", capU, res.Cost, prev)
		}
		prev = res.Cost
	}
	// Unconstrained capacity equals the uncapacitated OPT.
	unc, err := Optimal(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := OptimalCapacitated(inst, inst.NumClients(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if unc.Exact && loose.Exact && math.Abs(unc.Cost-loose.Cost) > 1e-6 {
		t.Errorf("loose capacity OPT %v != uncapacitated OPT %v", loose.Cost, unc.Cost)
	}
	if _, err := OptimalCapacitated(inst, 0, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestCapacityOneForcesSpread(t *testing.T) {
	cfg := lease.MustConfig(lease.Type{Length: 4, Cost: 2})
	// Two co-located facilities, three co-located clients in one step.
	// Capacity 1 forces at least 3 facility-uses but only 2 sites exist:
	// infeasible; with capacity 2 it is feasible with both sites leased.
	sites := []metric.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	batch := [][]metric.Point{{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 0, Y: 0}}}
	inst, err := NewInstance(cfg, sites, [][]float64{{2}, {2}}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimalCapacitated(inst, 1, 0); err == nil {
		t.Error("infeasible capacity-1 instance solved")
	}
	res, err := OptimalCapacitated(inst, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both facilities leased: 2 + 2 = 4 plus one unit of connection.
	if !res.Exact || math.Abs(res.Cost-5) > 1e-6 {
		t.Errorf("capacity-2 OPT = %+v, want exact 5", res)
	}
	gCost, leases, assigns, err := CapacitatedGreedy(inst, 2, ShortestType)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyCapacitated(inst, leases, assigns, 2); err != nil {
		t.Fatal(err)
	}
	if gCost < res.Cost-1e-6 {
		t.Errorf("greedy %v below OPT %v", gCost, res.Cost)
	}
}

func TestCapacitatedGreedyAboveCapacitatedOPT(t *testing.T) {
	inst := capInstance(t, 3, 3)
	res, err := OptimalCapacitated(inst, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Skip("OPT not proven")
	}
	for _, pol := range []TypePolicy{ShortestType, BestRateType} {
		cost, _, _, err := CapacitatedGreedy(inst, 2, pol)
		if err != nil {
			t.Fatal(err)
		}
		if cost < res.Cost-1e-6 {
			t.Errorf("policy %d: greedy %v below OPT %v", pol, cost, res.Cost)
		}
	}
}
