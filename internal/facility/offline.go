package facility

import (
	"fmt"
	"math"

	"leasing/internal/core"
	"leasing/internal/ilp"
	"leasing/internal/lease"
	"leasing/internal/lp"
	"leasing/internal/metric"
)

// OptimalResult is the outcome of the exact offline computation.
type OptimalResult struct {
	Cost  float64
	Exact bool
	Lower float64
}

// Optimal computes the exact offline optimum (lease plus connection cost)
// by branch and bound. One binary variable per aligned candidate facility
// lease; one continuous assignment variable per (client, covering lease)
// pair (integral automatically once the lease variables are fixed, since
// each client then simply takes its cheapest open lease). nodeLimit <= 0
// uses the solver default.
func Optimal(inst *Instance, nodeLimit int) (*OptimalResult, error) {
	clients := inst.Clients()
	if len(clients) == 0 {
		return &OptimalResult{Cost: 0, Exact: true}, nil
	}
	m := len(inst.Sites)
	k := inst.Cfg.K()

	// Candidate leases: aligned windows covering steps with arrivals.
	candIdx := map[FacilityLease]int{}
	var cands []FacilityLease
	for t, b := range inst.Batches {
		if len(b) == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			for kk := 0; kk < k; kk++ {
				fl := FacilityLease{Facility: i, K: kk, Start: inst.Cfg.AlignedStart(kk, int64(t))}
				if _, ok := candIdx[fl]; !ok {
					candIdx[fl] = len(cands)
					cands = append(cands, fl)
				}
			}
		}
	}

	// Variable layout: lease vars, then one assignment var per (client,
	// covering candidate).
	type yKey struct {
		client int
		cand   int
	}
	yIdx := map[yKey]int{}
	next := len(cands)
	var yCosts []float64
	for j, cl := range clients {
		for ci, fl := range cands {
			if inst.Cfg.Covers(lease.Lease{K: fl.K, Start: fl.Start}, cl.Arrived) {
				yIdx[yKey{j, ci}] = next
				yCosts = append(yCosts, metric.Dist(inst.Sites[fl.Facility], cl.Pos))
				next++
			}
		}
	}

	costs := make([]float64, next)
	for ci, fl := range cands {
		costs[ci] = inst.FacCosts[fl.Facility][fl.K]
	}
	copy(costs[len(cands):], yCosts)

	prob := ilp.NewBinaryMinimize(costs)
	for v := len(cands); v < next; v++ {
		if err := prob.SetContinuous(v); err != nil {
			return nil, err
		}
	}
	for j := range clients {
		row := map[int]float64{}
		for ci := range cands {
			if y, ok := yIdx[yKey{j, ci}]; ok {
				row[y] = 1
				// y_{j,c} <= x_c.
				if err := prob.Add(map[int]float64{ci: 1, y: -1}, lp.GE, 0); err != nil {
					return nil, err
				}
			}
		}
		if len(row) == 0 {
			return nil, fmt.Errorf("facility: client %d has no covering candidate", j)
		}
		if err := prob.Add(row, lp.GE, 1); err != nil {
			return nil, err
		}
	}

	res, err := prob.Solve(ilp.Options{NodeLimit: nodeLimit})
	if err != nil {
		return nil, fmt.Errorf("facility: offline ILP: %w", err)
	}
	return &OptimalResult{Cost: res.Objective, Exact: res.Proven, Lower: res.LowerBound}, nil
}

// RentDaily is the naive baseline that never commits: each client is served
// by the nearest facility with a shortest-type lease bought on demand. It
// returns the total cost together with the solution for verification.
func RentDaily(inst *Instance) (float64, []FacilityLease, []Assignment, error) {
	return naive(inst, 0)
}

// BuyLongest is the opposite naive baseline: the first time a facility is
// needed it is leased with the longest type.
func BuyLongest(inst *Instance) (float64, []FacilityLease, []Assignment, error) {
	return naive(inst, inst.Cfg.K()-1)
}

func naive(inst *Instance, kk int) (float64, []FacilityLease, []Assignment, error) {
	store, err := core.NewItemStore(inst.Cfg, inst.FacCosts)
	if err != nil {
		return 0, nil, nil, err
	}
	var (
		assigns  []Assignment
		connCost float64
	)
	for t, batch := range inst.Batches {
		for _, p := range batch {
			best, bestD := -1, math.Inf(1)
			for i, s := range inst.Sites {
				if d := metric.Dist(s, p); d < bestD {
					best, bestD = i, d
				}
			}
			il := core.ItemLease{Item: best, K: kk, Start: inst.Cfg.AlignedStart(kk, int64(t))}
			if _, err := store.Buy(il); err != nil {
				return 0, nil, nil, err
			}
			assigns = append(assigns, Assignment{Facility: best, K: kk, Dist: bestD})
			connCost += bestD
		}
	}
	var leases []FacilityLease
	for _, il := range store.Leases() {
		leases = append(leases, FacilityLease{Facility: il.Item, K: il.K, Start: il.Start})
	}
	return store.TotalCost() + connCost, leases, assigns, nil
}
