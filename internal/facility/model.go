// Package facility implements Chapter 4 of the thesis: FacilityLeasing.
// Clients arrive over time in batches and must each be connected, at their
// arrival step, to a facility holding an active lease; leasing facility i
// with type k costs c_ik, connecting client j to facility i costs their
// metric distance.
//
// The package provides the two-phase primal-dual online algorithm of
// Section 4.3 (continuous bid raising with invariant INV1, per-type
// conflict graphs and maximal independent sets, dual fitting per
// Theorem 4.5), an exact offline ILP optimum, naive online baselines for
// the cloud-subcontractor narrative, and instance generators for the
// arrival patterns of Corollary 4.7.
package facility

import (
	"errors"
	"fmt"

	"leasing/internal/lease"
	"leasing/internal/metric"
)

// Instance is a facility-leasing input: facility sites with per-type lease
// costs, and a timeline of client batches (Batches[t] arrives at step t).
type Instance struct {
	Cfg      *lease.Config
	Sites    []metric.Point
	FacCosts [][]float64 // FacCosts[i][k] = c_ik
	Batches  [][]metric.Point
}

// NewInstance validates dimensions and costs.
func NewInstance(cfg *lease.Config, sites []metric.Point, facCosts [][]float64, batches [][]metric.Point) (*Instance, error) {
	if !cfg.IsIntervalModel() {
		return nil, errors.New("facility: configuration is not in the interval model")
	}
	if len(sites) == 0 {
		return nil, errors.New("facility: need at least one facility site")
	}
	if len(facCosts) != len(sites) {
		return nil, fmt.Errorf("facility: %d cost rows for %d sites", len(facCosts), len(sites))
	}
	for i, row := range facCosts {
		if len(row) != cfg.K() {
			return nil, fmt.Errorf("facility: cost row %d has %d entries, want %d", i, len(row), cfg.K())
		}
		for k, c := range row {
			if !(c > 0) {
				return nil, fmt.Errorf("facility: cost[%d][%d] = %v, want > 0", i, k, c)
			}
		}
	}
	return &Instance{Cfg: cfg, Sites: sites, FacCosts: facCosts, Batches: batches}, nil
}

// NumClients returns the total number of clients across all batches.
func (in *Instance) NumClients() int {
	n := 0
	for _, b := range in.Batches {
		n += len(b)
	}
	return n
}

// Steps returns the number of time steps.
func (in *Instance) Steps() int { return len(in.Batches) }

// Client is a flattened client with its arrival step.
type Client struct {
	Arrived int64
	Pos     metric.Point
}

// Clients returns the flattened clients in arrival order.
func (in *Instance) Clients() []Client {
	out := make([]Client, 0, in.NumClients())
	for t, b := range in.Batches {
		for _, p := range b {
			out = append(out, Client{Arrived: int64(t), Pos: p})
		}
	}
	return out
}

// BatchCounts returns |D_t| for each step, the input of the H-series of
// Theorem 4.5.
func (in *Instance) BatchCounts() []int {
	out := make([]int, len(in.Batches))
	for t, b := range in.Batches {
		out[t] = len(b)
	}
	return out
}

// Assignment records where one client was connected.
type Assignment struct {
	Facility int
	K        int
	Dist     float64
}

// VerifySolution checks that every client is assigned to a facility whose
// bought lease covers the client's arrival step, and recomputes the total
// cost (lease costs of `leases` plus connection distances). It is the
// feasibility oracle shared by tests and the experiment harness.
func VerifySolution(inst *Instance, leases []FacilityLease, assigns []Assignment) (float64, error) {
	clients := inst.Clients()
	if len(assigns) != len(clients) {
		return 0, fmt.Errorf("facility: %d assignments for %d clients", len(assigns), len(clients))
	}
	owned := make(map[FacilityLease]struct{}, len(leases))
	var cost float64
	for _, fl := range leases {
		if fl.Facility < 0 || fl.Facility >= len(inst.Sites) || fl.K < 0 || fl.K >= inst.Cfg.K() {
			return 0, fmt.Errorf("facility: lease %+v out of range", fl)
		}
		if _, dup := owned[fl]; dup {
			return 0, fmt.Errorf("facility: duplicate lease %+v", fl)
		}
		owned[fl] = struct{}{}
		cost += inst.FacCosts[fl.Facility][fl.K]
	}
	for j, a := range assigns {
		cl := clients[j]
		fl := FacilityLease{Facility: a.Facility, K: a.K, Start: inst.Cfg.AlignedStart(a.K, cl.Arrived)}
		if _, ok := owned[fl]; !ok {
			return 0, fmt.Errorf("facility: client %d assigned to %+v with no covering lease", j, a)
		}
		d := metric.Dist(inst.Sites[a.Facility], cl.Pos)
		cost += d
	}
	return cost, nil
}

// FacilityLease is the triple (i, k, t): facility Facility leased with type
// K starting at Start.
type FacilityLease struct {
	Facility int
	K        int
	Start    int64
}
