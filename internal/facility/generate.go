package facility

import (
	"fmt"
	"math/rand"

	"leasing/internal/lease"
	"leasing/internal/metric"
	"leasing/internal/workload"
)

// GenParams configures RandomInstance.
type GenParams struct {
	Sites         int                     // number of facility sites
	Steps         int                     // time steps
	Pattern       workload.ArrivalPattern // batch-size pattern (Cor 4.7)
	Base          int                     // base batch size
	MaxPerStep    int                     // batch size cap
	WorldSize     float64                 // side of the square world
	ClusterSpread float64                 // client scatter around sites
	CostSpread    float64                 // facility cost jitter in [0, spread)
}

// RandomInstance builds a facility-leasing instance: uniformly placed
// sites, per-site lease costs jittered around the configuration's type
// costs, and client batches clustered near the sites with batch sizes
// following the requested arrival pattern.
func RandomInstance(rng *rand.Rand, cfg *lease.Config, p GenParams) (*Instance, error) {
	if p.Sites < 1 {
		return nil, fmt.Errorf("facility: need at least one site, got %d", p.Sites)
	}
	if p.WorldSize <= 0 {
		p.WorldSize = 100
	}
	if p.ClusterSpread <= 0 {
		p.ClusterSpread = p.WorldSize / 10
	}
	sites := metric.RandomPoints(rng, p.Sites, p.WorldSize)
	counts, err := workload.BatchSizes(p.Pattern, p.Steps, p.Base, p.MaxPerStep)
	if err != nil {
		return nil, err
	}
	batches := make([][]metric.Point, p.Steps)
	for t, c := range counts {
		pts, err := metric.ClusteredPoints(rng, sites, c, p.ClusterSpread)
		if err != nil {
			return nil, err
		}
		batches[t] = pts
	}
	facCosts := make([][]float64, p.Sites)
	for i := range facCosts {
		row := make([]float64, cfg.K())
		f := 1 + rng.Float64()*p.CostSpread
		for k := range row {
			row[k] = cfg.Cost(k) * f
		}
		facCosts[i] = row
	}
	return NewInstance(cfg, sites, facCosts, batches)
}
