package facility

import (
	"fmt"
	"math"

	"leasing/internal/core"
	"leasing/internal/ilp"
	"leasing/internal/lease"
	"leasing/internal/lp"
	"leasing/internal/metric"
)

// The capacitated variant the Chapter 4 outlook proposes: a leased
// facility can serve at most `capacity` clients per time step (machines
// running bounded jobs). The thesis leaves the online side open; this
// file provides a greedy online heuristic and the exact capacitated
// offline optimum so the cost of capacity can be measured (experiment
// E19).

// TypePolicy selects which lease type the capacitated greedy buys when it
// must open a facility.
type TypePolicy int

// Type policies.
const (
	// ShortestType always buys the shortest lease (pure rental).
	ShortestType TypePolicy = iota + 1
	// BestRateType buys the type with the lowest per-step price,
	// committing to long leases under steady demand.
	BestRateType
)

// CapacitatedGreedy serves clients online under a per-step capacity: each
// client takes the cheapest option among (a) an active facility lease
// with spare capacity this step (connection cost only) and (b) leasing
// any facility according to the type policy (lease plus connection cost).
// It returns the total cost and the solution for verification.
func CapacitatedGreedy(inst *Instance, capacity int, policy TypePolicy) (float64, []FacilityLease, []Assignment, error) {
	if capacity < 1 {
		return 0, nil, nil, fmt.Errorf("facility: capacity %d < 1", capacity)
	}
	kChoice := make([]int, len(inst.Sites))
	switch policy {
	case ShortestType:
		// zero value of each entry is already type 0
	case BestRateType:
		for i := range kChoice {
			best := 0
			bestRate := inst.FacCosts[i][0] / float64(inst.Cfg.Length(0))
			for k := 1; k < inst.Cfg.K(); k++ {
				if r := inst.FacCosts[i][k] / float64(inst.Cfg.Length(k)); r < bestRate {
					best, bestRate = k, r
				}
			}
			kChoice[i] = best
		}
	default:
		return 0, nil, nil, fmt.Errorf("facility: unknown type policy %d", int(policy))
	}

	store, err := core.NewItemStore(inst.Cfg, inst.FacCosts)
	if err != nil {
		return 0, nil, nil, err
	}
	var (
		assigns  []Assignment
		connCost float64
	)
	for t, batch := range inst.Batches {
		used := make(map[int]int) // facility -> clients served this step
		for _, p := range batch {
			bestCost := math.Inf(1)
			bestI, bestK := -1, -1
			for i := range inst.Sites {
				d := metric.Dist(inst.Sites[i], p)
				// Option (a): an active lease of any type with spare room.
				if used[i] >= capacity {
					continue // the facility is saturated this step
				}
				for k := 0; k < inst.Cfg.K(); k++ {
					il := core.ItemLease{Item: i, K: k, Start: inst.Cfg.AlignedStart(k, int64(t))}
					if !store.Has(il) {
						continue
					}
					if d < bestCost {
						bestCost, bestI, bestK = d, i, k
					}
				}
				// Option (b): lease i with the policy type.
				k := kChoice[i]
				il := core.ItemLease{Item: i, K: k, Start: inst.Cfg.AlignedStart(k, int64(t))}
				if store.Has(il) {
					continue // already counted as option (a)
				}
				if c := d + inst.FacCosts[i][k]; c < bestCost {
					bestCost, bestI, bestK = c, i, k
				}
			}
			if bestI < 0 {
				return 0, nil, nil, fmt.Errorf("facility: no feasible capacitated option at step %d", t)
			}
			il := core.ItemLease{Item: bestI, K: bestK, Start: inst.Cfg.AlignedStart(bestK, int64(t))}
			if _, err := store.Buy(il); err != nil {
				return 0, nil, nil, err
			}
			used[bestI]++
			d := metric.Dist(inst.Sites[bestI], p)
			assigns = append(assigns, Assignment{Facility: bestI, K: bestK, Dist: d})
			connCost += d
		}
	}
	var leases []FacilityLease
	for _, il := range store.Leases() {
		leases = append(leases, FacilityLease{Facility: il.Item, K: il.K, Start: il.Start})
	}
	return store.TotalCost() + connCost, leases, assigns, nil
}

// VerifyCapacitated extends VerifySolution with the per-step capacity
// check: no facility may serve more than capacity clients in one step.
func VerifyCapacitated(inst *Instance, leases []FacilityLease, assigns []Assignment, capacity int) (float64, error) {
	cost, err := VerifySolution(inst, leases, assigns)
	if err != nil {
		return 0, err
	}
	clients := inst.Clients()
	type facStep struct {
		fac int
		t   int64
	}
	load := map[facStep]int{}
	for j, a := range assigns {
		key := facStep{a.Facility, clients[j].Arrived}
		load[key]++
		if load[key] > capacity {
			return 0, fmt.Errorf("facility: facility %d over capacity at step %d", a.Facility, clients[j].Arrived)
		}
	}
	return cost, nil
}

// OptimalCapacitated computes the exact capacitated offline optimum: the
// uncapacitated formulation plus, per (facility, arrival step), a row
// bounding the clients assigned through any covering lease by capacity.
// For fixed lease variables each assignment variable appears in one client
// row and one facility-step row, a transportation structure with integral
// vertices, so branching on leases alone remains exact.
func OptimalCapacitated(inst *Instance, capacity int, nodeLimit int) (*OptimalResult, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("facility: capacity %d < 1", capacity)
	}
	clients := inst.Clients()
	if len(clients) == 0 {
		return &OptimalResult{Cost: 0, Exact: true}, nil
	}
	m := len(inst.Sites)
	k := inst.Cfg.K()

	candIdx := map[FacilityLease]int{}
	var cands []FacilityLease
	for t, b := range inst.Batches {
		if len(b) == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			for kk := 0; kk < k; kk++ {
				fl := FacilityLease{Facility: i, K: kk, Start: inst.Cfg.AlignedStart(kk, int64(t))}
				if _, ok := candIdx[fl]; !ok {
					candIdx[fl] = len(cands)
					cands = append(cands, fl)
				}
			}
		}
	}

	type yKey struct{ client, cand int }
	yIdx := map[yKey]int{}
	next := len(cands)
	var yCosts []float64
	for j, cl := range clients {
		for ci, fl := range cands {
			if inst.Cfg.Covers(lease.Lease{K: fl.K, Start: fl.Start}, cl.Arrived) {
				yIdx[yKey{j, ci}] = next
				yCosts = append(yCosts, metric.Dist(inst.Sites[fl.Facility], cl.Pos))
				next++
			}
		}
	}
	costs := make([]float64, next)
	for ci, fl := range cands {
		costs[ci] = inst.FacCosts[fl.Facility][fl.K]
	}
	copy(costs[len(cands):], yCosts)

	prob := ilp.NewBinaryMinimize(costs)
	for v := len(cands); v < next; v++ {
		if err := prob.SetContinuous(v); err != nil {
			return nil, err
		}
	}
	for j := range clients {
		row := map[int]float64{}
		for ci := range cands {
			if y, ok := yIdx[yKey{j, ci}]; ok {
				row[y] = 1
				if err := prob.Add(map[int]float64{ci: 1, y: -1}, lp.GE, 0); err != nil {
					return nil, err
				}
			}
		}
		if len(row) == 0 {
			return nil, fmt.Errorf("facility: client %d has no covering candidate", j)
		}
		if err := prob.Add(row, lp.GE, 1); err != nil {
			return nil, err
		}
	}
	// Capacity rows: per facility and step, the step's clients assigned to
	// that facility (through any covering lease) fit in capacity.
	for t, b := range inst.Batches {
		if len(b) <= capacity {
			continue // cannot be violated at this step
		}
		for i := 0; i < m; i++ {
			row := map[int]float64{}
			for ci, fl := range cands {
				if fl.Facility != i || !inst.Cfg.Covers(lease.Lease{K: fl.K, Start: fl.Start}, int64(t)) {
					continue
				}
				for j, cl := range clients {
					if cl.Arrived != int64(t) {
						continue
					}
					if y, ok := yIdx[yKey{j, ci}]; ok {
						row[y] = 1
					}
				}
			}
			if len(row) > capacity {
				if err := prob.Add(row, lp.LE, float64(capacity)); err != nil {
					return nil, err
				}
			}
		}
	}

	res, err := prob.Solve(ilp.Options{NodeLimit: nodeLimit})
	if err != nil {
		return nil, fmt.Errorf("facility: capacitated ILP: %w", err)
	}
	return &OptimalResult{Cost: res.Objective, Exact: res.Proven, Lower: res.LowerBound}, nil
}
