package stats

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Reservoir is a bounded uniform sample of a latency stream (Vitter's
// algorithm R): it keeps an unbiased sample of fixed capacity no matter
// how many observations flow through, so a long load ramp can track
// percentiles without the measurement path itself growing an unbounded
// slice and distorting memory and GC. Exact count, min and max are
// tracked alongside the sample. Add is safe for concurrent use; a
// seeded source keeps a run's sample reproducible.
type Reservoir struct {
	mu     sync.Mutex
	rng    *rand.Rand
	sample []float64
	cap    int
	n      int64
	min    float64
	max    float64
}

// NewReservoir returns a reservoir keeping at most capacity samples,
// replacing uniformly with randomness from seed. Capacity must be >= 1;
// a few thousand samples hold percentile error under a percent.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{
		rng:    rand.New(rand.NewSource(seed)),
		sample: make([]float64, 0, capacity),
		cap:    capacity,
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Add observes one value.
func (r *Reservoir) Add(x float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	if x < r.min {
		r.min = x
	}
	if x > r.max {
		r.max = x
	}
	if len(r.sample) < r.cap {
		r.sample = append(r.sample, x)
		return
	}
	if j := r.rng.Int63n(r.n); j < int64(r.cap) {
		r.sample[j] = x
	}
}

// N reports how many values were observed (not how many are retained).
func (r *Reservoir) N() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Max reports the exact maximum observed, 0 when empty.
func (r *Reservoir) Max() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0
	}
	return r.max
}

// Min reports the exact minimum observed, 0 when empty.
func (r *Reservoir) Min() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Quantiles interpolates the given quantiles from one sorted copy of
// the retained sample (0 when empty). The exact observed maximum is
// substituted for q = 1, so the tail is never under-reported by
// sampling.
func (r *Reservoir) Quantiles(qs ...float64) []float64 {
	r.mu.Lock()
	sorted := append([]float64(nil), r.sample...)
	maxSeen, n := r.max, r.n
	r.mu.Unlock()
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		switch {
		case n == 0:
			out[i] = 0
		case q >= 1:
			out[i] = maxSeen
		default:
			pos := q * float64(len(sorted)-1)
			lo := int(math.Floor(pos))
			hi := int(math.Ceil(pos))
			if lo == hi {
				out[i] = sorted[lo]
			} else {
				frac := pos - float64(lo)
				out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
			}
		}
	}
	return out
}
