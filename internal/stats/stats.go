// Package stats provides the small statistics toolkit used by the
// experiment harness: streaming moment accumulation (Welford), summaries
// with confidence intervals, quantiles, and least-squares fits used to
// check the growth shape of measured competitive ratios (linear in K,
// logarithmic in K, and so on).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by operations that need at least one observation.
var ErrNoData = errors.New("stats: no data")

// Accumulator accumulates observations with Welford's online algorithm,
// giving numerically stable mean and variance without storing samples.
// The zero value is an empty accumulator ready for use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 if empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean (0 for n < 2).
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// Series collects per-index observations from the trial engine's worker
// pool: each slot is written by exactly one goroutine (the trial that owns
// the index), so no locking is needed, and aggregation walks the slots in
// index order, making every statistic independent of scheduling order.
// Unset slots are skipped.
type Series struct {
	vals []float64
	set  []bool
}

// NewSeries returns a Series with n unset slots.
func NewSeries(n int) *Series {
	return &Series{vals: make([]float64, n), set: make([]bool, n)}
}

// Set records the observation of slot i.
func (s *Series) Set(i int, v float64) {
	s.vals[i] = v
	s.set[i] = true
}

// Accumulate folds the set slots into an Accumulator in index order.
func (s *Series) Accumulate() Accumulator {
	var acc Accumulator
	for i, ok := range s.set {
		if ok {
			acc.Add(s.vals[i])
		}
	}
	return acc
}

// Mean returns the mean of the set slots (0 if none are set).
func (s *Series) Mean() float64 {
	acc := s.Accumulate()
	return acc.Mean()
}

// Summary is a value snapshot of distributional statistics over a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	CI95   float64
}

// Summarize computes a Summary of xs. It returns ErrNoData for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	p50, _ := Quantile(xs, 0.5)
	p90, _ := Quantile(xs, 0.9)
	return Summary{
		N:      acc.N(),
		Mean:   acc.Mean(),
		StdDev: acc.StdDev(),
		Min:    acc.Min(),
		Max:    acc.Max(),
		P50:    p50,
		P90:    p90,
		CI95:   acc.CI95(),
	}, nil
}

// String formats the summary compactly for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.3f ±%.3f (n=%d, max=%.3f)", s.Mean, s.CI95, s.N, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeometricMean returns the geometric mean of strictly positive xs.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean needs positive values, got %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Fit is a least-squares line fit y = Intercept + Slope*f(x) together with
// the coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y = a + b*x by ordinary least squares. It requires at
// least two points with distinct x.
func LinearFit(xs, ys []float64) (Fit, error) {
	return fitTransformed(xs, ys, func(x float64) (float64, error) { return x, nil })
}

// LogFit fits y = a + b*ln(x), the shape of an O(log K) bound. All xs must
// be positive.
func LogFit(xs, ys []float64) (Fit, error) {
	return fitTransformed(xs, ys, func(x float64) (float64, error) {
		if x <= 0 {
			return 0, fmt.Errorf("stats: log fit needs positive x, got %v", x)
		}
		return math.Log(x), nil
	})
}

func fitTransformed(xs, ys []float64, f func(float64) (float64, error)) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: fit length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, ErrNoData
	}
	tx := make([]float64, len(xs))
	for i, x := range xs {
		v, err := f(x)
		if err != nil {
			return Fit{}, err
		}
		tx[i] = v
	}
	n := float64(len(tx))
	var sx, sy, sxx, sxy float64
	for i := range tx {
		sx += tx[i]
		sy += ys[i]
		sxx += tx[i] * tx[i]
		sxy += tx[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return Fit{}, errors.New("stats: degenerate fit (all x equal)")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	// R^2.
	my := sy / n
	var ssTot, ssRes float64
	for i := range tx {
		pred := a + b*tx[i]
		ssTot += (ys[i] - my) * (ys[i] - my)
		ssRes += (ys[i] - pred) * (ys[i] - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: b, Intercept: a, R2: r2}, nil
}

// MaxRatio returns max(num[i]/den[i]) and its index; pairs with den <= 0
// are skipped. It returns ErrNoData if no valid pair exists.
func MaxRatio(num, den []float64) (float64, int, error) {
	if len(num) != len(den) {
		return 0, -1, fmt.Errorf("stats: ratio length mismatch %d vs %d", len(num), len(den))
	}
	best, idx := math.Inf(-1), -1
	for i := range num {
		if den[i] <= 0 {
			continue
		}
		if r := num[i] / den[i]; r > best {
			best, idx = r, i
		}
	}
	if idx < 0 {
		return 0, -1, ErrNoData
	}
	return best, idx, nil
}
