package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestReservoirBounded: the retained sample never outgrows its
// capacity, whatever flows through — the property that keeps long load
// ramps from distorting the measurement path.
func TestReservoirBounded(t *testing.T) {
	r := NewReservoir(128, 1)
	for i := 0; i < 100000; i++ {
		r.Add(float64(i))
	}
	if got := r.N(); got != 100000 {
		t.Fatalf("N = %d, want 100000", got)
	}
	if qs := r.Quantiles(0.5); len(qs) != 1 {
		t.Fatalf("Quantiles returned %d values", len(qs))
	}
	if got := r.Max(); got != 99999 {
		t.Fatalf("Max = %v, want exact 99999", got)
	}
	if got := r.Min(); got != 0 {
		t.Fatalf("Min = %v, want exact 0", got)
	}
}

// TestReservoirQuantileAccuracy: on a uniform stream far larger than
// the capacity, sampled quantiles must land within a few percent of
// truth — unbiasedness of algorithm R.
func TestReservoirQuantileAccuracy(t *testing.T) {
	r := NewReservoir(4096, 7)
	rng := rand.New(rand.NewSource(9))
	const n = 500000
	for i := 0; i < n; i++ {
		r.Add(rng.Float64())
	}
	qs := r.Quantiles(0.5, 0.9, 0.99)
	for i, want := range []float64{0.5, 0.9, 0.99} {
		if math.Abs(qs[i]-want) > 0.03 {
			t.Errorf("q%.2f = %.4f, want within 0.03 of %.4f", want, qs[i], want)
		}
	}
	if q1 := r.Quantiles(1)[0]; q1 != r.Max() {
		t.Errorf("q=1 is %v, want the exact max %v", q1, r.Max())
	}
}

// TestReservoirSmallStream: below capacity the sample is exact.
func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(1000, 1)
	for _, x := range []float64{5, 1, 3} {
		r.Add(x)
	}
	qs := r.Quantiles(0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Fatalf("quantiles %v, want [1 3 5]", qs)
	}
}

// TestReservoirEmpty: an empty reservoir reports zeros, not NaNs.
func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(8, 1)
	if r.Max() != 0 || r.Min() != 0 {
		t.Fatalf("empty max/min = %v/%v, want 0/0", r.Max(), r.Min())
	}
	if q := r.Quantiles(0.99)[0]; q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

// TestReservoirConcurrentAdd: Add is safe under concurrent producers
// and loses no counts (run with -race).
func TestReservoirConcurrentAdd(t *testing.T) {
	r := NewReservoir(64, 1)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(float64(p*1000 + i))
			}
		}(p)
	}
	wg.Wait()
	if got := r.N(); got != 8000 {
		t.Fatalf("N = %d, want 8000", got)
	}
	if got := r.Max(); got != 7999 {
		t.Fatalf("Max = %v, want 7999", got)
	}
}
