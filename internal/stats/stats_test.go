package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d, want 8", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic sample is 4; unbiased = 32/7.
	if !almostEqual(a.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
	if a.CI95() <= 0 {
		t.Errorf("CI95 = %v, want > 0", a.CI95())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.CI95() != 0 {
		t.Error("empty accumulator must report zeros")
	}
	a.Add(3)
	if a.Mean() != 3 || a.Variance() != 0 {
		t.Errorf("single-sample accumulator: mean=%v var=%v", a.Mean(), a.Variance())
	}
}

func TestAccumulatorMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) < 2 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, x := range xs {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		return almostEqual(a.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almostEqual(a.Variance(), wantVar, 1e-6*(1+wantVar))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrNoData) {
		t.Errorf("Quantile(nil) error = %v, want ErrNoData", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5) should fail")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	if _, err := Quantile(ys, 0.5); err != nil {
		t.Fatal(err)
	}
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", ys)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || !almostEqual(s.Mean, 2.5, 1e-12) || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("Summarize(nil) error = %v, want ErrNoData", err)
	}
}

func TestGeometricMean(t *testing.T) {
	g, err := GeometricMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g, 4, 1e-9) {
		t.Errorf("GeometricMean = %v, want 4", g)
	}
	if _, err := GeometricMean([]float64{1, -1}); err == nil {
		t.Error("GeometricMean with negative value should fail")
	}
	if _, err := GeometricMean(nil); !errors.Is(err, ErrNoData) {
		t.Error("GeometricMean(nil) should return ErrNoData")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-9) || !almostEqual(fit.Intercept, 3, 1e-9) || !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("LinearFit = %+v, want slope 2 intercept 3 R2 1", fit)
	}
}

func TestLogFitExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 5*math.Log(x)
	}
	fit, err := LogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 5, 1e-9) || !almostEqual(fit.Intercept, 1, 1e-9) {
		t.Errorf("LogFit = %+v, want slope 5 intercept 1", fit)
	}
	if _, err := LogFit([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("LogFit with x=0 should fail")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{2}); !errors.Is(err, ErrNoData) {
		t.Errorf("single point fit error = %v, want ErrNoData", err)
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x should fail")
	}
}

func TestLinearFitNoisyRecoversSlope(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs, ys []float64
	for i := 1; i <= 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 7+0.5*x+rng.NormFloat64()*0.2)
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0.5, 0.01) {
		t.Errorf("noisy slope = %v, want ~0.5", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestMaxRatio(t *testing.T) {
	r, i, err := MaxRatio([]float64{2, 9, 4}, []float64{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 3, 1e-12) || i != 1 {
		t.Errorf("MaxRatio = %v at %d, want 3 at 1", r, i)
	}
	if _, _, err := MaxRatio([]float64{1}, []float64{0}); !errors.Is(err, ErrNoData) {
		t.Errorf("MaxRatio all-zero denominators error = %v, want ErrNoData", err)
	}
	if _, _, err := MaxRatio([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("MaxRatio length mismatch should fail")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 6}), 3, 1e-12) {
		t.Error("Mean wrong")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(4)
	if s.Mean() != 0 {
		t.Error("empty Series mean != 0")
	}
	s.Set(3, 6)
	s.Set(1, 2)
	acc := s.Accumulate()
	if acc.N() != 2 || !almostEqual(acc.Mean(), 4, 1e-12) {
		t.Errorf("Accumulate = n %d mean %v, want 2 and 4", acc.N(), acc.Mean())
	}
	// Aggregation order is index order, not Set order: the accumulator
	// state must match adding 2 then 6.
	var want Accumulator
	want.Add(2)
	want.Add(6)
	if acc != want {
		t.Errorf("Accumulate order-dependent: %+v vs %+v", acc, want)
	}
}
