// Package wal is the durability layer of the lease serving stack: a
// segmented, CRC-framed, fsync-batched write-ahead log of everything a
// multi-tenant engine acknowledges — open specs, event batches and
// session closes — plus the recovery scan that rebuilds every tenant
// session from it after a crash.
//
// The log leans on the event-sourced shape of the stream protocol: a
// session's entire state is a pure function of its open spec and its
// time-ordered events, so durability never serializes algorithm state.
// Appends record exactly what was acknowledged (in the JSON encodings of
// internal/wire, the same single source of truth the HTTP service
// speaks), and recovery replays the records in order through freshly
// built leasers — producing sessions byte-identical to a single-threaded
// Replay of the logged history.
//
// On disk a log is a directory of numbered segments. Each segment starts
// with a fixed header (magic, version, flags) and holds a sequence of
// length-prefixed, CRC-32C-framed records. The final segment is the only
// one allowed to end mid-record: a torn tail (partial header, partial
// payload, or CRC mismatch) is detected on Open and cleanly truncated at
// the last whole record, never silently replayed. Corruption anywhere
// before the tail is data loss of acknowledged records and is reported
// as an error instead.
//
// Compaction rewrites the whole log as one snapshot segment — per live
// tenant, its open record followed by its consolidated event history —
// and deletes the segments it supersedes. Closed sessions are dropped:
// CloseTenant is the retention boundary, so a closed tenant's history is
// reclaimed by the next compaction (and the tenant no longer survives
// recovery after that). The snapshot flag in the segment header makes
// the rewrite crash-safe: recovery starts at the newest snapshot segment
// and ignores (and deletes) anything older.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"leasing/internal/stream"
	"leasing/internal/wire"
)

// Segment format constants. A segment file is SegMagic, a little-endian
// uint32 version, a little-endian uint32 flags word, then records.
const (
	// SegMagic opens every segment file.
	SegMagic = "LEASEWAL"
	// SegVersion is the segment format version this build writes.
	// Version 2 added the binary events record (KindEventsBinary);
	// version-1 (JSON-era) segments are still read, so a log written by
	// an older build recovers unchanged.
	SegVersion = 2
	// SegVersionJSON is the JSON-era format version this build still
	// reads: its segments hold only the JSON record kinds 1..3.
	SegVersionJSON = 1
	// SegHeaderSize is the byte size of the segment header.
	SegHeaderSize = 16
	// FlagSnapshot marks a compaction snapshot segment: it supersedes
	// every lower-numbered segment, so recovery starts at the newest one.
	FlagSnapshot = 1 << 0
)

// Record framing constants. A record is a little-endian uint32 body
// length, a little-endian uint32 CRC-32C of the body, then the body (one
// kind byte followed by the kind's payload — JSON for kinds 1..3, the
// binary event framing of internal/wire for kind 4).
const (
	// RecHeaderSize is the byte size of the record frame header.
	RecHeaderSize = 8
	// MaxRecordBytes bounds a single record body; a larger length field
	// is treated as corruption.
	MaxRecordBytes = 1 << 30
)

// Record kinds, one per payload type.
const (
	// KindOpen frames an OpenRecord.
	KindOpen byte = 1
	// KindEvents frames an EventsRecord.
	KindEvents byte = 2
	// KindClose frames a CloseRecord.
	KindClose byte = 3
	// KindEventsBinary frames an acknowledged event batch in the binary
	// wire framing instead of JSON: a uvarint tenant length, the tenant
	// bytes, then the frame payload of wire.AppendEventsBinary (event
	// count + events). This is what LogEvents writes since segment
	// version 2 — the append path encodes events straight to these bytes
	// with no JSON round-trip — while KindEvents records from JSON-era
	// logs replay identically.
	KindEventsBinary byte = 4
)

// OpenRecord is the payload of a KindOpen record, appended once the
// engine installs a session and before the open is acknowledged.
type OpenRecord struct {
	Tenant string          `json:"tenant" doc:"the opened tenant"`
	Spec   json.RawMessage `json:"spec" doc:"the session's open spec (a wire OpenRequest), rebuilt into the same deterministic algorithm on recovery"`
}

// EventsRecord is the payload of a KindEvents record, appended before
// the engine enqueues an acknowledged batch.
type EventsRecord struct {
	Tenant string       `json:"tenant" doc:"the tenant the batch belongs to"`
	Events []wire.Event `json:"events" doc:"the acknowledged events in submission order, in the wire encoding (the one source of truth shared with the HTTP protocol)"`
}

// CloseRecord is the payload of a KindClose record, appended before the
// engine seals a session.
type CloseRecord struct {
	Tenant string `json:"tenant" doc:"the sealed tenant; later events records for it are dropped on recovery, and the next compaction reclaims its history"`
}

// crcTable is the Castagnoli polynomial every record CRC uses.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrLogClosed is returned by appends after Close.
var ErrLogClosed = errors.New("wal: log closed")

// errTorn marks a record that ends past the readable bytes or fails its
// CRC — the torn-write signature. It is only tolerated (and truncated)
// at the tail of the final segment.
var errTorn = errors.New("wal: torn record")

// Options sizes a Log. The zero value is a usable non-fsyncing log.
type Options struct {
	// Fsync syncs the active segment before an append is acknowledged.
	// Concurrent appenders share syncs (group commit): one fsync covers
	// every record written before it. Off, acknowledged records survive
	// process crashes (they are written straight to the file) but not
	// machine crashes.
	Fsync bool
	// SegmentBytes is the rotation threshold: a segment that has grown
	// past it is retired and appends continue in a fresh one.
	// Default 4 MiB.
	SegmentBytes int64
	// CompactEvery triggers an automatic compaction after this many
	// appended records. 0 disables automatic compaction (Compact can
	// still be called explicitly).
	CompactEvery int64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Session is one tenant's recovered state: the spec that opens it, the
// full logged event history in order, and whether it was sealed.
type Session struct {
	Tenant string
	Spec   []byte // the open spec JSON (a wire.OpenRequest)
	Events []stream.Event
	Closed bool
}

// Stats samples the log's counters.
type Stats struct {
	// Appends counts acknowledged record appends.
	Appends int64
	// Syncs counts fsyncs issued; under concurrent load it is smaller
	// than Appends (group commit).
	Syncs int64
	// Compactions counts completed compactions.
	Compactions int64
	// CompactionFailures counts automatic compactions that failed (the
	// log keeps appending; the next threshold retries).
	CompactionFailures int64
	// Segment is the active segment index.
	Segment uint64
	// SegmentBytes is the active segment's current size.
	SegmentBytes int64
}

// Log is an append-only write-ahead log rooted at one directory. It is
// safe for concurrent use; per-tenant record order is the caller's
// submission order (the engine submits one tenant from one goroutine).
type Log struct {
	dir  string
	opts Options

	// mu guards the append path: active file, sizes, counters.
	mu      sync.Mutex
	f       *os.File
	index   uint64 // active segment index
	first   uint64 // lowest live segment index
	size    int64
	seq     uint64 // records appended since Open
	recs    int64  // records since the last compaction
	retired []*os.File
	failed  error // sticky append failure; the torn tail is recoverable
	closed  bool

	// syncMu serializes fsyncs and guards synced. Lock order is always
	// syncMu before mu; mu is never held while acquiring syncMu.
	syncMu sync.Mutex
	synced uint64 // highest seq known durable

	recovered []Session
	lock      *os.File // exclusive data-dir lock; nil on non-unix

	appends         atomic.Int64
	syncs           atomic.Int64
	compactions     atomic.Int64
	compactFailures atomic.Int64

	encBufs sync.Pool // *[]byte, binary record encode scratch
}

// segPath names segment idx inside dir.
func segPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.wal", idx))
}

// compactTmp is the compaction scratch file, deleted on Open if a crash
// left it behind.
const compactTmp = "compact.tmp"

// listSegments returns the segment indices present in dir, sorted
// numerically. Any all-digit name is accepted — segPath zero-pads to 8
// digits, but an index past 99,999,999 widens the name and must still
// be found by recovery.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, e := range entries {
		base, ok := strings.CutSuffix(e.Name(), ".wal")
		if e.IsDir() || !ok || base == "" {
			continue
		}
		idx, err := strconv.ParseUint(base, 10, 64)
		if err != nil {
			continue
		}
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// Open opens (or creates) the log in dir, scans every live segment to
// rebuild the recovered sessions (Recover returns them), truncates a
// torn tail, and positions the log for appending. A snapshot segment
// supersedes everything older; superseded and half-created files left by
// a crash are deleted.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// One writer per directory: a second process would truncate and
	// interleave with this one's appends.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	l, err := openLocked(dir, opts, lock)
	if err != nil && lock != nil {
		lock.Close()
	}
	return l, err
}

// openLocked is Open past the directory lock.
func openLocked(dir string, opts Options, lock *os.File) (*Log, error) {
	os.Remove(filepath.Join(dir, compactTmp))
	idxs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, lock: lock}

	// Header pass: find the newest snapshot, and drop a final segment
	// whose header never finished (a crash during rotation).
	var flags []uint32
	for i := 0; i < len(idxs); i++ {
		fl, err := readSegHeader(segPath(dir, idxs[i]))
		if errors.Is(err, errShortHeader) && i == len(idxs)-1 {
			if err := os.Remove(segPath(dir, idxs[i])); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			idxs = idxs[:i]
			break
		}
		if err != nil {
			return nil, fmt.Errorf("wal: segment %08d: %w", idxs[i], err)
		}
		flags = append(flags, fl)
	}
	if len(idxs) == 0 {
		if err := l.createSegment(1, 0); err != nil {
			return nil, err
		}
		l.first = 1
		return l, nil
	}
	start := 0
	for i, fl := range flags {
		if fl&FlagSnapshot != 0 {
			start = i
		}
	}
	// Superseded pre-snapshot segments are deleted only after the live
	// segments scan cleanly: until then they are the one redundant copy
	// of the histories the snapshot claims to hold.
	superseded := idxs[:start]
	idxs = idxs[start:]
	l.first = idxs[0]
	// Live segments are created contiguously (rotation and compaction
	// both advance by one), so a gap means a deleted or lost segment —
	// acknowledged records are gone, and replaying around the hole would
	// serve silently wrong sessions.
	for i := 1; i < len(idxs); i++ {
		if idxs[i] != idxs[i-1]+1 {
			return nil, fmt.Errorf("wal: segment %08d missing (found %08d then %08d): acknowledged data lost; restore the directory from backup", idxs[i-1]+1, idxs[i-1], idxs[i])
		}
	}

	// Record pass: replay every segment in order; only the final one may
	// end torn, and its torn tail is truncated in place.
	st := newScanState()
	for i, idx := range idxs {
		tail := i == len(idxs)-1
		path := segPath(dir, idx)
		valid, err := scanSegment(path, tail, st)
		if err != nil {
			return nil, err
		}
		if tail {
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			if _, err := f.Seek(valid, 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.f, l.index, l.size = f, idx, valid
		}
	}
	for _, idx := range superseded {
		if err := os.Remove(segPath(dir, idx)); err != nil {
			l.f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	l.recovered = st.sessions()
	return l, nil
}

// errShortHeader marks a segment file shorter than its header — the
// signature of a crash during segment creation.
var errShortHeader = errors.New("wal: short segment header")

// readSegHeader validates a segment's header and returns its flags.
func readSegHeader(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [SegHeaderSize]byte
	// ReadFull, not Read: a legal short read (NFS and friends) must not
	// be mistaken for a truncated header — that verdict deletes files.
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, errShortHeader
		}
		return 0, err
	}
	return parseSegHeader(hdr[:])
}

// parseSegHeader validates the 16 header bytes and returns the flags.
func parseSegHeader(hdr []byte) (uint32, error) {
	if len(hdr) < SegHeaderSize {
		return 0, errShortHeader
	}
	if string(hdr[:8]) != SegMagic {
		return 0, fmt.Errorf("bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != SegVersion && v != SegVersionJSON {
		return 0, fmt.Errorf("unsupported segment version %d (this build reads versions %d and %d)", v, SegVersionJSON, SegVersion)
	}
	return binary.LittleEndian.Uint32(hdr[12:16]), nil
}

// segHeader renders the 16 header bytes for flags.
func segHeader(fl uint32) []byte {
	hdr := make([]byte, SegHeaderSize)
	copy(hdr, SegMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], SegVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], fl)
	return hdr
}

// parseRecord decodes one record from the front of data. It returns the
// record's kind, payload and framed size. A record that runs past the
// data, declares an absurd length, or fails its CRC returns errTorn.
func parseRecord(data []byte) (kind byte, payload []byte, n int, err error) {
	if len(data) < RecHeaderSize {
		return 0, nil, 0, errTorn
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	if length == 0 || length > MaxRecordBytes {
		return 0, nil, 0, errTorn
	}
	if uint64(len(data)) < RecHeaderSize+uint64(length) {
		return 0, nil, 0, errTorn
	}
	body := data[RecHeaderSize : RecHeaderSize+int(length)]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(data[4:8]) {
		return 0, nil, 0, errTorn
	}
	return body[0], body[1:], RecHeaderSize + int(length), nil
}

// frameRecord renders one record frame for a kind and payload.
func frameRecord(kind byte, payload []byte) []byte {
	body := make([]byte, 1+len(payload))
	body[0] = kind
	copy(body[1:], payload)
	buf := make([]byte, RecHeaderSize+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(body, crcTable))
	copy(buf[RecHeaderSize:], body)
	return buf
}

// scanState accumulates per-tenant sessions while replaying records,
// with the same drop semantics the live engine has: events for unknown
// or closed tenants are ignored, and a duplicate open keeps the first.
type scanState struct {
	byTenant map[string]*Session
	order    []*Session
}

func newScanState() *scanState {
	return &scanState{byTenant: map[string]*Session{}}
}

// sessions returns the accumulated sessions in first-open order.
func (st *scanState) sessions() []Session {
	out := make([]Session, len(st.order))
	for i, s := range st.order {
		out[i] = *s
	}
	return out
}

// apply replays one record into the state.
func (st *scanState) apply(kind byte, payload []byte) error {
	switch kind {
	case KindOpen:
		var r OpenRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("open record: %w", err)
		}
		if _, ok := st.byTenant[r.Tenant]; ok {
			return nil // duplicate open was rejected live; keep the first
		}
		s := &Session{Tenant: r.Tenant, Spec: []byte(r.Spec)}
		st.order = append(st.order, s)
		st.byTenant[r.Tenant] = s
	case KindEvents:
		var r EventsRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("events record: %w", err)
		}
		s, ok := st.byTenant[r.Tenant]
		if !ok || s.Closed {
			return nil // dropped live, dropped on recovery
		}
		evs, err := wire.StreamEvents(r.Events)
		if err != nil {
			return fmt.Errorf("events record for %q: %w", r.Tenant, err)
		}
		s.Events = append(s.Events, evs...)
	case KindEventsBinary:
		tenant, body, err := splitTenantPayload(payload)
		if err != nil {
			return fmt.Errorf("binary events record: %w", err)
		}
		s, ok := st.byTenant[tenant]
		if !ok || s.Closed {
			return nil // dropped live, dropped on recovery
		}
		evs, err := wire.DecodeEventsBinary(body)
		if err != nil {
			return fmt.Errorf("binary events record for %q: %w", tenant, err)
		}
		s.Events = append(s.Events, evs...)
	case KindClose:
		var r CloseRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("close record: %w", err)
		}
		if s, ok := st.byTenant[r.Tenant]; ok {
			s.Closed = true
		}
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	return nil
}

// scanSegment replays one segment's records into st and returns the
// byte offset of the last whole record. Only the tail segment may end
// torn; anywhere else a torn record is corruption of acknowledged data
// and is an error.
func scanSegment(path string, tail bool, st *scanState) (int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := parseSegHeader(b); err != nil {
		return 0, fmt.Errorf("wal: segment %s: %w", filepath.Base(path), err)
	}
	off := int64(SegHeaderSize)
	for off < int64(len(b)) {
		kind, payload, n, err := parseRecord(b[off:])
		if errors.Is(err, errTorn) {
			if !tail {
				return 0, fmt.Errorf("wal: segment %s: corrupt record at offset %d before the log tail (acknowledged data lost)", filepath.Base(path), off)
			}
			return off, nil
		}
		if err != nil {
			return 0, fmt.Errorf("wal: segment %s: %w", filepath.Base(path), err)
		}
		if err := st.apply(kind, payload); err != nil {
			return 0, fmt.Errorf("wal: segment %s: offset %d: %w", filepath.Base(path), off, err)
		}
		off += int64(n)
	}
	return off, nil
}

// Recover returns the sessions rebuilt by Open's scan, in first-open
// order. The slice reflects the on-disk state at Open; appends made
// since are not folded in.
func (l *Log) Recover() []Session {
	return l.recovered
}

// createSegment makes segment idx the active file. Callers hold mu (or
// own the log exclusively, as Open does).
func (l *Log) createSegment(idx uint64, fl uint32) error {
	f, err := os.OpenFile(segPath(l.dir, idx), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segHeader(fl)); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if l.opts.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}
	l.f, l.index, l.size = f, idx, SegHeaderSize
	return nil
}

// syncDir fsyncs the log directory, making renames and creations
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// append marshals payload to JSON and writes it as one record.
func (l *Log) append(kind byte, payload any) error {
	js, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.appendRaw(kind, js)
}

// appendRaw frames and writes one record from already-encoded payload
// bytes, rotating and group-committing as configured. The record is
// durable (to the file; to disk under Fsync) when appendRaw returns nil
// — the caller may acknowledge.
func (l *Log) appendRaw(kind byte, payload []byte) error {
	// Enforce the read path's bound before writing: a larger record
	// would be acknowledged now and rejected as corruption on recovery.
	if len(payload)+1 > MaxRecordBytes {
		return fmt.Errorf("wal: record body of %d bytes exceeds the %d-byte record limit", len(payload)+1, MaxRecordBytes)
	}
	buf := frameRecord(kind, payload)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrLogClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			l.failed = err
			l.mu.Unlock()
			return err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		// A partial frame is now the torn tail; poison further appends
		// so nothing is ever written after it.
		l.failed = fmt.Errorf("wal: append: %w", err)
		err := l.failed
		l.mu.Unlock()
		return err
	}
	l.size += int64(len(buf))
	l.seq++
	seq := l.seq
	l.recs++
	compact := l.opts.CompactEvery > 0 && l.recs >= l.opts.CompactEvery
	if compact {
		l.recs = 0
	}
	l.mu.Unlock()
	l.appends.Add(1)

	if l.opts.Fsync {
		if err := l.syncTo(seq); err != nil {
			return err
		}
	}
	if compact {
		// Best effort: the record above is already durable, and failing
		// the acknowledged append here would make the caller resubmit a
		// logged batch (duplicating it on recovery). The next threshold
		// retries.
		if err := l.Compact(); err != nil {
			l.compactFailures.Add(1)
		}
	}
	return nil
}

// syncTo makes every record up to seq durable, sharing fsyncs between
// concurrent appenders: whoever acquires syncMu first syncs for the
// whole group, and the rest observe synced already past their seq.
func (l *Log) syncTo(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced >= seq {
		return nil
	}
	l.mu.Lock()
	f, cur, failed := l.f, l.seq, l.failed
	l.mu.Unlock()
	if failed != nil {
		return failed
	}
	// Records beyond the active segment were synced by rotation, so
	// syncing the active file covers everything up to cur.
	if err := f.Sync(); err != nil {
		// Poison the log: the record is written but its durability is
		// unknown (a failed fsync may mark dirty pages clean, so a later
		// "successful" sync proves nothing about it). Un-poisoned, the
		// caller's resubmission of this un-acknowledged batch would be
		// logged a second time and replayed twice on recovery.
		err = fmt.Errorf("wal: fsync: %w", err)
		l.mu.Lock()
		l.failed = err
		l.mu.Unlock()
		return err
	}
	l.synced = cur
	l.syncs.Add(1)
	return nil
}

// rotate retires the active segment and starts the next one. Under
// Fsync the old segment is synced first, so syncTo's active-file sync
// always covers the whole unsynced suffix. Retired files stay open (a
// concurrent group commit may still be syncing one) and are closed by
// Compact or Close. Callers hold mu.
func (l *Log) rotate() error {
	if l.opts.Fsync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	// Retire the old handle only once the new segment exists: on a
	// createSegment failure l.f must stay the single owner, or Close
	// would close the aliased handle twice and mask the real error.
	old := l.f
	if err := l.createSegment(l.index+1, 0); err != nil {
		return err
	}
	l.retired = append(l.retired, old)
	return nil
}

// LogOpen appends a session-open record: the tenant and the spec that
// deterministically rebuilds its algorithm.
func (l *Log) LogOpen(tenant string, spec []byte) error {
	return l.append(KindOpen, OpenRecord{Tenant: tenant, Spec: json.RawMessage(spec)})
}

// LogEvents appends one acknowledged event batch as a binary events
// record: the events are encoded straight into the binary wire framing
// (no wire.Event conversion, no JSON marshal) from a pooled buffer —
// the durable twin of the server's zero-alloc ingestion path.
func (l *Log) LogEvents(tenant string, evs []stream.Event) error {
	bufp, _ := l.encBufs.Get().(*[]byte)
	if bufp == nil {
		bufp = new([]byte)
	}
	defer l.encBufs.Put(bufp)
	payload, err := appendEventsBinaryRecord((*bufp)[:0], tenant, evs)
	*bufp = payload
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.appendRaw(KindEventsBinary, payload)
}

// appendEventsBinaryRecord appends a KindEventsBinary payload — uvarint
// tenant length, tenant bytes, then the binary event frame payload.
func appendEventsBinaryRecord(dst []byte, tenant string, evs []stream.Event) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(tenant)))
	dst = append(dst, tenant...)
	return wire.AppendEventsBinary(dst, evs)
}

// splitTenantPayload splits a KindEventsBinary payload into its tenant
// and event-frame bytes.
func splitTenantPayload(payload []byte) (string, []byte, error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 || n > uint64(len(payload)-w) {
		return "", nil, errors.New("bad tenant length")
	}
	return string(payload[w : w+int(n)]), payload[w+int(n):], nil
}

// LogClose appends a session-close record.
func (l *Log) LogClose(tenant string) error {
	return l.append(KindClose, CloseRecord{Tenant: tenant})
}

// compactChunk caps events per consolidated record so snapshot records
// stay bounded.
const compactChunk = 2048

// Compact rewrites the log as one snapshot segment: per live (not
// closed) tenant, an open record followed by its consolidated event
// history. The snapshot is written to a temp file, synced, renamed into
// place and only then do the superseded segments go away, so a crash at
// any point leaves either the old segments or a complete snapshot.
// Appends are blocked for the duration.
func (l *Log) Compact() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}

	// Re-scan the live segments; every record in them is complete (the
	// log wrote them), so the scan is strict.
	st := newScanState()
	for idx := l.first; idx <= l.index; idx++ {
		if _, err := scanSegment(segPath(l.dir, idx), false, st); err != nil {
			return err
		}
	}

	tmp := filepath.Join(l.dir, compactTmp)
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	writeRaw := func(kind byte, body []byte) error {
		// compactChunk keeps consolidated records far below the limit,
		// but a single oversized logged record would resurface here.
		if len(body)+1 > MaxRecordBytes {
			return fmt.Errorf("wal: record body of %d bytes exceeds the %d-byte record limit", len(body)+1, MaxRecordBytes)
		}
		if _, err := f.Write(frameRecord(kind, body)); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		return nil
	}
	write := func(kind byte, payload any) error {
		js, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		return writeRaw(kind, js)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(segHeader(FlagSnapshot)); err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	for _, s := range st.sessions() {
		if s.Closed {
			continue // close is the retention boundary
		}
		if err := write(KindOpen, OpenRecord{Tenant: s.Tenant, Spec: json.RawMessage(s.Spec)}); err != nil {
			return fail(err)
		}
		// Consolidated histories are rewritten as binary records: a
		// snapshot of a JSON-era log comes out the other side in the
		// version-2 encoding (the two replay identically).
		for lo := 0; lo < len(s.Events); lo += compactChunk {
			hi := min(lo+compactChunk, len(s.Events))
			body, err := appendEventsBinaryRecord(nil, s.Tenant, s.Events[lo:hi])
			if err != nil {
				return fail(fmt.Errorf("wal: %w", err))
			}
			if err := writeRaw(KindEventsBinary, body); err != nil {
				return fail(err)
			}
		}
	}
	// The snapshot is always synced — the rename below must never become
	// visible before its contents.
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	snapIdx := l.index + 1
	if err := os.Rename(tmp, segPath(l.dir, snapIdx)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		// The snapshot may already be visible at a higher index than the
		// active segment; appending to the old segment now would be
		// silently superseded (and lost) on the next recovery. Poison
		// the log so no further append can be acknowledged.
		l.failed = err
		return err
	}

	// The snapshot is durable and supersedes everything older: retire
	// the old segments and continue appending in a fresh one.
	oldFirst, oldIndex := l.first, l.index
	for _, rf := range l.retired {
		rf.Close()
	}
	l.retired = nil
	l.f.Close()
	if err := l.createSegment(snapIdx+1, 0); err != nil {
		l.failed = err
		return err
	}
	l.first = snapIdx
	for idx := oldFirst; idx <= oldIndex; idx++ {
		os.Remove(segPath(l.dir, idx))
	}
	l.synced = l.seq // everything live is in the synced snapshot
	l.compactions.Add(1)
	return nil
}

// Close syncs (under Fsync) and closes the log. Appends after Close
// return ErrLogClosed.
func (l *Log) Close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.opts.Fsync && l.failed == nil {
		err = l.f.Sync()
	}
	for _, rf := range l.retired {
		rf.Close()
	}
	l.retired = nil
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if l.lock != nil {
		l.lock.Close() // releases the data-dir flock
	}
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Stats samples the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:            l.appends.Load(),
		Syncs:              l.syncs.Load(),
		Compactions:        l.compactions.Load(),
		CompactionFailures: l.compactFailures.Load(),
		Segment:            l.index,
		SegmentBytes:       l.size,
	}
}
