package wal

// Cross-format recovery: version-2 segments carry binary event records
// (kind 4), version-1 segments carry the JSON-era records, and one
// directory may hold both — recovery replays them in order, and the
// first compaction of a JSON-era directory migrates it to the current
// format. These tests pin all of that, plus torn-tail and corruption
// handling for the new record kind.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"leasing/internal/metric"
	"leasing/internal/stream"
	"leasing/internal/wire"
)

// mustJSONRecord frames a JSON-era record the way a version-1 build
// would have written it.
func mustJSONRecord(t *testing.T, kind byte, payload any) []byte {
	t.Helper()
	js, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	return frameRecord(kind, js)
}

// writeJSONEraSegment hand-writes segment idx as a version-1 file: the
// header of this build with the version field rewound, followed by the
// given record frames.
func writeJSONEraSegment(t *testing.T, dir string, idx uint64, frames ...[]byte) {
	t.Helper()
	hdr := segHeader(0)
	binary.LittleEndian.PutUint32(hdr[8:12], SegVersionJSON)
	var buf bytes.Buffer
	buf.Write(hdr)
	for _, f := range frames {
		buf.Write(f)
	}
	if err := os.WriteFile(segPath(dir, idx), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// jsonEvents converts to the wire encoding the way the JSON-era
// LogEvents did.
func jsonEvents(t *testing.T, evs []stream.Event) []wire.Event {
	t.Helper()
	out, err := wire.FromStreamEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// segVersion reads the version field of segment idx.
func segVersion(t *testing.T, dir string, idx uint64) uint32 {
	t.Helper()
	b, err := os.ReadFile(segPath(dir, idx))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < SegHeaderSize {
		t.Fatalf("segment %d: short header", idx)
	}
	return binary.LittleEndian.Uint32(b[8:12])
}

// recordKinds scans segment idx's whole records and returns their kinds
// in order.
func recordKinds(t *testing.T, dir string, idx uint64) []byte {
	t.Helper()
	b, err := os.ReadFile(segPath(dir, idx))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []byte
	for off := SegHeaderSize; off < len(b); {
		kind, _, n, err := parseRecord(b[off:])
		if err != nil {
			t.Fatalf("segment %d offset %d: %v", idx, off, err)
		}
		kinds = append(kinds, kind)
		off += n
	}
	return kinds
}

// TestBinaryRecordsRecoverExact: the binary events record preserves
// what JSON cannot — exact float bits (including NaN payloads and
// signed zero) and the nil-versus-empty clients distinction — across a
// log round trip.
func TestBinaryRecordsRecoverExact(t *testing.T) {
	nan := math.Float64frombits(0x7FF8_0000_DEAD_BEEF)
	evs := []stream.Event{
		{Time: 0, Payload: stream.Batch{Clients: []metric.Point{
			{X: nan, Y: math.Copysign(0, -1)},
			{X: math.Inf(1), Y: math.SmallestNonzeroFloat64},
		}}},
		{Time: 1, Payload: stream.Batch{Clients: nil}},
		{Time: 2, Payload: stream.Batch{Clients: []metric.Point{}}},
		{Time: 3, Payload: stream.ElementWindow{Elem: 7, D: -4}},
	}

	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if err := l.LogOpen("a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEvents("a", evs); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	got := re.Recover()
	if len(got) != 1 || len(got[0].Events) != len(evs) {
		t.Fatalf("recovered %+v", got)
	}
	rec := got[0].Events
	pts := rec[0].Payload.(stream.Batch).Clients
	if b := math.Float64bits(pts[0].X); b != 0x7FF8_0000_DEAD_BEEF {
		t.Errorf("NaN payload bits = %#x", b)
	}
	if !math.Signbit(pts[0].Y) || pts[0].Y != 0 {
		t.Errorf("negative zero lost: %v", pts[0].Y)
	}
	if !math.IsInf(pts[1].X, 1) || pts[1].Y != math.SmallestNonzeroFloat64 {
		t.Errorf("point 1 = %+v", pts[1])
	}
	if rec[1].Payload.(stream.Batch).Clients != nil {
		t.Error("nil clients recovered non-nil")
	}
	// The canonical encoding folds empty into null, exactly like a JSON
	// round trip does.
	if rec[2].Payload.(stream.Batch).Clients != nil {
		t.Error("empty clients did not canonicalize to nil")
	}
	if want := (stream.ElementWindow{Elem: 7, D: -4}); rec[3].Payload != want {
		t.Errorf("event 3 = %#v", rec[3].Payload)
	}
}

// TestMixedVersionSegmentsReplay: a directory whose first segment is a
// hand-written version-1 file (JSON-era records) and whose tail was
// appended by this build (version-2, binary records) recovers as one
// ordered history.
func TestMixedVersionSegmentsReplay(t *testing.T) {
	dir := t.TempDir()
	writeJSONEraSegment(t, dir, 1,
		mustJSONRecord(t, KindOpen, OpenRecord{Tenant: "a", Spec: json.RawMessage(`{"domain":"parking"}`)}),
		mustJSONRecord(t, KindEvents, EventsRecord{Tenant: "a", Events: jsonEvents(t, dayEvents(0, 1))}),
		mustJSONRecord(t, KindOpen, OpenRecord{Tenant: "b", Spec: json.RawMessage(`{"domain":"deadline"}`)}),
		mustJSONRecord(t, KindEvents, EventsRecord{Tenant: "b", Events: jsonEvents(t, elemEvents(3, 1))}),
		mustJSONRecord(t, KindClose, CloseRecord{Tenant: "b"}),
	)

	// A tiny segment cap forces the first append past the JSON-era file
	// into a fresh version-2 segment, so the directory genuinely mixes
	// headers rather than appending kind-4 records into the old file.
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	if err := l.LogEvents("a", dayEvents(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEvents("b", dayEvents(9)); err != nil { // closed: dropped
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if v := segVersion(t, dir, 1); v != SegVersionJSON {
		t.Fatalf("segment 1 version = %d, want %d", v, SegVersionJSON)
	}
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) < 2 {
		t.Fatalf("appends did not rotate: segments %v", idxs)
	}
	if v := segVersion(t, dir, idxs[1]); v != SegVersion {
		t.Fatalf("segment %d version = %d, want %d", idxs[1], v, SegVersion)
	}

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	got := re.Recover()
	if len(got) != 2 {
		t.Fatalf("recovered %d sessions, want 2", len(got))
	}
	a, b := got[0], got[1]
	if a.Tenant != "a" || string(a.Spec) != `{"domain":"parking"}` || a.Closed {
		t.Errorf("session a = %+v", a)
	}
	if want := dayEvents(0, 1, 2, 3); fmt.Sprintf("%#v", a.Events) != fmt.Sprintf("%#v", want) {
		t.Errorf("a events = %#v, want %#v", a.Events, want)
	}
	if b.Tenant != "b" || !b.Closed || len(b.Events) != 2 {
		t.Errorf("session b = %+v", b)
	}
}

// TestTornTailBinaryRecord: torn-write handling extends to kind-4
// records — a CRC-flipped or truncated binary events record at the
// tail is truncated away, the prefix recovers, and appends resume.
func TestTornTailBinaryRecord(t *testing.T) {
	binFrame := func(t *testing.T, tenant string, evs []stream.Event) []byte {
		t.Helper()
		payload, err := appendEventsBinaryRecord(nil, tenant, evs)
		if err != nil {
			t.Fatal(err)
		}
		return frameRecord(KindEventsBinary, payload)
	}
	cases := map[string]func(t *testing.T, dir string){
		"crc mismatch": func(t *testing.T, dir string) {
			frame := binFrame(t, "a", dayEvents(7))
			frame[len(frame)-1] ^= 0xFF
			appendGarbage(t, dir, frame)
		},
		"truncated frame": func(t *testing.T, dir string) {
			frame := binFrame(t, "a", dayEvents(7))
			appendGarbage(t, dir, frame[:len(frame)-3])
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{})
			if err := l.LogOpen("a", []byte(`{}`)); err != nil {
				t.Fatal(err)
			}
			if err := l.LogEvents("a", dayEvents(0, 1)); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			corrupt(t, dir)

			re := mustOpen(t, dir, Options{})
			got := re.Recover()
			if len(got) != 1 || len(got[0].Events) != 2 {
				t.Fatalf("recovered %+v, want the two-event prefix", got)
			}
			if err := re.LogEvents("a", dayEvents(8)); err != nil {
				t.Fatal(err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2 := mustOpen(t, dir, Options{})
			defer re2.Close()
			if got2 := re2.Recover(); len(got2) != 1 || len(got2[0].Events) != 3 {
				t.Fatalf("after resume recovered %+v", got2)
			}
		})
	}
}

// TestCorruptBinaryPayloadRefuses: a kind-4 record whose CRC checks out
// but whose payload does not decode is not a torn write — it is
// acknowledged data this build cannot replay, and Open must refuse.
func TestCorruptBinaryPayloadRefuses(t *testing.T) {
	cases := map[string][]byte{
		// Tenant length runs past the payload.
		"bad tenant length": {0xFF, 0xFF, 0x01},
		// Valid tenant "a", then an event frame with an unknown kind.
		"bad event kind": {1, 'a', 1, 99, 0},
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{})
			if err := l.LogOpen("a", []byte(`{}`)); err != nil {
				t.Fatal(err)
			}
			if err := l.LogEvents("a", dayEvents(0)); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// A whole record after the damage makes the damaged record
			// non-tail, so truncation cannot paper over it.
			appendGarbage(t, dir, frameRecord(KindEventsBinary, payload))
			appendGarbage(t, dir, frameRecord(KindClose, []byte(`{"tenant":"a"}`)))

			if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "events record") {
				t.Fatalf("open over corrupt binary payload: %v", err)
			}
		})
	}
}

// TestCompactMigratesJSONEra: compacting a directory written entirely
// by a version-1 build produces a version-2 snapshot whose event
// records are all binary, and the snapshot replays identically to the
// JSON-era original.
func TestCompactMigratesJSONEra(t *testing.T) {
	dir := t.TempDir()
	writeJSONEraSegment(t, dir, 1,
		mustJSONRecord(t, KindOpen, OpenRecord{Tenant: "a", Spec: json.RawMessage(`{"domain":"parking"}`)}),
		mustJSONRecord(t, KindEvents, EventsRecord{Tenant: "a", Events: jsonEvents(t, dayEvents(0, 1, 2))}),
		mustJSONRecord(t, KindEvents, EventsRecord{Tenant: "a", Events: jsonEvents(t, elemEvents(5, 2, 8))}),
		mustJSONRecord(t, KindOpen, OpenRecord{Tenant: "closed", Spec: json.RawMessage(`{}`)}),
		mustJSONRecord(t, KindClose, CloseRecord{Tenant: "closed"}),
	)

	l := mustOpen(t, dir, Options{})
	pre := l.Recover()
	if len(pre) != 2 {
		t.Fatalf("JSON-era recovery found %d sessions, want 2", len(pre))
	}
	before := fmt.Sprintf("%#v", pre[0])
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Compaction leaves the snapshot plus a fresh active tail segment,
	// both in the current version: the JSON-era file is gone.
	if len(idxs) != 2 {
		t.Fatalf("segments after compaction: %v, want snapshot + active tail", idxs)
	}
	for _, idx := range idxs {
		if v := segVersion(t, dir, idx); v != SegVersion {
			t.Fatalf("segment %d version = %d, want %d", idx, v, SegVersion)
		}
	}
	for i, kind := range recordKinds(t, dir, idxs[0]) {
		if kind == KindEvents {
			t.Errorf("snapshot record %d is a JSON-era events record; compaction should have migrated it to kind %d", i, KindEventsBinary)
		}
	}

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	// The live session survives byte-identically; the closed one is
	// reclaimed by compaction.
	got := re.Recover()
	if len(got) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(got))
	}
	if after := fmt.Sprintf("%#v", got[0]); after != before {
		t.Errorf("snapshot session diverged from the JSON-era original:\n after %s\nbefore %s", after, before)
	}
	want := append(dayEvents(0, 1, 2), elemEvents(5, 2, 8)...)
	if fmt.Sprintf("%#v", got[0].Events) != fmt.Sprintf("%#v", want) {
		t.Errorf("migrated events = %#v, want %#v", got[0].Events, want)
	}
}
