package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"leasing/internal/stream"
)

func dayEvents(times ...int64) []stream.Event {
	out := make([]stream.Event, len(times))
	for i, t := range times {
		out[i] = stream.Event{Time: t, Payload: stream.Day{}}
	}
	return out
}

func elemEvents(elems ...int) []stream.Event {
	out := make([]stream.Event, len(elems))
	for i, e := range elems {
		out[i] = stream.Event{Time: int64(i), Payload: stream.Element{Elem: e, P: 1}}
	}
	return out
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l
}

// TestRoundTrip is the core promise: what was logged is what recovers,
// with per-tenant order, specs and closed flags intact.
func TestRoundTrip(t *testing.T) {
	for _, fsync := range []bool{false, true} {
		t.Run(fmt.Sprintf("fsync=%v", fsync), func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{Fsync: fsync})
			if n := len(l.Recover()); n != 0 {
				t.Fatalf("fresh log recovered %d sessions", n)
			}
			if err := l.LogOpen("a", []byte(`{"domain":"parking"}`)); err != nil {
				t.Fatal(err)
			}
			if err := l.LogEvents("a", dayEvents(0, 1, 2)); err != nil {
				t.Fatal(err)
			}
			if err := l.LogOpen("b", []byte(`{"domain":"deadline"}`)); err != nil {
				t.Fatal(err)
			}
			if err := l.LogEvents("b", elemEvents(3, 1)); err != nil {
				t.Fatal(err)
			}
			if err := l.LogEvents("a", dayEvents(5)); err != nil {
				t.Fatal(err)
			}
			if err := l.LogClose("b"); err != nil {
				t.Fatal(err)
			}
			// Events after close and for unknown tenants drop on recovery,
			// matching the live engine.
			if err := l.LogEvents("b", dayEvents(9)); err != nil {
				t.Fatal(err)
			}
			if err := l.LogEvents("ghost", dayEvents(1)); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			re := mustOpen(t, dir, Options{})
			defer re.Close()
			got := re.Recover()
			if len(got) != 2 {
				t.Fatalf("recovered %d sessions, want 2", len(got))
			}
			a, b := got[0], got[1]
			if a.Tenant != "a" || b.Tenant != "b" {
				t.Fatalf("session order %q, %q", a.Tenant, b.Tenant)
			}
			if string(a.Spec) != `{"domain":"parking"}` || a.Closed {
				t.Errorf("session a = %+v", a)
			}
			if want := dayEvents(0, 1, 2, 5); fmt.Sprintf("%#v", a.Events) != fmt.Sprintf("%#v", want) {
				t.Errorf("a events = %#v, want %#v", a.Events, want)
			}
			if !b.Closed {
				t.Error("b not closed")
			}
			if want := elemEvents(3, 1); fmt.Sprintf("%#v", b.Events) != fmt.Sprintf("%#v", want) {
				t.Errorf("b events = %#v, want %#v", b.Events, want)
			}
		})
	}
}

// TestRotation forces many tiny segments and recovers across all of
// them.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	if err := l.LogOpen("a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := l.LogEvents("a", dayEvents(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(idxs))
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	got := re.Recover()
	if len(got) != 1 || len(got[0].Events) != 50 {
		t.Fatalf("recovered %+v", got)
	}
}

// appendGarbage writes raw bytes to the end of the highest segment.
func appendGarbage(t *testing.T, dir string, b []byte) {
	t.Helper()
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segPath(dir, idxs[len(idxs)-1]), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

// TestTornTail covers the torn-write table: a partial frame header, a
// length running past EOF, a CRC mismatch, and a flipped byte inside
// the last record must all be detected and truncated — recovery sees
// exactly the whole-record prefix, and appends resume cleanly.
func TestTornTail(t *testing.T) {
	writeLog := func(t *testing.T) string {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{})
		if err := l.LogOpen("a", []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := l.LogEvents("a", dayEvents(0, 1)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	tearLast := func(t *testing.T, dir string, mutate func(path string, size int64)) {
		t.Helper()
		idxs, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		path := segPath(dir, idxs[len(idxs)-1])
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		mutate(path, fi.Size())
	}

	cases := map[string]func(t *testing.T, dir string){
		"partial frame header": func(t *testing.T, dir string) {
			appendGarbage(t, dir, []byte{1, 2, 3})
		},
		"length past eof": func(t *testing.T, dir string) {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 4096)
			appendGarbage(t, dir, hdr[:])
		},
		"absurd length": func(t *testing.T, dir string) {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], MaxRecordBytes+1)
			appendGarbage(t, dir, append(hdr[:], make([]byte, 64)...))
		},
		"crc mismatch appended": func(t *testing.T, dir string) {
			frame := frameRecord(KindClose, []byte(`{"tenant":"a"}`))
			frame[len(frame)-1] ^= 0xFF
			appendGarbage(t, dir, frame)
		},
		"flipped byte in last record": func(t *testing.T, dir string) {
			tearLast(t, dir, func(path string, size int64) {
				f, err := os.OpenFile(path, os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.WriteAt([]byte{0xFF}, size-1); err != nil {
					t.Fatal(err)
				}
			})
		},
		"truncated mid-record": func(t *testing.T, dir string) {
			tearLast(t, dir, func(path string, size int64) {
				if err := os.Truncate(path, size-3); err != nil {
					t.Fatal(err)
				}
			})
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir := writeLog(t)
			corrupt(t, dir)

			re := mustOpen(t, dir, Options{})
			got := re.Recover()
			wantEvents := 2
			if strings.Contains(name, "record") && !strings.Contains(name, "appended") {
				// The tear damaged the events record itself: only the
				// open survives.
				wantEvents = 0
			}
			if len(got) != 1 || got[0].Tenant != "a" || len(got[0].Events) != wantEvents || got[0].Closed {
				t.Fatalf("recovered %+v, want tenant a with %d events, not closed", got, wantEvents)
			}
			// The torn suffix is gone for good: appends resume and a
			// third recovery sees old prefix + new records only.
			if err := re.LogEvents("a", dayEvents(7)); err != nil {
				t.Fatal(err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2 := mustOpen(t, dir, Options{})
			defer re2.Close()
			got2 := re2.Recover()
			if len(got2) != 1 || len(got2[0].Events) != wantEvents+1 {
				t.Fatalf("after resume recovered %+v", got2)
			}
		})
	}
}

// TestCorruptionBeforeTailRefuses: a damaged record in a non-final
// segment is acknowledged data loss, not a torn tail — Open must refuse
// rather than silently replay around it.
func TestCorruptionBeforeTailRefuses(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	if err := l.LogOpen("a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.LogEvents("a", dayEvents(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) < 2 {
		t.Fatal("need at least two segments")
	}
	path := segPath(dir, idxs[0])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("open of corrupt non-tail segment: %v", err)
	}
}

// TestMissingMiddleSegmentRefuses: a deleted or lost segment between
// the first live segment and the tail is a hole in acknowledged
// history; Open must refuse rather than serve sessions with silently
// missing events.
func TestMissingMiddleSegmentRefuses(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	if err := l.LogOpen("a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.LogEvents("a", dayEvents(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) < 3 {
		t.Fatal("need at least three segments")
	}
	if err := os.Remove(segPath(dir, idxs[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("open with a missing middle segment: %v", err)
	}
}

// TestCrossVersionHeaders: future versions, bad magic and half-written
// headers each get their declared treatment.
func TestCrossVersionHeaders(t *testing.T) {
	t.Run("future version refuses", func(t *testing.T) {
		dir := t.TempDir()
		hdr := segHeader(0)
		binary.LittleEndian.PutUint32(hdr[8:12], SegVersion+1)
		if err := os.WriteFile(segPath(dir, 1), hdr, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("future-version open: %v", err)
		}
	})
	t.Run("bad magic refuses", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), bytes.Repeat([]byte("x"), SegHeaderSize), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("bad-magic open: %v", err)
		}
	})
	t.Run("half-written final header is dropped", func(t *testing.T) {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{})
		if err := l.LogOpen("a", []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Simulate a crash during rotation: the next segment exists but
		// its header never finished.
		if err := os.WriteFile(segPath(dir, 2), []byte(SegMagic[:4]), 0o644); err != nil {
			t.Fatal(err)
		}
		re := mustOpen(t, dir, Options{})
		defer re.Close()
		if got := re.Recover(); len(got) != 1 || got[0].Tenant != "a" {
			t.Fatalf("recovered %+v", got)
		}
		if _, err := os.Stat(segPath(dir, 2)); !os.IsNotExist(err) {
			t.Error("half-written segment not deleted")
		}
	})
}

// TestCompaction: a snapshot consolidates live sessions, drops closed
// ones, supersedes old segments, and recovery after it is unchanged for
// the survivors.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 128})
	if err := l.LogOpen("keep", []byte(`{"d":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.LogOpen("gone", []byte(`{"d":2}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.LogEvents("keep", dayEvents(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := l.LogEvents("gone", dayEvents(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.LogClose("gone"); err != nil {
		t.Fatal(err)
	}
	before, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if st := l.Stats(); st.Compactions != 1 {
		t.Errorf("stats = %+v", st)
	}
	after, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 || after[0] <= before[len(before)-1] {
		t.Fatalf("segments after compaction: %v (before %v)", after, before)
	}
	// Appends continue post-compaction.
	if err := l.LogEvents("keep", dayEvents(99)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	got := re.Recover()
	if len(got) != 1 || got[0].Tenant != "keep" {
		t.Fatalf("recovered %+v, want only the live tenant", got)
	}
	if len(got[0].Events) != 21 || got[0].Events[20].Time != 99 {
		t.Fatalf("keep history = %d events", len(got[0].Events))
	}
}

// TestAutoCompaction: CompactEvery triggers without an explicit call.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{CompactEvery: 10})
	if err := l.LogOpen("a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := l.LogEvents("a", dayEvents(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Compactions < 2 {
		t.Fatalf("stats = %+v, want >= 2 automatic compactions", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if got := re.Recover(); len(got) != 1 || len(got[0].Events) != 25 {
		t.Fatalf("recovered %+v", got)
	}
}

// TestConcurrentAppends exercises the group-commit path under -race:
// many tenants appending from their own goroutines, everything
// recoverable afterwards.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Fsync: true, SegmentBytes: 4096})
	const tenants, events = 8, 40
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("t%d", i)
		if err := l.LogOpen(name, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			for j := 0; j < events; j++ {
				if err := l.LogEvents(name, dayEvents(int64(j))); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appends != tenants*events+tenants {
		t.Errorf("appends = %d", st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	got := re.Recover()
	if len(got) != tenants {
		t.Fatalf("recovered %d sessions", len(got))
	}
	for _, s := range got {
		if len(s.Events) != events {
			t.Errorf("%s: %d events", s.Tenant, len(s.Events))
		}
		for j, ev := range s.Events {
			if ev.Time != int64(j) {
				t.Errorf("%s: event %d at time %d", s.Tenant, j, ev.Time)
				break
			}
		}
	}
}

// TestAppendAfterCloseFails pins the ErrLogClosed contract.
func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.LogClose("a"); err != ErrLogClosed {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestStrayCompactTmpRemoved: a crash mid-compaction leaves the scratch
// file; Open must clean it up and recover from the real segments.
func TestStrayCompactTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if err := l.LogOpen("a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, compactTmp)
	if err := os.WriteFile(tmp, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("compact.tmp survived Open")
	}
	if got := re.Recover(); len(got) != 1 {
		t.Fatalf("recovered %+v", got)
	}
}

// TestDurabilityMarkdown sanity-checks the generated reference: it is a
// pure function of (package, bench) and names the load-bearing pieces.
func TestDurabilityMarkdown(t *testing.T) {
	bench := &BenchPair{}
	bench.On.EventsPerSec = 1000
	bench.Off.EventsPerSec = 2000
	doc := string(DurabilityMarkdown(bench))
	for _, want := range []string{
		SegMagic, "CRC-32C", "OpenRecord", "EventsRecord", "CloseRecord",
		"JSON-era", "binary events", "application/x-lease-binary",
		"snapshot", "torn", "last whole record",
		"group commit", "BENCH_PR5.json", "OPERATIONS.md", "ARCHITECTURE.md",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("DurabilityMarkdown missing %q", want)
		}
	}
	if !bytes.Equal(DurabilityMarkdown(bench), DurabilityMarkdown(bench)) {
		t.Error("DurabilityMarkdown is not deterministic")
	}
	if bytes.Equal(DurabilityMarkdown(bench), DurabilityMarkdown(nil)) {
		t.Error("bench numbers do not reach the document")
	}
}

// FuzzReadRecord fuzzes the record parser: arbitrary bytes must never
// panic, a successful parse must stay in bounds, and a parsed record
// must re-frame to bytes that parse back identically.
func FuzzReadRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(frameRecord(KindOpen, []byte(`{"tenant":"a","spec":{}}`)))
	f.Add(frameRecord(KindEvents, []byte(`{"tenant":"a","events":[{"time":1,"kind":"day"}]}`)))
	f.Add(append(frameRecord(KindClose, []byte(`{"tenant":"a"}`)), 0xDE, 0xAD))
	torn := frameRecord(KindClose, []byte(`{"tenant":"b"}`))
	f.Add(torn[:len(torn)-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, n, err := parseRecord(data)
		if err != nil {
			return
		}
		if n < RecHeaderSize+1 || n > len(data) {
			t.Fatalf("parsed size %d out of bounds (len %d)", n, len(data))
		}
		re := frameRecord(kind, payload)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-framed record differs: %x vs %x", re, data[:n])
		}
		k2, p2, n2, err := parseRecord(re)
		if err != nil || k2 != kind || n2 != n || !bytes.Equal(p2, payload) {
			t.Fatalf("round trip: kind %d->%d n %d->%d err %v", kind, k2, n, n2, err)
		}
	})
}
