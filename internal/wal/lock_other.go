//go:build !unix

package wal

import "os"

// lockDir is a no-op on platforms without flock; single-writer
// discipline is then the operator's responsibility.
func lockDir(dir string) (*os.File, error) { return nil, nil }
