package wal

// The follower half of log shipping: AppendRecord validation, Rescan on
// an open log, and the satellite invariant that a mixed-era history —
// version-1 JSON records and version-2 binary records in one directory —
// re-ships to a follower that recovers the same sessions, with binary
// floats recovered bit-exact.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"testing"

	"leasing/internal/metric"
	"leasing/internal/stream"
)

// shipSessions copies recovered sessions into dst the way failover
// adoption does: re-encode each session's spec, history and close as
// current-format records and apply them with AppendRecord.
func shipSessions(t *testing.T, dst *Log, sessions []Session) {
	t.Helper()
	for _, sess := range sessions {
		payload, err := EncodeOpenRecord(sess.Tenant, sess.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.AppendRecord(KindOpen, payload); err != nil {
			t.Fatal(err)
		}
		if len(sess.Events) > 0 {
			payload, err = AppendEventsRecord(nil, sess.Tenant, sess.Events)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.AppendRecord(KindEventsBinary, payload); err != nil {
				t.Fatal(err)
			}
		}
		if sess.Closed {
			payload, err = EncodeCloseRecord(sess.Tenant)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.AppendRecord(KindClose, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestAppendRecordMatchesLocalWrites: the encode helpers produce the
// exact bytes the Log* methods append, so a follower fed (kind, payload)
// pairs ends up with byte-identical segment files.
func TestAppendRecordMatchesLocalWrites(t *testing.T) {
	evs := append(dayEvents(0, 1, 2), elemEvents(4, 9)...)

	primaryDir, followerDir := t.TempDir(), t.TempDir()
	primary := mustOpen(t, primaryDir, Options{})
	follower := mustOpen(t, followerDir, Options{})

	if err := primary.LogOpen("a", []byte(`{"domain":"parking"}`)); err != nil {
		t.Fatal(err)
	}
	if err := primary.LogEvents("a", evs); err != nil {
		t.Fatal(err)
	}
	if err := primary.LogClose("a"); err != nil {
		t.Fatal(err)
	}

	open, err := EncodeOpenRecord("a", []byte(`{"domain":"parking"}`))
	if err != nil {
		t.Fatal(err)
	}
	events, err := AppendEventsRecord(nil, "a", evs)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := EncodeCloseRecord("a")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []struct {
		kind    byte
		payload []byte
	}{{KindOpen, open}, {KindEventsBinary, events}, {KindClose, cls}} {
		if err := follower.AppendRecord(rec.kind, rec.payload); err != nil {
			t.Fatal(err)
		}
	}

	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	pb, err := os.ReadFile(segPath(primaryDir, 1))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(segPath(followerDir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(pb) != string(fb) {
		t.Fatalf("follower segment diverged from primary:\nprimary  %d bytes\nfollower %d bytes", len(pb), len(fb))
	}
}

// TestAppendRecordRejectsBadRecords: a corrupt shipped record is
// refused with ErrBadRecord before touching the log, so one bad ship
// cannot poison a follower.
func TestAppendRecordRejectsBadRecords(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	cases := map[string]struct {
		kind    byte
		payload []byte
	}{
		"unknown kind":       {99, []byte(`{}`)},
		"open not json":      {KindOpen, []byte(`nope`)},
		"binary bad framing": {KindEventsBinary, []byte{0xFF, 0xFF, 0x01}},
		"close not json":     {KindClose, []byte(`{`)},
	}
	for name, c := range cases {
		if err := l.AppendRecord(c.kind, c.payload); !errors.Is(err, ErrBadRecord) {
			t.Errorf("%s: err = %v, want ErrBadRecord", name, err)
		}
	}
	if got := l.Recover(); len(got) != 0 {
		t.Fatalf("rejected records leaked into the log: %+v", got)
	}
}

// TestRescanMatchesRecover: Rescan on an open log sees exactly what a
// close-and-reopen Recover would, and keeps seeing appends made after a
// previous Rescan.
func TestRescanMatchesRecover(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 256}) // force rotations
	if err := l.LogOpen("a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	for day := int64(0); day < 20; day++ {
		if err := l.LogEvents("a", dayEvents(day)); err != nil {
			t.Fatal(err)
		}
	}
	first, err := l.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || len(first[0].Events) != 20 {
		t.Fatalf("first rescan: %+v", first)
	}

	if err := l.LogEvents("a", dayEvents(20)); err != nil {
		t.Fatal(err)
	}
	second, err := l.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if got, want := fmt.Sprintf("%#v", second), fmt.Sprintf("%#v", re.Recover()); got != want {
		t.Fatalf("rescan diverged from recover:\n rescan %s\nrecover %s", got, want)
	}
}

// TestMixedEraHistoryShipsByteExact is the replica identity check for a
// primary whose directory spans both eras: a hand-written version-1
// segment of JSON records, then version-2 binary records with floats
// JSON cannot carry. Recovering the primary, re-shipping every session
// to a follower and recovering that follower must reproduce the same
// sessions — and the binary-era float bits must survive unchanged.
func TestMixedEraHistoryShipsByteExact(t *testing.T) {
	nan := math.Float64frombits(0x7FF8_0000_CAFE_F00D)
	dir := t.TempDir()
	writeJSONEraSegment(t, dir, 1,
		mustJSONRecord(t, KindOpen, OpenRecord{Tenant: "old", Spec: json.RawMessage(`{"domain":"parking"}`)}),
		mustJSONRecord(t, KindEvents, EventsRecord{Tenant: "old", Events: jsonEvents(t, dayEvents(0, 1, 2))}),
		mustJSONRecord(t, KindOpen, OpenRecord{Tenant: "done", Spec: json.RawMessage(`{}`)}),
		mustJSONRecord(t, KindClose, CloseRecord{Tenant: "done"}),
	)
	l := mustOpen(t, dir, Options{SegmentBytes: 64}) // rotate into a v2 segment
	if err := l.LogEvents("old", dayEvents(3)); err != nil {
		t.Fatal(err)
	}
	if err := l.LogOpen("new", []byte(`{"domain":"deadline"}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEvents("new", []stream.Event{
		{Time: 0, Payload: stream.Batch{Clients: []metric.Point{
			{X: nan, Y: math.Copysign(0, -1)},
			{X: math.MaxFloat64, Y: math.SmallestNonzeroFloat64},
		}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if v := segVersion(t, dir, 1); v != SegVersionJSON {
		t.Fatalf("segment 1 version = %d; the directory is not mixed-era", v)
	}

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	primary := re.Recover()
	if len(primary) != 3 {
		t.Fatalf("primary recovered %d sessions, want 3", len(primary))
	}

	follower := mustOpen(t, t.TempDir(), Options{})
	shipSessions(t, follower, primary)
	got, err := follower.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	if gs, ps := fmt.Sprintf("%#v", got), fmt.Sprintf("%#v", primary); gs != ps {
		t.Fatalf("follower sessions diverged:\nfollower %s\nprimary  %s", gs, ps)
	}
	// %#v cannot distinguish NaN payloads: check the bits directly.
	var pts []metric.Point
	for _, sess := range got {
		if sess.Tenant == "new" {
			pts = sess.Events[0].Payload.(stream.Batch).Clients
		}
	}
	if b := math.Float64bits(pts[0].X); b != 0x7FF8_0000_CAFE_F00D {
		t.Errorf("NaN payload bits = %#x after shipping", b)
	}
	if !math.Signbit(pts[0].Y) || pts[0].Y != 0 {
		t.Errorf("negative zero lost: %v", pts[0].Y)
	}
	if pts[1].X != math.MaxFloat64 || pts[1].Y != math.SmallestNonzeroFloat64 {
		t.Errorf("extreme floats drifted: %+v", pts[1])
	}
}
