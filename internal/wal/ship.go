package wal

// The shippable record stream: cluster replication re-uses the log's
// own record encoding as its wire unit. A primary encodes each
// acknowledged record once, appends it locally, and ships the same
// (kind, payload) pair to its replica, which applies it verbatim with
// AppendRecord — so a follower log is byte-compatible with a log the
// tenant wrote locally, and recovery from it is the same code path as
// crash recovery. Rescan turns an open follower log into sessions at
// failover time without reopening it.

import (
	"encoding/json"
	"errors"
	"fmt"

	"leasing/internal/stream"
)

// ErrBadRecord marks a record whose encoding fails validation — a
// malformed shipped payload, as opposed to a local storage failure.
var ErrBadRecord = errors.New("wal: bad record")

// EncodeOpenRecord encodes a KindOpen payload: the tenant and the spec
// that deterministically rebuilds its algorithm. The bytes are exactly
// what LogOpen appends.
func EncodeOpenRecord(tenant string, spec []byte) ([]byte, error) {
	payload, err := json.Marshal(OpenRecord{Tenant: tenant, Spec: json.RawMessage(spec)})
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return payload, nil
}

// EncodeCloseRecord encodes a KindClose payload — what LogClose
// appends.
func EncodeCloseRecord(tenant string) ([]byte, error) {
	payload, err := json.Marshal(CloseRecord{Tenant: tenant})
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return payload, nil
}

// AppendEventsRecord appends a KindEventsBinary payload (uvarint tenant
// length, tenant bytes, then the binary event framing) to dst — the
// bytes LogEvents appends, exposed so a replication layer can encode
// once and both append and ship the same record.
func AppendEventsRecord(dst []byte, tenant string, evs []stream.Event) ([]byte, error) {
	return appendEventsBinaryRecord(dst, tenant, evs)
}

// RecordTenant extracts the tenant a record belongs to. KindOpen,
// KindEvents and KindClose payloads are JSON; KindEventsBinary carries
// the tenant as its uvarint-framed prefix.
func RecordTenant(kind byte, payload []byte) (string, error) {
	switch kind {
	case KindOpen:
		var rec OpenRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return "", fmt.Errorf("%w: open record: %v", ErrBadRecord, err)
		}
		return rec.Tenant, nil
	case KindEvents:
		var rec EventsRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return "", fmt.Errorf("%w: events record: %v", ErrBadRecord, err)
		}
		return rec.Tenant, nil
	case KindEventsBinary:
		tenant, _, err := splitTenantPayload(payload)
		if err != nil {
			return "", fmt.Errorf("%w: binary events record: %v", ErrBadRecord, err)
		}
		return tenant, nil
	case KindClose:
		var rec CloseRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return "", fmt.Errorf("%w: close record: %v", ErrBadRecord, err)
		}
		return rec.Tenant, nil
	default:
		return "", fmt.Errorf("%w: unknown record kind %d", ErrBadRecord, kind)
	}
}

// AppendRecord applies one already-encoded record — the follower half
// of log shipping. The record's tenant is parsed (which validates the
// payload's framing) before the append, so a corrupt shipped record is
// rejected instead of poisoning the follower log; full event decoding
// is deferred to recovery or Rescan, exactly as for locally written
// records. Per-tenant ordering is the caller's: ship records in the
// order the primary acknowledged them.
func (l *Log) AppendRecord(kind byte, payload []byte) error {
	if _, err := RecordTenant(kind, payload); err != nil {
		return err
	}
	return l.appendRaw(kind, payload)
}

// Rescan re-reads the live segments of an open log and returns the
// sessions they describe — what Recover would return if the log were
// closed and reopened now. Appends are blocked for the duration. A
// follower calls this at failover to turn its shipped history into
// sessions without giving up the log.
func (l *Log) Rescan() ([]Session, error) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrLogClosed
	}
	// Every record in the live segments was written whole by this
	// process, so the scan is strict — a torn record here is a real
	// error, not a crash tail.
	st := newScanState()
	for idx := l.first; idx <= l.index; idx++ {
		if _, err := scanSegment(segPath(l.dir, idx), false, st); err != nil {
			return nil, err
		}
	}
	return st.sessions(), nil
}
