package wal

// The generated durability reference. docs/DURABILITY.md is rendered
// from this package by cmd/leasereport — the record format section comes
// from the same constants and record structs the log writes, and the
// fsync trade-off section is quantified from the committed
// BENCH_PR5.json — so the document cannot drift from the implementation.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
)

// FsyncBench summarizes one leaseload durable-engine run, the half of a
// BenchPair DurabilityMarkdown quantifies the fsync trade-off from.
type FsyncBench struct {
	EventsPerSec float64 `json:"events_per_sec"`
	Latency      struct {
		P50 float64 `json:"p50"`
		P99 float64 `json:"p99"`
	} `json:"submit_latency_us"`
}

// BenchPair is the committed fsync-on/off throughput pair produced by
// `leaseload -durable-bench` (BENCH_PR5.json).
type BenchPair struct {
	On  FsyncBench `json:"fsync_on"`
	Off FsyncBench `json:"fsync_off"`
}

// LoadBenchPair reads a committed BENCH_PR5.json. It is shared by
// cmd/leasereport and the docs drift tests so both quantify the
// generated document from the same bytes.
func LoadBenchPair(path string) (*BenchPair, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p BenchPair
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	return &p, nil
}

// DurabilityMarkdown renders the body of docs/DURABILITY.md: the WAL
// record format (from this package's constants and record structs),
// recovery semantics, the fsync/throughput trade-off (quantified from
// bench when non-nil), and the crash-recovery runbook. The output is a
// pure function of (this package, bench), which is what lets
// `leasereport -check` gate drift.
func DurabilityMarkdown(bench *BenchPair) []byte {
	var b bytes.Buffer
	b.WriteString(`# Durability — the write-ahead log and crash recovery

The lease service survives crashes by write-ahead logging: every
acknowledged open, event batch and close is in a segmented, CRC-framed
log (` + "`internal/wal`" + `) **before its caller learns it succeeded** —
event batches and closes are appended before the engine even applies
them — and on startup the daemon rebuilds every tenant session by
replaying the log. Because a session is a pure function of its open spec and its
time-ordered events (the event-sourced shape of the stream protocol),
recovery never deserializes algorithm state — it rebuilds the algorithm
from the spec and replays the history, and the recovered session is
byte-identical to a single-threaded ` + "`Replay`" + ` of the logged events.
` + "`cmd/leaseload -crash`" + ` proves that end to end by SIGKILLing a daemon
mid-load, restarting it, finishing the run and verifying every tenant.

This reference is generated from ` + "`internal/wal`" + ` by ` + "`cmd/leasereport`" + `
(the ` + "`-check`" + ` gate keeps it byte-identical to the code). The operator
view — flags, data-dir layout, backup and restore — is in
[OPERATIONS.md](OPERATIONS.md); the layer diagram is in
[ARCHITECTURE.md](ARCHITECTURE.md).

## On-disk layout

A log is a directory of numbered segment files:

`)
	fmt.Fprintf(&b, "```\n<data-dir>/\n  %08d.wal      first live segment\n  %08d.wal      ...\n  %08d.wal      active segment (appends go here)\n  compact.tmp       compaction scratch (transient; deleted on open)\n  LOCK              exclusive single-writer flock (unix only; a second process fails fast)\n```\n\nThe LOCK flock is advisory and unix-only: on platforms without flock\nthe file is not locked, and running one writer per data directory is\nthe operator's responsibility.\n\n", 1, 2, 3)
	fmt.Fprintf(&b, `Appends go to the highest-numbered segment; once it grows past the
rotation threshold (Options.SegmentBytes, default 4 MiB) the log
retires it and continues in the next index. Segment files are never
modified after retirement — the only in-place mutation the log ever
performs is truncating a torn tail on open.

## Segment format

Every segment starts with a %d-byte header:

| Offset | Size | Field |
| --- | --- | --- |
| 0 | 8 | magic %q |
| 8 | 4 | format version (little-endian uint32; this build writes %d, reads %d and %d) |
| 12 | 4 | flags (little-endian uint32; bit 0 = compaction snapshot) |

A reader rejects a bad magic or an unknown version outright — a future
format bump is a clean error, never a misparse. Version %d is the
JSON-era format (kinds 1–3 only); version %d added the binary events
record (kind %d), and a mixed directory of version-%d and version-%d
segments replays correctly in order. The snapshot flag marks
a segment written by compaction: it supersedes every lower-numbered
segment, so recovery starts at the newest snapshot and deletes anything
older.

Records follow the header back to back, each framed as:

| Offset | Size | Field |
| --- | --- | --- |
| 0 | 4 | body length (little-endian uint32, 1..%d) |
| 4 | 4 | CRC-32C (Castagnoli) of the body |
| 8 | length | body: 1 kind byte + the kind's payload (JSON for kinds 1–3, binary for kind 4) |

## Record types

The kind 1–3 payloads reuse the JSON encodings of `+"`internal/wire`"+` —
the same single source of truth the HTTP protocol speaks — and the
kind-4 payload reuses its binary event encoding (the
`+"`application/x-lease-binary`"+` frame payload, see docs/API.md), so the
log, the wire and the recovery replay can never disagree about what an
event is.

`, SegHeaderSize, SegMagic, SegVersion, SegVersion, SegVersionJSON,
		SegVersionJSON, SegVersion, KindEventsBinary, SegVersionJSON, SegVersion,
		MaxRecordBytes)
	for _, rec := range []struct {
		kind byte
		name string
		v    any
		when string
	}{
		{KindOpen, "OpenRecord", OpenRecord{}, "appended by the owning shard as it installs the session — after the duplicate check (racing opens log only the winning spec) and before the session is visible to submits, so a tenant's open record always precedes its event records"},
		{KindEvents, "EventsRecord", EventsRecord{}, "the JSON-era event batch: replayed from version-1 segments, no longer written (this build appends kind 4 instead)"},
		{KindClose, "CloseRecord", CloseRecord{}, "appended before a session is sealed"},
	} {
		fmt.Fprintf(&b, "### kind %d — `%s`\n\n%s.\n\n| Field | Type | Description |\n| --- | --- | --- |\n", rec.kind, rec.name, rec.when)
		t := reflect.TypeOf(rec.v)
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
			fmt.Fprintf(&b, "| `%s` | %s | %s |\n", name, recJSONType(f.Type), f.Tag.Get("doc"))
		}
		b.WriteString("\n")
	}

	fmt.Fprintf(&b, `### kind %d — binary events

Appended before an acknowledged batch is enqueued — the same position
in the protocol as the JSON-era kind %d, but the body is encoded
directly from the in-memory events with no JSON round-trip. The payload
after the kind byte is:

| Field | Type | Description |
| --- | --- | --- |
| tenant length | uvarint | byte length of the tenant name |
| tenant | bytes | the tenant name, UTF-8 |
| events | bytes | an `+"`application/x-lease-binary`"+` frame payload: uvarint event count, then the events in the wire binary event encoding (docs/API.md has the per-kind layout) |

The event encoding is canonical — it round-trips byte-identically and
decodes to exactly the values the JSON path would produce (float bits
preserved, null vs empty client lists preserved) — so replaying a
kind-%d record rebuilds the same session a kind-%d record would have.

`, KindEventsBinary, KindEvents, KindEventsBinary, KindEvents)

	b.WriteString(`## Recovery semantics

On open the log scans every live segment in order and replays the
records with exactly the drop semantics the live engine has:

- an **open** installs the tenant; a duplicate open (which the live
  engine rejected) keeps the first;
- an **events** record appends to the tenant's history; events for an
  unknown or closed tenant (which the live engine dropped and counted)
  are dropped again;
- a **close** seals the tenant; recovered closed sessions stay readable
  but accept no further events.

The engine's ` + "`Restore`" + ` then replays each recovered history through a
leaser rebuilt deterministically from the logged spec — the same
spec-to-algorithm mapping the open endpoint uses — without re-logging.
Sessions whose algorithm rejected an event mid-history fail at the same
event on recovery, reproducing the pre-crash failed state.

These guarantees are stated relative to the engine's ordering contract:
a tenant's events are submitted from one goroutine, and its close is
ordered with those submits. A close racing an in-flight submit from
another goroutine leaves the raced batch's fate undefined on both sides
— the live engine may drop what recovery replays, or vice versa — just
as the race already makes the live outcome itself nondeterministic.

Because the WAL append happens before the engine enqueue, a crash can
leave a suffix of records that were logged but never acknowledged (the
response was lost with the process). Recovery replays them: after a
restart, the authoritative resume point is the tenant's processed-event
count (the ` + "`events`" + ` endpoint after a flush), not the client's last
acknowledged offset — which is how ` + "`leaseload -crash`" + ` resumes.

## Torn writes and corruption

Only the final segment may end mid-record. The scan treats a partial
frame header, a body length running past the file, or a CRC-32C
mismatch as the torn-write signature: the tail segment is **truncated
at the last whole record** (the torn suffix was never acknowledged
under ` + "`-fsync`" + `, so nothing durable is lost), and appending resumes
there. A half-created final segment (crash during rotation) is deleted
the same way. The same signatures anywhere **before** the tail mean
acknowledged records were damaged — that is data loss, and the log
refuses to open rather than silently replaying around it (restore the
directory from backup instead).

## Compaction

Compaction rewrites the whole log as one snapshot segment: per live
tenant, an open record followed by its consolidated event history. The
snapshot is written in the current segment version with binary event
records, so the first compaction of a JSON-era directory migrates it.
Closed sessions are dropped — **close is the retention boundary**, so a
tenant's history is reclaimed by the first compaction after its close
(and the tenant no longer survives recovery past that point). The
rewrite is crash-safe: the snapshot is built in ` + "`compact.tmp`" + `, synced,
renamed to the next segment index, and only then are the superseded
segments deleted; a crash between rename and delete leaves both, and
the snapshot flag tells recovery which to trust. Appends block for the
duration of a compaction, so tune the cadence (` + "`leased -compact-every`" + `,
in appended records) to how quickly closed-session garbage accumulates.

## Fsync and the durability/throughput trade-off

With ` + "`-fsync`" + ` the log syncs the active segment before any append is
acknowledged, so every 2xx survives machine crashes and power loss.
Concurrent appenders share syncs (group commit): one fsync covers every
record written before it, so the cost amortizes with concurrency.
Without ` + "`-fsync`" + `, appends still go straight to the file — acknowledged
events survive a SIGKILL of the process — but an OS crash can lose the
page-cache suffix.

`)
	if bench != nil {
		fmt.Fprintf(&b, `The committed [BENCH_PR5.json](../BENCH_PR5.json)
(`+"`leaseload -durable-bench`"+`, mixed-domain tenants through a
WAL-backed engine) quantifies the trade-off on the baseline hardware:

| WAL mode | Throughput | Submit p50 | Submit p99 |
| --- | --- | --- | --- |
| fsync off | %.0f events/s | %.1f µs | %.1f µs |
| fsync on (group commit) | %.0f events/s | %.1f µs | %.1f µs |

`, bench.Off.EventsPerSec, bench.Off.Latency.P50, bench.Off.Latency.P99,
			bench.On.EventsPerSec, bench.On.Latency.P50, bench.On.Latency.P99)
	} else {
		b.WriteString(`No committed BENCH_PR5.json was found next to this document, so the
trade-off is not quantified here; regenerate it with
` + "`go run ./cmd/leaseload -durable-bench -out BENCH_PR5.json`" + ` and then
regenerate this document.

`)
	}

	b.WriteString(`## Crash-recovery runbook

1. **The daemon died (crash, OOM, SIGKILL).** Restart it with the same
   ` + "`-data-dir`" + `. It logs how many sessions and events it recovered; a
   torn tail is truncated and logged, never replayed. Clients then
   ` + "`flush`" + `, read each tenant's processed-event count, and resume
   submitting after that offset (the Go client pattern
   ` + "`leaseload -crash`" + ` uses).
2. **The log refuses to open (corruption before the tail).** Do not
   delete segments by hand — acknowledged data is gone either way, and
   the refusal tells you so. Restore the newest backup of the data
   directory and replay producers from their upstream source.
3. **Backup.** Stop appends (stop the daemon, or snapshot the
   filesystem) and copy the whole directory; segments are append-only,
   so a file-by-file copy taken while the daemon is stopped is always
   consistent. Restore = put the directory back and start the daemon.
4. **Verify a recovery.**
   ` + "`go run ./cmd/leaseload -crash -leased <binary>`" + ` runs the whole
   drill — kill mid-load, restart, resume, and byte-compare every
   tenant against a local replay of its logged history.
`)
	return b.Bytes()
}

// recJSONType renders a record field's JSON type for the format tables.
func recJSONType(t reflect.Type) string {
	switch t.Kind() {
	case reflect.String:
		return "string"
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return "JSON value"
		}
		return "array of `" + t.Elem().Name() + "` objects"
	case reflect.Struct:
		return "`" + t.Name() + "` object"
	default:
		return t.Kind().String()
	}
}
