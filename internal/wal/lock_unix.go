//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on <dir>/LOCK so a second
// process pointed at the same data directory fails fast instead of
// truncating and interleaving writes with the first. The lock is
// released when the returned file is closed (or the process dies).
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is locked by another process (flock: %w)", dir, err)
	}
	return f, nil
}
