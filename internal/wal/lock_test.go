//go:build unix

package wal

import (
	"strings"
	"testing"
)

// TestOpenLocksDirectory: a second writer on the same data dir must
// fail fast instead of truncating and interleaving with the first, and
// Close must release the lock for the next life.
func TestOpenLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second open of a locked dir: %v", err)
	}
	if err := l.LogOpen("a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if got := re.Recover(); len(got) != 1 {
		t.Fatalf("recovered %+v after relock", got)
	}
}
