package wire

// Endpoint declarations and the generated API reference. Everything the
// server routes on — method, path, auth scope, request/response types,
// error codes — is declared here once; internal/server builds its mux
// from the same constants and cmd/leasereport renders docs/API.md from
// APIMarkdown, whose -check gate keeps the committed reference
// byte-identical to these declarations.

import (
	"bytes"
	"fmt"
	"net/http"
	"reflect"
	"strings"
)

// Error is the body of every non-2xx response.
type Error struct {
	Code     string `json:"code" doc:"machine-readable error code (see the error table)"`
	Message  string `json:"message" doc:"human-readable detail"`
	Accepted int    `json:"accepted,omitempty" doc:"events enqueued before the failure (submit endpoint only); resume after this offset"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Error codes, one per failure class the service reports.
const (
	// CodeBadRequest: malformed JSON, an unknown event kind, an invalid
	// spec, or a time regression within one submitted batch. Not
	// retryable. (A time regression across separate submits cannot be
	// caught synchronously; it surfaces later as session_failed.)
	CodeBadRequest = "bad_request"
	// CodeUnauthorized: auth is enabled and the request carried no
	// (or an unknown) bearer token.
	CodeUnauthorized = "unauthorized"
	// CodeForbidden: the token is valid but scoped to another tenant.
	CodeForbidden = "forbidden"
	// CodeUnknownTenant: the tenant was never opened.
	CodeUnknownTenant = "unknown_tenant"
	// CodeDuplicateTenant: open of an already-open tenant.
	CodeDuplicateTenant = "duplicate_tenant"
	// CodeTenantClosed: close of an already-closed tenant.
	CodeTenantClosed = "tenant_closed"
	// CodeBackpressure: the tenant's shard queue is full. Retryable:
	// back off and resume after the reported accepted count.
	CodeBackpressure = "backpressure"
	// CodeNotRecording: result read from a daemon running without
	// -record.
	CodeNotRecording = "not_recording"
	// CodeSessionFailed: the tenant's algorithm rejected an event; the
	// session is sealed at its state before the failure.
	CodeSessionFailed = "session_failed"
	// CodeStorageFailed: the daemon runs durable (-data-dir) and the
	// write-ahead-log append failed; the operation was not applied.
	CodeStorageFailed = "storage_failed"
	// CodeShuttingDown: the daemon is draining for shutdown.
	CodeShuttingDown = "shutting_down"
	// CodeNotClustered: a replication endpoint was called on a daemon
	// running without -peers.
	CodeNotClustered = "not_clustered"
)

// HTTPStatus maps an error code to its HTTP status.
func HTTPStatus(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeUnauthorized:
		return http.StatusUnauthorized
	case CodeForbidden:
		return http.StatusForbidden
	case CodeUnknownTenant:
		return http.StatusNotFound
	case CodeDuplicateTenant, CodeTenantClosed, CodeNotRecording, CodeNotClustered:
		return http.StatusConflict
	case CodeBackpressure:
		return http.StatusTooManyRequests
	case CodeShuttingDown:
		return http.StatusServiceUnavailable
	case CodeStorageFailed:
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// OpenResponse acknowledges an opened session.
type OpenResponse struct {
	Tenant string `json:"tenant" doc:"the opened tenant"`
	Domain string `json:"domain" doc:"the session's algorithm family"`
}

// SubmitResponse acknowledges enqueued events. Delivery is asynchronous:
// acceptance means the events are queued on the tenant's shard, and the
// flush endpoint is the barrier that makes them visible to reads.
type SubmitResponse struct {
	Accepted int `json:"accepted" doc:"events enqueued by this request"`
}

// FlushResponse acknowledges a completed flush barrier.
type FlushResponse struct {
	Flushed bool `json:"flushed" doc:"always true on success"`
}

// CloseResponse reports a sealed session's final totals.
type CloseResponse struct {
	Tenant string        `json:"tenant" doc:"the closed tenant"`
	Events int64         `json:"events" doc:"events processed over the session's lifetime"`
	Cost   CostBreakdown `json:"cost" doc:"final cost breakdown"`
}

// EventsResponse reports a session's processed-event count.
type EventsResponse struct {
	Processed int64 `json:"processed" doc:"events processed, current as of the last published batch"`
}

// HealthResponse is the liveness probe body.
type HealthResponse struct {
	Status string `json:"status" doc:"always \"ok\" while the daemon accepts work"`
}

// ReplicateResponse acknowledges applied replication records.
type ReplicateResponse struct {
	Applied int `json:"applied" doc:"write-ahead-log records appended to the follower log by this request"`
}

// ActivateRequest scopes a failover activation.
type ActivateRequest struct {
	Down []string `json:"down,omitempty" doc:"peer base URLs that are down; only follower sessions whose ring owner is in this list are adopted. Empty (or an empty body) adopts every follower session not already active locally"`
}

// ActivateResponse reports a completed failover activation.
type ActivateResponse struct {
	Activated int `json:"activated" doc:"follower sessions recovered into the serving engine; sessions already active count zero (activation is idempotent)"`
}

// Endpoint declares one route of the service.
//
//lint:allow-wiretags route declaration table consumed in-process by server and docs generators; never serialized onto the wire
type Endpoint struct {
	Name     string // short identifier, e.g. "submit"
	Method   string
	Path     string // mux pattern; {tenant} is the tenant path variable
	Auth     string // AuthNone, AuthTenant or AuthAdmin
	Summary  string
	Request  any      // zero value of the request body type; nil when none
	Response any      // zero value of the response body type
	Errors   []string // error codes this endpoint returns (beyond auth)
	Notes    string   // extra semantics (streaming, barriers, retries)
}

// Auth scopes of Endpoint.Auth.
const (
	// AuthNone: always open, even with auth enabled.
	AuthNone = "none"
	// AuthTenant: requires a token scoped to the path's tenant (or the
	// admin token) when auth is enabled.
	AuthTenant = "tenant"
	// AuthAdmin: requires the admin token ("*" scope) when auth is
	// enabled.
	AuthAdmin = "admin"
)

// Endpoints declares every route of the lease service, in documentation
// order. internal/server registers exactly these.
func Endpoints() []Endpoint {
	return []Endpoint{
		{
			Name:    "open",
			Method:  http.MethodPost,
			Path:    "/v1/tenants/{tenant}",
			Auth:    AuthTenant,
			Summary: "Open a tenant session from a full instance spec.",
			Request: OpenRequest{}, Response: OpenResponse{},
			Errors: []string{CodeBadRequest, CodeDuplicateTenant, CodeStorageFailed, CodeShuttingDown},
			Notes: "Construction is deterministic: the same spec (including seed) " +
				"always builds the same algorithm, so a remote session is exactly " +
				"reproducible by a local replay of the same spec and events. On a " +
				"durable daemon (-data-dir) the spec is write-ahead logged before " +
				"the open is acknowledged, and recovery rebuilds the session from " +
				"it after a restart (see docs/DURABILITY.md).",
		},
		{
			Name:    "submit",
			Method:  http.MethodPost,
			Path:    "/v1/tenants/{tenant}/events",
			Auth:    AuthTenant,
			Summary: "Submit a batch of events for the tenant.",
			Request: []Event{}, Response: SubmitResponse{},
			Errors: []string{CodeBadRequest, CodeBackpressure, CodeStorageFailed, CodeShuttingDown},
			Notes: "The body is either a JSON array of events or, with " +
				"Content-Type application/x-ndjson, a stream of one JSON event per " +
				"line (the bulk-ingestion path; events are enqueued in chunks while " +
				"the body streams in). With Content-Type application/x-lease-binary " +
				"the body is the compact binary framing instead (see the binary " +
				"framing section) — the same events, decoded on a pooled " +
				"zero-allocation path; a session may switch encodings freely " +
				"between requests. Events must arrive in non-decreasing time " +
				"order per tenant, from one submitter: a regression inside one " +
				"request fails fast with 400 bad_request, while a regression " +
				"across separate requests is only seen by the shard as it applies " +
				"the events and therefore surfaces asynchronously — the session " +
				"fails and later reads return session_failed. When the tenant's " +
				"shard queue is full the request fails fast with 429 backpressure " +
				"and reports how many events were already accepted — resume after " +
				"that offset once the queue drains. Events for an unknown, closed " +
				"or failed tenant are accepted and then dropped (counted in " +
				"metrics), matching the engine's asynchronous delivery contract.",
		},
		{
			Name:    "flush",
			Method:  http.MethodPost,
			Path:    "/v1/tenants/{tenant}/flush",
			Auth:    AuthTenant,
			Summary: "Block until every previously submitted event is processed and published.",
			Request: nil, Response: FlushResponse{},
			Errors: []string{CodeShuttingDown},
			Notes: "The flush barrier is engine-wide: it covers every tenant's " +
				"prior submissions, in particular this tenant's. After it returns, " +
				"cost, snapshot and result reads reflect everything submitted " +
				"before the flush.",
		},
		{
			Name:    "close",
			Method:  http.MethodDelete,
			Path:    "/v1/tenants/{tenant}",
			Auth:    AuthTenant,
			Summary: "Seal the tenant's session and report its final totals.",
			Request: nil, Response: CloseResponse{},
			Errors: []string{CodeUnknownTenant, CodeTenantClosed, CodeStorageFailed, CodeShuttingDown},
			Notes: "Close waits for the tenant's queued events, publishes the " +
				"final state, then drops any later events (counted in metrics). " +
				"Reads keep serving the final state after close. On a durable " +
				"daemon, close is also the retention boundary: the next WAL " +
				"compaction reclaims a closed tenant's logged history.",
		},
		{
			Name:    "cost",
			Method:  http.MethodGet,
			Path:    "/v1/tenants/{tenant}/cost",
			Auth:    AuthTenant,
			Summary: "Read the tenant's cumulative cost breakdown.",
			Request: nil, Response: CostBreakdown{},
			Errors: []string{CodeUnknownTenant, CodeSessionFailed},
			Notes: "Served from cached per-session state, current as of the last " +
				"batch the tenant's shard processed; flush first to synchronize.",
		},
		{
			Name:    "events",
			Method:  http.MethodGet,
			Path:    "/v1/tenants/{tenant}/events",
			Auth:    AuthTenant,
			Summary: "Read how many of the tenant's events have been processed.",
			Request: nil, Response: EventsResponse{},
			Errors: []string{CodeUnknownTenant, CodeSessionFailed},
		},
		{
			Name:    "snapshot",
			Method:  http.MethodGet,
			Path:    "/v1/tenants/{tenant}/snapshot",
			Auth:    AuthTenant,
			Summary: "Read the tenant's current solution snapshot.",
			Request: nil, Response: Solution{},
			Errors: []string{CodeUnknownTenant, CodeSessionFailed},
		},
		{
			Name:    "result",
			Method:  http.MethodGet,
			Path:    "/v1/tenants/{tenant}/result",
			Auth:    AuthTenant,
			Summary: "Read the tenant's full recorded run (requires -record).",
			Request: nil, Response: Run{},
			Errors: []string{CodeUnknownTenant, CodeNotRecording, CodeSessionFailed},
			Notes: "The run is byte-identical to what a single-threaded Replay of " +
				"the session's events produces — the service's determinism anchor. " +
				"Content-negotiated: JSON by default; Accept: " +
				"application/x-lease-binary returns the same run in the binary run " +
				"encoding (see the binary framing section).",
		},
		{
			Name:    "replicate",
			Method:  http.MethodPost,
			Path:    "/v1/replica/records",
			Auth:    AuthAdmin,
			Summary: "Apply shipped write-ahead-log records to this node's follower log.",
			Request: nil, Response: ReplicateResponse{},
			Errors: []string{CodeBadRequest, CodeNotClustered, CodeStorageFailed, CodeShuttingDown},
			Notes: "The log-shipping ingest half of cluster replication (leased " +
				"-peers; see docs/CLUSTER.md). The body is the binary framing: the " +
				"magic followed by one frame per record, each frame payload a " +
				"record-kind byte and the record's encoded payload — exactly the " +
				"bytes the primary appended to its own write-ahead log. Records " +
				"are applied in body order; a tenant's records must be shipped in " +
				"the order the primary acknowledged them. Application is atomic " +
				"per record, not per body: on a mid-body failure the error " +
				"reports how many records were applied, and because re-applied " +
				"records replay idempotently through recovery's last-write-wins " +
				"session state, a primary may safely re-ship from its last " +
				"acknowledged offset.",
		},
		{
			Name:    "activate",
			Method:  http.MethodPost,
			Path:    "/v1/replica/activate",
			Auth:    AuthAdmin,
			Summary: "Recover this node's follower sessions into its serving engine.",
			Request: ActivateRequest{}, Response: ActivateResponse{},
			Errors: []string{CodeBadRequest, CodeNotClustered, CodeStorageFailed, CodeShuttingDown},
			Notes: "The failover half of cluster replication: follower-log sessions " +
				"whose ring owner is in the request's down list (every session, " +
				"when the list is empty) and which are not already active locally " +
				"are rebuilt from their shipped spec and event history — the same " +
				"deterministic replay as crash recovery — and begin serving reads " +
				"and accepting events on this node. Scoping to down owners keeps a " +
				"survivor from adopting tenants a healthy primary still serves. " +
				"Before a session is activated its history is copied into this " +
				"node's own write-ahead log, so the adopted tenant survives a " +
				"later crash of the adopting node too. Activation is idempotent; " +
				"already-active tenants are skipped.",
		},
		{
			Name:    "metrics",
			Method:  http.MethodGet,
			Path:    "/v1/metrics",
			Auth:    AuthAdmin,
			Summary: "Sample the engine's per-shard and aggregate counters.",
			Request: nil, Response: Metrics{},
			Notes: "Content-negotiated: JSON by default; `Accept: text/plain` or " +
				"`?format=prometheus` returns the same counters in the Prometheus " +
				"text exposition (plus WAL and per-endpoint HTTP families).",
		},
		{
			Name:    "health",
			Method:  http.MethodGet,
			Path:    "/v1/healthz",
			Auth:    AuthNone,
			Summary: "Liveness probe.",
			Request: nil, Response: HealthResponse{},
		},
	}
}

// APIMarkdown renders the endpoint reference (the body of docs/API.md)
// from the declarations above. The output is a pure function of this
// package, so cmd/leasereport's -check gate can regenerate and compare
// it byte for byte.
func APIMarkdown() []byte {
	var b bytes.Buffer
	b.WriteString(`# API — the leased HTTP/JSON protocol

The lease service (` + "`cmd/leased`" + `) fronts the sharded multi-tenant
engine over HTTP/JSON. This reference is generated from the protocol
declarations in ` + "`internal/wire`" + ` — the same declarations the server
routes on and the Go client (` + "`internal/client`" + `, root ` + "`Dial`" + `) speaks —
so it cannot drift from the implementation. Operator-facing setup lives
in [OPERATIONS.md](OPERATIONS.md).

## Conventions

- Request and response bodies are JSON; responses are encoded with
  Content-Type ` + "`application/json`" + `.
- Every non-2xx response carries an ` + "`Error`" + ` body (see the error table).
- With auth enabled (` + "`leased -auth`" + `), requests carry
  ` + "`Authorization: Bearer <token>`" + `. A token is scoped to one tenant; the
  ` + "`*`" + ` scope is the admin token, valid for every tenant and for
  admin-only endpoints.
- In ` + "`leases`" + `, ` + "`assignments`" + `, ` + "`decisions`" + ` and ` + "`curve`" + ` fields,
  ` + "`null`" + ` and ` + "`[]`" + ` are distinct on purpose: the wire preserves the
  in-process representation exactly, so a run fetched over HTTP compares
  byte-identical to a local replay.

## Endpoints

`)
	for _, ep := range Endpoints() {
		fmt.Fprintf(&b, "### `%s %s` — %s\n\n%s\n\n", ep.Method, ep.Path, ep.Name, ep.Summary)
		fmt.Fprintf(&b, "- Auth: %s\n", authDoc(ep.Auth))
		if ep.Request != nil {
			fmt.Fprintf(&b, "- Request: %s\n", typeRef(reflect.TypeOf(ep.Request)))
		} else {
			b.WriteString("- Request: none\n")
		}
		fmt.Fprintf(&b, "- Response: %s\n", typeRef(reflect.TypeOf(ep.Response)))
		if len(ep.Errors) > 0 {
			fmt.Fprintf(&b, "- Errors: `%s`\n", strings.Join(ep.Errors, "`, `"))
		}
		b.WriteString("\n")
		if ep.Notes != "" {
			fmt.Fprintf(&b, "%s\n\n", ep.Notes)
		}
	}

	b.WriteString(`## Error codes

| Code | HTTP status | Meaning |
| --- | --- | --- |
`)
	for _, c := range []struct{ code, meaning string }{
		{CodeBadRequest, "malformed JSON, unknown event kind, invalid spec, or in-request time regression; not retryable"},
		{CodeUnauthorized, "auth enabled and no (or an unknown) bearer token presented"},
		{CodeForbidden, "valid token scoped to a different tenant"},
		{CodeUnknownTenant, "the tenant was never opened"},
		{CodeDuplicateTenant, "open of an already-open tenant"},
		{CodeTenantClosed, "close of an already-closed tenant"},
		{CodeBackpressure, "the tenant's shard queue is full; back off and resume after the reported accepted count"},
		{CodeNotRecording, "result read from a daemon running without -record"},
		{CodeSessionFailed, "the tenant's algorithm rejected an event (e.g. a cross-request time regression); the session is sealed at its pre-failure state"},
		{CodeStorageFailed, "the durable daemon's write-ahead-log append failed; the operation was not applied"},
		{CodeShuttingDown, "the daemon is draining for shutdown"},
		{CodeNotClustered, "a replication endpoint was called on a daemon running without -peers"},
	} {
		fmt.Fprintf(&b, "| `%s` | %d | %s |\n", c.code, HTTPStatus(c.code), c.meaning)
	}

	b.WriteString(`
## Backpressure

Ingestion is bounded end to end: each engine shard owns a fixed-depth
operation queue (` + "`leased -queue`" + `), and the submit endpoint enqueues
without blocking. A full queue fails the request fast with ` + "`429`" + ` /
` + "`backpressure`" + ` and an ` + "`accepted`" + ` count of the events already
enqueued; clients back off and resume after that offset (the Go client
does this automatically). 429s are the load signal — sustained 429s mean
the shards cannot keep up with ingestion, so add shards, deepen queues,
or slow producers.

## Binary framing

JSON is the default and the source of truth for this document, but the
hot paths can negotiate the compact binary framing per request:

- submit: ` + "`Content-Type: application/x-lease-binary`" + ` switches the body
  to binary frames, decoded on a pooled zero-allocation path.
- result: ` + "`Accept: application/x-lease-binary`" + ` returns the recorded run
  in the binary run encoding (the response Content-Type echoes it).
- Everything else — responses, errors, every other endpoint — stays
  JSON. A session may switch encodings freely between requests; the two
  decode to identical values, so mixed-encoding histories replay
  byte-identical to single-encoding ones.

A binary submit body is the magic ` + "`LEB1`" + ` followed by frames, each
decoded and enqueued as it is read (the NDJSON-equivalent chunked
path). Integers are varints (zigzag for signed values), lengths plain
uvarints, floats raw IEEE-754 little-endian bits — so every float
round-trips exactly, including NaN payloads and negative zero. A frame
payload is capped at 16 MiB; a larger declared length is rejected as
corruption before any buffer is sized from it.

| Field | Encoding | Description |
| --- | --- | --- |
| magic | 4 bytes ` + "`LEB1`" + ` | opens the body; a JSON array posted with the binary Content-Type fails fast |
| frame* | uvarint length + payload | one frame per chunk |
| frame payload | uvarint count + events | the chunk's events, in order |

Each event is a kind byte, a zigzag-varint time, then the kind's
fields:

| Kind | Byte | Fields after time |
| --- | --- | --- |
| ` + "`day`" + ` | 1 | none |
| ` + "`element`" + ` | 2 | varint elem, varint p |
| ` + "`window`" + ` | 3 | varint d |
| ` + "`element_window`" + ` | 4 | varint elem, varint d |
| ` + "`batch`" + ` | 5 | presence byte (0 = null), then uvarint count and count × (8-byte x bits, 8-byte y bits) |
| ` + "`connect`" + ` | 6 | varint s, varint u |

The encoding is canonical — encoders apply exactly the normalizations a
JSON round trip does (an element's zero multiplicity encodes as 1, an
empty client list as null), so re-encoding a decoded body is
byte-identical and the binary and JSON paths produce the same values.
The binary run encoding mirrors the ` + "`Run`" + ` wire type: a version byte,
then decisions, curve and the final cost breakdown, with nil-vs-empty
presence bytes preserving the ` + "`null`" + ` vs ` + "`[]`" + ` distinction. The Go
client speaks the framing with ` + "`RemoteClientOptions{Binary: true}`" + `;
` + "`leaseload -remote -binary`" + ` load-tests it.

## Wire types

One table per JSON object, fields in declaration order. Types are JSON
types; ` + "`integer`" + ` fields are 64-bit.

`)
	b.Write(schemaTables(Endpoints()))
	b.WriteString("\n")
	return b.Bytes()
}

func authDoc(a string) string {
	switch a {
	case AuthNone:
		return "none (open even with auth enabled)"
	case AuthTenant:
		return "tenant token (or admin token)"
	case AuthAdmin:
		return "admin token"
	default:
		return a
	}
}

// typeRef renders a request/response type reference for the endpoint
// list: named object types link to their schema table.
func typeRef(t reflect.Type) string {
	switch t.Kind() {
	case reflect.Slice:
		return "JSON array of " + typeRef(t.Elem())
	case reflect.Pointer:
		return typeRef(t.Elem())
	case reflect.Struct:
		return "`" + t.Name() + "` object"
	default:
		return t.Kind().String()
	}
}

// schemaTables walks every struct type reachable from the endpoints'
// request and response declarations (plus Error, which every endpoint
// can return) in first-reference order and renders one field table per
// type.
func schemaTables(eps []Endpoint) []byte {
	var order []reflect.Type
	seen := map[reflect.Type]bool{}
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		switch t.Kind() {
		case reflect.Slice, reflect.Pointer:
			walk(t.Elem())
		case reflect.Struct:
			if seen[t] {
				return
			}
			seen[t] = true
			order = append(order, t)
			for i := 0; i < t.NumField(); i++ {
				walk(t.Field(i).Type)
			}
		}
	}
	for _, ep := range eps {
		if ep.Request != nil {
			walk(reflect.TypeOf(ep.Request))
		}
		walk(reflect.TypeOf(ep.Response))
	}
	walk(reflect.TypeOf(Error{}))

	var b bytes.Buffer
	for _, t := range order {
		fmt.Fprintf(&b, "### `%s`\n\n| Field | Type | Description |\n| --- | --- | --- |\n", t.Name())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			name, opts, _ := strings.Cut(f.Tag.Get("json"), ",")
			doc := f.Tag.Get("doc")
			if strings.Contains(opts, "omitempty") {
				doc = strings.TrimSuffix(doc, ".") + " (optional)"
				doc = strings.TrimPrefix(doc, " ")
			}
			fmt.Fprintf(&b, "| `%s` | %s | %s |\n", name, jsonType(f.Type), doc)
		}
		b.WriteString("\n")
	}
	return bytes.TrimRight(b.Bytes(), "\n")
}

// jsonType renders a field's JSON type.
func jsonType(t reflect.Type) string {
	switch t.Kind() {
	case reflect.String:
		return "string"
	case reflect.Bool:
		return "boolean"
	case reflect.Int, reflect.Int64:
		return "integer"
	case reflect.Float64:
		return "number"
	case reflect.Slice:
		return "array of " + jsonType(t.Elem())
	case reflect.Pointer:
		return jsonType(t.Elem())
	case reflect.Struct:
		return "`" + t.Name() + "` object"
	default:
		return t.Kind().String()
	}
}
