package wire

// The binary framing of the wire protocol: a compact, length-prefixed
// encoding of events, event batches and recorded runs, negotiated per
// request via Content-Type (submit) and Accept (result) with
// ContentTypeBinary. JSON remains the default and the documentation
// source of truth; the binary framing exists for the hot ingestion
// path, where it decodes straight into stream.Event values — no
// intermediate wire.Event, no map[string]any, and (through EventBatch's
// payload arenas) zero allocations per event in steady state.
//
// The encoding is canonical: every encoder normalizes exactly the way a
// JSON round-trip does (an element's zero multiplicity becomes 1, an
// empty client list becomes null, a nil payload becomes a day), so
// encode(decode(encode(x))) is byte-identical to encode(x) and the
// binary and JSON paths produce the same stream.Event values. Floats
// travel as raw IEEE-754 bits, so every float round-trips exactly —
// including NaN payloads and negative zero. Integers travel as zigzag
// varints, lengths as plain uvarints.
//
// Layout of one submit body (Content-Type: application/x-lease-binary):
//
//	magic "LEB1"
//	frame*            one frame per chunk; decoded and enqueued as read
//
// where each frame is
//
//	uvarint payload-length
//	payload = uvarint event-count, then event-count events
//
// and each event is
//
//	byte kind (1..7)
//	varint time (zigzag)
//	kind fields:
//	  day            -
//	  element        varint elem, varint p (encoder writes max(p, 1))
//	  window         varint d
//	  element_window varint elem, varint d
//	  batch          byte presence (0 = null), then uvarint count and
//	                 count * (8-byte LE x bits, 8-byte LE y bits)
//	  connect        varint s, varint u
//	  use            varint dur (encoder writes max(dur, 1))
//
// A recorded run (Accept: application/x-lease-binary on result) is
//
//	byte version (1)
//	presence+list of decisions (leases, assignments, f64 cost each)
//	presence+list of curve points (varint time, f64 cost)
//	f64 lease, f64 service    final cost breakdown
//
// where presence is 0 for a nil slice and 1 for a present one (then a
// uvarint count; 1 with count 0 is an empty non-nil slice), preserving
// the null-vs-[] distinction of the JSON encoding.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"

	"leasing/internal/metric"
	"leasing/internal/stream"
)

// ContentTypeBinary is the negotiated media type of the binary framing:
// as a submit Content-Type it switches ingestion to binary frames, as a
// result Accept it switches the response to the binary run encoding.
const ContentTypeBinary = "application/x-lease-binary"

// BinaryMagic opens every binary submit body, so a JSON array posted
// with the wrong Content-Type fails fast instead of misparsing.
const BinaryMagic = "LEB1"

// MaxFrameBytes bounds one frame's payload; a larger declared length is
// rejected as corruption before any buffer is sized from it.
const MaxFrameBytes = 16 << 20

// Binary payload kind bytes, one per stream payload type (the binary
// twin of the Kind* strings).
const (
	binDay byte = iota + 1
	binElement
	binWindow
	binElementWindow
	binBatch
	binConnect
	binUse
)

// runVersion is the leading byte of the binary run encoding.
const runVersion byte = 1

// ErrBinary wraps every binary-decode failure: truncated or corrupt
// frames error (never panic) and callers can classify them with
// errors.Is.
var ErrBinary = errors.New("wire: bad binary frame")

func binErrf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBinary}, args...)...)
}

// AppendEventBinary appends ev's canonical binary encoding to dst. The
// same normalizations a JSON round-trip performs are applied here: a
// nil payload encodes as a day, an element's zero multiplicity encodes
// as 1, and an empty (but non-nil) client list encodes as null.
func AppendEventBinary(dst []byte, ev stream.Event) ([]byte, error) {
	switch p := ev.Payload.(type) {
	case nil, stream.Day:
		dst = append(dst, binDay)
		dst = binary.AppendVarint(dst, ev.Time)
	case stream.Element:
		dst = append(dst, binElement)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = binary.AppendVarint(dst, int64(p.Elem))
		dst = binary.AppendVarint(dst, int64(max(p.P, 1)))
	case stream.Window:
		dst = append(dst, binWindow)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = binary.AppendVarint(dst, p.D)
	case stream.ElementWindow:
		dst = append(dst, binElementWindow)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = binary.AppendVarint(dst, int64(p.Elem))
		dst = binary.AppendVarint(dst, p.D)
	case stream.Batch:
		dst = append(dst, binBatch)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = appendClients(dst, p.Clients)
	case stream.Connect:
		dst = append(dst, binConnect)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = binary.AppendVarint(dst, int64(p.S))
		dst = binary.AppendVarint(dst, int64(p.T))
	case stream.Use:
		dst = append(dst, binUse)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = binary.AppendVarint(dst, max(p.Dur, 1))
	default:
		return dst, fmt.Errorf("wire: unsupported payload %T", ev.Payload)
	}
	return dst, nil
}

func appendClients(dst []byte, cs []metric.Point) []byte {
	if len(cs) == 0 {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(len(cs)))
	for _, c := range cs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.X))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Y))
	}
	return dst
}

// AppendEventsBinary appends one frame payload — the event count
// followed by the events — for evs to dst.
func AppendEventsBinary(dst []byte, evs []stream.Event) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(evs)))
	var err error
	for i, ev := range evs {
		if dst, err = AppendEventBinary(dst, ev); err != nil {
			return dst, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return dst, nil
}

// AppendEventBinaryWire is AppendEventBinary from the JSON-facing Event
// struct, byte-identical to encoding ev.Stream(): it lets a client
// encode straight from wire events without boxing stream payloads.
func AppendEventBinaryWire(dst []byte, ev Event) ([]byte, error) {
	switch ev.Kind {
	case KindDay:
		dst = append(dst, binDay)
		dst = binary.AppendVarint(dst, ev.Time)
	case KindElement:
		dst = append(dst, binElement)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = binary.AppendVarint(dst, int64(ev.Elem))
		dst = binary.AppendVarint(dst, int64(max(ev.P, 1)))
	case KindWindow:
		dst = append(dst, binWindow)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = binary.AppendVarint(dst, ev.D)
	case KindElementWindow:
		dst = append(dst, binElementWindow)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = binary.AppendVarint(dst, int64(ev.Elem))
		dst = binary.AppendVarint(dst, ev.D)
	case KindBatch:
		dst = append(dst, binBatch)
		dst = binary.AppendVarint(dst, ev.Time)
		if len(ev.Clients) == 0 {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(len(ev.Clients)))
			for _, c := range ev.Clients {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.X))
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Y))
			}
		}
	case KindConnect:
		dst = append(dst, binConnect)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = binary.AppendVarint(dst, int64(ev.S))
		dst = binary.AppendVarint(dst, int64(ev.U))
	case KindUse:
		dst = append(dst, binUse)
		dst = binary.AppendVarint(dst, ev.Time)
		dst = binary.AppendVarint(dst, max(ev.Dur, 1))
	default:
		return dst, fmt.Errorf("wire: unknown event kind %q", ev.Kind)
	}
	return dst, nil
}

// AppendEventsBinaryWire appends one frame payload for wevs to dst,
// byte-identical to AppendEventsBinary of the converted stream events.
func AppendEventsBinaryWire(dst []byte, wevs []Event) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(wevs)))
	var err error
	for i, ev := range wevs {
		if dst, err = AppendEventBinaryWire(dst, ev); err != nil {
			return dst, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return dst, nil
}

// AppendFrame appends payload to dst as one length-prefixed frame.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// ifaceWords mirrors the runtime layout of a non-empty interface value:
// an itab word and a data word. The payload arenas use it to point a
// copied prototype interface at arena-owned memory, so a decoded
// payload reuses a box that was built (and allocated) once instead of
// being re-boxed per event — the mechanism behind the zero-alloc decode
// path. Only the data word is ever written, and only with pointers to
// memory this package allocated with new; the prototypes themselves are
// never mutated.
type ifaceWords struct{ tab, data unsafe.Pointer }

// payloadAt returns a Payload with proto's itab and data pointing at p.
func payloadAt(proto stream.Payload, p unsafe.Pointer) stream.Payload {
	out := proto
	(*ifaceWords)(unsafe.Pointer(&out)).data = p
	return out
}

// Prototype boxes, one per payload type: boxed once here, read-only
// forever (payloadAt copies them; nothing writes through them).
var (
	protoDay           stream.Payload = stream.Day{}
	protoElement       stream.Payload = stream.Element{}
	protoWindow        stream.Payload = stream.Window{}
	protoElementWindow stream.Payload = stream.ElementWindow{}
	protoBatch         stream.Payload = stream.Batch{}
	protoConnect       stream.Payload = stream.Connect{}
	protoUse           stream.Payload = stream.Use{}
)

// emptyClients is the shared non-nil empty client list (the decode of
// presence 1 with count 0). Consumers only read event payloads, so one
// empty slice can back every such batch.
var emptyClients = make([]metric.Point, 0)

// arena hands out pre-boxed payloads of one type. Growth allocates (one
// value plus one box); Reset makes every box reusable, so a warm arena
// decodes without allocating.
type arena[T any] struct {
	vals  []*T
	boxes []stream.Payload
	used  int
}

func (a *arena[T]) take(proto stream.Payload) (*T, stream.Payload) {
	if a.used == len(a.vals) {
		v := new(T)
		a.vals = append(a.vals, v)
		a.boxes = append(a.boxes, payloadAt(proto, unsafe.Pointer(v)))
	}
	i := a.used
	a.used++
	return a.vals[i], a.boxes[i]
}

func (a *arena[T]) reset() { a.used = 0 }

// EventBatch is a reusable decoded event batch: Events and the payload
// values it points into are owned by the batch and valid until the next
// Reset. Submitting one to the engine therefore requires a release hook
// (engine.TrySubmitBatchRelease) so the batch is only reset after the
// owning shard is done with it. A warm EventBatch decodes at zero
// allocations per event; EventBatch is not safe for concurrent use.
//
//lint:allow-wiretags pooled decode buffer, never crosses the wire as JSON
type EventBatch struct {
	Events []stream.Event

	elems arena[stream.Element]
	wins  arena[stream.Window]
	ewins arena[stream.ElementWindow]
	bats  arena[stream.Batch]
	conns arena[stream.Connect]
	uses  arena[stream.Use]
}

// Reset empties the batch for reuse, keeping every buffer and box.
func (b *EventBatch) Reset() {
	b.Events = b.Events[:0]
	b.elems.reset()
	b.wins.reset()
	b.ewins.reset()
	b.bats.reset()
	b.conns.reset()
	b.uses.reset()
}

// decodeEvent decodes one event from the front of data into the batch
// and returns its encoded size.
func (b *EventBatch) decodeEvent(data []byte) (int, error) {
	if len(data) == 0 {
		return 0, binErrf("truncated event")
	}
	kind := data[0]
	t, n := binary.Varint(data[1:])
	if n <= 0 {
		return 0, binErrf("bad event time")
	}
	off := 1 + n
	ev := stream.Event{Time: t}
	switch kind {
	case binDay:
		ev.Payload = protoDay
	case binElement:
		p, box := b.elems.take(protoElement)
		elem, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, binErrf("bad element index")
		}
		off += n
		mult, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, binErrf("bad element multiplicity")
		}
		off += n
		p.Elem, p.P = int(elem), int(mult)
		ev.Payload = box
	case binWindow:
		p, box := b.wins.take(protoWindow)
		d, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, binErrf("bad window slack")
		}
		off += n
		p.D = d
		ev.Payload = box
	case binElementWindow:
		p, box := b.ewins.take(protoElementWindow)
		elem, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, binErrf("bad element index")
		}
		off += n
		d, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, binErrf("bad window slack")
		}
		off += n
		p.Elem, p.D = int(elem), d
		ev.Payload = box
	case binBatch:
		p, box := b.bats.take(protoBatch)
		n, err := decodeClients(p, data[off:])
		if err != nil {
			return 0, err
		}
		off += n
		ev.Payload = box
	case binConnect:
		p, box := b.conns.take(protoConnect)
		s, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, binErrf("bad connect terminal")
		}
		off += n
		u, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, binErrf("bad connect terminal")
		}
		off += n
		p.S, p.T = int(s), int(u)
		ev.Payload = box
	case binUse:
		p, box := b.uses.take(protoUse)
		dur, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, binErrf("bad usage duration")
		}
		off += n
		p.Dur = dur
		ev.Payload = box
	default:
		return 0, binErrf("unknown event kind %d", kind)
	}
	b.Events = append(b.Events, ev)
	return off, nil
}

// decodeClients decodes a batch payload's client list into p, reusing
// p's point buffer when it is large enough.
func decodeClients(p *stream.Batch, data []byte) (int, error) {
	if len(data) == 0 {
		return 0, binErrf("truncated batch payload")
	}
	switch data[0] {
	case 0:
		p.Clients = nil
		return 1, nil
	case 1:
	default:
		return 0, binErrf("bad client-list presence byte %d", data[0])
	}
	count, n := binary.Uvarint(data[1:])
	if n <= 0 {
		return 0, binErrf("bad client count")
	}
	off := 1 + n
	// Each point is 16 bytes; a count the remaining bytes cannot hold is
	// corruption, caught before any buffer is sized from it.
	if count > uint64(len(data)-off)/16 {
		return 0, binErrf("client count %d exceeds frame", count)
	}
	if count == 0 {
		p.Clients = emptyClients
		return off, nil
	}
	if uint64(cap(p.Clients)) < count {
		p.Clients = make([]metric.Point, count)
	} else {
		p.Clients = p.Clients[:count]
	}
	for i := range p.Clients {
		x := binary.LittleEndian.Uint64(data[off:])
		y := binary.LittleEndian.Uint64(data[off+8:])
		p.Clients[i] = metric.Point{X: math.Float64frombits(x), Y: math.Float64frombits(y)}
		off += 16
	}
	return off, nil
}

// EventReader iterates one frame payload (as produced by
// AppendEventsBinary), decoding events in bounded runs so a server can
// enqueue chunk-sized batches while the body streams in.
//
//lint:allow-wiretags binary-decode cursor, never crosses the wire as JSON
type EventReader struct {
	data      []byte
	off       int
	remaining int
}

// Init points the reader at one frame payload and reads its count. The
// payload must stay valid (unmodified) until the reader is done.
func (r *EventReader) Init(payload []byte) error {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return binErrf("bad event count")
	}
	// Every event is at least 2 bytes (kind + 1 time byte).
	if count > uint64(len(payload)-n)/2 {
		return binErrf("event count %d exceeds frame", count)
	}
	r.data, r.off, r.remaining = payload, n, int(count)
	return nil
}

// Remaining returns how many declared events are still undecoded.
func (r *EventReader) Remaining() int { return r.remaining }

// Next decodes up to maxEvents events into dst (appending to
// dst.Events) and returns how many it decoded. Zero with a nil error
// means the frame is exhausted; a frame that ends before its declared
// count errors.
func (r *EventReader) Next(dst *EventBatch, maxEvents int) (int, error) {
	decoded := 0
	for decoded < maxEvents && r.remaining > 0 {
		n, err := dst.decodeEvent(r.data[r.off:])
		if err != nil {
			return decoded, err
		}
		r.off += n
		r.remaining--
		decoded++
	}
	if r.remaining == 0 && r.off != len(r.data) {
		return decoded, binErrf("%d trailing bytes after last event", len(r.data)-r.off)
	}
	return decoded, nil
}

// DecodeEventsBinary decodes one frame payload into freshly allocated
// events — the convenience path for recovery and tests; the hot path
// uses EventReader with a pooled EventBatch.
func DecodeEventsBinary(payload []byte) ([]stream.Event, error) {
	var r EventReader
	if err := r.Init(payload); err != nil {
		return nil, err
	}
	out := make([]stream.Event, 0, r.Remaining())
	var b EventBatch
	for r.Remaining() > 0 {
		if _, err := r.Next(&b, r.Remaining()); err != nil {
			return nil, err
		}
	}
	// The batch's events point into its arenas; copy them out as plain
	// boxed payloads so the result owns its memory.
	for _, ev := range b.Events {
		out = append(out, reboxEvent(ev))
	}
	return out, nil
}

// reboxEvent deep-copies an arena-backed event into ordinary boxed
// payloads.
func reboxEvent(ev stream.Event) stream.Event {
	switch p := ev.Payload.(type) {
	case stream.Day:
		ev.Payload = stream.Day{}
	case stream.Element:
		ev.Payload = stream.Element{Elem: p.Elem, P: p.P}
	case stream.Window:
		ev.Payload = stream.Window{D: p.D}
	case stream.ElementWindow:
		ev.Payload = stream.ElementWindow{Elem: p.Elem, D: p.D}
	case stream.Batch:
		var cs []metric.Point
		if p.Clients != nil {
			cs = make([]metric.Point, len(p.Clients))
			copy(cs, p.Clients)
		}
		ev.Payload = stream.Batch{Clients: cs}
	case stream.Connect:
		ev.Payload = stream.Connect{S: p.S, T: p.T}
	case stream.Use:
		ev.Payload = stream.Use{Dur: p.Dur}
	}
	return ev
}

// AppendRunBinary appends the binary encoding of a recorded run to dst.
func AppendRunBinary(dst []byte, run *stream.Run) []byte {
	dst = append(dst, runVersion)
	if run.Decisions == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(run.Decisions)))
		for _, d := range run.Decisions {
			dst = appendLeasesBinary(dst, d.Leases)
			dst = appendAssignmentsBinary(dst, d.Assignments)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.Cost))
		}
	}
	if run.Curve == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(run.Curve)))
		for _, p := range run.Curve {
			dst = binary.AppendVarint(dst, p.Time)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Cost))
		}
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(run.Final.Lease))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(run.Final.Service))
	return dst
}

func appendLeasesBinary(dst []byte, ls []stream.ItemLease) []byte {
	if ls == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(len(ls)))
	for _, l := range ls {
		dst = binary.AppendVarint(dst, int64(l.Item))
		dst = binary.AppendVarint(dst, int64(l.K))
		dst = binary.AppendVarint(dst, l.Start)
	}
	return dst
}

func appendAssignmentsBinary(dst []byte, as []stream.Assignment) []byte {
	if as == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(len(as)))
	for _, a := range as {
		dst = binary.AppendVarint(dst, int64(a.Item))
		dst = binary.AppendVarint(dst, int64(a.K))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Cost))
	}
	return dst
}

// binReader is a bounds-checked cursor with a sticky error, so run
// decoding can read linearly and fail once at the end.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(msg string) {
	if r.err == nil {
		r.err = binErrf("%s at offset %d", msg, r.off)
	}
}

func (r *binReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b)-r.off < 8 {
		r.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// count reads a presence byte and, when present, a count bounded by the
// remaining bytes at minSize bytes per element. It returns the count
// and whether the list is present (nil vs empty).
func (r *binReader) count(minSize int) (int, bool) {
	switch r.u8() {
	case 0:
		return 0, false
	case 1:
	default:
		r.fail("bad presence byte")
		return 0, false
	}
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.b)-r.off)/uint64(minSize) {
		r.fail("count exceeds frame")
		return 0, false
	}
	return int(n), r.err == nil
}

// DecodeRunBinary decodes a binary run encoding.
func DecodeRunBinary(b []byte) (*stream.Run, error) {
	r := &binReader{b: b}
	if v := r.u8(); r.err == nil && v != runVersion {
		return nil, binErrf("unsupported run version %d", v)
	}
	run := &stream.Run{}
	// A decision is at least 3 bytes (two presence bytes + 8-byte cost
	// would be 10, but keep the bound conservative and simple).
	if n, ok := r.count(3); ok {
		run.Decisions = make([]stream.Decision, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var d stream.Decision
			d.Leases = decodeLeasesBinary(r)
			d.Assignments = decodeAssignmentsBinary(r)
			d.Cost = r.f64()
			run.Decisions = append(run.Decisions, d)
		}
	}
	if n, ok := r.count(9); ok {
		run.Curve = make([]stream.CurvePoint, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			t := r.varint()
			c := r.f64()
			run.Curve = append(run.Curve, stream.CurvePoint{Time: t, Cost: c})
		}
	}
	run.Final.Lease = r.f64()
	run.Final.Service = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, binErrf("%d trailing bytes after run", len(b)-r.off)
	}
	return run, nil
}

func decodeLeasesBinary(r *binReader) []stream.ItemLease {
	n, ok := r.count(3)
	if !ok {
		return nil
	}
	out := make([]stream.ItemLease, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		item := r.varint()
		k := r.varint()
		start := r.varint()
		out = append(out, stream.ItemLease{Item: int(item), K: int(k), Start: start})
	}
	return out
}

func decodeAssignmentsBinary(r *binReader) []stream.Assignment {
	n, ok := r.count(10)
	if !ok {
		return nil
	}
	out := make([]stream.Assignment, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		item := r.varint()
		k := r.varint()
		cost := r.f64()
		out = append(out, stream.Assignment{Item: int(item), K: int(k), Cost: cost})
	}
	return out
}
