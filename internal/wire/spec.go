package wire

// Open-session specs: a remote tenant describes its whole problem
// instance in JSON — lease configuration, domain, and the domain's
// instance data — and Build constructs the same Leaser an in-process
// caller would get from the root facade's NewXxxStream constructors.
// Construction is deterministic given the spec (randomized algorithms
// draw from a generator seeded with Seed), which is what makes a remote
// session's output reproducible against a local Replay.

import (
	"fmt"
	"math/rand"

	"leasing/internal/deadline"
	"leasing/internal/facility"
	"leasing/internal/graph"
	"leasing/internal/lease"
	"leasing/internal/metric"
	"leasing/internal/parking"
	"leasing/internal/reusable"
	"leasing/internal/setcover"
	"leasing/internal/steiner"
	"leasing/internal/stream"
	"leasing/internal/workload"
)

// Domains of OpenRequest.Domain, one per online algorithm family.
const (
	// DomainParking is the deterministic parking-permit algorithm
	// consuming day events.
	DomainParking = "parking"
	// DomainParkingRand is the randomized parking-permit algorithm
	// (seeded by Seed) consuming day events.
	DomainParkingRand = "parking-rand"
	// DomainDeadline is the leasing-with-deadlines primal-dual algorithm
	// consuming window events.
	DomainDeadline = "deadline"
	// DomainSetCover is the randomized set-multicover algorithm (seeded
	// by Seed) consuming element events; requires the SetCover spec.
	DomainSetCover = "setcover"
	// DomainSCLD is the randomized set-cover-leasing-with-deadlines
	// algorithm (seeded by Seed) consuming element_window events;
	// requires the SCLD spec.
	DomainSCLD = "scld"
	// DomainFacility is the facility-leasing primal-dual algorithm
	// consuming batch events; requires the Facility spec.
	DomainFacility = "facility"
	// DomainSteiner is the Steiner-tree-leasing algorithm consuming
	// connect events; requires the Steiner spec.
	DomainSteiner = "steiner"
	// DomainReusable is the reusable-resource pool allocator consuming
	// use events; requires the Reusable spec.
	DomainReusable = "reusable"
)

// Domains lists every accepted OpenRequest.Domain value.
func Domains() []string {
	return []string{
		DomainParking, DomainParkingRand, DomainDeadline,
		DomainSetCover, DomainSCLD, DomainFacility, DomainSteiner,
		DomainReusable,
	}
}

// LeaseType is one lease type of a session's configuration.
type LeaseType struct {
	Length int64   `json:"length" doc:"duration in time steps (strictly increasing across types)"`
	Cost   float64 `json:"cost" doc:"price of one lease of this type (> 0)"`
}

// ElementArrival is one set-multicover demand of a SetCover spec.
type ElementArrival struct {
	T    int64 `json:"t" doc:"arrival step"`
	Elem int   `json:"elem" doc:"element index in [0, elements)"`
	P    int   `json:"p" doc:"cover multiplicity (distinct sets required)"`
}

// SCLDArrival is one demand of an SCLD spec.
type SCLDArrival struct {
	T    int64 `json:"t" doc:"arrival step"`
	Elem int   `json:"elem" doc:"element index in [0, elements)"`
	D    int64 `json:"d" doc:"deadline slack: coverable over [t, t+d]"`
}

// Edge is one weighted undirected edge of a Steiner spec.
type Edge struct {
	U int     `json:"u" doc:"first endpoint"`
	V int     `json:"v" doc:"second endpoint"`
	W float64 `json:"w" doc:"edge weight (per-type lease price is w * type cost)"`
}

// ConnectRequest is one connectivity demand of a Steiner spec.
type ConnectRequest struct {
	T int64 `json:"t" doc:"arrival step"`
	S int   `json:"s" doc:"first terminal"`
	U int   `json:"u" doc:"second terminal"`
}

// SetCoverSpec is the instance data of a setcover session.
type SetCoverSpec struct {
	Elements   int              `json:"elements" doc:"universe size n; elements are 0..n-1"`
	Sets       [][]int          `json:"sets" doc:"the set system: sets[s] lists the elements of set s"`
	Costs      [][]float64      `json:"costs" doc:"costs[s][k] is the price of leasing set s with type k"`
	Arrivals   []ElementArrival `json:"arrivals" doc:"the demand stream, sorted by arrival step"`
	PerElement bool             `json:"per_element,omitempty" doc:"multicover scope: true means every repeat arrival of an element needs a fresh set"`
}

// SCLDSpec is the instance data of an scld session.
type SCLDSpec struct {
	Elements int           `json:"elements" doc:"universe size n; elements are 0..n-1"`
	Sets     [][]int       `json:"sets" doc:"the set system: sets[s] lists the elements of set s"`
	Costs    [][]float64   `json:"costs" doc:"costs[s][k] is the price of leasing set s with type k"`
	Arrivals []SCLDArrival `json:"arrivals" doc:"the demand stream, sorted by arrival step"`
}

// FacilitySpec is the instance data of a facility session.
type FacilitySpec struct {
	Sites   []Point     `json:"sites" doc:"candidate facility locations"`
	Costs   [][]float64 `json:"costs" doc:"costs[i][k] is the price of leasing site i with type k"`
	Batches [][]Point   `json:"batches" doc:"batches[t] lists the clients arriving at step t (empty steps allowed)"`
}

// SteinerSpec is the instance data of a steiner session.
type SteinerSpec struct {
	Vertices int              `json:"vertices" doc:"vertex count; vertices are 0..vertices-1"`
	Edges    []Edge           `json:"edges" doc:"the weighted undirected edge list"`
	Requests []ConnectRequest `json:"requests" doc:"the demand stream, sorted by arrival step"`
}

// ReusableSpec is the instance data of a reusable session.
type ReusableSpec struct {
	Capacity   int     `json:"capacity" doc:"pool size C: capacity units available for concurrent usages (>= 1)"`
	Prediction float64 `json:"prediction,omitempty" doc:"believed per-step demand probability in (0, 1] for the learning-augmented provisioning rule; 0 selects the worst-case primal-dual rule"`
}

// OpenRequest opens one tenant session: the algorithm family, the lease
// configuration, and (for the instance-based domains) the instance data.
// Build constructs the session's Leaser deterministically from this
// spec, so two builds of the same spec replay identically.
type OpenRequest struct {
	Domain   string        `json:"domain" doc:"algorithm family: parking, parking-rand, deadline, setcover, scld, facility, steiner or reusable"`
	Types    []LeaseType   `json:"types" doc:"the lease configuration, shortest type first"`
	Seed     int64         `json:"seed,omitempty" doc:"seed of the randomized algorithms (parking-rand, setcover, scld); ignored otherwise"`
	SetCover *SetCoverSpec `json:"setcover,omitempty" doc:"instance data, required when domain is setcover"`
	SCLD     *SCLDSpec     `json:"scld,omitempty" doc:"instance data, required when domain is scld"`
	Facility *FacilitySpec `json:"facility,omitempty" doc:"instance data, required when domain is facility"`
	Steiner  *SteinerSpec  `json:"steiner,omitempty" doc:"instance data, required when domain is steiner"`
	Reusable *ReusableSpec `json:"reusable,omitempty" doc:"instance data, required when domain is reusable"`
}

// ConfigTypes converts a validated lease configuration into its spec
// form, the Types field of an OpenRequest.
func ConfigTypes(cfg *lease.Config) []LeaseType {
	out := make([]LeaseType, cfg.K())
	for k := range out {
		out[k] = LeaseType{Length: cfg.Length(k), Cost: cfg.Cost(k)}
	}
	return out
}

// config validates and builds the lease configuration of the spec.
func (r *OpenRequest) config() (*lease.Config, error) {
	types := make([]lease.Type, len(r.Types))
	for i, t := range r.Types {
		types[i] = lease.Type{Length: t.Length, Cost: t.Cost}
	}
	cfg, err := lease.NewConfig(types...)
	if err != nil {
		return nil, fmt.Errorf("wire: types: %w", err)
	}
	return cfg, nil
}

// Build constructs the Leaser the spec describes. It is the one
// spec-to-algorithm mapping shared by the server (serving the session)
// and any client-side verifier (replaying the reference), so both sides
// construct bit-identical algorithms.
func (r *OpenRequest) Build() (stream.Leaser, error) {
	cfg, err := r.config()
	if err != nil {
		return nil, err
	}
	switch r.Domain {
	case DomainParking:
		alg, err := parking.NewDeterministic(cfg)
		if err != nil {
			return nil, err
		}
		return parking.NewLeaser(alg), nil

	case DomainParkingRand:
		alg, err := parking.NewRandomized(cfg, rand.New(rand.NewSource(r.Seed)))
		if err != nil {
			return nil, err
		}
		return parking.NewLeaser(alg), nil

	case DomainDeadline:
		alg, err := deadline.NewOnline(cfg)
		if err != nil {
			return nil, err
		}
		return deadline.NewLeaser(alg), nil

	case DomainSetCover:
		sp := r.SetCover
		if sp == nil {
			return nil, fmt.Errorf("wire: domain %s requires the setcover spec", r.Domain)
		}
		fam, err := setcover.NewFamily(sp.Elements, sp.Sets)
		if err != nil {
			return nil, err
		}
		arrivals := make([]workload.ElementArrival, len(sp.Arrivals))
		for i, a := range sp.Arrivals {
			arrivals[i] = workload.ElementArrival{T: a.T, Elem: a.Elem, P: a.P}
		}
		scope := setcover.PerArrival
		if sp.PerElement {
			scope = setcover.PerElement
		}
		inst, err := setcover.NewInstance(fam, cfg, sp.Costs, arrivals, scope)
		if err != nil {
			return nil, err
		}
		alg, err := setcover.NewOnline(inst, rand.New(rand.NewSource(r.Seed)), setcover.Options{})
		if err != nil {
			return nil, err
		}
		return setcover.NewLeaser(alg), nil

	case DomainSCLD:
		sp := r.SCLD
		if sp == nil {
			return nil, fmt.Errorf("wire: domain %s requires the scld spec", r.Domain)
		}
		fam, err := setcover.NewFamily(sp.Elements, sp.Sets)
		if err != nil {
			return nil, err
		}
		arrivals := make([]deadline.SCLDArrival, len(sp.Arrivals))
		for i, a := range sp.Arrivals {
			arrivals[i] = deadline.SCLDArrival{T: a.T, Elem: a.Elem, D: a.D}
		}
		inst, err := deadline.NewSCLDInstance(fam, cfg, sp.Costs, arrivals)
		if err != nil {
			return nil, err
		}
		alg, err := deadline.NewSCLDOnline(inst, rand.New(rand.NewSource(r.Seed)))
		if err != nil {
			return nil, err
		}
		return deadline.NewSCLDStream(alg), nil

	case DomainFacility:
		sp := r.Facility
		if sp == nil {
			return nil, fmt.Errorf("wire: domain %s requires the facility spec", r.Domain)
		}
		sites := make([]metric.Point, len(sp.Sites))
		for i, p := range sp.Sites {
			sites[i] = metric.Point{X: p.X, Y: p.Y}
		}
		batches := make([][]metric.Point, len(sp.Batches))
		for t, b := range sp.Batches {
			if b == nil {
				continue
			}
			batches[t] = make([]metric.Point, len(b))
			for i, p := range b {
				batches[t][i] = metric.Point{X: p.X, Y: p.Y}
			}
		}
		inst, err := facility.NewInstance(cfg, sites, sp.Costs, batches)
		if err != nil {
			return nil, err
		}
		alg, err := facility.NewOnline(inst, facility.Options{})
		if err != nil {
			return nil, err
		}
		return facility.NewLeaser(alg), nil

	case DomainSteiner:
		sp := r.Steiner
		if sp == nil {
			return nil, fmt.Errorf("wire: domain %s requires the steiner spec", r.Domain)
		}
		edges := make([]graph.Edge, len(sp.Edges))
		for i, e := range sp.Edges {
			edges[i] = graph.Edge{U: e.U, V: e.V, Weight: e.W}
		}
		g, err := graph.New(sp.Vertices, edges)
		if err != nil {
			return nil, err
		}
		reqs := make([]steiner.Request, len(sp.Requests))
		for i, c := range sp.Requests {
			reqs[i] = steiner.Request{Time: c.T, S: c.S, T: c.U}
		}
		inst, err := steiner.NewInstance(g, cfg, reqs)
		if err != nil {
			return nil, err
		}
		alg, err := steiner.NewOnline(inst)
		if err != nil {
			return nil, err
		}
		return steiner.NewLeaser(alg), nil

	case DomainReusable:
		sp := r.Reusable
		if sp == nil {
			return nil, fmt.Errorf("wire: domain %s requires the reusable spec", r.Domain)
		}
		alg, err := reusable.NewOnline(cfg, sp.Capacity, reusable.Options{Prediction: sp.Prediction})
		if err != nil {
			return nil, err
		}
		return reusable.NewLeaser(alg), nil

	default:
		return nil, fmt.Errorf("wire: unknown domain %q (want one of %v)", r.Domain, Domains())
	}
}
