// Package wire is the single source of truth for the lease service's
// HTTP/JSON protocol: the JSON representations of events, decisions,
// runs, solutions and metrics, the open-session specs that let a remote
// tenant describe a full problem instance, the error codes with their
// HTTP status mapping, and the endpoint declarations the server routes
// on. internal/server serves these types, internal/client speaks them,
// and docs/API.md is generated from the declarations in this package by
// cmd/leasereport — so the implementation and the documentation cannot
// drift apart.
//
// Conversions to and from the in-process protocol (internal/stream) are
// exact: encoding/json renders float64 with the shortest round-trippable
// representation and the slice fields of Decision, Run and Solution
// distinguish null from [], so a Run that crosses the wire decodes back
// byte-identical (under fmt %#v) to the stream.Run it came from. That
// exactness is what lets remote parity checks compare a session served
// through cmd/leased against a local single-threaded Replay.
package wire

import (
	"fmt"

	"leasing/internal/engine"
	"leasing/internal/metric"
	"leasing/internal/stream"
)

// Payload kinds of Event.Kind, one per stream payload type.
const (
	KindDay           = "day"
	KindElement       = "element"
	KindWindow        = "window"
	KindElementWindow = "element_window"
	KindBatch         = "batch"
	KindConnect       = "connect"
	KindUse           = "use"
)

// Point is a planar location (the metric space of facility leasing).
type Point struct {
	X float64 `json:"x" doc:"x coordinate"`
	Y float64 `json:"y" doc:"y coordinate"`
}

// Event is one online demand on the wire: a timestamp, a payload kind,
// and the kind's fields (all others are ignored). Events of one tenant
// must be submitted in non-decreasing time order.
type Event struct {
	Time int64  `json:"time" doc:"arrival step of the demand (non-decreasing per tenant)"`
	Kind string `json:"kind" doc:"payload kind: day, element, window, element_window, batch, connect or use"`
	// Element fields.
	Elem int `json:"elem,omitempty" doc:"element index (kinds element and element_window)"`
	P    int `json:"p,omitempty" doc:"cover multiplicity (kind element; defaults to 1)"`
	// Window fields.
	D int64 `json:"d,omitempty" doc:"deadline slack: servable on [time, time+d] (kinds window and element_window)"`
	// Batch fields.
	Clients []Point `json:"clients,omitempty" doc:"arriving clients (kind batch; may be empty for an idle step)"`
	// Connect fields.
	S int `json:"s,omitempty" doc:"first terminal (kind connect)"`
	U int `json:"u,omitempty" doc:"second terminal (kind connect)"`
	// Use fields.
	Dur int64 `json:"dur,omitempty" doc:"usage duration in steps (kind use; defaults to 1)"`
}

// FromStreamEvent converts an in-process event to its wire form.
func FromStreamEvent(ev stream.Event) (Event, error) {
	out := Event{Time: ev.Time}
	switch p := ev.Payload.(type) {
	case nil, stream.Day:
		out.Kind = KindDay
	case stream.Element:
		out.Kind = KindElement
		out.Elem, out.P = p.Elem, p.P
	case stream.Window:
		out.Kind = KindWindow
		out.D = p.D
	case stream.ElementWindow:
		out.Kind = KindElementWindow
		out.Elem, out.D = p.Elem, p.D
	case stream.Batch:
		out.Kind = KindBatch
		out.Clients = make([]Point, len(p.Clients))
		for i, c := range p.Clients {
			out.Clients[i] = Point{X: c.X, Y: c.Y}
		}
	case stream.Connect:
		out.Kind = KindConnect
		out.S, out.U = p.S, p.T
	case stream.Use:
		out.Kind = KindUse
		out.Dur = p.Dur
	default:
		return Event{}, fmt.Errorf("wire: unsupported payload %T", ev.Payload)
	}
	return out, nil
}

// FromStreamEvents converts a whole stream.
func FromStreamEvents(evs []stream.Event) ([]Event, error) {
	out := make([]Event, len(evs))
	for i, ev := range evs {
		w, err := FromStreamEvent(ev)
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		out[i] = w
	}
	return out, nil
}

// Stream converts a wire event back to its in-process form.
func (e Event) Stream() (stream.Event, error) {
	out := stream.Event{Time: e.Time}
	switch e.Kind {
	case KindDay:
		out.Payload = stream.Day{}
	case KindElement:
		p := e.P
		if p == 0 {
			p = 1
		}
		out.Payload = stream.Element{Elem: e.Elem, P: p}
	case KindWindow:
		out.Payload = stream.Window{D: e.D}
	case KindElementWindow:
		out.Payload = stream.ElementWindow{Elem: e.Elem, D: e.D}
	case KindBatch:
		var clients []metric.Point
		if e.Clients != nil {
			clients = make([]metric.Point, len(e.Clients))
			for i, c := range e.Clients {
				clients[i] = metric.Point{X: c.X, Y: c.Y}
			}
		}
		out.Payload = stream.Batch{Clients: clients}
	case KindConnect:
		out.Payload = stream.Connect{S: e.S, T: e.U}
	case KindUse:
		dur := e.Dur
		if dur == 0 {
			dur = 1
		}
		out.Payload = stream.Use{Dur: dur}
	default:
		return stream.Event{}, fmt.Errorf("wire: unknown event kind %q", e.Kind)
	}
	return out, nil
}

// StreamEvents converts a wire event slice back to in-process events.
func StreamEvents(evs []Event) ([]stream.Event, error) {
	out := make([]stream.Event, len(evs))
	for i, ev := range evs {
		s, err := ev.Stream()
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// ItemLease is the bought triple (item, type, start).
type ItemLease struct {
	Item  int   `json:"item" doc:"item index (0 for single-resource domains; the set/site/edge index otherwise)"`
	K     int   `json:"k" doc:"lease type index into the session's configuration"`
	Start int64 `json:"start" doc:"first covered time step"`
}

// Assignment records one service decision (facility leasing's client
// connections).
type Assignment struct {
	Item int     `json:"item" doc:"serving item index"`
	K    int     `json:"k" doc:"lease type the client was served under"`
	Cost float64 `json:"cost" doc:"service (connection) cost of the assignment"`
}

// Decision is what the algorithm bought in response to one event. The
// lease and assignment lists are null (not []) when nothing was bought,
// preserving exact round-trips against the in-process Decision.
type Decision struct {
	Leases      []ItemLease  `json:"leases" doc:"triples newly bought by this event (null when none)"`
	Assignments []Assignment `json:"assignments" doc:"assignments newly made by this event (null when none)"`
	Cost        float64      `json:"cost" doc:"incremental total cost of the step"`
}

// CurvePoint is one point of a run's cumulative cost curve.
type CurvePoint struct {
	Time int64   `json:"time" doc:"event timestamp"`
	Cost float64 `json:"cost" doc:"cumulative total cost after the event"`
}

// CostBreakdown splits cumulative cost into leasing and service parts.
type CostBreakdown struct {
	Lease   float64 `json:"lease" doc:"cumulative leasing cost"`
	Service float64 `json:"service" doc:"cumulative service (connection) cost"`
	Total   float64 `json:"total" doc:"lease + service"`
}

// FromStreamCost converts a stream cost breakdown to its wire form.
func FromStreamCost(c stream.CostBreakdown) CostBreakdown {
	return CostBreakdown{Lease: c.Lease, Service: c.Service, Total: c.Total()}
}

// Stream converts the breakdown back (Total is derived, not trusted).
func (c CostBreakdown) Stream() stream.CostBreakdown {
	return stream.CostBreakdown{Lease: c.Lease, Service: c.Service}
}

// Solution is a snapshot of everything bought and assigned so far.
type Solution struct {
	Leases      []ItemLease  `json:"leases" doc:"all triples bought so far, sorted by (item, type, start)"`
	Assignments []Assignment `json:"assignments" doc:"all assignments made so far, in arrival order"`
}

// Run is a session's recorded output: one decision and one curve point
// per event, plus the final cost breakdown. It requires the daemon to
// run with recording enabled.
type Run struct {
	Decisions []Decision    `json:"decisions" doc:"one entry per processed event"`
	Curve     []CurvePoint  `json:"curve" doc:"cumulative total cost after each event"`
	Final     CostBreakdown `json:"final" doc:"final cost breakdown"`
}

func fromStreamLeases(ls []stream.ItemLease) []ItemLease {
	if ls == nil {
		return nil
	}
	out := make([]ItemLease, len(ls))
	for i, l := range ls {
		out[i] = ItemLease{Item: l.Item, K: l.K, Start: l.Start}
	}
	return out
}

func toStreamLeases(ls []ItemLease) []stream.ItemLease {
	if ls == nil {
		return nil
	}
	out := make([]stream.ItemLease, len(ls))
	for i, l := range ls {
		out[i] = stream.ItemLease{Item: l.Item, K: l.K, Start: l.Start}
	}
	return out
}

func fromStreamAssignments(as []stream.Assignment) []Assignment {
	if as == nil {
		return nil
	}
	out := make([]Assignment, len(as))
	for i, a := range as {
		out[i] = Assignment{Item: a.Item, K: a.K, Cost: a.Cost}
	}
	return out
}

func toStreamAssignments(as []Assignment) []stream.Assignment {
	if as == nil {
		return nil
	}
	out := make([]stream.Assignment, len(as))
	for i, a := range as {
		out[i] = stream.Assignment{Item: a.Item, K: a.K, Cost: a.Cost}
	}
	return out
}

// FromStreamSolution converts a snapshot to its wire form.
func FromStreamSolution(s stream.Solution) Solution {
	return Solution{
		Leases:      fromStreamLeases(s.Leases),
		Assignments: fromStreamAssignments(s.Assignments),
	}
}

// Stream converts the snapshot back to its in-process form.
func (s Solution) Stream() stream.Solution {
	return stream.Solution{
		Leases:      toStreamLeases(s.Leases),
		Assignments: toStreamAssignments(s.Assignments),
	}
}

// FromStreamRun converts a recorded run to its wire form.
func FromStreamRun(r *stream.Run) *Run {
	out := &Run{Final: FromStreamCost(r.Final)}
	if r.Decisions != nil {
		out.Decisions = make([]Decision, len(r.Decisions))
		for i, d := range r.Decisions {
			out.Decisions[i] = Decision{
				Leases:      fromStreamLeases(d.Leases),
				Assignments: fromStreamAssignments(d.Assignments),
				Cost:        d.Cost,
			}
		}
	}
	if r.Curve != nil {
		out.Curve = make([]CurvePoint, len(r.Curve))
		for i, p := range r.Curve {
			out.Curve[i] = CurvePoint{Time: p.Time, Cost: p.Cost}
		}
	}
	return out
}

// Stream converts the run back to its in-process form.
func (r *Run) Stream() *stream.Run {
	out := &stream.Run{Final: r.Final.Stream()}
	if r.Decisions != nil {
		out.Decisions = make([]stream.Decision, len(r.Decisions))
		for i, d := range r.Decisions {
			out.Decisions[i] = stream.Decision{
				Leases:      toStreamLeases(d.Leases),
				Assignments: toStreamAssignments(d.Assignments),
				Cost:        d.Cost,
			}
		}
	}
	if r.Curve != nil {
		out.Curve = make([]stream.CurvePoint, len(r.Curve))
		for i, p := range r.Curve {
			out.Curve[i] = stream.CurvePoint{Time: p.Time, Cost: p.Cost}
		}
	}
	return out
}

// ShardMetrics is one engine shard's counter sample.
type ShardMetrics struct {
	Shard      int     `json:"shard" doc:"shard index"`
	Sessions   int     `json:"sessions" doc:"open sessions owned by the shard"`
	Events     int64   `json:"events" doc:"events processed (cumulative)"`
	Batches    int64   `json:"batches" doc:"processing wakes; events/batches is the batching factor"`
	Dropped    int64   `json:"dropped" doc:"events dropped: unknown, closed or failed tenant"`
	QueueDepth int     `json:"queue_depth" doc:"queued operations at sample time (instantaneous)"`
	Cost       float64 `json:"cost" doc:"cumulative cost of the shard's decisions"`
}

// Metrics aggregates the per-shard counters engine-wide.
type Metrics struct {
	Sessions   int            `json:"sessions" doc:"open sessions engine-wide"`
	Events     int64          `json:"events" doc:"events processed engine-wide (cumulative)"`
	Batches    int64          `json:"batches" doc:"processing wakes engine-wide"`
	Dropped    int64          `json:"dropped" doc:"events dropped engine-wide"`
	QueueDepth int            `json:"queue_depth" doc:"queued operations engine-wide (instantaneous)"`
	Cost       float64        `json:"cost" doc:"cumulative cost engine-wide"`
	Shards     []ShardMetrics `json:"shards" doc:"per-shard samples, in shard order"`
}

// FromEngineMetrics converts an engine metrics sample to its wire form.
// This and Metrics.Engine are the only engine<->wire metrics mappings,
// shared by the server and by report-building clients, so the two
// directions cannot drift apart.
func FromEngineMetrics(m engine.Metrics) Metrics {
	out := Metrics{
		Sessions: m.Sessions, Events: m.Events, Batches: m.Batches,
		Dropped: m.Dropped, QueueDepth: m.QueueDepth, Cost: m.Cost,
		Shards: make([]ShardMetrics, len(m.Shards)),
	}
	for i, sm := range m.Shards {
		out.Shards[i] = ShardMetrics{
			Shard: sm.Shard, Sessions: sm.Sessions, Events: sm.Events,
			Batches: sm.Batches, Dropped: sm.Dropped,
			QueueDepth: sm.QueueDepth, Cost: sm.Cost,
		}
	}
	return out
}

// Engine converts the sample back to the engine's own metrics type.
func (m Metrics) Engine() engine.Metrics {
	out := engine.Metrics{
		Sessions: m.Sessions, Events: m.Events, Batches: m.Batches,
		Dropped: m.Dropped, QueueDepth: m.QueueDepth, Cost: m.Cost,
		Shards: make([]engine.ShardMetrics, len(m.Shards)),
	}
	for i, sm := range m.Shards {
		out.Shards[i] = engine.ShardMetrics{
			Shard: sm.Shard, Sessions: sm.Sessions, Events: sm.Events,
			Batches: sm.Batches, Dropped: sm.Dropped,
			QueueDepth: sm.QueueDepth, Cost: sm.Cost,
		}
	}
	return out
}
