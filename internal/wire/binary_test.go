package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"leasing/internal/metric"
	"leasing/internal/stream"
)

// canonicalEvents is one event of every payload kind, already in the
// canonical form the binary encoder preserves exactly (multiplicities
// >= 1, client lists nil or non-empty).
func canonicalEvents() []stream.Event {
	return []stream.Event{
		{Time: 0, Payload: stream.Day{}},
		{Time: 3, Payload: stream.Element{Elem: 7, P: 2}},
		{Time: 4, Payload: stream.Element{Elem: 0, P: 1}},
		{Time: 5, Payload: stream.Window{D: 9}},
		{Time: 6, Payload: stream.ElementWindow{Elem: 2, D: 4}},
		{Time: 7, Payload: stream.Batch{Clients: []metric.Point{{X: 1.5, Y: -2.25}, {X: 0.1, Y: 0.2}}}},
		{Time: 8, Payload: stream.Batch{}},
		{Time: 9, Payload: stream.Connect{S: 3, T: 11}},
		{Time: 10, Payload: stream.Use{Dur: 5}},
		{Time: 11, Payload: stream.Use{Dur: 1}},
		{Time: -12, Payload: stream.Window{D: -3}},
	}
}

// jsonRoundTrip pushes events through the JSON wire encoding and back —
// the reference path the binary framing must agree with.
func jsonRoundTrip(t *testing.T, evs []stream.Event) []stream.Event {
	t.Helper()
	wevs, err := FromStreamEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(wevs)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := StreamEvents(decoded)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// TestBinaryEventsRoundTrip: the binary encoding of every payload kind
// decodes back to the same stream events the JSON path produces.
func TestBinaryEventsRoundTrip(t *testing.T) {
	events := canonicalEvents()
	payload, err := AppendEventsBinary(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEventsBinary(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%#v", jsonRoundTrip(t, events))
	if got := fmt.Sprintf("%#v", back); got != want {
		t.Errorf("binary and JSON paths diverged:\n got %s\nwant %s", got, want)
	}
	reenc, err := AppendEventsBinary(nil, back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, payload) {
		t.Error("re-encode of decoded events is not byte-identical")
	}
}

// TestBinaryFloatBits: client coordinates survive as raw IEEE-754 bits —
// NaN payload bits and negative zero included.
func TestBinaryFloatBits(t *testing.T) {
	nan := math.Float64frombits(0x7ff8_0000_dead_beef)
	events := []stream.Event{
		{Time: 1, Payload: stream.Batch{Clients: []metric.Point{
			{X: nan, Y: math.Copysign(0, -1)},
			{X: math.Inf(1), Y: math.SmallestNonzeroFloat64},
		}}},
	}
	payload, err := AppendEventsBinary(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEventsBinary(payload)
	if err != nil {
		t.Fatal(err)
	}
	got := back[0].Payload.(stream.Batch).Clients
	want := events[0].Payload.(stream.Batch).Clients
	for i := range want {
		if math.Float64bits(got[i].X) != math.Float64bits(want[i].X) ||
			math.Float64bits(got[i].Y) != math.Float64bits(want[i].Y) {
			t.Errorf("client %d bits changed: got (%x, %x), want (%x, %x)", i,
				math.Float64bits(got[i].X), math.Float64bits(got[i].Y),
				math.Float64bits(want[i].X), math.Float64bits(want[i].Y))
		}
	}
}

// TestBinaryCanonicalization: the encoder applies exactly the
// normalizations a JSON round trip does — zero multiplicity becomes 1,
// an empty client list becomes null, a nil payload becomes a day — so
// the two paths agree even on non-canonical inputs.
func TestBinaryCanonicalization(t *testing.T) {
	events := []stream.Event{
		{Time: 1, Payload: stream.Element{Elem: 3, P: 0}},
		{Time: 2, Payload: stream.Batch{Clients: []metric.Point{}}},
		{Time: 3, Payload: nil},
		{Time: 4, Payload: stream.Use{Dur: 0}},
	}
	payload, err := AppendEventsBinary(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEventsBinary(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", back), fmt.Sprintf("%#v", jsonRoundTrip(t, events)); got != want {
		t.Errorf("normalization diverged from the JSON path:\n got %s\nwant %s", got, want)
	}
}

// TestBinaryWireEncoderIdentity: encoding from wire.Event (the client's
// path) is byte-identical to encoding the converted stream events (the
// reference path).
func TestBinaryWireEncoderIdentity(t *testing.T) {
	events := canonicalEvents()
	// Include the wire-side non-canonical case: P omitted (0) on the wire
	// defaults to multiplicity 1 in both encoders.
	wevs, err := FromStreamEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	wevs = append(wevs, Event{Time: 10, Kind: KindElement, Elem: 4})
	sevs, err := StreamEvents(wevs)
	if err != nil {
		t.Fatal(err)
	}
	fromWire, err := AppendEventsBinaryWire(nil, wevs)
	if err != nil {
		t.Fatal(err)
	}
	fromStream, err := AppendEventsBinary(nil, sevs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromWire, fromStream) {
		t.Errorf("wire and stream encoders diverged:\n wire   %x\n stream %x", fromWire, fromStream)
	}
}

// TestBinaryEventReaderChunks: EventReader decodes a frame payload in
// bounded runs and lands on the same events as the one-shot decode.
func TestBinaryEventReaderChunks(t *testing.T) {
	events := canonicalEvents()
	payload, err := AppendEventsBinary(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	var r EventReader
	if err := r.Init(payload); err != nil {
		t.Fatal(err)
	}
	var eb EventBatch
	var got []stream.Event
	for r.Remaining() > 0 {
		eb.Reset()
		n, err := r.Next(&eb, 3)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("Next returned 0 with events remaining")
		}
		for _, ev := range eb.Events {
			got = append(got, reboxEvent(ev))
		}
	}
	want := fmt.Sprintf("%#v", jsonRoundTrip(t, events))
	if g := fmt.Sprintf("%#v", got); g != want {
		t.Errorf("chunked decode diverged:\n got %s\nwant %s", g, want)
	}
}

// TestBinaryCorruptFrames: truncated and corrupt frame payloads error —
// wrapped in ErrBinary, never a panic — before any oversized allocation.
func TestBinaryCorruptFrames(t *testing.T) {
	good, err := AppendEventsBinary(nil, canonicalEvents())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty payload":              {},
		"bad count varint":           {0x80},
		"count exceeds frame":        {0xff, 0xff, 0xff, 0xff, 0x0f, binDay, 0},
		"unknown kind":               {1, 99, 0},
		"truncated event":            good[:len(good)-1],
		"truncated time":             {1, binDay, 0x80},
		"bad presence byte":          {1, binBatch, 0, 7},
		"truncated use duration":     {1, binUse, 0, 0x80},
		"client count exceeds frame": {1, binBatch, 0, 1, 0xff, 0xff, 0x03},
		"trailing bytes":             append(append([]byte{}, good...), 0),
		"truncated clients":          {1, binBatch, 0, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeEventsBinary(payload); err == nil {
				t.Error("corrupt payload decoded without error")
			}
		})
	}
}

// TestBinaryRunRoundTrip: the binary run encoding round-trips
// byte-identically (under %#v) including the null-vs-[] distinction and
// exact float bits.
func TestBinaryRunRoundTrip(t *testing.T) {
	runs := []*stream.Run{
		{},
		{Decisions: []stream.Decision{}, Curve: []stream.CurvePoint{}},
		{
			Decisions: []stream.Decision{
				{Cost: 0},
				{
					Leases:      []stream.ItemLease{{Item: 2, K: 1, Start: 4}},
					Assignments: []stream.Assignment{{Item: 2, K: 1, Cost: 1.0 / 3.0}},
					Cost:        0.1 + 0.2,
				},
				{Leases: []stream.ItemLease{}, Assignments: []stream.Assignment{}},
			},
			Curve: []stream.CurvePoint{{Time: 0, Cost: 0}, {Time: 1, Cost: 0.30000000000000004}},
			Final: stream.CostBreakdown{Lease: 1e-17, Service: 0.1},
		},
	}
	for i, run := range runs {
		buf := AppendRunBinary(nil, run)
		back, err := DecodeRunBinary(buf)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got, want := fmt.Sprintf("%#v", back), fmt.Sprintf("%#v", run); got != want {
			t.Errorf("run %d diverged:\n got %s\nwant %s", i, got, want)
		}
		if reenc := AppendRunBinary(nil, back); !bytes.Equal(reenc, buf) {
			t.Errorf("run %d: re-encode is not byte-identical", i)
		}
	}
}

// TestBinaryRunCorrupt: truncated and corrupt run encodings error.
func TestBinaryRunCorrupt(t *testing.T) {
	good := AppendRunBinary(nil, &stream.Run{
		Decisions: []stream.Decision{{Leases: []stream.ItemLease{{Item: 1, K: 0, Start: 2}}, Cost: 1}},
		Curve:     []stream.CurvePoint{{Time: 0, Cost: 1}},
		Final:     stream.CostBreakdown{Lease: 1, Service: 0},
	})
	cases := map[string][]byte{
		"empty":               {},
		"bad version":         {99},
		"bad presence":        {runVersion, 7},
		"count exceeds frame": {runVersion, 1, 0xff, 0xff, 0x03},
		"truncated":           good[:len(good)-1],
		"trailing bytes":      append(append([]byte{}, good...), 0),
	}
	for name, buf := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeRunBinary(buf); err == nil {
				t.Error("corrupt run decoded without error")
			}
		})
	}
}

// FuzzBinaryRoundTrip drives the decoder with arbitrary bytes: it must
// error (never panic) on garbage, and whatever it does accept must
// re-encode canonically — encode(decode(x)) is a fixed point, and the
// canonical events agree with a JSON round trip. Seeds include real
// encoder output, for which decode must reproduce the input bytes
// exactly.
func FuzzBinaryRoundTrip(f *testing.F) {
	seed, err := AppendEventsBinary(nil, canonicalEvents())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	one, err := AppendEventsBinary(nil, []stream.Event{{Time: 1, Payload: stream.Element{Elem: 2, P: 3}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(one)
	use, err := AppendEventsBinary(nil, []stream.Event{
		{Time: 2, Payload: stream.Use{Dur: 3}},
		{Time: 4, Payload: stream.Use{Dur: math.MaxInt64}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(use)
	f.Add([]byte{})
	f.Add([]byte{1, binBatch, 0, 1, 0xff})
	f.Add([]byte{1, binUse, 0, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeEventsBinary(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		// Whatever decoded re-encodes to a canonical byte string...
		enc1, err := AppendEventsBinary(nil, evs)
		if err != nil {
			t.Fatalf("decoded events failed to encode: %v", err)
		}
		// ...which is a fixed point of decode/encode...
		evs2, err := DecodeEventsBinary(enc1)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		enc2, err := AppendEventsBinary(nil, evs2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Errorf("encode(decode(x)) is not a fixed point:\n first  %x\n second %x", enc1, enc2)
		}
		// ...and whose events agree with the JSON wire path exactly. The
		// binary encoding is strictly wider than JSON on floats (it carries
		// NaN and infinite coordinates, which encoding/json rejects), so
		// the cross-check only applies to JSON-representable events.
		if jsonRepresentable(evs2) {
			if got, want := fmt.Sprintf("%#v", jsonRoundTrip(t, evs2)), fmt.Sprintf("%#v", evs2); got != want {
				t.Errorf("canonical events diverge from their JSON round trip:\n json   %s\n binary %s", got, want)
			}
		}
	})
}

// jsonRepresentable reports whether every float in evs is finite, i.e.
// whether encoding/json can carry the events at all.
func jsonRepresentable(evs []stream.Event) bool {
	for _, ev := range evs {
		if b, ok := ev.Payload.(stream.Batch); ok {
			for _, c := range b.Clients {
				if math.IsNaN(c.X) || math.IsInf(c.X, 0) || math.IsNaN(c.Y) || math.IsInf(c.Y, 0) {
					return false
				}
			}
		}
	}
	return true
}

// FuzzBinaryUseDuration drives the usage-duration decoder across the
// full int64 range — zero, negative, MaxInt64, and overlapping returns
// inside one frame: the encoder must clamp every duration to >= 1, the
// round trip must be a byte fixed point, and the binary path must agree
// with the JSON wire path event for event.
func FuzzBinaryUseDuration(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0))
	f.Add(int64(1), int64(1), int64(math.MaxInt64))
	f.Add(int64(5), int64(-3), int64(7))            // negative duration
	f.Add(int64(9), int64(math.MaxInt64), int64(2)) // saturating usage, then overlap
	f.Add(int64(-4), int64(6), int64(6))            // overlapping identical returns
	f.Fuzz(func(t *testing.T, tm, durA, durB int64) {
		events := []stream.Event{
			{Time: tm, Payload: stream.Use{Dur: durA}},
			{Time: tm, Payload: stream.Use{Dur: durB}},
		}
		payload, err := AppendEventsBinary(nil, events)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := DecodeEventsBinary(payload)
		if err != nil {
			t.Fatalf("decode of encoder output: %v", err)
		}
		for i, want := range []int64{durA, durB} {
			if want < 1 {
				want = 1
			}
			if got := back[i].Payload.(stream.Use); got.Dur != want {
				t.Errorf("event %d: duration %d decoded as %d, want clamp to %d",
					i, events[i].Payload.(stream.Use).Dur, got.Dur, want)
			}
		}
		reenc, err := AppendEventsBinary(nil, back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reenc, payload) {
			t.Errorf("re-encode not byte-identical:\n first  %x\n second %x", payload, reenc)
		}
		if got, want := fmt.Sprintf("%#v", jsonRoundTrip(t, back)), fmt.Sprintf("%#v", back); got != want {
			t.Errorf("binary and JSON paths diverged:\n json   %s\n binary %s", got, want)
		}
	})
}

// FuzzBinaryRunRoundTrip: the run decoder must never panic, and
// anything it accepts must re-encode to a fixed point.
func FuzzBinaryRunRoundTrip(f *testing.F) {
	f.Add(AppendRunBinary(nil, &stream.Run{
		Decisions: []stream.Decision{{Cost: 1}},
		Curve:     []stream.CurvePoint{{Time: 0, Cost: 1}},
	}))
	// A reusable-domain run shape: a pool grant (unit 0, covering type 2)
	// followed by a whole-pool-busy rejection verdict (-1, -1).
	f.Add(AppendRunBinary(nil, &stream.Run{
		Decisions: []stream.Decision{
			{
				Leases:      []stream.ItemLease{{Item: 0, K: 2, Start: 4}},
				Assignments: []stream.Assignment{{Item: 0, K: 2, Cost: 0}},
				Cost:        5,
			},
			{Assignments: []stream.Assignment{{Item: -1, K: -1, Cost: 0}}},
		},
		Curve: []stream.CurvePoint{{Time: 4, Cost: 5}, {Time: 5, Cost: 5}},
		Final: stream.CostBreakdown{Lease: 5},
	}))
	f.Add([]byte{runVersion, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := DecodeRunBinary(data)
		if err != nil {
			return
		}
		enc1 := AppendRunBinary(nil, run)
		run2, err := DecodeRunBinary(enc1)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		if enc2 := AppendRunBinary(nil, run2); !bytes.Equal(enc1, enc2) {
			t.Errorf("encode(decode(x)) is not a fixed point:\n first  %x\n second %x", enc1, enc2)
		}
	})
}

// allocBudgets pins the hot binary paths' allocation behavior. These are
// exact budgets, not ceilings to grow into: the zero rows are the
// zero-alloc submit path the server relies on, and a regression fails
// CI.
var allocBudgets = []struct {
	name   string
	budget float64 // allocations per operation
	run    func(b *benchState)
}{
	{"decode-frame/warm-batch", 0, func(b *benchState) {
		b.eb.Reset()
		var r EventReader
		if err := r.Init(b.payload); err != nil {
			panic(err)
		}
		for r.Remaining() > 0 {
			if _, err := r.Next(b.eb, 1024); err != nil {
				panic(err)
			}
		}
	}},
	{"encode-frame/warm-buffer", 0, func(b *benchState) {
		var err error
		b.buf, err = AppendEventsBinary(b.buf[:0], b.events)
		if err != nil {
			panic(err)
		}
	}},
	{"encode-frame-wire/warm-buffer", 0, func(b *benchState) {
		var err error
		b.buf, err = AppendEventsBinaryWire(b.buf[:0], b.wevents)
		if err != nil {
			panic(err)
		}
	}},
	{"encode-run/warm-buffer", 0, func(b *benchState) {
		b.buf = AppendRunBinary(b.buf[:0], b.run)
	}},
}

type benchState struct {
	payload []byte
	events  []stream.Event
	wevents []Event
	eb      *EventBatch
	buf     []byte
	run     *stream.Run
}

func newBenchState(t testing.TB) *benchState {
	var events []stream.Event
	for i := 0; i < 64; i++ {
		events = append(events, canonicalEvents()...)
	}
	payload, err := AppendEventsBinary(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	wevents, err := FromStreamEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	return &benchState{
		payload: payload,
		events:  events,
		wevents: wevents,
		eb:      &EventBatch{},
		run: &stream.Run{
			Decisions: []stream.Decision{{Leases: []stream.ItemLease{{Item: 1, K: 0, Start: 2}}, Cost: 1}},
			Curve:     []stream.CurvePoint{{Time: 0, Cost: 1}},
		},
	}
}

// TestBinaryAllocBudgets is the allocation-regression gate: every hot
// binary path must stay within its committed budget (today: zero
// allocations per operation once buffers and arenas are warm).
func TestBinaryAllocBudgets(t *testing.T) {
	for _, tc := range allocBudgets {
		t.Run(tc.name, func(t *testing.T) {
			state := newBenchState(t)
			tc.run(state) // warm the arenas and buffers
			if got := testing.AllocsPerRun(100, func() { tc.run(state) }); got > tc.budget {
				t.Errorf("%s allocates %.1f per run, budget %.1f", tc.name, got, tc.budget)
			}
		})
	}
}

// BenchmarkBinaryDecodeFrame reports the steady-state decode cost of
// the server's submit path (per event).
func BenchmarkBinaryDecodeFrame(b *testing.B) {
	state := newBenchState(b)
	n := len(state.events)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		allocBudgets[0].run(state)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/event")
}
