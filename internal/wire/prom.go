package wire

// Prometheus mapping of the engine metrics. The JSON metrics encoding
// (Metrics/ShardMetrics) and this text mapping live side by side in the
// protocol package, so the two representations of the engine's counters
// cannot drift apart: both are derived from the same sample, and the
// exposition served by the metrics endpoint is exactly these families
// (plus the WAL and HTTP families internal/server appends).

import (
	"strconv"

	"leasing/internal/promtext"
)

// PrometheusFamilies renders the engine sample as Prometheus metric
// families: one aggregate family per counter, and one shard-labelled
// family per per-shard counter. Names are stable scrape targets —
// renaming one is a breaking change gated by the server's golden
// exposition test.
func (m Metrics) PrometheusFamilies() []promtext.Family {
	shardSamples := func(pick func(ShardMetrics) float64) []promtext.Sample {
		out := make([]promtext.Sample, len(m.Shards))
		for i, sm := range m.Shards {
			out[i] = promtext.Sample{
				Labels: []promtext.Label{{Name: "shard", Value: strconv.Itoa(sm.Shard)}},
				Value:  pick(sm),
			}
		}
		return out
	}
	one := func(v float64) []promtext.Sample { return []promtext.Sample{{Value: v}} }
	return []promtext.Family{
		{
			Name: "leased_engine_sessions", Type: promtext.TypeGauge,
			Help:    "Open tenant sessions engine-wide.",
			Samples: one(float64(m.Sessions)),
		},
		{
			Name: "leased_engine_events_total", Type: promtext.TypeCounter,
			Help:    "Events processed engine-wide since start.",
			Samples: one(float64(m.Events)),
		},
		{
			Name: "leased_engine_batches_total", Type: promtext.TypeCounter,
			Help:    "Shard processing wakes; events/batches is the batching factor.",
			Samples: one(float64(m.Batches)),
		},
		{
			Name: "leased_engine_dropped_total", Type: promtext.TypeCounter,
			Help:    "Events dropped for unknown, closed or failed tenants.",
			Samples: one(float64(m.Dropped)),
		},
		{
			Name: "leased_engine_queue_depth", Type: promtext.TypeGauge,
			Help:    "Queued operations engine-wide at sample time.",
			Samples: one(float64(m.QueueDepth)),
		},
		{
			Name: "leased_engine_cost_total", Type: promtext.TypeCounter,
			Help:    "Cumulative cost of every decision engine-wide.",
			Samples: one(m.Cost),
		},
		{
			Name: "leased_engine_shard_sessions", Type: promtext.TypeGauge,
			Help:    "Open sessions per shard.",
			Samples: shardSamples(func(s ShardMetrics) float64 { return float64(s.Sessions) }),
		},
		{
			Name: "leased_engine_shard_events_total", Type: promtext.TypeCounter,
			Help:    "Events processed per shard since start.",
			Samples: shardSamples(func(s ShardMetrics) float64 { return float64(s.Events) }),
		},
		{
			Name: "leased_engine_shard_queue_depth", Type: promtext.TypeGauge,
			Help:    "Queued operations per shard at sample time; pinned at the -queue limit means the shard is saturated.",
			Samples: shardSamples(func(s ShardMetrics) float64 { return float64(s.QueueDepth) }),
		},
	}
}
