package wire

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"leasing/internal/metric"
	"leasing/internal/stream"
)

// TestEventRoundTrip feeds one event of every payload kind through
// wire conversion, a JSON round trip, and back, asserting the
// in-process event survives exactly.
func TestEventRoundTrip(t *testing.T) {
	events := []stream.Event{
		{Time: 0, Payload: stream.Day{}},
		{Time: 3, Payload: stream.Element{Elem: 7, P: 2}},
		{Time: 4, Payload: stream.Element{Elem: 0, P: 1}},
		{Time: 5, Payload: stream.Window{D: 9}},
		{Time: 6, Payload: stream.ElementWindow{Elem: 2, D: 4}},
		{Time: 7, Payload: stream.Batch{Clients: []metric.Point{{X: 1.5, Y: -2.25}, {X: 0.1, Y: 0.2}}}},
		{Time: 8, Payload: stream.Batch{}},
		{Time: 9, Payload: stream.Connect{S: 3, T: 11}},
	}
	wevs, err := FromStreamEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(wevs)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := StreamEvents(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", back), fmt.Sprintf("%#v", events); got != want {
		t.Errorf("round trip diverged:\n got %s\nwant %s", got, want)
	}
}

// TestEventNilPayloadIsDay mirrors the stream contract: a nil payload
// is a bare day demand.
func TestEventNilPayloadIsDay(t *testing.T) {
	w, err := FromStreamEvent(stream.Event{Time: 5})
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != KindDay {
		t.Errorf("kind = %q, want %q", w.Kind, KindDay)
	}
}

// TestEventUnknownKind rejects undeclared kinds.
func TestEventUnknownKind(t *testing.T) {
	if _, err := (Event{Kind: "bogus"}).Stream(); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestElementDefaultMultiplicity: an element event without p covers
// once, so hand-written JSON need not spell the common case.
func TestElementDefaultMultiplicity(t *testing.T) {
	ev, err := (Event{Kind: KindElement, Elem: 3}).Stream()
	if err != nil {
		t.Fatal(err)
	}
	if p := ev.Payload.(stream.Element).P; p != 1 {
		t.Errorf("default multiplicity = %d, want 1", p)
	}
}

// TestRunRoundTrip pushes a run with nil and non-nil lists (and floats
// that exercise shortest-representation encoding) through JSON,
// asserting byte-identity under %#v — the exactness the remote parity
// checks rely on.
func TestRunRoundTrip(t *testing.T) {
	run := &stream.Run{
		Decisions: []stream.Decision{
			{Cost: 0},
			{
				Leases:      []stream.ItemLease{{Item: 2, K: 1, Start: 4}},
				Assignments: []stream.Assignment{{Item: 2, K: 1, Cost: 1.0 / 3.0}},
				Cost:        0.1 + 0.2,
			},
		},
		Curve: []stream.CurvePoint{{Time: 0, Cost: 0}, {Time: 1, Cost: 0.30000000000000004}},
		Final: stream.CostBreakdown{Lease: 1e-17, Service: 0.1},
	}
	buf, err := json.Marshal(FromStreamRun(run))
	if err != nil {
		t.Fatal(err)
	}
	var decoded Run
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", decoded.Stream()), fmt.Sprintf("%#v", run); got != want {
		t.Errorf("round trip diverged:\n got %s\nwant %s", got, want)
	}
}

// TestSolutionRoundTripPreservesEmptiness: null and [] are distinct on
// the wire, so nil-ness survives.
func TestSolutionRoundTripPreservesEmptiness(t *testing.T) {
	for _, sol := range []stream.Solution{
		{},
		{Leases: []stream.ItemLease{}},
		{Leases: []stream.ItemLease{{Item: 1}}, Assignments: []stream.Assignment{}},
	} {
		buf, err := json.Marshal(FromStreamSolution(sol))
		if err != nil {
			t.Fatal(err)
		}
		var decoded Solution
		if err := json.Unmarshal(buf, &decoded); err != nil {
			t.Fatal(err)
		}
		if got, want := fmt.Sprintf("%#v", decoded.Stream()), fmt.Sprintf("%#v", sol); got != want {
			t.Errorf("round trip diverged:\n got %s\nwant %s", got, want)
		}
	}
}

func validTypes() []LeaseType {
	return []LeaseType{{Length: 1, Cost: 1}, {Length: 4, Cost: 2.5}}
}

// TestBuildEveryDomain builds one leaser per domain and drives one
// well-formed event through it.
func TestBuildEveryDomain(t *testing.T) {
	cases := []struct {
		req OpenRequest
		ev  Event
	}{
		{OpenRequest{Domain: DomainParking, Types: validTypes()}, Event{Kind: KindDay}},
		{OpenRequest{Domain: DomainParkingRand, Types: validTypes(), Seed: 7}, Event{Kind: KindDay}},
		{OpenRequest{Domain: DomainDeadline, Types: validTypes()}, Event{Kind: KindWindow, D: 3}},
		{OpenRequest{
			Domain: DomainSetCover, Types: validTypes(), Seed: 7,
			SetCover: &SetCoverSpec{
				Elements: 2, Sets: [][]int{{0, 1}},
				Costs:    [][]float64{{1, 2.5}},
				Arrivals: []ElementArrival{{T: 0, Elem: 1, P: 1}},
			},
		}, Event{Kind: KindElement, Elem: 1, P: 1}},
		{OpenRequest{
			Domain: DomainSCLD, Types: validTypes(), Seed: 7,
			SCLD: &SCLDSpec{
				Elements: 2, Sets: [][]int{{0, 1}},
				Costs:    [][]float64{{1, 2.5}},
				Arrivals: []SCLDArrival{{T: 0, Elem: 0, D: 2}},
			},
		}, Event{Kind: KindElementWindow, Elem: 0, D: 2}},
		{OpenRequest{
			Domain: DomainFacility, Types: validTypes(),
			Facility: &FacilitySpec{
				Sites:   []Point{{X: 0, Y: 0}},
				Costs:   [][]float64{{1, 2.5}},
				Batches: [][]Point{{{X: 1, Y: 1}}},
			},
		}, Event{Kind: KindBatch, Clients: []Point{{X: 1, Y: 1}}}},
		{OpenRequest{
			Domain: DomainSteiner, Types: validTypes(),
			Steiner: &SteinerSpec{
				Vertices: 2, Edges: []Edge{{U: 0, V: 1, W: 1}},
				Requests: []ConnectRequest{{T: 0, S: 0, U: 1}},
			},
		}, Event{Kind: KindConnect, S: 0, U: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.req.Domain, func(t *testing.T) {
			lsr, err := tc.req.Build()
			if err != nil {
				t.Fatal(err)
			}
			ev, err := tc.ev.Stream()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := lsr.Observe(ev); err != nil {
				t.Fatalf("observe: %v", err)
			}
		})
	}
}

// TestBuildDeterministic: two builds of the same randomized spec replay
// identically — the reproducibility contract the open endpoint makes.
func TestBuildDeterministic(t *testing.T) {
	req := OpenRequest{
		Domain: DomainSetCover, Types: validTypes(), Seed: 42,
		SetCover: &SetCoverSpec{
			Elements: 4, Sets: [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}},
			Costs:    [][]float64{{1, 2.5}, {1.2, 2}, {0.8, 2.2}, {1, 2.4}},
			Arrivals: []ElementArrival{{T: 0, Elem: 0, P: 1}, {T: 1, Elem: 2, P: 2}, {T: 5, Elem: 1, P: 1}},
		},
	}
	events := []stream.Event{
		{Time: 0, Payload: stream.Element{Elem: 0, P: 1}},
		{Time: 1, Payload: stream.Element{Elem: 2, P: 2}},
		{Time: 5, Payload: stream.Element{Elem: 1, P: 1}},
	}
	replay := func() string {
		lsr, err := req.Build()
		if err != nil {
			t.Fatal(err)
		}
		run, err := stream.Replay(lsr, events)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", run)
	}
	if a, b := replay(), replay(); a != b {
		t.Errorf("two builds of the same spec diverged:\n%s\n%s", a, b)
	}
}

// TestBuildRejects covers the validation paths.
func TestBuildRejects(t *testing.T) {
	cases := map[string]OpenRequest{
		"unknown domain": {Domain: "warehouse", Types: validTypes()},
		"no types":       {Domain: DomainParking},
		"bad types":      {Domain: DomainParking, Types: []LeaseType{{Length: 4, Cost: 1}, {Length: 1, Cost: 1}}},
		"missing spec":   {Domain: DomainFacility, Types: validTypes()},
		"bad instance": {Domain: DomainSteiner, Types: validTypes(),
			Steiner: &SteinerSpec{Vertices: 1, Edges: []Edge{{U: 0, V: 5, W: 1}}}},
	}
	for name, req := range cases {
		if _, err := req.Build(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestEndpointsDeclared keeps the route table well-formed: unique
// name and method+path, known auth scopes, known error codes.
func TestEndpointsDeclared(t *testing.T) {
	names := map[string]bool{}
	routes := map[string]bool{}
	codes := map[string]bool{}
	for _, c := range []string{
		CodeBadRequest, CodeUnauthorized, CodeForbidden, CodeUnknownTenant,
		CodeDuplicateTenant, CodeTenantClosed, CodeBackpressure,
		CodeNotRecording, CodeSessionFailed, CodeStorageFailed,
		CodeShuttingDown, CodeNotClustered,
	} {
		codes[c] = true
	}
	for _, ep := range Endpoints() {
		if names[ep.Name] {
			t.Errorf("duplicate endpoint name %q", ep.Name)
		}
		names[ep.Name] = true
		route := ep.Method + " " + ep.Path
		if routes[route] {
			t.Errorf("duplicate route %q", route)
		}
		routes[route] = true
		if ep.Auth != AuthNone && ep.Auth != AuthTenant && ep.Auth != AuthAdmin {
			t.Errorf("%s: unknown auth scope %q", ep.Name, ep.Auth)
		}
		if ep.Response == nil {
			t.Errorf("%s: no response type", ep.Name)
		}
		for _, c := range ep.Errors {
			if !codes[c] {
				t.Errorf("%s: undeclared error code %q", ep.Name, c)
			}
		}
	}
}

// TestAPIMarkdown sanity-checks the generated reference: every
// endpoint, every error code with its status, and every wire type
// reachable from the declarations must appear.
func TestAPIMarkdown(t *testing.T) {
	doc := string(APIMarkdown())
	for _, ep := range Endpoints() {
		if !strings.Contains(doc, fmt.Sprintf("`%s %s`", ep.Method, ep.Path)) {
			t.Errorf("API doc missing endpoint %s %s", ep.Method, ep.Path)
		}
	}
	for _, want := range []string{
		"`" + CodeBackpressure + "` | 429",
		"`" + CodeUnknownTenant + "` | 404",
		"### `OpenRequest`",
		"### `Run`",
		"### `Error`",
		"application/x-ndjson",
		"| `seed` |",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("API doc missing %q", want)
		}
	}
	if a, b := string(APIMarkdown()), doc; a != b {
		t.Error("APIMarkdown is not deterministic")
	}
}
