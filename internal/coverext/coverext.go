// Package coverext implements the covering-problem reductions that the
// Chapter 3 outlook proposes: VertexCoverLeasing (edges arrive over time
// and must be covered by a leased endpoint — δ = 2, so the Chapter 3
// algorithm is O(log(2K) log n)-competitive) and EdgeCoverLeasing
// (vertices arrive and must be covered by a leased incident edge — δ is
// the maximum degree). Both reduce to SetMulticoverLeasing over families
// derived from a graph, reusing the full Chapter 3 machinery (online
// algorithm, greedy, exact ILP).
package coverext

import (
	"fmt"
	"math/rand"

	"leasing/internal/graph"
	"leasing/internal/lease"
	"leasing/internal/setcover"
	"leasing/internal/workload"
)

// VertexCoverFamily builds the set system of VertexCoverLeasing: the
// universe is the edge set (element e = edge index), and set v contains
// the edges incident to vertex v. Every element is in exactly two sets
// (its endpoints), so δ = 2. Isolated vertices yield empty sets and are
// rejected by the family validator, so the graph must have no isolated
// vertices.
func VertexCoverFamily(g *graph.Graph) (*setcover.Family, error) {
	sets := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		sets[v] = g.Incident(v)
		if len(sets[v]) == 0 {
			return nil, fmt.Errorf("coverext: vertex %d is isolated (empty covering set)", v)
		}
	}
	return setcover.NewFamily(g.M(), sets)
}

// EdgeCoverFamily builds the set system of EdgeCoverLeasing: the universe
// is the vertex set, and set e contains the two endpoints of edge e.
// δ equals the maximum degree.
func EdgeCoverFamily(g *graph.Graph) (*setcover.Family, error) {
	sets := make([][]int, g.M())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		sets[e] = []int{ed.U, ed.V}
	}
	return setcover.NewFamily(g.N(), sets)
}

// VertexCoverInstance assembles a full VertexCoverLeasing instance: a
// random stream of edge arrivals (each edge demand must be covered by one
// leased endpoint at its arrival time) with vertex leasing costs
// vertexCost[v] * cfg.Cost(k).
func VertexCoverInstance(rng *rand.Rand, g *graph.Graph, cfg *lease.Config, horizon int64, pArrive float64) (*setcover.Instance, error) {
	fam, err := VertexCoverFamily(g)
	if err != nil {
		return nil, err
	}
	costs := make([][]float64, g.N())
	for v := range costs {
		row := make([]float64, cfg.K())
		f := 1 + rng.Float64()*0.5
		for k := range row {
			row[k] = cfg.Cost(k) * f
		}
		costs[v] = row
	}
	arrivals := workload.ElementStream(rng, horizon, pArrive,
		func() int { return rng.Intn(g.M()) },
		func() int { return 1 },
	)
	return setcover.NewInstance(fam, cfg, costs, arrivals, setcover.PerArrival)
}

// EdgeCoverInstance assembles an EdgeCoverLeasing instance: vertices
// arrive and must be covered by a leased incident edge; edge lease prices
// scale with the edge weight.
func EdgeCoverInstance(rng *rand.Rand, g *graph.Graph, cfg *lease.Config, horizon int64, pArrive float64) (*setcover.Instance, error) {
	fam, err := EdgeCoverFamily(g)
	if err != nil {
		return nil, err
	}
	costs := make([][]float64, g.M())
	for e := range costs {
		row := make([]float64, cfg.K())
		w := g.Edge(e).Weight
		for k := range row {
			row[k] = cfg.Cost(k) * w
		}
		costs[e] = row
	}
	arrivals := workload.ElementStream(rng, horizon, pArrive,
		func() int { return rng.Intn(g.N()) },
		func() int { return 1 },
	)
	return setcover.NewInstance(fam, cfg, costs, arrivals, setcover.PerArrival)
}
