package coverext

import (
	"math/rand"
	"testing"

	"leasing/internal/graph"
	"leasing/internal/lease"
	"leasing/internal/setcover"
)

func coverConfig() *lease.Config {
	return lease.MustConfig(
		lease.Type{Length: 2, Cost: 1},
		lease.Type{Length: 8, Cost: 2.5},
	)
}

func triangle(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.New(3, []graph.Edge{
		{U: 0, V: 1, Weight: 1},
		{U: 1, V: 2, Weight: 2},
		{U: 0, V: 2, Weight: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestVertexCoverFamilyStructure(t *testing.T) {
	g := triangle(t)
	fam, err := VertexCoverFamily(g)
	if err != nil {
		t.Fatal(err)
	}
	if fam.N() != g.M() || fam.M() != g.N() {
		t.Fatalf("family dims (%d,%d), want (%d,%d)", fam.N(), fam.M(), g.M(), g.N())
	}
	// Every edge belongs to exactly its 2 endpoints: δ = 2.
	if fam.Delta() != 2 {
		t.Errorf("delta = %d, want 2", fam.Delta())
	}
	for e := 0; e < fam.N(); e++ {
		if got := len(fam.Containing(e)); got != 2 {
			t.Errorf("edge %d covered by %d vertices, want 2", e, got)
		}
	}
	// Isolated vertex rejected.
	iso, err := graph.New(3, []graph.Edge{{U: 0, V: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VertexCoverFamily(iso); err == nil {
		t.Error("isolated vertex accepted")
	}
}

func TestEdgeCoverFamilyStructure(t *testing.T) {
	g := triangle(t)
	fam, err := EdgeCoverFamily(g)
	if err != nil {
		t.Fatal(err)
	}
	if fam.N() != g.N() || fam.M() != g.M() {
		t.Fatalf("family dims (%d,%d), want (%d,%d)", fam.N(), fam.M(), g.N(), g.M())
	}
	// In a triangle every vertex has degree 2: δ = 2.
	if fam.Delta() != 2 {
		t.Errorf("delta = %d, want 2 for triangle", fam.Delta())
	}
	if fam.MaxSetSize() != 2 {
		t.Errorf("sets must have exactly the 2 endpoints, got max %d", fam.MaxSetSize())
	}
}

func TestVertexCoverLeasingEndToEnd(t *testing.T) {
	cfg := coverConfig()
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.RandomConnected(rng, 8, 14, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := VertexCoverInstance(rng, g, cfg, 24, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(inst.Arrivals) == 0 {
			continue
		}
		alg, err := setcover.NewOnline(inst, rng, setcover.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Run(); err != nil {
			t.Fatal(err)
		}
		if err := setcover.VerifyFeasible(inst, alg.Bought()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt, err := setcover.Optimal(inst, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Exact && alg.TotalCost() < opt.Cost-1e-6 {
			t.Errorf("seed %d: online %v below OPT %v", seed, alg.TotalCost(), opt.Cost)
		}
	}
}

func TestEdgeCoverLeasingEndToEnd(t *testing.T) {
	cfg := coverConfig()
	rng := rand.New(rand.NewSource(11))
	g, err := graph.RandomConnected(rng, 8, 12, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := EdgeCoverInstance(rng, g, cfg, 20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := setcover.NewOnline(inst, rng, setcover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	if err := setcover.VerifyFeasible(inst, alg.Bought()); err != nil {
		t.Error(err)
	}
	// Edge lease costs must scale with the edge weight.
	for e := 0; e < g.M(); e++ {
		if inst.Costs[e][0] != cfg.Cost(0)*g.Edge(e).Weight {
			t.Errorf("edge %d cost %v, want weight-scaled %v", e, inst.Costs[e][0], cfg.Cost(0)*g.Edge(e).Weight)
			break
		}
	}
}
