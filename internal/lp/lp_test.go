package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOrFatal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x<=3, y<=4  == min -(x+y); optimum -7 at (3,4).
	p := NewMinimize([]float64{-1, -1})
	mustAdd(t, p, map[int]float64{0: 1}, LE, 3)
	mustAdd(t, p, map[int]float64{1: 1}, LE, 4)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective+7) > 1e-9 {
		t.Errorf("objective = %v, want -7", s.Objective)
	}
	if math.Abs(s.X[0]-3) > 1e-9 || math.Abs(s.X[1]-4) > 1e-9 {
		t.Errorf("X = %v, want [3 4]", s.X)
	}
}

func TestCoveringLP(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x >= 1. Optimum: x=4,y=0 → 8.
	p := NewMinimize([]float64{2, 3})
	mustAdd(t, p, map[int]float64{0: 1, 1: 1}, GE, 4)
	mustAdd(t, p, map[int]float64{0: 1}, GE, 1)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-8) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 8", s.Status, s.Objective)
	}
}

func TestEquality(t *testing.T) {
	// min x + 2y s.t. x + y == 5, x - y == 1 → x=3,y=2, obj 7.
	p := NewMinimize([]float64{1, 2})
	mustAdd(t, p, map[int]float64{0: 1, 1: 1}, EQ, 5)
	mustAdd(t, p, map[int]float64{0: 1, 1: -1}, EQ, 1)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-7) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 7", s.Status, s.Objective)
	}
	if math.Abs(s.X[0]-3) > 1e-9 || math.Abs(s.X[1]-2) > 1e-9 {
		t.Errorf("X = %v, want [3 2]", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewMinimize([]float64{1})
	mustAdd(t, p, map[int]float64{0: 1}, GE, 5)
	mustAdd(t, p, map[int]float64{0: 1}, LE, 3)
	s := solveOrFatal(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x >= 1 → unbounded below.
	p := NewMinimize([]float64{-1})
	mustAdd(t, p, map[int]float64{0: 1}, GE, 1)
	s := solveOrFatal(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x >= -2 is vacuous under x >= 0; min x should be 0.
	p := NewMinimize([]float64{1})
	mustAdd(t, p, map[int]float64{0: 1}, GE, -2)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || math.Abs(s.Objective) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 0", s.Status, s.Objective)
	}
	// -x >= -3  ⇔  x <= 3; min -x → x=3.
	p2 := NewMinimize([]float64{-1})
	mustAdd(t, p2, map[int]float64{0: -1}, GE, -3)
	s2 := solveOrFatal(t, p2)
	if s2.Status != Optimal || math.Abs(s2.Objective+3) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal -3", s2.Status, s2.Objective)
	}
}

func TestDegenerateKleeMintyLike(t *testing.T) {
	// A degenerate problem that cycles without an anti-cycling rule.
	// min -0.75a + 150b - 0.02c + 6d (Beale's example)
	p := NewMinimize([]float64{-0.75, 150, -0.02, 6})
	mustAdd(t, p, map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9}, LE, 0)
	mustAdd(t, p, map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3}, LE, 0)
	mustAdd(t, p, map[int]float64{2: 1}, LE, 1)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal (Bland must terminate)", s.Status)
	}
	if math.Abs(s.Objective-(-0.05)) > 1e-6 {
		t.Errorf("objective = %v, want -0.05", s.Objective)
	}
}

func TestRedundantConstraintsAndEqualities(t *testing.T) {
	// Duplicate equalities produce a redundant row that phase 1 must drop.
	p := NewMinimize([]float64{1, 1})
	mustAdd(t, p, map[int]float64{0: 1, 1: 1}, EQ, 2)
	mustAdd(t, p, map[int]float64{0: 2, 1: 2}, EQ, 4)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-2) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 2", s.Status, s.Objective)
	}
}

func TestSetCoverRelaxation(t *testing.T) {
	// Three sets cover elements {a,b}: S0={a}, S1={b}, S2={a,b}.
	// Costs 1, 1, 1.5. LP optimum buys S2 fractionally? Integral S2=1 → 1.5.
	// LP can also do x0=x1=1 → 2. LP optimum = 1.5.
	p := NewMinimize([]float64{1, 1, 1.5})
	mustAdd(t, p, map[int]float64{0: 1, 2: 1}, GE, 1)
	mustAdd(t, p, map[int]float64{1: 1, 2: 1}, GE, 1)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-1.5) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 1.5", s.Status, s.Objective)
	}
}

func TestHalfIntegralVertexLP(t *testing.T) {
	// Odd cycle vertex cover LP has optimum n/2 with all-half solution.
	// Triangle: min x0+x1+x2 s.t. xi+xj >= 1 for each edge.
	p := NewMinimize([]float64{1, 1, 1})
	mustAdd(t, p, map[int]float64{0: 1, 1: 1}, GE, 1)
	mustAdd(t, p, map[int]float64{1: 1, 2: 1}, GE, 1)
	mustAdd(t, p, map[int]float64{0: 1, 2: 1}, GE, 1)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-1.5) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 1.5", s.Status, s.Objective)
	}
}

func TestVerify(t *testing.T) {
	p := NewMinimize([]float64{1, 1})
	mustAdd(t, p, map[int]float64{0: 1, 1: 1}, GE, 2)
	if err := p.Verify([]float64{1, 1}, 1e-9); err != nil {
		t.Errorf("Verify feasible point: %v", err)
	}
	if err := p.Verify([]float64{0.5, 0.5}, 1e-9); err == nil {
		t.Error("Verify must reject infeasible point")
	}
	if err := p.Verify([]float64{-1, 3}, 1e-9); err == nil {
		t.Error("Verify must reject negative variable")
	}
	if err := p.Verify([]float64{1}, 1e-9); err == nil {
		t.Error("Verify must reject wrong length")
	}
}

func TestValidation(t *testing.T) {
	p := NewMinimize([]float64{1})
	if err := p.Add(map[int]float64{1: 1}, GE, 0); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := p.Add(map[int]float64{0: math.NaN()}, GE, 0); err == nil {
		t.Error("NaN coefficient accepted")
	}
	if err := p.Add(map[int]float64{0: 1}, GE, math.Inf(1)); err == nil {
		t.Error("Inf rhs accepted")
	}
	if err := p.Add(map[int]float64{0: 1}, Op(99), 0); err == nil {
		t.Error("bad operator accepted")
	}
	if err := p.AddDense([]float64{1, 2}, GE, 0); err == nil {
		t.Error("wrong-length dense constraint accepted")
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewMinimize(nil)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || s.Objective != 0 {
		t.Fatalf("empty problem: %v obj %v", s.Status, s.Objective)
	}
}

func TestMustObjective(t *testing.T) {
	p := NewMinimize([]float64{1})
	mustAdd(t, p, map[int]float64{0: 1}, GE, 2)
	v, err := p.MustObjective()
	if err != nil || math.Abs(v-2) > 1e-9 {
		t.Fatalf("MustObjective = %v, %v; want 2, nil", v, err)
	}
	p2 := NewMinimize([]float64{1})
	mustAdd(t, p2, map[int]float64{0: 1}, GE, 5)
	mustAdd(t, p2, map[int]float64{0: 1}, LE, 3)
	if _, err := p2.MustObjective(); err == nil {
		t.Error("MustObjective on infeasible problem must error")
	}
}

// Property: on random feasible covering LPs, the solver's optimum is a lower
// bound on any feasible integral point we construct, and the returned X is
// feasible.
func TestRandomCoveringLPProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	f := func() bool {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		c := make([]float64, n)
		for j := range c {
			c[j] = 0.5 + rng.Float64()*4
		}
		p := NewMinimize(c)
		for i := 0; i < m; i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.5 {
					coeffs[j] = 1
				}
			}
			// Guarantee coverage is possible.
			coeffs[rng.Intn(n)] = 1
			if err := p.Add(coeffs, GE, 1); err != nil {
				return false
			}
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		if err := p.Verify(s.X, 1e-6); err != nil {
			return false
		}
		// The all-ones point is feasible and must cost at least the optimum.
		allOnes := make([]float64, n)
		var totalCost float64
		for j := range allOnes {
			allOnes[j] = 1
			totalCost += c[j]
		}
		return s.Objective <= totalCost+1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Values: nil}
	if err := quick.Check(func() bool { return f() }, cfg); err != nil {
		t.Error(err)
	}
}

// Property: LP optimum of {min c·x : x_j <= 1, sum x >= k} equals sum of the
// k cheapest costs (a problem with a known closed form).
func TestKCheapestClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(5)
		k := 1 + rng.Intn(n)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*9 + 1
		}
		p := NewMinimize(c)
		for j := 0; j < n; j++ {
			mustAdd(t, p, map[int]float64{j: 1}, LE, 1)
		}
		all := map[int]float64{}
		for j := 0; j < n; j++ {
			all[j] = 1
		}
		mustAdd(t, p, all, GE, float64(k))
		s := solveOrFatal(t, p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		sorted := make([]float64, n)
		copy(sorted, c)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		var want float64
		for i := 0; i < k; i++ {
			want += sorted[i]
		}
		if math.Abs(s.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: objective %v, want %v (k=%d costs=%v)", trial, s.Objective, want, k, c)
		}
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("Op strings wrong")
	}
	if Op(42).String() == "" || Status(42).String() == "" {
		t.Error("unknown enum strings empty")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status strings wrong")
	}
}

func mustAdd(t *testing.T, p *Problem, coeffs map[int]float64, op Op, rhs float64) {
	t.Helper()
	if err := p.Add(coeffs, op, rhs); err != nil {
		t.Fatalf("Add: %v", err)
	}
}
